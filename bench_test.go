// Package bench is the benchmark harness regenerating every table and
// figure of the paper's evaluation. Each benchmark re-runs the
// measurement computation over a cached simulated world (the expensive
// world generation happens once per world, outside the timed loop),
// validates the artifact's shape against the paper, and logs the measured
// rows so `go test -bench` output doubles as the reproduction record.
//
// Ablation benchmarks (DESIGN.md §4) run small dedicated worlds per
// configuration and report their findings as custom metrics.
package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/behavior"
	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/hijacker"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/recovery"
	"manualhijack/internal/stats"
)

// ---- cached worlds -------------------------------------------------------

var (
	once2012, once2011, once2014, onceBase sync.Once
	w2012, w2011, w2014, wBase             *core.World
)

// world2012 is the November 2012 era: most datasets (3–8, 11–12) plus the
// decoy experiment.
func world2012() *core.World {
	once2012.Do(func() {
		cfg := core.DefaultConfig(2012)
		cfg.Start = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
		cfg.Days = 24
		cfg.PopulationN = 5000
		cfg.Crews = core.Roster2012()
		cfg.CampaignsPerDay = 10
		cfg.DecoyN = 80
		w2012 = core.NewWorld(cfg)
		w2012.InjectDecoys(16 * 24 * time.Hour)
		w2012.Run()
	})
	return w2012
}

// world2011 is the October 2011 era: retention baseline and the contact
// experiment (background campaigns stop at day 15).
func world2011() *core.World {
	once2011.Do(func() {
		cfg := core.DefaultConfig(2011)
		cfg.Start = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
		cfg.Days = 75
		cfg.PopulationN = 6000
		cfg.Crews = core.Roster2011()
		cfg.CampaignsPerDay = 4
		cfg.CampaignDays = 15
		cfg.Recovery = recovery.Config2011()
		w2011 = core.NewWorld(cfg)
		w2011.Run()
	})
	return w2011
}

// world2014 is the January 2014 era: attribution and the curated phishing
// review.
func world2014() *core.World {
	once2014.Do(func() {
		cfg := core.DefaultConfig(2014)
		cfg.Start = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
		cfg.Days = 24
		cfg.PopulationN = 4000
		cfg.Crews = core.Roster2014()
		cfg.CampaignsPerDay = 9
		w2014 = core.NewWorld(cfg)
		w2014.Run()
	})
	return w2014
}

// worldBase is the low-intensity base-rate world (§3).
func worldBase() *core.World {
	onceBase.Do(func() {
		cfg := core.DefaultConfig(3)
		cfg.Start = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
		cfg.Days = 30
		cfg.PopulationN = 20000
		cfg.Crews = core.Roster2012()
		cfg.CampaignsPerDay = 0.9
		cfg.LureBase = 100
		wBase = core.NewWorld(cfg)
		wBase.Run()
	})
	return wBase
}

// ---- study engine ----------------------------------------------------------

// BenchmarkStudyParallel times the full reduced-scale study end to end at
// both engine settings: the legacy sequential engine (par=1) and the
// GOMAXPROCS worker pool (par=max). On a multi-core runner the pooled
// engine is wall-clock-bound by the slowest era world instead of the sum
// of all five; the determinism test in internal/core asserts both produce
// byte-identical reports.
func BenchmarkStudyParallel(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"par=1", 1}, {"par=max", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := core.DefaultStudyConfig(11)
				sc.Scale = 0.05
				sc.Parallelism = bc.par
				r := core.RunStudy(sc)
				if r.Events2012 == 0 || r.Fig7.Submitted == 0 {
					b.Fatal("study produced an empty report")
				}
			}
		})
	}
}

// ---- §3 base rates -------------------------------------------------------

func BenchmarkBaseRatesSection3(b *testing.B) {
	w := worldBase()
	var br analysis.BaseRates
	active := 0
	w.Dir.All(func(a *identity.Account) {
		if a.Active(w.End()) {
			active++
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br = analysis.ComputeBaseRates(w.Log, w.Cfg.Start, w.End(), active)
	}
	b.StopTimer()
	if br.HijacksPerMillionActivePerDay > 60 {
		b.Fatalf("base rate = %.1f/M/day, want single-to-low-double digits (paper ~9)", br.HijacksPerMillionActivePerDay)
	}
	b.ReportMetric(br.HijacksPerMillionActivePerDay, "hijacks/Mactive/day")
	b.Logf("§3: %.1f hijacks/M active/day (paper ≈9); pages/week %v", br.HijacksPerMillionActivePerDay, br.PagesPerWeek)
}

// ---- Table 2 --------------------------------------------------------------

func BenchmarkTable2PhishingTargets(b *testing.B) {
	w := world2014()
	var t2 analysis.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 = analysis.ComputeTable2(w.Log, 100)
	}
	b.StopTimer()
	if t2.EmailShares[event.TargetMail] <= t2.EmailShares[event.TargetSocial] {
		b.Fatalf("mail should dominate email targets: %v", t2.EmailShares)
	}
	b.ReportMetric(t2.EmailShares[event.TargetMail]*100, "email-mail-%")
	b.ReportMetric(t2.PageShares[event.TargetMail]*100, "page-mail-%")
	b.Logf("Table 2 emails: mail=%.0f%% bank=%.0f%% app=%.0f%% social=%.0f%% other=%.0f%% (paper 35/21/16/14/14)",
		t2.EmailShares[event.TargetMail]*100, t2.EmailShares[event.TargetBank]*100,
		t2.EmailShares[event.TargetAppStore]*100, t2.EmailShares[event.TargetSocial]*100,
		t2.EmailShares[event.TargetOther]*100)
	b.Logf("Table 2 pages:  mail=%.0f%% bank=%.0f%% app=%.0f%% social=%.0f%% other=%.0f%% (paper 27/25/17/15/15)",
		t2.PageShares[event.TargetMail]*100, t2.PageShares[event.TargetBank]*100,
		t2.PageShares[event.TargetAppStore]*100, t2.PageShares[event.TargetSocial]*100,
		t2.PageShares[event.TargetOther]*100)
}

// ---- Figures 3–6 -----------------------------------------------------------

func BenchmarkFigure3Referrers(b *testing.B) {
	w := world2012()
	var f3 analysis.Figure3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f3 = analysis.ComputeFigure3(w.Log, 100)
	}
	b.StopTimer()
	if f3.BlankShare < 0.98 {
		b.Fatalf("blank share = %.4f, want >0.98 (paper >99%%)", f3.BlankShare)
	}
	b.ReportMetric(f3.BlankShare*100, "blank-%")
	b.Logf("Figure 3: blank=%.2f%% of %d GETs; top non-blank: %v", f3.BlankShare*100, f3.TotalGETs, top(f3.NonBlank, 3))
}

func BenchmarkFigure4PhishedTLDs(b *testing.B) {
	w := world2012()
	var f4 analysis.Figure4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 = analysis.ComputeFigure4(w.Log, 100)
	}
	b.StopTimer()
	if len(f4.Shares) == 0 || f4.Shares[0].Key != "edu" {
		b.Fatalf("top TLD = %v, want edu dominant", f4.Shares)
	}
	b.ReportMetric(f4.EduShare*100, "edu-%")
	b.Logf("Figure 4: edu=%.1f%% of %d submissions; tail: %v", f4.EduShare*100, f4.N, top(f4.Shares, 5))
}

func BenchmarkFigure5SuccessRates(b *testing.B) {
	w := world2012()
	var f5 analysis.Figure5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f5 = analysis.ComputeFigure5(w.Log, 100, 25)
	}
	b.StopTimer()
	if f5.Mean < 0.08 || f5.Mean > 0.22 {
		b.Fatalf("mean = %.3f, want ~0.138", f5.Mean)
	}
	b.ReportMetric(f5.Mean*100, "mean-success-%")
	b.Logf("Figure 5: mean=%.1f%% range=%.1f%%–%.1f%% over %d pages (paper 13.78%%, 3–45%%)",
		f5.Mean*100, f5.Min*100, f5.Max*100, len(f5.PerPage))
}

func BenchmarkFigure6SubmissionProfile(b *testing.B) {
	w := world2012()
	var f6 analysis.Figure6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f6 = analysis.ComputeFigure6(w.Log, 100)
	}
	b.StopTimer()
	if len(f6.StandardAvg) == 0 || len(f6.Outlier) == 0 {
		b.Fatal("missing series")
	}
	b.ReportMetric(float64(f6.OutlierQuietHours), "outlier-quiet-h")
	b.Logf("Figure 6: %d pages, outlier quiet %dh (paper ~15h), outlier span %dh",
		f6.Pages, f6.OutlierQuietHours, len(f6.Outlier))
}

// ---- Figure 7 ---------------------------------------------------------------

func BenchmarkFigure7DecoyAccess(b *testing.B) {
	w := world2012()
	var f7 analysis.Figure7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f7 = analysis.ComputeFigure7(w.Log)
	}
	b.StopTimer()
	if f7.Within7Hours <= f7.Within30Min || f7.Within7Hours == 0 {
		b.Fatalf("decoy CDF broken: %+v", f7)
	}
	b.ReportMetric(f7.Within30Min*100, "within30m-%")
	b.ReportMetric(f7.Within7Hours*100, "within7h-%")
	b.Logf("Figure 7: %d decoys, accessed %.0f%%, ≤30min %.0f%% (paper 20%%), ≤7h %.0f%% (paper 50%%)",
		f7.Submitted, f7.AccessedShare*100, f7.Within30Min*100, f7.Within7Hours*100)
}

// ---- Figure 8 ---------------------------------------------------------------

func BenchmarkFigure8IPActivity(b *testing.B) {
	w := world2012()
	var f8 analysis.Figure8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f8 = analysis.ComputeFigure8(w.Log)
	}
	b.StopTimer()
	if f8.MaxAccountsPerIPDay > 10 {
		b.Fatalf("discipline cap broken: %d accounts on one IP-day", f8.MaxAccountsPerIPDay)
	}
	if f8.PasswordOKShare < 0.55 || f8.PasswordOKShare > 0.85 {
		b.Fatalf("password-ok share = %.2f, want ~0.75", f8.PasswordOKShare)
	}
	b.ReportMetric(f8.MeanAccountsPerIPDay, "accounts/ip-day")
	b.ReportMetric(f8.PasswordOKShare*100, "password-ok-%")
	b.Logf("Figure 8: %.1f accounts/IP-day (paper 9.6, cap 10, max %d), password-ok %.0f%% (paper 75%%), %d IP-days",
		f8.MeanAccountsPerIPDay, f8.MaxAccountsPerIPDay, f8.PasswordOKShare*100, f8.IPDays)
}

// ---- Table 3 ----------------------------------------------------------------

func BenchmarkTable3SearchTerms(b *testing.B) {
	w := world2012()
	var t3 analysis.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 = analysis.ComputeTable3(w.Log)
	}
	b.StopTimer()
	if t3.FinanceShare < 0.75 {
		b.Fatalf("finance share = %.2f, want overwhelming", t3.FinanceShare)
	}
	b.ReportMetric(t3.FinanceShare*100, "finance-%")
	b.Logf("Table 3: finance=%.0f%% creds=%.1f%% es=%v zh=%v; top: %v",
		t3.FinanceShare*100, t3.CredShare*100, t3.HasSpanish, t3.HasChinese, top(t3.Terms, 5))
}

// ---- §5.2 assessment --------------------------------------------------------

func BenchmarkAssessmentSection52(b *testing.B) {
	w := world2012()
	var a analysis.Assessment
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = analysis.ComputeAssessment(w.Log, 575)
	}
	b.StopTimer()
	if a.MeanDuration < 2*time.Minute || a.MeanDuration > 4*time.Minute {
		b.Fatalf("mean assessment = %v, want ~3m", a.MeanDuration)
	}
	b.ReportMetric(a.MeanDuration.Seconds(), "assess-sec")
	b.Logf("§5.2: %d cases, mean %v (paper 3m); folders starred=%.0f%% drafts=%.0f%% sent=%.0f%% trash=%.1f%% (paper 16/11/5/<1)",
		a.Cases, a.MeanDuration.Round(time.Second),
		a.FolderOpenRates[event.FolderStarred]*100, a.FolderOpenRates[event.FolderDrafts]*100,
		a.FolderOpenRates[event.FolderSent]*100, a.FolderOpenRates[event.FolderTrash]*100)
}

// ---- §5.3 exploitation ------------------------------------------------------

func BenchmarkExploitationSection53(b *testing.B) {
	w := world2012()
	var e analysis.Exploitation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = analysis.ComputeExploitation(w.Log, 575)
	}
	b.StopTimer()
	if e.RecipientsDelta <= e.VolumeDelta {
		b.Fatal("recipients delta must exceed volume delta (paper +630% vs +25%)")
	}
	b.ReportMetric(e.ScamShare*100, "scam-%")
	b.Logf("§5.3: vol %+.0f%% (paper +25%%) rcpts %+.0f%% (paper +630%%) reports %+.0f%% (paper +39%%) scam/phish %.0f/%.0f (paper 65/35)",
		e.VolumeDelta*100, e.RecipientsDelta*100, e.ReportsDelta*100, e.ScamShare*100, e.PhishShare*100)
}

func BenchmarkContactRiskSection53(b *testing.B) {
	w := world2011()
	cutoff := w.Cfg.Start.Add(19 * 24 * time.Hour)
	var cr analysis.ContactRisk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr = analysis.ComputeContactRisk(w.Log, w.Dir, cutoff, 8*24*time.Hour, 56*24*time.Hour, 3000)
	}
	b.StopTimer()
	if cr.Multiplier < 5 {
		b.Fatalf("contact multiplier = %.1f×, want order of paper's 36×", cr.Multiplier)
	}
	b.ReportMetric(cr.Multiplier, "contact-multiplier")
	b.Logf("§5.3: contacts %.2f%% vs random %.2f%% → %.0f× (paper 36×; n=%d/%d)",
		cr.ContactRate*100, cr.RandomRate*100, cr.Multiplier, cr.ContactCohort, cr.RandomCohort)
}

// ---- §5.4 retention ---------------------------------------------------------

func BenchmarkRetentionSection54(b *testing.B) {
	old := world2011()
	cur := world2012()
	var r11, r12 analysis.Retention
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r11 = analysis.ComputeRetention(old.Log, 600)
		r12 = analysis.ComputeRetention(cur.Log, 575)
	}
	b.StopTimer()
	if r11.MassDeleteGivenLockout <= r12.MassDeleteGivenLockout {
		b.Fatal("mass-deletion must collapse 2011→2012 (restore defense)")
	}
	b.ReportMetric(r11.MassDeleteGivenLockout*100, "del11-%")
	b.ReportMetric(r12.MassDeleteGivenLockout*100, "del12-%")
	b.Logf("§5.4: massdelete|lockout %.0f%%→%.1f%% (paper 46%%→1.6%%); recchange %.0f%%→%.0f%% (paper 60%%→21%%); filters %.0f%% (15%%), reply-to %.0f%% (26%%)",
		r11.MassDeleteGivenLockout*100, r12.MassDeleteGivenLockout*100,
		r11.RecoveryChangeGivenLockout*100, r12.RecoveryChangeGivenLockout*100,
		r12.FilterShare*100, r12.ReplyToShare*100)
}

// ---- Figures 9–10 -----------------------------------------------------------

func BenchmarkFigure9RecoveryLatency(b *testing.B) {
	w := world2012()
	var f9 analysis.Figure9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f9 = analysis.ComputeFigure9(w.Log, 5000)
	}
	b.StopTimer()
	if f9.Within13Hour <= f9.Within1Hour {
		b.Fatal("latency CDF broken")
	}
	b.ReportMetric(f9.Within1Hour*100, "within1h-%")
	b.ReportMetric(f9.Within13Hour*100, "within13h-%")
	b.Logf("Figure 9: %d recoveries, ≤1h %.0f%% (paper 22%%), ≤13h %.0f%% (paper 50%%)",
		f9.Recoveries, f9.Within1Hour*100, f9.Within13Hour*100)
}

func BenchmarkFigure10RecoveryMethods(b *testing.B) {
	w := world2012()
	var f10 analysis.Figure10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f10 = analysis.ComputeFigure10(w.Log, w.Cfg.Start, w.End())
	}
	b.StopTimer()
	sms := f10.Methods[event.MethodSMS]
	email := f10.Methods[event.MethodEmail]
	fb := f10.Methods[event.MethodFallback]
	// SMS and email both sit near 75–81%; with modest sample sizes their
	// order can flip, so the hard assertion is only that both beat the
	// fallback by a wide margin.
	if sms.Rate <= fb.Rate+0.2 || email.Rate <= fb.Rate+0.2 {
		b.Fatalf("method ordering wrong: %+v", f10.Methods)
	}
	b.ReportMetric(sms.Rate*100, "sms-%")
	b.ReportMetric(email.Rate*100, "email-%")
	b.ReportMetric(fb.Rate*100, "fallback-%")
	b.Logf("Figure 10: sms=%.1f%% (80.91%%) email=%.1f%% (74.57%%) fallback=%.1f%% (14.20%%)",
		sms.Rate*100, email.Rate*100, fb.Rate*100)
}

// ---- Figures 11–12 ----------------------------------------------------------

func BenchmarkFigure11IPCountries(b *testing.B) {
	w := world2014()
	var f11 analysis.Figure11
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f11 = analysis.ComputeFigure11(w.Log, w.Plan, 3000)
	}
	b.StopTimer()
	top2 := map[string]bool{}
	for _, e := range top(f11.Shares, 2) {
		top2[e] = true
	}
	foundCN, foundMY := false, false
	for k := range top2 {
		if k[:2] == string(geo.China) {
			foundCN = true
		}
		if k[:2] == string(geo.Malaysia) {
			foundMY = true
		}
	}
	if !foundCN || !foundMY {
		b.Fatalf("top-2 countries = %v, want CN and MY", top(f11.Shares, 3))
	}
	b.Logf("Figure 11: %v over %d cases (paper: CN & MY dominate, ZA ≈10%%)", top(f11.Shares, 6), f11.Cases)
}

func BenchmarkFigure12PhoneCountries(b *testing.B) {
	w := world2012()
	var f12 analysis.Figure12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f12 = analysis.ComputeFigure12(w.Log, 300)
	}
	b.StopTimer()
	if f12.Phones == 0 {
		b.Fatal("no hijacker phones")
	}
	if k := f12.Shares[0].Key; k != string(geo.IvoryCoast) && k != string(geo.Nigeria) {
		b.Fatalf("top phone country = %s, want CI or NG", k)
	}
	b.Logf("Figure 12: %v over %d phones (paper: CI 33.8%%, NG 31.4%%, ZA 8.4%%, FR 6.4%%)",
		top(f12.Shares, 6), f12.Phones)
}

// ---- §6.3 channels ----------------------------------------------------------

func BenchmarkRecoveryChannelsSection63(b *testing.B) {
	w := world2012()
	secTotal, secRecycled := 0, 0
	w.Dir.All(func(a *identity.Account) {
		if a.SecondaryEmail != "" {
			secTotal++
			if a.SecondaryRecycled {
				secRecycled++
			}
		}
	})
	var ch analysis.RecoveryChannels
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch = analysis.ComputeRecoveryChannels(w.Log, secTotal, secRecycled)
	}
	b.StopTimer()
	b.ReportMetric(ch.RecycledShare*100, "recycled-%")
	b.Logf("§6.3: recycled=%.1f%% (paper 7%%), bounces=%.1f%% of %d email attempts (paper ~5%%)",
		ch.RecycledShare*100, ch.BounceShare*100, ch.EmailAttempts)
}

// ---- ablations (DESIGN.md §4) ----------------------------------------------

// ablationWorld runs a small world with the given mutation.
func ablationWorld(seed int64, mutate func(*core.Config)) *core.World {
	cfg := core.DefaultConfig(seed)
	cfg.PopulationN = 2500
	cfg.Days = 14
	cfg.CampaignsPerDay = 8
	if mutate != nil {
		mutate(&cfg)
	}
	w := core.NewWorld(cfg)
	w.Run()
	return w
}

// hijackSuccessRate is the share of hijacker login attempts that got in.
func hijackSuccessRate(s *logstore.Store) float64 {
	attempts, successes := 0, 0
	for _, l := range logstore.Select[event.Login](s) {
		if l.Actor != event.ActorHijacker {
			continue
		}
		attempts++
		if l.Outcome == event.LoginSuccess {
			successes++
		}
	}
	if attempts == 0 {
		return 0
	}
	return float64(successes) / float64(attempts)
}

// BenchmarkAblationRiskThreshold sweeps the challenge threshold: the
// §8.1 trade-off between catching hijackers and inconveniencing users.
func BenchmarkAblationRiskThreshold(b *testing.B) {
	w := world2012()
	thresholds := []float64{0.3, 0.5, 0.62, 0.8}
	var pts []analysis.RiskOperatingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = analysis.SweepRiskThreshold(w.Log, thresholds)
	}
	b.StopTimer()
	for _, pt := range pts {
		b.Logf("threshold %.2f: hijackers challenged %.0f%%, owners challenged %.2f%%",
			pt.Threshold, pt.HijackerCaught*100, pt.OwnerChallenged*100)
	}
	if pts[0].HijackerCaught < pts[len(pts)-1].HijackerCaught {
		b.Fatal("sweep not monotone")
	}
}

// BenchmarkAblationRiskSignals removes one risk signal at a time and
// measures how much easier hijacker logins get.
func BenchmarkAblationRiskSignals(b *testing.B) {
	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"full", nil},
		{"no-geo", func(c *core.Config) { c.RiskW.NewCountry = 0; c.RiskW.ImpossibleHop = 0 }},
		{"no-device", func(c *core.Config) { c.RiskW.NewDevice = 0 }},
		{"no-fanout", func(c *core.Config) { c.RiskW.IPFanout = 0 }},
		{"disabled", func(c *core.Config) { c.Auth.RiskEnabled = false }},
	}
	results := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			w := ablationWorld(500+int64(i), v.mutate)
			results[v.name] = hijackSuccessRate(w.Log)
		}
	}
	b.StopTimer()
	for _, v := range variants {
		b.Logf("%-10s hijacker login success %.0f%%", v.name, results[v.name]*100)
	}
	if results["disabled"] < results["full"] {
		b.Fatal("disabling risk analysis should help hijackers")
	}
}

// BenchmarkAblationBehaviorWindow sweeps the behavioral detector's
// observation window: fire fast (little evidence) vs fire late (more
// exposure) — §8.2's "last resort" concern quantified.
func BenchmarkAblationBehaviorWindow(b *testing.B) {
	w := world2012()
	windows := []time.Duration{30 * time.Second, time.Minute, 2 * time.Minute, 0}
	type res struct {
		recall   float64
		exposure time.Duration
	}
	results := map[time.Duration]res{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, win := range windows {
			cfg := behavior.DefaultConfig()
			cfg.Window = win
			ev := analysis.EvaluateBehaviorDetector(w.Log, cfg)
			results[win] = res{ev.Recall, ev.MeanExposure}
		}
	}
	b.StopTimer()
	for _, win := range windows {
		name := win.String()
		if win == 0 {
			name = "unlimited"
		}
		b.Logf("window %-10s recall %.0f%% exposure %v",
			name, results[win].recall*100, results[win].exposure.Round(time.Second))
	}
	if results[0].recall < results[30*time.Second].recall {
		b.Fatal("longer window must not lose recall")
	}
}

// BenchmarkAblationNotifications compares end-to-end hijack→recovery
// latency with and without proactive notifications (§6.2/§8.2). The
// latency anchor is the ground-truth hijack time, which stays comparable
// when notifications (the system flag source) are off.
func BenchmarkAblationNotifications(b *testing.B) {
	hijackToRecovery := func(w *core.World) (median float64, n int) {
		var s stats.Sample
		for _, r := range logstore.Select[event.ClaimResolved](w.Log) {
			if !r.Success || r.HijackedAt.IsZero() {
				continue
			}
			s.Add(r.When().Sub(r.HijackedAt).Hours())
		}
		return s.Median(), s.N()
	}
	var medOn, medOff float64
	var nOn, nOff int
	var revOn, revOff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wOn := ablationWorld(700+int64(i), nil)
		wOff := ablationWorld(700+int64(i), func(c *core.Config) { c.Auth.NotificationsEnabled = false })
		medOn, nOn = hijackToRecovery(wOn)
		medOff, nOff = hijackToRecovery(wOff)
		revOn = analysis.ComputeMonetization(wOn.Log).Revenue
		revOff = analysis.ComputeMonetization(wOff.Log).Revenue
	}
	b.StopTimer()
	b.ReportMetric(medOn, "median-h-on")
	b.ReportMetric(medOff, "median-h-off")
	b.Logf("notifications on:  median hijack→recovery %.1fh over %d recoveries, scam revenue $%.0f", medOn, nOn, revOn)
	b.Logf("notifications off: median hijack→recovery %.1fh over %d recoveries, scam revenue $%.0f", medOff, nOff, revOff)
	if nOn > 10 && nOff > 10 && medOn >= medOff {
		b.Log("warning: notifications did not speed up recovery in this sample")
	}
}

// BenchmarkAblationRestore reruns the 2011→2012 natural experiment: with
// restore-on-recovery enabled, hijacker mass deletion stops costing
// victims their mail.
func BenchmarkAblationRestore(b *testing.B) {
	tactics := hijacker.Tactics2011() // mass deletion at its 2011 rate
	// Metric: mean end-of-window mailbox size of accounts that suffered a
	// hijacker mass deletion. With restore enabled, recovery puts the
	// history back; without it the victim keeps only post-deletion mail.
	meanDeletedMailbox := func(w *core.World) (mean float64, n int) {
		seen := map[identity.AccountID]bool{}
		total := 0
		for _, d := range logstore.Select[event.MassDeletion](w.Log) {
			if d.Actor != event.ActorHijacker || seen[d.Account] {
				continue
			}
			seen[d.Account] = true
			total += w.Mail.Mailbox(d.Account).Len()
		}
		if len(seen) == 0 {
			return 0, 0
		}
		return float64(total) / float64(len(seen)), len(seen)
	}
	var sizeOn, sizeOff float64
	var nOn, nOff int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wOn := ablationWorld(900+int64(i), func(c *core.Config) {
			c.Crews = withTactics(core.Roster2011(), tactics)
		})
		wOff := ablationWorld(900+int64(i), func(c *core.Config) {
			c.Crews = withTactics(core.Roster2011(), tactics)
			c.Recovery = recovery.Config2011()
		})
		sizeOn, nOn = meanDeletedMailbox(wOn)
		sizeOff, nOff = meanDeletedMailbox(wOff)
	}
	b.StopTimer()
	b.ReportMetric(sizeOn, "msgs-restore-on")
	b.ReportMetric(sizeOff, "msgs-restore-off")
	b.Logf("restore on:  mass-deleted victims keep %.0f messages on average (n=%d)", sizeOn, nOn)
	b.Logf("restore off: mass-deleted victims keep %.0f messages on average (n=%d)", sizeOff, nOff)
	if nOn > 3 && nOff > 3 && sizeOn <= sizeOff {
		b.Log("warning: restore did not preserve content in this sample")
	}
}

func withTactics(specs []core.CrewSpec, t hijacker.Tactics) []core.CrewSpec {
	out := make([]core.CrewSpec, len(specs))
	for i, s := range specs {
		s.Config.Tactics = t
		out[i] = s
	}
	return out
}

// top formats the first n entries compactly.
func top(entries []stats.Entry, n int) []string {
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, 0, n)
	for _, e := range entries[:n] {
		out = append(out, fmt.Sprintf("%s=%.1f%%", e.Key, e.Share*100))
	}
	return out
}

// BenchmarkAblationAppPasswords quantifies §8.2's second-factor caveat:
// 2-step verification stops credential-phished hijacks cold, but issuing
// phishable application-specific passwords for legacy clients reopens the
// door.
func BenchmarkAblationAppPasswords(b *testing.B) {
	// Hijack success measured only over 2SV-enrolled accounts.
	successOn2SV := func(w *core.World) (rate float64, attempts int) {
		succ := 0
		for _, l := range logstore.Select[event.Login](w.Log) {
			if l.Actor != event.ActorHijacker {
				continue
			}
			a := w.Dir.Get(l.Account)
			if a == nil || !a.TwoSV || a.LockedByPhone {
				continue
			}
			attempts++
			if l.Outcome == event.LoginSuccess {
				succ++
			}
		}
		if attempts == 0 {
			return 0, 0
		}
		return float64(succ) / float64(attempts), attempts
	}
	var rateNoApp, rateApp float64
	var nNoApp, nApp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wNoApp := ablationWorld(1100+int64(i), func(c *core.Config) {
			c.TwoSVAdoption = 0.5
			c.AppPasswordShare = 0
		})
		wApp := ablationWorld(1100+int64(i), func(c *core.Config) {
			c.TwoSVAdoption = 0.5
			c.AppPasswordShare = 1.0
		})
		rateNoApp, nNoApp = successOn2SV(wNoApp)
		rateApp, nApp = successOn2SV(wApp)
	}
	b.StopTimer()
	b.ReportMetric(rateNoApp*100, "2sv-only-%")
	b.ReportMetric(rateApp*100, "2sv+apppw-%")
	b.Logf("2SV only:          hijacker success on 2SV accounts %.0f%% (n=%d)", rateNoApp*100, nNoApp)
	b.Logf("2SV + app passwd:  hijacker success on 2SV accounts %.0f%% (n=%d)", rateApp*100, nApp)
	if nApp > 10 && rateApp <= rateNoApp {
		b.Log("warning: app passwords did not weaken 2SV in this sample")
	}
}

// BenchmarkWorkScheduleSection55 regenerates the §5.5 "ordinary office
// job" evidence from hijacker login timestamps.
func BenchmarkWorkScheduleSection55(b *testing.B) {
	w := world2012()
	var ws analysis.WorkSchedule
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws = analysis.ComputeWorkSchedule(w.Log)
	}
	b.StopTimer()
	if ws.WeekendShare > 0.05 {
		b.Fatalf("weekend share = %.2f, crews work weekends?", ws.WeekendShare)
	}
	b.ReportMetric(ws.WeekendShare*100, "weekend-%")
	b.ReportMetric(ws.LunchDip*100, "lunch-dip-%")
	b.Logf("§5.5: weekend %.1f%% (uniform 28.6%%), lunch dip %.0f%%, active hours %d, n=%d",
		ws.WeekendShare*100, ws.LunchDip*100, ws.ActiveHours, ws.Logins)
}

// BenchmarkDoppelgangerReview evaluates the §5.4 recovery-time review of
// Reply-To/forwarding settings via address similarity.
func BenchmarkDoppelgangerReview(b *testing.B) {
	w := world2012()
	var d analysis.DoppelgangerEval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = analysis.EvaluateDoppelgangerDetector(w.Log, w.Dir, 0.75)
	}
	b.StopTimer()
	if d.MeanHijackerSim <= d.MeanOwnerSim {
		b.Fatal("no similarity separation")
	}
	b.ReportMetric(d.Precision*100, "precision-%")
	b.ReportMetric(d.Recall*100, "recall-%")
	b.Logf("§5.4 doppelganger review: precision %.0f%% recall %.0f%% (sim %.2f vs %.2f, %d hijacker settings)",
		d.Precision*100, d.Recall*100, d.MeanHijackerSim, d.MeanOwnerSim, d.HijackerSettings)
}

// BenchmarkScamFunnel regenerates the monetization funnel: pleas →
// engagement → routed replies → wires, the economics behind §5.3/§5.4.
func BenchmarkScamFunnel(b *testing.B) {
	w := world2012()
	var m analysis.Monetization
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = analysis.ComputeMonetization(w.Log)
	}
	b.StopTimer()
	if m.PleaRecipients == 0 {
		b.Fatal("no scam pleas in the world")
	}
	if m.Replies > 0 && m.ReachedCrew > m.Replies {
		b.Fatal("funnel not monotone")
	}
	b.ReportMetric(float64(m.Payments), "wires")
	b.ReportMetric(m.Revenue, "revenue-usd")
	b.Logf("funnel: %d plea recipients → %d engaged → %d reached crew → %d wires ($%.0f, $%.0f/exploited hijack; routes %v)",
		m.PleaRecipients, m.Replies, m.ReachedCrew, m.Payments, m.Revenue, m.RevenuePerHijack, m.ReplyRoutes)
}

// BenchmarkAblationDeviceSpoofing measures how much crews gain from
// mimicking the victim's browser fingerprint (§8.1: hijackers know their
// way around "browser plugins"), which blinds the new-device risk signal.
func BenchmarkAblationDeviceSpoofing(b *testing.B) {
	spoofAll := func(specs []core.CrewSpec) []core.CrewSpec {
		out := make([]core.CrewSpec, len(specs))
		for i, s := range specs {
			s.Config.DeviceSpoofing = true
			out[i] = s
		}
		return out
	}
	var plain, spoofed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wPlain := ablationWorld(1300+int64(i), nil)
		wSpoof := ablationWorld(1300+int64(i), func(c *core.Config) {
			c.Crews = spoofAll(c.Crews)
		})
		plain = hijackSuccessRate(wPlain.Log)
		spoofed = hijackSuccessRate(wSpoof.Log)
	}
	b.StopTimer()
	b.ReportMetric(plain*100, "plain-%")
	b.ReportMetric(spoofed*100, "spoofed-%")
	b.Logf("shared kit fingerprint: hijacker login success %.0f%%", plain*100)
	b.Logf("spoofed owner device:   hijacker login success %.0f%%", spoofed*100)
	if spoofed < plain {
		b.Log("warning: spoofing did not help in this sample")
	}
}

// BenchmarkLifecycleFigure2 regenerates Figure 2's hijacking cycle as a
// survival funnel.
func BenchmarkLifecycleFigure2(b *testing.B) {
	w := world2012()
	var l analysis.Lifecycle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l = analysis.ComputeLifecycle(w.Log)
	}
	b.StopTimer()
	if l.AccountsEntered > l.AccountsAttempted || l.AccountsExploited > l.AccountsEntered {
		b.Fatalf("funnel not monotone: %+v", l)
	}
	if l.AccountsRecovered > l.ClaimsFiled {
		b.Fatalf("recoveries exceed claims: %+v", l)
	}
	b.ReportMetric(float64(l.AccountsEntered), "hijacks")
	b.Logf("Figure 2: %d lures → %d creds → %d entered → %d exploited → %d locked → %d claims → %d recovered",
		l.LuresDelivered, l.CredentialsCaptured, l.AccountsEntered,
		l.AccountsExploited, l.AccountsLockedOut, l.ClaimsFiled, l.AccountsRecovered)
}

// BenchmarkAblationBehavioralDefense flips the online §8.2 behavioral
// defense on and compares hijacker monetization: the detector fires after
// exposure ("already too late" for secrecy) but still cuts the scam
// window by suspending accounts and accelerating recovery.
func BenchmarkAblationBehavioralDefense(b *testing.B) {
	var revOff, revOn float64
	var suspended int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wOff := ablationWorld(1500+int64(i), nil)
		wOn := ablationWorld(1500+int64(i), func(c *core.Config) { c.BehavioralDefense = true })
		revOff = analysis.ComputeMonetization(wOff.Log).Revenue
		revOn = analysis.ComputeMonetization(wOn.Log).Revenue
		suspended = wOn.Guard.Suspended
	}
	b.StopTimer()
	b.ReportMetric(revOff, "revenue-off-usd")
	b.ReportMetric(revOn, "revenue-on-usd")
	b.Logf("behavioral defense off: scam revenue $%.0f", revOff)
	b.Logf("behavioral defense on:  scam revenue $%.0f (%d accounts suspended)", revOn, suspended)
	if revOn > revOff {
		b.Log("warning: defense did not reduce revenue in this sample")
	}
}

// BenchmarkAblationRecoveryFraud compares the §6.3 fallback policies:
// offering the knowledge test only as a true last resort vs whenever the
// stronger methods fail. The unrestricted policy hands impostors a
// guessing route around SMS verification.
func BenchmarkAblationRecoveryFraud(b *testing.B) {
	var restricted, open analysis.RecoveryFraud
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wRestricted := ablationWorld(1700+int64(i), nil)
		wOpen := ablationWorld(1700+int64(i), func(c *core.Config) {
			c.Recovery.FallbackLastResortOnly = false
		})
		restricted = analysis.ComputeRecoveryFraud(wRestricted.Log)
		open = analysis.ComputeRecoveryFraud(wOpen.Log)
	}
	b.StopTimer()
	b.ReportMetric(restricted.Rate*100, "fraud-restricted-%")
	b.ReportMetric(open.Rate*100, "fraud-open-%")
	b.Logf("fallback last-resort only: impostor claims %d, won %d (%.0f%%)",
		restricted.Attempts, restricted.Successes, restricted.Rate*100)
	b.Logf("fallback always offered:   impostor claims %d, won %d (%.0f%%)",
		open.Attempts, open.Successes, open.Rate*100)
	if open.Attempts > 10 && open.Rate <= restricted.Rate {
		b.Log("warning: open fallback did not raise fraud success in this sample")
	}
}
