// Command analyze runs the measurement pipeline over a previously dumped
// event log (the NDJSON produced by `hijacksim -events`), so one
// simulation can be analyzed many times without re-running it — the same
// separation between log collection and map-reduce analysis the paper's
// methodology describes.
//
// The load seals the store (a dumped log is complete by construction), so
// every analysis gets the kind-indexed fast paths, and the full analysis
// registry — the same list RunStudy iterates — fans out over a worker
// pool. Only analyses needing the live account directory are skipped.
//
// Usage:
//
//	hijacksim -pop 8000 -days 30 -decoys 100 -events world.ndjson.gz
//	analyze -events world.ndjson.gz [-skip-corrupt] [-par N] [-decode-shards N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/logstore"
	"manualhijack/internal/report"
)

func main() {
	eventsIn := flag.String("events", "", "NDJSON event log to analyze (required; .gz detected transparently)")
	skipCorrupt := flag.Bool("skip-corrupt", false,
		"skip malformed, truncated, or out-of-order lines instead of failing; every drop is reported")
	par := flag.Int("par", 0, "analysis worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("decode-shards", 0, "parallel NDJSON decode shards (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if *eventsIn == "" {
		fmt.Fprintln(os.Stderr, "analyze: -events is required")
		os.Exit(2)
	}

	start := time.Now()
	s, st, err := logstore.ReadNDJSONFile(*eventsIn, logstore.ReadOptions{
		SkipCorrupt: *skipCorrupt,
		Shards:      *shards,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		if !*skipCorrupt {
			fmt.Fprintln(os.Stderr, "analyze: (re-run with -skip-corrupt to drop bad lines and keep going)")
		}
		os.Exit(1)
	}
	fmt.Printf("loaded %d records from %s in %s (sealed, kind-indexed)\n",
		st.Records, *eventsIn, time.Since(start).Round(time.Millisecond))
	if st.Legacy {
		fmt.Println("note: headerless legacy dump — observation window estimated from record timestamps")
	}
	if st.Dropped > 0 {
		fmt.Printf("warning: dropped %d malformed line(s)\n", st.Dropped)
	}
	if st.OutOfOrder > 0 {
		fmt.Printf("warning: dropped %d out-of-order record(s)\n", st.OutOfOrder)
	}
	if st.Missing > 0 {
		fmt.Printf("warning: dump truncated — header declares %d more record(s) than the file holds\n", st.Missing)
	}
	if st.Truncated {
		fmt.Println("warning: input ended mid-stream; analyzed the intact prefix")
	}
	fmt.Println()

	// Log overview, answered from the sealed kind index.
	kinds := s.KindCounts()
	rows := [][]string{}
	for _, k := range s.SortedKinds() {
		rows = append(rows, []string{string(k), fmt.Sprintf("%d", kinds[k])})
	}
	report.Table(os.Stdout, "records by kind", []string{"kind", "count"}, rows)
	fmt.Println()

	// The observation window: from the dump header when present, else the
	// decoded records' time range (legacy dumps).
	winStart, winEnd := st.Meta.Start, st.Meta.End
	if winStart.IsZero() {
		winStart = st.First
	}
	if winEnd.IsZero() {
		winEnd = st.Last.Add(time.Second)
	}

	r, skipped := core.RunAnalyses(core.AnalysisInput{
		Log:   s,
		Start: winStart,
		End:   winEnd,
		Plan:  core.DefaultIPPlan(),
	}, *par)

	// The lifecycle funnel headline (also the CI smoke target).
	lc := r.Lifecycle
	fmt.Printf("lifecycle: %d lures → %d creds → %d entered → %d exploited → %d claims → %d recovered\n\n",
		lc.LuresDelivered, lc.CredentialsCaptured, lc.AccountsEntered,
		lc.AccountsExploited, lc.ClaimsFiled, lc.AccountsRecovered)

	report.RenderOffline(os.Stdout, r, *eventsIn, skipped)
}
