// Command analyze runs the measurement pipeline over a previously dumped
// event log (the NDJSON produced by `hijacksim -events`), so one
// simulation can be analyzed many times without re-running it — the same
// separation between log collection and map-reduce analysis the paper's
// methodology describes.
//
// The load seals the store (a dumped log is complete by construction), so
// every analysis gets the kind-indexed fast paths, and the full analysis
// registry — the same list RunStudy iterates — fans out over a worker
// pool. Only analyses needing the live account directory are skipped.
//
// With -stream the dump is additionally replayed through the incremental
// streaming path (internal/stream) and the live-relevant analyses are
// checked for exact equality against the batch registry output — the
// parity gate that keeps the online and offline pipelines from drifting.
// A mismatch exits non-zero.
//
// -events also accepts a segment directory (the layout `hijacksim
// -spill-dir` produces): it is opened as a virtual store that pages
// segments through a small cache (-cache-segments) instead of decoding
// the whole log, so analysis RAM is bounded by the segment size. With
// -spill-dir a *monolithic* dump is first re-segmented into that
// directory and then analyzed the same bounded way — the one-time path
// from an existing big dump to bounded-RAM analysis.
//
// Usage:
//
//	hijacksim -pop 8000 -days 30 -decoys 100 -events world.ndjson.gz
//	analyze -events world.ndjson.gz [-skip-corrupt] [-par N] [-decode-shards N] [-stream]
//	        [-cache-segments N] [-scan-workers N]
//	        [-spill-dir d [-segment-records N] [-segment-gzip]]
//
// -scan-workers sets how many segments the analysis scans decode ahead of
// the one being folded (report bytes are unaffected). After a segmented
// analysis the segment-cache counters (hits, decode misses, deduplicated
// prefetches, evictions) are printed, so scan-pattern regressions —
// thrash, dead prefetch — are visible from the CLI.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/core"
	"manualhijack/internal/logstore"
	"manualhijack/internal/report"
	"manualhijack/internal/stream"
)

func main() {
	eventsIn := flag.String("events", "", "NDJSON event log to analyze (required; .gz detected transparently)")
	skipCorrupt := flag.Bool("skip-corrupt", false,
		"skip malformed, truncated, or out-of-order lines instead of failing; every drop is reported")
	par := flag.Int("par", 0, "analysis worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("decode-shards", 0, "parallel NDJSON decode shards (0 = GOMAXPROCS, 1 = sequential)")
	streaming := flag.Bool("stream", false,
		"also replay the dump through the incremental streaming analyses and verify they match the batch output exactly")
	cacheSegments := flag.Int("cache-segments", 0,
		"decoded segments kept in RAM when reading a segment directory (0 = logstore default)")
	scanWorkers := flag.Int("scan-workers", 0,
		"segments decoded ahead during analysis scans over a segment directory (0 = 1)")
	spillDir := flag.String("spill-dir", "",
		"re-segment a monolithic dump into this directory first, then analyze the segments with bounded RAM")
	segRecords := flag.Int("segment-records", 0, "records per segment when re-segmenting (0 = logstore default)")
	segGzip := flag.Bool("segment-gzip", false, "gzip segment files when re-segmenting")
	flag.Parse()
	if *eventsIn == "" {
		fmt.Fprintln(os.Stderr, "analyze: -events is required")
		os.Exit(2)
	}

	opts := logstore.ReadOptions{
		SkipCorrupt:   *skipCorrupt,
		Shards:        *shards,
		CacheSegments: *cacheSegments,
		ScanWorkers:   *scanWorkers,
	}
	start := time.Now()
	var s *logstore.Store
	var st *logstore.ReadStats
	var err error
	if *spillDir != "" {
		s, st, err = logstore.ResegmentNDJSONFile(*eventsIn, logstore.SpillConfig{
			Dir:            *spillDir,
			SegmentRecords: *segRecords,
			CacheSegments:  *cacheSegments,
			ScanWorkers:    *scanWorkers,
			Compress:       *segGzip,
		}, opts)
	} else {
		s, st, err = logstore.ReadNDJSONFile(*eventsIn, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		if !*skipCorrupt {
			fmt.Fprintln(os.Stderr, "analyze: (re-run with -skip-corrupt to drop bad lines and keep going)")
		}
		os.Exit(1)
	}
	if st.Segments > 0 {
		fmt.Printf("loaded %d records from %s in %s (%d segment(s), cache-bounded reads)\n",
			st.Records, *eventsIn, time.Since(start).Round(time.Millisecond), st.Segments)
	} else {
		fmt.Printf("loaded %d records from %s in %s (sealed, kind-indexed)\n",
			st.Records, *eventsIn, time.Since(start).Round(time.Millisecond))
	}
	if st.Legacy {
		fmt.Println("note: headerless legacy dump — observation window estimated from record timestamps")
	}
	if st.Dropped > 0 {
		fmt.Printf("warning: dropped %d malformed line(s)\n", st.Dropped)
	}
	if st.OutOfOrder > 0 {
		fmt.Printf("warning: dropped %d out-of-order record(s)\n", st.OutOfOrder)
	}
	if st.Missing > 0 {
		fmt.Printf("warning: dump truncated — header declares %d more record(s) than the file holds\n", st.Missing)
	}
	if st.Truncated {
		fmt.Println("warning: input ended mid-stream; analyzed the intact prefix")
	}
	if st.SegmentsDropped > 0 {
		fmt.Printf("warning: dropped %d corrupt segment(s) whole — time-windowed aggregates cover the surviving segments only\n",
			st.SegmentsDropped)
	}
	fmt.Println()

	// Log overview, answered from the sealed kind index.
	kinds := s.KindCounts()
	rows := [][]string{}
	for _, k := range s.SortedKinds() {
		rows = append(rows, []string{string(k), fmt.Sprintf("%d", kinds[k])})
	}
	report.Table(os.Stdout, "records by kind", []string{"kind", "count"}, rows)
	fmt.Println()

	// The observation window: from the dump header when present, else the
	// decoded records' time range (legacy dumps).
	winStart, winEnd := st.Meta.Start, st.Meta.End
	if winStart.IsZero() {
		winStart = st.First
	}
	if winEnd.IsZero() {
		winEnd = st.Last.Add(time.Second)
	}

	r, skipped := core.RunAnalyses(core.AnalysisInput{
		Log:   s,
		Start: winStart,
		End:   winEnd,
		Plan:  core.DefaultIPPlan(),
	}, *par)

	// The lifecycle funnel headline (also the CI smoke target).
	lc := r.Lifecycle
	fmt.Printf("lifecycle: %d lures → %d creds → %d entered → %d exploited → %d claims → %d recovered\n\n",
		lc.LuresDelivered, lc.CredentialsCaptured, lc.AccountsEntered,
		lc.AccountsExploited, lc.ClaimsFiled, lc.AccountsRecovered)

	// Per-archetype detection scorecard, one machine-parseable line per
	// archetype (empty when the dump carries no tagged actors). CI diffs
	// these lines against the streaming replay's verbatim.
	printScorecard("archetype-scorecard", r.ArchetypeScorecard)
	if len(r.ArchetypeScorecard.Rows) > 0 {
		fmt.Println()
	}

	if s.Segmented() {
		// Machine-parseable: CI and bench.sh read this line.
		cs := s.SegmentCacheStats()
		fmt.Printf("segment-cache: hits=%d misses=%d prefetch-deduped=%d evictions=%d\n\n",
			cs.Hits, cs.Misses, cs.PrefetchDeduped, cs.Evictions)
	}

	if *streaming {
		if !runStreamParity(s, r) {
			os.Exit(1)
		}
		fmt.Println()
	}

	report.RenderOffline(os.Stdout, r, *eventsIn, skipped)
}

// runStreamParity replays the sealed store through the streaming bus and
// compares the incremental results against the batch registry's. It
// reports whether they match exactly.
func runStreamParity(s *logstore.Store, r *core.StudyReport) bool {
	start := time.Now()
	bus := stream.NewBus(stream.DefaultSuite(core.DefaultIPPlan())...)
	n := bus.Replay(s)
	snap := bus.Snapshot()
	batch := stream.Report{
		Lifecycle: r.Lifecycle,
		Fig6:      r.Fig6,
		Fig8:      r.Fig8,
		Fig11:     r.Fig11,
		Scorecard: r.ArchetypeScorecard,
	}
	if diffs := stream.AnalysisDiff(snap, batch); len(diffs) > 0 {
		fmt.Printf("streaming parity FAILED: %v differ between the incremental and batch paths\n", diffs)
		return false
	}
	fmt.Printf("streaming parity ok: %d events replayed in %s, incremental == batch for lifecycle, figure-6, figure-8, figure-11, archetype-scorecard\n",
		n, time.Since(start).Round(time.Millisecond))
	slc := snap.Lifecycle
	fmt.Printf("streaming lifecycle: %d lures → %d creds → %d entered → %d exploited → %d claims → %d recovered\n",
		slc.LuresDelivered, slc.CredentialsCaptured, slc.AccountsEntered,
		slc.AccountsExploited, slc.ClaimsFiled, slc.AccountsRecovered)
	printScorecard("streaming archetype-scorecard", snap.Scorecard)
	return true
}

// printScorecard emits one line per archetype row plus an owner
// false-positive-cost line, all carrying the given prefix. The batch and
// streaming paths share this formatter so CI can diff their output
// verbatim.
func printScorecard(prefix string, sc analysis.ArchetypeScorecard) {
	for _, row := range sc.Rows {
		fmt.Printf("%s: %s accounts=%d attempts=%d logins=%d challenged=%d blocked=%d detected=%d recall=%.3f median-ttd=%s\n",
			prefix, row.Archetype, row.Accounts, row.Attempts, row.Logins,
			row.Challenged, row.Blocked, row.Detected, row.Recall, row.MedianTTD)
	}
	if len(sc.Rows) > 0 {
		fmt.Printf("%s: owner-cost logins=%d challenged=%d blocked=%d challenged-share=%.4f blocked-share=%.4f\n",
			prefix, sc.OwnerLogins, sc.OwnerChallenged, sc.OwnerBlocked,
			sc.OwnerChallengedShare, sc.OwnerBlockedShare)
	}
}
