// Command analyze runs the measurement pipeline over a previously dumped
// event log (the NDJSON produced by `hijacksim -events`), so one
// simulation can be analyzed many times without re-running it — the same
// separation between log collection and map-reduce analysis the paper's
// methodology describes.
//
// Usage:
//
//	hijacksim -pop 8000 -days 30 -decoys 100 -events world.ndjson
//	analyze -events world.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/behavior"
	"manualhijack/internal/geo"
	"manualhijack/internal/logstore"
	"manualhijack/internal/report"
)

func main() {
	eventsIn := flag.String("events", "", "NDJSON event log to analyze (required)")
	flag.Parse()
	if *eventsIn == "" {
		fmt.Fprintln(os.Stderr, "analyze: -events is required")
		os.Exit(2)
	}

	f, err := os.Open(*eventsIn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	s, err := logstore.ReadNDJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d records from %s\n\n", s.Len(), *eventsIn)

	// Log overview.
	kinds := s.KindCounts()
	rows := [][]string{}
	for _, k := range s.SortedKinds() {
		rows = append(rows, []string{string(k), fmt.Sprintf("%d", kinds[k])})
	}
	report.Table(os.Stdout, "records by kind", []string{"kind", "count"}, rows)
	fmt.Println()

	// Lifecycle funnel.
	lc := analysis.ComputeLifecycle(s)
	fmt.Printf("lifecycle: %d lures → %d creds → %d entered → %d exploited → %d claims → %d recovered\n",
		lc.LuresDelivered, lc.CredentialsCaptured, lc.AccountsEntered,
		lc.AccountsExploited, lc.ClaimsFiled, lc.AccountsRecovered)
	fmt.Println()

	// Log-only reproductions of the paper's artifacts.
	t3 := analysis.ComputeTable3(s)
	if t3.N > 0 {
		report.Bars(os.Stdout, "Table 3 — hijacker search terms", t3.Terms, 10)
		fmt.Println()
	}
	f7 := analysis.ComputeFigure7(s)
	if f7.Submitted > 0 {
		fmt.Printf("Figure 7: %d decoys, accessed %s, ≤30min %s, ≤7h %s\n\n",
			f7.Submitted, report.Pct(f7.AccessedShare),
			report.Pct(f7.Within30Min), report.Pct(f7.Within7Hours))
	}
	f8 := analysis.ComputeFigure8(s)
	if f8.IPDays > 0 {
		fmt.Printf("Figure 8: %.1f accounts/IP-day (max %d) over %d IP-days; password-ok %s\n\n",
			f8.MeanAccountsPerIPDay, f8.MaxAccountsPerIPDay, f8.IPDays,
			report.Pct(f8.PasswordOKShare))
	}
	a := analysis.ComputeAssessment(s, 575)
	if a.Cases > 0 {
		fmt.Printf("§5.2: %d cases, mean assessment %s, exploited %s\n\n",
			a.Cases, a.MeanDuration.Round(time.Second), report.Pct(a.ExploitedShare))
	}
	// Attribution (the synthetic IP plan is deterministic, so geolocation
	// of dumped logs works without the original world).
	plan := geo.NewIPPlan(4)
	f11 := analysis.ComputeFigure11(s, plan, 3000)
	if f11.Cases > 0 {
		report.Bars(os.Stdout, "Figure 11 — hijack-case IP countries", f11.Shares, 8)
		fmt.Println()
	}
	f12 := analysis.ComputeFigure12(s, 300)
	if f12.Phones > 0 {
		report.Bars(os.Stdout, "Figure 12 — hijacker 2SV phone countries", f12.Shares, 8)
		fmt.Println()
	}
	ws := analysis.ComputeWorkSchedule(s)
	if ws.Logins > 0 {
		fmt.Printf("§5.5: weekend %s, lunch dip %s over %d hijacker logins\n\n",
			report.Pct(ws.WeekendShare), report.Pct(ws.LunchDip), ws.Logins)
	}
	m := analysis.ComputeMonetization(s)
	if m.PleaRecipients > 0 {
		fmt.Printf("funnel: %d pleas → %d engaged → %d reached crew → %d wires ($%.0f)\n\n",
			m.PleaRecipients, m.Replies, m.ReachedCrew, m.Payments, m.Revenue)
	}
	ev := analysis.EvaluateBehaviorDetector(s, behavior.DefaultConfig())
	if ev.HijackSessions > 0 {
		fmt.Printf("behavioral detector replay: precision %s recall %s exposure %s\n",
			report.Pct(ev.Precision), report.Pct(ev.Recall),
			ev.MeanExposure.Round(time.Second))
	}
}
