// Command decoyprobe re-runs the paper's Dataset 4 experiment standalone:
// inject decoy credentials into live phishing pages and measure how fast
// hijacker crews access the accounts (Figure 7: 20% within 30 minutes,
// 50% within 7 hours).
//
// Usage:
//
//	decoyprobe [-seed N] [-decoys N] [-days N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/core"
	"manualhijack/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	decoys := flag.Int("decoys", 200, "decoy credentials to inject")
	days := flag.Int("days", 21, "window length in days")
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.Days = *days
	cfg.DecoyN = *decoys
	w := core.NewWorld(cfg)
	w.InjectDecoys(time.Duration(*days-7) * 24 * time.Hour)
	w.Run()

	fig := analysis.ComputeFigure7(w.Log)
	report.CompareTable(os.Stdout, "Figure 7 — speed of compromised account access", []report.Compare{
		{Artifact: "F7", Metric: "decoys submitted", Paper: "200", Measured: fmt.Sprintf("%d", fig.Submitted)},
		{Artifact: "F7", Metric: "accessed", Paper: "most (not all)", Measured: report.Pct(fig.AccessedShare)},
		{Artifact: "F7", Metric: "within 30 min", Paper: "20%", Measured: report.Pct(fig.Within30Min)},
		{Artifact: "F7", Metric: "within 7 h", Paper: "50%", Measured: report.Pct(fig.Within7Hours)},
	})
	if fig.Accessed > 0 {
		fmt.Printf("\naccess delay percentiles (hours): p25=%.1f p50=%.1f p75=%.1f p90=%.1f\n",
			fig.Delays.Percentile(25), fig.Delays.Percentile(50),
			fig.Delays.Percentile(75), fig.Delays.Percentile(90))
	}
}
