// Command hijacksim runs a single simulated world — population, phishing
// campaigns, hijacker crews, defenses — and prints the raw event-log
// statistics plus per-crew activity. With -events it also dumps the whole
// log as NDJSON for external analysis.
//
// Usage:
//
//	hijacksim [-seed N] [-pop N] [-days N] [-decoys N] [-events file.ndjson]
//	          [-archetypes smashgrab:3,stuffer:2]
//	          [-spill-dir d] [-segment-records N] [-segment-bytes N] [-segment-gzip]
//	          [-spill-writers N] [-scan-workers N]
//	          [-cpuprofile f] [-memprofile f] [-trace f]
//
// -archetypes fields playbook actors (internal/playbook) next to the
// manual crews: a comma-separated roster of archetype:count pairs (a bare
// name means one instance). Their events carry the archetype tag, which
// `analyze` turns into the per-archetype detection scorecard.
//
// -spill-dir builds the log as spill-to-disk segments: peak RAM is
// bounded by the segment size instead of the world size, and the segment
// directory itself is the dump — `analyze -events <dir>` opens it as a
// virtual store, no separate -events pass needed. -spill-writers sizes
// the background encode/write pool that seals segments off the simulation
// hot path; -scan-workers sets the decode-ahead depth of any post-run
// reads (the -events re-dump, KindCounts).
//
// The profiling flags capture pprof CPU/heap profiles and a runtime trace
// of the whole run for `go tool pprof` / `go tool trace` — the world
// simulation is the study's hot path, and this binary is the smallest
// harness that drives it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/logstore"
	"manualhijack/internal/playbook"
	"manualhijack/internal/profiling"
	"manualhijack/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	pop := flag.Int("pop", 8000, "population size")
	days := flag.Int("days", 30, "window length in days")
	decoys := flag.Int("decoys", 0, "decoy accounts to inject")
	archetypes := flag.String("archetypes", "",
		"playbook actor roster, e.g. smashgrab:3,stuffer:2 (known: "+strings.Join(playbook.Names(), ",")+")")
	eventsOut := flag.String("events", "", "write the event log as NDJSON to this file (a .gz suffix gzip-compresses)")
	spillDir := flag.String("spill-dir", "",
		"build the log as spill-to-disk segments in this directory (bounded RAM; the directory is the dump)")
	segRecords := flag.Int("segment-records", 0, "records per spilled segment (0 = logstore default)")
	segBytes := flag.Int64("segment-bytes", 0, "additionally seal segments at this encoded byte size (0 = off)")
	segGzip := flag.Bool("segment-gzip", false, "gzip spilled segment files")
	spillWriters := flag.Int("spill-writers", 0, "background segment encode/write goroutines (0 = 1)")
	scanWorkers := flag.Int("scan-workers", 0, "segments decoded ahead during post-run reads (0 = 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Trace: *traceOut,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hijacksim: %v\n", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig(*seed)
	cfg.PopulationN = *pop
	cfg.Days = *days
	cfg.DecoyN = *decoys
	roster, err := playbook.ParseRoster(*archetypes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hijacksim: %v\n", err)
		os.Exit(2)
	}
	for _, entry := range roster {
		cfg.Archetypes = append(cfg.Archetypes, core.ArchetypeSpec{
			Archetype: entry.Archetype, Count: entry.Count,
		})
	}
	if *spillDir != "" {
		cfg.Spill = logstore.SpillConfig{
			Dir:            *spillDir,
			SegmentRecords: *segRecords,
			SegmentBytes:   *segBytes,
			Compress:       *segGzip,
			Writers:        *spillWriters,
			ScanWorkers:    *scanWorkers,
		}
	}

	w := core.NewWorld(cfg)
	if *decoys > 0 {
		w.InjectDecoys(time.Duration(*days) * 16 * time.Hour)
	}
	start := time.Now()
	w.Run()
	elapsed := time.Since(start)

	kinds := w.Log.KindCounts()
	rows := make([][]string, 0, len(kinds))
	for _, k := range w.Log.SortedKinds() {
		rows = append(rows, []string{string(k), fmt.Sprintf("%d", kinds[k])})
	}
	report.Table(os.Stdout, fmt.Sprintf("event log (%d records, simulated %dd in %s)",
		w.Log.Len(), *days, elapsed.Round(time.Millisecond)),
		[]string{"kind", "count"}, rows)

	crewRows := [][]string{}
	for _, c := range w.Crews {
		crewRows = append(crewRows, []string{
			c.Name(), string(c.Country()),
			fmt.Sprintf("%d", c.Processed), fmt.Sprintf("%d", c.LoggedIn),
			fmt.Sprintf("%d", c.Exploited), fmt.Sprintf("%d", c.Abandoned),
			fmt.Sprintf("%d", c.LockedOut), fmt.Sprintf("%d", c.PhoneLocks),
		})
	}
	fmt.Println()
	report.Table(os.Stdout, "crews",
		[]string{"crew", "cc", "processed", "in", "exploited", "abandoned", "locked", "2sv"},
		crewRows)

	if len(w.Actors) > 0 {
		actorRows := [][]string{}
		for _, a := range w.Actors {
			processed, loggedIn, exploited := 0, 0, 0
			if sp, ok := a.(playbook.StatsProvider); ok {
				processed, loggedIn, exploited = sp.ActorStats()
			}
			actorRows = append(actorRows, []string{
				a.Name(), a.Archetype(), string(a.Country()),
				fmt.Sprintf("%d", processed), fmt.Sprintf("%d", loggedIn),
				fmt.Sprintf("%d", exploited),
			})
		}
		fmt.Println()
		report.Table(os.Stdout, "playbook actors",
			[]string{"actor", "archetype", "cc", "processed", "in", "exploited"},
			actorRows)
	}

	if *spillDir != "" {
		fmt.Printf("\nspilled %d segment(s) to %s (analyze -events %s reads them directly)\n",
			w.Log.SegmentCount(), *spillDir, *spillDir)
	}
	if *eventsOut != "" {
		// WriteNDJSONFile checks the file's Close error: a full disk or
		// write-behind failure must not report a truncated dump as success.
		meta := logstore.Meta{Start: w.Cfg.Start, End: w.End(), Seed: *seed}
		if err := logstore.WriteNDJSONFile(*eventsOut, w.Log, meta); err != nil {
			fmt.Fprintf(os.Stderr, "hijacksim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d events to %s\n", w.Log.Len(), *eventsOut)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "hijacksim: %v\n", err)
		os.Exit(1)
	}
}
