// Command hijackstudy runs the full reproduction study — four
// observation-window worlds (Oct 2011, Nov 2012, Feb 2013, Jan 2014) plus
// a low-intensity base-rate world — and prints every table and figure of
// the paper with the published value alongside the measured one.
//
// Usage:
//
//	hijackstudy [-seed N] [-scale F] [-par N] [-spill-dir d]
//	            [-archetypes smashgrab:3,stuffer:2]
//	            [-segment-records N] [-segment-bytes N] [-segment-gzip]
//	            [-spill-writers N] [-scan-workers N]
//	            [-cpuprofile f] [-memprofile f] [-trace f]
//
// -archetypes fields playbook actors (internal/playbook) in every era
// world next to the era's manual-crew roster; the §8.1 block of the report
// then includes the per-archetype detection scorecard.
//
// -scale shrinks populations and phishing volume for quick runs (0.2 runs
// in well under a minute; 1.0 is the full study; values above 1 grow the
// worlds past the paper's scale for spill stress benchmarks — the report
// prints but its published-value comparisons only make sense at <= 1).
// -par bounds the study engine's worker pool (0 = GOMAXPROCS, 1 =
// sequential); the report is byte-identical for a fixed seed at any
// setting.
//
// -spill-dir runs every era world with a spill-to-disk segmented log (one
// subdirectory per era) so peak RSS is bounded by the segment size
// instead of the world size; the analyses run as a map-reduce over the
// segment files and the report stays byte-identical to the monolithic
// run. -spill-writers sizes the background segment encode/write pool and
// -scan-workers the analysis scans' decode-ahead depth — both trade
// goroutines for wall-clock without touching report bytes. The footer
// reports the process's peak RSS either way, so the two modes are
// directly comparable.
//
// The profiling flags capture pprof CPU/heap profiles and a runtime trace
// of the whole run (study + report rendering) for `go tool pprof` /
// `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/playbook"
	"manualhijack/internal/profiling"
	"manualhijack/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 1.0, "study scale in (0,1]")
	par := flag.Int("par", 0, "study parallelism (0 = GOMAXPROCS, 1 = sequential)")
	archetypes := flag.String("archetypes", "",
		"playbook actor roster for every era world, e.g. smashgrab:3,stuffer:2 (known: "+strings.Join(playbook.Names(), ",")+")")
	spillDir := flag.String("spill-dir", "",
		"run every era world with a spill-to-disk segmented log under this directory (bounded RAM, identical report)")
	segRecords := flag.Int("segment-records", 0, "records per spilled segment (0 = logstore default)")
	segBytes := flag.Int64("segment-bytes", 0, "additionally seal segments at this encoded byte size (0 = off)")
	segGzip := flag.Bool("segment-gzip", false, "gzip spilled segment files")
	spillWriters := flag.Int("spill-writers", 0, "background segment encode/write goroutines per world (0 = 1)")
	scanWorkers := flag.Int("scan-workers", 0, "segments decoded ahead during analysis scans (0 = 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocs profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "hijackstudy: -scale must be > 0")
		os.Exit(2)
	}
	if *par < 0 {
		fmt.Fprintln(os.Stderr, "hijackstudy: -par must be >= 0")
		os.Exit(2)
	}
	stopProfiles, err := profiling.Start(profiling.Config{
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Trace: *traceOut,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hijackstudy: %v\n", err)
		os.Exit(1)
	}
	sc := core.DefaultStudyConfig(*seed)
	sc.Scale = *scale
	sc.Parallelism = *par
	sc.SpillDir = *spillDir
	sc.SegmentRecords = *segRecords
	sc.SegmentBytes = *segBytes
	sc.SpillGzip = *segGzip
	sc.SpillWriters = *spillWriters
	sc.ScanWorkers = *scanWorkers
	roster, err := playbook.ParseRoster(*archetypes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hijackstudy: %v\n", err)
		os.Exit(2)
	}
	for _, entry := range roster {
		sc.Archetypes = append(sc.Archetypes, core.ArchetypeSpec{
			Archetype: entry.Archetype, Count: entry.Count,
		})
	}

	start := time.Now()
	r := core.RunStudy(sc)
	report.RenderStudy(os.Stdout, r)
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "hijackstudy: %v\n", err)
		os.Exit(1)
	}
	effPar := *par
	if effPar == 0 {
		effPar = runtime.GOMAXPROCS(0)
	}
	mode := "monolithic"
	if *spillDir != "" {
		mode = "spill"
	}
	fmt.Printf("\nstudy completed in %s (seed=%d scale=%.2f parallelism=%d log=%s)\n",
		time.Since(start).Round(time.Millisecond), *seed, *scale, effPar, mode)
	if rss := profiling.PeakRSS(); rss > 0 {
		// Machine-parseable: scripts/bench.sh records this figure.
		fmt.Printf("peak-rss-mib: %d\n", rss/(1<<20))
	}
}
