// Command riskd serves the login-risk decision pipeline over HTTP — the
// paper's §8.2 login-time risk analysis run the way an identity provider
// actually runs it: as a network service under concurrent login traffic.
//
// riskd bootstraps the same deterministic world state the simulator
// assembles for a seed — account population, home geographies, recovery
// options, the IP plan — primes per-account baselines, and exposes:
//
//	POST /v1/score        {account, ip, device_id, at, password_ok[, principal]}
//	                      → {score, signals, verdict: admit|challenge|block,
//	                         challenge_method[, challenge_passed]}
//	POST /v1/outcome      {account, ip, device_id, at, success} → {ok}
//	POST /v1/score.batch  NDJSON stream of score/outcome lines (op field
//	                      selects), one response line per request line —
//	                      amortizes HTTP framing across a whole batch
//	GET  /v1/healthz      liveness
//	GET  /v1/statz        request counts, verdict mix, latency percentiles
//	GET  /v1/streamz      live streaming-analysis snapshot: every scored
//	                      request feeds the incremental analyses
//	                      (internal/stream), so the funnel and fanout
//	                      aggregates update while traffic flows
//
// The score/outcome hot path runs on hand-rolled JSON codecs
// (internal/serve/codec.go) and pooled buffers — no encoding/json and no
// per-request heap churn on the wire layer.
//
// Because the bootstrap is seed-deterministic, `riskload -replay` can
// stream a simulator dump through a riskd started with the same seed and
// population and verify decision-for-decision parity.
//
// Usage:
//
//	riskd [-addr :8077] [-seed N] [-pop N] [-decoys N] [-shards N]
//	      [-challenge-threshold F] [-block-threshold F]
//	      [-max-inflight N] [-queue-wait D] [-timeout D] [-batch-timeout D]
//	      [-drain D]
//
// On SIGTERM/SIGINT the server stops accepting connections, drains
// in-flight requests for at most -drain, prints a final stats summary, and
// exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/core"
	"manualhijack/internal/serve"
	"manualhijack/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	seed := flag.Int64("seed", 1, "world seed (must match the dump for replay parity)")
	pop := flag.Int("pop", 8000, "population size (must match the dump's -pop)")
	decoys := flag.Int("decoys", 0, "decoy accounts (must match the dump's -decoys)")
	shards := flag.Int("shards", 0, "account shards; 0 = GOMAXPROCS")
	challengeAt := flag.Float64("challenge-threshold", auth.DefaultConfig().ChallengeThreshold, "risk score that triggers a challenge")
	blockAt := flag.Float64("block-threshold", auth.DefaultConfig().BlockThreshold, "risk score that blocks outright")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "bounded queue: max concurrent score/outcome requests before 429")
	queueWait := flag.Duration("queue-wait", 0, "how long an over-limit request may wait for a slot before 429")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request timeout")
	batchTimeout := flag.Duration("batch-timeout", serve.DefaultBatchTimeout, "per-request timeout for /v1/score.batch streams")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()

	cfg := serve.DefaultConfig(*seed)
	cfg.Shards = *shards
	cfg.ChallengeThreshold = *challengeAt
	cfg.BlockThreshold = *blockAt

	worldCfg := core.DefaultConfig(*seed)
	dir := core.NewStudyDirectory(*seed, worldCfg.Start, *pop+*decoys)
	engine := serve.New(dir, core.DefaultIPPlan(), cfg)
	engine.Prime()

	srv := serve.NewServer(engine, serve.ServerConfig{
		MaxInFlight:    *maxInFlight,
		QueueWait:      *queueWait,
		RequestTimeout: *timeout,
		BatchTimeout:   *batchTimeout,
	})
	// Streaming analyses over the live request feed, served at /v1/streamz.
	bus := stream.NewBus(stream.DefaultSuite(core.DefaultIPPlan())...)
	srv.SetStream(bus)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"riskd: listening on %s (seed=%d pop=%d shards=%d gomaxprocs=%d thresholds=%.2f/%.2f max-inflight=%d)\n",
		ln.Addr(), *seed, *pop+*decoys, engine.Shards(), runtime.GOMAXPROCS(0),
		*challengeAt, *blockAt, *maxInFlight)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	err = srv.Run(ctx, ln, *drain)

	st := srv.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr,
		"riskd: served %d score / %d outcome requests (%d rejected, %d bad), verdicts admit=%d challenge=%d block=%d, p99=%.0fµs\n",
		st.Score, st.Outcome, st.Rejected, st.BadRequests,
		st.Verdicts[serve.VerdictAdmit], st.Verdicts[serve.VerdictChallenge],
		st.Verdicts[serve.VerdictBlock], st.Latency.P99us)
	snap := bus.Snapshot()
	fmt.Fprintf(os.Stderr,
		"riskd: streaming observed %d events (%d dropped out-of-order)\n",
		snap.EventsObserved, snap.EventsDropped)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "riskd: drained cleanly")
}
