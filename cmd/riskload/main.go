// Command riskload drives a riskd server two ways and emits a
// machine-readable JSON summary either way:
//
// Synthetic mode (default) generates open-loop login traffic at a target
// QPS: a pacer issues request tokens at the configured rate regardless of
// completions, workers score attempts drawn from the same seed-built
// population riskd serves (mostly benign home-country logins, a tail of
// new devices, roaming countries, and wrong passwords), and client-side
// latency/verdict/429 counts are collected. Because the loop is open, a
// saturated server shows up as rising latency and 429s, not as a silently
// slower client.
//
// Replay mode (-replay dump.ndjson[.gz]) streams the login attempts out of
// a simulator dump through the live server and cross-checks every served
// decision against the simulator's logged decision for the same seed (see
// internal/serve.Replay). Zero mismatches is the parity contract; the
// process exits 1 otherwise. -workers N replays over N concurrent lanes
// (events partitioned by connected component of the account/IP sharing
// graph, so parity stays exact); -batch M pipelines M logins per
// /v1/score.batch round trip instead of two HTTP requests per login.
//
// Usage:
//
//	riskload [-addr http://127.0.0.1:8077] [-seed N] [-pop N] [-decoys N]
//	         [-qps N] [-duration D] [-workers N] [-principal-rate F]
//	         [-replay dump.ndjson.gz] [-batch M]
//	         [-challenge-threshold F] [-block-threshold F]
//	         [-json out.json]
//
// The JSON summary (QPS achieved, p50/p95/p99 latency, verdict mix, replay
// mismatch count) is written to -json ("-" = stdout) so serving
// performance can be tracked across PRs alongside the BENCH_*.json
// trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/core"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/serve"
	"manualhijack/internal/stats"
)

type latencySummary struct {
	N     int     `json:"n"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

type summary struct {
	Mode         string                  `json:"mode"`
	Target       string                  `json:"target"`
	Seed         int64                   `json:"seed"`
	DurationS    float64                 `json:"duration_s"`
	QPSTarget    float64                 `json:"qps_target,omitempty"`
	QPSAchieved  float64                 `json:"qps_achieved"`
	Requests     int64                   `json:"requests"`
	Outcomes     int64                   `json:"outcomes"`
	Errors       int64                   `json:"errors"`
	Rejected     int64                   `json:"rejected_429"`
	DroppedTicks int64                   `json:"dropped_ticks"`
	Latency      latencySummary          `json:"latency_ms"`
	Verdicts     map[serve.Verdict]int64 `json:"verdicts"`
	Replay       *serve.ReplayStats      `json:"replay,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "riskd base URL")
	seed := flag.Int64("seed", 1, "world seed (must match riskd's)")
	pop := flag.Int("pop", 8000, "population size (must match riskd's)")
	decoys := flag.Int("decoys", 0, "decoy accounts (must match riskd's)")
	qps := flag.Float64("qps", 200, "synthetic mode: target open-loop request rate")
	duration := flag.Duration("duration", 10*time.Second, "synthetic mode: run length")
	workers := flag.Int("workers", 0, "concurrent client workers: synthetic traffic senders or replay lanes (0 = 32 synthetic, sequential replay)")
	principalRate := flag.Float64("principal-rate", 0.25, "synthetic mode: fraction of requests carrying the owner's principal (exercises the challenge path)")
	replayPath := flag.String("replay", "", "replay mode: NDJSON dump to stream through the server")
	batch := flag.Int("batch", 0, "replay mode: logins per /v1/score.batch round trip (0 = two HTTP requests per login)")
	challengeAt := flag.Float64("challenge-threshold", auth.DefaultConfig().ChallengeThreshold, "verdict cutoff (must match riskd's)")
	blockAt := flag.Float64("block-threshold", auth.DefaultConfig().BlockThreshold, "verdict cutoff (must match riskd's)")
	jsonOut := flag.String("json", "-", `write the JSON summary here ("-" = stdout)`)
	flag.Parse()

	client := &serve.Client{Base: *addr}
	var sum summary
	sum.Target = *addr
	sum.Seed = *seed

	var err error
	if *replayPath != "" {
		err = runReplay(client, *replayPath, *challengeAt, *blockAt, *workers, *batch, &sum)
	} else {
		if *workers <= 0 {
			*workers = 32
		}
		err = runSynthetic(client, *seed, *pop+*decoys, *qps, *duration, *workers, *principalRate, &sum)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskload: %v\n", err)
		os.Exit(1)
	}

	if werr := writeSummary(*jsonOut, &sum); werr != nil {
		fmt.Fprintf(os.Stderr, "riskload: %v\n", werr)
		os.Exit(1)
	}
	if sum.Replay != nil && sum.Replay.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "riskload: replay parity FAILED: %d mismatches (first: %s)\n",
			sum.Replay.Mismatches, sum.Replay.FirstMismatch)
		os.Exit(1)
	}
}

func writeSummary(path string, sum *summary) error {
	out := os.Stdout
	if path != "-" && path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

func runReplay(client *serve.Client, path string, challengeAt, blockAt float64, workers, batch int, sum *summary) error {
	sum.Mode = "replay"
	st, rstats, err := logstore.ReadNDJSONFile(path, logstore.ReadOptions{})
	if err != nil {
		return err
	}
	if rstats.Meta.Seed != 0 {
		sum.Seed = rstats.Meta.Seed
	}
	start := time.Now()
	rs, err := serve.Replay(st, client, serve.ReplayConfig{
		ChallengeThreshold: challengeAt,
		BlockThreshold:     blockAt,
		Workers:            workers,
		BatchSize:          batch,
		ProgressEvery:      5000,
		Progress: func(scored, mismatches int) {
			fmt.Fprintf(os.Stderr, "riskload: replayed %d logins, %d mismatches\n", scored, mismatches)
		},
	})
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	sum.Replay = &rs
	sum.DurationS = elapsed.Seconds()
	sum.Requests = int64(rs.Scored)
	sum.Outcomes = int64(rs.Scored)
	// QPSAchieved stays "logical score+outcome operations served per
	// second" in every mode so replay throughput is comparable across the
	// BENCH_*.json trajectory; rs.HTTPReqs separately records how many
	// wire round trips that took (2 per login unbatched, ~2/batch per
	// login batched).
	sum.QPSAchieved = float64(2*rs.Scored) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"riskload: replay done: %d logins, %d scored, %d skipped, %d mismatches, %d http reqs (workers=%d batch=%d) in %s\n",
		rs.Logins, rs.Scored, rs.Skipped, rs.Mismatches, rs.HTTPReqs, rs.Workers, rs.BatchSize, elapsed.Round(time.Millisecond))
	return nil
}

// attemptMix shapes synthetic traffic. The shares are arbitrary but fixed:
// enough anomalous logins that every verdict band and the challenge path
// see traffic.
const (
	shareWrongPassword = 0.05
	shareRoaming       = 0.07 // foreign-country IP, new device
	shareNewDevice     = 0.10 // home country, unknown device
)

func runSynthetic(client *serve.Client, seed int64, pop int, qps float64, duration time.Duration, workers int, principalRate float64, sum *summary) error {
	sum.Mode = "synthetic"
	sum.QPSTarget = qps
	if qps <= 0 || pop <= 0 || workers <= 0 {
		return fmt.Errorf("qps, pop, and workers must be positive")
	}

	worldCfg := core.DefaultConfig(seed)
	dir := core.NewStudyDirectory(seed, worldCfg.Start, pop)
	plan := core.DefaultIPPlan()
	countries := geo.AllCountries()

	var (
		requests, outcomes, errs, rejected, dropped atomic.Int64
		verdictMu                                   sync.Mutex
		verdicts                                    = map[serve.Verdict]int64{}
		latMu                                       sync.Mutex
		lat                                         stats.Sample
	)

	// Open-loop pacer: every pulse, top the token queue up to where the
	// schedule says we should be. Tokens carry their scheduled time so
	// latency includes client-side queueing. A full queue (one second of
	// backlog) sheds the token and counts it — the server's slowness is
	// reported, never absorbed into the offered rate.
	tokens := make(chan time.Time, int(qps)+1)
	stop := make(chan struct{})
	go func() {
		defer close(tokens)
		start := time.Now()
		issued := 0
		pulse := time.NewTicker(5 * time.Millisecond)
		defer pulse.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-pulse.C:
				elapsed := now.Sub(start)
				if elapsed > duration {
					return
				}
				due := int(elapsed.Seconds() * qps)
				for ; issued < due; issued++ {
					select {
					case tokens <- now:
					default:
						dropped.Add(1)
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randx.New(seed).Fork(fmt.Sprintf("riskload/worker/%d", w))
			for tick := range tokens {
				id := identity.AccountID(rng.Intn(pop) + 1)
				acct := dir.Get(id)
				req := serve.ScoreRequest{
					Account:    id,
					DeviceID:   identity.DeviceFingerprint(id),
					At:         tick,
					PasswordOK: true,
				}
				country := acct.HomeCountry
				switch r := rng.Float64(); {
				case r < shareWrongPassword:
					req.PasswordOK = false
				case r < shareWrongPassword+shareRoaming:
					country = randx.Pick(rng, countries)
					req.DeviceID = fmt.Sprintf("device-load-%d", rng.Intn(1<<20))
				case r < shareWrongPassword+shareRoaming+shareNewDevice:
					req.DeviceID = fmt.Sprintf("device-load-%d", rng.Intn(1<<20))
				}
				req.IP = plan.Addr(rng, country).String()
				if rng.Bool(principalRate) {
					p := serve.PrincipalWire{KnowledgeSkill: 0.85}
					if acct.Phone != "" {
						p.Phones = []string{string(acct.Phone)}
					}
					req.Principal = &p
				}

				resp, err := client.Score(req)
				took := time.Since(tick)
				if err != nil {
					if serve.IsRejected(err) {
						rejected.Add(1)
					} else {
						errs.Add(1)
					}
					continue
				}
				requests.Add(1)
				latMu.Lock()
				lat.Add(float64(took.Microseconds()) / 1000)
				latMu.Unlock()
				verdictMu.Lock()
				verdicts[resp.Verdict]++
				verdictMu.Unlock()

				success := resp.Verdict == serve.VerdictAdmit && req.PasswordOK
				if err := client.Outcome(serve.OutcomeRequest{
					Account: id, IP: req.IP, DeviceID: req.DeviceID,
					At: req.At, Success: success,
				}); err == nil {
					outcomes.Add(1)
				} else if serve.IsRejected(err) {
					rejected.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}(w)
	}

	start := time.Now()
	wg.Wait()
	close(stop)
	elapsed := time.Since(start)
	if elapsed > duration {
		elapsed = duration + (elapsed - duration) // drain tail counts toward wall time
	}

	sum.DurationS = elapsed.Seconds()
	sum.Requests = requests.Load()
	sum.Outcomes = outcomes.Load()
	sum.Errors = errs.Load()
	sum.Rejected = rejected.Load()
	sum.DroppedTicks = dropped.Load()
	sum.QPSAchieved = float64(sum.Requests) / elapsed.Seconds()
	sum.Verdicts = verdicts
	sum.Latency = latencySummary{
		N:     lat.N(),
		P50ms: lat.Percentile(50),
		P95ms: lat.Percentile(95),
		P99ms: lat.Percentile(99),
		MaxMs: lat.Max(),
	}
	fmt.Fprintf(os.Stderr,
		"riskload: %d scores (%.1f qps of %.1f target), %d outcomes, %d rejected, %d errors, %d dropped ticks, p50=%.2fms p99=%.2fms\n",
		sum.Requests, sum.QPSAchieved, qps, sum.Outcomes, sum.Rejected, sum.Errors,
		sum.DroppedTicks, sum.Latency.P50ms, sum.Latency.P99ms)
	return nil
}
