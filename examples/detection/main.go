// Detection: wire the login-time risk analyzer and the post-login
// behavioral detector, then sweep the risk threshold to expose the §8.1
// trade-off the paper describes — challenging more hijackers means
// challenging more legitimate users.
package main

import (
	"os"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/behavior"
	"manualhijack/internal/core"
	"manualhijack/internal/report"
)

func main() {
	cfg := core.DefaultConfig(7)
	cfg.PopulationN = 4000
	cfg.Days = 21
	w := core.NewWorld(cfg)
	w.Run()

	// Counterfactual threshold sweep over the logged risk scores.
	sweep := analysis.SweepRiskThreshold(w.Log,
		[]float64{0.2, 0.3, 0.4, 0.5, 0.58, 0.62, 0.7, 0.8, 0.9})
	rows := [][]string{}
	for _, pt := range sweep {
		rows = append(rows, []string{
			report.F(pt.Threshold),
			report.Pct(pt.HijackerCaught),
			report.Pct2(pt.OwnerChallenged),
		})
	}
	report.Table(os.Stdout,
		"login-risk threshold sweep — hijackers caught vs owners inconvenienced (§8.1)",
		[]string{"threshold", "hijackers challenged", "owners challenged"}, rows)

	// The post-login behavioral detector, replayed over the same logs at
	// two operating points: fire-fast vs fire-accurately.
	println()
	configs := map[string]behavior.Config{
		"default":      behavior.DefaultConfig(),
		"2-min window": windowed(behavior.DefaultConfig(), 2*time.Minute),
	}
	brows := [][]string{}
	for name, bc := range configs {
		ev := analysis.EvaluateBehaviorDetector(w.Log, bc)
		brows = append(brows, []string{
			name,
			report.Pct(ev.Precision),
			report.Pct(ev.Recall),
			ev.MeanExposure.Round(time.Second).String(),
		})
	}
	report.Table(os.Stdout,
		"behavioral detector (§5.2 proposal; §8.2: it fires after exposure)",
		[]string{"config", "precision", "recall", "mean exposure"}, brows)
}

func windowed(c behavior.Config, w time.Duration) behavior.Config {
	c.Window = w
	return c
}
