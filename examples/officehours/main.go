// Officehours: reproduce §5.5's "Manual Hijacking — an Ordinary Office
// Job?" evidence and follow the money. Prints the hijacker activity
// clock (work hours, synchronized lunch, idle weekends), the doppelganger
// fingerprints, and the scam funnel from pleas to wire transfers.
package main

import (
	"fmt"
	"os"

	"manualhijack/internal/analysis"
	"manualhijack/internal/core"
	"manualhijack/internal/report"
)

func main() {
	cfg := core.DefaultConfig(5)
	cfg.PopulationN = 4000
	cfg.Days = 21
	cfg.CampaignsPerDay = 10
	w := core.NewWorld(cfg)
	w.Run()

	// The office-job fingerprint.
	ws := analysis.ComputeWorkSchedule(w.Log)
	hours := make([]int, 24)
	for h, share := range ws.HourlyShare {
		hours[h] = int(share * 1000)
	}
	report.Series(os.Stdout, "hijacker logins by UTC hour (each cell = 1 hour)", hours)
	fmt.Printf("weekend activity: %s of logins (a 24/7 botnet would show 28.6%%)\n", report.Pct(ws.WeekendShare))
	fmt.Printf("synchronized lunch dip: %s; active hours: %d; n=%d logins\n\n",
		report.Pct(ws.LunchDip), ws.ActiveHours, ws.Logins)

	// Doppelganger fingerprints among redirection settings.
	d := analysis.EvaluateDoppelgangerDetector(w.Log, w.Dir, 0.75)
	fmt.Printf("doppelganger review: %d hijacker redirections, flagged with precision %s / recall %s\n",
		d.HijackerSettings, report.Pct(d.Precision), report.Pct(d.Recall))
	for i, f := range d.Findings {
		if i >= 3 {
			break
		}
		victim := w.Dir.Get(f.Account)
		fmt.Printf("  e.g. %s → %s (similarity %.2f, via %s)\n",
			victim.Addr, f.Addr, f.Similarity, f.Kind)
	}
	fmt.Println()

	// The money.
	m := analysis.ComputeMonetization(w.Log)
	fmt.Printf("scam funnel: %d plea recipients → %d engaged → %d reached the crew → %d wires\n",
		m.PleaRecipients, m.Replies, m.ReachedCrew, m.Payments)
	fmt.Printf("revenue: $%.0f total, $%.0f per exploited hijack, $%.0f mean wire\n",
		m.Revenue, m.RevenuePerHijack, m.MeanPayment)
	if by := analysis.RevenueByCrew(w.Log); len(by) > 0 {
		fmt.Println("revenue by crew:")
		for _, e := range by {
			fmt.Printf("  %-12s $%d\n", e.Key, e.Count)
		}
	}
}
