// Phishingcampaign: launch phishing campaigns against a population, watch
// the anti-phishing pipeline detect and take the pages down, and print the
// §4.2 conversion statistics (success rates, referrers, victim TLDs).
package main

import (
	"fmt"
	"os"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/report"
)

func main() {
	cfg := core.DefaultConfig(3)
	cfg.PopulationN = 2000
	cfg.Days = 21
	cfg.CampaignsPerDay = 8
	cfg.FormsShare = 0.5 // host more pages on the Forms product (Dataset 3)
	cfg.OutlierShare = 0.05
	w := core.NewWorld(cfg)
	w.Run()

	created := logstore.Select[event.PageCreated](w.Log)
	detected := logstore.Select[event.PageDetected](w.Log)
	taken := logstore.Select[event.PageTakedown](w.Log)
	fmt.Printf("pages hosted: %d; detected: %d; taken down: %d\n",
		len(created), len(detected), len(taken))

	// Page lifetime distribution.
	createdAt := map[event.PageID]time.Time{}
	for _, c := range created {
		createdAt[c.Page] = c.When()
	}
	var lifetimes []string
	var sum time.Duration
	for _, d := range detected {
		sum += d.When().Sub(createdAt[d.Page])
	}
	if len(detected) > 0 {
		lifetimes = append(lifetimes,
			fmt.Sprintf("mean page lifetime before detection: %s",
				(sum/time.Duration(len(detected))).Round(time.Minute)))
	}
	for _, l := range lifetimes {
		fmt.Println(l)
	}
	fmt.Println()

	fig5 := analysis.ComputeFigure5(w.Log, 100, 20)
	report.CompareTable(os.Stdout, "submission success rates (Figure 5)", []report.Compare{
		{Artifact: "F5", Metric: "mean POST/GET", Paper: "13.78%", Measured: report.Pct(fig5.Mean),
			Note: fmt.Sprintf("%d Forms pages", len(fig5.PerPage))},
		{Artifact: "F5", Metric: "range", Paper: "3%–45%",
			Measured: report.Pct(fig5.Min) + "–" + report.Pct(fig5.Max)},
	})
	fmt.Println()

	fig3 := analysis.ComputeFigure3(w.Log, 100)
	fmt.Printf("blank HTTP referrers: %s of %d GETs (paper >99%%)\n",
		report.Pct2(fig3.BlankShare), fig3.TotalGETs)
	report.Bars(os.Stdout, "non-blank referrers (Figure 3)", fig3.NonBlank, 8)
	fmt.Println()

	fig4 := analysis.ComputeFigure4(w.Log, 100)
	report.Bars(os.Stdout, "phished address TLDs (Figure 4)", fig4.Shares, 10)
}
