// Quickstart: build a small world, run one observation window, and print
// the headline numbers — how many accounts were manually hijacked, what
// the hijackers did, and how recovery went.
package main

import (
	"fmt"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
)

func main() {
	cfg := core.DefaultConfig(42)
	cfg.PopulationN = 3000
	cfg.Days = 14

	w := core.NewWorld(cfg)
	start := time.Now()
	w.Run()
	fmt.Printf("simulated %d days over %d accounts in %s (%d log records)\n\n",
		cfg.Days, cfg.PopulationN, time.Since(start).Round(time.Millisecond), w.Log.Len())

	hijacks := logstore.Select[event.HijackStarted](w.Log)
	assessed := logstore.Select[event.HijackAssessed](w.Log)
	exploited := 0
	var totalAssess time.Duration
	for _, a := range assessed {
		totalAssess += a.Duration
		if a.Exploited {
			exploited++
		}
	}
	fmt.Printf("manual hijacks: %d (exploited %d, abandoned %d)\n",
		len(hijacks), exploited, len(assessed)-exploited)
	if len(assessed) > 0 {
		fmt.Printf("mean value-assessment time: %s (paper: ~3 minutes)\n",
			(totalAssess / time.Duration(len(assessed))).Round(time.Second))
	}

	scams, phish := 0, 0
	for _, m := range logstore.Select[event.MessageSent](w.Log) {
		if m.Actor != event.ActorHijacker {
			continue
		}
		switch m.Class {
		case event.ClassScam:
			scams++
		case event.ClassPhish:
			phish++
		}
	}
	fmt.Printf("hijacker mail from victim accounts: %d scams, %d phishing blasts\n", scams, phish)

	claims := logstore.Select[event.ClaimResolved](w.Log)
	ok := 0
	for _, c := range claims {
		if c.Success {
			ok++
		}
	}
	fmt.Printf("recovery claims resolved: %d (%d successful)\n", len(claims), ok)

	fig8 := analysis.ComputeFigure8(w.Log)
	fmt.Printf("hijacker IP discipline: %.1f distinct accounts per IP-day (cap 10, paper ~9.6)\n",
		fig8.MeanAccountsPerIPDay)
}
