// Recoverydrill: walk one account through the full hijack-and-remediate
// lifecycle by hand — phish the credential, let the crew exploit and lock
// the account, then drive the §6 recovery workflow and verify remission
// restored everything the hijacker damaged.
package main

import (
	"fmt"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
)

func main() {
	cfg := core.DefaultConfig(11)
	cfg.PopulationN = 2000
	cfg.Days = 21
	w := core.NewWorld(cfg)
	w.Run()

	// Find a victim who was locked out and later recovered.
	resolved := logstore.SelectWhere(w.Log, func(r event.ClaimResolved) bool { return r.Success })
	if len(resolved) == 0 {
		fmt.Println("no successful recovery in this window; try another seed")
		return
	}
	victim := resolved[0].Account
	acct := w.Dir.Get(victim)
	fmt.Printf("following account %d (%s)\n\n", victim, acct.Addr)

	// Replay this account's story from the log.
	w.Log.Scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.CredentialPhished:
			if ev.Account == victim {
				step(ev.When(), "credential phished on page %d", ev.Page)
			}
		case event.Login:
			if ev.Account == victim && ev.Actor == event.ActorHijacker {
				step(ev.When(), "hijacker login from %s → %s (risk %.2f)", ev.IP, ev.Outcome, ev.RiskScore)
			}
		case event.HijackAssessed:
			if ev.Account == victim {
				step(ev.When(), "value assessed in %s → exploited=%v", ev.Duration.Round(time.Second), ev.Exploited)
			}
		case event.MessageSent:
			if ev.FromAcct == victim && ev.Actor == event.ActorHijacker {
				step(ev.When(), "hijacker sent %s to %d recipients", ev.Class, len(ev.Recipients))
			}
		case event.PasswordChanged:
			if ev.Account == victim {
				step(ev.When(), "password changed by %s", ev.Actor)
			}
		case event.NotificationSent:
			if ev.Account == victim {
				step(ev.When(), "notification over %s (%s)", ev.Channel, ev.Reason)
			}
		case event.ClaimFiled:
			if ev.Account == victim {
				step(ev.When(), "owner filed recovery claim (trigger: %s)", ev.Trigger)
			}
		case event.ClaimAttempt:
			if ev.Account == victim {
				step(ev.When(), "verification via %s → success=%v %s", ev.Method, ev.Success, ev.Reason)
			}
		case event.ClaimResolved:
			if ev.Account == victim {
				lat := ev.When().Sub(ev.FlaggedAt).Round(time.Minute)
				step(ev.When(), "claim resolved success=%v via %s (latency %s)", ev.Success, ev.Method, lat)
			}
		case event.Remission:
			if ev.Account == victim {
				step(ev.When(), "remission: restored %d messages, cleared settings=%v",
					ev.RestoredMessages, ev.ClearedSettings)
			}
		}
	})

	fmt.Printf("\nfinal state: password fresh=%v, 2SV lockout=%v, mailbox=%d messages\n",
		acct.PasswordSetAt.After(cfg.Start), acct.LockedByPhone, w.Mail.Mailbox(victim).Len())
}

func step(at time.Time, format string, args ...any) {
	fmt.Printf("  %s  ", at.Format("Jan 02 15:04:05"))
	fmt.Printf(format+"\n", args...)
}
