module manualhijack

go 1.22
