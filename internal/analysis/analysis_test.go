package analysis

import (
	"net/netip"
	"testing"
	"time"

	"manualhijack/internal/behavior"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
)

var t0 = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)

func at(min int) event.Base { return event.Base{Time: t0.Add(time.Duration(min) * time.Minute)} }

func TestComputeTable2(t *testing.T) {
	s := logstore.New()
	// 35 mail lures, 15 bank lures reported; pages 10 mail, 20 bank.
	for i := 0; i < 35; i++ {
		s.Append(event.LureSent{Base: at(i), Target: event.TargetMail, Reported: true})
	}
	for i := 0; i < 15; i++ {
		s.Append(event.LureSent{Base: at(40 + i), Target: event.TargetBank, Reported: true})
	}
	for i := 0; i < 10; i++ {
		s.Append(event.PageCreated{Base: at(60 + i), Page: event.PageID(i + 1), Target: event.TargetMail})
	}
	for i := 0; i < 20; i++ {
		s.Append(event.PageCreated{Base: at(80 + i), Page: event.PageID(100 + i), Target: event.TargetBank})
	}
	for i := 0; i < 10; i++ {
		s.Append(event.PageDetected{Base: at(120 + i), Page: event.PageID(i + 1)})
	}
	for i := 0; i < 20; i++ {
		s.Append(event.PageDetected{Base: at(140 + i), Page: event.PageID(100 + i)})
	}
	t2 := ComputeTable2(s, 1000)
	if t2.EmailShares[event.TargetMail] != 0.70 || t2.EmailShares[event.TargetBank] != 0.30 {
		t.Fatalf("email shares = %v", t2.EmailShares)
	}
	if t2.PageShares[event.TargetBank] <= t2.PageShares[event.TargetMail] {
		t.Fatalf("page shares = %v", t2.PageShares)
	}
}

func TestURLShare(t *testing.T) {
	s := logstore.New()
	for i := 0; i < 62; i++ {
		s.Append(event.LureSent{Base: at(i), HasURL: true, Reported: true})
	}
	for i := 0; i < 38; i++ {
		s.Append(event.LureSent{Base: at(100 + i), HasURL: false, Reported: true})
	}
	if got := URLShare(s, 1000); got != 0.62 {
		t.Fatalf("url share = %v", got)
	}
}

// formsPage seeds one Forms page with hits and a takedown.
func formsPage(s *logstore.Store, id event.PageID, startMin, gets, posts int, victimTLD string) {
	s.Append(event.PageCreated{Base: at(startMin), Page: id, OnForms: true, Target: event.TargetMail})
	for i := 0; i < gets; i++ {
		s.Append(event.PageHit{Base: at(startMin + 1 + i), Page: id, Method: "GET"})
	}
	for i := 0; i < posts; i++ {
		s.Append(event.PageHit{
			Base: at(startMin + 1 + gets + i), Page: id, Method: "POST",
			Victim: identity.Address("v@x." + victimTLD),
		})
	}
	s.Append(event.PageTakedown{Base: at(startMin + gets + posts + 10), Page: id})
}

func TestComputeFigure4And5(t *testing.T) {
	s := logstore.New()
	formsPage(s, 1, 0, 40, 10, "edu")
	formsPage(s, 2, 200, 50, 5, "com")
	f4 := ComputeFigure4(s, 100)
	if f4.N != 15 {
		t.Fatalf("submissions = %d", f4.N)
	}
	if f4.EduShare < 0.6 || f4.EduShare > 0.7 {
		t.Fatalf("edu share = %v", f4.EduShare)
	}
	f5 := ComputeFigure5(s, 100, 10)
	if len(f5.PerPage) != 2 {
		t.Fatalf("pages = %d", len(f5.PerPage))
	}
	if f5.Max != 0.25 || f5.Min != 0.1 {
		t.Fatalf("f5 = %+v", f5)
	}
}

func TestComputeFigure3BlankShare(t *testing.T) {
	s := logstore.New()
	s.Append(event.PageCreated{Base: at(0), Page: 1, OnForms: true})
	for i := 0; i < 99; i++ {
		s.Append(event.PageHit{Base: at(1 + i), Page: 1, Method: "GET"})
	}
	s.Append(event.PageHit{Base: at(200), Page: 1, Method: "GET", Referrer: "mail.yahoo.com"})
	s.Append(event.PageTakedown{Base: at(300), Page: 1})
	f3 := ComputeFigure3(s, 100)
	if f3.BlankShare != 0.99 {
		t.Fatalf("blank share = %v", f3.BlankShare)
	}
	if len(f3.NonBlank) != 1 || f3.NonBlank[0].Key != "mail.yahoo.com" {
		t.Fatalf("non-blank = %v", f3.NonBlank)
	}
}

func TestComputeFigure7(t *testing.T) {
	s := logstore.New()
	// Three decoys: accessed at 10 min, accessed at 10 h, never accessed.
	s.Append(event.CredentialPhished{Base: at(0), Account: 1, Decoy: true})
	s.Append(event.CredentialPhished{Base: at(0), Account: 2, Decoy: true})
	s.Append(event.CredentialPhished{Base: at(0), Account: 3, Decoy: true})
	s.Append(event.Login{Base: at(10), Account: 1, Actor: event.ActorHijacker})
	s.Append(event.Login{Base: at(600), Account: 2, Actor: event.ActorHijacker})
	f7 := ComputeFigure7(s)
	if f7.Submitted != 3 || f7.Accessed != 2 {
		t.Fatalf("f7 = %+v", f7)
	}
	if f7.Within30Min != 0.5 || f7.Within7Hours != 0.5 {
		t.Fatalf("f7 fractions = %+v", f7)
	}
}

func TestComputeFigure8(t *testing.T) {
	s := logstore.New()
	ip := netip.MustParseAddr("10.1.1.1")
	for i := 0; i < 8; i++ {
		ok := i < 6 // 6 of 8 attempts have the right password
		outcome := event.LoginWrongPassword
		if ok {
			outcome = event.LoginSuccess
		}
		s.Append(event.Login{
			Base: at(i), Account: identity.AccountID(i + 1), IP: ip,
			Actor: event.ActorHijacker, PasswordOK: ok, Outcome: outcome,
		})
	}
	f8 := ComputeFigure8(s)
	if f8.IPDays != 1 || f8.MeanAttemptsPerIPDay != 8 || f8.MeanAccountsPerIPDay != 8 {
		t.Fatalf("f8 = %+v", f8)
	}
	if f8.PasswordOKShare != 0.75 {
		t.Fatalf("pwok = %v", f8.PasswordOKShare)
	}
}

func TestComputeTable3(t *testing.T) {
	s := logstore.New()
	for i, q := range []string{"wire transfer", "wire transfer", "bank", "password", "jpg", "账单"} {
		s.Append(event.Search{Base: at(i), Account: 1, Query: q, Actor: event.ActorHijacker})
	}
	// Owner searches must not count.
	s.Append(event.Search{Base: at(10), Account: 2, Query: "bank", Actor: event.ActorOwner})
	t3 := ComputeTable3(s)
	if t3.N != 6 {
		t.Fatalf("n = %d", t3.N)
	}
	if t3.Terms[0].Key != "wire transfer" {
		t.Fatalf("top term = %v", t3.Terms[0])
	}
	if !t3.HasChinese || t3.HasSpanish {
		t.Fatalf("language flags = %+v", t3)
	}
	if t3.FinanceShare <= t3.CredShare {
		t.Fatal("finance should dominate")
	}
}

func TestComputeAssessment(t *testing.T) {
	s := logstore.New()
	s.Append(event.HijackStarted{Base: at(0), Account: 1, Session: 1})
	s.Append(event.FolderOpened{Base: at(1), Account: 1, Folder: event.FolderStarred, Actor: event.ActorHijacker, Session: 1})
	s.Append(event.HijackAssessed{Base: at(3), Account: 1, Duration: 3 * time.Minute, Exploited: true})
	s.Append(event.HijackStarted{Base: at(10), Account: 2, Session: 2})
	s.Append(event.HijackAssessed{Base: at(13), Account: 2, Duration: time.Minute, Exploited: false})

	a := ComputeAssessment(s, 100)
	if a.Cases != 2 || a.ExploitedShare != 0.5 {
		t.Fatalf("assessment = %+v", a)
	}
	if a.MeanDuration != 2*time.Minute {
		t.Fatalf("mean = %v", a.MeanDuration)
	}
	if a.FolderOpenRates[event.FolderStarred] != 0.5 {
		t.Fatalf("starred rate = %v", a.FolderOpenRates)
	}
}

func TestComputeRetentionConditionals(t *testing.T) {
	s := logstore.New()
	// Account 1: lockout + mass delete. Account 2: lockout only.
	// Account 3: filter only, no lockout.
	s.Append(event.HijackStarted{Base: at(0), Account: 1})
	s.Append(event.HijackStarted{Base: at(1), Account: 2})
	s.Append(event.HijackStarted{Base: at(2), Account: 3})
	// A fourth, assessed-and-abandoned case must not enter the base.
	s.Append(event.HijackStarted{Base: at(2), Account: 4})
	for i, acct := range []identity.AccountID{1, 2, 3} {
		s.Append(event.HijackAssessed{Base: at(2 + i), Account: acct, Exploited: true})
	}
	s.Append(event.HijackAssessed{Base: at(5), Account: 4, Exploited: false})
	s.Append(event.PasswordChanged{Base: at(6), Account: 1, Actor: event.ActorHijacker})
	s.Append(event.MassDeletion{Base: at(7), Account: 1, Actor: event.ActorHijacker})
	s.Append(event.PasswordChanged{Base: at(8), Account: 2, Actor: event.ActorHijacker})
	s.Append(event.FilterCreated{Base: at(9), Account: 3, ForwardTo: "x@evil.test", Actor: event.ActorHijacker})
	// Owner actions must not count.
	s.Append(event.PasswordChanged{Base: at(10), Account: 3, Actor: event.ActorOwner})

	r := ComputeRetention(s, 100)
	if r.Cases != 3 {
		t.Fatalf("cases = %d", r.Cases)
	}
	if r.LockoutShare != 2.0/3 {
		t.Fatalf("lockout = %v", r.LockoutShare)
	}
	if r.MassDeleteGivenLockout != 0.5 {
		t.Fatalf("massdelete|lockout = %v", r.MassDeleteGivenLockout)
	}
	if r.FilterShare != 1.0/3 {
		t.Fatalf("filter = %v", r.FilterShare)
	}
}

func TestComputeFigure9(t *testing.T) {
	s := logstore.New()
	flag := t0
	add := func(min int, lat time.Duration) {
		s.Append(event.ClaimResolved{
			Base: event.Base{Time: flag.Add(lat)}, Account: identity.AccountID(min),
			Success: true, FlaggedAt: flag,
		})
	}
	add(1, 30*time.Minute)
	add(2, 5*time.Hour)
	add(3, 20*time.Hour)
	add(4, 40*time.Hour)
	f9 := ComputeFigure9(s, 100)
	if f9.Recoveries != 4 {
		t.Fatalf("recoveries = %d", f9.Recoveries)
	}
	if f9.Within1Hour != 0.25 || f9.Within13Hour != 0.5 {
		t.Fatalf("f9 = %+v", f9)
	}
}

func TestComputeFigure10(t *testing.T) {
	s := logstore.New()
	for i := 0; i < 10; i++ {
		s.Append(event.ClaimAttempt{Base: at(i), Method: event.MethodSMS, Success: i < 8})
	}
	for i := 0; i < 10; i++ {
		s.Append(event.ClaimAttempt{Base: at(20 + i), Method: event.MethodFallback, Success: i < 1})
	}
	f10 := ComputeFigure10(s, t0, t0.Add(24*time.Hour))
	if f10.Methods[event.MethodSMS].Rate != 0.8 {
		t.Fatalf("sms = %+v", f10.Methods[event.MethodSMS])
	}
	if f10.Methods[event.MethodFallback].Rate != 0.1 {
		t.Fatalf("fallback = %+v", f10.Methods[event.MethodFallback])
	}
}

func TestComputeFigures11And12(t *testing.T) {
	s := logstore.New()
	plan := geo.NewIPPlan(2)
	r := randx.New(1)
	for i := 0; i < 30; i++ {
		c := geo.China
		if i >= 20 {
			c = geo.SouthAfrica
		}
		s.Append(event.Login{
			Base: at(i), Account: identity.AccountID(i + 1),
			IP: plan.Addr(r, c), Actor: event.ActorHijacker, Outcome: event.LoginSuccess,
		})
	}
	f11 := ComputeFigure11(s, plan, 100)
	if f11.Shares[0].Key != string(geo.China) || f11.Shares[0].Count != 20 {
		t.Fatalf("f11 = %+v", f11.Shares)
	}

	for i := 0; i < 5; i++ {
		s.Append(event.TwoSVEnrolled{
			Base: at(100 + i), Account: identity.AccountID(i + 1),
			Phone: geo.NewPhone(r, geo.IvoryCoast), Actor: event.ActorHijacker,
		})
	}
	f12 := ComputeFigure12(s, 100)
	if f12.Phones != 5 || f12.Shares[0].Key != string(geo.IvoryCoast) {
		t.Fatalf("f12 = %+v", f12)
	}
}

func TestEvaluateBehaviorDetectorReplay(t *testing.T) {
	s := logstore.New()
	// Hijacker session 1: playbook actions. Organic session 2: benign.
	s.Append(event.Login{Base: at(0), Account: 1, Session: 1, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Search{Base: at(1), Account: 1, Session: 1, Query: "wire transfer", Actor: event.ActorHijacker})
	s.Append(event.ContactsViewed{Base: at(2), Account: 1, Session: 1, Actor: event.ActorHijacker})
	s.Append(event.MassDeletion{Base: at(3), Account: 1, Session: 1, Actor: event.ActorHijacker})
	s.Append(event.Login{Base: at(10), Account: 2, Session: 2, Actor: event.ActorOwner, Outcome: event.LoginSuccess})
	s.Append(event.Search{Base: at(11), Account: 2, Session: 2, Query: "lunch", Actor: event.ActorOwner})

	ev := EvaluateBehaviorDetector(s, behavior.DefaultConfig())
	if ev.HijackSessions != 1 || ev.OrganicSessions != 1 {
		t.Fatalf("sessions = %+v", ev)
	}
	if ev.TruePositives != 1 || ev.FalsePositives != 0 {
		t.Fatalf("flags = %+v", ev)
	}
	if ev.Recall != 1 || ev.Precision != 1 {
		t.Fatalf("rates = %+v", ev)
	}
	if ev.MeanExposure != 3*time.Minute {
		t.Fatalf("exposure = %v", ev.MeanExposure)
	}
}

func TestSweepRiskThreshold(t *testing.T) {
	s := logstore.New()
	// Hijacker successes at scores 0.7, 0.5; owner logins at 0.1, 0.65.
	s.Append(event.Login{Base: at(0), Account: 1, RiskScore: 0.7, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(1), Account: 2, RiskScore: 0.5, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(2), Account: 3, RiskScore: 0.1, Actor: event.ActorOwner, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(3), Account: 4, RiskScore: 0.65, Actor: event.ActorOwner, Outcome: event.LoginSuccess})

	pts := SweepRiskThreshold(s, []float64{0.6})
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].HijackerCaught != 0.5 || pts[0].OwnerChallenged != 0.5 {
		t.Fatalf("pt = %+v", pts[0])
	}
}

func TestComputeBaseRates(t *testing.T) {
	s := logstore.New()
	for i := 0; i < 9; i++ {
		s.Append(event.HijackStarted{Base: at(i), Account: identity.AccountID(i + 1)})
	}
	end := t0.Add(24 * time.Hour)
	br := ComputeBaseRates(s, t0, end, 1_000_000)
	if br.HijacksPerMillionActivePerDay != 9 {
		t.Fatalf("rate = %v", br.HijacksPerMillionActivePerDay)
	}
}

func TestComputeRecoveryChannels(t *testing.T) {
	s := logstore.New()
	s.Append(event.ClaimAttempt{Base: at(0), Method: event.MethodEmail, Success: false, Reason: "bounce"})
	s.Append(event.ClaimAttempt{Base: at(1), Method: event.MethodEmail, Success: true})
	s.Append(event.ClaimAttempt{Base: at(2), Method: event.MethodSMS, Success: true})
	ch := ComputeRecoveryChannels(s, 100, 7)
	if ch.RecycledShare != 0.07 {
		t.Fatalf("recycled = %v", ch.RecycledShare)
	}
	if ch.BounceShare != 0.5 || ch.EmailAttempts != 2 {
		t.Fatalf("bounce = %+v", ch)
	}
}

func TestQuietHours(t *testing.T) {
	if got := quietHours([]int{0, 0, 1, 0, 50, 60}); got != 4 {
		t.Fatalf("quiet = %d", got)
	}
	if got := quietHours([]int{0, 0}); got != 2 {
		t.Fatalf("all-quiet = %d", got)
	}
}
