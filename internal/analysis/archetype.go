package analysis

import (
	"sort"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// ArchetypeOutcome is one scorecard row: how the login defense fared
// against a single attacker archetype, keyed by the ground-truth tag the
// playbook actors stamp on their login attempts.
type ArchetypeOutcome struct {
	Archetype string
	// Accounts is the number of distinct accounts the archetype attempted.
	Accounts int
	// Attempts / Logins are login attempts and successful entries.
	Attempts int
	Logins   int
	// Challenged / Blocked count attempt-level defense reactions.
	Challenged int
	Blocked    int
	// Detected is the number of attempted accounts where the defense
	// reacted at least once (challenge, block, or failed challenge).
	Detected int
	// Recall is Detected / Accounts.
	Recall float64
	// MedianTTD is the median, over detected accounts, of first attempt →
	// first defense reaction.
	MedianTTD time.Duration
}

// ArchetypeScorecard is the per-archetype detection scorecard plus the
// §8.1 false-positive cost: every challenge or block spent on owners is
// the price of the recall in the rows.
type ArchetypeScorecard struct {
	Rows []ArchetypeOutcome
	// Owner* count legitimate-owner login attempts and how many of them
	// the defense challenged or blocked (the FP cost side of the §8.1
	// block/challenge trade-off).
	OwnerLogins          int
	OwnerChallenged      int
	OwnerBlocked         int
	OwnerChallengedShare float64
	OwnerBlockedShare    float64
}

// archAcct tracks one attempted account within one archetype.
type archAcct struct {
	first     time.Time
	detected  time.Time
	hasDetect bool
}

// archRow is the mutable per-archetype state.
type archRow struct {
	attempts   int
	logins     int
	challenged int
	blocked    int
	accts      map[identity.AccountID]*archAcct
}

// ArchetypeScorecardBuilder computes the scorecard incrementally.
//
// Merge contract: folding a shard that observed a later, contiguous
// partition of the log into the receiver reproduces sequential state
// exactly — counters sum; an account's first-seen timestamp keeps the
// receiver's (earlier) value; its first-detection keeps the receiver's
// when present, else adopts the shard's.
type ArchetypeScorecardBuilder struct {
	rows map[string]*archRow

	ownerLogins     int
	ownerChallenged int
	ownerBlocked    int
}

// NewArchetypeScorecardBuilder returns an empty builder.
func NewArchetypeScorecardBuilder() *ArchetypeScorecardBuilder {
	return &ArchetypeScorecardBuilder{rows: map[string]*archRow{}}
}

func (b *ArchetypeScorecardBuilder) row(archetype string) *archRow {
	r := b.rows[archetype]
	if r == nil {
		r = &archRow{accts: map[identity.AccountID]*archAcct{}}
		b.rows[archetype] = r
	}
	return r
}

// Observe feeds one event. Only login records matter; untagged hijacker
// attempts (pre-archetype dumps) fall outside the rows by design.
func (b *ArchetypeScorecardBuilder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok {
		return
	}
	if l.Actor != event.ActorHijacker {
		b.ownerLogins++
		if l.Challenged {
			b.ownerChallenged++
		}
		if l.Outcome == event.LoginBlocked {
			b.ownerBlocked++
		}
		return
	}
	if l.Archetype == "" {
		return
	}
	r := b.row(l.Archetype)
	r.attempts++
	if l.Outcome == event.LoginSuccess {
		r.logins++
	}
	if l.Challenged {
		r.challenged++
	}
	if l.Outcome == event.LoginBlocked {
		r.blocked++
	}
	a := r.accts[l.Account]
	if a == nil {
		a = &archAcct{first: l.When()}
		r.accts[l.Account] = a
	}
	detected := l.Challenged ||
		l.Outcome == event.LoginBlocked ||
		l.Outcome == event.LoginChallengeFailed
	if detected && !a.hasDetect {
		a.detected = l.When()
		a.hasDetect = true
	}
}

// Merge folds a shard that observed a later, contiguous partition of the
// log into the receiver.
func (b *ArchetypeScorecardBuilder) Merge(o *ArchetypeScorecardBuilder) {
	b.ownerLogins += o.ownerLogins
	b.ownerChallenged += o.ownerChallenged
	b.ownerBlocked += o.ownerBlocked
	for name, or := range o.rows {
		r := b.row(name)
		r.attempts += or.attempts
		r.logins += or.logins
		r.challenged += or.challenged
		r.blocked += or.blocked
		for acct, oa := range or.accts {
			a := r.accts[acct]
			if a == nil {
				cp := *oa
				r.accts[acct] = &cp
				continue
			}
			// Receiver saw the account first; its first-seen stands. Its
			// detection, when present, is also the earlier one.
			if !a.hasDetect && oa.hasDetect {
				a.detected = oa.detected
				a.hasDetect = true
			}
		}
	}
}

// Scorecard snapshots the rows, sorted by archetype name.
func (b *ArchetypeScorecardBuilder) Scorecard() ArchetypeScorecard {
	out := ArchetypeScorecard{
		OwnerLogins:     b.ownerLogins,
		OwnerChallenged: b.ownerChallenged,
		OwnerBlocked:    b.ownerBlocked,
		OwnerChallengedShare: stats.Ratio(
			float64(b.ownerChallenged), float64(b.ownerLogins)),
		OwnerBlockedShare: stats.Ratio(
			float64(b.ownerBlocked), float64(b.ownerLogins)),
	}
	names := make([]string, 0, len(b.rows))
	for name := range b.rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := b.rows[name]
		row := ArchetypeOutcome{
			Archetype:  name,
			Accounts:   len(r.accts),
			Attempts:   r.attempts,
			Logins:     r.logins,
			Challenged: r.challenged,
			Blocked:    r.blocked,
		}
		var ttds []time.Duration
		for _, a := range r.accts {
			if a.hasDetect {
				row.Detected++
				ttds = append(ttds, a.detected.Sub(a.first))
			}
		}
		row.Recall = stats.Ratio(float64(row.Detected), float64(row.Accounts))
		row.MedianTTD = medianDuration(ttds)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// medianDuration is the exact median (mean of the middle pair when even).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	mid := len(ds) / 2
	if len(ds)%2 == 1 {
		return ds[mid]
	}
	return (ds[mid-1] + ds[mid]) / 2
}

// ArchetypeScorecardOf scans a sealed log into a scorecard (batch path).
func ArchetypeScorecardOf(s *logstore.Store) ArchetypeScorecard {
	b := NewArchetypeScorecardBuilder()
	s.Scan(b.Observe)
	return b.Scorecard()
}
