package analysis

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

func scorecardLogin(at time.Time, acct identity.AccountID, actor event.Actor, arch string, outcome event.LoginOutcome, challenged bool) event.Login {
	return event.Login{
		Base: event.Base{Time: at}, Account: acct,
		IP: netip.MustParseAddr("10.0.0.1"), Outcome: outcome,
		Challenged: challenged, Actor: actor, Archetype: arch,
	}
}

func TestArchetypeScorecardBuilder(t *testing.T) {
	t0 := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	events := []event.Event{
		// smashgrab: account 1 slips in clean, then is challenged 2h later.
		scorecardLogin(t0, 1, event.ActorHijacker, "smashgrab", event.LoginSuccess, false),
		scorecardLogin(t0.Add(2*time.Hour), 1, event.ActorHijacker, "smashgrab", event.LoginSuccess, true),
		// smashgrab: account 2 blocked on first contact (TTD 0).
		scorecardLogin(t0.Add(time.Hour), 2, event.ActorHijacker, "smashgrab", event.LoginBlocked, false),
		// stuffer: account 3 never detected.
		scorecardLogin(t0.Add(3*time.Hour), 3, event.ActorHijacker, "stuffer", event.LoginSuccess, false),
		// Untagged hijacker login (pre-archetype dump): outside the rows.
		scorecardLogin(t0.Add(4*time.Hour), 4, event.ActorHijacker, "", event.LoginSuccess, false),
		// Owner traffic: one clean, one challenged, one blocked.
		scorecardLogin(t0.Add(5*time.Hour), 5, event.ActorOwner, "", event.LoginSuccess, false),
		scorecardLogin(t0.Add(6*time.Hour), 6, event.ActorOwner, "", event.LoginSuccess, true),
		scorecardLogin(t0.Add(7*time.Hour), 7, event.ActorOwner, "", event.LoginBlocked, false),
	}

	b := NewArchetypeScorecardBuilder()
	for _, e := range events {
		b.Observe(e)
	}
	sc := b.Scorecard()

	if len(sc.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (smashgrab, stuffer): %+v", len(sc.Rows), sc.Rows)
	}
	sg := sc.Rows[0]
	if sg.Archetype != "smashgrab" || sg.Accounts != 2 || sg.Attempts != 3 ||
		sg.Logins != 2 || sg.Challenged != 1 || sg.Blocked != 1 || sg.Detected != 2 {
		t.Errorf("smashgrab row wrong: %+v", sg)
	}
	if sg.Recall != 1.0 {
		t.Errorf("smashgrab recall %v, want 1.0", sg.Recall)
	}
	// TTDs: account 1 detected after 2h, account 2 after 0 → median 1h.
	if sg.MedianTTD != time.Hour {
		t.Errorf("smashgrab median TTD %v, want 1h", sg.MedianTTD)
	}
	st := sc.Rows[1]
	if st.Archetype != "stuffer" || st.Detected != 0 || st.Recall != 0 || st.MedianTTD != 0 {
		t.Errorf("stuffer row wrong: %+v", st)
	}
	if sc.OwnerLogins != 3 || sc.OwnerChallenged != 1 || sc.OwnerBlocked != 1 {
		t.Errorf("owner FP cost wrong: %+v", sc)
	}

	// Merge parity: every contiguous split must fold back to the
	// sequential scorecard exactly.
	for cut := 0; cut <= len(events); cut++ {
		head := NewArchetypeScorecardBuilder()
		for _, e := range events[:cut] {
			head.Observe(e)
		}
		tail := NewArchetypeScorecardBuilder()
		for _, e := range events[cut:] {
			tail.Observe(e)
		}
		head.Merge(tail)
		if got := head.Scorecard(); !reflect.DeepEqual(got, sc) {
			t.Errorf("cut %d: merged scorecard diverged:\n got %+v\nwant %+v", cut, got, sc)
		}
	}
}
