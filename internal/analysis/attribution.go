package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Figure11 is the country mix of IPs involved in hijack cases
// (Dataset 13; paper: China and Malaysia dominate, South Africa ≈10%).
type Figure11 struct {
	Shares []stats.Entry
	Cases  int
}

// ComputeFigure11 reproduces Figure 11 by geolocating one login IP per
// hijack case.
func ComputeFigure11(s *logstore.Store, plan *geo.IPPlan, cases int) Figure11 {
	var c stats.Counter
	logins := datasets.D13HijackIPs(s, cases)
	for _, l := range logins {
		c.Add(string(plan.Locate(l.IP)))
	}
	return Figure11{Shares: c.Sorted(), Cases: c.Total()}
}

// Figure12 is the country mix of phones hijackers enrolled for 2SV
// lockouts (Dataset 14; paper: CI 33.8%, NG 31.4%, ZA 8.4%, FR 6.4%).
type Figure12 struct {
	Shares []stats.Entry
	Phones int
}

// ComputeFigure12 reproduces Figure 12 by parsing phone country codes.
func ComputeFigure12(s *logstore.Store, n int) Figure12 {
	var c stats.Counter
	for _, e := range datasets.D14HijackerPhones(s, n) {
		c.Add(string(geo.PhoneCountry(e.Phone)))
	}
	return Figure12{Shares: c.Sorted(), Phones: c.Total()}
}

// BaseRates holds §3's headline volume numbers.
type BaseRates struct {
	// HijacksPerMillionActivePerDay is the manual-hijack incidence rate
	// (paper: ≈9 per million active users per day in 2012–2013).
	HijacksPerMillionActivePerDay float64
	Hijacks                       int
	ActiveAccounts                int
	Days                          float64
	// PagesPerWeek is the anti-phishing pipeline's weekly detection volume
	// (paper, at Google scale: 16,000–25,000/week).
	PagesPerWeek []int
}

// ComputeBaseRates reproduces §3's rates. activeAccounts is the number of
// accounts active in the window (the paper's 30-day definition).
func ComputeBaseRates(s *logstore.Store, start, end time.Time, activeAccounts int) BaseRates {
	hijacked := map[int32]bool{}
	for _, h := range logstore.Select[event.HijackStarted](s) {
		hijacked[int32(h.Account)] = true
	}
	days := end.Sub(start).Hours() / 24
	out := BaseRates{
		Hijacks:        len(hijacked),
		ActiveAccounts: activeAccounts,
		Days:           days,
		PagesPerWeek:   SafeBrowsingWeekly(s, start),
	}
	if activeAccounts > 0 && days > 0 {
		out.HijacksPerMillionActivePerDay =
			float64(len(hijacked)) / (float64(activeAccounts) / 1e6) / days
	}
	return out
}
