package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Figure11 is the country mix of IPs involved in hijack cases
// (Dataset 13; paper: China and Malaysia dominate, South Africa ≈10%).
type Figure11 struct {
	Shares []stats.Entry
	Cases  int
}

// DefaultFigure11Cases is the registry's Dataset 13 case count for
// Figure 11, shared with the streaming suite so both paths draw the same
// sample.
const DefaultFigure11Cases = 3000

// ComputeFigure11 reproduces Figure 11 by geolocating one login IP per
// hijack case. It feeds the incremental builder from Dataset 5's login
// stream — the same records D13HijackIPs filters — so the batch and
// streaming paths share one implementation.
func ComputeFigure11(s *logstore.Store, plan *geo.IPPlan, cases int) Figure11 {
	b := NewFigure11Builder()
	for _, l := range datasets.D5HijackerLogins(s) {
		b.Observe(l)
	}
	return b.Figure11(plan, cases)
}

// Figure11Builder is the incremental form of ComputeFigure11. It keeps one
// login per hijack case — Dataset 13's population, accumulated in log order
// so the finalizing sample draws exactly what the batch extractor draws.
// State grows with hijack cases, not with the log.
type Figure11Builder struct {
	seen  map[identity.AccountID]bool
	cases []event.Login
}

// NewFigure11Builder returns an empty builder.
func NewFigure11Builder() *Figure11Builder {
	return &Figure11Builder{seen: map[identity.AccountID]bool{}}
}

// Observe folds one event into the case list: the first successful
// hijacker login per account defines the case's IP.
func (b *Figure11Builder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok || l.Actor != event.ActorHijacker ||
		l.Outcome != event.LoginSuccess || b.seen[l.Account] {
		return
	}
	b.seen[l.Account] = true
	b.cases = append(b.cases, l)
}

// Merge folds a later partition's cases into b through the same
// first-success-per-account dedup, reproducing the sequential case order.
func (b *Figure11Builder) Merge(other *Figure11Builder) {
	for _, l := range other.cases {
		if b.seen[l.Account] {
			continue
		}
		b.seen[l.Account] = true
		b.cases = append(b.cases, l)
	}
}

// Figure11 snapshots the figure from the cases observed so far, sampling
// with Dataset 13's deterministic stream and geolocating against plan.
func (b *Figure11Builder) Figure11(plan *geo.IPPlan, cases int) Figure11 {
	var c stats.Counter
	for _, l := range datasets.SampleN(13, b.cases, cases) {
		c.Add(string(plan.Locate(l.IP)))
	}
	return Figure11{Shares: c.Sorted(), Cases: c.Total()}
}

// Figure12 is the country mix of phones hijackers enrolled for 2SV
// lockouts (Dataset 14; paper: CI 33.8%, NG 31.4%, ZA 8.4%, FR 6.4%).
type Figure12 struct {
	Shares []stats.Entry
	Phones int
}

// ComputeFigure12 reproduces Figure 12 by parsing phone country codes. It
// scans the log through the incremental builder so the batch and segmented
// paths share one implementation.
func ComputeFigure12(s *logstore.Store, n int) Figure12 {
	b := NewFigure12Builder()
	s.Scan(b.Observe)
	return b.Figure12(n)
}

// Figure12Builder is the incremental form of ComputeFigure12: it
// accumulates Dataset 14's population (hijacker 2SV enrollments, in log
// order) and draws the dataset's deterministic sample at snapshot time.
type Figure12Builder struct {
	enrolls []event.TwoSVEnrolled
}

// NewFigure12Builder returns an empty builder.
func NewFigure12Builder() *Figure12Builder { return &Figure12Builder{} }

// Observe folds one event into the Dataset 14 population.
func (b *Figure12Builder) Observe(e event.Event) {
	if ev, ok := e.(event.TwoSVEnrolled); ok && ev.Actor == event.ActorHijacker {
		b.enrolls = append(b.enrolls, ev)
	}
}

// Merge folds a later partition's enrollments into b by concatenation.
func (b *Figure12Builder) Merge(other *Figure12Builder) {
	b.enrolls = append(b.enrolls, other.enrolls...)
}

// Figure12 snapshots the figure from the enrollments observed so far.
func (b *Figure12Builder) Figure12(n int) Figure12 {
	var c stats.Counter
	for _, e := range datasets.SampleN(14, b.enrolls, n) {
		c.Add(string(geo.PhoneCountry(e.Phone)))
	}
	return Figure12{Shares: c.Sorted(), Phones: c.Total()}
}

// BaseRates holds §3's headline volume numbers.
type BaseRates struct {
	// HijacksPerMillionActivePerDay is the manual-hijack incidence rate
	// (paper: ≈9 per million active users per day in 2012–2013).
	HijacksPerMillionActivePerDay float64
	Hijacks                       int
	ActiveAccounts                int
	Days                          float64
	// PagesPerWeek is the anti-phishing pipeline's weekly detection volume
	// (paper, at Google scale: 16,000–25,000/week).
	PagesPerWeek []int
}

// ComputeBaseRates reproduces §3's rates. activeAccounts is the number of
// accounts active in the window (the paper's 30-day definition). It scans
// the log through the incremental builder so the batch and segmented paths
// share one implementation.
func ComputeBaseRates(s *logstore.Store, start, end time.Time, activeAccounts int) BaseRates {
	b := NewBaseRatesBuilder(start)
	s.Scan(b.Observe)
	return b.BaseRates(start, end, activeAccounts)
}

// BaseRatesBuilder is the incremental form of ComputeBaseRates: the
// distinct-victim set and the weekly detection series, anchored at the
// window start.
type BaseRatesBuilder struct {
	hijacked map[int32]bool
	weekly   *stats.TimeSeries
}

// NewBaseRatesBuilder returns an empty builder for a window starting at
// start.
func NewBaseRatesBuilder(start time.Time) *BaseRatesBuilder {
	return &BaseRatesBuilder{
		hijacked: map[int32]bool{},
		weekly:   stats.NewTimeSeries(start, 7*24*time.Hour),
	}
}

// Observe folds one event into the rate aggregates.
func (b *BaseRatesBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.HijackStarted:
		b.hijacked[int32(ev.Account)] = true
	case event.PageDetected:
		b.weekly.Observe(ev.When())
	}
}

// Merge folds a later partition's aggregates into b: the victim set
// unions, the weekly series adds bucketwise (both shards share the
// window-start anchor).
func (b *BaseRatesBuilder) Merge(other *BaseRatesBuilder) {
	for a := range other.hijacked {
		b.hijacked[a] = true
	}
	b.weekly.Merge(other.weekly)
}

// BaseRates snapshots the rates observed so far; activeAccounts comes from
// the directory, not the log.
func (b *BaseRatesBuilder) BaseRates(start, end time.Time, activeAccounts int) BaseRates {
	days := end.Sub(start).Hours() / 24
	out := BaseRates{
		Hijacks:        len(b.hijacked),
		ActiveAccounts: activeAccounts,
		Days:           days,
		PagesPerWeek:   b.weekly.Counts(),
	}
	if activeAccounts > 0 && days > 0 {
		out.HijacksPerMillionActivePerDay =
			float64(len(b.hijacked)) / (float64(activeAccounts) / 1e6) / days
	}
	return out
}
