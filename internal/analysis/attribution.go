package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Figure11 is the country mix of IPs involved in hijack cases
// (Dataset 13; paper: China and Malaysia dominate, South Africa ≈10%).
type Figure11 struct {
	Shares []stats.Entry
	Cases  int
}

// DefaultFigure11Cases is the registry's Dataset 13 case count for
// Figure 11, shared with the streaming suite so both paths draw the same
// sample.
const DefaultFigure11Cases = 3000

// ComputeFigure11 reproduces Figure 11 by geolocating one login IP per
// hijack case. It feeds the incremental builder from Dataset 5's login
// stream — the same records D13HijackIPs filters — so the batch and
// streaming paths share one implementation.
func ComputeFigure11(s *logstore.Store, plan *geo.IPPlan, cases int) Figure11 {
	b := NewFigure11Builder()
	for _, l := range datasets.D5HijackerLogins(s) {
		b.Observe(l)
	}
	return b.Figure11(plan, cases)
}

// Figure11Builder is the incremental form of ComputeFigure11. It keeps one
// login per hijack case — Dataset 13's population, accumulated in log order
// so the finalizing sample draws exactly what the batch extractor draws.
// State grows with hijack cases, not with the log.
type Figure11Builder struct {
	seen  map[identity.AccountID]bool
	cases []event.Login
}

// NewFigure11Builder returns an empty builder.
func NewFigure11Builder() *Figure11Builder {
	return &Figure11Builder{seen: map[identity.AccountID]bool{}}
}

// Observe folds one event into the case list: the first successful
// hijacker login per account defines the case's IP.
func (b *Figure11Builder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok || l.Actor != event.ActorHijacker ||
		l.Outcome != event.LoginSuccess || b.seen[l.Account] {
		return
	}
	b.seen[l.Account] = true
	b.cases = append(b.cases, l)
}

// Figure11 snapshots the figure from the cases observed so far, sampling
// with Dataset 13's deterministic stream and geolocating against plan.
func (b *Figure11Builder) Figure11(plan *geo.IPPlan, cases int) Figure11 {
	var c stats.Counter
	for _, l := range datasets.SampleN(13, b.cases, cases) {
		c.Add(string(plan.Locate(l.IP)))
	}
	return Figure11{Shares: c.Sorted(), Cases: c.Total()}
}

// Figure12 is the country mix of phones hijackers enrolled for 2SV
// lockouts (Dataset 14; paper: CI 33.8%, NG 31.4%, ZA 8.4%, FR 6.4%).
type Figure12 struct {
	Shares []stats.Entry
	Phones int
}

// ComputeFigure12 reproduces Figure 12 by parsing phone country codes.
func ComputeFigure12(s *logstore.Store, n int) Figure12 {
	var c stats.Counter
	for _, e := range datasets.D14HijackerPhones(s, n) {
		c.Add(string(geo.PhoneCountry(e.Phone)))
	}
	return Figure12{Shares: c.Sorted(), Phones: c.Total()}
}

// BaseRates holds §3's headline volume numbers.
type BaseRates struct {
	// HijacksPerMillionActivePerDay is the manual-hijack incidence rate
	// (paper: ≈9 per million active users per day in 2012–2013).
	HijacksPerMillionActivePerDay float64
	Hijacks                       int
	ActiveAccounts                int
	Days                          float64
	// PagesPerWeek is the anti-phishing pipeline's weekly detection volume
	// (paper, at Google scale: 16,000–25,000/week).
	PagesPerWeek []int
}

// ComputeBaseRates reproduces §3's rates. activeAccounts is the number of
// accounts active in the window (the paper's 30-day definition).
func ComputeBaseRates(s *logstore.Store, start, end time.Time, activeAccounts int) BaseRates {
	hijacked := map[int32]bool{}
	for _, h := range logstore.Select[event.HijackStarted](s) {
		hijacked[int32(h.Account)] = true
	}
	days := end.Sub(start).Hours() / 24
	out := BaseRates{
		Hijacks:        len(hijacked),
		ActiveAccounts: activeAccounts,
		Days:           days,
		PagesPerWeek:   SafeBrowsingWeekly(s, start),
	}
	if activeAccounts > 0 && days > 0 {
		out.HijacksPerMillionActivePerDay =
			float64(len(hijacked)) / (float64(activeAccounts) / 1e6) / days
	}
	return out
}
