package analysis

import (
	"time"

	"manualhijack/internal/behavior"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// DetectionEval is the offline evaluation of the post-login behavioral
// detector (§5.2 proposes it; §8.2 cautions it fires after exposure). The
// evaluation replays the observable event stream through the detector —
// exactly the data a live deployment would see — and scores the flags
// against the simulation's ground truth.
type DetectionEval struct {
	HijackSessions  int
	OrganicSessions int
	TruePositives   int
	FalsePositives  int
	Precision       float64
	Recall          float64
	// MeanExposure is how long flagged hijack sessions ran before the
	// flag — the paper's "already too late" window.
	MeanExposure time.Duration
}

// EvaluateBehaviorDetector replays the log through a detector with the
// given configuration.
func EvaluateBehaviorDetector(s *logstore.Store, cfg behavior.Config) DetectionEval {
	det := behavior.NewDetector(cfg)
	sessionActor := map[event.SessionID]event.Actor{}

	observe := func(sess event.SessionID, a behavior.Action) {
		if sess != 0 {
			det.Observe(sess, a)
		}
	}
	s.Scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.Login:
			if ev.Outcome == event.LoginSuccess {
				det.Begin(ev.Session, ev.When())
				sessionActor[ev.Session] = ev.Actor
			}
		case event.Search:
			observe(ev.Session, behavior.Action{Type: behavior.ActionSearch, Query: ev.Query, At: ev.When()})
		case event.FolderOpened:
			observe(ev.Session, behavior.Action{Type: behavior.ActionFolderOpen, Folder: ev.Folder, At: ev.When()})
		case event.ContactsViewed:
			observe(ev.Session, behavior.Action{Type: behavior.ActionContactsView, At: ev.When()})
		case event.FilterCreated:
			observe(ev.Session, behavior.Action{Type: behavior.ActionFilterCreate, ForwardOut: ev.ForwardTo != "", At: ev.When()})
		case event.ReplyToSet:
			observe(ev.Session, behavior.Action{Type: behavior.ActionReplyToSet, At: ev.When()})
		case event.MessageSent:
			observe(ev.Session, behavior.Action{Type: behavior.ActionSend, Recipients: len(ev.Recipients), At: ev.When()})
		case event.MassDeletion:
			observe(ev.Session, behavior.Action{Type: behavior.ActionMassDelete, At: ev.When()})
		}
	})

	var out DetectionEval
	var exposure time.Duration
	for sess, actor := range sessionActor {
		hijack := actor == event.ActorHijacker
		if hijack {
			out.HijackSessions++
		} else {
			out.OrganicSessions++
		}
		if _, flagged := det.FlaggedAt(sess); !flagged {
			continue
		}
		if hijack {
			out.TruePositives++
			if exp, ok := det.ExposureTime(sess); ok {
				exposure += exp
			}
		} else {
			out.FalsePositives++
		}
	}
	out.Precision = stats.Ratio(float64(out.TruePositives), float64(out.TruePositives+out.FalsePositives))
	out.Recall = stats.Ratio(float64(out.TruePositives), float64(out.HijackSessions))
	if out.TruePositives > 0 {
		out.MeanExposure = exposure / time.Duration(out.TruePositives)
	}
	return out
}

// RiskOperatingPoint is one row of the login-risk threshold sweep: the
// counterfactual effect of challenging every login scoring at or above
// the threshold, computed from the logged risk scores.
//
// This is a post-hoc approximation (the world is not re-run per
// threshold): "caught" hijacker logins are successful hijacker logins
// that would have been challenged, and "friction" is the share of
// legitimate logins that would have been challenged — the §8.1 trade-off.
type RiskOperatingPoint struct {
	Threshold        float64
	HijackerCaught   float64 // share of successful hijacker logins challenged
	OwnerChallenged  float64 // share of owner logins challenged (false positives)
	HijackerAttempts int
	OwnerAttempts    int
}

// SweepRiskThreshold evaluates the thresholds over the logged scores.
func SweepRiskThreshold(s *logstore.Store, thresholds []float64) []RiskOperatingPoint {
	type obs struct {
		score   float64
		hijack  bool
		success bool
	}
	var all []obs
	for _, l := range logstore.Select[event.Login](s) {
		all = append(all, obs{
			score:   l.RiskScore,
			hijack:  l.Actor == event.ActorHijacker,
			success: l.Outcome == event.LoginSuccess,
		})
	}
	out := make([]RiskOperatingPoint, 0, len(thresholds))
	for _, t := range thresholds {
		var pt RiskOperatingPoint
		pt.Threshold = t
		var hijackSuccess, hijackCaught, owner, ownerChal int
		for _, o := range all {
			if o.hijack {
				if o.success {
					hijackSuccess++
					if o.score >= t {
						hijackCaught++
					}
				}
			} else {
				owner++
				if o.score >= t {
					ownerChal++
				}
			}
		}
		pt.HijackerAttempts = hijackSuccess
		pt.OwnerAttempts = owner
		pt.HijackerCaught = stats.Ratio(float64(hijackCaught), float64(hijackSuccess))
		pt.OwnerChallenged = stats.Ratio(float64(ownerChal), float64(owner))
		out = append(out, pt)
	}
	return out
}
