package analysis

import (
	"time"

	"manualhijack/internal/behavior"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// DetectionEval is the offline evaluation of the post-login behavioral
// detector (§5.2 proposes it; §8.2 cautions it fires after exposure). The
// evaluation replays the observable event stream through the detector —
// exactly the data a live deployment would see — and scores the flags
// against the simulation's ground truth.
type DetectionEval struct {
	HijackSessions  int
	OrganicSessions int
	TruePositives   int
	FalsePositives  int
	Precision       float64
	Recall          float64
	// MeanExposure is how long flagged hijack sessions ran before the
	// flag — the paper's "already too late" window.
	MeanExposure time.Duration
}

// EvaluateBehaviorDetector replays the log through a detector with the
// given configuration. It scans the log through the incremental builder so
// the batch and segmented paths share one implementation.
func EvaluateBehaviorDetector(s *logstore.Store, cfg behavior.Config) DetectionEval {
	b := NewBehaviorEvalBuilder(cfg)
	s.Scan(b.Observe)
	return b.DetectionEval()
}

// BehaviorEvalBuilder is the incremental form of EvaluateBehaviorDetector:
// a live detector fed session actions one event at a time. Events must
// arrive in time order — the detector's session state machines depend on
// it — which both the sealed log and the segmented scan guarantee.
type BehaviorEvalBuilder struct {
	det          *behavior.Detector
	sessionActor map[event.SessionID]event.Actor
}

// NewBehaviorEvalBuilder returns a builder around a fresh detector.
func NewBehaviorEvalBuilder(cfg behavior.Config) *BehaviorEvalBuilder {
	return &BehaviorEvalBuilder{
		det:          behavior.NewDetector(cfg),
		sessionActor: map[event.SessionID]event.Actor{},
	}
}

// Observe feeds one event to the detector.
func (b *BehaviorEvalBuilder) Observe(e event.Event) {
	observe := func(sess event.SessionID, a behavior.Action) {
		if sess != 0 {
			b.det.Observe(sess, a)
		}
	}
	switch ev := e.(type) {
	case event.Login:
		if ev.Outcome == event.LoginSuccess {
			b.det.Begin(ev.Session, ev.When())
			b.sessionActor[ev.Session] = ev.Actor
		}
	case event.Search:
		observe(ev.Session, behavior.Action{Type: behavior.ActionSearch, Query: ev.Query, At: ev.When()})
	case event.FolderOpened:
		observe(ev.Session, behavior.Action{Type: behavior.ActionFolderOpen, Folder: ev.Folder, At: ev.When()})
	case event.ContactsViewed:
		observe(ev.Session, behavior.Action{Type: behavior.ActionContactsView, At: ev.When()})
	case event.FilterCreated:
		observe(ev.Session, behavior.Action{Type: behavior.ActionFilterCreate, ForwardOut: ev.ForwardTo != "", At: ev.When()})
	case event.ReplyToSet:
		observe(ev.Session, behavior.Action{Type: behavior.ActionReplyToSet, At: ev.When()})
	case event.MessageSent:
		observe(ev.Session, behavior.Action{Type: behavior.ActionSend, Recipients: len(ev.Recipients), At: ev.When()})
	case event.MassDeletion:
		observe(ev.Session, behavior.Action{Type: behavior.ActionMassDelete, At: ev.When()})
	}
}

// DetectionEval scores the sessions observed so far against ground truth.
func (b *BehaviorEvalBuilder) DetectionEval() DetectionEval {
	var out DetectionEval
	var exposure time.Duration
	for sess, actor := range b.sessionActor {
		hijack := actor == event.ActorHijacker
		if hijack {
			out.HijackSessions++
		} else {
			out.OrganicSessions++
		}
		if _, flagged := b.det.FlaggedAt(sess); !flagged {
			continue
		}
		if hijack {
			out.TruePositives++
			if exp, ok := b.det.ExposureTime(sess); ok {
				exposure += exp
			}
		} else {
			out.FalsePositives++
		}
	}
	out.Precision = stats.Ratio(float64(out.TruePositives), float64(out.TruePositives+out.FalsePositives))
	out.Recall = stats.Ratio(float64(out.TruePositives), float64(out.HijackSessions))
	if out.TruePositives > 0 {
		out.MeanExposure = exposure / time.Duration(out.TruePositives)
	}
	return out
}

// RiskOperatingPoint is one row of the login-risk threshold sweep: the
// counterfactual effect of challenging every login scoring at or above
// the threshold, computed from the logged risk scores.
//
// This is a post-hoc approximation (the world is not re-run per
// threshold): "caught" hijacker logins are successful hijacker logins
// that would have been challenged, and "friction" is the share of
// legitimate logins that would have been challenged — the §8.1 trade-off.
type RiskOperatingPoint struct {
	Threshold        float64
	HijackerCaught   float64 // share of successful hijacker logins challenged
	OwnerChallenged  float64 // share of owner logins challenged (false positives)
	HijackerAttempts int
	OwnerAttempts    int
}

// SweepRiskThreshold evaluates the thresholds over the logged scores. It
// scans the log through the incremental builder so the batch and segmented
// paths share one implementation — a login's contribution to every
// operating point is decided the moment it is seen, so the sweep never
// materializes the login log.
func SweepRiskThreshold(s *logstore.Store, thresholds []float64) []RiskOperatingPoint {
	b := NewRiskSweepBuilder(thresholds)
	s.Scan(b.Observe)
	return b.Sweep()
}

// RiskSweepBuilder is the incremental form of SweepRiskThreshold:
// per-threshold challenge counters updated per login.
type RiskSweepBuilder struct {
	thresholds    []float64
	hijackCaught  []int
	ownerChal     []int
	hijackSuccess int
	owner         int
}

// NewRiskSweepBuilder returns an empty builder for the given thresholds.
func NewRiskSweepBuilder(thresholds []float64) *RiskSweepBuilder {
	return &RiskSweepBuilder{
		thresholds:   append([]float64(nil), thresholds...),
		hijackCaught: make([]int, len(thresholds)),
		ownerChal:    make([]int, len(thresholds)),
	}
}

// Observe folds one event into every operating point's counters.
func (b *RiskSweepBuilder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok {
		return
	}
	if l.Actor == event.ActorHijacker {
		if l.Outcome != event.LoginSuccess {
			return
		}
		b.hijackSuccess++
		for i, t := range b.thresholds {
			if l.RiskScore >= t {
				b.hijackCaught[i]++
			}
		}
	} else {
		b.owner++
		for i, t := range b.thresholds {
			if l.RiskScore >= t {
				b.ownerChal[i]++
			}
		}
	}
}

// Merge folds a later partition's counters into b. Both builders come
// from the same constructor, so the threshold grids line up.
func (b *RiskSweepBuilder) Merge(other *RiskSweepBuilder) {
	for i := range b.thresholds {
		b.hijackCaught[i] += other.hijackCaught[i]
		b.ownerChal[i] += other.ownerChal[i]
	}
	b.hijackSuccess += other.hijackSuccess
	b.owner += other.owner
}

// Sweep snapshots the operating points observed so far.
func (b *RiskSweepBuilder) Sweep() []RiskOperatingPoint {
	out := make([]RiskOperatingPoint, 0, len(b.thresholds))
	for i, t := range b.thresholds {
		out = append(out, RiskOperatingPoint{
			Threshold:        t,
			HijackerAttempts: b.hijackSuccess,
			OwnerAttempts:    b.owner,
			HijackerCaught:   stats.Ratio(float64(b.hijackCaught[i]), float64(b.hijackSuccess)),
			OwnerChallenged:  stats.Ratio(float64(b.ownerChal[i]), float64(b.owner)),
		})
	}
	return out
}
