package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
	"manualhijack/internal/strsim"
)

// DoppelgangerFinding is one flagged redirection setting.
type DoppelgangerFinding struct {
	Account    identity.AccountID
	Addr       identity.Address
	Similarity float64
	Kind       string // "replyto" | "filter"
	Hijacker   bool   // ground truth, for evaluation
}

// DoppelgangerEval evaluates the §5.4 countermeasure the paper calls
// essential: reviewing Reply-To and forwarding settings during recovery.
// The detector flags configured addresses that are suspiciously similar
// to the account's own address — the signature of a doppelganger account
// diverting future correspondence.
type DoppelgangerEval struct {
	Findings       []DoppelgangerFinding
	TruePositives  int
	FalsePositives int
	// HijackerSettings counts all hijacker-configured redirections, so
	// recall is computable.
	HijackerSettings int
	Precision        float64
	Recall           float64
	// MeanHijackerSim / MeanOwnerSim show the separation the detector
	// exploits.
	MeanHijackerSim float64
	MeanOwnerSim    float64
}

// EvaluateDoppelgangerDetector scans redirection settings in the log and
// flags those within threshold similarity of the account's address.
func EvaluateDoppelgangerDetector(s *logstore.Store, dir *identity.Directory, threshold float64) DoppelgangerEval {
	var out DoppelgangerEval
	var hijackSim, ownerSim stats.Sample

	consider := func(acct identity.AccountID, addr identity.Address, kind string, actor event.Actor) {
		if addr == "" {
			return
		}
		a := dir.Get(acct)
		if a == nil {
			return
		}
		sim := strsim.Similarity(string(a.Addr), string(addr))
		hijacker := actor == event.ActorHijacker
		if hijacker {
			out.HijackerSettings++
			hijackSim.Add(sim)
		} else {
			ownerSim.Add(sim)
		}
		if sim < threshold {
			return
		}
		out.Findings = append(out.Findings, DoppelgangerFinding{
			Account: acct, Addr: addr, Similarity: sim, Kind: kind, Hijacker: hijacker,
		})
		if hijacker {
			out.TruePositives++
		} else {
			out.FalsePositives++
		}
	}

	s.Scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.ReplyToSet:
			consider(ev.Account, ev.Addr, "replyto", ev.Actor)
		case event.FilterCreated:
			consider(ev.Account, ev.ForwardTo, "filter", ev.Actor)
		}
	})

	out.Precision = stats.Ratio(float64(out.TruePositives), float64(out.TruePositives+out.FalsePositives))
	out.Recall = stats.Ratio(float64(out.TruePositives), float64(out.HijackerSettings))
	out.MeanHijackerSim = hijackSim.Mean()
	out.MeanOwnerSim = ownerSim.Mean()
	return out
}
