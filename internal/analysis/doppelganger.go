package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
	"manualhijack/internal/strsim"
)

// DoppelgangerFinding is one flagged redirection setting.
type DoppelgangerFinding struct {
	Account    identity.AccountID
	Addr       identity.Address
	Similarity float64
	Kind       string // "replyto" | "filter"
	Hijacker   bool   // ground truth, for evaluation
}

// DoppelgangerEval evaluates the §5.4 countermeasure the paper calls
// essential: reviewing Reply-To and forwarding settings during recovery.
// The detector flags configured addresses that are suspiciously similar
// to the account's own address — the signature of a doppelganger account
// diverting future correspondence.
type DoppelgangerEval struct {
	Findings       []DoppelgangerFinding
	TruePositives  int
	FalsePositives int
	// HijackerSettings counts all hijacker-configured redirections, so
	// recall is computable.
	HijackerSettings int
	Precision        float64
	Recall           float64
	// MeanHijackerSim / MeanOwnerSim show the separation the detector
	// exploits.
	MeanHijackerSim float64
	MeanOwnerSim    float64
}

// EvaluateDoppelgangerDetector scans redirection settings in the log and
// flags those within threshold similarity of the account's address. It
// scans the log through the incremental builder so the batch and segmented
// paths share one implementation.
func EvaluateDoppelgangerDetector(s *logstore.Store, dir *identity.Directory, threshold float64) DoppelgangerEval {
	b := NewDoppelgangerBuilder(dir, threshold)
	s.Scan(b.Observe)
	return b.DoppelgangerEval()
}

// DoppelgangerBuilder is the incremental form of
// EvaluateDoppelgangerDetector: similarity is scored and classified the
// moment a redirection setting is seen.
type DoppelgangerBuilder struct {
	dir       *identity.Directory
	threshold float64

	out                 DoppelgangerEval
	hijackSim, ownerSim stats.Sample
}

// NewDoppelgangerBuilder returns a builder scoring against dir at the
// given similarity threshold.
func NewDoppelgangerBuilder(dir *identity.Directory, threshold float64) *DoppelgangerBuilder {
	return &DoppelgangerBuilder{dir: dir, threshold: threshold}
}

// Observe folds one event into the evaluation.
func (b *DoppelgangerBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.ReplyToSet:
		b.consider(ev.Account, ev.Addr, "replyto", ev.Actor)
	case event.FilterCreated:
		b.consider(ev.Account, ev.ForwardTo, "filter", ev.Actor)
	}
}

func (b *DoppelgangerBuilder) consider(acct identity.AccountID, addr identity.Address, kind string, actor event.Actor) {
	if addr == "" {
		return
	}
	a := b.dir.Get(acct)
	if a == nil {
		return
	}
	sim := strsim.Similarity(string(a.Addr), string(addr))
	hijacker := actor == event.ActorHijacker
	if hijacker {
		b.out.HijackerSettings++
		b.hijackSim.Add(sim)
	} else {
		b.ownerSim.Add(sim)
	}
	if sim < b.threshold {
		return
	}
	b.out.Findings = append(b.out.Findings, DoppelgangerFinding{
		Account: acct, Addr: addr, Similarity: sim, Kind: kind, Hijacker: hijacker,
	})
	if hijacker {
		b.out.TruePositives++
	} else {
		b.out.FalsePositives++
	}
}

// Merge folds a later partition's evaluation into b. Each setting is
// scored the moment it is observed with no cross-event state, so findings
// concatenate, counters add, and the similarity samples merge in order.
func (b *DoppelgangerBuilder) Merge(other *DoppelgangerBuilder) {
	b.out.Findings = append(b.out.Findings, other.out.Findings...)
	b.out.TruePositives += other.out.TruePositives
	b.out.FalsePositives += other.out.FalsePositives
	b.out.HijackerSettings += other.out.HijackerSettings
	b.hijackSim.Merge(&other.hijackSim)
	b.ownerSim.Merge(&other.ownerSim)
}

// DoppelgangerEval scores the settings observed so far.
func (b *DoppelgangerBuilder) DoppelgangerEval() DoppelgangerEval {
	out := b.out
	out.Precision = stats.Ratio(float64(out.TruePositives), float64(out.TruePositives+out.FalsePositives))
	out.Recall = stats.Ratio(float64(out.TruePositives), float64(out.HijackerSettings))
	out.MeanHijackerSim = b.hijackSim.Mean()
	out.MeanOwnerSim = b.ownerSim.Mean()
	return out
}
