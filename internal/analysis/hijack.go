package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/randx"
	"manualhijack/internal/stats"
)

// Figure7 is the decoy-credential access-speed experiment (Dataset 4).
type Figure7 struct {
	Submitted     int
	Accessed      int
	AccessedShare float64
	Within30Min   float64 // share of accessed decoys reached within 30 min
	Within7Hours  float64
	Delays        *stats.Sample // hours
}

// ComputeFigure7 reproduces Figure 7. It scans the log through the
// incremental builder so the batch and segmented paths share one
// implementation.
func ComputeFigure7(s *logstore.Store) Figure7 {
	b := NewFigure7Builder()
	s.Scan(b.Observe)
	return b.Figure7()
}

// decoyLogin is the slice of a hijacker login the Dataset 4 join needs.
type decoyLogin struct {
	account identity.AccountID
	at      time.Time
}

// Figure7Builder is the incremental form of ComputeFigure7. It accumulates
// Dataset 4's two populations — decoy submissions and hijacker logins — and
// replays D4DecoyAccesses' join at snapshot time, so state grows with the
// attack (decoys + hijacker logins), not with the log.
type Figure7Builder struct {
	submitted map[identity.AccountID]int // account → index in accesses
	accesses  []datasets.DecoyAccess
	logins    []decoyLogin
}

// NewFigure7Builder returns an empty builder.
func NewFigure7Builder() *Figure7Builder {
	return &Figure7Builder{submitted: map[identity.AccountID]int{}}
}

// Observe folds one event into the Dataset 4 populations.
func (b *Figure7Builder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.CredentialPhished:
		if !ev.Decoy {
			return
		}
		if _, dup := b.submitted[ev.Account]; dup {
			return
		}
		b.submitted[ev.Account] = len(b.accesses)
		b.accesses = append(b.accesses, datasets.DecoyAccess{
			Account: ev.Account, SubmittedAt: ev.When()})
	case event.Login:
		if ev.Actor == event.ActorHijacker {
			b.logins = append(b.logins, decoyLogin{ev.Account, ev.When()})
		}
	}
}

// Merge folds a later partition's populations into b. Replaying other's
// submissions in order through the same first-wins dedup reproduces the
// sequential pass exactly: an account's earliest submission across
// partitions claims the slot, later duplicates are dropped.
func (b *Figure7Builder) Merge(other *Figure7Builder) {
	for _, a := range other.accesses {
		if _, dup := b.submitted[a.Account]; dup {
			continue
		}
		b.submitted[a.Account] = len(b.accesses)
		b.accesses = append(b.accesses, a)
	}
	b.logins = append(b.logins, other.logins...)
}

// Figure7 snapshots the figure from the populations observed so far.
func (b *Figure7Builder) Figure7() Figure7 {
	accesses := append([]datasets.DecoyAccess(nil), b.accesses...)
	for _, l := range b.logins {
		idx, ok := b.submitted[l.account]
		if !ok || accesses[idx].Accessed || l.at.Before(accesses[idx].SubmittedAt) {
			continue
		}
		accesses[idx].AccessedAt = l.at
		accesses[idx].Accessed = true
	}
	fig := Figure7{Submitted: len(accesses), Delays: &stats.Sample{}}
	for _, a := range accesses {
		if !a.Accessed {
			continue
		}
		fig.Accessed++
		fig.Delays.Add(a.AccessedAt.Sub(a.SubmittedAt).Hours())
	}
	fig.AccessedShare = stats.Ratio(float64(fig.Accessed), float64(fig.Submitted))
	if fig.Accessed > 0 {
		fig.Within30Min = fig.Delays.FracBelow(0.5)
		fig.Within7Hours = fig.Delays.FracBelow(7)
	}
	return fig
}

// Figure8 is hijacker activity per IP per day (Dataset 5). The paper's
// figure plots two daily series over a two-week window: average attempts
// per IP and average successes per IP.
type Figure8 struct {
	MeanAttemptsPerIPDay float64
	MeanAccountsPerIPDay float64
	MaxAccountsPerIPDay  int
	// SuccessShare is successes/attempts; PasswordOKShare is the share of
	// attempts with a correct password (§5.1: ~75% including retries).
	SuccessShare    float64
	PasswordOKShare float64
	IPDays          int
	// DailyAttempts and DailySuccesses are the per-day averages per active
	// hijacker IP — the two lines of the paper's plot.
	DailyAttempts  []float64
	DailySuccesses []float64
}

// ComputeFigure8 reproduces Figure 8.
func ComputeFigure8(s *logstore.Store) Figure8 {
	b := NewFigure8Builder()
	for _, l := range datasets.D5HijackerLogins(s) {
		b.Observe(l)
	}
	return b.Figure8()
}

// ipDayKey keys the per-IP, per-UTC-day aggregates.
type ipDayKey struct {
	ip  string
	day time.Time
}

// Figure8Builder is the incremental form of ComputeFigure8: per-IP-day
// fanout aggregates that grow with distinct IP-days, not with the log. The
// batch function feeds it from Dataset 5 and the streaming path feeds it
// one login at a time; both finalize through Figure8, so they cannot drift.
type Figure8Builder struct {
	attempts map[ipDayKey]int
	accounts map[ipDayKey]map[identity.AccountID]bool

	totalAttempts, okPasswords, successes int
	daySuccess                            map[time.Time]int
}

// NewFigure8Builder returns an empty builder.
func NewFigure8Builder() *Figure8Builder {
	return &Figure8Builder{
		attempts:   map[ipDayKey]int{},
		accounts:   map[ipDayKey]map[identity.AccountID]bool{},
		daySuccess: map[time.Time]int{},
	}
}

// Observe folds one event into the aggregates. Non-login and non-hijacker
// records are ignored, mirroring Dataset 5's filter.
func (b *Figure8Builder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok || l.Actor != event.ActorHijacker {
		return
	}
	day := l.When().Truncate(24 * time.Hour)
	k := ipDayKey{l.IP.String(), day}
	b.attempts[k]++
	if b.accounts[k] == nil {
		b.accounts[k] = map[identity.AccountID]bool{}
	}
	b.accounts[k][l.Account] = true
	b.totalAttempts++
	if l.PasswordOK {
		b.okPasswords++
	}
	if l.Outcome == event.LoginSuccess {
		b.successes++
		b.daySuccess[day]++
	}
}

// Merge folds a later partition's aggregates into b. Every field is an
// additive count or a set union keyed by IP-day, so partition order
// cannot change the result.
func (b *Figure8Builder) Merge(other *Figure8Builder) {
	for k, n := range other.attempts {
		b.attempts[k] += n
	}
	for k, set := range other.accounts {
		dst := b.accounts[k]
		if dst == nil {
			dst = map[identity.AccountID]bool{}
			b.accounts[k] = dst
		}
		for id := range set {
			dst[id] = true
		}
	}
	b.totalAttempts += other.totalAttempts
	b.okPasswords += other.okPasswords
	b.successes += other.successes
	for d, n := range other.daySuccess {
		b.daySuccess[d] += n
	}
}

// Figure8 snapshots the figure from the aggregates observed so far.
func (b *Figure8Builder) Figure8() Figure8 {
	var fig Figure8
	fig.IPDays = len(b.attempts)
	if fig.IPDays == 0 {
		return fig
	}
	sumAtt, sumAcc := 0, 0
	var firstDay, lastDay time.Time
	dayAttempts := map[time.Time]int{}
	dayIPs := map[time.Time]int{}
	for k, n := range b.attempts {
		sumAtt += n
		na := len(b.accounts[k])
		sumAcc += na
		if na > fig.MaxAccountsPerIPDay {
			fig.MaxAccountsPerIPDay = na
		}
		dayAttempts[k.day] += n
		dayIPs[k.day]++
		if firstDay.IsZero() || k.day.Before(firstDay) {
			firstDay = k.day
		}
		if k.day.After(lastDay) {
			lastDay = k.day
		}
	}
	for d := firstDay; !d.After(lastDay); d = d.Add(24 * time.Hour) {
		ips := dayIPs[d]
		if ips == 0 {
			fig.DailyAttempts = append(fig.DailyAttempts, 0)
			fig.DailySuccesses = append(fig.DailySuccesses, 0)
			continue
		}
		fig.DailyAttempts = append(fig.DailyAttempts, float64(dayAttempts[d])/float64(ips))
		fig.DailySuccesses = append(fig.DailySuccesses, float64(b.daySuccess[d])/float64(ips))
	}
	fig.MeanAttemptsPerIPDay = float64(sumAtt) / float64(fig.IPDays)
	fig.MeanAccountsPerIPDay = float64(sumAcc) / float64(fig.IPDays)
	fig.SuccessShare = stats.Ratio(float64(b.successes), float64(b.totalAttempts))
	fig.PasswordOKShare = stats.Ratio(float64(b.okPasswords), float64(b.totalAttempts))
	return fig
}

// Table3 is the hijacker search-term frequency table (Dataset 6).
type Table3 struct {
	Terms        []stats.Entry
	FinanceShare float64
	CredShare    float64
	N            int
	// NonEnglish reports whether Spanish/Chinese terms appear — the
	// regional fingerprint §5.2 notes.
	HasSpanish bool
	HasChinese bool
}

// ComputeTable3 reproduces Table 3. It scans the log through the
// incremental builder so the batch and segmented paths share one
// implementation.
func ComputeTable3(s *logstore.Store) Table3 {
	b := NewTable3Builder()
	s.Scan(b.Observe)
	return b.Table3()
}

// Table3Builder is the incremental form of ComputeTable3: a counter over
// hijacker search terms, classified at snapshot time.
type Table3Builder struct {
	terms stats.Counter
}

// NewTable3Builder returns an empty builder.
func NewTable3Builder() *Table3Builder { return &Table3Builder{} }

// Observe folds one event into the term counts, mirroring Dataset 6's
// hijacker-search filter.
func (b *Table3Builder) Observe(e event.Event) {
	if q, ok := e.(event.Search); ok && q.Actor == event.ActorHijacker {
		b.terms.Add(q.Query)
	}
}

// Merge folds a later partition's term counts into b.
func (b *Table3Builder) Merge(other *Table3Builder) {
	b.terms.Merge(&other.terms)
}

// Table3 snapshots the table from the terms observed so far.
func (b *Table3Builder) Table3() Table3 {
	c := &b.terms
	t := Table3{Terms: c.Sorted(), N: c.Total()}
	finance := map[string]bool{}
	for _, k := range mail.FinanceKeywords {
		finance[k] = true
	}
	financeExtra := map[string]bool{"wire transfer": true, "bank transfer": true,
		"transfer": true, "wire": true, "bank": true, "transferencia": true,
		"investment": true, "banco": true, "账单": true, "statement": true,
		"signature": true}
	cred := map[string]bool{}
	for _, k := range mail.CredentialKeywords {
		cred[k] = true
	}
	for _, e := range t.Terms {
		switch {
		case finance[e.Key] || financeExtra[e.Key]:
			t.FinanceShare += e.Share
		case cred[e.Key]:
			t.CredShare += e.Share
		}
		if e.Key == "transferencia" || e.Key == "banco" {
			t.HasSpanish = true
		}
		if e.Key == "账单" {
			t.HasChinese = true
		}
	}
	return t
}

// Assessment summarizes the value-assessment phase (§5.2, Dataset 7).
type Assessment struct {
	Cases           int
	MeanDuration    time.Duration
	MedianDuration  time.Duration
	ExploitedShare  float64
	FolderOpenRates map[event.Folder]float64
}

// ComputeAssessment reproduces the §5.2 measurements from the hijack
// lifecycle events and the per-session folder opens. It scans the log
// through the incremental builder so the batch and segmented paths share
// one implementation.
func ComputeAssessment(s *logstore.Store, sampleSize int) Assessment {
	b := NewAssessmentBuilder()
	s.Scan(b.Observe)
	return b.Assessment(sampleSize)
}

// d7Cases accumulates Dataset 7's population incrementally: distinct
// hijacked accounts in first-HijackStarted order, which is exactly the
// order D7HijackedAccounts builds before sampling — so a snapshot sample
// equals the batch extractor's sample.
type d7Cases struct {
	seen map[identity.AccountID]bool
	ids  []identity.AccountID
}

func (d *d7Cases) observe(e event.Event) {
	h, ok := e.(event.HijackStarted)
	if !ok || d.seen[h.Account] {
		return
	}
	if d.seen == nil {
		d.seen = map[identity.AccountID]bool{}
	}
	d.seen[h.Account] = true
	d.ids = append(d.ids, h.Account)
}

// merge appends other's cases that b has not seen, preserving other's
// order. Concatenating partitions in log order through the same dedup
// reproduces the sequential first-HijackStarted order exactly.
func (d *d7Cases) merge(other *d7Cases) {
	for _, id := range other.ids {
		if d.seen[id] {
			continue
		}
		if d.seen == nil {
			d.seen = map[identity.AccountID]bool{}
		}
		d.seen[id] = true
		d.ids = append(d.ids, id)
	}
}

// sample draws Dataset 7's deterministic sample as a membership set.
func (d *d7Cases) sample(n int) map[identity.AccountID]bool {
	inSet := map[identity.AccountID]bool{}
	for _, a := range datasets.SampleN(7, d.ids, n) {
		inSet[a] = true
	}
	return inSet
}

// AssessmentBuilder is the incremental form of ComputeAssessment. The
// Dataset 7 sample is only drawable once the full case population is
// known, so the builder buffers the hijack-scale event subsequences the
// analysis joins against — assessments and hijacker folder opens — and
// replays the batch aggregation at snapshot time. State grows with the
// attack, not with the log.
type AssessmentBuilder struct {
	cases    d7Cases
	assessed []event.HijackAssessed
	opens    []event.FolderOpened
}

// NewAssessmentBuilder returns an empty builder.
func NewAssessmentBuilder() *AssessmentBuilder { return &AssessmentBuilder{} }

// Observe folds one event into the buffered populations.
func (b *AssessmentBuilder) Observe(e event.Event) {
	b.cases.observe(e)
	switch ev := e.(type) {
	case event.HijackAssessed:
		b.assessed = append(b.assessed, ev)
	case event.FolderOpened:
		if ev.Actor == event.ActorHijacker {
			b.opens = append(b.opens, ev)
		}
	}
}

// Merge folds a later partition's buffered populations into b: the case
// dedup replays in order, the event buffers concatenate.
func (b *AssessmentBuilder) Merge(other *AssessmentBuilder) {
	b.cases.merge(&other.cases)
	b.assessed = append(b.assessed, other.assessed...)
	b.opens = append(b.opens, other.opens...)
}

// Assessment snapshots the §5.2 measurements observed so far.
func (b *AssessmentBuilder) Assessment(sampleSize int) Assessment {
	inSet := b.cases.sample(sampleSize)

	var durations stats.Sample
	exploited := 0
	cases := 0
	for _, a := range b.assessed {
		if !inSet[a.Account] {
			continue
		}
		cases++
		durations.AddDuration(a.Duration)
		if a.Exploited {
			exploited++
		}
	}
	// Folder-open rates across hijack cases.
	opened := map[event.Folder]map[identity.AccountID]bool{}
	for _, f := range b.opens {
		if !inSet[f.Account] {
			continue
		}
		if opened[f.Folder] == nil {
			opened[f.Folder] = map[identity.AccountID]bool{}
		}
		opened[f.Folder][f.Account] = true
	}
	rates := map[event.Folder]float64{}
	for folder, set := range opened {
		rates[folder] = stats.Ratio(float64(len(set)), float64(cases))
	}
	return Assessment{
		Cases:           cases,
		MeanDuration:    time.Duration(durations.Mean() * float64(time.Second)),
		MedianDuration:  time.Duration(durations.Median() * float64(time.Second)),
		ExploitedShare:  stats.Ratio(float64(exploited), float64(cases)),
		FolderOpenRates: rates,
	}
}

// Exploitation summarizes §5.3's mail-delta and message-mix measurements.
type Exploitation struct {
	// Deltas comparing the hijack day to the previous day, averaged over
	// exploited accounts.
	VolumeDelta     float64 // paper: +25%
	RecipientsDelta float64 // paper: +630%
	ReportsDelta    float64 // paper: +39%
	// Message mix among hijacker-sent mail (Dataset 8 review).
	ScamShare  float64 // paper: 65%
	PhishShare float64 // paper: 35%
	// AtMostFiveMessages is the share of victims who had ≤5 hijacker
	// messages sent from their account (paper: 65%).
	AtMostFiveMessages float64
	// SmallCustomizedShare is the share of hijack cases whose messages had
	// <10 recipients (paper: 6%, tending to be customized);
	// CustomizedGivenSmall is how often those were customized.
	SmallCustomizedShare float64
	CustomizedGivenSmall float64
	Cases                int
}

// ComputeExploitation reproduces §5.3 from Datasets 7 and 8. It scans the
// log through the incremental builder so the batch and segmented paths
// share one implementation.
func ComputeExploitation(s *logstore.Store, sampleSize int) Exploitation {
	b := NewExploitationBuilder()
	s.Scan(b.Observe)
	return b.Exploitation(sampleSize)
}

// ExploitationBuilder is the incremental form of ComputeExploitation. The
// §5.3 join needs the Dataset 7 sample — only drawable once the full case
// population is known — so the builder buffers the three event
// subsequences the join reads (hijack starts, account-originated mail,
// account-attributed spam reports) and replays the batch aggregation at
// snapshot time. The buffers grow with attack-plus-account mail volume,
// the same populations the batch path materialized via Select.
type ExploitationBuilder struct {
	starts  []event.HijackStarted
	msgs    []event.MessageSent
	reports []event.SpamReported
}

// NewExploitationBuilder returns an empty builder.
func NewExploitationBuilder() *ExploitationBuilder { return &ExploitationBuilder{} }

// Observe folds one event into the buffered populations, applying the
// account-attribution filter the batch loops applied.
func (b *ExploitationBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.HijackStarted:
		b.starts = append(b.starts, ev)
	case event.MessageSent:
		if ev.FromAcct != identity.None {
			b.msgs = append(b.msgs, ev)
		}
	case event.SpamReported:
		if ev.FromAcct != identity.None {
			b.reports = append(b.reports, ev)
		}
	}
}

// Merge folds a later partition's buffers into b by concatenation.
func (b *ExploitationBuilder) Merge(other *ExploitationBuilder) {
	b.starts = append(b.starts, other.starts...)
	b.msgs = append(b.msgs, other.msgs...)
	b.reports = append(b.reports, other.reports...)
}

// Exploitation snapshots §5.3 from the populations observed so far,
// drawing Dataset 7's deterministic sample over the distinct hijacked
// accounts in first-HijackStarted order — exactly D7HijackedAccounts'
// population.
func (b *ExploitationBuilder) Exploitation(sampleSize int) Exploitation {
	seen := map[identity.AccountID]bool{}
	var ids []identity.AccountID
	for _, h := range b.starts {
		if !seen[h.Account] {
			seen[h.Account] = true
			ids = append(ids, h.Account)
		}
	}
	accounts := datasets.SampleN(7, ids, sampleSize)
	inSet := map[identity.AccountID]bool{}
	for _, a := range accounts {
		inSet[a] = true
	}
	hijackDay := map[identity.AccountID]time.Time{}
	for _, h := range b.starts {
		if inSet[h.Account] {
			if _, ok := hijackDay[h.Account]; !ok {
				hijackDay[h.Account] = h.When().Truncate(24 * time.Hour)
			}
		}
	}

	type dayStats struct {
		msgs       int
		recipients map[identity.Address]bool
		reports    int
	}
	perDay := map[identity.AccountID]map[time.Time]*dayStats{}
	ensure := func(acct identity.AccountID, day time.Time) *dayStats {
		if perDay[acct] == nil {
			perDay[acct] = map[time.Time]*dayStats{}
		}
		ds := perDay[acct][day]
		if ds == nil {
			ds = &dayStats{recipients: map[identity.Address]bool{}}
			perDay[acct][day] = ds
		}
		return ds
	}

	var scam, phish, hijackerMsgs int
	msgsPerCase := map[identity.AccountID]int{}
	smallCase := map[identity.AccountID]bool{}
	customizedSmall := map[identity.AccountID]bool{}
	for _, m := range b.msgs {
		if !inSet[m.FromAcct] {
			continue
		}
		day := m.When().Truncate(24 * time.Hour)
		ds := ensure(m.FromAcct, day)
		ds.msgs++
		for _, r := range m.Recipients {
			ds.recipients[r] = true
		}
		if m.Actor == event.ActorHijacker {
			hijackerMsgs++
			msgsPerCase[m.FromAcct]++
			switch m.Class {
			case event.ClassScam:
				scam++
			case event.ClassPhish:
				phish++
			}
			if len(m.Recipients) < 10 {
				smallCase[m.FromAcct] = true
				if m.Customized {
					customizedSmall[m.FromAcct] = true
				}
			}
		}
	}
	for _, r := range b.reports {
		if !inSet[r.FromAcct] {
			continue
		}
		// Attribute the report to the day the message was sent; sending
		// day ≈ report day - reporting delay, so approximate with the
		// hijack-day bucket test below using the report time.
		day := r.When().Truncate(24 * time.Hour)
		ensure(r.FromAcct, day).reports++
	}

	var volBase, volHijack, rcptBase, rcptHijack, repBase, repHijack float64
	exploitedCases := 0
	for acct, day := range hijackDay {
		days := perDay[acct]
		if days == nil {
			continue
		}
		prev := day.Add(-24 * time.Hour)
		h, hasH := days[day]
		p, hasP := days[prev]
		if !hasH {
			continue
		}
		exploitedCases++
		volHijack += float64(h.msgs)
		rcptHijack += float64(len(h.recipients))
		repHijack += float64(h.reports)
		if hasP {
			volBase += float64(p.msgs)
			rcptBase += float64(len(p.recipients))
			repBase += float64(p.reports)
		}
	}
	// Baselines of zero (quiet accounts) are common in a small sim; use
	// per-account averages with a floor so the deltas stay meaningful.
	if volBase == 0 {
		volBase = float64(exploitedCases)
	}
	if rcptBase == 0 {
		rcptBase = float64(exploitedCases)
	}
	if repBase == 0 {
		repBase = 1
	}

	atMostFive := 0
	for _, a := range accounts {
		if n, ok := msgsPerCase[a]; ok && n <= 5 {
			atMostFive++
		}
	}
	casesWithMsgs := len(msgsPerCase)

	return Exploitation{
		VolumeDelta:          stats.PercentDelta(volBase, volHijack),
		RecipientsDelta:      stats.PercentDelta(rcptBase, rcptHijack),
		ReportsDelta:         stats.PercentDelta(repBase, repHijack),
		ScamShare:            stats.Ratio(float64(scam), float64(scam+phish)),
		PhishShare:           stats.Ratio(float64(phish), float64(scam+phish)),
		AtMostFiveMessages:   stats.Ratio(float64(atMostFive), float64(casesWithMsgs)),
		SmallCustomizedShare: stats.Ratio(float64(len(smallCase)), float64(casesWithMsgs)),
		CustomizedGivenSmall: stats.Ratio(float64(len(customizedSmall)), float64(len(smallCase))),
		Cases:                exploitedCases,
	}
}

// ContactRisk is §5.3's cohort experiment: contacts of victims vs random
// active users, hijack rate over the following window (paper: 36×).
type ContactRisk struct {
	ContactCohort int
	RandomCohort  int
	ContactRate   float64
	RandomRate    float64
	Multiplier    float64
}

// ComputeContactRisk reproduces the Dataset 9 experiment: sample the
// contacts of accounts hijacked *recently* (within recruit of the cutoff,
// as the paper sampled contacts of current hijack cases), sample random
// active users, and count hijacks over the following window.
//
// Finite-population correction: the random cohort excludes contacts of
// *any* pre-cutoff victim. At Google scale a random user sample has
// essentially zero overlap with hijackers' harvested contact pools; in a
// simulated population of tens of thousands the pools would otherwise
// contaminate the control cohort.
func ComputeContactRisk(s *logstore.Store, dir *identity.Directory, cutoff time.Time, recruit, window time.Duration, n int) ContactRisk {
	b := NewContactRiskBuilder()
	s.Scan(b.Observe)
	return b.ContactRisk(dir, cutoff, recruit, window, n)
}

// ContactRiskBuilder is the incremental form of ComputeContactRisk. The
// experiment needs the hijack timeline on both sides of the cutoff, so
// the builder buffers the HijackStarted subsequence (hijack-scale) and
// runs the cohort construction at snapshot time.
type ContactRiskBuilder struct {
	starts []event.HijackStarted
}

// NewContactRiskBuilder returns an empty builder.
func NewContactRiskBuilder() *ContactRiskBuilder { return &ContactRiskBuilder{} }

// Observe folds one event into the hijack timeline.
func (b *ContactRiskBuilder) Observe(e event.Event) {
	if h, ok := e.(event.HijackStarted); ok {
		b.starts = append(b.starts, h)
	}
}

// Merge folds a later partition's hijack timeline into b.
func (b *ContactRiskBuilder) Merge(other *ContactRiskBuilder) {
	b.starts = append(b.starts, other.starts...)
}

// ContactRisk snapshots the cohort experiment from the hijacks observed so
// far.
func (b *ContactRiskBuilder) ContactRisk(dir *identity.Directory, cutoff time.Time, recruit, window time.Duration, n int) ContactRisk {
	hijackedPre := map[identity.AccountID]bool{}
	recentVictims := map[identity.AccountID]bool{}
	for _, h := range b.starts {
		if !h.When().Before(cutoff) {
			continue
		}
		hijackedPre[h.Account] = true
		if cutoff.Sub(h.When()) <= recruit {
			recentVictims[h.Account] = true
		}
	}
	contactOfAny := map[identity.AccountID]bool{}
	contactOfRecent := map[identity.AccountID]bool{}
	for id := range hijackedPre {
		a := dir.Get(id)
		if a == nil {
			continue
		}
		for _, addr := range a.Contacts {
			cid := dir.Lookup(addr)
			if cid == identity.None || hijackedPre[cid] {
				continue
			}
			contactOfAny[cid] = true
			if recentVictims[id] {
				contactOfRecent[cid] = true
			}
		}
	}
	var contactList, randomList []identity.AccountID
	dir.All(func(a *identity.Account) {
		switch {
		case contactOfRecent[a.ID]:
			contactList = append(contactList, a.ID)
		case !contactOfAny[a.ID] && !hijackedPre[a.ID] && a.Active(cutoff):
			randomList = append(randomList, a.ID)
		}
	})
	contacts := randx.Sample(randx.New(0xD9).Fork("contacts"), contactList, n)
	random := randx.Sample(randx.New(0xD9).Fork("random"), randomList, n)

	hijackedAfter := map[identity.AccountID]bool{}
	for _, h := range b.starts {
		if h.When().After(cutoff) && h.When().Sub(cutoff) <= window {
			hijackedAfter[h.Account] = true
		}
	}
	count := func(cohort []identity.AccountID) int {
		n := 0
		for _, id := range cohort {
			if hijackedAfter[id] {
				n++
			}
		}
		return n
	}
	cr := ContactRisk{ContactCohort: len(contacts), RandomCohort: len(random)}
	cr.ContactRate = stats.Ratio(float64(count(contacts)), float64(len(contacts)))
	cr.RandomRate = stats.Ratio(float64(count(random)), float64(len(random)))
	// With zero hits in the random cohort the multiplier is unbounded;
	// report a conservative lower bound by flooring the random rate at
	// half an event over the cohort.
	denom := cr.RandomRate
	if denom == 0 && len(random) > 0 {
		denom = 0.5 / float64(len(random))
	}
	cr.Multiplier = stats.Ratio(cr.ContactRate, denom)
	return cr
}

// Retention summarizes §5.4's retention-tactic prevalence for one era.
type Retention struct {
	Cases                      int
	LockoutShare               float64
	FilterShare                float64 // paper 2012: 15%
	ReplyToShare               float64 // paper 2012: 26%
	MassDeleteGivenLockout     float64 // paper: 46% (2011) → 1.6% (2012)
	RecoveryChangeGivenLockout float64 // paper: 60% (2011) → 21% (2012)
	TwoSVLockouts              int
}

// ComputeRetention reproduces the §5.4 tactic measurements from a world's
// hijack cases. The case base is restricted to *exploited* hijacks: the
// paper's high-confidence samples were selected from recovery claims that
// "clearly indicate" manual hijacking — victims who noticed, i.e., whose
// accounts were actually worked, not assessed-and-abandoned.
func ComputeRetention(s *logstore.Store, sampleSize int) Retention {
	b := NewRetentionBuilder()
	s.Scan(b.Observe)
	return b.Retention(sampleSize)
}

// RetentionBuilder is the incremental form of ComputeRetention. Every
// measurement is a per-account membership or count, so the builder tracks
// hijacker tactics for all hijacked accounts as it goes and intersects
// with the Dataset 7 sample at snapshot time. State grows with hijacked
// accounts, not with the log.
type RetentionBuilder struct {
	cases     d7Cases
	exploited map[identity.AccountID]bool
	lockouts  map[identity.AccountID]bool
	filters   map[identity.AccountID]bool
	replyTos  map[identity.AccountID]bool
	deletes   map[identity.AccountID]bool
	recovs    map[identity.AccountID]bool
	twoSV     map[identity.AccountID]int
}

// NewRetentionBuilder returns an empty builder.
func NewRetentionBuilder() *RetentionBuilder {
	return &RetentionBuilder{
		exploited: map[identity.AccountID]bool{},
		lockouts:  map[identity.AccountID]bool{},
		filters:   map[identity.AccountID]bool{},
		replyTos:  map[identity.AccountID]bool{},
		deletes:   map[identity.AccountID]bool{},
		recovs:    map[identity.AccountID]bool{},
		twoSV:     map[identity.AccountID]int{},
	}
}

// Observe folds one event into the per-account tactic state.
func (b *RetentionBuilder) Observe(e event.Event) {
	b.cases.observe(e)
	switch ev := e.(type) {
	case event.HijackAssessed:
		if ev.Exploited {
			b.exploited[ev.Account] = true
		}
	case event.PasswordChanged:
		if ev.Actor == event.ActorHijacker {
			b.lockouts[ev.Account] = true
		}
	case event.FilterCreated:
		if ev.Actor == event.ActorHijacker {
			b.filters[ev.Account] = true
		}
	case event.ReplyToSet:
		if ev.Actor == event.ActorHijacker {
			b.replyTos[ev.Account] = true
		}
	case event.MassDeletion:
		if ev.Actor == event.ActorHijacker {
			b.deletes[ev.Account] = true
		}
	case event.RecoveryChanged:
		if ev.Actor == event.ActorHijacker {
			b.recovs[ev.Account] = true
		}
	case event.TwoSVEnrolled:
		if ev.Actor == event.ActorHijacker {
			b.twoSV[ev.Account]++
		}
	}
}

// Merge folds a later partition's tactic state into b: the case dedup
// replays in order, the per-account sets union, the 2SV counts add.
func (b *RetentionBuilder) Merge(other *RetentionBuilder) {
	b.cases.merge(&other.cases)
	for _, pair := range [][2]map[identity.AccountID]bool{
		{b.exploited, other.exploited}, {b.lockouts, other.lockouts},
		{b.filters, other.filters}, {b.replyTos, other.replyTos},
		{b.deletes, other.deletes}, {b.recovs, other.recovs},
	} {
		dst, src := pair[0], pair[1]
		for a := range src {
			dst[a] = true
		}
	}
	for a, n := range other.twoSV {
		b.twoSV[a] += n
	}
}

// Retention snapshots the §5.4 measurements observed so far.
func (b *RetentionBuilder) Retention(sampleSize int) Retention {
	sampled := b.cases.sample(sampleSize)
	inSet := map[identity.AccountID]bool{}
	cases := 0
	for _, a := range b.cases.ids {
		if sampled[a] && b.exploited[a] {
			inSet[a] = true
			cases++
		}
	}
	restrict := func(tactic map[identity.AccountID]bool) map[identity.AccountID]bool {
		out := map[identity.AccountID]bool{}
		for a := range tactic {
			if inSet[a] {
				out[a] = true
			}
		}
		return out
	}
	lockouts := restrict(b.lockouts)
	filters := restrict(b.filters)
	replyTos := restrict(b.replyTos)
	deletes := restrict(b.deletes)
	recChanges := restrict(b.recovs)

	deleteAndLock, recAndLock := 0, 0
	for a := range lockouts {
		if deletes[a] {
			deleteAndLock++
		}
		if recChanges[a] {
			recAndLock++
		}
	}
	twoSV := 0
	for a, n := range b.twoSV {
		if inSet[a] {
			twoSV += n
		}
	}
	return Retention{
		Cases:                      cases,
		LockoutShare:               stats.Ratio(float64(len(lockouts)), float64(cases)),
		FilterShare:                stats.Ratio(float64(len(filters)), float64(cases)),
		ReplyToShare:               stats.Ratio(float64(len(replyTos)), float64(cases)),
		MassDeleteGivenLockout:     stats.Ratio(float64(deleteAndLock), float64(len(lockouts))),
		RecoveryChangeGivenLockout: stats.Ratio(float64(recAndLock), float64(len(lockouts))),
		TwoSVLockouts:              twoSV,
	}
}
