package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Lifecycle is Figure 2's hijacking cycle as observed counts: credential
// acquisition → account exploitation → remediation. Each stage counts
// distinct accounts, so the funnel reads as survival through the cycle.
type Lifecycle struct {
	// Acquisition.
	LuresDelivered      int
	PageVisits          int
	CredentialsCaptured int // distinct provider accounts phished
	// Exploitation.
	AccountsAttempted int // crews tried to log in
	AccountsEntered   int // hijacker login succeeded
	AccountsExploited int
	AccountsLockedOut int
	// Remediation.
	ClaimsFiled       int
	AccountsRecovered int
}

// Rates returns the per-stage survival fractions (each stage over the
// previous), in funnel order.
func (l Lifecycle) Rates() []stats.Entry {
	type stage struct {
		name string
		num  int
		den  int
	}
	stages := []stage{
		{"visit|lure", l.PageVisits, l.LuresDelivered},
		{"credential|visit", l.CredentialsCaptured, l.PageVisits},
		{"attempt|credential", l.AccountsAttempted, l.CredentialsCaptured},
		{"entry|attempt", l.AccountsEntered, l.AccountsAttempted},
		{"exploit|entry", l.AccountsExploited, l.AccountsEntered},
		{"lockout|exploit", l.AccountsLockedOut, l.AccountsExploited},
		{"claim|entry", l.ClaimsFiled, l.AccountsEntered},
		{"recovered|claim", l.AccountsRecovered, l.ClaimsFiled},
	}
	out := make([]stats.Entry, 0, len(stages))
	for _, s := range stages {
		out = append(out, stats.Entry{
			Key:   s.name,
			Count: s.num,
			Share: stats.Ratio(float64(s.num), float64(s.den)),
		})
	}
	return out
}

// ComputeLifecycle tallies Figure 2's cycle from the log.
func ComputeLifecycle(s *logstore.Store) Lifecycle {
	var l Lifecycle
	creds := map[identity.AccountID]bool{}
	attempted := map[identity.AccountID]bool{}
	entered := map[identity.AccountID]bool{}
	exploited := map[identity.AccountID]bool{}
	locked := map[identity.AccountID]bool{}
	claimed := map[identity.AccountID]bool{}
	recovered := map[identity.AccountID]bool{}

	s.Scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.LureSent:
			l.LuresDelivered++
		case event.PageHit:
			if ev.Method == "GET" {
				l.PageVisits++
			}
		case event.CredentialPhished:
			creds[ev.Account] = true
		case event.Login:
			if ev.Actor == event.ActorHijacker {
				attempted[ev.Account] = true
				if ev.Outcome == event.LoginSuccess {
					entered[ev.Account] = true
				}
			}
		case event.HijackAssessed:
			if ev.Exploited {
				exploited[ev.Account] = true
			}
		case event.HijackEnded:
			if ev.LockedOut {
				locked[ev.Account] = true
			}
		case event.ClaimFiled:
			claimed[ev.Account] = true
		case event.ClaimResolved:
			if ev.Success {
				recovered[ev.Account] = true
			}
		}
	})
	l.CredentialsCaptured = len(creds)
	l.AccountsAttempted = len(attempted)
	l.AccountsEntered = len(entered)
	l.AccountsExploited = len(exploited)
	l.AccountsLockedOut = len(locked)
	l.ClaimsFiled = len(claimed)
	l.AccountsRecovered = len(recovered)
	return l
}
