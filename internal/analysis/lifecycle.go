package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Lifecycle is Figure 2's hijacking cycle as observed counts: credential
// acquisition → account exploitation → remediation. Each stage counts
// distinct accounts, so the funnel reads as survival through the cycle.
type Lifecycle struct {
	// Acquisition.
	LuresDelivered      int
	PageVisits          int
	CredentialsCaptured int // distinct provider accounts phished
	// Exploitation.
	AccountsAttempted int // crews tried to log in
	AccountsEntered   int // hijacker login succeeded
	AccountsExploited int
	AccountsLockedOut int
	// Remediation.
	ClaimsFiled       int
	AccountsRecovered int
}

// Rates returns the per-stage survival fractions (each stage over the
// previous), in funnel order.
func (l Lifecycle) Rates() []stats.Entry {
	type stage struct {
		name string
		num  int
		den  int
	}
	stages := []stage{
		{"visit|lure", l.PageVisits, l.LuresDelivered},
		{"credential|visit", l.CredentialsCaptured, l.PageVisits},
		{"attempt|credential", l.AccountsAttempted, l.CredentialsCaptured},
		{"entry|attempt", l.AccountsEntered, l.AccountsAttempted},
		{"exploit|entry", l.AccountsExploited, l.AccountsEntered},
		{"lockout|exploit", l.AccountsLockedOut, l.AccountsExploited},
		{"claim|entry", l.ClaimsFiled, l.AccountsEntered},
		{"recovered|claim", l.AccountsRecovered, l.ClaimsFiled},
	}
	out := make([]stats.Entry, 0, len(stages))
	for _, s := range stages {
		out = append(out, stats.Entry{
			Key:   s.name,
			Count: s.num,
			Share: stats.Ratio(float64(s.num), float64(s.den)),
		})
	}
	return out
}

// ComputeLifecycle tallies Figure 2's cycle from the log.
func ComputeLifecycle(s *logstore.Store) Lifecycle {
	b := NewLifecycleBuilder()
	s.Scan(b.Observe)
	return b.Lifecycle()
}

// LifecycleBuilder is the incremental form of ComputeLifecycle: it consumes
// events one at a time and can report the funnel at any instant. The batch
// function is a thin wrapper over it, so the streaming and batch paths
// cannot drift. Like every builder in this package it is single-goroutine;
// the stream.Bus serializes concurrent feeds.
type LifecycleBuilder struct {
	lures, visits             int
	creds, attempted, entered map[identity.AccountID]bool
	exploited, locked         map[identity.AccountID]bool
	claimed, recovered        map[identity.AccountID]bool
}

// NewLifecycleBuilder returns an empty builder.
func NewLifecycleBuilder() *LifecycleBuilder {
	return &LifecycleBuilder{
		creds:     map[identity.AccountID]bool{},
		attempted: map[identity.AccountID]bool{},
		entered:   map[identity.AccountID]bool{},
		exploited: map[identity.AccountID]bool{},
		locked:    map[identity.AccountID]bool{},
		claimed:   map[identity.AccountID]bool{},
		recovered: map[identity.AccountID]bool{},
	}
}

// Observe folds one event into the funnel.
func (b *LifecycleBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.LureSent:
		b.lures++
	case event.PageHit:
		if ev.Method == "GET" {
			b.visits++
		}
	case event.CredentialPhished:
		b.creds[ev.Account] = true
	case event.Login:
		if ev.Actor == event.ActorHijacker {
			b.attempted[ev.Account] = true
			if ev.Outcome == event.LoginSuccess {
				b.entered[ev.Account] = true
			}
		}
	case event.HijackAssessed:
		if ev.Exploited {
			b.exploited[ev.Account] = true
		}
	case event.HijackEnded:
		if ev.LockedOut {
			b.locked[ev.Account] = true
		}
	case event.ClaimFiled:
		b.claimed[ev.Account] = true
	case event.ClaimResolved:
		if ev.Success {
			b.recovered[ev.Account] = true
		}
	}
}

// Merge folds a later partition's funnel into b: the lure/visit counts
// add, the per-account stage sets union.
func (b *LifecycleBuilder) Merge(other *LifecycleBuilder) {
	b.lures += other.lures
	b.visits += other.visits
	for _, pair := range [][2]map[identity.AccountID]bool{
		{b.creds, other.creds}, {b.attempted, other.attempted},
		{b.entered, other.entered}, {b.exploited, other.exploited},
		{b.locked, other.locked}, {b.claimed, other.claimed},
		{b.recovered, other.recovered},
	} {
		dst, src := pair[0], pair[1]
		for a := range src {
			dst[a] = true
		}
	}
}

// Lifecycle snapshots the funnel observed so far.
func (b *LifecycleBuilder) Lifecycle() Lifecycle {
	return Lifecycle{
		LuresDelivered:      b.lures,
		PageVisits:          b.visits,
		CredentialsCaptured: len(b.creds),
		AccountsAttempted:   len(b.attempted),
		AccountsEntered:     len(b.entered),
		AccountsExploited:   len(b.exploited),
		AccountsLockedOut:   len(b.locked),
		ClaimsFiled:         len(b.claimed),
		AccountsRecovered:   len(b.recovered),
	}
}
