package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Monetization is the scam funnel the whole hijack exists for: pleas sent
// from hijacked accounts → recipients who engage → replies that actually
// reach the criminal (via doppelganger Reply-To, forwarding filter, or
// retained access) → completed wire transfers. §5.4 explains why account
// retention matters to criminals: "even the shortest process may take one
// or two days"; the funnel quantifies how each defense cuts revenue.
type Monetization struct {
	PleaRecipients int // scam-message recipient slots
	Replies        int
	ReachedCrew    int
	Payments       int
	Revenue        float64 // USD
	// ReplyRoutes breaks down how replies reached (or failed to reach)
	// the criminal.
	ReplyRoutes []stats.Entry
	// RevenuePerHijack normalizes by exploited-hijack count.
	RevenuePerHijack float64
	MeanPayment      float64
}

// ComputeMonetization tallies the scam funnel from the log. It scans the
// log through the incremental builder so the batch and segmented paths
// share one implementation.
func ComputeMonetization(s *logstore.Store) Monetization {
	b := NewMonetizationBuilder()
	s.Scan(b.Observe)
	return b.Monetization()
}

// MonetizationBuilder is the incremental form of ComputeMonetization:
// funnel counters, the payment distribution, and the exploited-victim set.
// Revenue is summed at snapshot time as a left fold over the payment
// sample, which keeps payments in log order — so the floating-point
// revenue total is bit-identical whether the builder observed the whole
// log or was merged from per-segment shards.
type MonetizationBuilder struct {
	out       Monetization
	routes    stats.Counter
	payments  stats.Sample
	exploited map[int32]bool
}

// NewMonetizationBuilder returns an empty builder.
func NewMonetizationBuilder() *MonetizationBuilder {
	return &MonetizationBuilder{exploited: map[int32]bool{}}
}

// Observe folds one event into the funnel.
func (b *MonetizationBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.MessageSent:
		if ev.Actor == event.ActorHijacker && ev.Class == event.ClassScam {
			b.out.PleaRecipients += len(ev.Recipients)
		}
	case event.ScamReply:
		b.out.Replies++
		b.routes.Add(ev.Via)
		if ev.ReachedHijacker {
			b.out.ReachedCrew++
		}
	case event.MoneyWired:
		b.out.Payments++
		b.payments.Add(ev.Amount)
	case event.HijackAssessed:
		if ev.Exploited {
			b.exploited[int32(ev.Account)] = true
		}
	}
}

// Merge folds a later partition's funnel into b: counters add, routes and
// payments merge in partition order, the exploited set unions.
func (b *MonetizationBuilder) Merge(other *MonetizationBuilder) {
	b.out.PleaRecipients += other.out.PleaRecipients
	b.out.Replies += other.out.Replies
	b.out.ReachedCrew += other.out.ReachedCrew
	b.out.Payments += other.out.Payments
	b.routes.Merge(&other.routes)
	b.payments.Merge(&other.payments)
	for a := range other.exploited {
		b.exploited[a] = true
	}
}

// Monetization snapshots the funnel observed so far.
func (b *MonetizationBuilder) Monetization() Monetization {
	out := b.out
	out.Revenue = b.payments.Sum()
	out.ReplyRoutes = b.routes.Sorted()
	out.MeanPayment = b.payments.Mean()
	out.RevenuePerHijack = 0
	if len(b.exploited) > 0 {
		out.RevenuePerHijack = out.Revenue / float64(len(b.exploited))
	}
	return out
}

// RevenueByCrew splits scam revenue per hijacker group.
func RevenueByCrew(s *logstore.Store) []stats.Entry {
	var c stats.Counter
	for _, p := range logstore.Select[event.MoneyWired](s) {
		crew := p.Crew
		if crew == "" {
			crew = "(unattributed)"
		}
		c.AddN(crew, int(p.Amount))
	}
	return c.Sorted()
}
