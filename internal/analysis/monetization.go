package analysis

import (
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Monetization is the scam funnel the whole hijack exists for: pleas sent
// from hijacked accounts → recipients who engage → replies that actually
// reach the criminal (via doppelganger Reply-To, forwarding filter, or
// retained access) → completed wire transfers. §5.4 explains why account
// retention matters to criminals: "even the shortest process may take one
// or two days"; the funnel quantifies how each defense cuts revenue.
type Monetization struct {
	PleaRecipients int // scam-message recipient slots
	Replies        int
	ReachedCrew    int
	Payments       int
	Revenue        float64 // USD
	// ReplyRoutes breaks down how replies reached (or failed to reach)
	// the criminal.
	ReplyRoutes []stats.Entry
	// RevenuePerHijack normalizes by exploited-hijack count.
	RevenuePerHijack float64
	MeanPayment      float64
}

// ComputeMonetization tallies the scam funnel from the log.
func ComputeMonetization(s *logstore.Store) Monetization {
	var out Monetization
	var routes stats.Counter
	for _, m := range logstore.Select[event.MessageSent](s) {
		if m.Actor == event.ActorHijacker && m.Class == event.ClassScam {
			out.PleaRecipients += len(m.Recipients)
		}
	}
	for _, r := range logstore.Select[event.ScamReply](s) {
		out.Replies++
		routes.Add(r.Via)
		if r.ReachedHijacker {
			out.ReachedCrew++
		}
	}
	var payments stats.Sample
	for _, p := range logstore.Select[event.MoneyWired](s) {
		out.Payments++
		out.Revenue += p.Amount
		payments.Add(p.Amount)
	}
	out.ReplyRoutes = routes.Sorted()
	out.MeanPayment = payments.Mean()

	exploited := map[int32]bool{}
	for _, h := range logstore.Select[event.HijackAssessed](s) {
		if h.Exploited {
			exploited[int32(h.Account)] = true
		}
	}
	if len(exploited) > 0 {
		out.RevenuePerHijack = out.Revenue / float64(len(exploited))
	}
	return out
}

// RevenueByCrew splits scam revenue per hijacker group.
func RevenueByCrew(s *logstore.Store) []stats.Entry {
	var c stats.Counter
	for _, p := range logstore.Select[event.MoneyWired](s) {
		crew := p.Crew
		if crew == "" {
			crew = "(unattributed)"
		}
		c.AddN(crew, int(p.Amount))
	}
	return c.Sorted()
}
