// Package analysis computes every table and figure of the paper from a
// world's event log, via the datasets of Table 1. Each function returns a
// typed result that the report package renders and the benchmark harness
// asserts shape properties on.
package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Table2 is the phishing-target breakdown (Table 2): what account types
// phishing emails and phishing pages solicit.
type Table2 struct {
	EmailShares map[event.TargetKind]float64
	PageShares  map[event.TargetKind]float64
	EmailN      int
	PageN       int
}

// ComputeTable2 reproduces Table 2 from Datasets 1 and 2. It scans the
// log through the incremental builder so the batch and segmented paths
// share one implementation.
func ComputeTable2(s *logstore.Store, sampleSize int) Table2 {
	b := NewPhishSampleBuilder()
	s.Scan(b.Observe)
	return b.Table2(sampleSize)
}

// URLShare returns the fraction of curated phishing emails carrying a URL
// (§4.1: 62 of 100).
func URLShare(s *logstore.Store, sampleSize int) float64 {
	b := NewPhishSampleBuilder()
	s.Scan(b.Observe)
	return b.URLShare(sampleSize)
}

// PhishSampleBuilder accumulates Datasets 1 and 2 incrementally: the
// curated reported-lure stream and the detected-page join. Lures and
// detections are buffered raw and resolved against the page maps at
// snapshot time; a page is always created before its lures, hits, and
// detection (the simulation emits them causally), so the deferred join
// equals the batch extractors' two-pass joins — and, because every buffer
// is order-preserving and the maps are keyed by page, per-segment shards
// merged in log order reproduce the single pass exactly.
type PhishSampleBuilder struct {
	targeted   map[event.PageID]bool
	created    map[event.PageID]event.PageCreated
	lures      []event.LureSent // reported lures, targeting unresolved
	detections []event.PageID   // detection order
}

// NewPhishSampleBuilder returns an empty builder.
func NewPhishSampleBuilder() *PhishSampleBuilder {
	return &PhishSampleBuilder{
		targeted: map[event.PageID]bool{},
		created:  map[event.PageID]event.PageCreated{},
	}
}

// Observe folds one event into the Dataset 1/2 populations.
func (b *PhishSampleBuilder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.PageCreated:
		if ev.Targeted {
			b.targeted[ev.Page] = true
		} else {
			b.created[ev.Page] = ev
		}
	case event.LureSent:
		if ev.Reported {
			b.lures = append(b.lures, ev)
		}
	case event.PageDetected:
		b.detections = append(b.detections, ev.Page)
	}
}

// Merge folds a later partition's populations into b: page maps union
// (page IDs are unique, so there are no collisions to order), buffers
// concatenate.
func (b *PhishSampleBuilder) Merge(other *PhishSampleBuilder) {
	for p := range other.targeted {
		b.targeted[p] = true
	}
	for p, c := range other.created {
		b.created[p] = c
	}
	b.lures = append(b.lures, other.lures...)
	b.detections = append(b.detections, other.detections...)
}

// resolve runs the deferred joins: reported lures excluding
// contact-targeted pages, and detections of tracked (untargeted) pages.
func (b *PhishSampleBuilder) resolve() (reported []event.LureSent, detected []event.PageCreated) {
	for _, l := range b.lures {
		if !b.targeted[l.Page] {
			reported = append(reported, l)
		}
	}
	for _, p := range b.detections {
		if c, ok := b.created[p]; ok {
			detected = append(detected, c)
		}
	}
	return reported, detected
}

// Table2 snapshots Table 2 from the populations observed so far, drawing
// the same deterministic samples the batch extractors draw.
func (b *PhishSampleBuilder) Table2(sampleSize int) Table2 {
	reported, detected := b.resolve()
	emails := datasets.SampleN(1, reported, sampleSize)
	pages := datasets.SampleN(2, detected, sampleSize)

	var ec, pc stats.Counter
	for _, e := range emails {
		ec.Add(string(e.Target))
	}
	for _, p := range pages {
		pc.Add(string(p.Target))
	}
	t := Table2{
		EmailShares: make(map[event.TargetKind]float64),
		PageShares:  make(map[event.TargetKind]float64),
		EmailN:      len(emails),
		PageN:       len(pages),
	}
	for _, k := range []event.TargetKind{event.TargetMail, event.TargetBank,
		event.TargetAppStore, event.TargetSocial, event.TargetOther} {
		t.EmailShares[k] = ec.Share(string(k))
		t.PageShares[k] = pc.Share(string(k))
	}
	return t
}

// URLShare snapshots the Dataset 1 URL share observed so far.
func (b *PhishSampleBuilder) URLShare(sampleSize int) float64 {
	reported, _ := b.resolve()
	emails := datasets.SampleN(1, reported, sampleSize)
	withURL := 0
	for _, e := range emails {
		if e.HasURL {
			withURL++
		}
	}
	return stats.Ratio(float64(withURL), float64(len(emails)))
}

// Figure3 is the HTTP-referrer breakdown of phishing-page traffic.
type Figure3 struct {
	BlankShare float64
	NonBlank   []stats.Entry
	TotalGETs  int
}

// ComputeFigure3 reproduces Figure 3 from Dataset 3's HTTP logs.
func ComputeFigure3(s *logstore.Store, samplePages int) Figure3 {
	b := NewFigure3Builder()
	s.Scan(b.Observe)
	return b.Figure3(samplePages)
}

// d3Pages tracks Dataset 3's join incrementally: one aggregate of type T
// per Forms-created page, takedown eligibility, and the dataset's
// deterministic page sample. The per-page aggregates replace Dataset 3's
// materialized HTTP logs, so builder state grows with pages, not hits —
// the shape that lets these figures run as a merge of per-segment maps.
type d3Pages[T any] struct {
	pages map[event.PageID]*d3Page[T]
}

type d3Page[T any] struct {
	id        event.PageID
	takenDown bool
	agg       T
}

func newD3Pages[T any]() *d3Pages[T] {
	return &d3Pages[T]{pages: map[event.PageID]*d3Page[T]{}}
}

// observe routes page lifecycle events. For a PageHit on a tracked page it
// returns the page's aggregate for the caller to update; ok is false
// otherwise.
func (d *d3Pages[T]) observe(e event.Event) (agg *d3Page[T], hit event.PageHit, ok bool) {
	switch ev := e.(type) {
	case event.PageCreated:
		if ev.OnForms {
			d.pages[ev.Page] = &d3Page[T]{id: ev.Page}
		}
	case event.PageTakedown:
		if p, tracked := d.pages[ev.Page]; tracked {
			p.takenDown = true
		}
	case event.PageHit:
		if p, tracked := d.pages[ev.Page]; tracked {
			return p, ev, true
		}
	}
	return nil, event.PageHit{}, false
}

// sample draws Dataset 3's deterministic sample over the eligible
// (taken-down) pages observed so far, in the same id order D3FormsPages
// sorts into.
func (d *d3Pages[T]) sample(n int) []*d3Page[T] {
	var eligible []*d3Page[T]
	for _, p := range d.pages {
		if p.takenDown {
			eligible = append(eligible, p)
		}
	}
	for i := 1; i < len(eligible); i++ {
		for j := i; j > 0 && eligible[j].id < eligible[j-1].id; j-- {
			eligible[j], eligible[j-1] = eligible[j-1], eligible[j]
		}
	}
	return datasets.SampleN(3, eligible, n)
}

// fig3Agg is one page's referrer profile.
type fig3Agg struct {
	blank, total int
	nonBlank     stats.Counter
}

// Figure3Builder is the incremental form of ComputeFigure3.
type Figure3Builder struct {
	pages *d3Pages[fig3Agg]
}

// NewFigure3Builder returns an empty builder.
func NewFigure3Builder() *Figure3Builder {
	return &Figure3Builder{pages: newD3Pages[fig3Agg]()}
}

// Observe folds one event into the per-page referrer counts.
func (b *Figure3Builder) Observe(e event.Event) {
	p, h, ok := b.pages.observe(e)
	if !ok || h.Method != "GET" {
		return
	}
	p.agg.total++
	if h.Referrer == "" {
		p.agg.blank++
	} else {
		p.agg.nonBlank.Add(h.Referrer)
	}
}

// Figure3 snapshots the figure over the sampled pages observed so far.
func (b *Figure3Builder) Figure3(samplePages int) Figure3 {
	var blank, total int
	var nonBlank stats.Counter
	for _, p := range b.pages.sample(samplePages) {
		blank += p.agg.blank
		total += p.agg.total
		nonBlank.Merge(&p.agg.nonBlank)
	}
	return Figure3{
		BlankShare: stats.Ratio(float64(blank), float64(total)),
		NonBlank:   nonBlank.Sorted(),
		TotalGETs:  total,
	}
}

// Figure4 is the TLD breakdown of phished email addresses.
type Figure4 struct {
	Shares   []stats.Entry
	EduShare float64
	N        int
}

// ComputeFigure4 reproduces Figure 4 from Dataset 3's POST payloads.
func ComputeFigure4(s *logstore.Store, samplePages int) Figure4 {
	b := NewFigure4Builder()
	s.Scan(b.Observe)
	return b.Figure4(samplePages)
}

// Figure4Builder is the incremental form of ComputeFigure4: a TLD counter
// per page, merged over the page sample at snapshot time.
type Figure4Builder struct {
	pages *d3Pages[stats.Counter]
}

// NewFigure4Builder returns an empty builder.
func NewFigure4Builder() *Figure4Builder {
	return &Figure4Builder{pages: newD3Pages[stats.Counter]()}
}

// Observe folds one event into the per-page TLD counts.
func (b *Figure4Builder) Observe(e event.Event) {
	p, h, ok := b.pages.observe(e)
	if !ok || h.Method != "POST" || h.Victim == "" {
		return
	}
	if tld := identity.TLD(h.Victim); tld != "" {
		p.agg.Add(tld)
	}
}

// Figure4 snapshots the figure over the sampled pages observed so far.
func (b *Figure4Builder) Figure4(samplePages int) Figure4 {
	var c stats.Counter
	for _, p := range b.pages.sample(samplePages) {
		c.Merge(&p.agg)
	}
	return Figure4{Shares: c.Sorted(), EduShare: c.Share("edu"), N: c.Total()}
}

// Figure5 is the per-page submission success rate (POST/GET).
type Figure5 struct {
	PerPage []float64
	Mean    float64
	Min     float64
	Max     float64
}

// ComputeFigure5 reproduces Figure 5. Pages with fewer than minViews GET
// requests are skipped (a rate over three views is noise).
func ComputeFigure5(s *logstore.Store, samplePages, minViews int) Figure5 {
	b := NewFigure5Builder()
	s.Scan(b.Observe)
	return b.Figure5(samplePages, minViews)
}

// fig5Agg is one page's request-method tally.
type fig5Agg struct {
	gets, posts int
}

// Figure5Builder is the incremental form of ComputeFigure5.
type Figure5Builder struct {
	pages *d3Pages[fig5Agg]
}

// NewFigure5Builder returns an empty builder.
func NewFigure5Builder() *Figure5Builder {
	return &Figure5Builder{pages: newD3Pages[fig5Agg]()}
}

// Observe folds one event into the per-page GET/POST counts.
func (b *Figure5Builder) Observe(e event.Event) {
	p, h, ok := b.pages.observe(e)
	if !ok {
		return
	}
	switch h.Method {
	case "GET":
		p.agg.gets++
	case "POST":
		p.agg.posts++
	}
}

// Figure5 snapshots the figure over the sampled pages observed so far.
func (b *Figure5Builder) Figure5(samplePages, minViews int) Figure5 {
	var rates stats.Sample
	var out Figure5
	for _, p := range b.pages.sample(samplePages) {
		if p.agg.gets < minViews {
			continue
		}
		r := float64(p.agg.posts) / float64(p.agg.gets)
		out.PerPage = append(out.PerPage, r)
		rates.Add(r)
	}
	out.Mean = rates.Mean()
	out.Min = rates.Min()
	out.Max = rates.Max()
	return out
}

// Figure6 is the credential-submission time profile: the average hourly
// POST volume per standard page (a decay from the blast), and the
// high-volume outlier's own series with its quiet testing period.
type Figure6 struct {
	// StandardAvg is the mean POSTs per page per hour since first visit.
	StandardAvg []float64
	// Outlier is the hourly POST series of the single busiest page.
	Outlier []int
	// OutlierQuietHours is how long the busiest page sat nearly idle
	// before its volume step.
	OutlierQuietHours int
	Pages             int
}

// DefaultFigure6SamplePages is the registry's Dataset 3 sample size for
// Figure 6, shared with the streaming suite so both paths draw the same
// page sample.
const DefaultFigure6SamplePages = 100

// ComputeFigure6 reproduces Figure 6 from Dataset 3. It scans the log
// through the incremental builder so the batch and streaming paths share
// one implementation.
func ComputeFigure6(s *logstore.Store, samplePages int) Figure6 {
	b := NewFigure6Builder()
	s.Scan(b.Observe)
	return b.Figure6(samplePages)
}

// fig6Agg is one Forms page's live aggregate: the hourly POST series
// anchored at its first hit, and the count of POSTs landing more than 12
// hours after that first hit (the outlier signal).
type fig6Agg struct {
	first  time.Time
	series *stats.TimeSeries
	late   int
}

// Figure6Builder is the incremental form of ComputeFigure6. It mirrors
// Dataset 3's join (Forms pages that were taken down, with their HTTP
// logs) as per-page aggregates, so state grows with pages, not hits.
// Events must arrive in time order — the first hit anchors each page's
// hourly series — which both the sealed log and the stream bus guarantee.
type Figure6Builder struct {
	pages *d3Pages[fig6Agg]
}

// NewFigure6Builder returns an empty builder.
func NewFigure6Builder() *Figure6Builder {
	return &Figure6Builder{pages: newD3Pages[fig6Agg]()}
}

// Observe folds one event into the per-page aggregates.
func (b *Figure6Builder) Observe(e event.Event) {
	p, h, ok := b.pages.observe(e)
	if !ok {
		return
	}
	if p.agg.series == nil {
		p.agg.first = h.When()
		p.agg.series = stats.NewTimeSeries(p.agg.first, time.Hour)
	}
	if h.Method == "POST" {
		p.agg.series.Observe(h.When())
		if h.When().Sub(p.agg.first) > 12*time.Hour {
			p.agg.late++
		}
	}
}

// Figure6 snapshots the figure from the pages observed so far, drawing
// Dataset 3's deterministic sample over the eligible (taken-down) pages.
func (b *Figure6Builder) Figure6(samplePages int) Figure6 {
	pages := b.pages.sample(samplePages)

	var fig Figure6

	// Identify the outlier: the page with the most submissions arriving
	// more than 12 hours after its first visit. Standard mass-blast pages
	// decay within hours; only the step-shaped outlier keeps sustained
	// volume (Figure 6, bottom).
	busiest, busiestLate := -1, 0
	for i, p := range pages {
		if p.agg.series == nil {
			continue
		}
		if p.agg.late > busiestLate {
			busiest, busiestLate = i, p.agg.late
		}
	}

	var sums []float64
	counts := 0
	for i, p := range pages {
		if p.agg.series == nil {
			continue
		}
		if i == busiest {
			fig.Outlier = p.agg.series.Counts()
			fig.OutlierQuietHours = quietHours(p.agg.series.Counts())
			continue
		}
		counts++
		for j, c := range p.agg.series.Counts() {
			for len(sums) <= j {
				sums = append(sums, 0)
			}
			sums[j] += float64(c)
		}
	}
	if counts > 0 {
		for _, sum := range sums {
			fig.StandardAvg = append(fig.StandardAvg, sum/float64(counts))
		}
	}
	fig.Pages = len(pages)
	return fig
}

// quietHours counts leading buckets before the series reaches 20% of its
// peak — the outlier's pre-launch testing period.
func quietHours(counts []int) int {
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return len(counts)
	}
	threshold := peak / 5
	for i, c := range counts {
		if c > threshold {
			return i
		}
	}
	return len(counts)
}

// SafeBrowsingWeekly returns detected phishing pages per week (§3 reports
// 16,000–25,000/week at Google scale; the sim reports its own scale).
func SafeBrowsingWeekly(s *logstore.Store, start time.Time) []int {
	series := stats.NewTimeSeries(start, 7*24*time.Hour)
	for _, d := range logstore.Select[event.PageDetected](s) {
		series.Observe(d.When())
	}
	return series.Counts()
}
