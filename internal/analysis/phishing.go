// Package analysis computes every table and figure of the paper from a
// world's event log, via the datasets of Table 1. Each function returns a
// typed result that the report package renders and the benchmark harness
// asserts shape properties on.
package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Table2 is the phishing-target breakdown (Table 2): what account types
// phishing emails and phishing pages solicit.
type Table2 struct {
	EmailShares map[event.TargetKind]float64
	PageShares  map[event.TargetKind]float64
	EmailN      int
	PageN       int
}

// ComputeTable2 reproduces Table 2 from Datasets 1 and 2.
func ComputeTable2(s *logstore.Store, sampleSize int) Table2 {
	emails := datasets.D1PhishingEmails(s, sampleSize)
	pages := datasets.D2PhishingPages(s, sampleSize)

	var ec, pc stats.Counter
	for _, e := range emails {
		ec.Add(string(e.Target))
	}
	for _, p := range pages {
		pc.Add(string(p.Target))
	}
	t := Table2{
		EmailShares: make(map[event.TargetKind]float64),
		PageShares:  make(map[event.TargetKind]float64),
		EmailN:      len(emails),
		PageN:       len(pages),
	}
	for _, k := range []event.TargetKind{event.TargetMail, event.TargetBank,
		event.TargetAppStore, event.TargetSocial, event.TargetOther} {
		t.EmailShares[k] = ec.Share(string(k))
		t.PageShares[k] = pc.Share(string(k))
	}
	return t
}

// URLShare returns the fraction of curated phishing emails carrying a URL
// (§4.1: 62 of 100).
func URLShare(s *logstore.Store, sampleSize int) float64 {
	emails := datasets.D1PhishingEmails(s, sampleSize)
	withURL := 0
	for _, e := range emails {
		if e.HasURL {
			withURL++
		}
	}
	return stats.Ratio(float64(withURL), float64(len(emails)))
}

// Figure3 is the HTTP-referrer breakdown of phishing-page traffic.
type Figure3 struct {
	BlankShare float64
	NonBlank   []stats.Entry
	TotalGETs  int
}

// ComputeFigure3 reproduces Figure 3 from Dataset 3's HTTP logs.
func ComputeFigure3(s *logstore.Store, samplePages int) Figure3 {
	pages := datasets.D3FormsPages(s, samplePages)
	var blank, total int
	var nonBlank stats.Counter
	for _, p := range pages {
		for _, h := range p.Hits {
			if h.Method != "GET" {
				continue
			}
			total++
			if h.Referrer == "" {
				blank++
			} else {
				nonBlank.Add(h.Referrer)
			}
		}
	}
	return Figure3{
		BlankShare: stats.Ratio(float64(blank), float64(total)),
		NonBlank:   nonBlank.Sorted(),
		TotalGETs:  total,
	}
}

// Figure4 is the TLD breakdown of phished email addresses.
type Figure4 struct {
	Shares   []stats.Entry
	EduShare float64
	N        int
}

// ComputeFigure4 reproduces Figure 4 from Dataset 3's POST payloads.
func ComputeFigure4(s *logstore.Store, samplePages int) Figure4 {
	pages := datasets.D3FormsPages(s, samplePages)
	var c stats.Counter
	for _, p := range pages {
		for _, h := range p.Hits {
			if h.Method != "POST" || h.Victim == "" {
				continue
			}
			if tld := identity.TLD(h.Victim); tld != "" {
				c.Add(tld)
			}
		}
	}
	return Figure4{Shares: c.Sorted(), EduShare: c.Share("edu"), N: c.Total()}
}

// Figure5 is the per-page submission success rate (POST/GET).
type Figure5 struct {
	PerPage []float64
	Mean    float64
	Min     float64
	Max     float64
}

// ComputeFigure5 reproduces Figure 5. Pages with fewer than minViews GET
// requests are skipped (a rate over three views is noise).
func ComputeFigure5(s *logstore.Store, samplePages, minViews int) Figure5 {
	pages := datasets.D3FormsPages(s, samplePages)
	var rates stats.Sample
	var out Figure5
	for _, p := range pages {
		gets, posts := 0, 0
		for _, h := range p.Hits {
			switch h.Method {
			case "GET":
				gets++
			case "POST":
				posts++
			}
		}
		if gets < minViews {
			continue
		}
		r := float64(posts) / float64(gets)
		out.PerPage = append(out.PerPage, r)
		rates.Add(r)
	}
	out.Mean = rates.Mean()
	out.Min = rates.Min()
	out.Max = rates.Max()
	return out
}

// Figure6 is the credential-submission time profile: the average hourly
// POST volume per standard page (a decay from the blast), and the
// high-volume outlier's own series with its quiet testing period.
type Figure6 struct {
	// StandardAvg is the mean POSTs per page per hour since first visit.
	StandardAvg []float64
	// Outlier is the hourly POST series of the single busiest page.
	Outlier []int
	// OutlierQuietHours is how long the busiest page sat nearly idle
	// before its volume step.
	OutlierQuietHours int
	Pages             int
}

// DefaultFigure6SamplePages is the registry's Dataset 3 sample size for
// Figure 6, shared with the streaming suite so both paths draw the same
// page sample.
const DefaultFigure6SamplePages = 100

// ComputeFigure6 reproduces Figure 6 from Dataset 3. It scans the log
// through the incremental builder so the batch and streaming paths share
// one implementation.
func ComputeFigure6(s *logstore.Store, samplePages int) Figure6 {
	b := NewFigure6Builder()
	s.Scan(b.Observe)
	return b.Figure6(samplePages)
}

// figure6Page is one Forms page's live aggregate: the hourly POST series
// anchored at its first hit, and the count of POSTs landing more than 12
// hours after that first hit (the outlier signal).
type figure6Page struct {
	id        event.PageID
	takenDown bool
	first     time.Time
	series    *stats.TimeSeries
	late      int
}

// Figure6Builder is the incremental form of ComputeFigure6. It mirrors
// Dataset 3's join (Forms pages that were taken down, with their HTTP
// logs) as per-page aggregates, so state grows with pages, not hits.
// Events must arrive in time order — the first hit anchors each page's
// hourly series — which both the sealed log and the stream bus guarantee.
type Figure6Builder struct {
	pages map[event.PageID]*figure6Page
}

// NewFigure6Builder returns an empty builder.
func NewFigure6Builder() *Figure6Builder {
	return &Figure6Builder{pages: map[event.PageID]*figure6Page{}}
}

// Observe folds one event into the per-page aggregates.
func (b *Figure6Builder) Observe(e event.Event) {
	switch ev := e.(type) {
	case event.PageCreated:
		if ev.OnForms {
			b.pages[ev.Page] = &figure6Page{id: ev.Page}
		}
	case event.PageTakedown:
		if p, ok := b.pages[ev.Page]; ok {
			p.takenDown = true
		}
	case event.PageHit:
		p, ok := b.pages[ev.Page]
		if !ok {
			return
		}
		if p.series == nil {
			p.first = ev.When()
			p.series = stats.NewTimeSeries(p.first, time.Hour)
		}
		if ev.Method == "POST" {
			p.series.Observe(ev.When())
			if ev.When().Sub(p.first) > 12*time.Hour {
				p.late++
			}
		}
	}
}

// Figure6 snapshots the figure from the pages observed so far, drawing
// Dataset 3's deterministic sample over the eligible (taken-down) pages.
func (b *Figure6Builder) Figure6(samplePages int) Figure6 {
	var eligible []*figure6Page
	for _, p := range b.pages {
		if p.takenDown {
			eligible = append(eligible, p)
		}
	}
	// Deterministic order before sampling, as D3FormsPages sorts.
	for i := 1; i < len(eligible); i++ {
		for j := i; j > 0 && eligible[j].id < eligible[j-1].id; j-- {
			eligible[j], eligible[j-1] = eligible[j-1], eligible[j]
		}
	}
	pages := datasets.SampleN(3, eligible, samplePages)

	var fig Figure6

	// Identify the outlier: the page with the most submissions arriving
	// more than 12 hours after its first visit. Standard mass-blast pages
	// decay within hours; only the step-shaped outlier keeps sustained
	// volume (Figure 6, bottom).
	busiest, busiestLate := -1, 0
	for i, p := range pages {
		if p.series == nil {
			continue
		}
		if p.late > busiestLate {
			busiest, busiestLate = i, p.late
		}
	}

	var sums []float64
	counts := 0
	for i, p := range pages {
		if p.series == nil {
			continue
		}
		if i == busiest {
			fig.Outlier = p.series.Counts()
			fig.OutlierQuietHours = quietHours(p.series.Counts())
			continue
		}
		counts++
		for j, c := range p.series.Counts() {
			for len(sums) <= j {
				sums = append(sums, 0)
			}
			sums[j] += float64(c)
		}
	}
	if counts > 0 {
		for _, sum := range sums {
			fig.StandardAvg = append(fig.StandardAvg, sum/float64(counts))
		}
	}
	fig.Pages = len(pages)
	return fig
}

// quietHours counts leading buckets before the series reaches 20% of its
// peak — the outlier's pre-launch testing period.
func quietHours(counts []int) int {
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return len(counts)
	}
	threshold := peak / 5
	for i, c := range counts {
		if c > threshold {
			return i
		}
	}
	return len(counts)
}

// SafeBrowsingWeekly returns detected phishing pages per week (§3 reports
// 16,000–25,000/week at Google scale; the sim reports its own scale).
func SafeBrowsingWeekly(s *logstore.Store, start time.Time) []int {
	series := stats.NewTimeSeries(start, 7*24*time.Hour)
	for _, d := range logstore.Select[event.PageDetected](s) {
		series.Observe(d.When())
	}
	return series.Counts()
}
