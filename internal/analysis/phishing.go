// Package analysis computes every table and figure of the paper from a
// world's event log, via the datasets of Table 1. Each function returns a
// typed result that the report package renders and the benchmark harness
// asserts shape properties on.
package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Table2 is the phishing-target breakdown (Table 2): what account types
// phishing emails and phishing pages solicit.
type Table2 struct {
	EmailShares map[event.TargetKind]float64
	PageShares  map[event.TargetKind]float64
	EmailN      int
	PageN       int
}

// ComputeTable2 reproduces Table 2 from Datasets 1 and 2.
func ComputeTable2(s *logstore.Store, sampleSize int) Table2 {
	emails := datasets.D1PhishingEmails(s, sampleSize)
	pages := datasets.D2PhishingPages(s, sampleSize)

	var ec, pc stats.Counter
	for _, e := range emails {
		ec.Add(string(e.Target))
	}
	for _, p := range pages {
		pc.Add(string(p.Target))
	}
	t := Table2{
		EmailShares: make(map[event.TargetKind]float64),
		PageShares:  make(map[event.TargetKind]float64),
		EmailN:      len(emails),
		PageN:       len(pages),
	}
	for _, k := range []event.TargetKind{event.TargetMail, event.TargetBank,
		event.TargetAppStore, event.TargetSocial, event.TargetOther} {
		t.EmailShares[k] = ec.Share(string(k))
		t.PageShares[k] = pc.Share(string(k))
	}
	return t
}

// URLShare returns the fraction of curated phishing emails carrying a URL
// (§4.1: 62 of 100).
func URLShare(s *logstore.Store, sampleSize int) float64 {
	emails := datasets.D1PhishingEmails(s, sampleSize)
	withURL := 0
	for _, e := range emails {
		if e.HasURL {
			withURL++
		}
	}
	return stats.Ratio(float64(withURL), float64(len(emails)))
}

// Figure3 is the HTTP-referrer breakdown of phishing-page traffic.
type Figure3 struct {
	BlankShare float64
	NonBlank   []stats.Entry
	TotalGETs  int
}

// ComputeFigure3 reproduces Figure 3 from Dataset 3's HTTP logs.
func ComputeFigure3(s *logstore.Store, samplePages int) Figure3 {
	pages := datasets.D3FormsPages(s, samplePages)
	var blank, total int
	var nonBlank stats.Counter
	for _, p := range pages {
		for _, h := range p.Hits {
			if h.Method != "GET" {
				continue
			}
			total++
			if h.Referrer == "" {
				blank++
			} else {
				nonBlank.Add(h.Referrer)
			}
		}
	}
	return Figure3{
		BlankShare: stats.Ratio(float64(blank), float64(total)),
		NonBlank:   nonBlank.Sorted(),
		TotalGETs:  total,
	}
}

// Figure4 is the TLD breakdown of phished email addresses.
type Figure4 struct {
	Shares   []stats.Entry
	EduShare float64
	N        int
}

// ComputeFigure4 reproduces Figure 4 from Dataset 3's POST payloads.
func ComputeFigure4(s *logstore.Store, samplePages int) Figure4 {
	pages := datasets.D3FormsPages(s, samplePages)
	var c stats.Counter
	for _, p := range pages {
		for _, h := range p.Hits {
			if h.Method != "POST" || h.Victim == "" {
				continue
			}
			if tld := identity.TLD(h.Victim); tld != "" {
				c.Add(tld)
			}
		}
	}
	return Figure4{Shares: c.Sorted(), EduShare: c.Share("edu"), N: c.Total()}
}

// Figure5 is the per-page submission success rate (POST/GET).
type Figure5 struct {
	PerPage []float64
	Mean    float64
	Min     float64
	Max     float64
}

// ComputeFigure5 reproduces Figure 5. Pages with fewer than minViews GET
// requests are skipped (a rate over three views is noise).
func ComputeFigure5(s *logstore.Store, samplePages, minViews int) Figure5 {
	pages := datasets.D3FormsPages(s, samplePages)
	var rates stats.Sample
	var out Figure5
	for _, p := range pages {
		gets, posts := 0, 0
		for _, h := range p.Hits {
			switch h.Method {
			case "GET":
				gets++
			case "POST":
				posts++
			}
		}
		if gets < minViews {
			continue
		}
		r := float64(posts) / float64(gets)
		out.PerPage = append(out.PerPage, r)
		rates.Add(r)
	}
	out.Mean = rates.Mean()
	out.Min = rates.Min()
	out.Max = rates.Max()
	return out
}

// Figure6 is the credential-submission time profile: the average hourly
// POST volume per standard page (a decay from the blast), and the
// high-volume outlier's own series with its quiet testing period.
type Figure6 struct {
	// StandardAvg is the mean POSTs per page per hour since first visit.
	StandardAvg []float64
	// Outlier is the hourly POST series of the single busiest page.
	Outlier []int
	// OutlierQuietHours is how long the busiest page sat nearly idle
	// before its volume step.
	OutlierQuietHours int
	Pages             int
}

// ComputeFigure6 reproduces Figure 6 from Dataset 3.
func ComputeFigure6(s *logstore.Store, samplePages int) Figure6 {
	pages := datasets.D3FormsPages(s, samplePages)
	var fig Figure6

	// Identify the outlier: the page with the most submissions arriving
	// more than 12 hours after its first visit. Standard mass-blast pages
	// decay within hours; only the step-shaped outlier keeps sustained
	// volume (Figure 6, bottom).
	busiest, busiestLate := -1, 0
	for i, p := range pages {
		if len(p.Hits) == 0 {
			continue
		}
		first := p.Hits[0].When()
		late := 0
		for _, h := range p.Hits {
			if h.Method == "POST" && h.When().Sub(first) > 12*time.Hour {
				late++
			}
		}
		if late > busiestLate {
			busiest, busiestLate = i, late
		}
	}

	var sums []float64
	counts := 0
	for i, p := range pages {
		if len(p.Hits) == 0 {
			continue
		}
		first := p.Hits[0].When()
		series := stats.NewTimeSeries(first, time.Hour)
		for _, h := range p.Hits {
			if h.Method == "POST" {
				series.Observe(h.When())
			}
		}
		if i == busiest {
			fig.Outlier = series.Counts()
			fig.OutlierQuietHours = quietHours(series.Counts())
			continue
		}
		counts++
		for j, c := range series.Counts() {
			for len(sums) <= j {
				sums = append(sums, 0)
			}
			sums[j] += float64(c)
		}
	}
	if counts > 0 {
		for _, sum := range sums {
			fig.StandardAvg = append(fig.StandardAvg, sum/float64(counts))
		}
	}
	fig.Pages = len(pages)
	return fig
}

// quietHours counts leading buckets before the series reaches 20% of its
// peak — the outlier's pre-launch testing period.
func quietHours(counts []int) int {
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return len(counts)
	}
	threshold := peak / 5
	for i, c := range counts {
		if c > threshold {
			return i
		}
	}
	return len(counts)
}

// SafeBrowsingWeekly returns detected phishing pages per week (§3 reports
// 16,000–25,000/week at Google scale; the sim reports its own scale).
func SafeBrowsingWeekly(s *logstore.Store, start time.Time) []int {
	series := stats.NewTimeSeries(start, 7*24*time.Hour)
	for _, d := range logstore.Select[event.PageDetected](s) {
		series.Observe(d.When())
	}
	return series.Counts()
}
