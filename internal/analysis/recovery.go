package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Figure9 is the recovery-latency distribution (Dataset 11): time from
// the system flagging the hijack to the owner regaining exclusive control.
type Figure9 struct {
	Recoveries   int
	Within1Hour  float64       // paper: 22%
	Within13Hour float64       // paper: 50%
	Latencies    *stats.Sample // hours
}

// ComputeFigure9 reproduces Figure 9. It scans the log through the
// incremental builder so the batch and segmented paths share one
// implementation.
func ComputeFigure9(s *logstore.Store, sampleSize int) Figure9 {
	b := NewFigure9Builder()
	s.Scan(b.Observe)
	return b.Figure9(sampleSize)
}

// Figure9Builder is the incremental form of ComputeFigure9: it accumulates
// Dataset 11's population (successful recoveries, in log order) and draws
// the dataset's deterministic sample at snapshot time.
type Figure9Builder struct {
	recovered []event.ClaimResolved
}

// NewFigure9Builder returns an empty builder.
func NewFigure9Builder() *Figure9Builder { return &Figure9Builder{} }

// Observe folds one event into the Dataset 11 population.
func (b *Figure9Builder) Observe(e event.Event) {
	if r, ok := e.(event.ClaimResolved); ok && r.Success {
		b.recovered = append(b.recovered, r)
	}
}

// Merge folds a later partition's recoveries into b by concatenation.
func (b *Figure9Builder) Merge(other *Figure9Builder) {
	b.recovered = append(b.recovered, other.recovered...)
}

// Figure9 snapshots the figure from the recoveries observed so far.
func (b *Figure9Builder) Figure9(sampleSize int) Figure9 {
	fig := Figure9{Latencies: &stats.Sample{}}
	for _, r := range datasets.SampleN(11, b.recovered, sampleSize) {
		if r.FlaggedAt.IsZero() {
			continue
		}
		lat := r.When().Sub(r.FlaggedAt)
		if lat < 0 {
			continue
		}
		fig.Recoveries++
		fig.Latencies.Add(lat.Hours())
	}
	if fig.Recoveries > 0 {
		fig.Within1Hour = fig.Latencies.FracBelow(1)
		fig.Within13Hour = fig.Latencies.FracBelow(13)
	}
	return fig
}

// MethodStats is one row of Figure 10.
type MethodStats struct {
	Attempts  int
	Successes int
	Rate      float64
}

// Figure10 is the per-method recovery success rate (Dataset 12).
type Figure10 struct {
	Methods map[event.RecoveryMethod]MethodStats
}

// ComputeFigure10 reproduces Figure 10 over the claim attempts in
// [from, to) — the paper used a full month of claims. It scans the log
// through the incremental builder so the batch and segmented paths share
// one implementation.
func ComputeFigure10(s *logstore.Store, from, to time.Time) Figure10 {
	b := NewFigure10Builder()
	s.Scan(b.Observe)
	return b.Figure10(from, to)
}

// Figure10Builder is the incremental form of ComputeFigure10: it buffers
// Dataset 12's population (legitimate claim attempts) and applies the
// window filter at snapshot time, when the bounds are known.
type Figure10Builder struct {
	attempts []event.ClaimAttempt
}

// NewFigure10Builder returns an empty builder.
func NewFigure10Builder() *Figure10Builder { return &Figure10Builder{} }

// Observe folds one event into the Dataset 12 population.
func (b *Figure10Builder) Observe(e event.Event) {
	if a, ok := e.(event.ClaimAttempt); ok && a.Actor != event.ActorHijacker {
		b.attempts = append(b.attempts, a)
	}
}

// Merge folds a later partition's attempts into b by concatenation.
func (b *Figure10Builder) Merge(other *Figure10Builder) {
	b.attempts = append(b.attempts, other.attempts...)
}

// Figure10 snapshots the figure over the window's attempts observed so far.
func (b *Figure10Builder) Figure10(from, to time.Time) Figure10 {
	fig := Figure10{Methods: map[event.RecoveryMethod]MethodStats{}}
	for _, a := range b.attempts {
		if a.When().Before(from) || !a.When().Before(to) {
			continue
		}
		m := fig.Methods[a.Method]
		m.Attempts++
		if a.Success {
			m.Successes++
		}
		m.Rate = stats.Ratio(float64(m.Successes), float64(m.Attempts))
		fig.Methods[a.Method] = m
	}
	return fig
}

// RecoveryChannels summarizes §6.3's channel-reliability estimates.
type RecoveryChannels struct {
	// RecycledShare is the fraction of on-file secondary emails that were
	// recycled by their upstream provider (paper: ~7%).
	RecycledShare float64
	// BounceShare is the fraction of email verification attempts that
	// bounced (paper: ~5%).
	BounceShare float64
	// EmailOfferedShare is how often email was offered among claims from
	// accounts with a secondary on file (recycled ones are withheld).
	EmailAttempts int
}

// ComputeRecoveryChannels reproduces the §6.3 reliability estimates from
// the claim-attempt log and the population. It scans the log through the
// incremental builder so the batch and segmented paths share one
// implementation.
func ComputeRecoveryChannels(s *logstore.Store, secondaryTotal, secondaryRecycled int) RecoveryChannels {
	b := NewRecoveryChannelsBuilder()
	s.Scan(b.Observe)
	return b.RecoveryChannels(secondaryTotal, secondaryRecycled)
}

// RecoveryChannelsBuilder is the incremental form of
// ComputeRecoveryChannels: two counters over email verification attempts.
type RecoveryChannelsBuilder struct {
	emailAttempts int
	bounces       int
}

// NewRecoveryChannelsBuilder returns an empty builder.
func NewRecoveryChannelsBuilder() *RecoveryChannelsBuilder {
	return &RecoveryChannelsBuilder{}
}

// Observe folds one event into the email-channel tallies.
func (b *RecoveryChannelsBuilder) Observe(e event.Event) {
	a, ok := e.(event.ClaimAttempt)
	if !ok || a.Method != event.MethodEmail {
		return
	}
	b.emailAttempts++
	if !a.Success && a.Reason == "bounce" {
		b.bounces++
	}
}

// Merge folds a later partition's tallies into b.
func (b *RecoveryChannelsBuilder) Merge(other *RecoveryChannelsBuilder) {
	b.emailAttempts += other.emailAttempts
	b.bounces += other.bounces
}

// RecoveryChannels snapshots the estimates observed so far; the secondary
// email totals come from the directory, not the log.
func (b *RecoveryChannelsBuilder) RecoveryChannels(secondaryTotal, secondaryRecycled int) RecoveryChannels {
	out := RecoveryChannels{
		RecycledShare: stats.Ratio(float64(secondaryRecycled), float64(secondaryTotal)),
		EmailAttempts: b.emailAttempts,
	}
	out.BounceShare = stats.Ratio(float64(b.bounces), float64(out.EmailAttempts))
	return out
}

// RemissionStats summarizes §6.4/§5.4: how often recovery restored
// hijacker-deleted content and cleared hijacker settings.
type RemissionStats struct {
	Remissions       int
	WithRestore      int
	WithSettingClear int
}

// ComputeRemission tallies remission outcomes. It scans the log through
// the incremental builder so the batch and segmented paths share one
// implementation.
func ComputeRemission(s *logstore.Store) RemissionStats {
	b := NewRemissionBuilder()
	s.Scan(b.Observe)
	return b.Remission()
}

// RemissionBuilder is the incremental form of ComputeRemission: three
// counters over remission events.
type RemissionBuilder struct {
	out RemissionStats
}

// NewRemissionBuilder returns an empty builder.
func NewRemissionBuilder() *RemissionBuilder { return &RemissionBuilder{} }

// Observe folds one event into the tallies.
func (b *RemissionBuilder) Observe(e event.Event) {
	r, ok := e.(event.Remission)
	if !ok {
		return
	}
	b.out.Remissions++
	if r.RestoredMessages > 0 {
		b.out.WithRestore++
	}
	if r.ClearedSettings {
		b.out.WithSettingClear++
	}
}

// Merge folds a later partition's tallies into b.
func (b *RemissionBuilder) Merge(other *RemissionBuilder) {
	b.out.Remissions += other.out.Remissions
	b.out.WithRestore += other.out.WithRestore
	b.out.WithSettingClear += other.out.WithSettingClear
}

// Remission snapshots the tallies observed so far.
func (b *RemissionBuilder) Remission() RemissionStats { return b.out }

// RecoveryFraud summarizes §6.3's impostor risk: hijackers filing
// fraudulent claims on accounts whose phished passwords went stale.
type RecoveryFraud struct {
	Attempts  int
	Successes int
	Rate      float64
}

// ComputeRecoveryFraud tallies impostor claims from the log.
func ComputeRecoveryFraud(s *logstore.Store) RecoveryFraud {
	var out RecoveryFraud
	for _, r := range logstore.Select[event.ClaimResolved](s) {
		if r.Actor != event.ActorHijacker {
			continue
		}
		out.Attempts++
		if r.Success {
			out.Successes++
		}
	}
	out.Rate = stats.Ratio(float64(out.Successes), float64(out.Attempts))
	return out
}
