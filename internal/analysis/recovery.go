package analysis

import (
	"time"

	"manualhijack/internal/datasets"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// Figure9 is the recovery-latency distribution (Dataset 11): time from
// the system flagging the hijack to the owner regaining exclusive control.
type Figure9 struct {
	Recoveries   int
	Within1Hour  float64       // paper: 22%
	Within13Hour float64       // paper: 50%
	Latencies    *stats.Sample // hours
}

// ComputeFigure9 reproduces Figure 9.
func ComputeFigure9(s *logstore.Store, sampleSize int) Figure9 {
	recovered := datasets.D11RecoveredAccounts(s, sampleSize)
	fig := Figure9{Latencies: &stats.Sample{}}
	for _, r := range recovered {
		if r.FlaggedAt.IsZero() {
			continue
		}
		lat := r.When().Sub(r.FlaggedAt)
		if lat < 0 {
			continue
		}
		fig.Recoveries++
		fig.Latencies.Add(lat.Hours())
	}
	if fig.Recoveries > 0 {
		fig.Within1Hour = fig.Latencies.FracBelow(1)
		fig.Within13Hour = fig.Latencies.FracBelow(13)
	}
	return fig
}

// MethodStats is one row of Figure 10.
type MethodStats struct {
	Attempts  int
	Successes int
	Rate      float64
}

// Figure10 is the per-method recovery success rate (Dataset 12).
type Figure10 struct {
	Methods map[event.RecoveryMethod]MethodStats
}

// ComputeFigure10 reproduces Figure 10 over the claim attempts in
// [from, to) — the paper used a full month of claims.
func ComputeFigure10(s *logstore.Store, from, to time.Time) Figure10 {
	fig := Figure10{Methods: map[event.RecoveryMethod]MethodStats{}}
	for _, a := range datasets.D12ClaimAttempts(s, from, to) {
		m := fig.Methods[a.Method]
		m.Attempts++
		if a.Success {
			m.Successes++
		}
		m.Rate = stats.Ratio(float64(m.Successes), float64(m.Attempts))
		fig.Methods[a.Method] = m
	}
	return fig
}

// RecoveryChannels summarizes §6.3's channel-reliability estimates.
type RecoveryChannels struct {
	// RecycledShare is the fraction of on-file secondary emails that were
	// recycled by their upstream provider (paper: ~7%).
	RecycledShare float64
	// BounceShare is the fraction of email verification attempts that
	// bounced (paper: ~5%).
	BounceShare float64
	// EmailOfferedShare is how often email was offered among claims from
	// accounts with a secondary on file (recycled ones are withheld).
	EmailAttempts int
}

// ComputeRecoveryChannels reproduces the §6.3 reliability estimates from
// the claim-attempt log and the population.
func ComputeRecoveryChannels(s *logstore.Store, secondaryTotal, secondaryRecycled int) RecoveryChannels {
	out := RecoveryChannels{
		RecycledShare: stats.Ratio(float64(secondaryRecycled), float64(secondaryTotal)),
	}
	bounces := 0
	for _, a := range logstore.Select[event.ClaimAttempt](s) {
		if a.Method != event.MethodEmail {
			continue
		}
		out.EmailAttempts++
		if !a.Success && a.Reason == "bounce" {
			bounces++
		}
	}
	out.BounceShare = stats.Ratio(float64(bounces), float64(out.EmailAttempts))
	return out
}

// RemissionStats summarizes §6.4/§5.4: how often recovery restored
// hijacker-deleted content and cleared hijacker settings.
type RemissionStats struct {
	Remissions       int
	WithRestore      int
	WithSettingClear int
}

// ComputeRemission tallies remission outcomes.
func ComputeRemission(s *logstore.Store) RemissionStats {
	var out RemissionStats
	for _, r := range logstore.Select[event.Remission](s) {
		out.Remissions++
		if r.RestoredMessages > 0 {
			out.WithRestore++
		}
		if r.ClearedSettings {
			out.WithSettingClear++
		}
	}
	return out
}

// RecoveryFraud summarizes §6.3's impostor risk: hijackers filing
// fraudulent claims on accounts whose phished passwords went stale.
type RecoveryFraud struct {
	Attempts  int
	Successes int
	Rate      float64
}

// ComputeRecoveryFraud tallies impostor claims from the log.
func ComputeRecoveryFraud(s *logstore.Store) RecoveryFraud {
	var out RecoveryFraud
	for _, r := range logstore.Select[event.ClaimResolved](s) {
		if r.Actor != event.ActorHijacker {
			continue
		}
		out.Attempts++
		if r.Success {
			out.Successes++
		}
	}
	out.Rate = stats.Ratio(float64(out.Successes), float64(out.Attempts))
	return out
}
