package analysis

import (
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/stats"
)

// WorkSchedule is the §5.5 "ordinary office job" evidence, recomputed
// from hijacker login timestamps: a tight daily schedule, a synchronized
// lunch break, and weekend inactivity.
type WorkSchedule struct {
	// HourlyShare is the share of hijacker logins in each UTC hour.
	HourlyShare [24]float64
	// WeekendShare is the share of hijacker logins on Saturday/Sunday
	// (paper: "largely inactive over the weekends"; a uniform schedule
	// would put 2/7 ≈ 28.6% there).
	WeekendShare float64
	// LunchDip is 1 − (activity in the quietest mid-day hour / mean
	// activity of the adjacent working hours); near 1 means a full stop.
	LunchDip float64
	// ActiveHours is the number of hours with ≥ half the peak hour's
	// activity — a tight schedule keeps this near the shift length.
	ActiveHours int
	Logins      int
}

// ComputeWorkSchedule reproduces §5.5 from the hijacker login log. It
// scans the log through the incremental builder so the batch and segmented
// paths share one implementation.
func ComputeWorkSchedule(s *logstore.Store) WorkSchedule {
	b := NewWorkScheduleBuilder()
	s.Scan(b.Observe)
	return b.WorkSchedule()
}

// WorkScheduleBuilder is the incremental form of ComputeWorkSchedule:
// fixed-size hour-of-day and weekend tallies over Dataset 5's hijacker
// logins.
type WorkScheduleBuilder struct {
	hourly  [24]int
	weekend int
	logins  int
}

// NewWorkScheduleBuilder returns an empty builder.
func NewWorkScheduleBuilder() *WorkScheduleBuilder { return &WorkScheduleBuilder{} }

// Observe folds one event into the tallies, mirroring Dataset 5's
// hijacker-login filter.
func (b *WorkScheduleBuilder) Observe(e event.Event) {
	l, ok := e.(event.Login)
	if !ok || l.Actor != event.ActorHijacker {
		return
	}
	b.logins++
	b.hourly[l.When().Hour()]++
	switch l.When().Weekday() {
	case time.Saturday, time.Sunday:
		b.weekend++
	}
}

// Merge folds a later partition's tallies into b.
func (b *WorkScheduleBuilder) Merge(other *WorkScheduleBuilder) {
	for h, n := range other.hourly {
		b.hourly[h] += n
	}
	b.weekend += other.weekend
	b.logins += other.logins
}

// WorkSchedule snapshots the schedule observed so far.
func (b *WorkScheduleBuilder) WorkSchedule() WorkSchedule {
	out := WorkSchedule{Logins: b.logins}
	hourly := b.hourly
	weekend := b.weekend
	if out.Logins == 0 {
		return out
	}
	peak := 0
	for h, n := range hourly {
		out.HourlyShare[h] = float64(n) / float64(out.Logins)
		if n > peak {
			peak = n
		}
	}
	for _, n := range hourly {
		if n*2 >= peak && peak > 0 {
			out.ActiveHours++
		}
	}
	out.WeekendShare = stats.Ratio(float64(weekend), float64(out.Logins))
	out.LunchDip = lunchDip(hourly[:])
	return out
}

// lunchDip finds the deepest mid-shift trough: the hour whose activity is
// lowest relative to the mean of its two neighbors, restricted to hours
// where the neighbors are busy (inside a shift).
func lunchDip(hourly []int) float64 {
	best := 0.0
	for h := 1; h < len(hourly)-1; h++ {
		left, right := float64(hourly[h-1]), float64(hourly[h+1])
		if left == 0 || right == 0 {
			continue
		}
		neighbors := (left + right) / 2
		dip := 1 - float64(hourly[h])/neighbors
		if dip > best {
			best = dip
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}
