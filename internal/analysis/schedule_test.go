package analysis

import (
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
)

// seedSchedule writes hijacker logins following an office schedule:
// weekdays 08–17 UTC with a dead hour at 12.
func seedSchedule(s *logstore.Store) {
	day := time.Date(2012, 11, 5, 0, 0, 0, 0, time.UTC) // a Monday
	id := identity.AccountID(1)
	for d := 0; d < 14; d++ {
		cur := day.Add(time.Duration(d) * 24 * time.Hour)
		switch cur.Weekday() {
		case time.Saturday, time.Sunday:
			continue
		}
		for h := 8; h < 17; h++ {
			if h == 12 {
				continue // lunch
			}
			for k := 0; k < 3; k++ {
				s.Append(event.Login{
					Base:    event.Base{Time: cur.Add(time.Duration(h)*time.Hour + time.Duration(k)*7*time.Minute)},
					Account: id, Actor: event.ActorHijacker, Outcome: event.LoginSuccess,
				})
				id++
			}
		}
	}
}

func TestComputeWorkSchedule(t *testing.T) {
	s := logstore.New()
	seedSchedule(s)
	ws := ComputeWorkSchedule(s)
	if ws.Logins == 0 {
		t.Fatal("no logins")
	}
	if ws.WeekendShare != 0 {
		t.Fatalf("weekend share = %v, want 0 for an office schedule", ws.WeekendShare)
	}
	if ws.LunchDip < 0.95 {
		t.Fatalf("lunch dip = %v, want ~1 (full stop)", ws.LunchDip)
	}
	if ws.ActiveHours < 7 || ws.ActiveHours > 9 {
		t.Fatalf("active hours = %d, want ~8 (9h shift minus lunch)", ws.ActiveHours)
	}
	// No activity outside the shift.
	if ws.HourlyShare[3] != 0 || ws.HourlyShare[22] != 0 {
		t.Fatalf("night activity present: %v", ws.HourlyShare)
	}
}

func TestWorkScheduleEmpty(t *testing.T) {
	ws := ComputeWorkSchedule(logstore.New())
	if ws.Logins != 0 || ws.WeekendShare != 0 || ws.LunchDip != 0 {
		t.Fatalf("empty schedule = %+v", ws)
	}
}

func TestEvaluateDoppelgangerDetector(t *testing.T) {
	cfg := identity.DefaultConfig(time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC))
	cfg.N = 10
	dir := newTestDirectory(t, cfg)
	s := logstore.New()
	a := dir.Get(1)

	// Hijacker sets a typo doppelganger of the victim's own address.
	doppel := identity.Address("x" + string(a.Addr))
	s.Append(event.ReplyToSet{Base: at(0), Account: a.ID, Addr: doppel, Actor: event.ActorHijacker})
	// Owner sets a clearly different alternate address.
	s.Append(event.ReplyToSet{Base: at(1), Account: 2, Addr: "completely-different@web.org", Actor: event.ActorOwner})
	// Hijacker forwards to an unrelated drop box (a miss for the detector).
	s.Append(event.FilterCreated{Base: at(2), Account: 3, ForwardTo: "dropbox9@evil.test", Actor: event.ActorHijacker})

	ev := EvaluateDoppelgangerDetector(s, dir, 0.75)
	if ev.TruePositives != 1 {
		t.Fatalf("tp = %d, want the typo doppelganger flagged", ev.TruePositives)
	}
	if ev.FalsePositives != 0 {
		t.Fatalf("fp = %d (owner alternate flagged?)", ev.FalsePositives)
	}
	if ev.HijackerSettings != 2 {
		t.Fatalf("hijacker settings = %d", ev.HijackerSettings)
	}
	if ev.Recall != 0.5 || ev.Precision != 1 {
		t.Fatalf("eval = %+v", ev)
	}
	if ev.MeanHijackerSim <= ev.MeanOwnerSim {
		t.Fatal("similarity separation missing")
	}
}

func newTestDirectory(t *testing.T, cfg identity.Config) *identity.Directory {
	t.Helper()
	return identity.NewDirectory(randx.New(1), cfg)
}

func TestComputeLifecycle(t *testing.T) {
	s := logstore.New()
	s.Append(event.LureSent{Base: at(0), Victim: "v@x.edu"})
	s.Append(event.LureSent{Base: at(1), Victim: "w@x.edu"})
	s.Append(event.PageHit{Base: at(2), Page: 1, Method: "GET"})
	s.Append(event.CredentialPhished{Base: at(3), Account: 1})
	s.Append(event.Login{Base: at(4), Account: 1, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.HijackAssessed{Base: at(5), Account: 1, Exploited: true})
	s.Append(event.HijackEnded{Base: at(6), Account: 1, LockedOut: true})
	s.Append(event.ClaimFiled{Base: at(7), Account: 1})
	s.Append(event.ClaimResolved{Base: at(8), Account: 1, Success: true})

	l := ComputeLifecycle(s)
	if l.LuresDelivered != 2 || l.PageVisits != 1 || l.CredentialsCaptured != 1 {
		t.Fatalf("acquisition = %+v", l)
	}
	if l.AccountsAttempted != 1 || l.AccountsEntered != 1 || l.AccountsExploited != 1 {
		t.Fatalf("exploitation = %+v", l)
	}
	if l.ClaimsFiled != 1 || l.AccountsRecovered != 1 {
		t.Fatalf("remediation = %+v", l)
	}
	rates := l.Rates()
	if len(rates) != 8 {
		t.Fatalf("rates = %v", rates)
	}
	for _, r := range rates[2:] {
		if r.Share != 1 {
			t.Fatalf("funnel stage %s = %v, want 1 in this toy log", r.Key, r.Share)
		}
	}
}

// Property: every funnel stage share stays within [0, ∞) and distinct-
// account stages never exceed their upstream counts for arbitrary worlds
// is covered by the world-level test; here, the trivial bound.
func TestLifecycleRatesNonNegative(t *testing.T) {
	l := Lifecycle{}
	for _, r := range l.Rates() {
		if r.Share != 0 {
			t.Fatalf("empty lifecycle stage %s = %v", r.Key, r.Share)
		}
	}
}

func TestSafeBrowsingWeekly(t *testing.T) {
	s := logstore.New()
	start := t0
	s.Append(event.PageDetected{Base: event.Base{Time: start.Add(2 * 24 * time.Hour)}, Page: 1})
	s.Append(event.PageDetected{Base: event.Base{Time: start.Add(3 * 24 * time.Hour)}, Page: 2})
	s.Append(event.PageDetected{Base: event.Base{Time: start.Add(10 * 24 * time.Hour)}, Page: 3})
	weeks := SafeBrowsingWeekly(s, start)
	if len(weeks) != 2 || weeks[0] != 2 || weeks[1] != 1 {
		t.Fatalf("weekly = %v", weeks)
	}
}

func TestComputeRemission(t *testing.T) {
	s := logstore.New()
	s.Append(event.Remission{Base: at(0), Account: 1, RestoredMessages: 12, ClearedSettings: true})
	s.Append(event.Remission{Base: at(1), Account: 2})
	r := ComputeRemission(s)
	if r.Remissions != 2 || r.WithRestore != 1 || r.WithSettingClear != 1 {
		t.Fatalf("remission = %+v", r)
	}
}

func TestMonetizationAndRevenueByCrew(t *testing.T) {
	s := logstore.New()
	s.Append(event.MessageSent{Base: at(0), FromAcct: 1, Class: event.ClassScam,
		Actor: event.ActorHijacker, Recipients: []identity.Address{"a@b.test", "c@d.test"}})
	s.Append(event.HijackAssessed{Base: at(1), Account: 1, Exploited: true})
	s.Append(event.ScamReply{Base: at(2), VictimAccount: 1, Recipient: 2, ReachedHijacker: true, Via: "access"})
	s.Append(event.ScamReply{Base: at(3), VictimAccount: 1, Recipient: 3, Via: "lost"})
	s.Append(event.MoneyWired{Base: at(4), VictimAccount: 1, Recipient: 2, Crew: "ng", Amount: 500})
	s.Append(event.MoneyWired{Base: at(5), VictimAccount: 1, Recipient: 4, Crew: "ci", Amount: 200})

	m := ComputeMonetization(s)
	if m.PleaRecipients != 2 || m.Replies != 2 || m.ReachedCrew != 1 {
		t.Fatalf("funnel = %+v", m)
	}
	if m.Payments != 2 || m.Revenue != 700 || m.RevenuePerHijack != 700 {
		t.Fatalf("revenue = %+v", m)
	}
	if m.MeanPayment != 350 {
		t.Fatalf("mean payment = %v", m.MeanPayment)
	}
	by := RevenueByCrew(s)
	if len(by) != 2 || by[0].Key != "ng" || by[0].Count != 500 {
		t.Fatalf("by crew = %v", by)
	}
}

func TestComputeRecoveryFraud(t *testing.T) {
	s := logstore.New()
	s.Append(event.ClaimResolved{Base: at(0), Account: 1, Success: false, Actor: event.ActorHijacker})
	s.Append(event.ClaimResolved{Base: at(1), Account: 2, Success: true, Actor: event.ActorHijacker})
	s.Append(event.ClaimResolved{Base: at(2), Account: 3, Success: true, Actor: event.ActorOwner})
	fr := ComputeRecoveryFraud(s)
	if fr.Attempts != 2 || fr.Successes != 1 || fr.Rate != 0.5 {
		t.Fatalf("fraud = %+v", fr)
	}
}
