// Package auth implements the provider's login service: password
// verification, 2-step verification, login-time risk analysis with
// challenge escalation, session issuance, account settings changes, and
// proactive user notifications on critical events.
//
// The login path is the paper's main defensive chokepoint: "login time
// risk analysis ... stops the hijacker before getting into the account"
// (§8.2). Every attempt — successful or not — is logged, because several
// datasets (5, 13) are computed from login logs.
package auth

import (
	"fmt"
	"net/netip"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/risk"
	"manualhijack/internal/simtime"
)

// Config tunes the login defense.
type Config struct {
	// RiskEnabled turns login-time risk analysis on.
	RiskEnabled bool
	// ChallengeThreshold and BlockThreshold are risk-score cutoffs. Scores
	// in [ChallengeThreshold, BlockThreshold) trigger a login challenge;
	// scores at or above BlockThreshold are refused outright.
	ChallengeThreshold float64
	BlockThreshold     float64
	// NotificationsEnabled sends out-of-band notifications on critical
	// events (settings changes, blocked logins) — §8.2's "essential tool".
	NotificationsEnabled bool
}

// DefaultConfig returns the defense configuration the study runs with.
// The thresholds are deliberately permissive: the paper observes that
// manual hijackers blend in with organic traffic (§5.1) and that
// aggressive thresholds inconvenience legitimate users (§8.1), so the
// operating point admits a share of hijackers — which is precisely what
// makes the downstream exploitation measurable.
func DefaultConfig() Config {
	return Config{
		RiskEnabled:          true,
		ChallengeThreshold:   0.62,
		BlockThreshold:       0.90,
		NotificationsEnabled: true,
	}
}

// Notifier receives notification callbacks so victim agents can react
// (file a claim). The auth service logs the NotificationSent event itself;
// the notifier only schedules agent behavior.
type Notifier interface {
	Notified(acct identity.AccountID, reason string)
}

// Service is the authentication system.
type Service struct {
	dir        *identity.Directory
	clock      *simtime.Clock
	log        *logstore.Store
	analyzer   *risk.Analyzer
	challenger *challenge.Challenger
	cfg        Config
	notifier   Notifier

	sessionHook func(acct identity.AccountID, sess event.SessionID, at time.Time)
	nextSession event.SessionID
}

// NewService assembles the login service. analyzer may be nil when
// cfg.RiskEnabled is false.
func NewService(
	dir *identity.Directory,
	clock *simtime.Clock,
	log *logstore.Store,
	analyzer *risk.Analyzer,
	challenger *challenge.Challenger,
	cfg Config,
) *Service {
	if cfg.RiskEnabled && analyzer == nil {
		panic("auth: risk enabled without analyzer")
	}
	return &Service{
		dir: dir, clock: clock, log: log,
		analyzer: analyzer, challenger: challenger, cfg: cfg,
	}
}

// SetNotifier installs the notification callback (wired by the world
// assembler; optional).
func (s *Service) SetNotifier(n Notifier) { s.notifier = n }

// SetSessionHook installs a callback fired on every successful login —
// the live feed for online behavioral risk analysis.
func (s *Service) SetSessionHook(fn func(acct identity.AccountID, sess event.SessionID, at time.Time)) {
	s.sessionHook = fn
}

// Analyzer exposes the risk analyzer (for priming histories).
func (s *Service) Analyzer() *risk.Analyzer { return s.analyzer }

// LoginReq is one login attempt.
type LoginReq struct {
	Account   identity.AccountID
	Password  string
	IP        netip.Addr
	DeviceID  string
	Principal challenge.Principal
	Actor     event.Actor
	// Archetype is the attacker playbook behind a hijacker attempt, copied
	// verbatim onto the logged record as ground truth. Empty for owners.
	Archetype string
}

// LoginResult is the decision for one attempt.
type LoginResult struct {
	Outcome    event.LoginOutcome
	Session    event.SessionID // non-zero iff Outcome == LoginSuccess
	RiskScore  float64
	Challenged bool
}

// Login processes one attempt end to end: password check, 2-step
// verification, risk scoring, challenge escalation, session issuance, and
// logging.
func (s *Service) Login(req LoginReq) LoginResult {
	acct := s.dir.Get(req.Account)
	now := s.clock.Now()
	res := LoginResult{Outcome: event.LoginBlocked}
	att := risk.Attempt{
		Account: req.Account, IP: req.IP, DeviceID: req.DeviceID, At: now,
	}

	switch {
	case acct == nil:
		res.Outcome = event.LoginWrongPassword
	case acct.DisabledByAnti:
		res.Outcome = event.LoginBlocked
	case acct.HasAppPassword(req.Password):
		// Application-specific passwords serve legacy clients that cannot
		// complete a challenge or a second factor — so they bypass both,
		// which is exactly the §8.2 weakness. Risk is still scored (for
		// the log) but cannot gate the login.
		att.PasswordOK = true
		if s.analyzer != nil {
			res.RiskScore = s.analyzer.Score(att)
			s.analyzer.RecordOutcome(att, true)
		}
		s.nextSession++
		res.Session = s.nextSession
		res.Outcome = event.LoginSuccess
		acct.LastActive = now
		if s.sessionHook != nil {
			s.sessionHook(acct.ID, res.Session, now)
		}
	case acct.Password != req.Password:
		res.Outcome = event.LoginWrongPassword
		att.PasswordOK = false
		if s.analyzer != nil {
			res.RiskScore = s.analyzer.Score(att)
			s.analyzer.RecordOutcome(att, false)
		}
	default:
		att.PasswordOK = true
		res = s.admit(acct, req, att)
	}

	s.log.Append(event.Login{
		Base:       event.Base{Time: now},
		Account:    req.Account,
		IP:         req.IP,
		DeviceID:   req.DeviceID,
		PasswordOK: att.PasswordOK,
		Outcome:    res.Outcome,
		Challenged: res.Challenged,
		RiskScore:  res.RiskScore,
		Session:    res.Session,
		Actor:      req.Actor,
		Archetype:  req.Archetype,
	})
	if res.Outcome == event.LoginBlocked || res.Outcome == event.LoginChallengeFailed {
		s.notify(acct, "suspicious_login")
	}
	return res
}

// admit runs the post-password stages for a correct-password attempt.
func (s *Service) admit(acct *identity.Account, req LoginReq, att risk.Attempt) LoginResult {
	res := LoginResult{}
	if s.analyzer != nil {
		res.RiskScore = s.analyzer.Score(att)
	}

	// 2-step verification gates every login regardless of risk score.
	if acct.TwoSV {
		res.Challenged = true
		if !req.Principal.CanReceive(acct.TwoSVPhone) {
			res.Outcome = event.LoginChallengeFailed
			if s.analyzer != nil {
				s.analyzer.RecordOutcome(att, false)
			}
			return res
		}
	}

	if s.cfg.RiskEnabled && !acct.TwoSV {
		switch {
		case res.RiskScore >= s.cfg.BlockThreshold:
			res.Outcome = event.LoginBlocked
			s.analyzer.RecordOutcome(att, false)
			return res
		case res.RiskScore >= s.cfg.ChallengeThreshold:
			res.Challenged = true
			cr := s.challenger.Run(acct, req.Principal)
			if !cr.Passed {
				res.Outcome = event.LoginChallengeFailed
				s.analyzer.RecordOutcome(att, false)
				return res
			}
		}
	}

	s.nextSession++
	res.Session = s.nextSession
	res.Outcome = event.LoginSuccess
	acct.LastActive = s.clock.Now()
	if s.analyzer != nil {
		s.analyzer.RecordOutcome(att, true)
	}
	if s.sessionHook != nil {
		s.sessionHook(acct.ID, res.Session, s.clock.Now())
	}
	return res
}

// ChangePassword sets a new password and notifies the owner out of band.
func (s *Service) ChangePassword(id identity.AccountID, newPassword string, sess event.SessionID, actor event.Actor) {
	acct := s.dir.Get(id)
	if acct == nil {
		return
	}
	acct.Password = newPassword
	acct.PasswordSetAt = s.clock.Now()
	s.log.Append(event.PasswordChanged{
		Base: event.Base{Time: s.clock.Now()}, Account: id, Session: sess, Actor: actor,
	})
	s.notify(acct, "password_change")
}

// ChangeRecovery replaces a recovery option ("phone", "email", or
// "question") and notifies the owner.
func (s *Service) ChangeRecovery(id identity.AccountID, what string, phone geo.Phone, email identity.Address, sess event.SessionID, actor event.Actor) {
	acct := s.dir.Get(id)
	if acct == nil {
		return
	}
	switch what {
	case "phone":
		acct.Phone = phone
	case "email":
		acct.SecondaryEmail = email
		acct.SecondaryRecycled = false
		acct.SecondaryTypo = false
	case "question":
		acct.SecretQuestion = true
	default:
		panic(fmt.Sprintf("auth: unknown recovery option %q", what))
	}
	s.log.Append(event.RecoveryChanged{
		Base: event.Base{Time: s.clock.Now()}, Account: id, What: what,
		Session: sess, Actor: actor,
	})
	s.notify(acct, "recovery_change")
}

// Enroll2SV turns on 2-step verification with the given phone. When a
// hijacker does this with their own phone it locks the owner out — the
// short-lived 2012 retention tactic behind Figure 12.
func (s *Service) Enroll2SV(id identity.AccountID, phone geo.Phone, sess event.SessionID, actor event.Actor) {
	acct := s.dir.Get(id)
	if acct == nil {
		return
	}
	acct.TwoSV = true
	acct.TwoSVPhone = phone
	acct.LockedByPhone = actor == event.ActorHijacker
	s.log.Append(event.TwoSVEnrolled{
		Base: event.Base{Time: s.clock.Now()}, Account: id, Phone: phone,
		Session: sess, Actor: actor,
	})
	s.notify(acct, "twosv_enrolled")
}

// CreateAppPassword issues an application-specific password for a legacy
// client and returns it.
func (s *Service) CreateAppPassword(id identity.AccountID) string {
	acct := s.dir.Get(id)
	if acct == nil {
		return ""
	}
	pw := fmt.Sprintf("app-%d-%04d", id, len(acct.AppPasswords))
	acct.AppPasswords = append(acct.AppPasswords, pw)
	return pw
}

// ResetForRecovery restores owner control after a successful recovery
// claim: new password, hijacker 2SV cleared, app passwords revoked,
// anti-abuse hold lifted.
func (s *Service) ResetForRecovery(id identity.AccountID, newPassword string) {
	acct := s.dir.Get(id)
	if acct == nil {
		return
	}
	acct.Password = newPassword
	acct.PasswordSetAt = s.clock.Now()
	acct.DisabledByAnti = false
	acct.AppPasswords = nil
	if acct.LockedByPhone {
		acct.TwoSV = false
		acct.TwoSVPhone = ""
		acct.LockedByPhone = false
	}
}

// Suspend disables an account pending recovery (anti-abuse action).
func (s *Service) Suspend(id identity.AccountID) {
	if acct := s.dir.Get(id); acct != nil {
		acct.DisabledByAnti = true
	}
}

// notify emits an out-of-band notification over the best available
// channel, if notifications are enabled and a channel exists.
func (s *Service) notify(acct *identity.Account, reason string) {
	if !s.cfg.NotificationsEnabled || acct == nil {
		return
	}
	var ch event.NotificationChannel
	switch {
	case acct.Phone != "":
		ch = event.ChannelSMS
	case acct.SecondaryEmail != "" && !acct.SecondaryRecycled && !acct.SecondaryTypo:
		ch = event.ChannelEmail
	default:
		return
	}
	s.log.Append(event.NotificationSent{
		Base: event.Base{Time: s.clock.Now()}, Account: acct.ID,
		Channel: ch, Reason: reason,
	})
	if s.notifier != nil {
		s.notifier.Notified(acct.ID, reason)
	}
}
