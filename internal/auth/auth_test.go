package auth

import (
	"testing"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/risk"
	"manualhijack/internal/simtime"
)

type fixture struct {
	dir   *identity.Directory
	clock *simtime.Clock
	log   *logstore.Store
	plan  *geo.IPPlan
	svc   *Service
	rng   *randx.Rand
}

func newFixture(t *testing.T, seed int64, cfg Config) *fixture {
	t.Helper()
	clock := simtime.NewClock(simtime.Epoch)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = 50
	rng := randx.New(seed)
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	plan := geo.NewIPPlan(4)
	analyzer := risk.NewAnalyzer(plan, risk.DefaultWeights())
	ch := challenge.New(challenge.DefaultConfig(), rng.Fork("challenge"))
	svc := NewService(dir, clock, log, analyzer, ch, cfg)
	// Prime every account's history with its home country and a device.
	dir.All(func(a *identity.Account) {
		analyzer.PrimeAccount(a.ID, a.HomeCountry, deviceOf(a.ID))
	})
	return &fixture{dir: dir, clock: clock, log: log, plan: plan, svc: svc, rng: rng}
}

func deviceOf(id identity.AccountID) string { return "dev-" + string(rune('A'+id%26)) }

func ownerPrincipal(a *identity.Account) challenge.Principal {
	var phones []geo.Phone
	if a.Phone != "" {
		phones = append(phones, a.Phone)
	}
	return challenge.Principal{Phones: phones, KnowledgeSkill: 0.85}
}

func (f *fixture) ownerLogin(a *identity.Account) LoginResult {
	return f.svc.Login(LoginReq{
		Account: a.ID, Password: a.Password,
		IP:        f.plan.Addr(f.rng, a.HomeCountry),
		DeviceID:  deviceOf(a.ID),
		Principal: ownerPrincipal(a),
		Actor:     event.ActorOwner,
	})
}

func (f *fixture) hijackerLogin(a *identity.Account, from geo.Country) LoginResult {
	return f.svc.Login(LoginReq{
		Account: a.ID, Password: a.Password,
		IP:        f.plan.Addr(f.rng, from),
		DeviceID:  "hijack-box",
		Principal: challenge.Principal{KnowledgeSkill: 0.2},
		Actor:     event.ActorHijacker,
	})
}

func TestOwnerHomeLoginSucceeds(t *testing.T) {
	f := newFixture(t, 1, DefaultConfig())
	a := f.dir.Get(1)
	res := f.ownerLogin(a)
	if res.Outcome != event.LoginSuccess || res.Session == 0 {
		t.Fatalf("owner login = %+v", res)
	}
	if res.Challenged {
		t.Fatal("routine owner login should not be challenged")
	}
}

func TestWrongPassword(t *testing.T) {
	f := newFixture(t, 2, DefaultConfig())
	a := f.dir.Get(1)
	res := f.svc.Login(LoginReq{Account: a.ID, Password: "nope", IP: f.plan.Addr(f.rng, a.HomeCountry), Actor: event.ActorOwner})
	if res.Outcome != event.LoginWrongPassword || res.Session != 0 {
		t.Fatalf("wrong password = %+v", res)
	}
	logins := logstore.Select[event.Login](f.log)
	if len(logins) != 1 || logins[0].PasswordOK {
		t.Fatalf("login log = %+v", logins)
	}
}

func TestUnknownAccount(t *testing.T) {
	f := newFixture(t, 3, DefaultConfig())
	res := f.svc.Login(LoginReq{Account: 9999, Password: "x", Actor: event.ActorOwner})
	if res.Outcome != event.LoginWrongPassword {
		t.Fatalf("unknown account = %+v", res)
	}
}

func TestHijackerChallengedWithPhoneFails(t *testing.T) {
	// Force an aggressive threshold so the foreign login is challenged.
	cfg := DefaultConfig()
	cfg.ChallengeThreshold = 0.3
	f := newFixture(t, 4, cfg)
	// Find an account with a phone on file.
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" && x.HomeCountry != geo.Nigeria {
			a = x
		}
	})
	res := f.hijackerLogin(a, geo.Nigeria)
	if res.Outcome != event.LoginChallengeFailed {
		t.Fatalf("hijacker vs SMS challenge = %+v (score %.2f)", res, res.RiskScore)
	}
	if !res.Challenged {
		t.Fatal("challenge flag not set")
	}
}

func TestPermissiveThresholdAdmitsHijacker(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeThreshold = 0.99
	cfg.BlockThreshold = 1.1
	f := newFixture(t, 5, cfg)
	a := f.dir.Get(1)
	res := f.hijackerLogin(a, geo.China)
	if res.Outcome != event.LoginSuccess {
		t.Fatalf("hijacker with permissive threshold = %+v", res)
	}
	if res.RiskScore < 0.4 {
		t.Fatalf("hijacker-shaped score = %.2f, want elevated", res.RiskScore)
	}
}

func TestBlockThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChallengeThreshold = 0.1
	cfg.BlockThreshold = 0.2
	f := newFixture(t, 6, cfg)
	a := f.dir.Get(1)
	res := f.hijackerLogin(a, geo.China)
	if res.Outcome != event.LoginBlocked {
		t.Fatalf("block threshold = %+v", res)
	}
}

func TestRiskDisabled(t *testing.T) {
	cfg := Config{RiskEnabled: false}
	clock := simtime.NewClock(simtime.Epoch)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = 5
	rng := randx.New(7)
	dir := identity.NewDirectory(rng, idCfg)
	svc := NewService(dir, clock, logstore.New(), nil, nil, cfg)
	a := dir.Get(1)
	plan := geo.NewIPPlan(2)
	res := svc.Login(LoginReq{Account: a.ID, Password: a.Password, IP: plan.Addr(rng, geo.China), Actor: event.ActorHijacker})
	if res.Outcome != event.LoginSuccess {
		t.Fatalf("risk-disabled login = %+v", res)
	}
}

func TestRiskEnabledWithoutAnalyzerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewService(nil, nil, nil, nil, nil, Config{RiskEnabled: true})
}

func TestTwoSVGatesHijacker(t *testing.T) {
	f := newFixture(t, 8, DefaultConfig())
	a := f.dir.Get(1)
	f.svc.Enroll2SV(a.ID, "+15550001111", 1, event.ActorOwner)
	res := f.hijackerLogin(a, geo.Malaysia)
	if res.Outcome != event.LoginChallengeFailed {
		t.Fatalf("2SV vs hijacker = %+v", res)
	}
	// The owner with the phone passes.
	res = f.svc.Login(LoginReq{
		Account: a.ID, Password: a.Password,
		IP: f.plan.Addr(f.rng, a.HomeCountry), DeviceID: deviceOf(a.ID),
		Principal: challenge.Principal{Phones: []geo.Phone{"+15550001111"}},
		Actor:     event.ActorOwner,
	})
	if res.Outcome != event.LoginSuccess || !res.Challenged {
		t.Fatalf("2SV owner = %+v", res)
	}
}

func TestHijackerTwoSVLockout(t *testing.T) {
	f := newFixture(t, 9, DefaultConfig())
	a := f.dir.Get(1)
	crewPhone := geo.NewPhone(f.rng, geo.Nigeria)
	f.svc.Enroll2SV(a.ID, crewPhone, 1, event.ActorHijacker)
	if !a.LockedByPhone {
		t.Fatal("hijacker 2SV should mark LockedByPhone")
	}
	// Owner locked out.
	if res := f.ownerLogin(a); res.Outcome != event.LoginChallengeFailed {
		t.Fatalf("locked-out owner = %+v", res)
	}
	// Recovery reset clears the lockout.
	f.svc.ResetForRecovery(a.ID, "new-password")
	a2 := f.dir.Get(1)
	if a2.TwoSV || a2.LockedByPhone {
		t.Fatal("2SV lockout survived recovery reset")
	}
	res := f.svc.Login(LoginReq{
		Account: a.ID, Password: "new-password",
		IP: f.plan.Addr(f.rng, a.HomeCountry), DeviceID: deviceOf(a.ID),
		Principal: ownerPrincipal(a), Actor: event.ActorOwner,
	})
	if res.Outcome != event.LoginSuccess {
		t.Fatalf("post-recovery owner login = %+v", res)
	}
}

func TestSuspendBlocks(t *testing.T) {
	f := newFixture(t, 10, DefaultConfig())
	a := f.dir.Get(1)
	f.svc.Suspend(a.ID)
	if res := f.ownerLogin(a); res.Outcome != event.LoginBlocked {
		t.Fatalf("suspended login = %+v", res)
	}
	f.svc.ResetForRecovery(a.ID, a.Password)
	if res := f.ownerLogin(a); res.Outcome != event.LoginSuccess {
		t.Fatalf("post-reset login = %+v", res)
	}
}

func TestSettingsChangesLogAndNotify(t *testing.T) {
	f := newFixture(t, 11, DefaultConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	f.svc.ChangePassword(a.ID, "hijacked", 7, event.ActorHijacker)
	if a.Password != "hijacked" {
		t.Fatal("password not changed")
	}
	f.svc.ChangeRecovery(a.ID, "email", "", "evil@doppel.test", 7, event.ActorHijacker)
	if a.SecondaryEmail != "evil@doppel.test" {
		t.Fatal("recovery email not changed")
	}

	if n := len(logstore.Select[event.PasswordChanged](f.log)); n != 1 {
		t.Fatalf("password events = %d", n)
	}
	if n := len(logstore.Select[event.RecoveryChanged](f.log)); n != 1 {
		t.Fatalf("recovery events = %d", n)
	}
	notes := logstore.Select[event.NotificationSent](f.log)
	if len(notes) != 2 {
		t.Fatalf("notifications = %d, want 2 (password + recovery)", len(notes))
	}
	if notes[0].Channel != event.ChannelSMS {
		t.Fatalf("channel = %s, want sms when phone on file", notes[0].Channel)
	}
}

func TestNotifierCallback(t *testing.T) {
	f := newFixture(t, 12, DefaultConfig())
	var got []string
	f.svc.SetNotifier(notifierFunc(func(id identity.AccountID, reason string) {
		got = append(got, reason)
	}))
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	f.svc.ChangePassword(a.ID, "x", 1, event.ActorHijacker)
	if len(got) != 1 || got[0] != "password_change" {
		t.Fatalf("notifier calls = %v", got)
	}
}

type notifierFunc func(identity.AccountID, string)

func (f notifierFunc) Notified(id identity.AccountID, reason string) { f(id, reason) }

func TestNotificationsDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NotificationsEnabled = false
	f := newFixture(t, 13, cfg)
	a := f.dir.Get(1)
	f.svc.ChangePassword(a.ID, "x", 1, event.ActorHijacker)
	if n := len(logstore.Select[event.NotificationSent](f.log)); n != 0 {
		t.Fatalf("notifications sent while disabled: %d", n)
	}
}

func TestNoChannelNoNotification(t *testing.T) {
	f := newFixture(t, 14, DefaultConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone == "" && x.SecondaryEmail == "" {
			a = x
		}
	})
	if a == nil {
		t.Skip("no channel-less account in fixture")
	}
	f.svc.ChangePassword(a.ID, "x", 1, event.ActorHijacker)
	if n := len(logstore.Select[event.NotificationSent](f.log)); n != 0 {
		t.Fatalf("notification sent without a channel: %d", n)
	}
}

func TestSessionIDsMonotonic(t *testing.T) {
	f := newFixture(t, 15, DefaultConfig())
	var last event.SessionID
	for i := 1; i <= 5; i++ {
		a := f.dir.Get(identity.AccountID(i))
		res := f.ownerLogin(a)
		if res.Outcome != event.LoginSuccess {
			continue
		}
		if res.Session <= last {
			t.Fatalf("session IDs not monotonic: %d after %d", res.Session, last)
		}
		last = res.Session
		f.clock.Advance(time.Minute)
	}
	if last == 0 {
		t.Fatal("no successful logins in fixture")
	}
}

func TestAppPasswordBypasses2SV(t *testing.T) {
	f := newFixture(t, 16, DefaultConfig())
	a := f.dir.Get(1)
	f.svc.Enroll2SV(a.ID, "+15550001111", 1, event.ActorOwner)
	appPw := f.svc.CreateAppPassword(a.ID)
	if appPw == "" {
		t.Fatal("no app password issued")
	}
	// A hijacker who phished the app password gets in despite 2SV and a
	// foreign, challenge-worthy login — the §8.2 weakness.
	res := f.svc.Login(LoginReq{
		Account: a.ID, Password: appPw,
		IP: f.plan.Addr(f.rng, geo.Nigeria), DeviceID: "hijack-box",
		Principal: challenge.Principal{KnowledgeSkill: 0.2},
		Actor:     event.ActorHijacker,
	})
	if res.Outcome != event.LoginSuccess {
		t.Fatalf("app-password login = %+v, want success (bypass)", res)
	}
	if res.Challenged {
		t.Fatal("legacy clients cannot be challenged")
	}
	// Recovery revokes app passwords.
	f.svc.ResetForRecovery(a.ID, "fresh")
	res = f.svc.Login(LoginReq{Account: a.ID, Password: appPw, IP: f.plan.Addr(f.rng, geo.Nigeria), Actor: event.ActorHijacker})
	if res.Outcome != event.LoginWrongPassword {
		t.Fatalf("revoked app password still works: %+v", res)
	}
}

func TestAppPasswordUnknownAccount(t *testing.T) {
	f := newFixture(t, 17, DefaultConfig())
	if pw := f.svc.CreateAppPassword(9999); pw != "" {
		t.Fatal("app password for unknown account")
	}
}
