// Package behavior implements post-login behavioral risk analysis — the
// detector §5.2 proposes: "an approach that models manual hijacker initial
// activity on hijacked accounts and compares a logged-in user's activity to
// this model in order to flag those that exhibit excessive similarity to
// hijacker activity."
//
// The paper also warns (§8.2) that behavioral detection is a last resort:
// by the time it fires the hijacker has already seen data. The detector
// therefore records *when* in the session it fired, so the evaluation can
// report exposure time alongside precision/recall, and the
// window-ablation benchmark can quantify the fire-fast/fire-accurately
// trade-off.
package behavior

import (
	"strings"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/mail"
)

// ActionType is one kind of in-session action.
type ActionType string

// Action types observed by the detector.
const (
	ActionSearch       ActionType = "search"
	ActionFolderOpen   ActionType = "folder_open"
	ActionContactsView ActionType = "contacts_view"
	ActionFilterCreate ActionType = "filter_create"
	ActionReplyToSet   ActionType = "replyto_set"
	ActionSend         ActionType = "send"
	ActionMassDelete   ActionType = "mass_delete"
)

// Action is one observable in-session action.
type Action struct {
	Type       ActionType
	Query      string       // for ActionSearch
	Folder     event.Folder // for ActionFolderOpen
	Recipients int          // for ActionSend
	ForwardOut bool         // for ActionFilterCreate
	At         time.Time
}

// Weights assigns playbook-similarity increments per action pattern. Each
// weight reflects how characteristic the pattern is of the manual-hijacker
// playbook relative to organic use.
type Weights struct {
	FinanceSearch    float64 // searching for financial keywords (Table 3)
	CredentialSearch float64
	SignificantOpen  float64 // opening Starred/Drafts right after login
	ContactsView     float64
	ForwardFilter    float64 // filter that forwards mail out
	ReplyToSet       float64
	MassSend         float64 // one message to many recipients
	MassDelete       float64
}

// DefaultWeights is the tuned model.
func DefaultWeights() Weights {
	return Weights{
		FinanceSearch:    0.28,
		CredentialSearch: 0.18,
		SignificantOpen:  0.10,
		ContactsView:     0.12,
		ForwardFilter:    0.35,
		ReplyToSet:       0.40,
		MassSend:         0.40,
		MassDelete:       0.45,
	}
}

// Config tunes the detector.
type Config struct {
	Weights Weights
	// Threshold is the cumulative score at which a session is flagged.
	Threshold float64
	// MassSendRecipients is the distinct-recipient count that makes one
	// send "mass" (the paper: recipients jumped 630% on hijack days).
	MassSendRecipients int
	// Window limits how much of the session the detector watches; actions
	// after the window no longer change the score. Zero = unlimited. The
	// ablation benchmark sweeps this.
	Window time.Duration
}

// DefaultConfig returns the production operating point.
func DefaultConfig() Config {
	return Config{
		Weights:            DefaultWeights(),
		Threshold:          0.75,
		MassSendRecipients: 20,
	}
}

// Verdict reports the state of a session after an observation.
type Verdict struct {
	Score      float64
	Flagged    bool // true the moment the threshold is crossed
	FlaggedNow bool // true only on the crossing observation
}

// Detector scores live sessions against the hijacker playbook.
type Detector struct {
	cfg      Config
	sessions map[event.SessionID]*sessionState
}

type sessionState struct {
	start     time.Time
	score     float64
	flaggedAt time.Time
	flagged   bool
	searches  int
}

// NewDetector returns a detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg, sessions: make(map[event.SessionID]*sessionState)}
}

// Begin registers a new session at its login time.
func (d *Detector) Begin(sess event.SessionID, at time.Time) {
	d.sessions[sess] = &sessionState{start: at}
}

// Observe scores one action. Unknown sessions are ignored (zero Verdict):
// the detector only watches sessions it saw begin.
func (d *Detector) Observe(sess event.SessionID, a Action) Verdict {
	st := d.sessions[sess]
	if st == nil {
		return Verdict{}
	}
	if d.cfg.Window > 0 && a.At.Sub(st.start) > d.cfg.Window {
		return Verdict{Score: st.score, Flagged: st.flagged}
	}
	w := d.cfg.Weights
	switch a.Type {
	case ActionSearch:
		st.searches++
		switch {
		case matchesAny(a.Query, mail.FinanceKeywords):
			st.score += w.FinanceSearch
		case matchesAny(a.Query, mail.CredentialKeywords):
			st.score += w.CredentialSearch
		}
	case ActionFolderOpen:
		if a.Folder == event.FolderStarred || a.Folder == event.FolderDrafts {
			st.score += w.SignificantOpen
		}
	case ActionContactsView:
		st.score += w.ContactsView
	case ActionFilterCreate:
		if a.ForwardOut {
			st.score += w.ForwardFilter
		} else {
			st.score += w.ForwardFilter / 2
		}
	case ActionReplyToSet:
		st.score += w.ReplyToSet
	case ActionSend:
		if a.Recipients >= d.cfg.MassSendRecipients {
			st.score += w.MassSend
		}
	case ActionMassDelete:
		st.score += w.MassDelete
	}

	v := Verdict{Score: st.score, Flagged: st.flagged}
	if !st.flagged && st.score >= d.cfg.Threshold {
		st.flagged = true
		st.flaggedAt = a.At
		v.Flagged = true
		v.FlaggedNow = true
	}
	return v
}

// FlaggedAt returns when the session was flagged, if it was.
func (d *Detector) FlaggedAt(sess event.SessionID) (time.Time, bool) {
	st := d.sessions[sess]
	if st == nil || !st.flagged {
		return time.Time{}, false
	}
	return st.flaggedAt, true
}

// Score returns a session's current similarity score.
func (d *Detector) Score(sess event.SessionID) float64 {
	if st := d.sessions[sess]; st != nil {
		return st.score
	}
	return 0
}

// ExposureTime returns how long the session ran before being flagged — the
// data-exposure window §8.2 worries about.
func (d *Detector) ExposureTime(sess event.SessionID) (time.Duration, bool) {
	st := d.sessions[sess]
	if st == nil || !st.flagged {
		return 0, false
	}
	return st.flaggedAt.Sub(st.start), true
}

func matchesAny(query string, lexicon []string) bool {
	q := strings.ToLower(query)
	for _, k := range lexicon {
		lk := strings.ToLower(k)
		if strings.Contains(q, lk) || strings.Contains(lk, q) && q != "" {
			return true
		}
	}
	return false
}
