package behavior

import (
	"testing"
	"time"

	"manualhijack/internal/event"
)

var t0 = time.Date(2012, 11, 5, 9, 0, 0, 0, time.UTC)

func TestHijackerPlaybookFlagged(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(1, t0)
	// The canonical assessment sequence from §5.2.
	steps := []Action{
		{Type: ActionSearch, Query: "wire transfer", At: t0.Add(30 * time.Second)},
		{Type: ActionFolderOpen, Folder: event.FolderStarred, At: t0.Add(60 * time.Second)},
		{Type: ActionContactsView, At: t0.Add(90 * time.Second)},
		{Type: ActionSearch, Query: "bank", At: t0.Add(2 * time.Minute)},
	}
	var v Verdict
	for _, a := range steps {
		v = d.Observe(1, a)
	}
	if !v.Flagged {
		t.Fatalf("assessment playbook not flagged: score %.2f", v.Score)
	}
	exp, ok := d.ExposureTime(1)
	if !ok || exp <= 0 || exp > 3*time.Minute {
		t.Fatalf("exposure = %v ok=%v", exp, ok)
	}
}

func TestOrganicSessionNotFlagged(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(2, t0)
	steps := []Action{
		{Type: ActionSearch, Query: "lunch", At: t0.Add(time.Minute)},
		{Type: ActionFolderOpen, Folder: event.FolderInbox, At: t0.Add(2 * time.Minute)},
		{Type: ActionSend, Recipients: 2, At: t0.Add(3 * time.Minute)},
	}
	var v Verdict
	for _, a := range steps {
		v = d.Observe(2, a)
	}
	if v.Flagged {
		t.Fatalf("organic session flagged at score %.2f", v.Score)
	}
}

func TestMassSendThreshold(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(3, t0)
	v := d.Observe(3, Action{Type: ActionSend, Recipients: 19, At: t0})
	if v.Score != 0 {
		t.Fatalf("19 recipients scored %.2f", v.Score)
	}
	v = d.Observe(3, Action{Type: ActionSend, Recipients: 20, At: t0})
	if v.Score == 0 {
		t.Fatal("20 recipients did not score")
	}
}

func TestRetentionTacticsScoreHeavily(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(4, t0)
	d.Observe(4, Action{Type: ActionReplyToSet, At: t0.Add(time.Minute)})
	v := d.Observe(4, Action{Type: ActionFilterCreate, ForwardOut: true, At: t0.Add(2 * time.Minute)})
	if !v.Flagged || !v.FlaggedNow {
		t.Fatalf("retention tactics not flagged: %.2f", v.Score)
	}
	// FlaggedNow only fires once.
	v = d.Observe(4, Action{Type: ActionMassDelete, At: t0.Add(3 * time.Minute)})
	if v.FlaggedNow {
		t.Fatal("FlaggedNow repeated")
	}
	if !v.Flagged {
		t.Fatal("Flagged state lost")
	}
}

func TestWindowLimitsScoring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 2 * time.Minute
	d := NewDetector(cfg)
	d.Begin(5, t0)
	d.Observe(5, Action{Type: ActionSearch, Query: "wire transfer", At: t0.Add(time.Minute)})
	before := d.Score(5)
	// Past the window: no more scoring.
	d.Observe(5, Action{Type: ActionMassDelete, At: t0.Add(10 * time.Minute)})
	if d.Score(5) != before {
		t.Fatal("action past window changed the score")
	}
}

func TestUnknownSessionIgnored(t *testing.T) {
	d := NewDetector(DefaultConfig())
	v := d.Observe(99, Action{Type: ActionMassDelete, At: t0})
	if v.Score != 0 || v.Flagged {
		t.Fatalf("unknown session verdict = %+v", v)
	}
	if _, ok := d.FlaggedAt(99); ok {
		t.Fatal("unknown session flagged")
	}
	if _, ok := d.ExposureTime(99); ok {
		t.Fatal("unknown session has exposure")
	}
}

func TestCredentialSearchScoresLessThanFinance(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(6, t0)
	d.Begin(7, t0)
	vFin := d.Observe(6, Action{Type: ActionSearch, Query: "bank transfer", At: t0})
	vCred := d.Observe(7, Action{Type: ActionSearch, Query: "paypal", At: t0})
	if vFin.Score <= vCred.Score {
		t.Fatalf("finance %.2f should exceed credential %.2f", vFin.Score, vCred.Score)
	}
}

func TestChineseFinanceTermMatches(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.Begin(8, t0)
	v := d.Observe(8, Action{Type: ActionSearch, Query: "账单", At: t0})
	if v.Score == 0 {
		t.Fatal("Chinese finance term not matched")
	}
}
