// Package challenge implements the login challenge (§8.2): when risk
// analysis deems a login suspicious, the principal must prove ownership
// before entering the account. The provider prefers proof of phone
// possession (SMS code) over knowledge questions, because a hijacker "may
// just guess [answers] by researching the user's background" while phone
// possession is hard to fake.
package challenge

import (
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

// Method is a challenge type.
type Method string

// Challenge methods.
const (
	MethodSMS       Method = "sms"
	MethodKnowledge Method = "knowledge"
	MethodNone      Method = "none" // no challenge available → admit
)

// Principal models who is attempting the login, with the capabilities that
// decide challenge outcomes. It carries no identity — only capabilities —
// so the challenger cannot cheat by reading ground truth.
type Principal struct {
	// Phones the principal can receive SMS on.
	Phones []geo.Phone
	// KnowledgeSkill is the probability of answering the account's secret
	// question: high for owners (imperfect recall), low-but-nonzero for
	// hijackers (guessable answers, per Schechter et al.).
	KnowledgeSkill float64
}

// CanReceive reports whether the principal controls the given phone.
func (p Principal) CanReceive(phone geo.Phone) bool {
	for _, ph := range p.Phones {
		if ph == phone {
			return true
		}
	}
	return false
}

// Config tunes the challenge flows.
type Config struct {
	// SMSGatewayReliability is the chance an SMS code arrives (the paper
	// traces SMS failures to unreliable gateways in some countries).
	SMSGatewayReliability float64
	// OwnerSMSCompletion is the chance a principal who received the code
	// types it correctly.
	OwnerSMSCompletion float64
}

// DefaultConfig returns production-tuned challenge parameters.
func DefaultConfig() Config {
	return Config{
		SMSGatewayReliability: 0.96,
		OwnerSMSCompletion:    0.98,
	}
}

// Challenger runs login challenges.
//
// Concurrency contract: a Challenger is confined to a single goroutine —
// Run draws from an unsynchronized random stream. Run also reads the
// account's recovery fields (Phone, SecretQuestion) through the pointer it
// is handed, so the caller must guarantee no concurrent writer to those
// fields for the duration of the call. The serving layer satisfies both by
// giving every account shard its own Challenger (forked rng) and invoking
// it only inside the shard's critical section, on accounts that are
// immutable after bootstrap.
type Challenger struct {
	cfg Config
	rng *randx.Rand
}

// New returns a challenger with its own random stream.
func New(cfg Config, rng *randx.Rand) *Challenger {
	return &Challenger{cfg: cfg, rng: rng}
}

// Result is the outcome of one challenge.
type Result struct {
	Method Method
	Passed bool
}

// MethodFor returns the challenge method the provider would use for the
// account. Preference order: SMS to the enrolled phone, then knowledge
// questions, then (no options on file) none — the paper notes the provider
// cannot challenge what it cannot verify, which is why it pushes users to
// register a phone. Method selection is deterministic; only the outcome of
// running the challenge is stochastic.
func MethodFor(acct *identity.Account) Method {
	switch {
	case acct.Phone != "":
		return MethodSMS
	case acct.SecretQuestion:
		return MethodKnowledge
	default:
		return MethodNone
	}
}

// Run challenges the principal for the account using the method MethodFor
// selects; a MethodNone challenge admits.
func (c *Challenger) Run(acct *identity.Account, p Principal) Result {
	switch MethodFor(acct) {
	case MethodSMS:
		passed := p.CanReceive(acct.Phone) &&
			c.rng.Bool(c.cfg.SMSGatewayReliability) &&
			c.rng.Bool(c.cfg.OwnerSMSCompletion)
		return Result{Method: MethodSMS, Passed: passed}
	case MethodKnowledge:
		return Result{Method: MethodKnowledge, Passed: c.rng.Bool(p.KnowledgeSkill)}
	default:
		return Result{Method: MethodNone, Passed: true}
	}
}
