// Package challenge implements the login challenge (§8.2): when risk
// analysis deems a login suspicious, the principal must prove ownership
// before entering the account. The provider prefers proof of phone
// possession (SMS code) over knowledge questions, because a hijacker "may
// just guess [answers] by researching the user's background" while phone
// possession is hard to fake.
package challenge

import (
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

// Method is a challenge type.
type Method string

// Challenge methods.
const (
	MethodSMS       Method = "sms"
	MethodKnowledge Method = "knowledge"
	MethodNone      Method = "none" // no challenge available → admit
)

// Principal models who is attempting the login, with the capabilities that
// decide challenge outcomes. It carries no identity — only capabilities —
// so the challenger cannot cheat by reading ground truth.
type Principal struct {
	// Phones the principal can receive SMS on.
	Phones []geo.Phone
	// KnowledgeSkill is the probability of answering the account's secret
	// question: high for owners (imperfect recall), low-but-nonzero for
	// hijackers (guessable answers, per Schechter et al.).
	KnowledgeSkill float64
}

// CanReceive reports whether the principal controls the given phone.
func (p Principal) CanReceive(phone geo.Phone) bool {
	for _, ph := range p.Phones {
		if ph == phone {
			return true
		}
	}
	return false
}

// Config tunes the challenge flows.
type Config struct {
	// SMSGatewayReliability is the chance an SMS code arrives (the paper
	// traces SMS failures to unreliable gateways in some countries).
	SMSGatewayReliability float64
	// OwnerSMSCompletion is the chance a principal who received the code
	// types it correctly.
	OwnerSMSCompletion float64
}

// DefaultConfig returns production-tuned challenge parameters.
func DefaultConfig() Config {
	return Config{
		SMSGatewayReliability: 0.96,
		OwnerSMSCompletion:    0.98,
	}
}

// Challenger runs login challenges.
type Challenger struct {
	cfg Config
	rng *randx.Rand
}

// New returns a challenger with its own random stream.
func New(cfg Config, rng *randx.Rand) *Challenger {
	return &Challenger{cfg: cfg, rng: rng}
}

// Result is the outcome of one challenge.
type Result struct {
	Method Method
	Passed bool
}

// Run challenges the principal for the account. Preference order: SMS to
// the enrolled phone, then knowledge questions, then (no options on file)
// admit — the paper notes the provider cannot challenge what it cannot
// verify, which is why it pushes users to register a phone.
func (c *Challenger) Run(acct *identity.Account, p Principal) Result {
	if acct.Phone != "" {
		passed := p.CanReceive(acct.Phone) &&
			c.rng.Bool(c.cfg.SMSGatewayReliability) &&
			c.rng.Bool(c.cfg.OwnerSMSCompletion)
		return Result{Method: MethodSMS, Passed: passed}
	}
	if acct.SecretQuestion {
		return Result{Method: MethodKnowledge, Passed: c.rng.Bool(p.KnowledgeSkill)}
	}
	return Result{Method: MethodNone, Passed: true}
}
