package challenge

import (
	"testing"

	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

func newChallenger(seed int64) *Challenger {
	return New(DefaultConfig(), randx.New(seed))
}

func TestSMSPreferredWhenPhoneOnFile(t *testing.T) {
	c := newChallenger(1)
	acct := &identity.Account{Phone: "+15550001111", SecretQuestion: true}
	res := c.Run(acct, Principal{Phones: []geo.Phone{"+15550001111"}})
	if res.Method != MethodSMS {
		t.Fatalf("method = %s, want sms even when a question exists", res.Method)
	}
}

func TestOwnerPassesSMSMostly(t *testing.T) {
	c := newChallenger(2)
	acct := &identity.Account{Phone: "+15550001111"}
	owner := Principal{Phones: []geo.Phone{"+15550001111"}, KnowledgeSkill: 0.85}
	pass := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if c.Run(acct, owner).Passed {
			pass++
		}
	}
	rate := float64(pass) / n
	// 0.96 gateway * 0.98 completion ≈ 0.94.
	if rate < 0.91 || rate > 0.97 {
		t.Fatalf("owner SMS pass rate = %.3f", rate)
	}
}

func TestHijackerAlwaysFailsSMS(t *testing.T) {
	c := newChallenger(3)
	acct := &identity.Account{Phone: "+15550001111"}
	hijacker := Principal{Phones: []geo.Phone{"+2348000000000"}, KnowledgeSkill: 0.2}
	for i := 0; i < 1000; i++ {
		if c.Run(acct, hijacker).Passed {
			t.Fatal("hijacker passed an SMS challenge without the phone")
		}
	}
}

func TestKnowledgeFallback(t *testing.T) {
	c := newChallenger(4)
	acct := &identity.Account{SecretQuestion: true}
	hijacker := Principal{KnowledgeSkill: 0.2}
	pass := 0
	const n = 5000
	for i := 0; i < n; i++ {
		res := c.Run(acct, hijacker)
		if res.Method != MethodKnowledge {
			t.Fatalf("method = %s, want knowledge", res.Method)
		}
		if res.Passed {
			pass++
		}
	}
	rate := float64(pass) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("hijacker guess rate = %.3f, want ~0.20", rate)
	}
}

func TestNoOptionsAdmits(t *testing.T) {
	c := newChallenger(5)
	acct := &identity.Account{}
	res := c.Run(acct, Principal{})
	if res.Method != MethodNone || !res.Passed {
		t.Fatalf("no-option challenge = %+v, want admit", res)
	}
}

func TestCanReceive(t *testing.T) {
	p := Principal{Phones: []geo.Phone{"+1a", "+2b"}}
	if !p.CanReceive("+2b") || p.CanReceive("+3c") {
		t.Fatal("CanReceive wrong")
	}
}
