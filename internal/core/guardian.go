package core

import (
	"time"

	"manualhijack/internal/behavior"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/mail"
)

// Guardian runs the post-login behavioral detector *online*: it watches
// the live session feed and, when a session's playbook-similarity score
// crosses the threshold, suspends the account — the paper's "account was
// disabled by our anti-abuse systems to prevent further damage" (§6.1).
//
// §8.2 frames behavioral detection as a last resort (the hijacker has
// already seen data by the time it fires); the guardian makes the residual
// value measurable: suspension blocks further logins and accelerates the
// victim toward recovery, cutting the scam window.
type Guardian struct {
	det  *behavior.Detector
	w    *World
	ids  map[event.SessionID]identity.AccountID
	done map[identity.AccountID]bool

	// Suspended counts accounts the guardian disabled.
	Suspended int
}

// newGuardian wires the detector into the world's auth and mail feeds.
func newGuardian(w *World, cfg behavior.Config) *Guardian {
	g := &Guardian{
		det:  behavior.NewDetector(cfg),
		w:    w,
		ids:  make(map[event.SessionID]identity.AccountID),
		done: make(map[identity.AccountID]bool),
	}
	w.Auth.SetSessionHook(func(acct identity.AccountID, sess event.SessionID, at time.Time) {
		g.det.Begin(sess, at)
		g.ids[sess] = acct
	})
	w.Mail.SetActionHook(func(acct identity.AccountID, sess event.SessionID, a mail.ActionInfo) {
		g.observe(acct, sess, a)
	})
	return g
}

// observe feeds one action and suspends on a fresh flag.
func (g *Guardian) observe(acct identity.AccountID, sess event.SessionID, a mail.ActionInfo) {
	action := behavior.Action{At: g.w.Clock.Now()}
	switch a.Type {
	case "search":
		action.Type = behavior.ActionSearch
		action.Query = a.Query
	case "folder_open":
		action.Type = behavior.ActionFolderOpen
		action.Folder = a.Folder
	case "contacts_view":
		action.Type = behavior.ActionContactsView
	case "filter_create":
		action.Type = behavior.ActionFilterCreate
		action.ForwardOut = a.ForwardOut
	case "replyto_set":
		action.Type = behavior.ActionReplyToSet
	case "send":
		action.Type = behavior.ActionSend
		action.Recipients = a.Recipients
	case "mass_delete":
		action.Type = behavior.ActionMassDelete
	default:
		return
	}
	v := g.det.Observe(sess, action)
	if !v.FlaggedNow || g.done[acct] {
		return
	}
	g.done[acct] = true
	g.Suspended++
	g.w.Auth.Suspend(acct)
}
