package core

import (
	"reflect"
	"testing"

	"manualhijack/internal/event"
)

// TestMergeableMatchesSequential is the unit-level half of the segmented
// parity guarantee: for every registry builder that implements
// MergeableAnalysis, folding the log as per-partition shards merged in
// order must produce exactly the report a single sequential fold produces
// — DeepEqual, field for field. The partition layout is deliberately
// ragged (a 1-record chunk, an empty chunk, uneven tails) to poke the
// dedup-replay and map-union paths. It also pins the capability
// inventory, so converting or unconverting an entry is a visible choice.
func TestMergeableMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test runs a world")
	}
	for _, seed := range []int64{1, 2} {
		sc := StudyConfig{Seed: seed, Scale: 0.04, DecoyN: 60,
			// Tagged archetype traffic in the stream keeps the scorecard
			// builder's merge parity non-vacuous.
			Archetypes: []ArchetypeSpec{
				{Archetype: "smashgrab", Count: 1},
				{Archetype: "stuffer", Count: 1},
			},
		}
		w := sc.world2012()
		in := worldInput(w, sc.Scale)

		var events []event.Event
		in.Log.Scan(func(e event.Event) { events = append(events, e) })
		n := len(events)
		if n < 100 {
			t.Fatalf("seed %d: world produced only %d events", seed, n)
		}
		cuts := []int{0, 1, n / 7, n / 3, n / 3, n / 2, 2 * n / 3, n - 1, n}

		mergeableN, orderedN := 0, 0
		for _, a := range Registry() {
			// Every builder sees the same 2012 event stream regardless of
			// its era: the Merge contract is a property of the builder, not
			// of which world feeds it.
			seq := a.Stream(in)
			if _, ok := seq.(MergeableAnalysis); !ok {
				orderedN++
				continue
			}
			mergeableN++

			seqR := &StudyReport{}
			for _, e := range events {
				seq.Observe(e)
			}
			seq.Finalize(seqR)

			merged := a.Stream(in).(MergeableAnalysis)
			for i := 1; i < len(cuts); i++ {
				shard := merged.NewShard()
				for _, e := range events[cuts[i-1]:cuts[i]] {
					shard.Observe(e)
				}
				merged.Merge(shard)
			}
			mergedR := &StudyReport{}
			merged.Finalize(mergedR)

			if !reflect.DeepEqual(seqR, mergedR) {
				t.Errorf("seed %d: %s: sharded fold diverged from sequential", seed, a.Name)
			}
		}
		if mergeableN != 23 || orderedN != 5 {
			t.Fatalf("capability inventory moved: %d mergeable + %d ordered (want 23 + 5) — update the docs and this pin together",
				mergeableN, orderedN)
		}
	}
}
