package core

import (
	"runtime"
	"sync"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/behavior"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
)

// The analysis registry is the single list of every study analysis.
// RunStudy iterates it with era-appropriate world inputs, and cmd/analyze
// iterates it over a single dumped log — one source of truth, so the
// in-process and offline pipelines cannot drift.

// Era identifies which observation-window world an analysis draws from in
// the full study (Table 1's datasets come from different time windows).
type Era int

const (
	Era2011 Era = iota // October–December 2011: retention baseline, contact risk
	Era2012            // November 2012: most datasets, decoys, Forms pages
	Era2013            // February 2013: recovery claims
	Era2014            // January 2014: attribution, curated phishing review
	EraBase            // low-intensity world calibrated to the paper's base rates
	eraCount
)

func (e Era) String() string {
	switch e {
	case Era2011:
		return "2011"
	case Era2012:
		return "2012"
	case Era2013:
		return "2013"
	case Era2014:
		return "2014"
	case EraBase:
		return "base"
	}
	return "?"
}

// AnalysisInput is everything a registry analysis may read. Log is always
// set. Start/End bound the observation window — offline loads take them
// from the dump header, because the first record's timestamp is not the
// window start. Plan is the synthetic IP plan (deterministic, so offline
// callers reconstruct it with DefaultIPPlan). Dir is the live account
// directory; it is nil for offline replay, which disables the NeedsDir
// analyses — population state never reaches the event log.
type AnalysisInput struct {
	Log   *logstore.Store
	Start time.Time
	End   time.Time
	Plan  *geo.IPPlan
	Dir   *identity.Directory
	// Scale is the study's sample-size scale; 0 means 1.0.
	Scale float64
}

// Analysis is one registry entry: a named computation that reads an
// AnalysisInput and writes exactly one StudyReport field — the property
// that makes the fan-out deterministic at any parallelism.
type Analysis struct {
	Name string
	Era  Era
	// NeedsDir marks analyses that consult the live directory (contact
	// graphs, secondary-email state, activity). They are skipped when
	// replaying a dumped log, where only events survive.
	NeedsDir bool
	// Run computes the analysis against the whole log. Every current entry
	// is builder-form (Run nil, Stream set); the field remains for future
	// analyses that genuinely need whole-log random access.
	Run func(in AnalysisInput, r *StudyReport)
	// Stream returns the analysis's incremental builder. On a segmented
	// (spilled-to-disk) log, every Stream-capable analysis of an era is
	// fed from ONE ordered scan — each segment is decoded once per pass
	// instead of once per analysis — and finalized into its report field.
	// Builders that additionally implement MergeableAnalysis are folded
	// as one shard per segment on a worker pool and merged back in
	// segment order, so the single decode pass also stops serializing the
	// fold.
	Stream func(in AnalysisInput) StreamAnalysis
}

// StreamAnalysis is one analysis in builder form: events are folded in one
// at a time (in log order) and the result is written to its report field
// at the end. Builders are single-goroutine; the runner serializes feeds.
type StreamAnalysis interface {
	Observe(e event.Event)
	Finalize(r *StudyReport)
}

// MergeableAnalysis is an optional capability on StreamAnalysis: an
// analysis whose fold is partitionable. NewShard returns a fresh builder
// with the same configuration; Merge folds a shard that observed a later,
// contiguous partition of the log into the receiver. The contract is
// exact, not approximate: merging per-partition shards in log order must
// reproduce the very state a single sequential pass builds — slice
// orders, dedup winners, and float summation order included — which is
// what keeps segmented study reports byte-identical to monolithic ones.
// Order-sensitive builders (live session state machines, cross-segment
// page joins, first-hit anchored series) simply do not implement it and
// stay on the ordered scan.
type MergeableAnalysis interface {
	StreamAnalysis
	NewShard() MergeableAnalysis
	Merge(shard MergeableAnalysis)
}

// streamed packages a builder's observe/finalize pair as a StreamAnalysis.
type streamed struct {
	observe  func(event.Event)
	finalize func(*StudyReport)
}

func (s streamed) Observe(e event.Event)   { s.observe(e) }
func (s streamed) Finalize(r *StudyReport) { s.finalize(r) }

// merged adapts a concrete builder type carrying a typed Merge method into
// a MergeableAnalysis: the registry entry supplies the constructor
// (capturing the builder's configuration, so shards are configured
// identically) and the finalizer; the adapter wires NewShard and Merge
// through the builder's own Merge.
type merged[B interface {
	Observe(event.Event)
	Merge(B)
}] struct {
	b        B
	newB     func() B
	finalize func(B, *StudyReport)
}

func (m merged[B]) Observe(e event.Event)   { m.b.Observe(e) }
func (m merged[B]) Finalize(r *StudyReport) { m.finalize(m.b, r) }
func (m merged[B]) NewShard() MergeableAnalysis {
	return merged[B]{b: m.newB(), newB: m.newB, finalize: m.finalize}
}
func (m merged[B]) Merge(shard MergeableAnalysis) { m.b.Merge(shard.(merged[B]).b) }

// mergeable builds the registry's standard MergeableAnalysis from a
// builder constructor and a finalizer.
func mergeable[B interface {
	Observe(event.Event)
	Merge(B)
}](newB func() B, fin func(B, *StudyReport)) StreamAnalysis {
	return merged[B]{b: newB(), newB: newB, finalize: fin}
}

// riskSweepThresholds is the §8.1 operating-point grid.
var riskSweepThresholds = []float64{0.3, 0.4, 0.5, 0.58, 0.62, 0.7, 0.8, 0.9}

// registry holds every analysis of the study, in report order. Every entry
// is stream-form: its whole-log form is derived by scanning the log
// through the builder, so one definition serves the monolithic, the
// segmented, and the online-streaming paths. Entries built with
// mergeable() additionally fold as per-segment shards on the segmented
// path; the handful built with streamed{} are order-sensitive (session
// state machines, cross-segment page joins, first-hit anchors) and fold
// inline on the ordered scan.
var registry = []Analysis{
	// ---- 2011 era ----
	{Name: "retention-2011", Era: Era2011, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewRetentionBuilder, func(b *analysis.RetentionBuilder, r *StudyReport) {
			r.Retention2011 = b.Retention(600)
		})
	}},
	{Name: "contact-risk", Era: Era2011, NeedsDir: true, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewContactRiskBuilder, func(b *analysis.ContactRiskBuilder, r *StudyReport) {
			// Cohorts form four days after background campaigns stop, so the
			// backlog of mass-campaign conversions is flushed and the outcome
			// window isolates the hijacker contact-targeting loop.
			cutoff := in.Start.Add(19 * 24 * time.Hour)
			r.ContactRisk = b.ContactRisk(
				in.Dir, cutoff, 8*24*time.Hour, 56*24*time.Hour,
				scaleInt(3000, in.Scale, 200))
		})
	}},

	// ---- 2012 era — the big fan-out ----
	{Name: "figure-3", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		b := analysis.NewFigure3Builder()
		return streamed{b.Observe, func(r *StudyReport) { r.Fig3 = b.Figure3(100) }}
	}},
	{Name: "figure-4", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		b := analysis.NewFigure4Builder()
		return streamed{b.Observe, func(r *StudyReport) { r.Fig4 = b.Figure4(100) }}
	}},
	{Name: "figure-5", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		b := analysis.NewFigure5Builder()
		return streamed{b.Observe, func(r *StudyReport) { r.Fig5 = b.Figure5(100, 25) }}
	}},
	{Name: "figure-6", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		b := analysis.NewFigure6Builder()
		return streamed{b.Observe, func(r *StudyReport) {
			r.Fig6 = b.Figure6(analysis.DefaultFigure6SamplePages)
		}}
	}},
	{Name: "figure-7", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure7Builder, func(b *analysis.Figure7Builder, r *StudyReport) {
			r.Fig7 = b.Figure7()
		})
	}},
	{Name: "figure-8", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure8Builder, func(b *analysis.Figure8Builder, r *StudyReport) {
			r.Fig8 = b.Figure8()
		})
	}},
	{Name: "table-3", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewTable3Builder, func(b *analysis.Table3Builder, r *StudyReport) {
			r.Table3 = b.Table3()
		})
	}},
	{Name: "assessment", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewAssessmentBuilder, func(b *analysis.AssessmentBuilder, r *StudyReport) {
			r.Assessment = b.Assessment(575)
		})
	}},
	{Name: "exploitation", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewExploitationBuilder, func(b *analysis.ExploitationBuilder, r *StudyReport) {
			r.Exploitation = b.Exploitation(575)
		})
	}},
	{Name: "retention-2012", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewRetentionBuilder, func(b *analysis.RetentionBuilder, r *StudyReport) {
			r.Retention2012 = b.Retention(575)
		})
	}},
	{Name: "figure-9", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure9Builder, func(b *analysis.Figure9Builder, r *StudyReport) {
			r.Fig9 = b.Figure9(5000)
		})
	}},
	{Name: "figure-12", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure12Builder, func(b *analysis.Figure12Builder, r *StudyReport) {
			r.Fig12 = b.Figure12(300)
		})
	}},
	{Name: "behavior-detector", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		b := analysis.NewBehaviorEvalBuilder(behavior.DefaultConfig())
		return streamed{b.Observe, func(r *StudyReport) { r.Behavior = b.DetectionEval() }}
	}},
	{Name: "risk-sweep", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(func() *analysis.RiskSweepBuilder {
			return analysis.NewRiskSweepBuilder(riskSweepThresholds)
		}, func(b *analysis.RiskSweepBuilder, r *StudyReport) {
			r.RiskSweep = b.Sweep()
		})
	}},
	{Name: "work-schedule", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewWorkScheduleBuilder, func(b *analysis.WorkScheduleBuilder, r *StudyReport) {
			r.Schedule = b.WorkSchedule()
		})
	}},
	{Name: "doppelganger", Era: Era2012, NeedsDir: true, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(func() *analysis.DoppelgangerBuilder {
			return analysis.NewDoppelgangerBuilder(in.Dir, 0.75)
		}, func(b *analysis.DoppelgangerBuilder, r *StudyReport) {
			r.Doppelganger = b.DoppelgangerEval()
		})
	}},
	{Name: "monetization", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewMonetizationBuilder, func(b *analysis.MonetizationBuilder, r *StudyReport) {
			r.Monetization = b.Monetization()
		})
	}},
	{Name: "lifecycle", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewLifecycleBuilder, func(b *analysis.LifecycleBuilder, r *StudyReport) {
			r.Lifecycle = b.Lifecycle()
		})
	}},
	{Name: "archetype-scorecard", Era: Era2012, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewArchetypeScorecardBuilder, func(b *analysis.ArchetypeScorecardBuilder, r *StudyReport) {
			r.ArchetypeScorecard = b.Scorecard()
		})
	}},

	// ---- 2013 era ----
	{Name: "figure-10", Era: Era2013, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure10Builder, func(b *analysis.Figure10Builder, r *StudyReport) {
			r.Fig10 = b.Figure10(in.Start, in.End)
		})
	}},
	{Name: "recovery-channels", Era: Era2013, NeedsDir: true, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewRecoveryChannelsBuilder, func(b *analysis.RecoveryChannelsBuilder, r *StudyReport) {
			secTotal, secRecycled := secondaryCountsDir(in.Dir)
			r.Channels = b.RecoveryChannels(secTotal, secRecycled)
		})
	}},
	{Name: "remission", Era: Era2013, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewRemissionBuilder, func(b *analysis.RemissionBuilder, r *StudyReport) {
			r.Remission = b.Remission()
		})
	}},

	// ---- 2014 era ----
	{Name: "table-2", Era: Era2014, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewPhishSampleBuilder, func(b *analysis.PhishSampleBuilder, r *StudyReport) {
			r.Table2 = b.Table2(100)
		})
	}},
	{Name: "url-share", Era: Era2014, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewPhishSampleBuilder, func(b *analysis.PhishSampleBuilder, r *StudyReport) {
			r.URLShare = b.URLShare(100)
		})
	}},
	{Name: "figure-11", Era: Era2014, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(analysis.NewFigure11Builder, func(b *analysis.Figure11Builder, r *StudyReport) {
			r.Fig11 = b.Figure11(in.Plan, analysis.DefaultFigure11Cases)
		})
	}},

	// ---- base rates ----
	{Name: "base-rates", Era: EraBase, NeedsDir: true, Stream: func(in AnalysisInput) StreamAnalysis {
		return mergeable(func() *analysis.BaseRatesBuilder {
			return analysis.NewBaseRatesBuilder(in.Start)
		}, func(b *analysis.BaseRatesBuilder, r *StudyReport) {
			active := 0
			in.Dir.All(func(a *identity.Account) {
				if a.Active(in.End) {
					active++
				}
			})
			r.BaseRates = b.BaseRates(in.Start, in.End, active)
		})
	}},
}

// Registry returns the full analysis registry in report order. Callers
// must not mutate the entries.
func Registry() []Analysis {
	return append([]Analysis(nil), registry...)
}

// worldInput packages a finished world for the registry.
func worldInput(w *World, scale float64) AnalysisInput {
	return AnalysisInput{
		Log:   w.Log,
		Start: w.Cfg.Start,
		End:   w.End(),
		Plan:  w.Plan,
		Dir:   w.Dir,
		Scale: scale,
	}
}

// RunAnalyses fans every applicable registry analysis out over a worker
// pool against one input (typically a dumped log reloaded by cmd/analyze)
// and returns the report plus the names of analyses skipped because they
// need the live directory. par follows StudyConfig.Parallelism semantics:
// 0 means GOMAXPROCS, 1 runs sequentially. The result is deterministic at
// any parallelism — every analysis writes a distinct report field.
func RunAnalyses(in AnalysisInput, par int) (*StudyReport, []string) {
	if in.Scale <= 0 {
		in.Scale = 1
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	r := &StudyReport{}
	jobs, skipped := analysisJobs(func(Era) AnalysisInput { return in }, r, par)
	runAll(par, jobs)
	return r, skipped
}

// analysisJobs builds the parallel job list for the whole registry, given
// the input each era's analyses read. On monolithic (in-RAM) logs every
// entry is its own job, preserving the wide fan-out. On a segmented log
// the Stream-capable entries of each store are grouped into a single
// map-reduce job: one ordered scan decodes every segment exactly once and
// feeds all builders, which then finalize into their report fields — the
// pass count stops scaling with the analysis count. par bounds the
// per-segment shard folds inside each group (see runGroup). Entries whose
// directory requirement is unmet are returned in skipped.
func analysisJobs(input func(Era) AnalysisInput, r *StudyReport, par int) (jobs []func(), skipped []string) {
	type group struct {
		in      AnalysisInput
		entries []Analysis
	}
	var groups []*group
	byStore := map[*logstore.Store]*group{}
	for _, a := range registry {
		a := a
		in := input(a.Era)
		if a.NeedsDir && in.Dir == nil {
			skipped = append(skipped, a.Name)
			continue
		}
		if a.Stream != nil && in.Log.Segmented() {
			g := byStore[in.Log]
			if g == nil {
				g = &group{in: in}
				byStore[in.Log] = g
				groups = append(groups, g)
			}
			g.entries = append(g.entries, a)
			continue
		}
		jobs = append(jobs, func() { runOne(a, in, r) })
	}
	for _, g := range groups {
		g := g
		jobs = append(jobs, func() { runGroup(g.in, g.entries, r, par) })
	}
	return jobs, skipped
}

// runGroup executes one segmented store's Stream entries in a single
// decode pass. The scan goroutine folds the order-sensitive builders
// inline, preserving strict log order; for every decoded segment, up to
// par worker goroutines fold one fresh shard per mergeable entry, and a
// single merger goroutine folds finished shards back into the root
// builders strictly in segment order. Because each builder's Merge
// contract reproduces the sequential state exactly, the report stays
// byte-identical to a monolithic run at any worker count.
func runGroup(in AnalysisInput, entries []Analysis, r *StudyReport, par int) {
	builders := make([]StreamAnalysis, len(entries))
	var ordered []StreamAnalysis
	var roots []MergeableAnalysis
	for i, a := range entries {
		b := a.Stream(in)
		builders[i] = b
		if m, ok := b.(MergeableAnalysis); ok {
			roots = append(roots, m)
		} else {
			ordered = append(ordered, b)
		}
	}
	if par < 1 {
		par = 1
	}

	// segShards carries one segment's shard set from its fold worker to
	// the merger; done is closed once the shards are fully folded. Entries
	// are enqueued in segment order before the worker spawns, so the
	// merger's receive order IS segment order, and the queue's capacity
	// bounds how many decoded segments the shard stage can hold live.
	type segShards struct {
		shards []MergeableAnalysis
		done   chan struct{}
	}
	queue := make(chan *segShards, par+1)
	var mergeWG sync.WaitGroup
	mergeWG.Add(1)
	go func() {
		defer mergeWG.Done()
		for ss := range queue {
			<-ss.done
			for j, sh := range ss.shards {
				roots[j].Merge(sh)
			}
		}
	}()

	sem := make(chan struct{}, par)
	in.Log.ScanSegments(func(_ int, events []event.Event) {
		for _, e := range events {
			for _, b := range ordered {
				b.Observe(e)
			}
		}
		if len(roots) == 0 {
			return
		}
		ss := &segShards{done: make(chan struct{})}
		queue <- ss
		sem <- struct{}{}
		go func() {
			defer close(ss.done)
			shards := make([]MergeableAnalysis, len(roots))
			for j := range roots {
				shards[j] = roots[j].NewShard()
			}
			for _, e := range events {
				for _, sh := range shards {
					sh.Observe(e)
				}
			}
			ss.shards = shards
			<-sem
		}()
	})
	close(queue)
	mergeWG.Wait()

	for _, b := range builders {
		b.Finalize(r)
	}
}

// runOne executes one entry in whole-log form, deriving it from the
// builder when the entry is stream-only.
func runOne(a Analysis, in AnalysisInput, r *StudyReport) {
	if a.Run != nil {
		a.Run(in, r)
		return
	}
	b := a.Stream(in)
	in.Log.Scan(b.Observe)
	b.Finalize(r)
}

// secondaryCountsDir tallies the population's secondary-email totals for
// the §6.3 channel-reliability estimate.
func secondaryCountsDir(dir *identity.Directory) (total, recycled int) {
	dir.All(func(a *identity.Account) {
		if a.SecondaryEmail != "" {
			total++
			if a.SecondaryRecycled {
				recycled++
			}
		}
	})
	return total, recycled
}
