package core

import (
	"runtime"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/behavior"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
)

// The analysis registry is the single list of every study analysis.
// RunStudy iterates it with era-appropriate world inputs, and cmd/analyze
// iterates it over a single dumped log — one source of truth, so the
// in-process and offline pipelines cannot drift.

// Era identifies which observation-window world an analysis draws from in
// the full study (Table 1's datasets come from different time windows).
type Era int

const (
	Era2011 Era = iota // October–December 2011: retention baseline, contact risk
	Era2012            // November 2012: most datasets, decoys, Forms pages
	Era2013            // February 2013: recovery claims
	Era2014            // January 2014: attribution, curated phishing review
	EraBase            // low-intensity world calibrated to the paper's base rates
	eraCount
)

func (e Era) String() string {
	switch e {
	case Era2011:
		return "2011"
	case Era2012:
		return "2012"
	case Era2013:
		return "2013"
	case Era2014:
		return "2014"
	case EraBase:
		return "base"
	}
	return "?"
}

// AnalysisInput is everything a registry analysis may read. Log is always
// set. Start/End bound the observation window — offline loads take them
// from the dump header, because the first record's timestamp is not the
// window start. Plan is the synthetic IP plan (deterministic, so offline
// callers reconstruct it with DefaultIPPlan). Dir is the live account
// directory; it is nil for offline replay, which disables the NeedsDir
// analyses — population state never reaches the event log.
type AnalysisInput struct {
	Log   *logstore.Store
	Start time.Time
	End   time.Time
	Plan  *geo.IPPlan
	Dir   *identity.Directory
	// Scale is the study's sample-size scale; 0 means 1.0.
	Scale float64
}

// Analysis is one registry entry: a named computation that reads an
// AnalysisInput and writes exactly one StudyReport field — the property
// that makes the fan-out deterministic at any parallelism.
type Analysis struct {
	Name string
	Era  Era
	// NeedsDir marks analyses that consult the live directory (contact
	// graphs, secondary-email state, activity). They are skipped when
	// replaying a dumped log, where only events survive.
	NeedsDir bool
	Run      func(in AnalysisInput, r *StudyReport)
}

// registry holds every analysis of the study, in report order.
var registry = []Analysis{
	// ---- 2011 era ----
	{Name: "retention-2011", Era: Era2011, Run: func(in AnalysisInput, r *StudyReport) {
		r.Retention2011 = analysis.ComputeRetention(in.Log, 600)
	}},
	{Name: "contact-risk", Era: Era2011, NeedsDir: true, Run: func(in AnalysisInput, r *StudyReport) {
		// Cohorts form four days after background campaigns stop, so the
		// backlog of mass-campaign conversions is flushed and the outcome
		// window isolates the hijacker contact-targeting loop.
		cutoff := in.Start.Add(19 * 24 * time.Hour)
		r.ContactRisk = analysis.ComputeContactRisk(
			in.Log, in.Dir, cutoff, 8*24*time.Hour, 56*24*time.Hour,
			scaleInt(3000, in.Scale, 200))
	}},

	// ---- 2012 era — the big fan-out ----
	{Name: "figure-3", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig3 = analysis.ComputeFigure3(in.Log, 100)
	}},
	{Name: "figure-4", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig4 = analysis.ComputeFigure4(in.Log, 100)
	}},
	{Name: "figure-5", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig5 = analysis.ComputeFigure5(in.Log, 100, 25)
	}},
	{Name: "figure-6", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig6 = analysis.ComputeFigure6(in.Log, analysis.DefaultFigure6SamplePages)
	}},
	{Name: "figure-7", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig7 = analysis.ComputeFigure7(in.Log)
	}},
	{Name: "figure-8", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig8 = analysis.ComputeFigure8(in.Log)
	}},
	{Name: "table-3", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Table3 = analysis.ComputeTable3(in.Log)
	}},
	{Name: "assessment", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Assessment = analysis.ComputeAssessment(in.Log, 575)
	}},
	{Name: "exploitation", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Exploitation = analysis.ComputeExploitation(in.Log, 575)
	}},
	{Name: "retention-2012", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Retention2012 = analysis.ComputeRetention(in.Log, 575)
	}},
	{Name: "figure-9", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig9 = analysis.ComputeFigure9(in.Log, 5000)
	}},
	{Name: "figure-12", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig12 = analysis.ComputeFigure12(in.Log, 300)
	}},
	{Name: "behavior-detector", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Behavior = analysis.EvaluateBehaviorDetector(in.Log, behavior.DefaultConfig())
	}},
	{Name: "risk-sweep", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.RiskSweep = analysis.SweepRiskThreshold(in.Log,
			[]float64{0.3, 0.4, 0.5, 0.58, 0.62, 0.7, 0.8, 0.9})
	}},
	{Name: "work-schedule", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Schedule = analysis.ComputeWorkSchedule(in.Log)
	}},
	{Name: "doppelganger", Era: Era2012, NeedsDir: true, Run: func(in AnalysisInput, r *StudyReport) {
		r.Doppelganger = analysis.EvaluateDoppelgangerDetector(in.Log, in.Dir, 0.75)
	}},
	{Name: "monetization", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Monetization = analysis.ComputeMonetization(in.Log)
	}},
	{Name: "lifecycle", Era: Era2012, Run: func(in AnalysisInput, r *StudyReport) {
		r.Lifecycle = analysis.ComputeLifecycle(in.Log)
	}},

	// ---- 2013 era ----
	{Name: "figure-10", Era: Era2013, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig10 = analysis.ComputeFigure10(in.Log, in.Start, in.End)
	}},
	{Name: "recovery-channels", Era: Era2013, NeedsDir: true, Run: func(in AnalysisInput, r *StudyReport) {
		secTotal, secRecycled := secondaryCountsDir(in.Dir)
		r.Channels = analysis.ComputeRecoveryChannels(in.Log, secTotal, secRecycled)
	}},
	{Name: "remission", Era: Era2013, Run: func(in AnalysisInput, r *StudyReport) {
		r.Remission = analysis.ComputeRemission(in.Log)
	}},

	// ---- 2014 era ----
	{Name: "table-2", Era: Era2014, Run: func(in AnalysisInput, r *StudyReport) {
		r.Table2 = analysis.ComputeTable2(in.Log, 100)
	}},
	{Name: "url-share", Era: Era2014, Run: func(in AnalysisInput, r *StudyReport) {
		r.URLShare = analysis.URLShare(in.Log, 100)
	}},
	{Name: "figure-11", Era: Era2014, Run: func(in AnalysisInput, r *StudyReport) {
		r.Fig11 = analysis.ComputeFigure11(in.Log, in.Plan, analysis.DefaultFigure11Cases)
	}},

	// ---- base rates ----
	{Name: "base-rates", Era: EraBase, NeedsDir: true, Run: func(in AnalysisInput, r *StudyReport) {
		active := 0
		in.Dir.All(func(a *identity.Account) {
			if a.Active(in.End) {
				active++
			}
		})
		r.BaseRates = analysis.ComputeBaseRates(in.Log, in.Start, in.End, active)
	}},
}

// Registry returns the full analysis registry in report order. Callers
// must not mutate the entries.
func Registry() []Analysis {
	return append([]Analysis(nil), registry...)
}

// worldInput packages a finished world for the registry.
func worldInput(w *World, scale float64) AnalysisInput {
	return AnalysisInput{
		Log:   w.Log,
		Start: w.Cfg.Start,
		End:   w.End(),
		Plan:  w.Plan,
		Dir:   w.Dir,
		Scale: scale,
	}
}

// RunAnalyses fans every applicable registry analysis out over a worker
// pool against one input (typically a dumped log reloaded by cmd/analyze)
// and returns the report plus the names of analyses skipped because they
// need the live directory. par follows StudyConfig.Parallelism semantics:
// 0 means GOMAXPROCS, 1 runs sequentially. The result is deterministic at
// any parallelism — every analysis writes a distinct report field.
func RunAnalyses(in AnalysisInput, par int) (*StudyReport, []string) {
	if in.Scale <= 0 {
		in.Scale = 1
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	r := &StudyReport{}
	jobs := make([]func(), 0, len(registry))
	var skipped []string
	for _, a := range registry {
		if a.NeedsDir && in.Dir == nil {
			skipped = append(skipped, a.Name)
			continue
		}
		a := a
		jobs = append(jobs, func() { a.Run(in, r) })
	}
	runAll(par, jobs)
	return r, skipped
}

// secondaryCountsDir tallies the population's secondary-email totals for
// the §6.3 channel-reliability estimate.
func secondaryCountsDir(dir *identity.Directory) (total, recycled int) {
	dir.All(func(a *identity.Account) {
		if a.SecondaryEmail != "" {
			total++
			if a.SecondaryRecycled {
				recycled++
			}
		}
	})
	return total, recycled
}
