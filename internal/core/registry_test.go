package core

import (
	"bytes"
	"reflect"
	"testing"

	"manualhijack/internal/analysis"
	"manualhijack/internal/logstore"
)

// Every registry entry must write a distinct report field with a unique
// name and a valid era — the invariants the deterministic fan-out and the
// offline tool both rely on.
func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) != 28 {
		t.Fatalf("registry has %d analyses, want 28 — keep RunStudy and cmd/analyze in sync", len(reg))
	}
	names := map[string]bool{}
	for _, a := range reg {
		if a.Name == "" || names[a.Name] {
			t.Fatalf("registry entry %q missing or duplicate name", a.Name)
		}
		names[a.Name] = true
		if a.Era < Era2011 || a.Era >= eraCount {
			t.Fatalf("%s: bad era %d", a.Name, a.Era)
		}
		if a.Run == nil && a.Stream == nil {
			t.Fatalf("%s: neither Run nor Stream", a.Name)
		}
	}
}

// The offline pipeline's core guarantee: running the registry over a
// dumped-and-reloaded log yields exactly the StudyReport fields the
// in-process run computes from the live world. Only the NeedsDir analyses
// (population state never reaches the event log) are exempt.
func TestOfflineRegistryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test runs a world")
	}
	sc := StudyConfig{Seed: 17, Scale: 0.04, DecoyN: 60}
	w := sc.world2012()

	live, skippedLive := RunAnalyses(worldInput(w, sc.Scale), 0)
	if len(skippedLive) != 0 {
		t.Fatalf("live run skipped %v", skippedLive)
	}

	var buf bytes.Buffer
	meta := logstore.Meta{Start: w.Cfg.Start, End: w.End(), Seed: sc.Seed}
	if err := logstore.WriteNDJSONMeta(&buf, w.Log, meta); err != nil {
		t.Fatal(err)
	}
	loaded, st, err := logstore.ReadNDJSONWith(&buf, logstore.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Sealed() || st.Records != w.Log.Len() {
		t.Fatalf("reload: sealed=%v records=%d want %d", loaded.Sealed(), st.Records, w.Log.Len())
	}

	offline, skipped := RunAnalyses(AnalysisInput{
		Log:   loaded,
		Start: st.Meta.Start,
		End:   st.Meta.End,
		Plan:  DefaultIPPlan(),
	}, 0)
	wantSkipped := []string{"contact-risk", "doppelganger", "recovery-channels", "base-rates"}
	if !reflect.DeepEqual(skipped, wantSkipped) {
		t.Fatalf("offline skipped %v, want %v", skipped, wantSkipped)
	}

	// The live report's directory-backed fields have no offline
	// counterpart; blank them before the exact comparison.
	live.ContactRisk = analysis.ContactRisk{}
	live.Doppelganger = analysis.DoppelgangerEval{}
	live.Channels = analysis.RecoveryChannels{}
	live.BaseRates = analysis.BaseRates{}

	if !reflect.DeepEqual(live, offline) {
		lv, ov := reflect.ValueOf(*live), reflect.ValueOf(*offline)
		for i := 0; i < lv.NumField(); i++ {
			if !reflect.DeepEqual(lv.Field(i).Interface(), ov.Field(i).Interface()) {
				t.Errorf("field %s diverges offline:\nlive:    %+v\noffline: %+v",
					lv.Type().Field(i).Name, lv.Field(i).Interface(), ov.Field(i).Interface())
			}
		}
		t.Fatal("offline registry run does not match in-process analyses")
	}
}
