package core

import (
	"manualhijack/internal/geo"
	"manualhijack/internal/hijacker"
)

// crewEntry is one roster row: origin, language, relative activity weight,
// and whether the crew uses the 2SV phone-lockout tactic in its era.
type crewEntry struct {
	name     string
	country  geo.Country
	lang     hijacker.Language
	weight   float64
	usePhone bool
	// startUTC staggers working hours by rough home-timezone so the fleet
	// covers more of the clock (Asian crews start earlier in UTC terms).
	startUTC int
}

func buildRoster(entries []crewEntry, tactics hijacker.Tactics) []CrewSpec {
	specs := make([]CrewSpec, 0, len(entries))
	for _, e := range entries {
		cfg := hijacker.DefaultConfig(e.name, e.country, e.lang)
		cfg.WorkStartUTC = e.startUTC
		cfg.WorkEndUTC = e.startUTC + 9
		cfg.LunchUTC = e.startUTC + 4
		cfg.Tactics = tactics
		if !e.usePhone {
			cfg.Tactics.TwoSVLockoutRate = 0
		}
		specs = append(specs, CrewSpec{Config: cfg, Weight: e.weight})
	}
	return specs
}

// Roster2011 is the October 2011 crew mix: the West African groups
// dominate; the 2SV phone tactic has not appeared yet.
func Roster2011() []CrewSpec {
	return buildRoster([]crewEntry{
		{"ci-alpha", geo.IvoryCoast, hijacker.LangFR, 20, false, 8},
		{"ng-alpha", geo.Nigeria, hijacker.LangEN, 18, false, 8},
		{"za-alpha", geo.SouthAfrica, hijacker.LangEN, 5, false, 7},
		{"cn-alpha", geo.China, hijacker.LangZH, 12, false, 1},
		{"my-alpha", geo.Malaysia, hijacker.LangEN, 8, false, 1},
		{"ve-alpha", geo.Venezuela, hijacker.LangES, 2, false, 13},
	}, hijacker.Tactics2011())
}

// Roster2012 is the November 2012 mix: the same groups, now with the
// short-lived 2SV phone-lockout tactic in use everywhere except the
// Chinese and Malaysian groups (§7: "neither China or Malaysia show up in
// the phone dataset"). The non-CN/MY weights are calibrated so the phone
// country mix reproduces Figure 12 (CI 33.8%, NG 31.4%, ZA 8.4%, FR 6.4%,
// ML 6.1%, IN 3.3%, small VN/AF/VE/BR).
func Roster2012() []CrewSpec {
	return buildRoster([]crewEntry{
		{"ci-alpha", geo.IvoryCoast, hijacker.LangFR, 20.0, true, 8},
		{"ng-alpha", geo.Nigeria, hijacker.LangEN, 18.0, true, 8},
		{"za-alpha", geo.SouthAfrica, hijacker.LangEN, 5.0, true, 7},
		{"fr-alpha", geo.France, hijacker.LangFR, 3.8, true, 8},
		{"ml-alpha", geo.Mali, hijacker.LangFR, 3.6, true, 8},
		{"in-alpha", geo.India, hijacker.LangEN, 2.0, true, 4},
		{"vn-alpha", geo.Vietnam, hijacker.LangEN, 1.5, true, 2},
		{"af-alpha", geo.Afghanistan, hijacker.LangEN, 1.2, true, 4},
		{"ve-alpha", geo.Venezuela, hijacker.LangES, 1.2, true, 13},
		{"br-alpha", geo.Brazil, hijacker.LangES, 1.2, true, 12},
		{"cn-alpha", geo.China, hijacker.LangZH, 12.0, false, 1},
		{"my-alpha", geo.Malaysia, hijacker.LangEN, 8.0, false, 1},
	}, hijacker.Tactics2012())
}

// Roster2014 is the January 2014 mix: the Chinese and Malaysian groups now
// dominate the hijack traffic, South Africa holds ~10%, the West African
// groups have shrunk, and the phone tactic is abandoned. The weights
// reproduce Figure 11's IP country mix (CN and MY ≈36% each, ZA ≈9%).
func Roster2014() []CrewSpec {
	return buildRoster([]crewEntry{
		{"cn-alpha", geo.China, hijacker.LangZH, 35.7, false, 1},
		{"my-alpha", geo.Malaysia, hijacker.LangEN, 35.7, false, 1},
		{"za-alpha", geo.SouthAfrica, hijacker.LangEN, 9.1, false, 7},
		{"ci-alpha", geo.IvoryCoast, hijacker.LangFR, 3.2, false, 8},
		{"ng-alpha", geo.Nigeria, hijacker.LangEN, 3.2, false, 8},
		{"ve-alpha", geo.Venezuela, hijacker.LangES, 2.4, false, 13},
		{"us-alpha", geo.US, hijacker.LangEN, 2.3, false, 14},
		{"br-alpha", geo.Brazil, hijacker.LangES, 2.0, false, 12},
		{"in-alpha", geo.India, hijacker.LangEN, 2.1, false, 4},
		{"ml-alpha", geo.Mali, hijacker.LangFR, 1.7, false, 8},
		{"af-alpha", geo.Afghanistan, hijacker.LangEN, 1.3, false, 4},
		{"vn-alpha", geo.Vietnam, hijacker.LangEN, 1.3, false, 2},
	}, hijacker.Tactics2014())
}
