package core

import "testing"

// TestScaleIntRounds pins the rounding behavior of scaleInt over awkward
// scales whose float products land just below an integer. Truncation used
// to drop the unit (3000×0.3 → 899), silently under-populating eras.
func TestScaleIntRounds(t *testing.T) {
	cases := []struct {
		n     int
		scale float64
		min   int
		want  int
	}{
		// 0.3 products sit at 899.999…: the original truncation bug.
		{3000, 0.3, 1, 900},
		{8000, 0.3, 1, 2400},
		{200, 0.3, 1, 60},
		// 0.1 products sit just above the integer; rounding must not
		// overshoot.
		{3000, 0.1, 1, 300},
		{10000, 0.1, 1, 1000},
		// 0.7 products sit just below the integer again.
		{8000, 0.7, 1, 5600},
		{3000, 0.7, 1, 2100},
		// The floor still applies after rounding.
		{100, 0.001, 500, 500},
		{0, 0.3, 1, 1},
	}
	for _, c := range cases {
		if got := scaleInt(c.n, c.scale, c.min); got != c.want {
			t.Errorf("scaleInt(%d, %v, %d) = %d, want %d",
				c.n, c.scale, c.min, got, c.want)
		}
	}
}
