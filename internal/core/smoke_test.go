package core

import (
	"testing"
	"time"
)

func TestSmokeWorld(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PopulationN = 2000
	cfg.Days = 14
	cfg.DecoyN = 50
	w := NewWorld(cfg)
	w.InjectDecoys(10 * 24 * time.Hour)
	start := time.Now()
	w.Run()
	t.Logf("wall time: %v", time.Since(start))
	for k, n := range w.Log.KindCounts() {
		t.Logf("%-28s %d", k, n)
	}
	for _, c := range w.Crews {
		t.Logf("crew %-10s processed=%d loggedIn=%d exploited=%d abandoned=%d locked=%d phones=%d queue=%d",
			c.Name(), c.Processed, c.LoggedIn, c.Exploited, c.Abandoned, c.LockedOut, c.PhoneLocks, c.QueueLen())
	}
}
