package core

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"manualhijack/internal/logstore"
)

// TestSegmentedMatchesMonolithic is the tentpole regression gate: a study
// run with every era world spilling to disk segments must produce a
// byte-identical StudyReport to the monolithic in-RAM run of the same
// seed. The segment threshold is set low enough that every era world
// spills multiple segments, so the map-reduce analysis path (one ordered
// scan feeding every builder) is exercised for real.
func TestSegmentedMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-study comparison; skipped in -short")
	}
	for _, seed := range []int64{1, 2} {
		sc := StudyConfig{Seed: seed, Scale: 0.1, DecoyN: 200,
			// Archetype actors ride in every era world so the segmented
			// scan covers tagged events and the scorecard's Merge path.
			Archetypes: []ArchetypeSpec{
				{Archetype: "smashgrab", Count: 1},
				{Archetype: "stuffer", Count: 1},
				{Archetype: "hopper", Count: 1},
			},
		}
		mono := RunStudy(sc)

		sc.SpillDir = t.TempDir()
		sc.SegmentRecords = 50_000
		seg := RunStudy(sc)

		if !reflect.DeepEqual(mono, seg) {
			diffReportFields(t, mono, seg)
			t.Fatalf("seed %d: segmented study diverged from monolithic", seed)
		}
	}
}

// TestSegmentedMatchesMonolithicGzip covers the compressed segment path
// at a smaller scale: the decode side must be byte-transparent.
func TestSegmentedMatchesMonolithicGzip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-study comparison; skipped in -short")
	}
	sc := StudyConfig{Seed: 7, Scale: 0.04, DecoyN: 200}
	mono := RunStudy(sc)

	sc.SpillDir = t.TempDir()
	sc.SegmentRecords = 20_000
	sc.SpillGzip = true
	seg := RunStudy(sc)

	if !reflect.DeepEqual(mono, seg) {
		diffReportFields(t, mono, seg)
		t.Fatalf("gzip segmented study diverged from monolithic")
	}
}

// diffReportFields names which StudyReport fields diverged, so a parity
// break points straight at the offending analysis.
func diffReportFields(t *testing.T, a, b *StudyReport) {
	t.Helper()
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	typ := va.Type()
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("field %s diverged", typ.Field(i).Name)
		}
	}
}

// spillHeapWorld builds and runs one mid-sized world, optionally
// spilling, then drops everything but the sealed log and reports the
// live heap retained by the store alone — the world's directory and
// mailboxes are identical on both sides and would only dilute the ratio.
func spillHeapWorld(t *testing.T, spill logstore.SpillConfig) (*logstore.Store, uint64) {
	t.Helper()
	cfg := DefaultConfig(11)
	cfg.PopulationN = 4000
	cfg.Days = 30
	cfg.Spill = spill
	w := NewWorld(cfg)
	w.Run()
	log := w.Log
	w = nil //nolint:wastedassign // release the world before measuring
	return log, liveHeap()
}

func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestSpillBoundsLiveHeap is the Reserve/expectedEvents interplay check:
// with spilling on, the store reserves only one segment's capacity and
// sealed segments leave RAM, so the world retains far less heap than the
// monolithic build of the same config. The margin is deliberately
// generous — the world's non-log state (directory, mailboxes) is
// identical on both sides, so the delta is almost entirely the log.
func TestSpillBoundsLiveHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement; skipped in -short")
	}
	base := liveHeap()
	mono, monoLive := spillHeapWorld(t, logstore.SpillConfig{})
	if mono.Len() < 100_000 {
		t.Fatalf("world too small for a meaningful heap bound: %d events", mono.Len())
	}
	events := mono.Len()
	monoRetained := monoLive - base
	runtime.KeepAlive(mono)
	mono = nil //nolint:wastedassign // release before re-measuring

	base2 := liveHeap()
	seg, segLive := spillHeapWorld(t, logstore.SpillConfig{
		Dir:            filepath.Join(t.TempDir(), "segs"),
		SegmentRecords: events / 6,
	})
	segRetained := segLive - base2
	if got := seg.SegmentCount(); got < 4 {
		t.Fatalf("expected >= 4 spilled segments, got %d", got)
	}
	if seg.Len() != events {
		t.Fatalf("segmented world produced %d events, monolithic %d", seg.Len(), events)
	}
	runtime.KeepAlive(seg)

	// The segmented store retains at most the 2-segment cache out of 6+
	// segments; 0.6 leaves room for the manifest, cache, and GC noise
	// (measured ~0.25x on Linux/go1.24).
	if float64(segRetained) > 0.6*float64(monoRetained) {
		t.Fatalf("segmented store retains %d bytes, monolithic %d (want < 0.6x)",
			segRetained, monoRetained)
	}
	t.Logf("retained heap: monolithic=%d segmented=%d (%.2fx) over %d events",
		monoRetained, segRetained, float64(segRetained)/float64(monoRetained), events)
}

// TestWorldSpillIncompatibleWithRetention pins the documented panic:
// sanitization rewrites history, spilled segments are immutable.
func TestWorldSpillIncompatibleWithRetention(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.PopulationN = 500
	cfg.Days = 2
	cfg.AuthLogRetentionDays = 7
	cfg.Spill = logstore.SpillConfig{Dir: t.TempDir(), SegmentRecords: 1000}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic combining Spill with AuthLogRetentionDays")
		}
	}()
	NewWorld(cfg)
}

// TestWorldSpillMetaDefault checks the manifest inherits the world's
// window and seed when the caller leaves Meta zero.
func TestWorldSpillMetaDefault(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig(5)
	cfg.PopulationN = 500
	cfg.Days = 3
	cfg.Spill = logstore.SpillConfig{Dir: dir, SegmentRecords: 2000}
	w := NewWorld(cfg)
	w.Run()
	if w.Log.SegmentCount() < 2 {
		t.Fatalf("expected >= 2 segments, got %d", w.Log.SegmentCount())
	}

	re, st, err := logstore.OpenSegmentDir(dir, logstore.ReadOptions{})
	if err != nil {
		t.Fatalf("OpenSegmentDir: %v", err)
	}
	meta := st.Meta
	if !meta.Start.Equal(cfg.Start) || meta.Seed != cfg.Seed {
		t.Fatalf("manifest meta = %+v, want start %v seed %d", meta, cfg.Start, cfg.Seed)
	}
	wantEnd := cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	if !meta.End.Equal(wantEnd) {
		t.Fatalf("manifest end = %v, want %v", meta.End, wantEnd)
	}
	if re.Len() != w.Log.Len() {
		t.Fatalf("reloaded %d events, world logged %d", re.Len(), w.Log.Len())
	}
}
