package core

import (
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"manualhijack/internal/analysis"
	"manualhijack/internal/logstore"
	"manualhijack/internal/recovery"
)

// StudyConfig controls the full measurement campaign.
type StudyConfig struct {
	Seed int64
	// Scale shrinks (or, above 1, grows) populations and phishing volume;
	// 1.0 is the full study. Values above 1 exist for spill stress
	// benchmarks — the report still computes, but its published-value
	// comparisons are calibrated to scale <= 1.
	Scale float64
	// SampleSize caps per-dataset samples (the paper's Table 1 sizes are
	// used at scale 1).
	DecoyN int
	// Parallelism bounds the worker pool that runs the era worlds and
	// fans out the read-only analyses: 0 means GOMAXPROCS, 1 is the
	// legacy sequential engine. Every setting produces a byte-identical
	// StudyReport for the same Seed — each world owns an independent
	// seed and log, and each analysis writes its own report field.
	Parallelism int
	// SpillDir, when set, runs every era world with a spill-to-disk
	// segmented log (one subdirectory per era) so peak RAM is bounded by
	// the segment size instead of the world size, and the analyses run as
	// a map-reduce over the segment files. The report is byte-identical
	// to a monolithic run of the same Seed.
	SpillDir string
	// SegmentRecords caps records per segment (0 = logstore default);
	// SegmentBytes optionally seals on encoded size instead. SpillGzip
	// compresses segment files.
	SegmentRecords int
	SegmentBytes   int64
	SpillGzip      bool
	// SpillWriters sizes each world's background segment encode/write
	// pool; ScanWorkers sets how many segments the analysis scans decode
	// ahead (0 = logstore defaults of 1 each). Neither affects report
	// bytes — only how much of the spill tax overlaps other work.
	SpillWriters int
	ScanWorkers  int
	// Archetypes fields playbook actors in every era world, next to each
	// era's manual-crew roster (counts are not scaled — archetype
	// instances are actors, not population).
	Archetypes []ArchetypeSpec
}

// spillFor derives one era world's spill configuration, or the zero value
// (spilling off) when the study is monolithic.
func (sc StudyConfig) spillFor(era string) logstore.SpillConfig {
	if sc.SpillDir == "" {
		return logstore.SpillConfig{}
	}
	return logstore.SpillConfig{
		Dir:            filepath.Join(sc.SpillDir, era),
		SegmentRecords: sc.SegmentRecords,
		SegmentBytes:   sc.SegmentBytes,
		Compress:       sc.SpillGzip,
		Writers:        sc.SpillWriters,
		ScanWorkers:    sc.ScanWorkers,
	}
}

// DefaultStudyConfig is the full-scale study.
func DefaultStudyConfig(seed int64) StudyConfig {
	return StudyConfig{Seed: seed, Scale: 1.0, DecoyN: 200}
}

// StudyReport holds every reproduced table and figure, plus the era
// retention comparison and the defense evaluations.
type StudyReport struct {
	// §4 — attack vectors.
	Table2   analysis.Table2
	URLShare float64
	Fig3     analysis.Figure3
	Fig4     analysis.Figure4
	Fig5     analysis.Figure5
	Fig6     analysis.Figure6

	// §5 — exploitation.
	Fig7          analysis.Figure7
	Fig8          analysis.Figure8
	Table3        analysis.Table3
	Assessment    analysis.Assessment
	Exploitation  analysis.Exploitation
	ContactRisk   analysis.ContactRisk
	Retention2011 analysis.Retention
	Retention2012 analysis.Retention

	// §6 — remediation.
	Fig9      analysis.Figure9
	Fig10     analysis.Figure10
	Channels  analysis.RecoveryChannels
	Remission analysis.RemissionStats

	// §7 — attribution.
	Fig11 analysis.Figure11
	Fig12 analysis.Figure12

	// §3 / §8 — base rates and defense evaluation.
	BaseRates analysis.BaseRates
	Behavior  analysis.DetectionEval
	RiskSweep []analysis.RiskOperatingPoint
	// ArchetypeScorecard is the per-archetype detection scorecard (2012
	// world): recall, time-to-detect, and the owner-side FP cost. Empty
	// rows when no archetypes are fielded.
	ArchetypeScorecard analysis.ArchetypeScorecard

	// §5.5 — the "ordinary office job" evidence, and the doppelganger
	// review defense of §5.4.
	Schedule     analysis.WorkSchedule
	Doppelganger analysis.DoppelgangerEval

	// The scam funnel: pleas → replies → reached crew → wires.
	Monetization analysis.Monetization

	// Figure 2's overall hijacking cycle, as a survival funnel.
	Lifecycle analysis.Lifecycle

	// Worlds' raw sizes, for the report header.
	Events2011, Events2012, Events2013, Events2014 int
}

// scaleInt scales a count, keeping at least min. Rounding (not truncating)
// keeps float representation error from dropping a unit: 3000×0.3 is
// 899.9999…, which truncation would turn into 899 and quietly
// under-populate an era.
func scaleInt(n int, scale float64, min int) int {
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// era builds a world config for one observation window.
func (sc StudyConfig) era(start time.Time, days, pop int, crews []CrewSpec, campaignsPerDay float64, lureBase int) Config {
	cfg := DefaultConfig(sc.Seed + int64(start.Year()*100+int(start.Month())))
	cfg.Start = start
	cfg.Days = days
	cfg.PopulationN = scaleInt(pop, sc.Scale, 500)
	cfg.Crews = crews
	cfg.CampaignsPerDay = campaignsPerDay * sc.Scale
	cfg.LureBase = lureBase
	cfg.Archetypes = sc.Archetypes
	return cfg
}

// world2011 runs October–December 2011: the retention-tactic baseline and
// the Dataset 9 contact-risk experiment (cohorts formed after 15 days,
// outcomes over the following 60).
func (sc StudyConfig) world2011() *World {
	cfg := sc.era(
		time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC), 75, 20000,
		Roster2011(), 12, 350)
	cfg.Recovery = recovery.Config2011()
	cfg.CampaignDays = 15 // background phishing only while cohorts form
	cfg.Spill = sc.spillFor("2011")
	w := NewWorld(cfg)
	w.Run()
	return w
}

// world2012 runs November 2012: the era most datasets come from (4–8,
// 11), plus the decoy experiment and the Forms-page HTTP analyses.
func (sc StudyConfig) world2012() *World {
	cfg := sc.era(
		time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC), 30, 12000,
		Roster2012(), 30, 420)
	cfg.DecoyN = scaleInt(sc.DecoyN, sc.Scale, 40)
	cfg.Spill = sc.spillFor("2012")
	w := NewWorld(cfg)
	w.InjectDecoys(20 * 24 * time.Hour)
	w.Run()
	return w
}

// world2013 runs February 2013: a month of recovery claims (Dataset 12,
// Figure 10).
func (sc StudyConfig) world2013() *World {
	cfg := sc.era(
		time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC), 28, 8000,
		Roster2012(), 22, 420)
	cfg.Spill = sc.spillFor("2013")
	w := NewWorld(cfg)
	w.Run()
	return w
}

// world2014 runs January 2014: attribution (Dataset 13) and the curated
// phishing email/page review (Datasets 1–2, Table 2).
func (sc StudyConfig) world2014() *World {
	cfg := sc.era(
		time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC), 30, 10000,
		Roster2014(), 25, 420)
	// No outlier campaigns here: their 6× lure volume makes the Table 2
	// email sample lumpy, and Figure 6 is computed from the 2012 world.
	cfg.OutlierShare = 0
	cfg.Spill = sc.spillFor("2014")
	w := NewWorld(cfg)
	w.Run()
	return w
}

// worldBase runs the separate low-intensity world calibrated to the
// paper's ~9 hijacks per million active users per day — the era worlds
// run at boosted phishing intensity for statistical power (documented in
// EXPERIMENTS.md).
func (sc StudyConfig) worldBase() *World {
	cfg := sc.era(
		time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC), 30, 20000,
		Roster2012(), 0.9, 100)
	cfg.Spill = sc.spillFor("base")
	w := NewWorld(cfg)
	w.Run()
	return w
}

// runAll executes jobs on at most par workers. par <= 1 runs them
// sequentially in order (the legacy engine). Jobs must write to disjoint
// state; the pool provides only the completion barrier.
func runAll(par int, jobs []func()) {
	if par <= 1 || len(jobs) < 2 {
		for _, job := range jobs {
			job()
		}
		return
	}
	if par > len(jobs) {
		par = len(jobs)
	}
	next := make(chan func())
	var wg sync.WaitGroup
	wg.Add(par)
	for i := 0; i < par; i++ {
		go func() {
			defer wg.Done()
			for job := range next {
				job()
			}
		}()
	}
	for _, job := range jobs {
		next <- job
	}
	close(next)
	wg.Wait()
}

// RunStudy executes the four observation windows and computes every
// artifact from the era-appropriate world, mirroring how the paper's
// datasets were drawn from different time windows of Google's logs
// (Table 1) and aggregated via map-reduce.
//
// The engine has two parallel phases. First the five era worlds run
// concurrently — each owns an independent seed, clock, and log, so the
// phase is wall-clock-bound by the slowest era instead of the sum of all
// five. Then the read-only analyses fan out across the worker pool over
// the sealed logs. Both phases are deterministic at any parallelism:
// every analysis writes a distinct StudyReport field, so the report is
// byte-identical for a fixed Seed whatever StudyConfig.Parallelism says.
func RunStudy(sc StudyConfig) *StudyReport {
	if sc.Scale <= 0 {
		sc.Scale = 1
	}
	par := sc.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	r := &StudyReport{}

	var w2011, w2012, w2013, w2014, wBase *World
	runAll(par, []func(){
		func() { w2011 = sc.world2011() },
		func() { w2012 = sc.world2012() },
		func() { w2013 = sc.world2013() },
		func() { w2014 = sc.world2014() },
		func() { wBase = sc.worldBase() },
	})
	r.Events2011 = w2011.Log.Len()
	r.Events2012 = w2012.Log.Len()
	r.Events2013 = w2013.Log.Len()
	r.Events2014 = w2014.Log.Len()

	// Fan the shared analysis registry (registry.go) out over the sealed
	// logs, each entry against its era's world.
	inputs := [eraCount]AnalysisInput{
		Era2011: worldInput(w2011, sc.Scale),
		Era2012: worldInput(w2012, sc.Scale),
		Era2013: worldInput(w2013, sc.Scale),
		Era2014: worldInput(w2014, sc.Scale),
		EraBase: worldInput(wBase, sc.Scale),
	}
	jobs, _ := analysisJobs(func(e Era) AnalysisInput { return inputs[e] }, r, par)
	runAll(par, jobs)

	return r
}
