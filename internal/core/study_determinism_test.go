package core_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/report"
)

// The hard guarantee of the parallel engine: the same seed yields a
// byte-identical StudyReport at any parallelism. A reduced-scale study
// runs once sequentially (the legacy engine) and once on an 8-worker
// pool; both the struct and the rendered report must match exactly.
func TestRunStudyDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("study determinism test is slow")
	}
	run := func(par int) *core.StudyReport {
		sc := core.DefaultStudyConfig(11)
		sc.Scale = 0.1
		sc.Parallelism = par
		// Mixed-archetype roster: the determinism guarantee must hold
		// with playbook actors in every era world, not just the manual
		// crews.
		sc.Archetypes = []core.ArchetypeSpec{
			{Archetype: "smashgrab", Count: 2},
			{Archetype: "stuffer", Count: 1},
			{Archetype: "lowslow", Count: 1},
			{Archetype: "impaas", Count: 1},
		}
		return core.RunStudy(sc)
	}
	start := time.Now()
	seq := run(1)
	seqWall := time.Since(start)
	start = time.Now()
	parl := run(8)
	parWall := time.Since(start)
	t.Logf("sequential %v, 8-way %v", seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond))

	if !reflect.DeepEqual(seq, parl) {
		// Narrow the diff to the first field that diverges.
		sv, pv := reflect.ValueOf(*seq), reflect.ValueOf(*parl)
		for i := 0; i < sv.NumField(); i++ {
			if !reflect.DeepEqual(sv.Field(i).Interface(), pv.Field(i).Interface()) {
				t.Errorf("field %s diverges across parallelism:\nseq: %+v\npar: %+v",
					sv.Type().Field(i).Name, sv.Field(i).Interface(), pv.Field(i).Interface())
			}
		}
		t.Fatal("StudyReport not deterministic across parallelism")
	}

	var seqOut, parOut bytes.Buffer
	report.RenderStudy(&seqOut, seq)
	report.RenderStudy(&parOut, parl)
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Fatal("rendered reports differ across parallelism")
	}
}
