package core

import (
	"sync/atomic"
	"testing"
)

func TestRunAllSequentialPreservesOrder(t *testing.T) {
	var got []int
	jobs := make([]func(), 10)
	for i := range jobs {
		i := i
		jobs[i] = func() { got = append(got, i) }
	}
	runAll(1, jobs)
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken at %d: %v", i, got)
		}
	}
}

func TestRunAllParallelRunsEveryJobOnce(t *testing.T) {
	const n = 100
	var counts [n]int32
	jobs := make([]func(), n)
	for i := range jobs {
		i := i
		jobs[i] = func() { atomic.AddInt32(&counts[i], 1) }
	}
	runAll(8, jobs)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestRunAllMoreWorkersThanJobs(t *testing.T) {
	ran := int32(0)
	runAll(64, []func(){
		func() { atomic.AddInt32(&ran, 1) },
		func() { atomic.AddInt32(&ran, 1) },
	})
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}
