package core

import (
	"testing"
	"time"

	"manualhijack/internal/stats"
)

// TestStudySmoke runs a reduced-scale study end to end and prints the
// headline numbers so calibration drift is visible in test logs.
func TestStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("study smoke is slow")
	}
	sc := DefaultStudyConfig(7)
	sc.Scale = 0.25
	start := time.Now()
	r := RunStudy(sc)
	t.Logf("wall: %v events: 2011=%d 2012=%d 2013=%d 2014=%d",
		time.Since(start), r.Events2011, r.Events2012, r.Events2013, r.Events2014)
	t.Logf("T2 email mail=%.2f bank=%.2f | page mail=%.2f bank=%.2f (n=%d/%d)",
		r.Table2.EmailShares["mail"], r.Table2.EmailShares["bank"],
		r.Table2.PageShares["mail"], r.Table2.PageShares["bank"], r.Table2.EmailN, r.Table2.PageN)
	t.Logf("URLShare=%.2f", r.URLShare)
	t.Logf("F3 blank=%.4f nonblank=%d (GETs %d)", r.Fig3.BlankShare, len(r.Fig3.NonBlank), r.Fig3.TotalGETs)
	t.Logf("F4 edu=%.2f n=%d", r.Fig4.EduShare, r.Fig4.N)
	t.Logf("F5 mean=%.3f min=%.3f max=%.3f pages=%d", r.Fig5.Mean, r.Fig5.Min, r.Fig5.Max, len(r.Fig5.PerPage))
	t.Logf("F6 pages=%d outlierQuiet=%dh outlierLen=%d", r.Fig6.Pages, r.Fig6.OutlierQuietHours, len(r.Fig6.Outlier))
	t.Logf("F7 submitted=%d accessed=%.2f w30m=%.2f w7h=%.2f", r.Fig7.Submitted, r.Fig7.AccessedShare, r.Fig7.Within30Min, r.Fig7.Within7Hours)
	t.Logf("F8 attempts/ipday=%.2f accts/ipday=%.2f max=%d pwok=%.2f ipdays=%d",
		r.Fig8.MeanAttemptsPerIPDay, r.Fig8.MeanAccountsPerIPDay, r.Fig8.MaxAccountsPerIPDay, r.Fig8.PasswordOKShare, r.Fig8.IPDays)
	t.Logf("T3 n=%d finance=%.2f cred=%.3f es=%v zh=%v", r.Table3.N, r.Table3.FinanceShare, r.Table3.CredShare, r.Table3.HasSpanish, r.Table3.HasChinese)
	t.Logf("Assess cases=%d mean=%v exploited=%.2f folders=%v", r.Assessment.Cases, r.Assessment.MeanDuration, r.Assessment.ExploitedShare, r.Assessment.FolderOpenRates)
	t.Logf("Exploit vol=%.2f rcpt=%.2f rep=%.2f scam=%.2f ≤5=%.2f small=%.3f", r.Exploitation.VolumeDelta, r.Exploitation.RecipientsDelta, r.Exploitation.ReportsDelta, r.Exploitation.ScamShare, r.Exploitation.AtMostFiveMessages, r.Exploitation.SmallCustomizedShare)
	t.Logf("Contacts rate=%.4f vs %.4f mult=%.1f (n=%d/%d)", r.ContactRisk.ContactRate, r.ContactRisk.RandomRate, r.ContactRisk.Multiplier, r.ContactRisk.ContactCohort, r.ContactRisk.RandomCohort)
	t.Logf("Ret11 lock=%.2f del|lock=%.2f rec|lock=%.2f cases=%d", r.Retention2011.LockoutShare, r.Retention2011.MassDeleteGivenLockout, r.Retention2011.RecoveryChangeGivenLockout, r.Retention2011.Cases)
	t.Logf("Ret12 lock=%.2f del|lock=%.3f rec|lock=%.2f filter=%.2f replyto=%.2f cases=%d", r.Retention2012.LockoutShare, r.Retention2012.MassDeleteGivenLockout, r.Retention2012.RecoveryChangeGivenLockout, r.Retention2012.FilterShare, r.Retention2012.ReplyToShare, r.Retention2012.Cases)
	t.Logf("F9 n=%d w1h=%.2f w13h=%.2f", r.Fig9.Recoveries, r.Fig9.Within1Hour, r.Fig9.Within13Hour)
	t.Logf("F10 %v", r.Fig10.Methods)
	t.Logf("Channels recycled=%.3f bounce=%.3f emailAttempts=%d", r.Channels.RecycledShare, r.Channels.BounceShare, r.Channels.EmailAttempts)
	t.Logf("F11 top=%v cases=%d", top3(r.Fig11.Shares), r.Fig11.Cases)
	t.Logf("F12 top=%v phones=%d", top3(r.Fig12.Shares), r.Fig12.Phones)
	t.Logf("BaseRate=%.1f/M/day hijacks=%d active=%d pages/wk=%v", r.BaseRates.HijacksPerMillionActivePerDay, r.BaseRates.Hijacks, r.BaseRates.ActiveAccounts, r.BaseRates.PagesPerWeek)
	t.Logf("Behavior prec=%.2f rec=%.2f exposure=%v (hj=%d org=%d fp=%d)", r.Behavior.Precision, r.Behavior.Recall, r.Behavior.MeanExposure, r.Behavior.HijackSessions, r.Behavior.OrganicSessions, r.Behavior.FalsePositives)
	for _, pt := range r.RiskSweep {
		t.Logf("risk t=%.2f caught=%.2f friction=%.4f", pt.Threshold, pt.HijackerCaught, pt.OwnerChallenged)
	}
}

func top3(es []stats.Entry) []stats.Entry {
	if len(es) > 3 {
		es = es[:3]
	}
	return es
}
