package core_test

import (
	"bytes"
	"testing"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/report"
)

// studyReport runs one reduced-scale study per test binary and shares it:
// the shape assertions below all read from the same deterministic run.
var sharedReport *core.StudyReport

func studyReport(t *testing.T) *core.StudyReport {
	t.Helper()
	if testing.Short() {
		t.Skip("study integration tests are slow")
	}
	if sharedReport == nil {
		sc := core.DefaultStudyConfig(7)
		sc.Scale = 0.25
		sharedReport = core.RunStudy(sc)
	}
	return sharedReport
}

func TestStudyTable2Shape(t *testing.T) {
	r := studyReport(t)
	e := r.Table2.EmailShares
	if e[event.TargetMail] < 0.25 || e[event.TargetMail] > 0.45 {
		t.Errorf("email mail share = %.2f, want ~0.35", e[event.TargetMail])
	}
	if e[event.TargetMail] <= e[event.TargetAppStore] || e[event.TargetMail] <= e[event.TargetSocial] {
		t.Errorf("mail should dominate email targets: %v", e)
	}
	p := r.Table2.PageShares
	if p[event.TargetMail] < 0.18 || p[event.TargetMail] > 0.40 {
		t.Errorf("page mail share = %.2f, want ~0.27", p[event.TargetMail])
	}
	// HasURL is drawn per campaign, so a 100-lure sample clusters to an
	// effective n of ~40 campaigns; the band reflects that.
	if r.URLShare < 0.42 || r.URLShare > 0.80 {
		t.Errorf("URL share = %.2f, want ~0.62", r.URLShare)
	}
}

func TestStudyFigure3Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig3.BlankShare < 0.98 {
		t.Errorf("blank referrers = %.4f, want > 0.98", r.Fig3.BlankShare)
	}
	if len(r.Fig3.NonBlank) < 3 {
		t.Errorf("non-blank referrer variety = %d", len(r.Fig3.NonBlank))
	}
}

func TestStudyFigure4Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig4.EduShare < 0.5 {
		t.Errorf("edu share = %.2f, want dominant", r.Fig4.EduShare)
	}
	if len(r.Fig4.Shares) < 5 {
		t.Errorf("TLD variety = %d, want a long tail", len(r.Fig4.Shares))
	}
	if r.Fig4.Shares[0].Key != "edu" {
		t.Errorf("top TLD = %s, want edu", r.Fig4.Shares[0].Key)
	}
}

func TestStudyFigure5Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig5.Mean < 0.08 || r.Fig5.Mean > 0.22 {
		t.Errorf("mean success rate = %.3f, want ~0.14", r.Fig5.Mean)
	}
	if r.Fig5.Max < 0.25 {
		t.Errorf("max success rate = %.3f, want a high-variance spread", r.Fig5.Max)
	}
	if r.Fig5.Max-r.Fig5.Min < 0.15 {
		t.Errorf("success-rate spread = %.3f–%.3f, want huge variance", r.Fig5.Min, r.Fig5.Max)
	}
}

func TestStudyFigure6Shape(t *testing.T) {
	r := studyReport(t)
	if len(r.Fig6.StandardAvg) == 0 {
		t.Fatal("no standard-page series")
	}
	// Decay: early volume must exceed late volume.
	early, late := 0.0, 0.0
	n := len(r.Fig6.StandardAvg)
	for i, v := range r.Fig6.StandardAvg {
		if i < n/4 {
			early += v
		} else if i >= n*3/4 {
			late += v
		}
	}
	if early <= late {
		t.Errorf("standard pages lack decay: early=%.1f late=%.1f", early, late)
	}
	if len(r.Fig6.Outlier) == 0 {
		t.Fatal("no outlier series")
	}
	if r.Fig6.OutlierQuietHours < 6 {
		t.Errorf("outlier quiet period = %dh, want a testing lull (~15h)", r.Fig6.OutlierQuietHours)
	}
}

func TestStudyFigure7Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig7.Submitted == 0 {
		t.Fatal("no decoys submitted")
	}
	if r.Fig7.AccessedShare < 0.6 || r.Fig7.AccessedShare >= 1.0 {
		t.Errorf("accessed = %.2f, want most but not all", r.Fig7.AccessedShare)
	}
	if r.Fig7.Within30Min < 0.08 || r.Fig7.Within30Min > 0.45 {
		t.Errorf("within 30 min = %.2f, want ~0.20", r.Fig7.Within30Min)
	}
	if r.Fig7.Within7Hours < 0.30 || r.Fig7.Within7Hours > 0.75 {
		t.Errorf("within 7h = %.2f, want ~0.50", r.Fig7.Within7Hours)
	}
	if r.Fig7.Within7Hours <= r.Fig7.Within30Min {
		t.Error("CDF not increasing")
	}
}

func TestStudyFigure8Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig8.MaxAccountsPerIPDay > 10 {
		t.Errorf("max accounts per IP-day = %d, discipline cap is 10", r.Fig8.MaxAccountsPerIPDay)
	}
	if r.Fig8.MeanAccountsPerIPDay < 3 {
		t.Errorf("mean accounts per IP-day = %.1f, want high utilization", r.Fig8.MeanAccountsPerIPDay)
	}
	if r.Fig8.PasswordOKShare < 0.55 || r.Fig8.PasswordOKShare > 0.85 {
		t.Errorf("correct-password share = %.2f, want ~0.75 minus retries", r.Fig8.PasswordOKShare)
	}
}

func TestStudyTable3Shape(t *testing.T) {
	r := studyReport(t)
	if r.Table3.FinanceShare < 0.75 {
		t.Errorf("finance share = %.2f, want overwhelming", r.Table3.FinanceShare)
	}
	if r.Table3.CredShare > 0.15 {
		t.Errorf("credential share = %.2f, want small", r.Table3.CredShare)
	}
	if !r.Table3.HasSpanish || !r.Table3.HasChinese {
		t.Errorf("regional terms missing: es=%v zh=%v", r.Table3.HasSpanish, r.Table3.HasChinese)
	}
	// "wire transfer" and "bank transfer" have near-equal Table 3 weights;
	// either may sample on top, but both must lead the list.
	top2 := map[string]bool{r.Table3.Terms[0].Key: true, r.Table3.Terms[1].Key: true}
	if !top2["wire transfer"] || !top2["bank transfer"] {
		t.Errorf("top terms = %v, want wire/bank transfer leading", r.Table3.Terms[:2])
	}
}

func TestStudyAssessmentShape(t *testing.T) {
	r := studyReport(t)
	a := r.Assessment
	if a.Cases < 50 {
		t.Fatalf("cases = %d, too few for shape checks", a.Cases)
	}
	if a.MeanDuration < 2*time.Minute || a.MeanDuration > 4*time.Minute {
		t.Errorf("mean assessment = %v, want ~3m", a.MeanDuration)
	}
	if a.ExploitedShare <= 0.2 || a.ExploitedShare >= 0.95 {
		t.Errorf("exploited share = %.2f, want some abandoned", a.ExploitedShare)
	}
	f := a.FolderOpenRates
	if f[event.FolderStarred] < 0.08 || f[event.FolderStarred] > 0.28 {
		t.Errorf("starred rate = %.2f, want ~0.16", f[event.FolderStarred])
	}
	if f[event.FolderStarred] <= f[event.FolderSent] {
		t.Errorf("folder ordering wrong: %v", f)
	}
	if f[event.FolderTrash] > 0.05 {
		t.Errorf("trash rate = %.2f, want <1%%-ish", f[event.FolderTrash])
	}
}

func TestStudyExploitationShape(t *testing.T) {
	r := studyReport(t)
	e := r.Exploitation
	if e.ScamShare < 0.5 || e.ScamShare > 0.85 {
		t.Errorf("scam share = %.2f, want ~0.65", e.ScamShare)
	}
	if e.RecipientsDelta <= e.VolumeDelta {
		t.Errorf("recipients delta (%.1f) must exceed volume delta (%.1f)",
			e.RecipientsDelta, e.VolumeDelta)
	}
	if e.ReportsDelta <= 0 {
		t.Errorf("spam reports delta = %.2f, want a jump", e.ReportsDelta)
	}
	if e.AtMostFiveMessages < 0.5 {
		t.Errorf("≤5 messages share = %.2f, want most", e.AtMostFiveMessages)
	}
}

func TestStudyContactRiskShape(t *testing.T) {
	r := studyReport(t)
	cr := r.ContactRisk
	if cr.ContactCohort < 50 || cr.RandomCohort < 200 {
		t.Fatalf("cohorts too small: %d/%d", cr.ContactCohort, cr.RandomCohort)
	}
	// The random-cohort hit count is 0–3 events, so the multiplier's seed
	// variance spans roughly 8×–70× around the paper's 36×.
	if cr.Multiplier < 8 {
		t.Errorf("contact multiplier = %.1f×, want order of paper's 36×", cr.Multiplier)
	}
	if cr.ContactRate <= cr.RandomRate {
		t.Error("contacts not at elevated risk")
	}
}

func TestStudyRetentionEvolution(t *testing.T) {
	r := studyReport(t)
	if r.Retention2011.MassDeleteGivenLockout < 0.3 {
		t.Errorf("2011 mass-delete|lockout = %.2f, want ~0.46", r.Retention2011.MassDeleteGivenLockout)
	}
	if r.Retention2012.MassDeleteGivenLockout > 0.08 {
		t.Errorf("2012 mass-delete|lockout = %.3f, want ~0.016", r.Retention2012.MassDeleteGivenLockout)
	}
	if r.Retention2011.RecoveryChangeGivenLockout <= r.Retention2012.RecoveryChangeGivenLockout {
		t.Error("recovery-change rate should drop 2011→2012")
	}
	if r.Retention2012.FilterShare < 0.05 || r.Retention2012.FilterShare > 0.30 {
		t.Errorf("filter share = %.2f, want ~0.15", r.Retention2012.FilterShare)
	}
	if r.Retention2012.ReplyToShare < 0.10 || r.Retention2012.ReplyToShare > 0.40 {
		t.Errorf("reply-to share = %.2f, want ~0.26", r.Retention2012.ReplyToShare)
	}
}

func TestStudyFigure9Shape(t *testing.T) {
	r := studyReport(t)
	if r.Fig9.Recoveries < 20 {
		t.Fatalf("recoveries = %d, too few", r.Fig9.Recoveries)
	}
	if r.Fig9.Within1Hour < 0.05 || r.Fig9.Within1Hour > 0.45 {
		t.Errorf("within 1h = %.2f, want ~0.22", r.Fig9.Within1Hour)
	}
	if r.Fig9.Within13Hour < 0.35 || r.Fig9.Within13Hour > 0.92 {
		t.Errorf("within 13h = %.2f, want ~0.50", r.Fig9.Within13Hour)
	}
	if r.Fig9.Within13Hour <= r.Fig9.Within1Hour {
		t.Error("latency CDF not increasing")
	}
}

func TestStudyFigure10Shape(t *testing.T) {
	r := studyReport(t)
	sms := r.Fig10.Methods[event.MethodSMS]
	email := r.Fig10.Methods[event.MethodEmail]
	fallback := r.Fig10.Methods[event.MethodFallback]
	if sms.Attempts == 0 || email.Attempts == 0 || fallback.Attempts == 0 {
		t.Fatalf("missing method attempts: %+v", r.Fig10.Methods)
	}
	// SMS and email both sit near 75–81% and can swap order in modest
	// samples; the hard property is that both far exceed the fallback.
	if sms.Rate <= fallback.Rate+0.2 || email.Rate <= fallback.Rate+0.2 {
		t.Errorf("method ordering wrong: sms=%.2f email=%.2f fallback=%.2f",
			sms.Rate, email.Rate, fallback.Rate)
	}
	if sms.Rate < 0.65 || sms.Rate > 0.95 {
		t.Errorf("sms rate = %.3f, want ~0.81", sms.Rate)
	}
	if fallback.Rate > 0.40 {
		t.Errorf("fallback rate = %.3f, want ~0.14", fallback.Rate)
	}
}

func TestStudyChannelsShape(t *testing.T) {
	r := studyReport(t)
	if r.Channels.RecycledShare < 0.04 || r.Channels.RecycledShare > 0.10 {
		t.Errorf("recycled = %.3f, want ~0.07", r.Channels.RecycledShare)
	}
}

func TestStudyAttributionShape(t *testing.T) {
	r := studyReport(t)
	// Figure 11: CN and MY must be the top two.
	if len(r.Fig11.Shares) < 3 {
		t.Fatalf("f11 shares = %v", r.Fig11.Shares)
	}
	top2 := map[string]bool{r.Fig11.Shares[0].Key: true, r.Fig11.Shares[1].Key: true}
	if !top2[string(geo.China)] || !top2[string(geo.Malaysia)] {
		t.Errorf("f11 top two = %v, want CN and MY", r.Fig11.Shares[:2])
	}
	// Figure 12: CI and NG dominate; CN/MY absent.
	if r.Fig12.Phones < 5 {
		t.Fatalf("f12 phones = %d, too few", r.Fig12.Phones)
	}
	for _, e := range r.Fig12.Shares {
		if e.Key == string(geo.China) || e.Key == string(geo.Malaysia) {
			t.Errorf("f12 contains %s; those crews didn't use the phone tactic", e.Key)
		}
	}
	top2 = map[string]bool{r.Fig12.Shares[0].Key: true}
	if len(r.Fig12.Shares) > 1 {
		top2[r.Fig12.Shares[1].Key] = true
	}
	if !top2[string(geo.IvoryCoast)] && !top2[string(geo.Nigeria)] {
		t.Errorf("f12 top = %v, want CI/NG", r.Fig12.Shares)
	}
}

func TestStudyBehaviorShape(t *testing.T) {
	r := studyReport(t)
	if r.Behavior.Recall < 0.4 {
		t.Errorf("behavior recall = %.2f, want useful", r.Behavior.Recall)
	}
	if r.Behavior.Precision < 0.8 {
		t.Errorf("behavior precision = %.2f, want high", r.Behavior.Precision)
	}
	if r.Behavior.MeanExposure <= 0 {
		t.Error("behavioral detector must fire after some exposure (§8.2)")
	}
}

func TestStudyRiskSweepMonotone(t *testing.T) {
	r := studyReport(t)
	var prevCaught, prevFriction float64 = 2, 2
	for _, pt := range r.RiskSweep {
		if pt.HijackerCaught > prevCaught+1e-9 || pt.OwnerChallenged > prevFriction+1e-9 {
			t.Errorf("sweep not monotone at t=%.2f", pt.Threshold)
		}
		prevCaught, prevFriction = pt.HijackerCaught, pt.OwnerChallenged
	}
}

func TestRenderStudyOutput(t *testing.T) {
	r := studyReport(t)
	var b bytes.Buffer
	report.RenderStudy(&b, r)
	out := b.String()
	for _, want := range []string{"Table 2", "Figure 7", "Figure 10", "Figure 12", "threshold sweep"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestStudyWorkScheduleShape(t *testing.T) {
	r := studyReport(t)
	ws := r.Schedule
	if ws.Logins < 200 {
		t.Fatalf("hijacker logins = %d, too few", ws.Logins)
	}
	// §5.5: largely inactive over the weekends (uniform would be 28.6%).
	if ws.WeekendShare > 0.05 {
		t.Errorf("weekend share = %.2f, want near zero", ws.WeekendShare)
	}
	// A synchronized lunch break shows as a deep mid-shift dip.
	if ws.LunchDip < 0.5 {
		t.Errorf("lunch dip = %.2f, want pronounced", ws.LunchDip)
	}
	// Tight daily schedule: well under round-the-clock activity.
	if ws.ActiveHours > 18 {
		t.Errorf("active hours = %d, want a shift, not 24/7", ws.ActiveHours)
	}
}

func TestStudyDoppelgangerShape(t *testing.T) {
	r := studyReport(t)
	d := r.Doppelganger
	if d.HijackerSettings < 10 {
		t.Fatalf("hijacker redirections = %d, too few", d.HijackerSettings)
	}
	if d.Precision < 0.9 {
		t.Errorf("doppelganger precision = %.2f, want high", d.Precision)
	}
	if d.Recall < 0.5 {
		t.Errorf("doppelganger recall = %.2f, want useful", d.Recall)
	}
	if d.MeanHijackerSim <= d.MeanOwnerSim {
		t.Error("no similarity separation between hijacker and owner settings")
	}
}
