// Package core assembles the full study world — population, mail and
// login services with their defenses, phishing infrastructure with the
// anti-phishing pipeline, hijacker crews, organic victims, and the
// recovery system — runs the simulation, and exposes the measurement
// harnesses (the decoy-credential experiment, the era-segmented study).
//
// The paper's datasets span 2011–2014 with era-specific hijacker tactics
// and defenses. RunStudy (study.go) models this by running one world per
// observation window (October 2011, November 2012, February 2013, January
// 2014), each with the era's tactics profile, crew roster, and recovery
// configuration, and computing each table/figure from the era-appropriate
// world's logs — mirroring how the original datasets were drawn from
// different time windows of Google's logs.
package core

import (
	"fmt"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/behavior"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/hijacker"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/playbook"
	"manualhijack/internal/randx"
	"manualhijack/internal/recovery"
	"manualhijack/internal/risk"
	"manualhijack/internal/safebrowsing"
	"manualhijack/internal/simtime"
	"manualhijack/internal/victim"
)

// CrewSpec is one hijacker crew plus its share of the phished-credential
// flow. Weight is relative: mail-targeted phishing pages are assigned to
// crews proportionally, so a crew's hijack volume tracks its weight — the
// lever that calibrates the attribution figures (11 and 12).
type CrewSpec struct {
	Config hijacker.Config
	Weight float64
}

// ArchetypeSpec fields Count instances of a registered playbook archetype
// (internal/playbook) alongside the manual crews. Weight is each
// instance's share of the mail-targeted phished-credential flow, on the
// same relative scale as CrewSpec.Weight; zero means a default modest
// share so rosters stay calibrated around the manual crews.
type ArchetypeSpec struct {
	Archetype string
	Count     int
	Weight    float64
}

// defaultArchetypeWeight is the per-instance credential-flow share an
// ArchetypeSpec gets when its Weight is zero — small next to the 2012
// manual roster's ~77 total so archetypes ride along without drowning
// out the paper's calibrated crews.
const defaultArchetypeWeight = 4.0

// Config describes one world.
type Config struct {
	Seed  int64
	Start time.Time
	// Days is the observation-window length.
	Days int
	// PopulationN is the organic population size; DecoyN adds
	// study-controlled decoy accounts (no contacts, used by the Dataset 4
	// experiment).
	PopulationN int
	DecoyN      int

	Auth      auth.Config
	RiskW     risk.Weights
	Challenge challenge.Config
	Recovery  recovery.Config
	Victims   victim.Config
	SafeB     safebrowsing.Config
	MailSeed  mail.SeedConfig

	Crews []CrewSpec
	// Archetypes fields additional playbook actors (smash & grab,
	// credential stuffers, ...) next to the manual crews.
	Archetypes []ArchetypeSpec

	// CampaignsPerDay is the mean rate of new phishing campaigns.
	CampaignsPerDay float64
	// LureBase is the base lure-blast size per campaign; the per-target
	// volume is scaled so reported phishing *emails* follow Table 2's
	// email column while *pages* follow its page column.
	LureBase int
	// FormsShare is the fraction of pages hosted on the provider's Forms
	// product (Dataset 3).
	FormsShare float64
	// OutlierShare is the fraction of campaigns with the Figure 6
	// high-volume outlier shape.
	OutlierShare float64
	// CampaignDays limits how long new background campaigns launch; zero
	// means the whole window. The Dataset 9 contact-risk experiment stops
	// background phishing after the cohorts form, so the outcome window
	// isolates the hijacker-driven contact-phishing loop.
	CampaignDays int
	// TwoSVAdoption is the fraction of owners with 2-step verification
	// enabled (own phone); AppPasswordShare is the fraction of those who
	// also created a phishable application-specific password for a legacy
	// client — §8.2's trade-off, exercised by the ablation bench.
	TwoSVAdoption    float64
	AppPasswordShare float64
	// BehavioralDefense runs the §5.2/§8.2 post-login detector *online*,
	// suspending accounts whose sessions match the hijacker playbook. Off
	// by default: the paper-era calibration assumes the detector observes
	// rather than intervenes; the ablation bench flips it on.
	BehavioralDefense bool
	// AuthLogRetentionDays, when positive, erases login records older
	// than the window once per simulated day — the privacy/storage
	// sanitization the paper says forced several datasets to cover only a
	// few weeks despite the three-year study ("Google sanitizes or
	// entirely erases many authentication-related logs within a short
	// time window", §3). Off by default so analyses see full windows.
	AuthLogRetentionDays int
	// Spill, when Dir is set, builds the world's log as spill-to-disk
	// segments instead of one in-RAM slice: peak memory is bounded by the
	// segment size, not the world size, and the sealed log serves reads
	// as a map-reduce over the segment files. Incompatible with
	// AuthLogRetentionDays — spilled segments are immutable. The Meta
	// field is filled from the world's window and seed.
	Spill logstore.SpillConfig
}

// DefaultConfig returns a mid-sized world with the November 2012 era
// profile — the era most of the paper's datasets come from.
func DefaultConfig(seed int64) Config {
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	return Config{
		Seed:            seed,
		Start:           start,
		Days:            30,
		PopulationN:     8000,
		DecoyN:          0,
		Auth:            auth.DefaultConfig(),
		RiskW:           risk.DefaultWeights(),
		Challenge:       challenge.DefaultConfig(),
		Recovery:        recovery.DefaultConfig(),
		Victims:         victim.DefaultConfig(),
		SafeB:           safebrowsing.DefaultConfig(),
		MailSeed:        mail.DefaultSeedConfig(),
		Crews:           Roster2012(),
		CampaignsPerDay: 4,
		LureBase:        400,
		FormsShare:      0.30,
		OutlierShare:    0.02,
	}
}

// World is an assembled simulation.
type World struct {
	Cfg   Config
	Clock *simtime.Clock
	Log   *logstore.Store
	Dir   *identity.Directory
	Plan  *geo.IPPlan
	Mail  *mail.Service
	Auth  *auth.Service
	Rec   *recovery.Service
	Vict  *victim.Manager
	Inf   *phishkit.Infrastructure
	SB    *safebrowsing.Pipeline
	Crews []*hijacker.Crew
	// Actors are the playbook archetypes fielded next to the crews.
	Actors []playbook.Actor
	// Guard is the online behavioral defense (nil unless enabled).
	Guard *Guardian

	rng       *randx.Rand
	sinkPick  *randx.Weighted[phishkit.CredentialSink]
	pageMix   *randx.Weighted[event.TargetKind]
	lureScale map[event.TargetKind]float64
	mailPages []event.PageID
	decoyIDs  []identity.AccountID
	ran       bool
}

// expectedEvents estimates the log volume a world will produce, for
// pre-sizing the store (a hint, not a bound — under-estimates just fall
// back to growth). Calibrated against measured worlds: organic population
// activity runs ~2.4 records per user-day, and each campaign contributes
// roughly LureBase×email-scale lure records plus a thin stream of page
// and hijack events.
func (cfg Config) expectedEvents() int {
	users := cfg.PopulationN + cfg.DecoyN
	organic := float64(users*cfg.Days) * 2.5
	days := cfg.Days
	if cfg.CampaignDays > 0 && cfg.CampaignDays < days {
		days = cfg.CampaignDays
	}
	phishing := cfg.CampaignsPerDay * float64(days) * float64(cfg.LureBase) * 2
	return int(organic+phishing) + 1024
}

// NewWorld assembles a world from cfg.
func NewWorld(cfg Config) *World {
	clock := simtime.NewClock(cfg.Start)
	// Pre-size the hot-path containers from the config's scale hints so
	// steady-state simulation neither reallocates the event queue nor
	// grow-copies the log.
	clock.Reserve((cfg.PopulationN + cfg.DecoyN) * 2)
	rng := randx.New(cfg.Seed)
	dir := NewStudyDirectory(cfg.Seed, cfg.Start, cfg.PopulationN+cfg.DecoyN)

	log := logstore.New()
	if sp := cfg.Spill; sp.Dir != "" {
		if cfg.AuthLogRetentionDays > 0 {
			panic("core: AuthLogRetentionDays sanitization is incompatible with a spilled log (segments are immutable)")
		}
		if sp.Meta == (logstore.Meta{}) {
			sp.Meta = logstore.Meta{
				Start: cfg.Start,
				End:   cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour),
				Seed:  cfg.Seed,
			}
		}
		if err := log.EnableSpill(sp); err != nil {
			panic("core: enable spill: " + err.Error())
		}
	}
	log.Reserve(cfg.expectedEvents())
	plan := DefaultIPPlan()

	var analyzer *risk.Analyzer
	if cfg.Auth.RiskEnabled {
		analyzer = risk.NewAnalyzer(plan, cfg.RiskW)
	}
	challenger := challenge.New(cfg.Challenge, rng.Fork("challenge"))
	authSvc := auth.NewService(dir, clock, log, analyzer, challenger, cfg.Auth)

	mailSvc := mail.NewService(dir, clock, log)
	mailSvc.Seed(rng, cfg.MailSeed)

	inf := phishkit.NewInfrastructure(clock, log, dir, plan, rng)
	sb := safebrowsing.NewPipeline(cfg.SafeB, clock, log, inf, rng)
	inf.SetDetector(sb)

	rec := recovery.NewService(cfg.Recovery, clock, log, rng, dir, authSvc, mailSvc)
	vict := victim.NewManager(cfg.Victims, clock, rng, dir, mailSvc, authSvc, rec, plan, log)
	vict.PrimeRisk()

	w := &World{
		Cfg: cfg, Clock: clock, Log: log, Dir: dir, Plan: plan,
		Mail: mailSvc, Auth: authSvc, Rec: rec, Vict: vict, Inf: inf, SB: sb,
		rng: rng.Fork("world"),
	}
	if cfg.BehavioralDefense {
		w.Guard = newGuardian(w, behavior.DefaultConfig())
	}

	var sinks []phishkit.CredentialSink
	var weights []float64
	for _, spec := range cfg.Crews {
		crew := hijacker.NewCrew(spec.Config, clock, log, rng, dir, mailSvc, authSvc, inf, plan)
		crew.SetListener(vict)
		crew.SetRecovery(rec)
		w.Crews = append(w.Crews, crew)
		sinks = append(sinks, crew)
		weights = append(weights, spec.Weight)
	}
	env := playbook.Env{
		Clock: clock, Log: log, Rng: rng, Dir: dir, Mail: mailSvc,
		Auth: authSvc, Inf: inf, Plan: plan, Listener: vict,
	}
	for _, spec := range cfg.Archetypes {
		weight := spec.Weight
		if weight <= 0 {
			weight = defaultArchetypeWeight
		}
		for i := 0; i < spec.Count; i++ {
			actor, err := playbook.New(spec.Archetype, playbook.Config{
				Name: fmt.Sprintf("%s-%d", spec.Archetype, i+1),
			}, env)
			if err != nil {
				panic("core: " + err.Error())
			}
			w.Actors = append(w.Actors, actor)
			sinks = append(sinks, actor)
			weights = append(weights, weight)
		}
	}
	if len(sinks) > 0 {
		w.sinkPick = randx.NewWeighted(sinks, weights)
	}

	w.pageMix = phishkit.DefaultPageTargetMix()
	// Scale lure volume per target so the reported-email mix follows
	// Table 2's email column given pages follow its page column.
	emailW := map[event.TargetKind]float64{
		event.TargetMail: 35, event.TargetBank: 21, event.TargetAppStore: 16,
		event.TargetSocial: 14, event.TargetOther: 14,
	}
	pageW := map[event.TargetKind]float64{
		event.TargetMail: 27, event.TargetBank: 25, event.TargetAppStore: 17,
		event.TargetSocial: 15, event.TargetOther: 15,
	}
	w.lureScale = make(map[event.TargetKind]float64, len(emailW))
	for k := range emailW {
		w.lureScale[k] = emailW[k] / pageW[k]
	}

	// Decoy accounts: study-controlled, no contacts, empty history value.
	for i := 0; i < cfg.DecoyN; i++ {
		id := identity.AccountID(cfg.PopulationN + i + 1)
		a := dir.Get(id)
		a.Contacts = nil
		w.decoyIDs = append(w.decoyIDs, id)
	}

	// 2-step-verification adoption (with the optional app-password hole).
	if cfg.TwoSVAdoption > 0 {
		adopt := w.rng.Fork("twosv")
		dir.All(func(a *identity.Account) {
			if a.Phone == "" || !adopt.Bool(cfg.TwoSVAdoption) {
				return
			}
			a.TwoSV = true
			a.TwoSVPhone = a.Phone
			if adopt.Bool(cfg.AppPasswordShare) {
				authSvc.CreateAppPassword(a.ID)
			}
		})
	}
	return w
}

// NewStudyDirectory builds the deterministic account population a world
// with (seed, start, n) assembles. Directory generation forks its random
// stream purely from (seed, "identity"), so a standalone process — the
// riskd serving bootstrap — reconstructs byte-identical accounts, home
// countries, and recovery options from the seed alone, the property replay
// parity depends on. n must include any decoy accounts (PopulationN +
// DecoyN).
func NewStudyDirectory(seed int64, start time.Time, n int) *identity.Directory {
	idCfg := identity.DefaultConfig(start)
	idCfg.N = n
	return identity.NewDirectory(randx.New(seed), idCfg)
}

// DefaultIPPlan returns the synthetic IP plan every world is built with.
// The plan is deterministic, which is what lets offline analysis of a
// dumped log (cmd/analyze) geolocate hijacker IPs without the original
// world: reconstructing the plan reproduces the exact address blocks.
func DefaultIPPlan() *geo.IPPlan {
	return geo.NewIPPlan(4)
}

// Tap registers fn to observe every event the world logs, at the moment it
// is appended — the hook the streaming analyses feed from. Call before Run;
// fn runs synchronously on the simulation goroutine (see logstore.SetTap
// for the contract).
func (w *World) Tap(fn func(event.Event)) {
	w.Log.SetTap(fn)
}

// End returns the end of the observation window.
func (w *World) End() time.Time {
	return w.Cfg.Start.Add(time.Duration(w.Cfg.Days) * 24 * time.Hour)
}

// DecoyIDs returns the study-controlled decoy accounts.
func (w *World) DecoyIDs() []identity.AccountID {
	return append([]identity.AccountID(nil), w.decoyIDs...)
}

// Run starts every agent, schedules the campaign stream, and drives the
// clock to the end of the window. It can only be called once.
func (w *World) Run() {
	if w.ran {
		panic("core: World.Run called twice")
	}
	w.ran = true
	end := w.End()
	w.Vict.Start(end)
	for _, crew := range w.Crews {
		crew.Start(end)
	}
	for _, actor := range w.Actors {
		actor.Start(end)
	}
	campaignEnd := end
	if w.Cfg.CampaignDays > 0 {
		campaignEnd = w.Cfg.Start.Add(time.Duration(w.Cfg.CampaignDays) * 24 * time.Hour)
	}
	w.scheduleNextCampaign(campaignEnd)
	if w.Cfg.AuthLogRetentionDays > 0 {
		window := time.Duration(w.Cfg.AuthLogRetentionDays) * 24 * time.Hour
		w.Clock.Every(24*time.Hour, end, func() {
			w.Log.Sanitize(w.Clock.Now(), logstore.Retention{
				Kinds:  []event.Kind{event.KindLogin},
				Window: window,
			})
		})
	}
	w.Clock.RunUntil(end)
	// The window is over and every agent has stopped: freeze the log so
	// the analysis phase gets index-backed, concurrency-safe reads.
	w.Log.Seal()
}

// scheduleNextCampaign books campaign launches as a Poisson process.
func (w *World) scheduleNextCampaign(end time.Time) {
	if w.Cfg.CampaignsPerDay <= 0 {
		return
	}
	gap := w.rng.ExpDuration(time.Duration(float64(24*time.Hour) / w.Cfg.CampaignsPerDay))
	next := w.Clock.Now().Add(gap)
	if !next.Before(end) {
		return
	}
	w.Clock.Schedule(next, func() {
		w.launchCampaign()
		w.scheduleNextCampaign(end)
	})
}

// launchCampaign creates one phishing campaign with the study's target
// mix, hosting mix, and (for mail targets) a crew credential sink.
func (w *World) launchCampaign() {
	target := w.pageMix.Choose(w.rng)
	lures := int(float64(w.Cfg.LureBase) * w.lureScale[target] * w.rng.Between(0.5, 1.5))
	c := phishkit.DefaultCampaign(target, lures)
	c.OnForms = w.rng.Bool(w.Cfg.FormsShare)
	c.HasURL = w.rng.Bool(0.62) // §4.1: 62/100 curated emails carried URLs
	c.Outlier = w.rng.Bool(w.Cfg.OutlierShare)
	if c.Outlier {
		// The paper's outlier was a Forms page that survived for days of
		// sustained volume before its takedown.
		c.Lures = lures * 6
		c.OnForms = true
		c.DetectionFactor = 3.5
	}
	if target == event.TargetMail && w.sinkPick != nil {
		c.Sink = w.sinkPick.Choose(w.rng)
	}
	id := w.Inf.Launch(c)
	if target == event.TargetMail {
		w.mailPages = append(w.mailPages, id)
	}
}

// InjectDecoys schedules the Dataset 4 experiment: submit each decoy
// account's credentials to one live mail-targeted phishing page, staggered
// over the given span. It returns the number of scheduled submissions;
// actual landings are visible in the log as CredentialPhished records with
// Decoy set. Call before Run.
func (w *World) InjectDecoys(over time.Duration) int {
	for i, id := range w.decoyIDs {
		id := id
		delay := time.Duration(i+1) * over / time.Duration(len(w.decoyIDs)+1)
		w.Clock.After(delay, func() {
			if page, ok := w.liveMailPage(); ok {
				w.Inf.SubmitDecoy(page, id)
			}
		})
	}
	return len(w.decoyIDs)
}

// liveMailPage picks a random not-yet-taken-down mail-targeted page.
func (w *World) liveMailPage() (event.PageID, bool) {
	// Prune dead pages lazily.
	live := w.mailPages[:0]
	for _, id := range w.mailPages {
		if p := w.Inf.Page(id); p != nil && !p.TakenDown {
			live = append(live, id)
		}
	}
	w.mailPages = live
	if len(live) == 0 {
		return 0, false
	}
	return live[w.rng.Intn(len(live))], true
}
