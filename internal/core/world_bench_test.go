package core

import "testing"

// BenchmarkWorldRun is the end-to-end simulation hot path: assemble and
// run one small world per iteration. This is the macro-number the
// scheduler and log-append micro-optimizations must move — world
// simulation dominates study wall-clock (see BENCH_4.json).
func BenchmarkWorldRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(42)
		cfg.PopulationN = 2000
		cfg.Days = 10
		cfg.CampaignsPerDay = 8
		w := NewWorld(cfg)
		w.Run()
		if w.Log.Len() == 0 {
			b.Fatal("empty world log")
		}
	}
}
