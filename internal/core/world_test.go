package core_test

import (
	"testing"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
)

func smallWorld(seed int64, mutate func(*core.Config)) *core.World {
	cfg := core.DefaultConfig(seed)
	cfg.PopulationN = 1500
	cfg.Days = 14
	cfg.CampaignsPerDay = 6
	if mutate != nil {
		mutate(&cfg)
	}
	w := core.NewWorld(cfg)
	w.Run()
	return w
}

func TestWorldDeterminism(t *testing.T) {
	a := smallWorld(42, nil)
	b := smallWorld(42, nil)
	if a.Log.Len() != b.Log.Len() {
		t.Fatalf("same seed, different log sizes: %d vs %d", a.Log.Len(), b.Log.Len())
	}
	ka, kb := a.Log.KindCounts(), b.Log.KindCounts()
	for k, n := range ka {
		if kb[k] != n {
			t.Fatalf("kind %s: %d vs %d", k, n, kb[k])
		}
	}
}

func TestWorldSeedSensitivity(t *testing.T) {
	a := smallWorld(1, nil)
	b := smallWorld(2, nil)
	if a.Log.Len() == b.Log.Len() {
		t.Fatal("different seeds produced identical log sizes (suspicious)")
	}
}

func TestAuthLogRetention(t *testing.T) {
	// With a 3-day retention window, no login record can be older than
	// ~4 days relative to the end of the run (the daily sweep plus one
	// day of slack).
	w := smallWorld(7, func(c *core.Config) { c.AuthLogRetentionDays = 3 })
	end := w.End()
	logins := logstore.Select[event.Login](w.Log)
	if len(logins) == 0 {
		t.Fatal("no logins survived retention")
	}
	for _, l := range logins {
		if age := end.Sub(l.When()); age > 4*24*time.Hour {
			t.Fatalf("login aged %v survived a 3-day retention window", age)
		}
	}
	// Non-login kinds keep their full history.
	full := smallWorld(7, nil)
	if lures := len(logstore.Select[event.LureSent](w.Log)); lures == 0 ||
		lures != len(logstore.Select[event.LureSent](full.Log)) {
		t.Fatal("retention policy touched non-login records")
	}
}

func TestDoubleRunPanics(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cfg.PopulationN = 500
	cfg.Days = 1
	cfg.CampaignsPerDay = 0
	w := core.NewWorld(cfg)
	w.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	w.Run()
}

func TestDecoyAccountsHaveNoContacts(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cfg.PopulationN = 500
	cfg.Days = 1
	cfg.DecoyN = 20
	w := core.NewWorld(cfg)
	ids := w.DecoyIDs()
	if len(ids) != 20 {
		t.Fatalf("decoys = %d", len(ids))
	}
	for _, id := range ids {
		if len(w.Dir.Get(id).Contacts) != 0 {
			t.Fatal("decoy account has contacts")
		}
	}
}

func TestBehavioralDefenseSuspends(t *testing.T) {
	on := smallWorld(21, func(c *core.Config) { c.BehavioralDefense = true })
	if on.Guard == nil {
		t.Fatal("guardian not wired")
	}
	if on.Guard.Suspended == 0 {
		t.Fatal("online behavioral defense never suspended an account")
	}
	// Suspended accounts must end up with a "suspended"-triggered claim or
	// at minimum blocked hijacker logins afterwards.
	blockedAfter := 0
	for _, l := range logstore.Select[event.Login](on.Log) {
		if l.Outcome == event.LoginBlocked {
			blockedAfter++
		}
	}
	if blockedAfter == 0 {
		t.Fatal("no blocked logins after suspensions")
	}
	// With the defense off, nothing is suspended.
	off := smallWorld(21, nil)
	if off.Guard != nil {
		t.Fatal("guardian present while disabled")
	}
}
