// Package datasets implements Table 1 of the paper: the fourteen datasets
// the study draws from its system logs. Each extractor mirrors the
// original's source, filtering, and sampling step — including the manual
// curation the authors describe ("both computers and humans alike are
// imprecise at distinguishing phishing ... from scams and other bulk
// spam"), which here separates ground-truth lures from the noisy
// user-report stream the same way a human reviewer would.
//
// Sampling is deterministic per dataset id so a given world always yields
// the same samples.
package datasets

import (
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
)

// sampleSeed derives the deterministic sampling stream for a dataset.
func sampleSeed(id int) *randx.Rand {
	return randx.New(0xD5).Fork("dataset").Fork(string(rune('0' + id)))
}

// SampleN draws up to n elements without replacement using dataset id's
// deterministic sampling stream. It is exported so incremental analyses
// (internal/analysis builders fed by the streaming bus) can reproduce the
// exact sample — including its order — that the batch extractors draw,
// which is what makes streaming-vs-batch reports DeepEqual. items is never
// mutated, but when len(items) <= n it is returned as-is: treat the result
// as read-only.
func SampleN[T any](id int, items []T, n int) []T {
	if len(items) <= n {
		return items
	}
	return randx.Sample(sampleSeed(id), items, n)
}

// sampleN is the package-internal spelling of SampleN.
func sampleN[T any](id int, items []T, n int) []T {
	return SampleN(id, items, n)
}

// D1PhishingEmails returns the curated phishing-email sample (Dataset 1):
// from the stream of user-reported mail, keep the actual credential
// solicitations (the curation step) and sample up to n.
//
// Lures from targeted (contact-campaign) pages are excluded: at provider
// scale, mass phishing dwarfs contact-targeted volume in the reported
// stream, but the simulation boosts the contact loop for statistical
// power, which would otherwise skew the Table 2 target mix.
func D1PhishingEmails(s *logstore.Store, n int) []event.LureSent {
	targeted := map[event.PageID]bool{}
	for _, c := range logstore.Select[event.PageCreated](s) {
		if c.Targeted {
			targeted[c.Page] = true
		}
	}
	reported := logstore.SelectWhere(s, func(l event.LureSent) bool {
		return l.Reported && !targeted[l.Page]
	})
	return sampleN(1, reported, n)
}

// D2PhishingPages returns up to n pages detected by the anti-phishing
// pipeline (Dataset 2), joined back to their creation records. Targeted
// spear-phishing pages are excluded: Dataset 2 comes from pages found
// "while indexing the web", and victim-list pages are mailed directly
// rather than linked anywhere crawlable.
func D2PhishingPages(s *logstore.Store, n int) []event.PageCreated {
	created := make(map[event.PageID]event.PageCreated)
	for _, c := range logstore.Select[event.PageCreated](s) {
		if c.Targeted {
			continue
		}
		created[c.Page] = c
	}
	var detected []event.PageCreated
	for _, d := range logstore.Select[event.PageDetected](s) {
		if c, ok := created[d.Page]; ok {
			detected = append(detected, c)
		}
	}
	return sampleN(2, detected, n)
}

// FormsPage bundles one Forms-hosted phishing page with its HTTP log
// (Dataset 3).
type FormsPage struct {
	Page      event.PageCreated
	Hits      []event.PageHit
	TakenDown time.Time
}

// D3FormsPages returns up to n Forms-hosted pages that were taken down,
// each with its full HTTP request log.
func D3FormsPages(s *logstore.Store, n int) []FormsPage {
	created := make(map[event.PageID]event.PageCreated)
	for _, c := range logstore.Select[event.PageCreated](s) {
		if c.OnForms {
			created[c.Page] = c
		}
	}
	down := make(map[event.PageID]time.Time)
	for _, d := range logstore.Select[event.PageTakedown](s) {
		down[d.Page] = d.When()
	}
	hits := make(map[event.PageID][]event.PageHit)
	for _, h := range logstore.Select[event.PageHit](s) {
		if _, ok := created[h.Page]; ok {
			hits[h.Page] = append(hits[h.Page], h)
		}
	}
	var pages []FormsPage
	for id, c := range created {
		td, isDown := down[id]
		if !isDown {
			continue
		}
		pages = append(pages, FormsPage{Page: c, Hits: hits[id], TakenDown: td})
	}
	// Deterministic order before sampling (map iteration is random).
	sortFormsPages(pages)
	return sampleN(3, pages, n)
}

func sortFormsPages(pages []FormsPage) {
	for i := 1; i < len(pages); i++ {
		for j := i; j > 0 && pages[j].Page.Page < pages[j-1].Page.Page; j-- {
			pages[j], pages[j-1] = pages[j-1], pages[j]
		}
	}
}

// DecoyAccess pairs a decoy credential submission with the hijacker's
// first access (Dataset 4).
type DecoyAccess struct {
	Account     identity.AccountID
	SubmittedAt time.Time
	AccessedAt  time.Time
	Accessed    bool
}

// D4DecoyAccesses returns every decoy submission joined with the first
// subsequent hijacker login attempt on the account.
func D4DecoyAccesses(s *logstore.Store) []DecoyAccess {
	var out []DecoyAccess
	submitted := make(map[identity.AccountID]int) // account → index in out
	for _, c := range logstore.Select[event.CredentialPhished](s) {
		if !c.Decoy {
			continue
		}
		if _, dup := submitted[c.Account]; dup {
			continue
		}
		submitted[c.Account] = len(out)
		out = append(out, DecoyAccess{Account: c.Account, SubmittedAt: c.When()})
	}
	for _, l := range logstore.Select[event.Login](s) {
		if l.Actor != event.ActorHijacker {
			continue
		}
		idx, ok := submitted[l.Account]
		if !ok || out[idx].Accessed || l.When().Before(out[idx].SubmittedAt) {
			continue
		}
		out[idx].AccessedAt = l.When()
		out[idx].Accessed = true
	}
	return out
}

// D5HijackerLogins returns the hijacker login attempts (Dataset 5's
// population; the paper sampled 300 IPs/day — the analysis aggregates per
// IP-day itself).
func D5HijackerLogins(s *logstore.Store) []event.Login {
	return logstore.SelectWhere(s, func(l event.Login) bool {
		return l.Actor == event.ActorHijacker
	})
}

// D6SearchKeywords returns the search terms hijackers used while
// exploring victims' mailboxes (Dataset 6 — the paper's temporary
// search-term collection experiment).
func D6SearchKeywords(s *logstore.Store) []event.Search {
	return logstore.SelectWhere(s, func(q event.Search) bool {
		return q.Actor == event.ActorHijacker
	})
}

// D7HijackedAccounts returns up to n high-confidence manually hijacked
// accounts (Dataset 7: 575 in the paper, selected via recovery claims
// that clearly indicate manual hijacking). Here "high confidence" means a
// completed hijack lifecycle in the log.
func D7HijackedAccounts(s *logstore.Store, n int) []identity.AccountID {
	seen := map[identity.AccountID]bool{}
	var ids []identity.AccountID
	for _, h := range logstore.Select[event.HijackStarted](s) {
		if !seen[h.Account] {
			seen[h.Account] = true
			ids = append(ids, h.Account)
		}
	}
	return sampleN(7, ids, n)
}

// D8HijackedMail returns up to n scam/phishing messages sent from the
// given hijacked accounts (Dataset 8: 200 messages reviewed).
func D8HijackedMail(s *logstore.Store, accounts []identity.AccountID, n int) []event.MessageSent {
	inSet := make(map[identity.AccountID]bool, len(accounts))
	for _, a := range accounts {
		inSet[a] = true
	}
	msgs := logstore.SelectWhere(s, func(m event.MessageSent) bool {
		return m.Actor == event.ActorHijacker && inSet[m.FromAcct]
	})
	return sampleN(8, msgs, n)
}

// D9ContactCohorts returns the two Dataset 9 cohorts: up to n provider
// accounts that are contacts of hijacked accounts, and up to n random
// active accounts (excluding the first cohort).
func D9ContactCohorts(s *logstore.Store, dir *identity.Directory, now time.Time, n int) (contacts, random []identity.AccountID) {
	hijacked := map[identity.AccountID]bool{}
	for _, h := range logstore.Select[event.HijackStarted](s) {
		hijacked[h.Account] = true
	}
	contactSet := map[identity.AccountID]bool{}
	for id := range hijacked {
		a := dir.Get(id)
		if a == nil {
			continue
		}
		for _, c := range a.Contacts {
			if cid := dir.Lookup(c); cid != identity.None && !hijacked[cid] {
				contactSet[cid] = true
			}
		}
	}
	var contactList, activeList []identity.AccountID
	dir.All(func(a *identity.Account) {
		switch {
		case contactSet[a.ID]:
			contactList = append(contactList, a.ID)
		case !hijacked[a.ID] && a.Active(now):
			activeList = append(activeList, a.ID)
		}
	})
	return sampleN(9, contactList, n), sampleN(10, activeList, n)
}

// D11RecoveredAccounts returns up to n successfully recovered claims
// (Dataset 11: 5000 recoveries backing Figure 9).
func D11RecoveredAccounts(s *logstore.Store, n int) []event.ClaimResolved {
	ok := logstore.SelectWhere(s, func(r event.ClaimResolved) bool { return r.Success })
	return sampleN(11, ok, n)
}

// D12ClaimAttempts returns every legitimate verification attempt in the
// window (Dataset 12: one month of claims backing Figure 10 — the paper
// takes the full month "to avoid sample bias issues", so no sampling
// here). Impostor attempts are excluded: at provider scale they are a
// negligible sliver of claims, but the simulation's boosted hijack
// intensity would otherwise drag every method's measured success rate
// down with "not the claimant's phone" failures.
func D12ClaimAttempts(s *logstore.Store, from, to time.Time) []event.ClaimAttempt {
	return logstore.SelectWhere(s, func(a event.ClaimAttempt) bool {
		return a.Actor != event.ActorHijacker &&
			!a.When().Before(from) && a.When().Before(to)
	})
}

// D13HijackIPs returns one login IP per hijack case, up to n cases
// (Dataset 13: IPs of 3000 hijack cases, January 2014).
func D13HijackIPs(s *logstore.Store, n int) []event.Login {
	seen := map[identity.AccountID]bool{}
	var cases []event.Login
	for _, l := range D5HijackerLogins(s) {
		if l.Outcome != event.LoginSuccess || seen[l.Account] {
			continue
		}
		seen[l.Account] = true
		cases = append(cases, l)
	}
	return sampleN(13, cases, n)
}

// D14HijackerPhones returns the phones hijackers enrolled for 2-step
// verification lockouts (Dataset 14: 300 numbers, 2012).
func D14HijackerPhones(s *logstore.Store, n int) []event.TwoSVEnrolled {
	enrolls := logstore.SelectWhere(s, func(e event.TwoSVEnrolled) bool {
		return e.Actor == event.ActorHijacker
	})
	return sampleN(14, enrolls, n)
}
