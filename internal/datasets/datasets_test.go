package datasets

import (
	"net/netip"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
)

var t0 = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)

func at(min int) event.Base { return event.Base{Time: t0.Add(time.Duration(min) * time.Minute)} }

func TestD1CurationFiltersUnreported(t *testing.T) {
	s := logstore.New()
	for i := 0; i < 50; i++ {
		s.Append(event.LureSent{Base: at(i), Victim: "a@b.edu", Target: event.TargetMail, Reported: i%5 == 0})
	}
	got := D1PhishingEmails(s, 100)
	if len(got) != 10 {
		t.Fatalf("curated = %d, want 10 reported", len(got))
	}
	for _, l := range got {
		if !l.Reported {
			t.Fatal("unreported lure in curated sample")
		}
	}
}

func TestD1Sampling(t *testing.T) {
	s := logstore.New()
	for i := 0; i < 500; i++ {
		s.Append(event.LureSent{Base: at(i), Reported: true})
	}
	a := D1PhishingEmails(s, 100)
	b := D1PhishingEmails(s, 100)
	if len(a) != 100 {
		t.Fatalf("sample = %d", len(a))
	}
	for i := range a {
		if a[i].When() != b[i].When() {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestD2JoinsDetections(t *testing.T) {
	s := logstore.New()
	s.Append(event.PageCreated{Base: at(0), Page: 1, Target: event.TargetBank})
	s.Append(event.PageCreated{Base: at(1), Page: 2, Target: event.TargetMail})
	s.Append(event.PageDetected{Base: at(10), Page: 2})
	got := D2PhishingPages(s, 10)
	if len(got) != 1 || got[0].Page != 2 || got[0].Target != event.TargetMail {
		t.Fatalf("detected pages = %+v", got)
	}
}

func TestD3FormsPagesRequireTakedown(t *testing.T) {
	s := logstore.New()
	s.Append(event.PageCreated{Base: at(0), Page: 1, OnForms: true})
	s.Append(event.PageCreated{Base: at(0), Page: 2, OnForms: true})
	s.Append(event.PageCreated{Base: at(0), Page: 3, OnForms: false})
	s.Append(event.PageHit{Base: at(5), Page: 1, Method: "GET"})
	s.Append(event.PageHit{Base: at(6), Page: 1, Method: "POST", Victim: "x@y.edu"})
	s.Append(event.PageHit{Base: at(6), Page: 3, Method: "GET"})
	s.Append(event.PageTakedown{Base: at(60), Page: 1})
	s.Append(event.PageTakedown{Base: at(61), Page: 3})

	got := D3FormsPages(s, 10)
	if len(got) != 1 {
		t.Fatalf("forms pages = %d, want 1 (page 2 not taken down, page 3 not Forms)", len(got))
	}
	if got[0].Page.Page != 1 || len(got[0].Hits) != 2 {
		t.Fatalf("page = %+v", got[0])
	}
	if !got[0].TakenDown.Equal(t0.Add(time.Hour)) {
		t.Fatalf("takedown time = %v", got[0].TakenDown)
	}
}

func TestD4DecoyJoin(t *testing.T) {
	s := logstore.New()
	s.Append(event.CredentialPhished{Base: at(0), Account: 1, Decoy: true})
	s.Append(event.CredentialPhished{Base: at(1), Account: 2, Decoy: true})
	s.Append(event.CredentialPhished{Base: at(2), Account: 3, Decoy: false})
	// Owner login on account 1 must not count as access.
	s.Append(event.Login{Base: at(5), Account: 1, Actor: event.ActorOwner, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(30), Account: 1, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(40), Account: 1, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})

	got := D4DecoyAccesses(s)
	if len(got) != 2 {
		t.Fatalf("decoys = %d, want 2", len(got))
	}
	if !got[0].Accessed || got[0].AccessedAt != t0.Add(30*time.Minute) {
		t.Fatalf("first access = %+v (must be first hijacker login)", got[0])
	}
	if got[1].Accessed {
		t.Fatal("unaccessed decoy marked accessed")
	}
}

func TestD5AndD6FilterByActor(t *testing.T) {
	s := logstore.New()
	s.Append(event.Login{Base: at(0), Account: 1, Actor: event.ActorHijacker})
	s.Append(event.Login{Base: at(1), Account: 2, Actor: event.ActorOwner})
	s.Append(event.Search{Base: at(2), Account: 1, Query: "wire transfer", Actor: event.ActorHijacker})
	s.Append(event.Search{Base: at(3), Account: 2, Query: "lunch", Actor: event.ActorOwner})

	if got := D5HijackerLogins(s); len(got) != 1 || got[0].Account != 1 {
		t.Fatalf("D5 = %+v", got)
	}
	if got := D6SearchKeywords(s); len(got) != 1 || got[0].Query != "wire transfer" {
		t.Fatalf("D6 = %+v", got)
	}
}

func TestD7DedupesAccounts(t *testing.T) {
	s := logstore.New()
	s.Append(event.HijackStarted{Base: at(0), Account: 1})
	s.Append(event.HijackStarted{Base: at(1), Account: 1})
	s.Append(event.HijackStarted{Base: at(2), Account: 2})
	got := D7HijackedAccounts(s, 10)
	if len(got) != 2 {
		t.Fatalf("accounts = %v", got)
	}
}

func TestD8FiltersBySetAndActor(t *testing.T) {
	s := logstore.New()
	s.Append(event.MessageSent{Base: at(0), FromAcct: 1, Class: event.ClassScam, Actor: event.ActorHijacker})
	s.Append(event.MessageSent{Base: at(1), FromAcct: 1, Class: event.ClassOrganic, Actor: event.ActorOwner})
	s.Append(event.MessageSent{Base: at(2), FromAcct: 9, Class: event.ClassScam, Actor: event.ActorHijacker})
	got := D8HijackedMail(s, []identity.AccountID{1}, 10)
	if len(got) != 1 || got[0].Class != event.ClassScam {
		t.Fatalf("D8 = %+v", got)
	}
}

func TestD9Cohorts(t *testing.T) {
	cfg := identity.DefaultConfig(t0)
	cfg.N = 300
	dir := identity.NewDirectory(randx.New(1), cfg)
	s := logstore.New()
	s.Append(event.HijackStarted{Base: at(0), Account: 1})
	s.Append(event.HijackStarted{Base: at(1), Account: 2})

	contacts, random := D9ContactCohorts(s, dir, t0.Add(time.Hour), 50)
	if len(contacts) == 0 || len(random) == 0 {
		t.Fatalf("cohorts = %d/%d", len(contacts), len(random))
	}
	inContacts := map[identity.AccountID]bool{}
	for _, id := range contacts {
		if id == 1 || id == 2 {
			t.Fatal("hijacked account in contact cohort")
		}
		inContacts[id] = true
	}
	for _, id := range random {
		if inContacts[id] || id == 1 || id == 2 {
			t.Fatal("random cohort overlaps contacts or victims")
		}
	}
}

func TestD11OnlySuccesses(t *testing.T) {
	s := logstore.New()
	s.Append(event.ClaimResolved{Base: at(0), Account: 1, Success: true})
	s.Append(event.ClaimResolved{Base: at(1), Account: 2, Success: false})
	got := D11RecoveredAccounts(s, 10)
	if len(got) != 1 || got[0].Account != 1 {
		t.Fatalf("D11 = %+v", got)
	}
}

func TestD12WindowFilter(t *testing.T) {
	s := logstore.New()
	s.Append(event.ClaimAttempt{Base: at(0), Method: event.MethodSMS})
	s.Append(event.ClaimAttempt{Base: at(60 * 24 * 40), Method: event.MethodEmail})
	got := D12ClaimAttempts(s, t0, t0.Add(30*24*time.Hour))
	if len(got) != 1 || got[0].Method != event.MethodSMS {
		t.Fatalf("D12 = %+v", got)
	}
}

func TestD13OneIPPerCase(t *testing.T) {
	s := logstore.New()
	ip1 := netip.MustParseAddr("10.0.0.1")
	ip2 := netip.MustParseAddr("10.0.0.2")
	s.Append(event.Login{Base: at(0), Account: 1, IP: ip1, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(1), Account: 1, IP: ip2, Actor: event.ActorHijacker, Outcome: event.LoginSuccess})
	s.Append(event.Login{Base: at(2), Account: 2, IP: ip2, Actor: event.ActorHijacker, Outcome: event.LoginWrongPassword})
	got := D13HijackIPs(s, 100)
	if len(got) != 1 || got[0].IP != ip1 {
		t.Fatalf("D13 = %+v (one successful login per case)", got)
	}
}

func TestD14HijackerPhonesOnly(t *testing.T) {
	s := logstore.New()
	s.Append(event.TwoSVEnrolled{Base: at(0), Account: 1, Phone: "+2251", Actor: event.ActorHijacker})
	s.Append(event.TwoSVEnrolled{Base: at(1), Account: 2, Phone: "+15551", Actor: event.ActorOwner})
	got := D14HijackerPhones(s, 10)
	if len(got) != 1 || got[0].Phone != "+2251" {
		t.Fatalf("D14 = %+v", got)
	}
}
