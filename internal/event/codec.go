package event

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// The registry maps every record kind to its JSON decoder and every
// concrete record type back to its kind. The reverse mapping is what lets
// logstore route a generic Select[T] to the matching kind partition of a
// sealed store instead of scanning the whole log.
var (
	decoders   = map[Kind]func([]byte) (Event, error){}
	kindByType = map[reflect.Type]Kind{}
)

// register wires one concrete record type to its kind in both directions.
func register[T Event](kind Kind) {
	decoders[kind] = func(data []byte) (Event, error) {
		var v T
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
	kindByType[reflect.TypeFor[T]()] = kind
}

func init() {
	register[Login](KindLogin)
	register[PasswordChanged](KindPasswordChanged)
	register[RecoveryChanged](KindRecoveryChanged)
	register[TwoSVEnrolled](KindTwoSVEnrolled)
	register[MessageSent](KindMessageSent)
	register[Search](KindSearch)
	register[FolderOpened](KindFolderOpened)
	register[ContactsViewed](KindContactsViewed)
	register[FilterCreated](KindFilterCreated)
	register[ReplyToSet](KindReplyToSet)
	register[MassDeletion](KindMassDeletion)
	register[SpamReported](KindSpamReported)
	register[PageCreated](KindPageCreated)
	register[PageHit](KindPageHit)
	register[PageDetected](KindPageDetected)
	register[PageTakedown](KindPageTakedown)
	register[LureSent](KindLureSent)
	register[CredentialPhished](KindCredentialPhished)
	register[HijackStarted](KindHijackStarted)
	register[HijackAssessed](KindHijackAssessed)
	register[HijackEnded](KindHijackEnded)
	register[ScamReply](KindScamReply)
	register[MoneyWired](KindMoneyWired)
	register[NotificationSent](KindNotificationSent)
	register[ClaimFiled](KindClaimFiled)
	register[ClaimAttempt](KindClaimAttempt)
	register[ClaimResolved](KindClaimResolved)
	register[Remission](KindRemission)
}

// KindFor reports the Kind emitted by the concrete record type T. ok is
// false when T is not a registered concrete type (notably the Event
// interface itself), in which case callers must fall back to scanning.
func KindFor[T Event]() (k Kind, ok bool) {
	k, ok = kindByType[reflect.TypeFor[T]()]
	return k, ok
}

// RegisteredKinds returns every kind with a registered decoder, sorted —
// the complete NDJSON vocabulary. Tests use it to ensure a new record
// type cannot ship without codec (and so dump/load) coverage.
func RegisteredKinds() []Kind {
	out := make([]Kind, 0, len(decoders))
	for k := range decoders {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decode reconstructs a concrete record from its kind and JSON payload.
func Decode(kind Kind, data []byte) (Event, error) {
	dec, ok := decoders[kind]
	if !ok {
		return nil, fmt.Errorf("event: unknown kind %q", kind)
	}
	return dec(data)
}
