package event

import (
	"encoding/json"
	"fmt"
)

// decodeAs unmarshals data into a concrete event type and returns it as an
// Event value.
func decodeAs[T Event](data []byte) (Event, error) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// decoders maps every record kind to its concrete decoder.
var decoders = map[Kind]func([]byte) (Event, error){
	KindLogin:             decodeAs[Login],
	KindPasswordChanged:   decodeAs[PasswordChanged],
	KindRecoveryChanged:   decodeAs[RecoveryChanged],
	KindTwoSVEnrolled:     decodeAs[TwoSVEnrolled],
	KindMessageSent:       decodeAs[MessageSent],
	KindSearch:            decodeAs[Search],
	KindFolderOpened:      decodeAs[FolderOpened],
	KindContactsViewed:    decodeAs[ContactsViewed],
	KindFilterCreated:     decodeAs[FilterCreated],
	KindReplyToSet:        decodeAs[ReplyToSet],
	KindMassDeletion:      decodeAs[MassDeletion],
	KindSpamReported:      decodeAs[SpamReported],
	KindPageCreated:       decodeAs[PageCreated],
	KindPageHit:           decodeAs[PageHit],
	KindPageDetected:      decodeAs[PageDetected],
	KindPageTakedown:      decodeAs[PageTakedown],
	KindLureSent:          decodeAs[LureSent],
	KindCredentialPhished: decodeAs[CredentialPhished],
	KindHijackStarted:     decodeAs[HijackStarted],
	KindHijackAssessed:    decodeAs[HijackAssessed],
	KindHijackEnded:       decodeAs[HijackEnded],
	KindScamReply:         decodeAs[ScamReply],
	KindMoneyWired:        decodeAs[MoneyWired],
	KindNotificationSent:  decodeAs[NotificationSent],
	KindClaimFiled:        decodeAs[ClaimFiled],
	KindClaimAttempt:      decodeAs[ClaimAttempt],
	KindClaimResolved:     decodeAs[ClaimResolved],
	KindRemission:         decodeAs[Remission],
}

// Decode reconstructs a concrete record from its kind and JSON payload.
func Decode(kind Kind, data []byte) (Event, error) {
	dec, ok := decoders[kind]
	if !ok {
		return nil, fmt.Errorf("event: unknown kind %q", kind)
	}
	return dec(data)
}
