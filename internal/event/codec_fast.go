package event

// Hand-rolled wire codec for the 28 record kinds on the NDJSON hot path
// (segment spill + dump encode, segment + dump decode). AppendLine and
// DecodeLineFast are exact mirrors of the encoding/json envelope layer in
// internal/logstore: same field order (struct declaration order, embedded
// Base.Time first), same escaping, same zero-value conventions. Both
// return ok=false rather than guess — the caller falls back to
// encoding/json, so foreign or legacy files keep their exact old
// behavior. Adding a field to an event struct without updating its case
// here fails TestFastCodecMatchesEncodingJSON, not production decode.

import (
	"strconv"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
)

// timeOK reports whether t is in the year range time.Time.MarshalJSON
// accepts; out-of-range times fall back so the error surfaces identically.
func timeOK(t time.Time) bool {
	y := t.Year()
	return y >= 1 && y <= 9999
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func appendInt(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

// appendArchetype appends the trailing `,"Archetype":"…"` field that the
// json:",omitempty" tag produces only for tagged records; untagged
// records canonically omit it.
func appendArchetype(dst []byte, archetype string) []byte {
	if archetype == "" {
		return dst
	}
	dst = append(dst, `,"Archetype":`...)
	return appendString(dst, archetype)
}

// appendAddrs matches encoding/json's slice conventions: nil → null,
// empty → [].
func appendAddrs(dst []byte, xs []identity.Address) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, a := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendString(dst, string(a))
	}
	return append(dst, ']')
}

// AppendLine appends the canonical NDJSON envelope line
// {"kind":"<kind>","data":{...}}\n for e. ok is false when e is not a
// registered value type or holds a value (non-finite float, out-of-range
// time) the fast path does not replicate; the caller must then use the
// encoding/json path.
func AppendLine(dst []byte, e Event) ([]byte, bool) {
	n := len(dst)
	dst, ok := appendLine(dst, e)
	if !ok {
		return dst[:n], false
	}
	return dst, true
}

func appendLine(dst []byte, e Event) ([]byte, bool) {
	switch v := e.(type) {
	case Login:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"auth.login","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"IP":`...)
		dst = appendAddr(dst, v.IP)
		dst = append(dst, `,"DeviceID":`...)
		dst = appendString(dst, v.DeviceID)
		dst = append(dst, `,"PasswordOK":`...)
		dst = appendBool(dst, v.PasswordOK)
		dst = append(dst, `,"Outcome":`...)
		dst = appendString(dst, string(v.Outcome))
		dst = append(dst, `,"Challenged":`...)
		dst = appendBool(dst, v.Challenged)
		dst = append(dst, `,"RiskScore":`...)
		var ok bool
		if dst, ok = appendFloat(dst, v.RiskScore); !ok {
			return dst, false
		}
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
		dst = appendArchetype(dst, v.Archetype)
	case PasswordChanged:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"auth.password_changed","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case RecoveryChanged:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"auth.recovery_changed","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"What":`...)
		dst = appendString(dst, v.What)
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case TwoSVEnrolled:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"auth.twosv_enrolled","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Phone":`...)
		dst = appendString(dst, string(v.Phone))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case MessageSent:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.sent","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"ID":`...)
		dst = appendInt(dst, int64(v.ID))
		dst = append(dst, `,"From":`...)
		dst = appendString(dst, string(v.From))
		dst = append(dst, `,"FromAcct":`...)
		dst = appendInt(dst, int64(v.FromAcct))
		dst = append(dst, `,"Recipients":`...)
		dst = appendAddrs(dst, v.Recipients)
		dst = append(dst, `,"Class":`...)
		dst = appendString(dst, string(v.Class))
		dst = append(dst, `,"Customized":`...)
		dst = appendBool(dst, v.Customized)
		dst = append(dst, `,"ReplyTo":`...)
		dst = appendString(dst, string(v.ReplyTo))
		dst = append(dst, `,"PageID":`...)
		dst = appendInt(dst, int64(v.PageID))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case Search:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.search","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Query":`...)
		dst = appendString(dst, v.Query)
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case FolderOpened:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.folder_opened","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Folder":`...)
		dst = appendString(dst, string(v.Folder))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case ContactsViewed:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.contacts_viewed","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case FilterCreated:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.filter_created","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"ForwardTo":`...)
		dst = appendString(dst, string(v.ForwardTo))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case ReplyToSet:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.replyto_set","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Addr":`...)
		dst = appendString(dst, string(v.Addr))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case MassDeletion:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.mass_deletion","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Deleted":`...)
		dst = appendInt(dst, int64(v.Deleted))
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case SpamReported:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"mail.spam_reported","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Reporter":`...)
		dst = appendInt(dst, int64(v.Reporter))
		dst = append(dst, `,"Message":`...)
		dst = appendInt(dst, int64(v.Message))
		dst = append(dst, `,"From":`...)
		dst = appendString(dst, string(v.From))
		dst = append(dst, `,"FromAcct":`...)
		dst = appendInt(dst, int64(v.FromAcct))
		dst = append(dst, `,"Class":`...)
		dst = appendString(dst, string(v.Class))
	case PageCreated:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.page_created","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
		dst = append(dst, `,"Target":`...)
		dst = appendString(dst, string(v.Target))
		dst = append(dst, `,"Quality":`...)
		var ok bool
		if dst, ok = appendFloat(dst, v.Quality); !ok {
			return dst, false
		}
		dst = append(dst, `,"OnForms":`...)
		dst = appendBool(dst, v.OnForms)
		dst = append(dst, `,"Targeted":`...)
		dst = appendBool(dst, v.Targeted)
	case PageHit:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.page_hit","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
		dst = append(dst, `,"Method":`...)
		dst = appendString(dst, v.Method)
		dst = append(dst, `,"Referrer":`...)
		dst = appendString(dst, v.Referrer)
		dst = append(dst, `,"Victim":`...)
		dst = appendString(dst, string(v.Victim))
		dst = append(dst, `,"IP":`...)
		dst = appendAddr(dst, v.IP)
	case PageDetected:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.page_detected","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
	case PageTakedown:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.page_takedown","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
	case LureSent:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.lure_sent","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Campaign":`...)
		dst = appendInt(dst, v.Campaign)
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
		dst = append(dst, `,"Victim":`...)
		dst = appendString(dst, string(v.Victim))
		dst = append(dst, `,"Target":`...)
		dst = appendString(dst, string(v.Target))
		dst = append(dst, `,"HasURL":`...)
		dst = appendBool(dst, v.HasURL)
		dst = append(dst, `,"Reported":`...)
		dst = appendBool(dst, v.Reported)
	case CredentialPhished:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"phish.credential_phished","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Page":`...)
		dst = appendInt(dst, int64(v.Page))
		dst = append(dst, `,"Decoy":`...)
		dst = appendBool(dst, v.Decoy)
	case HijackStarted:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"hijack.started","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Crew":`...)
		dst = appendString(dst, v.Crew)
		dst = append(dst, `,"Session":`...)
		dst = appendInt(dst, int64(v.Session))
		dst = appendArchetype(dst, v.Archetype)
	case HijackAssessed:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"hijack.assessed","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Crew":`...)
		dst = appendString(dst, v.Crew)
		dst = append(dst, `,"Duration":`...)
		dst = appendInt(dst, int64(v.Duration))
		dst = append(dst, `,"Exploited":`...)
		dst = appendBool(dst, v.Exploited)
		dst = appendArchetype(dst, v.Archetype)
	case HijackEnded:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"hijack.ended","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Crew":`...)
		dst = appendString(dst, v.Crew)
		dst = append(dst, `,"LockedOut":`...)
		dst = appendBool(dst, v.LockedOut)
		dst = appendArchetype(dst, v.Archetype)
	case ScamReply:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"scam.reply","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"VictimAccount":`...)
		dst = appendInt(dst, int64(v.VictimAccount))
		dst = append(dst, `,"Recipient":`...)
		dst = appendInt(dst, int64(v.Recipient))
		dst = append(dst, `,"ReachedHijacker":`...)
		dst = appendBool(dst, v.ReachedHijacker)
		dst = append(dst, `,"Via":`...)
		dst = appendString(dst, v.Via)
	case MoneyWired:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"scam.money_wired","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"VictimAccount":`...)
		dst = appendInt(dst, int64(v.VictimAccount))
		dst = append(dst, `,"Recipient":`...)
		dst = appendInt(dst, int64(v.Recipient))
		dst = append(dst, `,"Crew":`...)
		dst = appendString(dst, v.Crew)
		dst = append(dst, `,"Amount":`...)
		var ok bool
		if dst, ok = appendFloat(dst, v.Amount); !ok {
			return dst, false
		}
	case NotificationSent:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"recovery.notification","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Channel":`...)
		dst = appendString(dst, string(v.Channel))
		dst = append(dst, `,"Reason":`...)
		dst = appendString(dst, v.Reason)
	case ClaimFiled:
		if !timeOK(v.Time) || !timeOK(v.HijackedAt) {
			return dst, false
		}
		dst = append(dst, `{"kind":"recovery.claim_filed","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Trigger":`...)
		dst = appendString(dst, v.Trigger)
		dst = append(dst, `,"HijackedAt":`...)
		dst = appendTime(dst, v.HijackedAt)
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case ClaimAttempt:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"recovery.claim_attempt","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Method":`...)
		dst = appendString(dst, string(v.Method))
		dst = append(dst, `,"Success":`...)
		dst = appendBool(dst, v.Success)
		dst = append(dst, `,"Reason":`...)
		dst = appendString(dst, v.Reason)
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case ClaimResolved:
		if !timeOK(v.Time) || !timeOK(v.HijackedAt) || !timeOK(v.FlaggedAt) {
			return dst, false
		}
		dst = append(dst, `{"kind":"recovery.claim_resolved","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"Success":`...)
		dst = appendBool(dst, v.Success)
		dst = append(dst, `,"Method":`...)
		dst = appendString(dst, string(v.Method))
		dst = append(dst, `,"HijackedAt":`...)
		dst = appendTime(dst, v.HijackedAt)
		dst = append(dst, `,"FlaggedAt":`...)
		dst = appendTime(dst, v.FlaggedAt)
		dst = append(dst, `,"Actor":`...)
		dst = appendString(dst, string(v.Actor))
	case Remission:
		if !timeOK(v.Time) {
			return dst, false
		}
		dst = append(dst, `{"kind":"recovery.remission","data":{"Time":`...)
		dst = appendTime(dst, v.Time)
		dst = append(dst, `,"Account":`...)
		dst = appendInt(dst, int64(v.Account))
		dst = append(dst, `,"RestoredMessages":`...)
		dst = appendInt(dst, int64(v.RestoredMessages))
		dst = append(dst, `,"ClearedSettings":`...)
		dst = appendBool(dst, v.ClearedSettings)
	default:
		return dst, false
	}
	dst = append(dst, '}', '}', '\n')
	return dst, true
}

// ---- decoding ----

// key consumes `"name":` — canonical keys are plain ASCII, never escaped.
func (r *jsonReader) key(name string) {
	r.skipSpace()
	n := len(name)
	if !r.ok || r.pos+n+3 > len(r.buf) || r.buf[r.pos] != '"' {
		r.fail()
		return
	}
	if string(r.buf[r.pos+1:r.pos+1+n]) != name || r.buf[r.pos+1+n] != '"' {
		r.fail()
		return
	}
	r.pos += n + 2
	r.expect(':')
}

func (r *jsonReader) comma() { r.expect(',') }

func (r *jsonReader) acct() identity.AccountID { return identity.AccountID(r.intVal(32)) }
func (r *jsonReader) sess() SessionID          { return SessionID(r.intVal(64)) }
func (r *jsonReader) actor() Actor             { return Actor(r.str()) }

// archetypeOpt parses the optional trailing `,"Archetype":"…"` field.
// omitempty drops it for untagged records, so absence (the enclosing '}'
// next) is canonical too; a present-but-empty value is not something the
// canonical encoder emits, so it falls back like any other surprise.
func (r *jsonReader) archetypeOpt() string {
	if !r.ok || r.peek() != ',' {
		return ""
	}
	r.pos++
	r.key("Archetype")
	s := r.str()
	if s == "" {
		r.fail()
		return ""
	}
	return s
}

// addrList parses a []identity.Address with encoding/json's conventions:
// null → nil, [] → empty non-nil slice.
func (r *jsonReader) addrList() []identity.Address {
	r.skipSpace()
	if !r.ok {
		return nil
	}
	if rest := r.buf[r.pos:]; len(rest) >= 4 && rest[0] == 'n' && rest[1] == 'u' && rest[2] == 'l' && rest[3] == 'l' {
		r.pos += 4
		return nil
	}
	r.expect('[')
	if !r.ok {
		return nil
	}
	if r.peek() == ']' {
		r.pos++
		return []identity.Address{}
	}
	var out []identity.Address
	for {
		out = append(out, identity.Address(r.str()))
		if !r.ok {
			return nil
		}
		switch r.peek() {
		case ',':
			r.pos++
		case ']':
			r.pos++
			return out
		default:
			r.fail()
			return nil
		}
	}
}

// DecodeLineFast parses one canonical envelope line into its typed
// record. ok is false on any deviation from the canonical encoder's
// output — unknown kind, reordered or missing keys, escapes in the kind
// string, trailing garbage — in which case the caller must fall back to
// the encoding/json path, which owns the error semantics.
func DecodeLineFast(line []byte) (Event, bool) {
	r := newJSONReader(line)
	r.expect('{')
	r.key("kind")
	kindRaw := r.rawStr()
	if !r.ok {
		return nil, false
	}
	for _, c := range kindRaw {
		if c == '\\' {
			return nil, false
		}
	}
	r.comma()
	r.key("data")
	e, ok := decodeDataFast(&r, string(kindRaw))
	if !ok || !r.ok {
		return nil, false
	}
	r.expect('}')
	if !r.ok || !r.atEnd() {
		return nil, false
	}
	return e, true
}

func decodeDataFast(r *jsonReader, kind string) (Event, bool) {
	r.expect('{')
	var e Event
	switch Kind(kind) {
	case KindLogin:
		var v Login
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("IP")
		v.IP = r.addrVal()
		r.comma()
		r.key("DeviceID")
		v.DeviceID = r.str()
		r.comma()
		r.key("PasswordOK")
		v.PasswordOK = r.boolVal()
		r.comma()
		r.key("Outcome")
		v.Outcome = LoginOutcome(r.str())
		r.comma()
		r.key("Challenged")
		v.Challenged = r.boolVal()
		r.comma()
		r.key("RiskScore")
		v.RiskScore = r.floatVal()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		v.Archetype = r.archetypeOpt()
		e = v
	case KindPasswordChanged:
		var v PasswordChanged
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindRecoveryChanged:
		var v RecoveryChanged
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("What")
		v.What = r.str()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindTwoSVEnrolled:
		var v TwoSVEnrolled
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Phone")
		v.Phone = geo.Phone(r.str())
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindMessageSent:
		var v MessageSent
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("ID")
		v.ID = MessageID(r.intVal(64))
		r.comma()
		r.key("From")
		v.From = identity.Address(r.str())
		r.comma()
		r.key("FromAcct")
		v.FromAcct = r.acct()
		r.comma()
		r.key("Recipients")
		v.Recipients = r.addrList()
		r.comma()
		r.key("Class")
		v.Class = MessageClass(r.str())
		r.comma()
		r.key("Customized")
		v.Customized = r.boolVal()
		r.comma()
		r.key("ReplyTo")
		v.ReplyTo = identity.Address(r.str())
		r.comma()
		r.key("PageID")
		v.PageID = PageID(r.intVal(64))
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindSearch:
		var v Search
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Query")
		v.Query = r.str()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindFolderOpened:
		var v FolderOpened
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Folder")
		v.Folder = Folder(r.str())
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindContactsViewed:
		var v ContactsViewed
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindFilterCreated:
		var v FilterCreated
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("ForwardTo")
		v.ForwardTo = identity.Address(r.str())
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindReplyToSet:
		var v ReplyToSet
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Addr")
		v.Addr = identity.Address(r.str())
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindMassDeletion:
		var v MassDeletion
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Deleted")
		v.Deleted = int(r.intVal(64))
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindSpamReported:
		var v SpamReported
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Reporter")
		v.Reporter = r.acct()
		r.comma()
		r.key("Message")
		v.Message = MessageID(r.intVal(64))
		r.comma()
		r.key("From")
		v.From = identity.Address(r.str())
		r.comma()
		r.key("FromAcct")
		v.FromAcct = r.acct()
		r.comma()
		r.key("Class")
		v.Class = MessageClass(r.str())
		e = v
	case KindPageCreated:
		var v PageCreated
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		r.comma()
		r.key("Target")
		v.Target = TargetKind(r.str())
		r.comma()
		r.key("Quality")
		v.Quality = r.floatVal()
		r.comma()
		r.key("OnForms")
		v.OnForms = r.boolVal()
		r.comma()
		r.key("Targeted")
		v.Targeted = r.boolVal()
		e = v
	case KindPageHit:
		var v PageHit
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		r.comma()
		r.key("Method")
		v.Method = r.str()
		r.comma()
		r.key("Referrer")
		v.Referrer = r.str()
		r.comma()
		r.key("Victim")
		v.Victim = identity.Address(r.str())
		r.comma()
		r.key("IP")
		v.IP = r.addrVal()
		e = v
	case KindPageDetected:
		var v PageDetected
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		e = v
	case KindPageTakedown:
		var v PageTakedown
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		e = v
	case KindLureSent:
		var v LureSent
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Campaign")
		v.Campaign = r.intVal(64)
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		r.comma()
		r.key("Victim")
		v.Victim = identity.Address(r.str())
		r.comma()
		r.key("Target")
		v.Target = TargetKind(r.str())
		r.comma()
		r.key("HasURL")
		v.HasURL = r.boolVal()
		r.comma()
		r.key("Reported")
		v.Reported = r.boolVal()
		e = v
	case KindCredentialPhished:
		var v CredentialPhished
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Page")
		v.Page = PageID(r.intVal(64))
		r.comma()
		r.key("Decoy")
		v.Decoy = r.boolVal()
		e = v
	case KindHijackStarted:
		var v HijackStarted
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Crew")
		v.Crew = r.str()
		r.comma()
		r.key("Session")
		v.Session = r.sess()
		v.Archetype = r.archetypeOpt()
		e = v
	case KindHijackAssessed:
		var v HijackAssessed
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Crew")
		v.Crew = r.str()
		r.comma()
		r.key("Duration")
		v.Duration = time.Duration(r.intVal(64))
		r.comma()
		r.key("Exploited")
		v.Exploited = r.boolVal()
		v.Archetype = r.archetypeOpt()
		e = v
	case KindHijackEnded:
		var v HijackEnded
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Crew")
		v.Crew = r.str()
		r.comma()
		r.key("LockedOut")
		v.LockedOut = r.boolVal()
		v.Archetype = r.archetypeOpt()
		e = v
	case KindScamReply:
		var v ScamReply
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("VictimAccount")
		v.VictimAccount = r.acct()
		r.comma()
		r.key("Recipient")
		v.Recipient = r.acct()
		r.comma()
		r.key("ReachedHijacker")
		v.ReachedHijacker = r.boolVal()
		r.comma()
		r.key("Via")
		v.Via = r.str()
		e = v
	case KindMoneyWired:
		var v MoneyWired
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("VictimAccount")
		v.VictimAccount = r.acct()
		r.comma()
		r.key("Recipient")
		v.Recipient = r.acct()
		r.comma()
		r.key("Crew")
		v.Crew = r.str()
		r.comma()
		r.key("Amount")
		v.Amount = r.floatVal()
		e = v
	case KindNotificationSent:
		var v NotificationSent
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Channel")
		v.Channel = NotificationChannel(r.str())
		r.comma()
		r.key("Reason")
		v.Reason = r.str()
		e = v
	case KindClaimFiled:
		var v ClaimFiled
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Trigger")
		v.Trigger = r.str()
		r.comma()
		r.key("HijackedAt")
		v.HijackedAt = r.timeVal()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindClaimAttempt:
		var v ClaimAttempt
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Method")
		v.Method = RecoveryMethod(r.str())
		r.comma()
		r.key("Success")
		v.Success = r.boolVal()
		r.comma()
		r.key("Reason")
		v.Reason = r.str()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindClaimResolved:
		var v ClaimResolved
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("Success")
		v.Success = r.boolVal()
		r.comma()
		r.key("Method")
		v.Method = RecoveryMethod(r.str())
		r.comma()
		r.key("HijackedAt")
		v.HijackedAt = r.timeVal()
		r.comma()
		r.key("FlaggedAt")
		v.FlaggedAt = r.timeVal()
		r.comma()
		r.key("Actor")
		v.Actor = r.actor()
		e = v
	case KindRemission:
		var v Remission
		r.key("Time")
		v.Time = r.timeVal()
		r.comma()
		r.key("Account")
		v.Account = r.acct()
		r.comma()
		r.key("RestoredMessages")
		v.RestoredMessages = int(r.intVal(64))
		r.comma()
		r.key("ClearedSettings")
		v.ClearedSettings = r.boolVal()
		e = v
	default:
		return nil, false
	}
	r.expect('}')
	return e, r.ok
}
