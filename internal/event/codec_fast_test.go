package event

import (
	"bytes"
	"encoding/json"
	"math"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"manualhijack/internal/identity"
)

// encodeJSONLine reproduces the logstore envelope path exactly:
// json.Marshal of the record, wrapped by a json.Encoder (which appends
// the newline and HTML-escapes, matching writeSegmentFile/WriteNDJSON).
func encodeJSONLine(t *testing.T, e Event) []byte {
	t.Helper()
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal %T: %v", e, err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	env := struct {
		Kind Kind            `json:"kind"`
		Data json.RawMessage `json:"data"`
	}{e.EventKind(), data}
	if err := enc.Encode(env); err != nil {
		t.Fatalf("encode envelope %T: %v", e, err)
	}
	return buf.Bytes()
}

// decodeJSONLine reproduces logstore's decodeLine via the registry.
func decodeJSONLine(t *testing.T, line []byte) Event {
	t.Helper()
	var env struct {
		Kind Kind            `json:"kind"`
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	e, err := Decode(env.Kind, env.Data)
	if err != nil {
		t.Fatalf("decode %s: %v", env.Kind, err)
	}
	return e
}

// fastCodecSamples exercises every kind with adversarial field values:
// HTML-escaped characters, JSON escapes, U+2028/U+2029, invalid UTF-8,
// floats in both encoding/json formats, zero and nanosecond times, zero
// and v4/v6 addresses, nil/empty/multi recipient slices.
func fastCodecSamples() []Event {
	at := time.Date(2012, 11, 2, 9, 30, 15, 123456789, time.UTC)
	coarse := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	micro := time.Date(2011, 7, 4, 23, 59, 59, 500000, time.UTC)
	nasty := "a<b>&\"c\\d\ne\tf g h\x01i\x7fjé\U0001F600"
	bad := "ok\xffbad"
	v4 := netip.MustParseAddr("203.0.113.7")
	v6 := netip.MustParseAddr("2001:db8::8a2e:370:7334")
	return []Event{
		Login{Base{at}, 42, v4, "dev-1", true, LoginSuccess, false, 0.73, 9001, ActorOwner, ""},
		Login{Base{micro}, -1, v6, nasty, false, LoginBlocked, true, 1e-7, 0, ActorHijacker, "smashgrab"},
		Login{Base{coarse}, 0, netip.Addr{}, "", false, LoginWrongPassword, false, 0, -3, ActorSystem, ""},
		Login{Base{at}, 7, v4, bad, true, LoginChallengeFailed, true, math.MaxFloat64, 1, ActorOwner, ""},
		Login{Base{at}, 7, v4, "x", true, LoginSuccess, true, math.SmallestNonzeroFloat64, 1, ActorOwner, ""},
		Login{Base{at}, 9, v6, "kit-1", true, LoginSuccess, false, 0.4, 77, ActorHijacker, nasty},
		PasswordChanged{Base{at}, 42, 9001, ActorHijacker},
		RecoveryChanged{Base{micro}, 42, "phone", 9001, ActorOwner},
		RecoveryChanged{Base{at}, 1, nasty, 2, ActorSystem},
		TwoSVEnrolled{Base{at}, 42, "+1-555-0100", 9001, ActorOwner},
		MessageSent{Base{at}, 77, "a@x.test", 42, []identity.Address{"b@x.test", identity.Address(nasty + "@y")}, ClassScam, true, "dg@z.test", 5, 9001, ActorHijacker},
		MessageSent{Base{coarse}, 78, "", identity.None, nil, ClassOrganic, false, "", 0, 0, ActorOwner},
		MessageSent{Base{at}, 79, "c@x.test", 3, []identity.Address{}, ClassLure, false, "", 12, 4, ActorSystem},
		Search{Base{at}, 42, "bank <stmt> & \"wire\"", 9001, ActorHijacker},
		FolderOpened{Base{at}, 42, FolderSpam, 9001, ActorHijacker},
		ContactsViewed{Base{at}, 42, 9001, ActorHijacker},
		FilterCreated{Base{at}, 42, "fwd@evil.test", 9001, ActorHijacker},
		FilterCreated{Base{at}, 43, "", 9002, ActorOwner},
		ReplyToSet{Base{at}, 42, "doppel@evil.test", 9001, ActorHijacker},
		MassDeletion{Base{at}, 42, 317, 9001, ActorHijacker},
		SpamReported{Base{at}, 8, 77, "a@x.test", 42, ClassScam},
		PageCreated{Base{at}, 5, TargetMail, 0.8251, true, false},
		PageCreated{Base{micro}, 6, TargetBank, 1e21, false, true},
		PageHit{Base{at}, 5, "POST", "http://r.test/?a=1&b=<2>", "v@x.test", v6},
		PageHit{Base{at}, 5, "GET", "", "", netip.Addr{}},
		PageDetected{Base{at}, 5},
		PageTakedown{Base{at}, 5},
		LureSent{Base{at}, 31337, 5, "v@x.test", TargetAppStore, true, false},
		LureSent{Base{coarse}, -2, 0, identity.Address(nasty + "@v"), TargetOther, false, true},
		CredentialPhished{Base{at}, 42, 5, true},
		HijackStarted{Base{at}, 42, "crew-7", 9001, ""},
		HijackStarted{Base{at}, 42, "stuffer-1", 9002, "stuffer"},
		HijackAssessed{Base{at}, 42, "crew-7", 3*time.Minute + 17*time.Second, true, ""},
		HijackAssessed{Base{at}, 42, nasty, -time.Nanosecond, false, nasty},
		HijackEnded{Base{at}, 42, "crew-7", true, ""},
		HijackEnded{Base{at}, 42, "ransomer-1", false, "ransomer"},
		ScamReply{Base{at}, 42, 8, true, "replyto"},
		MoneyWired{Base{at}, 42, 8, "crew-7", 1273.50},
		MoneyWired{Base{at}, 42, 8, "", 0.000001},
		NotificationSent{Base{at}, 42, ChannelSMS, "new-device <login> & risk"},
		ClaimFiled{Base{at}, 42, "lockout", micro, ActorOwner},
		ClaimFiled{Base{at}, 42, "fraud", time.Time{}, ActorHijacker},
		ClaimAttempt{Base{at}, 42, MethodSMS, false, "gateway", ActorOwner},
		ClaimResolved{Base{at}, 42, true, MethodEmail, micro, coarse, ActorOwner},
		ClaimResolved{Base{at}, 42, false, "", time.Time{}, time.Time{}, ActorHijacker},
		Remission{Base{at}, 42, 204, true},
	}
}

// TestFastCodecMatchesEncodingJSON pins the fast path to the
// encoding/json path in both directions: encode byte-identical, decode
// DeepEqual, and round-trips through either decoder agree.
func TestFastCodecMatchesEncodingJSON(t *testing.T) {
	for _, e := range fastCodecSamples() {
		want := encodeJSONLine(t, e)
		got, ok := AppendLine(nil, e)
		if !ok {
			t.Fatalf("%T: AppendLine refused %+v", e, e)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%T encode mismatch:\nfast: %s\njson: %s", e, got, want)
			continue
		}
		line := bytes.TrimSuffix(want, []byte("\n"))
		fast, ok := DecodeLineFast(line)
		if !ok {
			t.Fatalf("%T: DecodeLineFast refused canonical line %s", e, line)
		}
		slow := decodeJSONLine(t, line)
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("%T decode mismatch:\nfast: %#v\njson: %#v", e, fast, slow)
		}
	}
}

// TestFastCodecAppendsToPrefix pins the append contract: AppendLine
// extends dst in place and leaves it untouched on refusal.
func TestFastCodecAppendsToPrefix(t *testing.T) {
	prefix := []byte("prefix|")
	e := PageDetected{Base{time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)}, 5}
	out, ok := AppendLine(append([]byte(nil), prefix...), e)
	if !ok || !bytes.HasPrefix(out, prefix) {
		t.Fatalf("AppendLine lost prefix: ok=%v out=%s", ok, out)
	}
	bad := Login{Base: Base{time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)}, RiskScore: math.NaN()}
	out, ok = AppendLine(append([]byte(nil), prefix...), bad)
	if ok {
		t.Fatal("AppendLine accepted NaN RiskScore")
	}
	if !bytes.Equal(out, prefix) {
		t.Fatalf("refused AppendLine altered dst: %q", out)
	}
}

// TestFastDecodeFallsBackOnSurprises pins the bail-out contract: any
// deviation from the canonical encoder's output must return ok=false so
// the encoding/json fallback owns the semantics.
func TestFastDecodeFallsBackOnSurprises(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"kind":"auth.login"}`,
		`{"kind":"no.such_kind","data":{"Time":"2012-01-01T00:00:00Z"}}`,
		// Reordered keys (valid JSON; json.Unmarshal would accept).
		`{"data":{"Time":"2012-01-01T00:00:00Z","Page":5},"kind":"phish.page_detected"}`,
		// Reordered fields inside data.
		`{"kind":"phish.page_detected","data":{"Page":5,"Time":"2012-01-01T00:00:00Z"}}`,
		// Unknown extra field (json.Unmarshal ignores; we must fall back).
		`{"kind":"phish.page_detected","data":{"Time":"2012-01-01T00:00:00Z","Page":5,"X":1}}`,
		// Missing field.
		`{"kind":"phish.page_detected","data":{"Time":"2012-01-01T00:00:00Z"}}`,
		// Escape in the kind string (decodes to a registered kind, but the
		// fast path must not unescape kinds).
		`{"kind":"phish.page\u005fdetected","data":{"Time":"2012-01-01T00:00:00Z","Page":5}}`,
		// Trailing garbage.
		`{"kind":"phish.page_detected","data":{"Time":"2012-01-01T00:00:00Z","Page":5}} x`,
		// Malformed number / string / bool.
		`{"kind":"phish.page_detected","data":{"Time":"2012-01-01T00:00:00Z","Page":5.x}}`,
		`{"kind":"phish.page_detected","data":{"Time":"not-a-time","Page":5}}`,
		`{"kind":"phish.credential_phished","data":{"Time":"2012-01-01T00:00:00Z","Account":1,"Page":5,"Decoy":maybe}}`,
		// A trailing field after LockedOut that is not Archetype.
		`{"kind":"hijack.ended","data":{"Time":"2012-01-01T00:00:00Z","Account":1,"Crew":"c","LockedOut":true,"X":1}}`,
		// Present-but-empty Archetype: omitempty never writes this.
		`{"kind":"hijack.ended","data":{"Time":"2012-01-01T00:00:00Z","Account":1,"Crew":"c","LockedOut":true,"Archetype":""}}`,
	}
	for _, c := range cases {
		if e, ok := DecodeLineFast([]byte(c)); ok {
			t.Errorf("DecodeLineFast accepted %q → %#v", c, e)
		}
	}
}

// TestFastCodecCoversAllKinds forces a codec update (not a silent
// fallback) whenever a kind is added to the registry.
func TestFastCodecCoversAllKinds(t *testing.T) {
	covered := map[Kind]bool{}
	for _, e := range fastCodecSamples() {
		covered[e.EventKind()] = true
	}
	for _, k := range RegisteredKinds() {
		if !covered[k] {
			t.Errorf("no fast-codec sample for kind %s — add one and a codec_fast.go case", k)
		}
	}
}
