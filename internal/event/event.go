// Package event defines the typed log records every subsystem emits. The
// measurement pipeline (internal/datasets, internal/analysis) computes the
// paper's tables and figures exclusively from these records, mirroring how
// the original study was computed from Google's system logs.
//
// Records carry an Actor ground-truth field stating who actually performed
// the action. The simulator knows this; the *detectors* must not use it
// (they operate on observable fields only), while dataset curation uses it
// the way the paper used manual review — as a high-precision labeling step.
package event

import (
	"net/netip"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
)

// Kind names a record type. Retention policies and dataset extractors
// select records by kind.
type Kind string

// All record kinds.
const (
	KindLogin             Kind = "auth.login"
	KindPasswordChanged   Kind = "auth.password_changed"
	KindRecoveryChanged   Kind = "auth.recovery_changed"
	KindTwoSVEnrolled     Kind = "auth.twosv_enrolled"
	KindMessageSent       Kind = "mail.sent"
	KindSearch            Kind = "mail.search"
	KindFolderOpened      Kind = "mail.folder_opened"
	KindContactsViewed    Kind = "mail.contacts_viewed"
	KindFilterCreated     Kind = "mail.filter_created"
	KindReplyToSet        Kind = "mail.replyto_set"
	KindMassDeletion      Kind = "mail.mass_deletion"
	KindSpamReported      Kind = "mail.spam_reported"
	KindPageCreated       Kind = "phish.page_created"
	KindPageHit           Kind = "phish.page_hit"
	KindPageDetected      Kind = "phish.page_detected"
	KindPageTakedown      Kind = "phish.page_takedown"
	KindLureSent          Kind = "phish.lure_sent"
	KindCredentialPhished Kind = "phish.credential_phished"
	KindHijackStarted     Kind = "hijack.started"
	KindHijackAssessed    Kind = "hijack.assessed"
	KindHijackEnded       Kind = "hijack.ended"
	KindScamReply         Kind = "scam.reply"
	KindMoneyWired        Kind = "scam.money_wired"
	KindNotificationSent  Kind = "recovery.notification"
	KindClaimFiled        Kind = "recovery.claim_filed"
	KindClaimAttempt      Kind = "recovery.claim_attempt"
	KindClaimResolved     Kind = "recovery.claim_resolved"
	KindRemission         Kind = "recovery.remission"
)

// Actor states who actually performed an action (simulation ground truth).
type Actor string

// Actors.
const (
	ActorOwner    Actor = "owner"
	ActorHijacker Actor = "hijacker"
	ActorSystem   Actor = "system"
)

// Event is one log record.
type Event interface {
	When() time.Time
	EventKind() Kind
}

// Base carries the timestamp shared by all records.
type Base struct {
	Time time.Time
}

// When returns the record timestamp.
func (b Base) When() time.Time { return b.Time }

// SessionID identifies one logged-in session.
type SessionID int64

// LoginOutcome is the result of a login attempt.
type LoginOutcome string

// Login outcomes.
const (
	LoginSuccess         LoginOutcome = "success"
	LoginWrongPassword   LoginOutcome = "wrong_password"
	LoginChallengeFailed LoginOutcome = "challenge_failed"
	LoginBlocked         LoginOutcome = "blocked"
)

// Login records one login attempt, successful or not.
type Login struct {
	Base
	Account    identity.AccountID
	IP         netip.Addr
	DeviceID   string
	PasswordOK bool
	Outcome    LoginOutcome
	Challenged bool
	RiskScore  float64
	Session    SessionID // non-zero on success
	Actor      Actor
	// Archetype is ground truth for hijacker attempts: the playbook
	// archetype behind the attempt ("manual", "smashgrab", ...). Empty for
	// owner traffic and for dumps written before archetype tagging —
	// detectors must not read it; the per-archetype scorecard does.
	Archetype string `json:",omitempty"`
}

// EventKind implements Event.
func (Login) EventKind() Kind { return KindLogin }

// PasswordChanged records a password change.
type PasswordChanged struct {
	Base
	Account identity.AccountID
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (PasswordChanged) EventKind() Kind { return KindPasswordChanged }

// RecoveryChanged records a change to recovery options (secondary email,
// phone, or secret question).
type RecoveryChanged struct {
	Base
	Account identity.AccountID
	What    string // "phone" | "email" | "question"
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (RecoveryChanged) EventKind() Kind { return KindRecoveryChanged }

// TwoSVEnrolled records 2-step-verification enrollment with a phone.
type TwoSVEnrolled struct {
	Base
	Account identity.AccountID
	Phone   geo.Phone
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (TwoSVEnrolled) EventKind() Kind { return KindTwoSVEnrolled }

// MessageClass is the ground-truth class of a sent message.
type MessageClass string

// Message classes.
const (
	ClassOrganic      MessageClass = "organic"
	ClassScam         MessageClass = "scam"
	ClassPhish        MessageClass = "phish"
	ClassLure         MessageClass = "lure" // phishing-campaign lure from external infra
	ClassNotification MessageClass = "notification"
	ClassSpamBulk     MessageClass = "bulk_spam" // ordinary spam noise
)

// MessageID identifies a sent message.
type MessageID int64

// MessageSent records an outbound message from a provider account (or, for
// ClassLure/ClassSpamBulk, from external infrastructure).
type MessageSent struct {
	Base
	ID         MessageID
	From       identity.Address
	FromAcct   identity.AccountID // None when external
	Recipients []identity.Address
	Class      MessageClass
	Customized bool // §5.3: small-recipient scams tend to be customized
	ReplyTo    identity.Address
	PageID     PageID // for lures/phish: the phishing page linked, 0 = ask-reply
	Session    SessionID
	Actor      Actor
}

// EventKind implements Event.
func (MessageSent) EventKind() Kind { return KindMessageSent }

// Search records a mailbox search.
type Search struct {
	Base
	Account identity.AccountID
	Query   string
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (Search) EventKind() Kind { return KindSearch }

// Folder names a mailbox system folder.
type Folder string

// System folders.
const (
	FolderInbox   Folder = "inbox"
	FolderStarred Folder = "starred"
	FolderDrafts  Folder = "drafts"
	FolderSent    Folder = "sent"
	FolderTrash   Folder = "trash"
	FolderSpam    Folder = "spam"
)

// FolderOpened records opening a mailbox folder.
type FolderOpened struct {
	Base
	Account identity.AccountID
	Folder  Folder
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (FolderOpened) EventKind() Kind { return KindFolderOpened }

// ContactsViewed records viewing the contact list.
type ContactsViewed struct {
	Base
	Account identity.AccountID
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (ContactsViewed) EventKind() Kind { return KindContactsViewed }

// FilterCreated records creation of a mail filter (the hijacker retention
// tactic redirects incoming mail to Trash/Spam or forwards it out).
type FilterCreated struct {
	Base
	Account   identity.AccountID
	ForwardTo identity.Address // empty when the action is a trash/spam rule
	Session   SessionID
	Actor     Actor
}

// EventKind implements Event.
func (FilterCreated) EventKind() Kind { return KindFilterCreated }

// ReplyToSet records configuring an outbound Reply-To address.
type ReplyToSet struct {
	Base
	Account identity.AccountID
	Addr    identity.Address
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (ReplyToSet) EventKind() Kind { return KindReplyToSet }

// MassDeletion records bulk deletion of messages/contacts.
type MassDeletion struct {
	Base
	Account identity.AccountID
	Deleted int
	Session SessionID
	Actor   Actor
}

// EventKind implements Event.
func (MassDeletion) EventKind() Kind { return KindMassDeletion }

// SpamReported records a recipient flagging a message as spam/phishing.
type SpamReported struct {
	Base
	Reporter identity.AccountID
	Message  MessageID
	From     identity.Address
	FromAcct identity.AccountID
	Class    MessageClass // ground truth of the reported message
}

// EventKind implements Event.
func (SpamReported) EventKind() Kind { return KindSpamReported }

// PageID identifies a phishing page.
type PageID int64

// TargetKind is the type of credential a phishing artifact solicits
// (Table 2's rows).
type TargetKind string

// Target kinds.
const (
	TargetMail     TargetKind = "mail"
	TargetBank     TargetKind = "bank"
	TargetAppStore TargetKind = "appstore"
	TargetSocial   TargetKind = "social"
	TargetOther    TargetKind = "other"
)

// PageCreated records a phishing page going live.
type PageCreated struct {
	Base
	Page    PageID
	Target  TargetKind
	Quality float64 // kit quality in [0,1]; drives conversion (Fig. 5)
	OnForms bool    // hosted on the provider's Forms product (Dataset 3)
	// Targeted marks spear-phishing pages fed by an explicit victim list
	// (hijacker contact campaigns). They are mailed directly to victims
	// and not found by web indexing, so Dataset 2 excludes them.
	Targeted bool
}

// EventKind implements Event.
func (PageCreated) EventKind() Kind { return KindPageCreated }

// PageHit records one HTTP request to a phishing page.
type PageHit struct {
	Base
	Page     PageID
	Method   string // "GET" | "POST"
	Referrer string // "" for blank (mail clients / webmail new tabs)
	Victim   identity.Address
	IP       netip.Addr
}

// EventKind implements Event.
func (PageHit) EventKind() Kind { return KindPageHit }

// PageDetected records the anti-phishing pipeline flagging a page.
type PageDetected struct {
	Base
	Page PageID
}

// EventKind implements Event.
func (PageDetected) EventKind() Kind { return KindPageDetected }

// PageTakedown records a page being disabled.
type PageTakedown struct {
	Base
	Page PageID
}

// EventKind implements Event.
func (PageTakedown) EventKind() Kind { return KindPageTakedown }

// LureSent records a phishing lure email delivered to a victim (external
// campaign traffic; hijacked-account phishing is a MessageSent with
// ClassPhish).
type LureSent struct {
	Base
	Campaign int64
	Page     PageID // 0 when the lure asks for a credential reply instead
	Victim   identity.Address
	Target   TargetKind
	HasURL   bool
	Reported bool // victim reported it (feeds Dataset 1's noisy source)
}

// EventKind implements Event.
func (LureSent) EventKind() Kind { return KindLureSent }

// CredentialPhished records a provider credential captured by a phishing
// page — the hand-off from the phishing substrate to hijacker crews.
type CredentialPhished struct {
	Base
	Account identity.AccountID
	Page    PageID
	Decoy   bool // injected by the study's decoy experiment (Dataset 4)
}

// EventKind implements Event.
func (CredentialPhished) EventKind() Kind { return KindCredentialPhished }

// HijackStarted marks ground truth: a hijacker crew began working an
// account.
type HijackStarted struct {
	Base
	Account identity.AccountID
	Crew    string
	Session SessionID
	// Archetype is the attacker playbook behind the hijack (empty in
	// pre-archetype dumps).
	Archetype string `json:",omitempty"`
}

// EventKind implements Event.
func (HijackStarted) EventKind() Kind { return KindHijackStarted }

// HijackAssessed marks the end of the value-assessment phase (§5.2).
type HijackAssessed struct {
	Base
	Account   identity.AccountID
	Crew      string
	Duration  time.Duration
	Exploited bool   // false = deemed not valuable, abandoned
	Archetype string `json:",omitempty"`
}

// EventKind implements Event.
func (HijackAssessed) EventKind() Kind { return KindHijackAssessed }

// HijackEnded marks the crew finishing with an account.
type HijackEnded struct {
	Base
	Account   identity.AccountID
	Crew      string
	LockedOut bool   // the owner was locked out (password changed)
	Archetype string `json:",omitempty"`
}

// EventKind implements Event.
func (HijackEnded) EventKind() Kind { return KindHijackEnded }

// ScamReply records a plea recipient responding to a scam message — the
// first step of the two-round Mugged-in-City flow (§5.4 notes "even the
// shortest process may take one or two days").
type ScamReply struct {
	Base
	// VictimAccount is the hijacked account the scam impersonated.
	VictimAccount identity.AccountID
	Recipient     identity.AccountID
	// ReachedHijacker is true when the reply got to the criminal — via a
	// doppelganger Reply-To, a forwarding filter, or retained account
	// access — rather than dying in a recovered mailbox.
	ReachedHijacker bool
	Via             string // "replyto" | "filter" | "access" | "lost"
}

// EventKind implements Event.
func (ScamReply) EventKind() Kind { return KindScamReply }

// MoneyWired records a completed scam payment (Western Union-style
// transfer, §5.3) — the monetization event the whole hijack exists for.
type MoneyWired struct {
	Base
	VictimAccount identity.AccountID
	Recipient     identity.AccountID
	Crew          string
	Amount        float64 // USD
}

// EventKind implements Event.
func (MoneyWired) EventKind() Kind { return KindMoneyWired }

// NotificationChannel is an out-of-band user notification channel.
type NotificationChannel string

// Notification channels.
const (
	ChannelSMS   NotificationChannel = "sms"
	ChannelEmail NotificationChannel = "email"
)

// NotificationSent records a proactive security notification (§8.2).
type NotificationSent struct {
	Base
	Account identity.AccountID
	Channel NotificationChannel
	Reason  string
}

// EventKind implements Event.
func (NotificationSent) EventKind() Kind { return KindNotificationSent }

// ClaimFiled records someone starting account recovery — usually the
// victim, but §6.3's impostor risk is real: hijackers file fraudulent
// claims hoping to pass the knowledge fallback.
type ClaimFiled struct {
	Base
	Account identity.AccountID
	// Trigger says what alerted the victim ("notification", "lockout",
	// "noticed", "suspended") or marks an impostor attempt ("fraud").
	Trigger string
	// HijackedAt is the ground-truth hijack time backing latency analysis.
	HijackedAt time.Time
	// Actor is the ground-truth claimant.
	Actor Actor
}

// EventKind implements Event.
func (ClaimFiled) EventKind() Kind { return KindClaimFiled }

// RecoveryMethod is a recovery verification method (Figure 10's rows).
type RecoveryMethod string

// Recovery methods.
const (
	MethodSMS      RecoveryMethod = "sms"
	MethodEmail    RecoveryMethod = "email"
	MethodFallback RecoveryMethod = "fallback"
)

// ClaimAttempt records one verification attempt within a claim.
type ClaimAttempt struct {
	Base
	Account identity.AccountID
	Method  RecoveryMethod
	Success bool
	Reason  string // failure reason: "bounce", "recycled", "gateway", ...
	// Actor is the ground-truth claimant.
	Actor Actor
}

// EventKind implements Event.
func (ClaimAttempt) EventKind() Kind { return KindClaimAttempt }

// ClaimResolved records the claim outcome.
type ClaimResolved struct {
	Base
	Account    identity.AccountID
	Success    bool
	Method     RecoveryMethod // the method that succeeded (if any)
	HijackedAt time.Time
	// FlaggedAt is when risk analysis first flagged the account, the start
	// point of the paper's recovery-latency measurement (§6.2).
	FlaggedAt time.Time
	// Actor is the ground-truth claimant.
	Actor Actor
}

// EventKind implements Event.
func (ClaimResolved) EventKind() Kind { return KindClaimResolved }

// Remission records post-recovery cleanup (§6.4).
type Remission struct {
	Base
	Account          identity.AccountID
	RestoredMessages int
	ClearedSettings  bool
}

// EventKind implements Event.
func (Remission) EventKind() Kind { return KindRemission }
