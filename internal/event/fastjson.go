package event

// Hand-rolled JSON primitives for the hot dump/segment wire path. The
// spill-to-disk segmented store encodes every record once on the build
// path and decodes it once per analysis pass; with encoding/json that
// reflection cost dominates the whole study (BENCH_7's 2.24× spill tax).
// These helpers replicate encoding/json's output byte for byte — same
// HTML escaping, same float formatting, same RFC 3339 timestamps — so the
// fast path changes no file ever written, and the decoder accepts exactly
// the canonical shape, bailing out (ok=false) to the encoding/json
// fallback on anything it does not recognize. Correctness is pinned by
// property tests comparing both paths on randomized records of every
// kind (TestFastCodecMatchesEncodingJSON).

import (
	"math"
	"net/netip"
	"strconv"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// ---- encoding ----

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string, escaping exactly the byte set
// encoding/json escapes with its default (HTML-escaping) encoder: ", \,
// control characters, <, >, &, and U+2028/U+2029.
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and the HTML-sensitive trio become
				// \u00xx, matching encoding/json.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendFloat appends f the way encoding/json does: shortest 'f' form,
// switching to cleaned-up 'e' form outside [1e-6, 1e21). ok is false for
// NaN/Inf, which JSON cannot represent (the caller falls back, and
// encoding/json reports the error).
func appendFloat(dst []byte, f float64) (_ []byte, ok bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// appendTime appends t as a quoted RFC 3339 timestamp with nanoseconds,
// time.Time.MarshalJSON's format for the in-range years every simulated
// clock produces.
func appendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

// appendAddr appends ip as its quoted text form ("" for the zero Addr),
// matching netip.Addr.MarshalText under encoding/json.
func appendAddr(dst []byte, ip netip.Addr) []byte {
	dst = append(dst, '"')
	if ip.IsValid() {
		dst = ip.AppendTo(dst)
	}
	return append(dst, '"')
}

// ---- decoding ----

// jsonReader is a minimal scanner over one canonical NDJSON line. Any
// shape surprise flips ok=false once and sticks; callers then fall back
// to encoding/json, so the fast path never has to be more lenient than
// the canonical encoder's output.
type jsonReader struct {
	buf []byte
	pos int
	ok  bool
}

func newJSONReader(line []byte) jsonReader { return jsonReader{buf: line, ok: true} }

func (r *jsonReader) fail() { r.ok = false }

// skipSpace advances over insignificant whitespace.
func (r *jsonReader) skipSpace() {
	for r.pos < len(r.buf) {
		switch r.buf[r.pos] {
		case ' ', '\t', '\n', '\r':
			r.pos++
		default:
			return
		}
	}
}

// expect consumes c or fails.
func (r *jsonReader) expect(c byte) {
	r.skipSpace()
	if !r.ok || r.pos >= len(r.buf) || r.buf[r.pos] != c {
		r.fail()
		return
	}
	r.pos++
}

// peek reports the next significant byte without consuming it.
func (r *jsonReader) peek() byte {
	r.skipSpace()
	if r.pos >= len(r.buf) {
		return 0
	}
	return r.buf[r.pos]
}

// atEnd reports whether only whitespace remains.
func (r *jsonReader) atEnd() bool {
	r.skipSpace()
	return r.pos >= len(r.buf)
}

// str parses a JSON string, unescaping as needed.
func (r *jsonReader) str() string {
	raw := r.rawStr()
	if !r.ok {
		return ""
	}
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\\' {
			return r.unescape(raw)
		}
	}
	return string(raw)
}

// rawStr consumes a string literal and returns its undecoded interior.
func (r *jsonReader) rawStr() []byte {
	r.skipSpace()
	if !r.ok || r.pos >= len(r.buf) || r.buf[r.pos] != '"' {
		r.fail()
		return nil
	}
	r.pos++
	start := r.pos
	for r.pos < len(r.buf) {
		switch r.buf[r.pos] {
		case '"':
			raw := r.buf[start:r.pos]
			r.pos++
			return raw
		case '\\':
			r.pos += 2
		default:
			r.pos++
		}
	}
	r.fail()
	return nil
}

// unescape decodes a string interior containing at least one escape.
func (r *jsonReader) unescape(raw []byte) string {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != '\\' {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(raw) {
			r.fail()
			return ""
		}
		switch raw[i+1] {
		case '"', '\\', '/':
			out = append(out, raw[i+1])
			i += 2
		case 'b':
			out = append(out, '\b')
			i += 2
		case 'f':
			out = append(out, '\f')
			i += 2
		case 'n':
			out = append(out, '\n')
			i += 2
		case 'r':
			out = append(out, '\r')
			i += 2
		case 't':
			out = append(out, '\t')
			i += 2
		case 'u':
			if i+6 > len(raw) {
				r.fail()
				return ""
			}
			v, err := strconv.ParseUint(string(raw[i+2:i+6]), 16, 32)
			if err != nil {
				r.fail()
				return ""
			}
			cp := rune(v)
			i += 6
			if utf16.IsSurrogate(cp) {
				if i+6 <= len(raw) && raw[i] == '\\' && raw[i+1] == 'u' {
					v2, err := strconv.ParseUint(string(raw[i+2:i+6]), 16, 32)
					if err != nil {
						r.fail()
						return ""
					}
					if dec := utf16.DecodeRune(cp, rune(v2)); dec != utf8.RuneError {
						cp = dec
						i += 6
					} else {
						cp = utf8.RuneError
					}
				} else {
					cp = utf8.RuneError
				}
			}
			out = utf8.AppendRune(out, cp)
		default:
			r.fail()
			return ""
		}
	}
	return string(out)
}

// numToken consumes a numeric literal and returns its text.
func (r *jsonReader) numToken() []byte {
	r.skipSpace()
	start := r.pos
	for r.pos < len(r.buf) {
		switch c := r.buf[r.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			r.pos++
		default:
			if r.pos == start {
				r.fail()
				return nil
			}
			return r.buf[start:r.pos]
		}
	}
	if r.pos == start {
		r.fail()
		return nil
	}
	return r.buf[start:r.pos]
}

// intVal parses an integer field with the given bit size.
func (r *jsonReader) intVal(bits int) int64 {
	tok := r.numToken()
	if !r.ok {
		return 0
	}
	v, err := strconv.ParseInt(string(tok), 10, bits)
	if err != nil {
		r.fail()
		return 0
	}
	return v
}

// floatVal parses a number field.
func (r *jsonReader) floatVal() float64 {
	tok := r.numToken()
	if !r.ok {
		return 0
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		r.fail()
		return 0
	}
	return v
}

// boolVal parses true/false.
func (r *jsonReader) boolVal() bool {
	r.skipSpace()
	rest := r.buf[r.pos:]
	if len(rest) >= 4 && rest[0] == 't' && rest[1] == 'r' && rest[2] == 'u' && rest[3] == 'e' {
		r.pos += 4
		return true
	}
	if len(rest) >= 5 && rest[0] == 'f' && rest[1] == 'a' && rest[2] == 'l' && rest[3] == 's' && rest[4] == 'e' {
		r.pos += 5
		return false
	}
	r.fail()
	return false
}

// timeVal parses a quoted RFC 3339 timestamp.
func (r *jsonReader) timeVal() time.Time {
	s := r.str()
	if !r.ok {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		r.fail()
		return time.Time{}
	}
	return t
}

// addrVal parses a quoted IP address ("" meaning the zero Addr).
func (r *jsonReader) addrVal() netip.Addr {
	s := r.str()
	if !r.ok || s == "" {
		return netip.Addr{}
	}
	ip, err := netip.ParseAddr(s)
	if err != nil {
		r.fail()
		return netip.Addr{}
	}
	return ip
}
