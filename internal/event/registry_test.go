package event

import "testing"

func TestKindForConcreteTypes(t *testing.T) {
	cases := []struct {
		got  func() (Kind, bool)
		want Kind
	}{
		{KindFor[Login], KindLogin},
		{KindFor[MessageSent], KindMessageSent},
		{KindFor[PageHit], KindPageHit},
		{KindFor[ClaimResolved], KindClaimResolved},
		{KindFor[Remission], KindRemission},
	}
	for _, c := range cases {
		k, ok := c.got()
		if !ok || k != c.want {
			t.Errorf("KindFor = %q, %v; want %q", k, ok, c.want)
		}
	}
}

// The Event interface itself satisfies the constraint but is not a
// concrete record type; lookups through it must report ok=false so
// logstore falls back to a full scan.
func TestKindForInterfaceFallsBack(t *testing.T) {
	if k, ok := KindFor[Event](); ok {
		t.Errorf("KindFor[Event] = %q, want miss", k)
	}
}

// Every kind with a decoder must have a reverse type mapping and vice
// versa — a gap would silently route Select[T] to a scan (correct but
// slow) or break NDJSON decoding.
func TestRegistryBidirectional(t *testing.T) {
	if len(decoders) != len(kindByType) {
		t.Fatalf("decoders=%d kindByType=%d, registry out of sync", len(decoders), len(kindByType))
	}
	seen := map[Kind]bool{}
	for _, k := range kindByType {
		if seen[k] {
			t.Fatalf("kind %q registered for two types", k)
		}
		seen[k] = true
		if _, ok := decoders[k]; !ok {
			t.Errorf("kind %q has a type mapping but no decoder", k)
		}
	}
}
