// Package geo provides the geographic substrate of the study: a synthetic
// IPv4 address plan partitioned by country, IP→country geolocation, and
// E.164 phone numbers with country-code parsing.
//
// The paper attributes hijacking activity via (a) geolocation of the IPs
// that accessed hijacked accounts (Figure 11) and (b) the country codes of
// phones hijackers enrolled for 2-step verification (Figure 12). Both are
// pure lookups, so a deterministic synthetic plan preserves the analyses
// exactly.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"manualhijack/internal/randx"
)

// Country identifies a country by its ISO 3166-1 alpha-2 code.
type Country string

// Countries that appear in the paper's attribution section plus a set of
// "rest of world" sources for organic traffic.
const (
	China       Country = "CN"
	IvoryCoast  Country = "CI"
	Malaysia    Country = "MY"
	Nigeria     Country = "NG"
	SouthAfrica Country = "ZA"
	Venezuela   Country = "VE"
	France      Country = "FR"
	India       Country = "IN"
	Mali        Country = "ML"
	Vietnam     Country = "VN"
	Afghanistan Country = "AF"
	US          Country = "US"
	Brazil      Country = "BR"
	UK          Country = "GB"
	Germany     Country = "DE"
	Spain       Country = "ES"
	Canada      Country = "CA"
	Australia   Country = "AU"
	Japan       Country = "JP"
	Mexico      Country = "MX"
	Unknown     Country = "??"
)

// phoneCodes maps countries to E.164 calling codes.
var phoneCodes = map[Country]string{
	China: "86", IvoryCoast: "225", Malaysia: "60", Nigeria: "234",
	SouthAfrica: "27", Venezuela: "58", France: "33", India: "91",
	Mali: "223", Vietnam: "84", Afghanistan: "93", US: "1", Brazil: "55",
	UK: "44", Germany: "49", Spain: "34", Canada: "1", Australia: "61",
	Japan: "81", Mexico: "52",
}

// AllCountries lists every country in the registry in a stable order.
func AllCountries() []Country {
	out := make([]Country, 0, len(phoneCodes))
	for c := range phoneCodes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PhoneCode returns the E.164 calling code for a country, or "" if unknown.
func PhoneCode(c Country) string { return phoneCodes[c] }

// IPPlan is a synthetic IPv4 address plan: each registered country owns a
// set of /16 blocks inside 10.0.0.0/8 equivalents spread over the full
// space. Lookups are O(1).
type IPPlan struct {
	// blockOwner maps the top 16 bits of an address to its country.
	blockOwner map[uint16]Country
	// blocks lists each country's owned high-16 prefixes for generation.
	blocks map[Country][]uint16
}

// NewIPPlan builds a plan giving each registered country blocksPer /16
// blocks, deterministically derived from the registry order (no RNG: the
// plan is part of the world's fixed geography).
func NewIPPlan(blocksPer int) *IPPlan {
	if blocksPer < 1 {
		blocksPer = 1
	}
	p := &IPPlan{
		blockOwner: make(map[uint16]Country),
		blocks:     make(map[Country][]uint16),
	}
	countries := AllCountries()
	// Interleave countries across the high-16 space, starting at 0x0100 to
	// avoid 0.x addresses.
	next := uint16(0x0100)
	for b := 0; b < blocksPer; b++ {
		for _, c := range countries {
			p.blockOwner[next] = c
			p.blocks[c] = append(p.blocks[c], next)
			next += 0x0101 // stride so blocks are visibly scattered
		}
	}
	return p
}

// Addr generates a deterministic-by-stream address inside one of country's
// blocks.
func (p *IPPlan) Addr(r *randx.Rand, c Country) netip.Addr {
	blocks := p.blocks[c]
	if len(blocks) == 0 {
		// Unregistered country: return an address no block owns.
		return netip.AddrFrom4([4]byte{0, 0, byte(r.Intn(256)), byte(r.Intn(256))})
	}
	hi := randx.Pick(r, blocks)
	lo := uint16(r.Intn(1 << 16))
	return netip.AddrFrom4([4]byte{byte(hi >> 8), byte(hi), byte(lo >> 8), byte(lo)})
}

// Locate returns the country owning addr, or Unknown.
func (p *IPPlan) Locate(addr netip.Addr) Country {
	if !addr.Is4() {
		return Unknown
	}
	b := addr.As4()
	hi := uint16(b[0])<<8 | uint16(b[1])
	if c, ok := p.blockOwner[hi]; ok {
		return c
	}
	return Unknown
}

// Phone is an E.164 phone number string, e.g. "+2348012345678".
type Phone string

// NewPhone generates a random subscriber number in country c.
func NewPhone(r *randx.Rand, c Country) Phone {
	code, ok := phoneCodes[c]
	if !ok {
		code = "999"
	}
	return Phone(fmt.Sprintf("+%s%09d", code, r.Intn(1_000_000_000)))
}

// PhoneCountry parses the country of a phone number by longest-prefix
// match on its calling code. Returns Unknown for unparseable numbers.
// "+1" is shared by US and Canada; the deterministic tie-break attributes
// it to the alphabetically first country (CA), which is irrelevant to the
// paper's phone dataset (no North American numbers appear in Figure 12).
func PhoneCountry(p Phone) Country {
	s := string(p)
	if !strings.HasPrefix(s, "+") || len(s) < 4 {
		return Unknown
	}
	s = s[1:]
	best := Unknown
	bestLen := 0
	for _, c := range AllCountries() {
		code := phoneCodes[c]
		if strings.HasPrefix(s, code) && len(code) > bestLen {
			best, bestLen = c, len(code)
		}
	}
	return best
}

// Distance returns a coarse "are these far apart" metric between two
// countries used by the login risk analyzer's geo-velocity signal: 0 for
// the same country, 1 otherwise. The study only needs country granularity.
func Distance(a, b Country) float64 {
	if a == b {
		return 0
	}
	return 1
}
