package geo

import (
	"testing"
	"testing/quick"

	"manualhijack/internal/randx"
)

func TestIPPlanRoundTrip(t *testing.T) {
	p := NewIPPlan(4)
	r := randx.New(1)
	for _, c := range AllCountries() {
		for i := 0; i < 50; i++ {
			addr := p.Addr(r, c)
			if got := p.Locate(addr); got != c {
				t.Fatalf("Locate(Addr(%s)) = %s", c, got)
			}
		}
	}
}

func TestIPPlanUnknown(t *testing.T) {
	p := NewIPPlan(2)
	r := randx.New(2)
	addr := p.Addr(r, Country("XX"))
	if got := p.Locate(addr); got != Unknown {
		t.Fatalf("unregistered country should locate to Unknown, got %s", got)
	}
}

func TestIPPlanBlockDisjointness(t *testing.T) {
	p := NewIPPlan(8)
	seen := map[uint16]Country{}
	for c, blocks := range p.blocks {
		for _, b := range blocks {
			if prev, ok := seen[b]; ok && prev != c {
				t.Fatalf("block %04x owned by both %s and %s", b, prev, c)
			}
			seen[b] = c
		}
	}
}

func TestPhoneRoundTrip(t *testing.T) {
	r := randx.New(3)
	for _, c := range AllCountries() {
		if c == US { // +1 ties to CA by design
			continue
		}
		ph := NewPhone(r, c)
		if got := PhoneCountry(ph); got != c {
			t.Fatalf("PhoneCountry(NewPhone(%s)=%s) = %s", c, ph, got)
		}
	}
}

func TestPhoneSharedCodeDeterministic(t *testing.T) {
	r := randx.New(4)
	us := NewPhone(r, US)
	if got := PhoneCountry(us); got != Canada {
		t.Fatalf("+1 should deterministically parse to CA, got %s", got)
	}
}

func TestPhoneCountryGarbage(t *testing.T) {
	for _, p := range []Phone{"", "+", "123", "+9", "nonsense"} {
		if got := PhoneCountry(p); got != Unknown {
			t.Fatalf("PhoneCountry(%q) = %s, want Unknown", p, got)
		}
	}
}

func TestPhoneCountryLongestPrefix(t *testing.T) {
	// Mali is +223; a +22... number must not be claimed by a shorter code.
	if got := PhoneCountry("+223123456789"); got != Mali {
		t.Fatalf("+223 = %s, want ML", got)
	}
	// Ivory Coast +225.
	if got := PhoneCountry("+225987654321"); got != IvoryCoast {
		t.Fatalf("+225 = %s, want CI", got)
	}
}

func TestDistance(t *testing.T) {
	if Distance(China, China) != 0 {
		t.Fatal("same-country distance should be 0")
	}
	if Distance(China, Nigeria) != 1 {
		t.Fatal("cross-country distance should be 1")
	}
}

func TestPhoneCodeRegistry(t *testing.T) {
	if PhoneCode(Nigeria) != "234" {
		t.Fatalf("NG code = %s", PhoneCode(Nigeria))
	}
	if PhoneCode(Country("XX")) != "" {
		t.Fatal("unknown country should have empty code")
	}
}

func TestAllCountriesSortedStable(t *testing.T) {
	a, b := AllCountries(), AllCountries()
	if len(a) == 0 {
		t.Fatal("no countries registered")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AllCountries not stable")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatal("AllCountries not sorted")
		}
	}
}

// Property: every generated address for a registered country is located
// back to that country, for arbitrary RNG seeds.
func TestAddrLocateProperty(t *testing.T) {
	p := NewIPPlan(3)
	countries := AllCountries()
	f := func(seed int64, pick uint8) bool {
		c := countries[int(pick)%len(countries)]
		r := randx.New(seed)
		return p.Locate(p.Addr(r, c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
