package hijacker

import (
	"strings"

	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

// makeDoppelganger builds a look-alike address for the victim (§5.4):
// either a difficult-to-spot typo of the username at the same provider,
// or the same username at a similar-looking domain with a different
// provider — both observed in the wild (the paper's example keeps the
// username and swaps gmail.com for a look-alike domain).
func makeDoppelganger(r *randx.Rand, victim identity.Address) identity.Address {
	s := string(victim)
	at := strings.LastIndexByte(s, '@')
	if at <= 0 {
		return identity.Address("doppel@" + typoDomain(r, "lookalike.test"))
	}
	user, domain := s[:at], s[at+1:]
	if r.Bool(0.5) {
		return identity.Address(typoString(r, user) + "@" + domain)
	}
	return identity.Address(user + "@" + typoDomain(r, domain))
}

// typoString applies one hard-to-notice edit to s.
func typoString(r *randx.Rand, s string) string {
	runes := []rune(s)
	if len(runes) == 0 {
		return "x"
	}
	switch r.Intn(3) {
	case 0: // swap two adjacent runes
		if len(runes) >= 2 {
			i := r.Intn(len(runes) - 1)
			runes[i], runes[i+1] = runes[i+1], runes[i]
			if out := string(runes); out != s {
				return out
			}
		}
		fallthrough
	case 1: // substitute a visually similar rune
		i := r.Intn(len(runes))
		runes[i] = confusable(runes[i])
		if out := string(runes); out != s {
			return out
		}
		fallthrough
	default: // duplicate a rune
		i := r.Intn(len(runes))
		out := make([]rune, 0, len(runes)+1)
		out = append(out, runes[:i+1]...)
		out = append(out, runes[i])
		out = append(out, runes[i+1:]...)
		return string(out)
	}
}

// typoDomain typos only the domain's first label, keeping the TLD intact
// so the address still looks routine.
func typoDomain(r *randx.Rand, domain string) string {
	dot := strings.IndexByte(domain, '.')
	if dot <= 0 {
		return typoString(r, domain)
	}
	return typoString(r, domain[:dot]) + domain[dot:]
}

// confusable maps a rune to a visually similar one.
func confusable(c rune) rune {
	switch c {
	case 'l':
		return '1'
	case '1':
		return 'l'
	case 'o':
		return '0'
	case '0':
		return 'o'
	case 'i':
		return 'l'
	case 'm':
		return 'n'
	case 'n':
		return 'm'
	case 'e':
		return 'a'
	default:
		return 'x'
	}
}
