package hijacker

import (
	"strings"
	"testing"
	"testing/quick"

	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
	"manualhijack/internal/strsim"
)

func TestMakeDoppelgangerLooksAlike(t *testing.T) {
	r := randx.New(1)
	victims := []identity.Address{
		"james.1518@pmail.test",
		"maria.7@pmail.test",
		"wei.3843@pmail.test",
	}
	for _, v := range victims {
		for i := 0; i < 50; i++ {
			d := makeDoppelganger(r, v)
			if d == v {
				t.Fatalf("doppelganger identical to victim: %s", d)
			}
			if sim := strsim.Similarity(string(v), string(d)); sim < 0.8 {
				t.Fatalf("doppelganger %s too dissimilar to %s (%.2f)", d, v, sim)
			}
			if !strings.Contains(string(d), "@") {
				t.Fatalf("doppelganger %s not an address", d)
			}
		}
	}
}

func TestMakeDoppelgangerKeepsTLD(t *testing.T) {
	r := randx.New(2)
	for i := 0; i < 100; i++ {
		d := makeDoppelganger(r, "user@pmail.test")
		if got := identity.TLD(identity.Address(d)); got != "test" {
			t.Fatalf("doppelganger %s changed the TLD to %q", d, got)
		}
	}
}

func TestMakeDoppelgangerMalformedVictim(t *testing.T) {
	r := randx.New(3)
	d := makeDoppelganger(r, "not-an-address")
	if !strings.Contains(string(d), "@") {
		t.Fatalf("fallback doppelganger %s not an address", d)
	}
}

// Property: doppelgangers are always within edit distance 2 of the victim
// (one typo in user or first domain label; duplication adds at most one).
func TestDoppelgangerEditDistanceProperty(t *testing.T) {
	r := randx.New(4)
	f := func(userSeed, domSeed uint16) bool {
		user := "user" + string(rune('a'+userSeed%26)) + string(rune('a'+userSeed/26%26))
		dom := "dom" + string(rune('a'+domSeed%26)) + ".test"
		v := identity.Address(user + "@" + dom)
		d := makeDoppelganger(r, v)
		return strsim.Levenshtein(string(v), string(d)) <= 2 && d != v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ChunkContacts never loses or duplicates a contact and keeps
// batches at high recipient counts whenever the list allows it.
func TestChunkContactsProperty(t *testing.T) {
	f := func(n uint8, batches uint8) bool {
		contacts := make([]identity.Address, int(n)%80)
		for i := range contacts {
			contacts[i] = identity.Address(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		}
		out := ChunkContacts(contacts, int(batches)%12)
		total := 0
		for _, b := range out {
			total += len(b)
			if len(contacts) >= 24 && len(b) < 12 {
				return false // a small batch despite a large list
			}
		}
		return total == len(contacts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
