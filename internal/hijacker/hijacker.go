// Package hijacker implements manual-hijacker crews following the playbook
// the paper documents: collect phished credentials, log in fast from a
// disciplined IP pool, spend ~3 minutes assessing the account's value
// (mailbox searches for financial terms, significant-folder opens, a
// contact-list view), abandon low-value accounts, exploit valuable ones
// with semi-personalized scams or contact-targeted phishing, and apply
// retention tactics (lockout, recovery-option changes, filters, Reply-To
// doppelgangers, 2-step-verification lockout with crew phones).
//
// §5.5's "ordinary office job" evidence is modeled directly: crew members
// work a tight daily schedule with a synchronized one-hour lunch break and
// weekends off, share tooling (one device fingerprint per crew) and phone
// pools, and work different victims from different IPs in parallel.
package hijacker

import (
	"fmt"
	"net/netip"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
	"manualhijack/internal/scam"
	"manualhijack/internal/simtime"
)

// Language selects the crew's search-term lexicon skew.
type Language string

// Crew languages.
const (
	LangEN Language = "en"
	LangFR Language = "fr"
	LangES Language = "es"
	LangZH Language = "zh"
)

// Tactics is the era-dependent retention-tactic profile (§5.4). The
// 2011→2012 evolution — mass deletion collapsing from 46% to 1.6% of
// lockouts once the provider made deleted content restorable, recovery-
// option changes dropping from 60% to 21% — is expressed by running worlds
// with different profiles.
type Tactics struct {
	// LockoutRate is the probability of changing the password (locking the
	// owner out) after exploitation.
	LockoutRate float64
	// MassDeleteGivenLockout is the probability of wiping mail/contacts
	// when locking out (2011: 0.46; 2012: 0.016).
	MassDeleteGivenLockout float64
	// RecoveryChangeRate is the probability of changing recovery options
	// (2011: 0.60; 2012: 0.21).
	RecoveryChangeRate float64
	// FilterRate installs a divert/forward filter (2012 sample: 0.15).
	FilterRate float64
	// ReplyToRate configures a doppelganger Reply-To (2012 sample: 0.26).
	ReplyToRate float64
	// TwoSVLockoutRate enrolls 2-step verification with a crew phone (the
	// short-lived 2012 tactic behind Figure 12; zero in other eras).
	TwoSVLockoutRate float64
}

// Tactics2011 is the October 2011 profile.
func Tactics2011() Tactics {
	return Tactics{
		LockoutRate:            0.55,
		MassDeleteGivenLockout: 0.46,
		RecoveryChangeRate:     0.60,
		FilterRate:             0.10,
		ReplyToRate:            0.20,
		TwoSVLockoutRate:       0,
	}
}

// Tactics2012 is the November 2012 profile.
func Tactics2012() Tactics {
	return Tactics{
		LockoutRate:            0.55,
		MassDeleteGivenLockout: 0.016,
		RecoveryChangeRate:     0.21,
		FilterRate:             0.15,
		ReplyToRate:            0.26,
		// The paper's phone dataset is 300 numbers against Google-scale
		// hijack volume; the simulated rate is boosted so Figure 12 has
		// statistical power at sim scale (see EXPERIMENTS.md).
		TwoSVLockoutRate: 0.45,
	}
}

// Tactics2014 is the January 2014 profile (the phone tactic abandoned).
func Tactics2014() Tactics {
	t := Tactics2012()
	t.TwoSVLockoutRate = 0
	return t
}

// ManualArchetype tags the manual-hijacking crews this package models —
// the first entry of the playbook registry (internal/playbook).
const ManualArchetype = "manual"

// Config describes one crew.
type Config struct {
	Name     string
	Country  geo.Country
	Language Language
	// Archetype is the ground-truth playbook tag stamped on every login
	// and hijack-lifecycle record the crew emits. DefaultConfig sets it to
	// ManualArchetype; alternative attacker playbooks live in
	// internal/playbook.
	Archetype string
	// Members is how many individuals work the queue in parallel.
	Members int
	// WorkStartUTC/WorkEndUTC bound the working day; LunchUTC is the
	// synchronized one-hour break. WeekendsOff keeps Saturday/Sunday idle.
	WorkStartUTC int
	WorkEndUTC   int
	LunchUTC     int
	WeekendsOff  bool
	// IPPoolSize caps how many fresh addresses the crew's cloaking service
	// hands out per day (addresses are allocated lazily as the day's
	// earlier ones fill up).
	IPPoolSize int
	// MaxAccountsPerIPDay is the self-imposed detection-avoidance cap
	// (§5.1: consistently under 10 distinct accounts per IP per day).
	MaxAccountsPerIPDay int
	// PhonePoolSize bounds the shared phone pool for the 2SV tactic.
	PhonePoolSize int
	Tactics       Tactics
	// ContactPhishing launches phishing campaigns against the victim's
	// contacts during exploitation (drives the 36× contact-hijack rate).
	ContactPhishing bool
	// RecoveryFraudRate is the chance the crew responds to a stale
	// password — a credential that no longer logs in — by filing a
	// fraudulent account-recovery claim and trying to guess the knowledge
	// fallback (§6.3's impostor risk). Zero disables.
	RecoveryFraudRate float64
	// DeviceSpoofing mimics a common consumer browser fingerprint instead
	// of the crew's shared kit — §8.1 notes hijackers have "some
	// additional knowledge of using IP cloaking services and browser
	// plugins". It suppresses the login-risk analyzer's new-device signal.
	DeviceSpoofing bool
	// HarvestLuresPerDay sizes the crew's recurring daily campaign against
	// its pool of harvested contacts. Crews keep re-phishing the contacts
	// of past victims on a daily schedule (§5.5: "the same daily time
	// table, defining when to process the newly gathered password lists"),
	// which sustains the contact-targeting loop past page takedowns. Zero
	// disables the recurring campaigns.
	HarvestLuresPerDay int
}

// DefaultConfig returns a crew template for the given origin.
func DefaultConfig(name string, country geo.Country, lang Language) Config {
	return Config{
		Name: name, Country: country, Language: lang,
		Archetype:           ManualArchetype,
		Members:             4,
		WorkStartUTC:        8,
		WorkEndUTC:          17,
		LunchUTC:            12,
		WeekendsOff:         true,
		IPPoolSize:          40,
		MaxAccountsPerIPDay: 10,
		PhonePoolSize:       30,
		Tactics:             Tactics2012(),
		ContactPhishing:     true,
		HarvestLuresPerDay:  20,
		RecoveryFraudRate:   0.25,
	}
}

// Contact-campaign effectiveness: mail that appears to come from a
// regular contact is treated more leniently by filters and humans
// (Jagatic et al., cited in §4), but the rates stay subcritical so the
// contact-targeting loop amplifies rather than saturates the population.
const (
	contactClickRate  = 0.30
	contactConversion = 0.20
)

// Listener receives hijack lifecycle callbacks (wired to the victim and
// recovery machinery by the world assembler).
type Listener interface {
	// HijackEnded fires when the crew finishes with an account.
	HijackEnded(crew string, acct identity.AccountID, hijackedAt time.Time, lockedOut, exploited bool)
}

// Crew is one hijacker group. It implements phishkit.CredentialSink.
type Crew struct {
	cfg   Config
	clock *simtime.Clock
	log   *logstore.Store
	rng   *randx.Rand

	dir  *identity.Directory
	mail *mail.Service
	auth *auth.Service
	inf  *phishkit.Infrastructure
	plan *geo.IPPlan
	gen  *scam.Generator

	listener Listener

	queue       []phishkit.Credential
	seen        map[identity.AccountID]bool
	exploitMark map[identity.AccountID]bool
	ips         []netip.Addr
	ipDayStart  time.Time
	ipUse       map[netip.Addr]*ipDay
	phones      []geo.Phone
	device      string
	ticking     bool
	terms       *randx.Weighted[string]

	// harvest is the pool of contact addresses gathered from exploited
	// accounts, re-phished daily.
	harvest        []identity.Address
	harvestSet     map[identity.Address]bool
	lastHarvestDay time.Time

	recovery RecoveryFiler

	// Stats counters exposed for calibration and tests.
	Processed     int
	LoggedIn      int
	Exploited     int
	Abandoned     int
	LockedOut     int
	PhoneLocks    int
	FraudAttempts int
	FraudWins     int
}

// RecoveryFiler is the slice of the recovery service crews abuse for
// impostor claims.
type RecoveryFiler interface {
	FileFraudClaim(acct identity.AccountID, onSuccess func(newPassword string))
}

type ipDay struct {
	day      time.Time
	accounts map[identity.AccountID]bool
}

// NewCrew assembles a crew.
func NewCrew(
	cfg Config,
	clock *simtime.Clock,
	log *logstore.Store,
	rng *randx.Rand,
	dir *identity.Directory,
	mailSvc *mail.Service,
	authSvc *auth.Service,
	inf *phishkit.Infrastructure,
	plan *geo.IPPlan,
) *Crew {
	if cfg.Archetype == "" {
		cfg.Archetype = ManualArchetype
	}
	crng := rng.Fork("crew/" + cfg.Name)
	c := &Crew{
		cfg: cfg, clock: clock, log: log, rng: crng,
		dir: dir, mail: mailSvc, auth: authSvc, inf: inf, plan: plan,
		gen:         scam.NewGenerator(crng.Fork("scam")),
		seen:        make(map[identity.AccountID]bool),
		exploitMark: make(map[identity.AccountID]bool),
		ipUse:       make(map[netip.Addr]*ipDay),
		device:      "kit-" + cfg.Name,
		terms:       lexiconFor(cfg.Language),
		harvestSet:  make(map[identity.Address]bool),
	}
	for i := 0; i < cfg.PhonePoolSize; i++ {
		c.phones = append(c.phones, geo.NewPhone(crng, cfg.Country))
	}
	return c
}

// SetListener installs the lifecycle callback.
func (c *Crew) SetListener(l Listener) { c.listener = l }

// SetRecovery gives the crew access to the recovery service for impostor
// claims (wired by the world assembler; optional).
func (c *Crew) SetRecovery(r RecoveryFiler) { c.recovery = r }

// Name returns the crew name.
func (c *Crew) Name() string { return c.cfg.Name }

// Country returns the crew's origin.
func (c *Crew) Country() geo.Country { return c.cfg.Country }

// Archetype returns the crew's playbook tag (playbook.Actor contract).
func (c *Crew) Archetype() string { return c.cfg.Archetype }

// ActorStats reports the crew's headline counters (playbook stats
// contract, shared with the scaffolded archetypes).
func (c *Crew) ActorStats() (processed, loggedIn, exploited int) {
	return c.Processed, c.LoggedIn, c.Exploited
}

// QueueLen returns the pending-credential backlog.
func (c *Crew) QueueLen() int { return len(c.queue) }

// CredentialCaptured implements phishkit.CredentialSink: freshly phished
// credentials enter the crew's work queue.
func (c *Crew) CredentialCaptured(cred phishkit.Credential) {
	if c.seen[cred.Account] {
		return
	}
	c.seen[cred.Account] = true
	c.queue = append(c.queue, cred)
}

// Start schedules the crew's work loop until end. Members poll the queue
// every few minutes during working hours, which — combined with the
// lunch break and weekends — produces the paper's response-time curve
// (Figure 7: 20% of decoys accessed within 30 minutes, 50% within 7 h).
func (c *Crew) Start(end time.Time) {
	if c.ticking {
		panic("hijacker: crew started twice")
	}
	c.ticking = true
	c.clock.Every(7*time.Minute, end, c.tick)
}

// working reports whether the crew is at its desks.
func (c *Crew) working(t time.Time) bool {
	if c.cfg.WeekendsOff {
		switch t.Weekday() {
		case time.Saturday, time.Sunday:
			return false
		}
	}
	h := t.Hour()
	if h < c.cfg.WorkStartUTC || h >= c.cfg.WorkEndUTC {
		return false
	}
	return h != c.cfg.LunchUTC
}

// tick processes up to Members credentials and runs the daily
// harvested-contact campaign.
func (c *Crew) tick() {
	now := c.clock.Now()
	if !c.working(now) {
		return
	}
	c.dailyHarvestCampaign(now)
	for i := 0; i < c.cfg.Members && len(c.queue) > 0; i++ {
		cred := c.queue[0]
		if !c.process(cred) {
			return // IP pool exhausted for today; resume tomorrow
		}
		c.queue = c.queue[1:]
	}
}

// dailyHarvestCampaign re-phishes a sample of the harvested contact pool
// once per working day.
func (c *Crew) dailyHarvestCampaign(now time.Time) {
	if c.cfg.HarvestLuresPerDay <= 0 || len(c.harvest) == 0 {
		return
	}
	day := dayOf(now)
	if c.lastHarvestDay.Equal(day) {
		return
	}
	c.lastHarvestDay = day
	camp := phishkit.DefaultCampaign(event.TargetMail, c.cfg.HarvestLuresPerDay)
	camp.Victims = randx.Sample(c.rng, c.harvest, c.cfg.HarvestLuresPerDay)
	camp.Sink = c
	camp.ClickRate = contactClickRate
	camp.Conversion = contactConversion
	camp.ClickDelayMean = 20 * time.Hour
	c.inf.Launch(camp)
}

// pickIP returns an IP whose distinct-account count today is under the
// discipline cap. The crew fills one cloaking-service address fully
// before requesting the next (that keeps the per-IP daily average just
// under the cap, as in Figure 8), allocates fresh addresses lazily up to
// IPPoolSize per day, and stops for the day when even that is exhausted —
// the cap is the discipline, not a suggestion.
func (c *Crew) pickIP(acct identity.AccountID) (netip.Addr, bool) {
	day := dayOf(c.clock.Now())
	if !c.ipDayStart.Equal(day) {
		c.ipDayStart = day
		c.ips = c.ips[:0]
	}
	for _, ip := range c.ips {
		u := c.ipUse[ip]
		if u.accounts[acct] || len(u.accounts) < c.cfg.MaxAccountsPerIPDay {
			u.accounts[acct] = true
			return ip, true
		}
	}
	if len(c.ips) >= c.cfg.IPPoolSize {
		return netip.Addr{}, false
	}
	ip := c.plan.Addr(c.rng, c.cfg.Country)
	c.ips = append(c.ips, ip)
	c.ipUse[ip] = &ipDay{day: day, accounts: map[identity.AccountID]bool{acct: true}}
	return ip, true
}

func (c *Crew) principal() challenge.Principal {
	return challenge.Principal{Phones: c.phones, KnowledgeSkill: 0.2}
}

// loginDevice is the fingerprint presented at login: the crew's shared
// kit, or — for device-spoofing crews — the victim's own usual
// fingerprint, defeating the new-device signal.
func (c *Crew) loginDevice(acct identity.AccountID) string {
	if c.cfg.DeviceSpoofing {
		return identity.DeviceFingerprint(acct)
	}
	return c.device
}

// process works one credential end to end. It reports false when no
// disciplined IP is available (the credential stays queued).
func (c *Crew) process(cred phishkit.Credential) bool {
	ip, ok := c.pickIP(cred.Account)
	if !ok {
		return false
	}
	c.Processed++
	device := c.loginDevice(cred.Account)
	res := c.auth.Login(auth.LoginReq{
		Account: cred.Account, Password: cred.Password, IP: ip,
		DeviceID: device, Principal: c.principal(), Actor: event.ActorHijacker,
		Archetype: c.cfg.Archetype,
	})
	if res.Outcome == event.LoginWrongPassword {
		// Retry with a trivial variant; stale passwords stay stale.
		res = c.auth.Login(auth.LoginReq{
			Account: cred.Account, Password: cred.Password + "1", IP: ip,
			DeviceID: device, Principal: c.principal(), Actor: event.ActorHijacker,
			Archetype: c.cfg.Archetype,
		})
	}
	if res.Outcome == event.LoginWrongPassword && c.recovery != nil &&
		c.rng.Bool(c.cfg.RecoveryFraudRate) {
		// The phished password is stale; try the recovery route instead
		// (§6.3: would-be hijackers "may succeed by guessing the answer").
		acct := cred.Account
		c.clock.After(c.rng.DurationBetween(time.Hour, 8*time.Hour), func() {
			c.FraudAttempts++
			c.recovery.FileFraudClaim(acct, func(newPassword string) {
				c.FraudWins++
				// The won account enters the normal work queue.
				c.queue = append(c.queue, phishkit.Credential{
					Account: acct, Addr: c.dir.Get(acct).Addr,
					Password: newPassword, At: c.clock.Now(),
				})
			})
		})
	}
	if res.Outcome != event.LoginSuccess {
		return true
	}
	c.LoggedIn++
	start := c.clock.Now()
	c.log.Append(event.HijackStarted{
		Base: event.Base{Time: start}, Account: cred.Account,
		Crew: c.cfg.Name, Session: res.Session, Archetype: c.cfg.Archetype,
	})
	fromTargeted := false
	if p := c.inf.Page(cred.Page); p != nil && p.Targeted {
		fromTargeted = true
	}
	c.assess(cred.Account, res.Session, start, fromTargeted)
	return true
}

// assess runs the value-assessment phase: a few searches, significant
// folder opens, a contacts view — spread over an Exp(3 min) budget — then
// the exploit/abandon decision (§5.2).
func (c *Crew) assess(acct identity.AccountID, sess event.SessionID, start time.Time, fromTargeted bool) {
	budget := c.rng.ExpDuration(3 * time.Minute)
	if budget < 20*time.Second {
		budget = 20 * time.Second
	}
	searches := 1 + c.rng.Intn(4)
	step := budget / time.Duration(searches+3)

	state := &assessState{acct: acct, sess: sess, start: start, budget: budget, fromTargeted: fromTargeted}
	elapsed := time.Duration(0)
	for i := 0; i < searches; i++ {
		elapsed += step
		c.clock.Schedule(start.Add(elapsed), func() {
			term := c.searchTerm()
			if c.mail.Search(acct, term, sess, event.ActorHijacker) > 0 && isFinanceTerm(term) {
				state.financeHits++
			}
		})
	}
	// Significant folders, with the paper's observed open rates (fixed
	// iteration order: map ranging would consume randomness
	// nondeterministically).
	folderOdds := []struct {
		folder event.Folder
		p      float64
	}{
		{event.FolderStarred, 0.16},
		{event.FolderDrafts, 0.11},
		{event.FolderSent, 0.05},
		{event.FolderTrash, 0.008},
	}
	for _, fo := range folderOdds {
		folder, p := fo.folder, fo.p
		if c.rng.Bool(p) {
			elapsed += step / 2
			f := folder
			c.clock.Schedule(start.Add(elapsed), func() {
				c.mail.OpenFolder(acct, f, sess, event.ActorHijacker)
			})
		}
	}
	// Contact-list review to size the scam/phishing victim pool.
	elapsed += step
	c.clock.Schedule(start.Add(elapsed), func() {
		state.contacts = c.mail.ViewContacts(acct, sess, event.ActorHijacker)
	})
	// Decision point.
	c.clock.Schedule(start.Add(budget), func() { c.decide(state) })
}

type assessState struct {
	acct        identity.AccountID
	sess        event.SessionID
	start       time.Time
	budget      time.Duration
	financeHits int
	contacts    []identity.Address
	// fromTargeted marks victims acquired through the crew's own
	// contact-targeted campaigns. Their contact lists largely coincide
	// with the pool the crew already holds (contact graphs are clustered),
	// so the crew only harvests fresh lists — and launches fresh contact
	// campaigns — for mass-campaign victims.
	fromTargeted bool
}

// decide closes the assessment and either exploits or abandons.
func (c *Crew) decide(st *assessState) {
	var pExploit float64
	switch {
	case st.financeHits > 0 && len(st.contacts) >= 5:
		pExploit = 0.90
	case st.financeHits > 0:
		pExploit = 0.70
	case len(st.contacts) >= 15:
		pExploit = 0.45
	default:
		pExploit = 0.05
	}
	exploited := c.rng.Bool(pExploit) && len(st.contacts) > 0
	c.log.Append(event.HijackAssessed{
		Base: event.Base{Time: c.clock.Now()}, Account: st.acct,
		Crew: c.cfg.Name, Duration: st.budget, Exploited: exploited,
		Archetype: c.cfg.Archetype,
	})
	if !exploited {
		c.Abandoned++
		c.finish(st, false)
		return
	}
	c.Exploited++
	c.exploitMark[st.acct] = true
	c.exploit(st)
}

// exploit runs the 15–20 minute monetization phase (§5.3) followed by
// retention tactics (§5.4). Whatever the account is used for — scams or
// phishing blasts — the crew also phishes the victim's contact list from
// its own infrastructure to source the next victims.
func (c *Crew) exploit(st *assessState) {
	work := c.rng.DurationBetween(15*time.Minute, 20*time.Minute)
	acct := c.dir.Get(st.acct)

	pageID := c.launchContactCampaign(st)
	if c.rng.Bool(0.65) {
		c.sendScams(st, acct, work)
	} else {
		c.sendPhishing(st, acct, work, pageID)
	}
	c.clock.Schedule(c.clock.Now().Add(work), func() { c.retainAndFinish(st) })
}

// sendScams mails the victim's contacts pleas for money. 65% of victims
// see at most five messages, each with many recipients; ~6% of cases are
// customized messages to fewer than ten recipients.
func (c *Crew) sendScams(st *assessState, acct *identity.Account, work time.Duration) {
	customized := c.rng.Bool(0.06)
	var batches [][]identity.Address
	if customized {
		n := 1 + c.rng.Intn(9)
		if n > len(st.contacts) {
			n = len(st.contacts)
		}
		batches = [][]identity.Address{st.contacts[:n]}
	} else {
		msgs := 1 + c.rng.Intn(5)
		if c.rng.Bool(0.35) {
			// The heavier salvo (the other 35% of victims, §5.3): extra
			// rounds to the same contact chunks — the Mugged-in-City
			// scheme needs at least two rounds of mail anyway (§5.4).
			msgs = 6 + c.rng.Intn(6)
		}
		chunks := ChunkContacts(st.contacts, msgs)
		for len(chunks) > 0 && len(batches) < msgs {
			for _, ch := range chunks {
				if len(batches) >= msgs {
					break
				}
				batches = append(batches, ch)
			}
		}
	}
	step := work / time.Duration(len(batches)+1)
	for i, batch := range batches {
		batch := batch
		c.clock.Schedule(c.clock.Now().Add(time.Duration(i+1)*step), func() {
			msg := c.gen.Generate(c.gen.RandomScheme(), scam.Victim{
				Name: string(acct.Addr), Gender: acct.Gender, City: acct.City,
			}, customized)
			c.mail.Send(mail.SendReq{
				FromAcct: st.acct, FromAddr: acct.Addr, Recipients: batch,
				Keywords: msg.Keywords(), Class: event.ClassScam,
				Customized: customized, Session: st.sess, Actor: event.ActorHijacker,
			})
		})
	}
}

// sendPhishing blasts phishing mail from the hijacked account to its
// contacts, pointing at the crew's contact-campaign page. Like the scam
// path, blasts repeat over the contact chunks across several rounds.
func (c *Crew) sendPhishing(st *assessState, acct *identity.Account, work time.Duration, pageID event.PageID) {
	msgs := 3 + c.rng.Intn(5)
	chunks := ChunkContacts(st.contacts, msgs)
	var batches [][]identity.Address
	for len(chunks) > 0 && len(batches) < msgs {
		for _, ch := range chunks {
			if len(batches) >= msgs {
				break
			}
			batches = append(batches, ch)
		}
	}
	step := work / time.Duration(len(batches)+1)
	for i, batch := range batches {
		batch := batch
		c.clock.Schedule(c.clock.Now().Add(time.Duration(i+1)*step), func() {
			c.mail.Send(mail.SendReq{
				FromAcct: st.acct, FromAddr: acct.Addr, Recipients: batch,
				Keywords: []string{"password", "verify", "account"},
				Class:    event.ClassPhish, PageID: pageID,
				Session: st.sess, Actor: event.ActorHijacker,
			})
		})
	}
}

// launchContactCampaign phishes the victim's contacts through crew
// infrastructure — the paper's key acquisition pattern ("hijackers favor
// the use of the victim's contacts to select their next set of phishing
// victims", §5.3, 36× hijack rate among contacts). Two lure waves per
// contact; mail that appears to come from a regular contact gets more
// lenient treatment from filters and humans (so higher click and submit
// rates — Jagatic et al., cited in §4), and converts at the contacts' own
// mail-checking pace. Returns the page ID, or 0 when disabled.
func (c *Crew) launchContactCampaign(st *assessState) event.PageID {
	if !c.cfg.ContactPhishing || len(st.contacts) == 0 || st.fromTargeted {
		return 0
	}
	for _, addr := range st.contacts {
		if !c.harvestSet[addr] {
			c.harvestSet[addr] = true
			c.harvest = append(c.harvest, addr)
		}
	}
	camp := phishkit.DefaultCampaign(event.TargetMail, len(st.contacts))
	camp.Victims = st.contacts
	camp.Sink = c
	camp.ClickRate = contactClickRate
	camp.Conversion = contactConversion
	camp.ClickDelayMean = 20 * time.Hour
	return c.inf.Launch(camp)
}

// retainAndFinish applies retention tactics and closes the hijack.
func (c *Crew) retainAndFinish(st *assessState) {
	t := c.cfg.Tactics
	victim := c.dir.Get(st.acct)
	doppel := makeDoppelganger(c.rng, victim.Addr)

	if c.rng.Bool(t.ReplyToRate) {
		c.mail.SetReplyTo(st.acct, doppel, st.sess, event.ActorHijacker)
	}
	if c.rng.Bool(t.FilterRate) {
		c.mail.CreateFilter(st.acct, mail.Filter{ToTrash: true, ForwardTo: doppel}, st.sess, event.ActorHijacker)
	}

	lockedOut := c.rng.Bool(t.LockoutRate)
	if lockedOut {
		c.LockedOut++
		c.auth.ChangePassword(st.acct, fmt.Sprintf("stolen-%06d", c.rng.Intn(1_000_000)), st.sess, event.ActorHijacker)
		if c.rng.Bool(t.RecoveryChangeRate) {
			c.auth.ChangeRecovery(st.acct, "email", "", doppel, st.sess, event.ActorHijacker)
		}
		if c.rng.Bool(t.MassDeleteGivenLockout) {
			c.mail.MassDelete(st.acct, st.sess, event.ActorHijacker)
		}
		if c.rng.Bool(t.TwoSVLockoutRate) && len(c.phones) > 0 {
			phone := randx.Pick(c.rng, c.phones)
			c.auth.Enroll2SV(st.acct, phone, st.sess, event.ActorHijacker)
			c.PhoneLocks++
		}
	}
	c.finish(st, lockedOut)
}

// finish logs the end of the hijack and informs the listener.
func (c *Crew) finish(st *assessState, lockedOut bool) {
	exploited := c.exploitMark[st.acct]
	delete(c.exploitMark, st.acct)
	c.log.Append(event.HijackEnded{
		Base: event.Base{Time: c.clock.Now()}, Account: st.acct,
		Crew: c.cfg.Name, LockedOut: lockedOut, Archetype: c.cfg.Archetype,
	})
	if c.listener != nil {
		c.listener.HijackEnded(c.cfg.Name, st.acct, st.start, lockedOut, exploited)
	}
}

// searchTerm draws a Table 3 search term, skewed by crew language.
func (c *Crew) searchTerm() string {
	return c.terms.Choose(c.rng)
}

// ChunkContacts splits contacts into up to n batches, keeping every batch
// at a "high number of recipients" (at least minBatchRecipients when the
// contact list allows it — §5.3: uncustomized messages go to many
// recipients, and only ~6% of cases involve sub-ten-recipient mail).
// n <= 0 (including config-derived chunk counts from the playbook
// archetypes, which call this with arbitrary settings) is clamped to a
// single batch rather than left to the caller.
func ChunkContacts(contacts []identity.Address, n int) [][]identity.Address {
	const minBatchRecipients = 12
	if len(contacts) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if maxBatches := len(contacts) / minBatchRecipients; n > maxBatches {
		n = maxBatches
	}
	if n < 1 {
		n = 1
	}
	size := (len(contacts) + n - 1) / n
	var out [][]identity.Address
	for i := 0; i < len(contacts); i += size {
		j := i + size
		if j > len(contacts) {
			j = len(contacts)
		}
		out = append(out, contacts[i:j])
	}
	// Merge a small trailing remainder into the previous batch.
	if k := len(out); k > 1 && len(out[k-1]) < minBatchRecipients {
		merged := append(append([]identity.Address{}, out[k-2]...), out[k-1]...)
		out = append(out[:k-2], merged)
	}
	return out
}

func dayOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}
