package hijacker

import (
	"fmt"
	"testing"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

type world struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	mail  *mail.Service
	auth  *auth.Service
	inf   *phishkit.Infrastructure
	plan  *geo.IPPlan
	rng   *randx.Rand
}

// newWorld builds a small world with a permissive login defense so crew
// behavior (not the defense) is under test.
func newWorld(t *testing.T, seed int64, accounts int) *world {
	t.Helper()
	// Start on a Monday 00:00 UTC so work-hour math is predictable.
	start := time.Date(2012, 11, 5, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewClock(start)
	rng := randx.New(seed)
	idCfg := identity.DefaultConfig(start)
	idCfg.N = accounts
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	plan := geo.NewIPPlan(4)
	mailSvc := mail.NewService(dir, clock, log)
	mailSvc.Seed(rng, mail.DefaultSeedConfig())
	cfg := auth.DefaultConfig()
	cfg.ChallengeThreshold = 0.99
	cfg.BlockThreshold = 1.1
	ch := challenge.New(challenge.DefaultConfig(), rng.Fork("challenge"))
	authSvc := auth.NewService(dir, clock, log, nil, ch, auth.Config{
		RiskEnabled: false, NotificationsEnabled: cfg.NotificationsEnabled,
	})
	inf := phishkit.NewInfrastructure(clock, log, dir, plan, rng)
	return &world{clock: clock, log: log, dir: dir, mail: mailSvc, auth: authSvc, inf: inf, plan: plan, rng: rng}
}

func newCrew(w *world, cfg Config) *Crew {
	return NewCrew(cfg, w.clock, w.log, w.rng, w.dir, w.mail, w.auth, w.inf, w.plan)
}

func feed(w *world, c *Crew, accounts ...identity.AccountID) {
	for _, id := range accounts {
		a := w.dir.Get(id)
		c.CredentialCaptured(phishkit.Credential{
			Account: id, Addr: a.Addr, Password: a.Password, At: w.clock.Now(),
		})
	}
}

func TestCrewProcessesDuringWorkHours(t *testing.T) {
	w := newWorld(t, 1, 50)
	cfg := DefaultConfig("ng-crew", geo.Nigeria, LangEN)
	cfg.ContactPhishing = false
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(3 * 24 * time.Hour))
	feed(w, c, 1, 2, 3)

	// Run to 07:00 — before work start: nothing processed.
	w.clock.RunUntil(w.clock.Now().Add(7 * time.Hour))
	if c.Processed != 0 {
		t.Fatalf("processed %d before work hours", c.Processed)
	}
	// Run through the work day.
	w.clock.RunUntil(w.clock.Now().Add(12 * time.Hour))
	if c.Processed != 3 {
		t.Fatalf("processed %d during work day, want 3", c.Processed)
	}
}

func TestCrewIdleOnWeekend(t *testing.T) {
	w := newWorld(t, 2, 20)
	cfg := DefaultConfig("ci-crew", geo.IvoryCoast, LangFR)
	cfg.ContactPhishing = false
	c := newCrew(w, cfg)
	// Jump to Saturday.
	w.clock.RunUntil(w.clock.Now().Add(5 * 24 * time.Hour))
	c.Start(w.clock.Now().Add(4 * 24 * time.Hour))
	feed(w, c, 1, 2)
	// All of Saturday and Sunday: idle.
	w.clock.RunUntil(w.clock.Now().Add(2 * 24 * time.Hour))
	if c.Processed != 0 {
		t.Fatalf("processed %d on the weekend", c.Processed)
	}
	// Monday: work resumes.
	w.clock.RunUntil(w.clock.Now().Add(24 * time.Hour))
	if c.Processed != 2 {
		t.Fatalf("processed %d on Monday, want 2", c.Processed)
	}
}

func TestLunchBreak(t *testing.T) {
	w := newWorld(t, 3, 10)
	cfg := DefaultConfig("x", geo.China, LangZH)
	c := newCrew(w, cfg)
	lunch := time.Date(2012, 11, 5, 12, 30, 0, 0, time.UTC)
	if c.working(lunch) {
		t.Fatal("crew working through lunch")
	}
	if !c.working(lunch.Add(time.Hour)) {
		t.Fatal("crew not back after lunch")
	}
	if c.working(time.Date(2012, 11, 5, 20, 0, 0, 0, time.UTC)) {
		t.Fatal("crew working in the evening")
	}
}

func TestHijackLifecycleEvents(t *testing.T) {
	w := newWorld(t, 4, 100)
	cfg := DefaultConfig("ng-crew", geo.Nigeria, LangEN)
	cfg.ContactPhishing = false
	c := newCrew(w, cfg)
	var ended []identity.AccountID
	c.SetListener(listenerFunc(func(acct identity.AccountID, _ time.Time, _, _ bool) {
		ended = append(ended, acct)
	}))
	c.Start(w.clock.Now().Add(5 * 24 * time.Hour))
	feed(w, c, 1, 2, 3, 4, 5, 6, 7, 8)
	w.clock.RunUntil(w.clock.Now().Add(5 * 24 * time.Hour))

	started := logstore.Select[event.HijackStarted](w.log)
	assessed := logstore.Select[event.HijackAssessed](w.log)
	endedEv := logstore.Select[event.HijackEnded](w.log)
	if len(started) == 0 {
		t.Fatal("no hijacks started")
	}
	if len(started) != len(assessed) || len(started) != len(endedEv) {
		t.Fatalf("lifecycle mismatch: started=%d assessed=%d ended=%d",
			len(started), len(assessed), len(endedEv))
	}
	if len(ended) != len(endedEv) {
		t.Fatalf("listener calls = %d, events = %d", len(ended), len(endedEv))
	}
	// Assessment involves searches and ends before the session closes.
	if len(logstore.Select[event.Search](w.log)) == 0 {
		t.Fatal("no assessment searches logged")
	}
}

func TestAssessmentDurationAveragesThreeMinutes(t *testing.T) {
	w := newWorld(t, 5, 400)
	cfg := DefaultConfig("crew", geo.China, LangZH)
	cfg.ContactPhishing = false
	cfg.Members = 10
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(20 * 24 * time.Hour))
	ids := make([]identity.AccountID, 300)
	for i := range ids {
		ids[i] = identity.AccountID(i + 1)
	}
	feed(w, c, ids...)
	w.clock.RunUntil(w.clock.Now().Add(20 * 24 * time.Hour))

	assessed := logstore.Select[event.HijackAssessed](w.log)
	if len(assessed) < 100 {
		t.Fatalf("too few assessments: %d", len(assessed))
	}
	var sum time.Duration
	for _, a := range assessed {
		sum += a.Duration
	}
	mean := sum / time.Duration(len(assessed))
	if mean < 2*time.Minute || mean > 4*time.Minute {
		t.Fatalf("mean assessment = %v, want ~3m", mean)
	}
}

func TestDecisionUsesValue(t *testing.T) {
	w := newWorld(t, 6, 300)
	cfg := DefaultConfig("crew", geo.Malaysia, LangEN)
	cfg.ContactPhishing = false
	cfg.Members = 10
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(30 * 24 * time.Hour))
	ids := make([]identity.AccountID, 300)
	for i := range ids {
		ids[i] = identity.AccountID(i + 1)
	}
	feed(w, c, ids...)
	w.clock.RunUntil(w.clock.Now().Add(30 * 24 * time.Hour))

	// Exploited accounts should skew toward financially valuable ones.
	exploitedValue, abandonedValue := 0, 0
	exploitedN, abandonedN := 0, 0
	for _, a := range logstore.Select[event.HijackAssessed](w.log) {
		v := w.mail.FinancialValue(a.Account)
		if a.Exploited {
			exploitedValue += v
			exploitedN++
		} else {
			abandonedValue += v
			abandonedN++
		}
	}
	if exploitedN == 0 || abandonedN == 0 {
		t.Fatalf("need both outcomes: exploited=%d abandoned=%d", exploitedN, abandonedN)
	}
	if float64(exploitedValue)/float64(exploitedN) <= float64(abandonedValue)/float64(abandonedN) {
		t.Fatal("exploited accounts not more valuable than abandoned ones")
	}
}

func TestIPDiscipline(t *testing.T) {
	w := newWorld(t, 7, 600)
	cfg := DefaultConfig("crew", geo.China, LangZH)
	cfg.ContactPhishing = false
	cfg.Members = 20
	cfg.IPPoolSize = 10
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(10 * 24 * time.Hour))
	ids := make([]identity.AccountID, 400)
	for i := range ids {
		ids[i] = identity.AccountID(i + 1)
	}
	feed(w, c, ids...)
	w.clock.RunUntil(w.clock.Now().Add(10 * 24 * time.Hour))

	// Count distinct accounts per (IP, day) from the login log.
	type key struct {
		ip  string
		day time.Time
	}
	perIPDay := map[key]map[identity.AccountID]bool{}
	for _, l := range logstore.Select[event.Login](w.log) {
		if l.Actor != event.ActorHijacker {
			continue
		}
		k := key{l.IP.String(), dayOf(l.When())}
		if perIPDay[k] == nil {
			perIPDay[k] = map[identity.AccountID]bool{}
		}
		perIPDay[k][l.Account] = true
	}
	if len(perIPDay) == 0 {
		t.Fatal("no hijacker logins")
	}
	total, n := 0, 0
	for _, accts := range perIPDay {
		if len(accts) > 10 {
			t.Fatalf("IP used for %d accounts in one day, cap is 10", len(accts))
		}
		total += len(accts)
		n++
	}
	_ = total / n // mean is asserted in the Figure 8 bench, not here
}

func TestRetentionTacticEvolution(t *testing.T) {
	run := func(tactics Tactics, seed int64) (massDeleteGivenLockout, recoveryGivenLockout float64) {
		w := newWorld(t, seed, 600)
		cfg := DefaultConfig("crew", geo.Nigeria, LangEN)
		cfg.ContactPhishing = false
		cfg.Members = 20
		cfg.Tactics = tactics
		c := newCrew(w, cfg)
		c.Start(w.clock.Now().Add(30 * 24 * time.Hour))
		ids := make([]identity.AccountID, 500)
		for i := range ids {
			ids[i] = identity.AccountID(i + 1)
		}
		feed(w, c, ids...)
		w.clock.RunUntil(w.clock.Now().Add(30 * 24 * time.Hour))

		lockouts := len(logstore.Select[event.PasswordChanged](w.log))
		deletes := len(logstore.Select[event.MassDeletion](w.log))
		recChanges := len(logstore.Select[event.RecoveryChanged](w.log))
		if lockouts == 0 {
			t.Fatal("no lockouts")
		}
		return float64(deletes) / float64(lockouts), float64(recChanges) / float64(lockouts)
	}

	del11, rec11 := run(Tactics2011(), 100)
	del12, rec12 := run(Tactics2012(), 200)
	if del11 < 0.30 || del11 > 0.62 {
		t.Errorf("2011 mass-delete|lockout = %.3f, want ~0.46", del11)
	}
	if del12 > 0.08 {
		t.Errorf("2012 mass-delete|lockout = %.3f, want ~0.016", del12)
	}
	if rec11 <= rec12 {
		t.Errorf("recovery-change rate should drop 2011→2012: %.2f vs %.2f", rec11, rec12)
	}
}

func TestTwoSVLockoutUsesCrewPhones(t *testing.T) {
	w := newWorld(t, 8, 400)
	cfg := DefaultConfig("ci-crew", geo.IvoryCoast, LangFR)
	cfg.ContactPhishing = false
	cfg.Members = 20
	cfg.Tactics.TwoSVLockoutRate = 1.0 // force the tactic
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(20 * 24 * time.Hour))
	ids := make([]identity.AccountID, 300)
	for i := range ids {
		ids[i] = identity.AccountID(i + 1)
	}
	feed(w, c, ids...)
	w.clock.RunUntil(w.clock.Now().Add(20 * 24 * time.Hour))

	enrolls := logstore.Select[event.TwoSVEnrolled](w.log)
	if len(enrolls) == 0 {
		t.Fatal("no 2SV lockouts")
	}
	for _, e := range enrolls {
		if got := geo.PhoneCountry(e.Phone); got != geo.IvoryCoast {
			t.Fatalf("2SV phone from %s, want CI", got)
		}
	}
	if c.PhoneLocks != len(enrolls) {
		t.Fatalf("counter %d != events %d", c.PhoneLocks, len(enrolls))
	}
}

func TestScamAndPhishSendsFromAccount(t *testing.T) {
	w := newWorld(t, 9, 500)
	cfg := DefaultConfig("crew", geo.Nigeria, LangEN)
	cfg.ContactPhishing = false
	cfg.Members = 20
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(30 * 24 * time.Hour))
	ids := make([]identity.AccountID, 400)
	for i := range ids {
		ids[i] = identity.AccountID(i + 1)
	}
	feed(w, c, ids...)
	w.clock.RunUntil(w.clock.Now().Add(30 * 24 * time.Hour))

	scams, phish := 0, 0
	for _, m := range logstore.Select[event.MessageSent](w.log) {
		if m.Actor != event.ActorHijacker {
			continue
		}
		switch m.Class {
		case event.ClassScam:
			scams++
		case event.ClassPhish:
			phish++
		}
	}
	if scams == 0 || phish == 0 {
		t.Fatalf("scams=%d phish=%d, want both", scams, phish)
	}
	// The scam/phish split leans scam (§5.3: 65%/35% of messages from
	// hijacked accounts).
	if scams <= phish {
		t.Fatalf("scams (%d) should outnumber phish (%d)", scams, phish)
	}
}

func TestDuplicateCredentialsIgnored(t *testing.T) {
	w := newWorld(t, 10, 20)
	c := newCrew(w, DefaultConfig("crew", geo.China, LangZH))
	feed(w, c, 1)
	feed(w, c, 1)
	if c.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1 (dedupe)", c.QueueLen())
	}
}

func TestStalePasswordFailsWithRetry(t *testing.T) {
	w := newWorld(t, 11, 20)
	cfg := DefaultConfig("crew", geo.China, LangZH)
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(2 * 24 * time.Hour))
	a := w.dir.Get(1)
	c.CredentialCaptured(phishkit.Credential{
		Account: 1, Addr: a.Addr, Password: a.Password + "-stale", At: w.clock.Now(),
	})
	w.clock.RunUntil(w.clock.Now().Add(2 * 24 * time.Hour))

	logins := logstore.Select[event.Login](w.log)
	if len(logins) != 2 {
		t.Fatalf("logins = %d, want 2 (original + trivial variant retry)", len(logins))
	}
	for _, l := range logins {
		if l.Outcome != event.LoginWrongPassword {
			t.Fatalf("outcome = %s", l.Outcome)
		}
	}
	if c.LoggedIn != 0 {
		t.Fatal("stale credential logged in")
	}
}

func TestLanguageLexiconSkew(t *testing.T) {
	r := randx.New(12)
	zh := lexiconFor(LangZH)
	es := lexiconFor(LangES)
	zhHits, esHits := 0, 0
	for i := 0; i < 20000; i++ {
		if zh.Choose(r) == "账单" {
			zhHits++
		}
		if es.Choose(r) == "transferencia" {
			esHits++
		}
	}
	if zhHits < 500 {
		t.Fatalf("zh lexicon rarely picks 账单: %d", zhHits)
	}
	if esHits < 1500 {
		t.Fatalf("es lexicon rarely picks transferencia: %d", esHits)
	}
	// English crews should almost never search Chinese terms.
	en := lexiconFor(LangEN)
	enZh := 0
	for i := 0; i < 20000; i++ {
		if en.Choose(r) == "账单" {
			enZh++
		}
	}
	if enZh > 100 {
		t.Fatalf("en lexicon picks 账单 too often: %d", enZh)
	}
}

func TestChunkContacts(t *testing.T) {
	mkContacts := func(n int) []identity.Address {
		cs := make([]identity.Address, n)
		for i := range cs {
			cs[i] = identity.Address(fmt.Sprintf("c%03d@x", i))
		}
		return cs
	}
	cases := []struct {
		name       string
		contacts   int
		n          int
		wantBatch  int // exact batch count; -1 = only invariants
		wantNilOut bool
	}{
		{name: "even split", contacts: 36, n: 3, wantBatch: 3},
		{name: "nil contacts", contacts: 0, n: 3, wantNilOut: true},
		{name: "zero n clamps to one batch", contacts: 10, n: 0, wantBatch: 1},
		{name: "negative n clamps to one batch", contacts: 10, n: -4, wantBatch: 1},
		{name: "n larger than contacts", contacts: 5, n: 100, wantBatch: 1},
		{name: "small list stays whole", contacts: 10, n: 3, wantBatch: 1},
		{name: "trailing remainder merges", contacts: 40, n: 3, wantBatch: -1},
		{name: "large list many chunks", contacts: 500, n: 8, wantBatch: -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cs := mkContacts(tc.contacts)
			got := ChunkContacts(cs, tc.n)
			if tc.wantNilOut {
				if got != nil {
					t.Fatalf("want nil, got %d batches", len(got))
				}
				return
			}
			if tc.wantBatch >= 0 && len(got) != tc.wantBatch {
				t.Fatalf("got %d batches, want %d", len(got), tc.wantBatch)
			}
			// Invariants for every case: nothing lost, nothing
			// duplicated, order preserved, and no undersized batch
			// unless the whole list is small.
			var flat []identity.Address
			for _, b := range got {
				if len(b) == 0 {
					t.Fatal("empty batch emitted")
				}
				if len(got) > 1 && len(b) < 12 {
					t.Fatalf("batch of %d recipients below the high-recipient floor", len(b))
				}
				flat = append(flat, b...)
			}
			if len(flat) != tc.contacts {
				t.Fatalf("chunking changed contact count: %d, want %d", len(flat), tc.contacts)
			}
			for i, addr := range flat {
				if addr != cs[i] {
					t.Fatalf("order broken at %d: %s != %s", i, addr, cs[i])
				}
			}
		})
	}
}

type listenerFunc func(identity.AccountID, time.Time, bool, bool)

func (f listenerFunc) HijackEnded(crew string, a identity.AccountID, t time.Time, l, e bool) {
	f(a, t, l, e)
}

func TestDeviceSpoofingPresentsOwnerFingerprint(t *testing.T) {
	w := newWorld(t, 12, 30)
	cfg := DefaultConfig("spoof-crew", geo.China, LangZH)
	cfg.DeviceSpoofing = true
	cfg.ContactPhishing = false
	c := newCrew(w, cfg)
	c.Start(w.clock.Now().Add(2 * 24 * time.Hour))
	feed(w, c, 1, 2, 3)
	w.clock.RunUntil(w.clock.Now().Add(2 * 24 * time.Hour))

	for _, l := range logstore.Select[event.Login](w.log) {
		if l.Actor != event.ActorHijacker {
			continue
		}
		if want := identity.DeviceFingerprint(l.Account); l.DeviceID != want {
			t.Fatalf("spoofed device = %q, want owner fingerprint %q", l.DeviceID, want)
		}
	}
}
