package hijacker

import (
	"manualhijack/internal/randx"
)

// term is one hijacker mailbox-search term with its base weight, taken
// from Table 3 of the paper (finance ≫ account credentials ≫ content) and
// the language(s) it belongs to.
type term struct {
	text   string
	weight float64
	lang   Language // zero value = common to all languages
}

// table3 encodes the paper's observed search-term frequencies. Finance
// terms dominate (the paper: "searches are overwhelmingly for financial
// data"); the Spanish and Chinese terms tie specific hijacker groups to
// regions, consistent with the attribution analysis (§7).
var table3 = []term{
	// Finance.
	{text: "wire transfer", weight: 14.4},
	{text: "bank transfer", weight: 11.9},
	{text: "transfer", weight: 6.2},
	{text: "bank", weight: 5.2},
	{text: "wire", weight: 4.7},
	{text: "transferencia", weight: 4.6, lang: LangES},
	{text: "investment", weight: 3.4},
	{text: "banco", weight: 3.0, lang: LangES},
	{text: "账单", weight: 1.9, lang: LangZH},
	{text: "statement", weight: 1.5},
	{text: "signature", weight: 1.0},
	// Account credentials (much rarer: "most websites will not send them
	// in clear").
	{text: "password", weight: 0.6},
	{text: "amazon", weight: 0.4},
	{text: "paypal", weight: 0.3},
	{text: "dropbox", weight: 0.1},
	{text: "match", weight: 0.1},
	{text: "ftp", weight: 0.1},
	{text: "facebook", weight: 0.1},
	{text: "skype", weight: 0.1},
	{text: "username", weight: 0.1},
	// Personal content (sold or used for blackmail).
	{text: "jpg", weight: 0.2},
	{text: "mov", weight: 0.2},
	{text: "mp4", weight: 0.2},
	{text: "3gp", weight: 0.1},
	{text: "passport", weight: 0.1},
	{text: "sex", weight: 0.1},
	{text: "filename:(jpg or jpeg or png)", weight: 0.1},
	{text: "is:starred", weight: 0.1},
	{text: "zip", weight: 0.1},
}

// lexiconFor builds the weighted search-term chooser for a crew language:
// common terms keep their Table 3 weight, the crew's own language-specific
// terms are boosted, and other languages' terms are suppressed.
func lexiconFor(lang Language) *randx.Weighted[string] {
	texts := make([]string, 0, len(table3))
	weights := make([]float64, 0, len(table3))
	for _, t := range table3 {
		w := t.weight
		switch {
		case t.lang == "" || t.lang == lang:
			if t.lang == lang && lang != "" && t.lang != "" {
				w *= 4 // a crew leans on its own language's terms
			}
		default:
			w *= 0.05 // foreign-language terms occasionally leak through
		}
		texts = append(texts, t.text)
		weights = append(weights, w)
	}
	return randx.NewWeighted(texts, weights)
}

// FinanceTerms returns the finance-category search terms (used by tests
// and the assessment heuristic).
func FinanceTerms() []string {
	out := []string{}
	for _, t := range table3 {
		if t.weight >= 1.0 {
			out = append(out, t.text)
		}
	}
	return out
}

// isFinanceTerm reports whether a term is in the finance category.
func isFinanceTerm(s string) bool {
	for _, t := range FinanceTerms() {
		if t == s {
			return true
		}
	}
	return false
}
