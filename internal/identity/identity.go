// Package identity models the provider's account population: users, their
// credentials, recovery options, activity status, home geography, and the
// contact graph connecting them.
//
// The paper's unit of study is the account. Recovery-option coverage (who
// has a phone / secondary email / secret question on file) drives the
// recovery-method analysis of §6.3, and the contact graph drives the
// contact-exploitation analysis of §5.3 (victims' contacts are hijacked at
// 36× the base rate because hijackers phish them preferentially).
package identity

import (
	"fmt"
	"strings"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/randx"
)

// AccountID identifies a provider account.
type AccountID int32

// None is the zero AccountID, used when an address is not a provider
// account.
const None AccountID = 0

// Address is an email address (provider or external).
type Address string

// Account is one provider account.
type Account struct {
	ID       AccountID
	Addr     Address
	Password string

	// Recovery options (§6.3). Empty when not on file.
	Phone          geo.Phone
	SecondaryEmail Address
	// SecondaryRecycled marks a secondary email whose upstream provider
	// expired and re-released the address (the paper estimates 7% of
	// secondary emails were recycled as of 2014).
	SecondaryRecycled bool
	// SecondaryTypo marks a mistyped secondary email (bounces, ~5%).
	SecondaryTypo  bool
	SecretQuestion bool

	// HomeCountry is where the owner usually logs in from.
	HomeCountry geo.Country

	// LastActive supports the paper's "active account" definition (accessed
	// within the past 30 days).
	LastActive time.Time

	// Contacts are the accounts (and external addresses) this user emails.
	Contacts []Address

	// Gender and City feed scam semi-personalization (§5.3).
	Gender string
	City   string

	// TwoSV marks accounts with 2-step verification enabled; LockedByPhone
	// records a hijacker-enrolled lockout phone if any (§5.4, Figure 12).
	TwoSV          bool
	TwoSVPhone     geo.Phone
	LockedByPhone  bool
	PasswordSetAt  time.Time
	DisabledByAnti bool // anti-abuse systems disabled the account

	// AppPasswords are application-specific passwords issued for legacy
	// mail clients that cannot do 2-step verification. §8.2 calls them
	// "far from ideal since those passwords can be phished" — they
	// authenticate without the second factor.
	AppPasswords []string
}

// HasAppPassword reports whether pw is one of the account's
// application-specific passwords.
func (a *Account) HasAppPassword(pw string) bool {
	for _, p := range a.AppPasswords {
		if p == pw {
			return true
		}
	}
	return false
}

// Active reports whether the account was accessed within 30 days of now.
func (a *Account) Active(now time.Time) bool {
	return now.Sub(a.LastActive) <= 30*24*time.Hour
}

// Directory is the account database. It is built once per world and then
// mutated only through its methods.
type Directory struct {
	accounts []*Account // index = AccountID-1
	byAddr   map[Address]AccountID
}

// Config controls population generation.
type Config struct {
	// N is the number of provider accounts.
	N int
	// PhoneRate, SecondaryEmailRate, QuestionRate are the fractions of
	// accounts with each recovery option on file. They overlap
	// independently; accounts can have none (→ fallback-only recovery).
	PhoneRate          float64
	SecondaryEmailRate float64
	QuestionRate       float64
	// RecycledRate is the fraction of secondary emails that upstream
	// providers recycled (paper: ~7%); TypoRate is the fraction mistyped
	// (paper: ~5% bounces).
	RecycledRate float64
	TypoRate     float64
	// MeanContacts controls contact-list sizes (heavy-tailed).
	MeanContacts int
	// ExternalContactShare is the fraction of contact-list entries that are
	// addresses outside the provider.
	ExternalContactShare float64
	// HomeCountries weights owners' home geography.
	HomeCountries *randx.Weighted[geo.Country]
	// Start stamps initial LastActive/PasswordSetAt times.
	Start time.Time
}

// DefaultConfig returns the population defaults used across the study.
func DefaultConfig(start time.Time) Config {
	return Config{
		N:                    20000,
		PhoneRate:            0.55,
		SecondaryEmailRate:   0.65,
		QuestionRate:         0.50,
		RecycledRate:         0.07,
		TypoRate:             0.05,
		MeanContacts:         24,
		ExternalContactShare: 0.30,
		HomeCountries: randx.NewWeighted(
			[]geo.Country{geo.US, geo.UK, geo.Germany, geo.France, geo.Brazil,
				geo.India, geo.Spain, geo.Canada, geo.Australia, geo.Japan, geo.Mexico},
			[]float64{30, 10, 8, 8, 8, 12, 6, 6, 4, 4, 4},
		),
		Start: start,
	}
}

var firstNames = []string{
	"alex", "maria", "wei", "sofia", "james", "fatima", "juan", "emma",
	"raj", "chen", "olga", "pierre", "ana", "david", "yuki", "lena",
	"omar", "grace", "ivan", "nina",
}

var cities = []string{
	"London", "Madrid", "Lagos", "Abidjan", "Kuala Lumpur", "Shanghai",
	"New York", "Paris", "Mumbai", "Sao Paulo", "Cape Town", "Caracas",
	"Berlin", "Tokyo", "Toronto", "Sydney", "Mexico City", "Hanoi",
}

// externalDomains approximate the non-provider mail world; weights encode
// the prevalence of each class among phishable addresses. Self-hosted
// .edu-style domains are heavily represented among *successfully lured*
// victims because commodity spam filtering lets roughly 10× more lure mail
// through (Kanich et al., cited in §4.2) — that skew is applied by the
// phishing package, not here.
var externalDomains = []string{
	"state.edu", "uni.edu", "college.edu", "tech.edu",
	"example.com", "corp.com", "mail.net", "web.org",
	"mail.ca", "web.ar", "mail.br", "post.se", "mail.uk", "web.us",
	"mail.fr", "web.it", "mail.cl", "web.in", "mail.es", "web.fi",
	"mail.mx", "web.au", "mail.pl", "web.sg", "mail.de", "web.nl",
}

// ExternalDomains exposes the external-domain universe for the phishing
// victim model.
func ExternalDomains() []string { return append([]string(nil), externalDomains...) }

// ProviderDomain is the provider's mail domain (the Gmail analog).
const ProviderDomain = "pmail.test"

// NewDirectory generates a population.
func NewDirectory(r *randx.Rand, cfg Config) *Directory {
	d := &Directory{
		accounts: make([]*Account, 0, cfg.N),
		byAddr:   make(map[Address]AccountID, cfg.N),
	}
	gen := r.Fork("identity")
	for i := 0; i < cfg.N; i++ {
		id := AccountID(i + 1)
		name := fmt.Sprintf("%s.%d", randx.Pick(gen, firstNames), id)
		addr := Address(name + "@" + ProviderDomain)
		acct := &Account{
			ID:            id,
			Addr:          addr,
			Password:      fmt.Sprintf("pw-%d-%04x", id, gen.Intn(1<<16)),
			HomeCountry:   cfg.HomeCountries.Choose(gen),
			LastActive:    cfg.Start.Add(-gen.ExpDuration(10 * 24 * time.Hour)),
			Gender:        randx.Pick(gen, []string{"f", "m"}),
			City:          randx.Pick(gen, cities),
			PasswordSetAt: cfg.Start,
		}
		if gen.Bool(cfg.PhoneRate) {
			acct.Phone = geo.NewPhone(gen, acct.HomeCountry)
		}
		if gen.Bool(cfg.SecondaryEmailRate) {
			acct.SecondaryEmail = Address(fmt.Sprintf("%s.alt@%s", name, randx.Pick(gen, externalDomains)))
			acct.SecondaryRecycled = gen.Bool(cfg.RecycledRate)
			if !acct.SecondaryRecycled {
				acct.SecondaryTypo = gen.Bool(cfg.TypoRate)
			}
		}
		acct.SecretQuestion = gen.Bool(cfg.QuestionRate)
		d.accounts = append(d.accounts, acct)
		d.byAddr[addr] = id
	}
	d.buildContactGraph(gen, cfg)
	return d
}

// buildContactGraph wires a heavy-tailed, clustered contact graph:
// each account gets an Exp-distributed number of contacts, drawn with
// locality (accounts with nearby IDs are more likely contacts, giving the
// graph community structure so a hijacked account's contacts also know
// each other — the property the §5.3 contact-phishing experiment needs).
func (d *Directory) buildContactGraph(r *randx.Rand, cfg Config) {
	n := len(d.accounts)
	if n == 0 {
		return
	}
	for i, acct := range d.accounts {
		k := 1 + r.Poisson(float64(cfg.MeanContacts))
		seen := map[Address]bool{acct.Addr: true}
		for len(acct.Contacts) < k {
			if r.Bool(cfg.ExternalContactShare) {
				ext := Address(fmt.Sprintf("friend.%d@%s", r.Intn(n*4), randx.Pick(r, externalDomains)))
				if !seen[ext] {
					seen[ext] = true
					acct.Contacts = append(acct.Contacts, ext)
				}
				continue
			}
			// Locality: 90% of provider contacts come from a window around
			// this account's ID, the rest uniformly. Social graphs are
			// highly clustered; the clustering is what keeps hijackers'
			// contact-targeting confined to victim neighborhoods (§5.3).
			var j int
			if r.Bool(0.9) {
				window := 200
				j = i + r.Intn(2*window+1) - window
				j = ((j % n) + n) % n
			} else {
				j = r.Intn(n)
			}
			other := d.accounts[j]
			if !seen[other.Addr] {
				seen[other.Addr] = true
				acct.Contacts = append(acct.Contacts, other.Addr)
			}
		}
	}
}

// Len returns the population size.
func (d *Directory) Len() int { return len(d.accounts) }

// Get returns the account with the given ID, or nil.
func (d *Directory) Get(id AccountID) *Account {
	if id < 1 || int(id) > len(d.accounts) {
		return nil
	}
	return d.accounts[id-1]
}

// Lookup resolves an address to an account ID (None if external).
func (d *Directory) Lookup(addr Address) AccountID { return d.byAddr[addr] }

// All iterates over every account in ID order.
func (d *Directory) All(fn func(*Account)) {
	for _, a := range d.accounts {
		fn(a)
	}
}

// IDs returns all account IDs in order.
func (d *Directory) IDs() []AccountID {
	out := make([]AccountID, len(d.accounts))
	for i := range d.accounts {
		out[i] = AccountID(i + 1)
	}
	return out
}

// DeviceFingerprint is the usual browser fingerprint of an account's
// owner. Victim agents present it on organic logins; device-spoofing
// hijacker crews mimic it to defeat the new-device risk signal.
func DeviceFingerprint(id AccountID) string {
	return "device-" + string(rune('a'+id%26)) + string(rune('0'+id%10))
}

// IsProvider reports whether addr belongs to the provider domain.
func IsProvider(addr Address) bool {
	return strings.HasSuffix(string(addr), "@"+ProviderDomain)
}

// TLD extracts the top-level domain of an address ("edu", "com", ...).
// Returns "" for malformed addresses.
func TLD(addr Address) string {
	s := string(addr)
	at := strings.LastIndexByte(s, '@')
	if at < 0 || at == len(s)-1 {
		return ""
	}
	domain := s[at+1:]
	dot := strings.LastIndexByte(domain, '.')
	if dot < 0 || dot == len(domain)-1 {
		return ""
	}
	return domain[dot+1:]
}
