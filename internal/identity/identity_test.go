package identity

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/randx"
)

var start = time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)

func smallDirectory(t *testing.T, n int, seed int64) *Directory {
	t.Helper()
	cfg := DefaultConfig(start)
	cfg.N = n
	return NewDirectory(randx.New(seed), cfg)
}

func TestPopulationBasics(t *testing.T) {
	d := smallDirectory(t, 500, 1)
	if d.Len() != 500 {
		t.Fatalf("len = %d", d.Len())
	}
	seen := map[Address]bool{}
	d.All(func(a *Account) {
		if a.ID < 1 || int(a.ID) > 500 {
			t.Fatalf("bad id %d", a.ID)
		}
		if seen[a.Addr] {
			t.Fatalf("duplicate address %s", a.Addr)
		}
		seen[a.Addr] = true
		if !IsProvider(a.Addr) {
			t.Fatalf("account address %s not on provider domain", a.Addr)
		}
		if a.Password == "" {
			t.Fatal("empty password")
		}
		if got := d.Lookup(a.Addr); got != a.ID {
			t.Fatalf("Lookup(%s) = %d, want %d", a.Addr, got, a.ID)
		}
	})
}

func TestGetBounds(t *testing.T) {
	d := smallDirectory(t, 10, 2)
	if d.Get(0) != nil || d.Get(11) != nil || d.Get(-5) != nil {
		t.Fatal("out-of-range Get should return nil")
	}
	if d.Get(1) == nil || d.Get(10) == nil {
		t.Fatal("in-range Get returned nil")
	}
}

func TestRecoveryOptionRates(t *testing.T) {
	d := smallDirectory(t, 5000, 3)
	var phones, secondaries, questions, recycled int
	d.All(func(a *Account) {
		if a.Phone != "" {
			phones++
		}
		if a.SecondaryEmail != "" {
			secondaries++
			if a.SecondaryRecycled {
				recycled++
			}
		}
		if a.SecretQuestion {
			questions++
		}
	})
	check := func(name string, got int, total int, want, tol float64) {
		rate := float64(got) / float64(total)
		if rate < want-tol || rate > want+tol {
			t.Errorf("%s rate = %.3f, want %.2f±%.2f", name, rate, want, tol)
		}
	}
	check("phone", phones, 5000, 0.55, 0.03)
	check("secondary", secondaries, 5000, 0.65, 0.03)
	check("question", questions, 5000, 0.50, 0.03)
	check("recycled", recycled, secondaries, 0.07, 0.02)
}

func TestContactGraphShape(t *testing.T) {
	d := smallDirectory(t, 2000, 4)
	totalContacts, external := 0, 0
	d.All(func(a *Account) {
		if len(a.Contacts) == 0 {
			t.Fatalf("account %d has no contacts", a.ID)
		}
		seen := map[Address]bool{}
		for _, c := range a.Contacts {
			if c == a.Addr {
				t.Fatalf("account %d is its own contact", a.ID)
			}
			if seen[c] {
				t.Fatalf("account %d has duplicate contact %s", a.ID, c)
			}
			seen[c] = true
			totalContacts++
			if !IsProvider(c) {
				external++
			}
		}
	})
	mean := float64(totalContacts) / 2000
	if mean < 20 || mean > 30 {
		t.Errorf("mean contacts = %.1f, want ~25", mean)
	}
	extShare := float64(external) / float64(totalContacts)
	if extShare < 0.25 || extShare > 0.35 {
		t.Errorf("external share = %.3f, want ~0.30", extShare)
	}
}

func TestContactLocality(t *testing.T) {
	d := smallDirectory(t, 3000, 5)
	near, far := 0, 0
	d.All(func(a *Account) {
		for _, c := range a.Contacts {
			id := d.Lookup(c)
			if id == None {
				continue
			}
			dist := int(a.ID) - int(id)
			if dist < 0 {
				dist = -dist
			}
			// Account for ring wraparound.
			if wrap := 3000 - dist; wrap < dist {
				dist = wrap
			}
			if dist <= 200 {
				near++
			} else {
				far++
			}
		}
	})
	if near <= far {
		t.Errorf("contact graph lacks locality: near=%d far=%d", near, far)
	}
}

func TestDeterminism(t *testing.T) {
	a := smallDirectory(t, 300, 42)
	b := smallDirectory(t, 300, 42)
	for i := 1; i <= 300; i++ {
		x, y := a.Get(AccountID(i)), b.Get(AccountID(i))
		if x.Addr != y.Addr || x.Password != y.Password || x.Phone != y.Phone ||
			len(x.Contacts) != len(y.Contacts) || x.HomeCountry != y.HomeCountry {
			t.Fatalf("account %d differs across identical seeds", i)
		}
	}
}

func TestActive(t *testing.T) {
	a := &Account{LastActive: start}
	if !a.Active(start.Add(29 * 24 * time.Hour)) {
		t.Fatal("account active 29 days ago should be active")
	}
	if a.Active(start.Add(31 * 24 * time.Hour)) {
		t.Fatal("account active 31 days ago should be inactive")
	}
}

func TestTLD(t *testing.T) {
	cases := map[Address]string{
		"a@x.edu":       "edu",
		"b@sub.dom.com": "com",
		"c@web.ar":      "ar",
		"noat":          "",
		"trailing@":     "",
		"dot@domain.":   "",
		"x@nodot":       "",
		"a@b@c.org":     "org",
	}
	for addr, want := range cases {
		if got := TLD(addr); got != want {
			t.Errorf("TLD(%q) = %q, want %q", addr, got, want)
		}
	}
}

func TestIsProvider(t *testing.T) {
	if !IsProvider("x@" + ProviderDomain) {
		t.Fatal("provider address not recognized")
	}
	if IsProvider("x@gmail.com") {
		t.Fatal("external address recognized as provider")
	}
}

func TestHomeCountriesRegistered(t *testing.T) {
	d := smallDirectory(t, 1000, 6)
	d.All(func(a *Account) {
		if geo.PhoneCode(a.HomeCountry) == "" {
			t.Fatalf("account %d home country %s not in geo registry", a.ID, a.HomeCountry)
		}
	})
}

// Property: TLD never returns a string containing '@' or '.', and returns
// "" rather than panicking on arbitrary input.
func TestTLDProperty(t *testing.T) {
	f := func(s string) bool {
		tld := TLD(Address(s))
		return !strings.ContainsAny(tld, "@.")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
