package logstore

import (
	"bytes"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

// benchStore interleaves 28 kinds' worth of traffic shape: mostly logins
// and page hits, with a thin stream of the rarer analysis targets. The
// microbenchmarks select a rare kind (MoneyWired, ~1% of records) — the
// regime where the kind index pays: an indexed select visits only the
// matches while a scan visits everything.
func benchStore(n int) *Store {
	s := New()
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		switch {
		case i%100 == 0:
			s.Append(event.MoneyWired{Base: event.Base{Time: at}, VictimAccount: 1, Amount: 50})
		case i%5 == 0:
			s.Append(event.PageHit{Base: event.Base{Time: at}, Page: event.PageID(i % 40), Method: "GET"})
		default:
			s.Append(login(at, identity.AccountID(i%97+1), event.ActorOwner))
		}
	}
	return s
}

func BenchmarkSelectScan(b *testing.B) {
	s := benchStore(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Select[event.MoneyWired](s); len(got) != 2000 {
			b.Fatalf("selected %d", len(got))
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	s := benchStore(200000)
	s.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Select[event.MoneyWired](s); len(got) != 2000 {
			b.Fatalf("selected %d", len(got))
		}
	}
}

func BenchmarkBetweenScan(b *testing.B) {
	s := benchStore(200000)
	from, to := t0.Add(1000*time.Second), t0.Add(2000*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Between(from, to); len(got) == 0 {
			b.Fatal("empty window")
		}
	}
}

func BenchmarkBetweenIndexed(b *testing.B) {
	s := benchStore(200000)
	s.Seal()
	from, to := t0.Add(1000*time.Second), t0.Add(2000*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Between(from, to); len(got) == 0 {
			b.Fatal("empty window")
		}
	}
}

// ndjsonDump renders a ≥200k-record dump once; the decode benchmarks
// re-read it per iteration. JSON unmarshal is the ingest CPU bottleneck,
// so sharded decode should beat the sequential reader at GOMAXPROCS>1.
var ndjsonDump []byte

func ndjsonFixture(b *testing.B) []byte {
	b.Helper()
	if ndjsonDump == nil {
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, benchStore(200000)); err != nil {
			b.Fatal(err)
		}
		ndjsonDump = buf.Bytes()
	}
	return ndjsonDump
}

func benchReadNDJSON(b *testing.B, shards int) {
	dump := ndjsonFixture(b)
	b.SetBytes(int64(len(dump)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := ReadNDJSONWith(bytes.NewReader(dump), ReadOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != 200000 || !s.Sealed() {
			b.Fatalf("decoded %d records, sealed=%v", s.Len(), s.Sealed())
		}
	}
}

func BenchmarkReadNDJSONSequential(b *testing.B) { benchReadNDJSON(b, 1) }
func BenchmarkReadNDJSONParallel(b *testing.B)   { benchReadNDJSON(b, 0) }

func BenchmarkKindCountsScan(b *testing.B) {
	s := benchStore(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.KindCounts(); len(got) != 3 {
			b.Fatalf("kinds = %d", len(got))
		}
	}
}

func BenchmarkKindCountsIndexed(b *testing.B) {
	s := benchStore(200000)
	s.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.KindCounts(); len(got) != 3 {
			b.Fatalf("kinds = %d", len(got))
		}
	}
}

// BenchmarkAppend measures the simulation-side write path: one op is one
// Append into a growing store (a fresh store every 8k records, so slice
// growth is part of the amortized cost, as it is for a live world).
func BenchmarkAppend(b *testing.B) {
	const cycle = 8192
	evs := make([]event.Event, cycle)
	for i := range evs {
		evs[i] = login(t0.Add(time.Duration(i)*time.Millisecond), identity.AccountID(i%97+1), event.ActorOwner)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s *Store
	for i := 0; i < b.N; i++ {
		j := i % cycle
		if j == 0 {
			s = New()
		}
		s.Append(evs[j])
	}
	_ = s
}

// BenchmarkSeal measures the freeze step World.Run pays once per world:
// building the per-kind partition index over a 200k-record log.
func BenchmarkSeal(b *testing.B) {
	base := benchStore(200000).snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &Store{events: base}
		s.Seal()
	}
}

// BenchmarkAppendReserved is the steady-state write path of a world that
// pre-sized its store from the config's scale hints: no growth copies, no
// per-record allocation at all.
func BenchmarkAppendReserved(b *testing.B) {
	const cycle = 8192
	evs := make([]event.Event, cycle)
	for i := range evs {
		evs[i] = login(t0.Add(time.Duration(i)*time.Millisecond), identity.AccountID(i%97+1), event.ActorOwner)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s *Store
	for i := 0; i < b.N; i++ {
		j := i % cycle
		if j == 0 {
			s = New()
			s.Reserve(cycle)
		}
		s.Append(evs[j])
	}
	_ = s
}
