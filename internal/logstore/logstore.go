// Package logstore is the append-only event log the simulated services
// write to and the measurement pipeline reads from.
//
// The paper notes that its 14 datasets were aggregated from system logs
// "via map-reduce computation" and that, for privacy and storage reasons,
// many authentication-related logs are sanitized or erased within a short
// time window. Both properties are modeled here: MapReduce provides a
// deterministic parallel aggregation framework, and Retention applies
// kind-scoped erasure windows.
//
// # Store lifecycle: single-writer build, sealed concurrent reads
//
// A store has exactly two phases, and the synchronization contract differs
// between them:
//
//   - Build phase. The store is owned by a single goroutine — the world's
//     simulation loop, which is sequential by construction. Appends (and
//     any interleaved reads or Sanitize calls) must all come from that
//     owner; nothing is locked on this path, which is what makes Append a
//     plain bounds-check-and-store.
//   - Sealed phase. Seal freezes the log, builds a per-kind partition
//     index, and publishes the frozen state with an atomic release-store.
//     From then on any number of goroutines may read concurrently —
//     Select/SelectWhere touch only the matching kind partition, Between
//     binary-searches the time-ordered log, and KindCounts answers from
//     the index without visiting records. Observing Sealed() == true is
//     the cross-goroutine handoff: it happens-after everything the writer
//     did.
//
// Misuse that is cheap to detect panics: appending to a sealed store, and
// out-of-order appends. Cross-goroutine reads of an unsealed store cannot
// be detected cheaply and are simply illegal — the race detector will
// flag them (TestSealPublishHandoff pins the supported pattern).
//
// Sealing is what makes the study's analysis fan-out cheap: dozens of
// concurrent read-only analyses over the same sealed store, each
// proportional to the records it actually uses.
package logstore

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manualhijack/internal/event"
)

// Store is an append-only event log. Appends must be time-ordered (the
// simulation clock guarantees this) and single-goroutine; reads may happen
// concurrently only after Seal. See the package comment for the full
// two-phase contract.
type Store struct {
	// Build-phase state, owned by the writer goroutine until Seal.
	events []event.Event
	// last is the most recent append's timestamp, cached so the
	// time-order check costs one When() call per record instead of
	// re-extracting the predecessor's.
	last time.Time
	// tap, when set, observes every accepted append synchronously on the
	// writer goroutine. Build-phase state like events: it is never touched
	// after Seal, because sealed stores reject appends.
	tap func(event.Event)

	// sealed is the phase switch: Seal's release-store publishes events
	// and byKind to readers that load-acquire it.
	sealed atomic.Bool
	// byKind is the per-kind partition index built by Seal, each
	// partition preserving log order. All partitions share one backing
	// array, allocated exactly once at its final size. Nil on a
	// segmented store, whose reads stream from disk instead.
	byKind map[event.Kind][]event.Event

	// spill, when non-nil, puts the store in segmented spill-to-disk
	// mode (see segment.go): events holds only the active segment, and
	// sealed reads stream spilled segments through a bounded cache.
	spill *spillState
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Reserve grows the record slice to hold at least n records without
// further allocation. Worlds that can estimate their event volume call it
// once at assembly, so steady-state appends never trigger a growth copy.
// Reserve follows the build-phase contract: writer goroutine only.
//
// A spilling store caps the reservation at one segment's capacity: the
// whole point of spill mode is that the in-RAM slice never outgrows a
// segment, so a whole-world estimate would defeat the memory bound.
func (s *Store) Reserve(n int) {
	if sp := s.spill; sp != nil && n > sp.cfg.SegmentRecords {
		n = sp.cfg.SegmentRecords
	}
	if n <= cap(s.events) {
		return
	}
	grown := make([]event.Event, len(s.events), n)
	copy(grown, s.events)
	s.events = grown
}

// Append adds a record. Records must arrive in non-decreasing time order;
// out-of-order appends panic because they indicate a simulation bug that
// would silently corrupt every time-windowed analysis. Appending to a
// sealed store panics for the same reason: the analysis phase relies on
// the log being frozen. Append is the single-writer hot path — no lock is
// taken; see the package comment.
func (s *Store) Append(e event.Event) {
	if s.sealed.Load() {
		panic("logstore: append to sealed store: " + string(e.EventKind()))
	}
	when := e.When()
	if when.Before(s.last) {
		panic("logstore: out-of-order append: " + string(e.EventKind()) +
			" at " + when.String() + " after " + s.last.String())
	}
	s.last = when
	s.events = append(s.events, e)
	if s.tap != nil {
		s.tap(e)
	}
	if sp := s.spill; sp != nil {
		// Spill failures poison the log (a segment gap would corrupt
		// every analysis), so they surface like the other invariant
		// violations on this path — at the next append after a writer
		// reports, not segments later.
		if sp.failed.Load() {
			panic("logstore: spill: " + sp.firstErr().Error())
		}
		if sp.shouldSeal(len(s.events)) {
			if err := s.spillActive(); err != nil {
				panic("logstore: spill: " + err.Error())
			}
		}
	}
}

// SetTap registers fn to observe every subsequent Append, synchronously on
// the writer goroutine, after the record is stored — the live feed for the
// streaming analyses. The tap rides the build phase and does not alter the
// two-phase contract: it sees exactly the records that pass Append's order
// and seal checks, and never fires after Seal (sealed stores reject
// appends). A nil fn removes the tap. Setting a non-nil tap on a sealed
// store panics, since nothing could ever fire it.
func (s *Store) SetTap(fn func(event.Event)) {
	if fn != nil && s.sealed.Load() {
		panic("logstore: SetTap on sealed store")
	}
	s.tap = fn
}

// Seal freezes the store, builds the kind index, and publishes both to
// concurrent readers. Further appends panic; reads become index-backed
// and safe to run from any goroutine. Sealing an already-sealed store is
// a no-op. World.Run seals its log when the simulation window ends.
func (s *Store) Seal() {
	if s.sealed.Load() {
		return
	}
	if s.spill != nil {
		// Segmented path: flush the final partial segment and write the
		// manifest instead of building an in-RAM kind index — the
		// per-segment kind tallies play that role.
		if err := s.finishSpill(); err != nil {
			panic("logstore: spill: " + err.Error())
		}
	} else {
		s.rebuildIndex()
	}
	s.sealed.Store(true)
}

// Sealed reports whether the store has been frozen. A true result is an
// acquire-load: it orders everything the sealing goroutine wrote before
// the reader's subsequent reads.
func (s *Store) Sealed() bool {
	return s.sealed.Load()
}

// rebuildIndex recomputes the per-kind partitions from the event slice in
// two passes: count per kind, then carve exact-size partitions out of one
// shared backing array. Appends are time-ordered, so filtering by kind
// preserves order within each partition. The three-index sub-slices make
// partition overflow impossible by construction (an append past a
// partition's cap would allocate away from the backing array rather than
// clobber its neighbor).
func (s *Store) rebuildIndex() {
	counts := make(map[event.Kind]int, 32)
	for _, e := range s.events {
		counts[e.EventKind()]++
	}
	backing := make([]event.Event, len(s.events))
	idx := make(map[event.Kind][]event.Event, len(counts))
	off := 0
	for k, n := range counts {
		idx[k] = backing[off : off : off+n]
		off += n
	}
	for _, e := range s.events {
		k := e.EventKind()
		idx[k] = append(idx[k], e)
	}
	s.byKind = idx
}

// Len returns the number of records, spilled segments included.
func (s *Store) Len() int {
	if sp := s.spill; sp != nil {
		return sp.spilled + len(s.events)
	}
	return len(s.events)
}

// Scan calls fn for every record in order. On a segmented store the
// spilled segments stream through the cache in time order (with the next
// segment prefetched), so the whole log is visited without ever being
// resident at once.
func (s *Store) Scan(fn func(event.Event)) {
	if sp := s.spill; sp != nil {
		if !s.sealed.Load() {
			// Records before the active segment are already on disk; a
			// build-phase scan would silently see a suffix of the log.
			panic("logstore: Scan on a spilling store before Seal")
		}
		sp.scan(fn)
		return
	}
	for _, e := range s.events {
		fn(e)
	}
}

// ScanSegments calls fn once per storage unit, in log order, with the
// unit's index and decoded records — segments for a segmented store
// (decode-ahead applies, like Scan), or the whole log as unit 0 for an
// in-RAM store. Callers must treat the slice as read-only and not retain
// it past the callback: a segmented store recycles it through the cache.
// This is the hook for per-segment parallel reduction — fold each
// delivered unit into a shard, merge shards in unit order.
func (s *Store) ScanSegments(fn func(seg int, events []event.Event)) {
	if sp := s.spill; sp != nil {
		if !s.sealed.Load() {
			panic("logstore: ScanSegments on a spilling store before Seal")
		}
		sp.scanSegments(fn)
		return
	}
	fn(0, s.events)
}

// snapshot returns the current record slice. Callers must treat it as
// read-only. Segmented stores have no whole-log slice to hand out.
func (s *Store) snapshot() []event.Event {
	if s.spill != nil {
		panic("logstore: snapshot of a segmented store")
	}
	return s.events
}

// kindPartition returns the sealed index partition for k. ok is false on
// an unsealed store, where callers must fall back to scanning.
func (s *Store) kindPartition(k event.Kind) (part []event.Event, ok bool) {
	if !s.sealed.Load() {
		return nil, false
	}
	return s.byKind[k], true
}

// Select returns every record of concrete type T, in order. On a sealed
// store only the matching kind partition is visited.
func Select[T event.Event](s *Store) []T {
	var out []T
	forEachOfType(s, func(t T) { out = append(out, t) })
	return out
}

// SelectWhere returns every record of type T matching pred, in order.
func SelectWhere[T event.Event](s *Store, pred func(T) bool) []T {
	var out []T
	forEachOfType(s, func(t T) {
		if pred(t) {
			out = append(out, t)
		}
	})
	return out
}

// forEachOfType visits every record of concrete type T in log order,
// routing through the kind index when the store is sealed and T is a
// registered record type.
func forEachOfType[T event.Event](s *Store, fn func(T)) {
	if k, ok := event.KindFor[T](); ok {
		if s.Segmented() {
			// Per-segment kind tallies replace the in-RAM index: segments
			// holding none of k are skipped without touching disk.
			s.spill.scanKind(k, func(e event.Event) {
				if t, ok := e.(T); ok {
					fn(t)
				}
			})
			return
		}
		if part, sealed := s.kindPartition(k); sealed {
			for _, e := range part {
				if t, ok := e.(T); ok {
					fn(t)
				}
			}
			return
		}
	}
	s.Scan(func(e event.Event) {
		if t, ok := e.(T); ok {
			fn(t)
		}
	})
}

// Between returns records with from <= When < to, preserving order. On a
// sealed store the window is located by binary search and the returned
// slice aliases the frozen log; callers must treat it as read-only.
func (s *Store) Between(from, to time.Time) []event.Event {
	if s.Segmented() {
		return s.spill.between(from, to)
	}
	events := s.events
	if s.sealed.Load() {
		lo := sort.Search(len(events), func(i int) bool { return !events[i].When().Before(from) })
		hi := sort.Search(len(events), func(i int) bool { return !events[i].When().Before(to) })
		if lo >= hi {
			return nil
		}
		// Full-cap slice so an appending caller cannot clobber the log.
		return events[lo:hi:hi]
	}
	var out []event.Event
	for _, e := range events {
		w := e.When()
		if !w.Before(from) && w.Before(to) {
			out = append(out, e)
		}
	}
	return out
}

// Retention is a kind-scoped erasure policy: records of Kinds older than
// Window (relative to "now") are erased. A nil Kinds slice applies to all
// kinds.
type Retention struct {
	Kinds  []event.Kind
	Window time.Duration
}

// Sanitize erases records covered by the policy that are older than
// now-policy.Window. It returns the number of erased records. This models
// the short retention of authentication logs that forced the paper's
// authors to draw several datasets over only a few weeks. Sanitize is a
// writer-side operation in both phases: like Append it must come from the
// store's owning goroutine and must not run concurrently with reads. On a
// sealed store it rebuilds the kind index so partitions never serve
// erased records.
func (s *Store) Sanitize(now time.Time, policy Retention) int {
	if s.spill != nil {
		// Spilled segments are immutable files; rewriting them to erase
		// records is not supported. Worlds with a retention policy must
		// stay in-RAM (Config validates this up front).
		panic("logstore: Sanitize is incompatible with spill-to-disk segments")
	}
	cutoff := now.Add(-policy.Window)
	// Build the kind set once instead of rescanning policy.Kinds per record.
	var kinds map[event.Kind]bool
	if policy.Kinds != nil {
		kinds = make(map[event.Kind]bool, len(policy.Kinds))
		for _, k := range policy.Kinds {
			kinds[k] = true
		}
	}
	kept := s.events[:0]
	erased := 0
	for _, e := range s.events {
		if e.When().Before(cutoff) && (kinds == nil || kinds[e.EventKind()]) {
			erased++
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so erased records are actually unreachable.
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = kept
	if s.sealed.Load() && erased > 0 {
		s.rebuildIndex()
	}
	return erased
}

// KV is one key/value pair emitted by a mapper.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// MapReduce runs mapper over every record in parallel shards, groups the
// emitted pairs by key, and reduces each key's values. Despite the
// parallel map phase, the result is deterministic: values reach the
// reducer in original log order.
func MapReduce[K comparable, V any, R any](
	s *Store,
	mapper func(event.Event) []KV[K, V],
	reducer func(K, []V) R,
) map[K]R {
	if s.Segmented() {
		// Stream segments in log order on one goroutine: grouping still
		// sees values in original order, so results are byte-identical
		// to the sharded in-RAM path.
		groups := make(map[K][]V)
		s.Scan(func(e event.Event) {
			for _, kv := range mapper(e) {
				groups[kv.Key] = append(groups[kv.Key], kv.Val)
			}
		})
		result := make(map[K]R, len(groups))
		for k, vs := range groups {
			result[k] = reducer(k, vs)
		}
		return result
	}
	events := s.snapshot()
	shards := runtime.GOMAXPROCS(0)
	if shards > len(events) {
		shards = len(events)
	}
	if shards < 1 {
		shards = 1
	}

	type indexed struct {
		idx int
		kv  KV[K, V]
	}
	outs := make([][]indexed, shards)
	var wg sync.WaitGroup
	chunk := (len(events) + shards - 1) / shards
	for sh := 0; sh < shards; sh++ {
		lo := sh * chunk
		hi := lo + chunk
		if hi > len(events) {
			hi = len(events)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			var local []indexed
			for i := lo; i < hi; i++ {
				for _, kv := range mapper(events[i]) {
					local = append(local, indexed{idx: i, kv: kv})
				}
			}
			outs[sh] = local
		}(sh, lo, hi)
	}
	wg.Wait()

	// Group by key. Shards are already internally ordered and cover
	// disjoint ascending index ranges, so appending shard-by-shard in
	// order preserves global log order per key.
	groups := make(map[K][]V)
	for _, shard := range outs {
		for _, iv := range shard {
			groups[iv.kv.Key] = append(groups[iv.kv.Key], iv.kv.Val)
		}
	}
	result := make(map[K]R, len(groups))
	for k, vs := range groups {
		result[k] = reducer(k, vs)
	}
	return result
}

// CountBy is a MapReduce convenience that counts records by a key function
// (key extraction returning ok=false skips the record).
func CountBy[K comparable](s *Store, key func(event.Event) (K, bool)) map[K]int {
	return MapReduce(s,
		func(e event.Event) []KV[K, struct{}] {
			if k, ok := key(e); ok {
				return []KV[K, struct{}]{{Key: k}}
			}
			return nil
		},
		func(_ K, vs []struct{}) int { return len(vs) },
	)
}

// KindCounts tallies records by kind (an aggregate useful for log-volume
// sanity checks and the hijacksim binary). A sealed store answers from
// the kind index in O(kinds); an unsealed one scans.
func (s *Store) KindCounts() map[event.Kind]int {
	if sp := s.spill; sp != nil {
		// No disk reads in either phase. Sealed stores answer from the
		// per-segment manifest tallies; a still-building store sums the
		// running tally of everything handed to the writer pool (which
		// may not have finished writing) plus the active segment.
		// Build-phase calls follow the single-writer contract.
		out := make(map[event.Kind]int, 32)
		if sp.finished {
			for _, seg := range sp.segs {
				for k, n := range seg.Kinds {
					out[k] += n
				}
			}
		} else {
			for k, n := range sp.buildKinds {
				out[k] += n
			}
		}
		for _, e := range s.events {
			out[e.EventKind()]++
		}
		return out
	}
	if s.sealed.Load() {
		out := make(map[event.Kind]int, len(s.byKind))
		for k, part := range s.byKind {
			out[k] = len(part)
		}
		return out
	}
	out := make(map[event.Kind]int)
	for _, e := range s.events {
		out[e.EventKind()]++
	}
	return out
}

// SortedKinds returns the kinds present in the store, sorted.
func (s *Store) SortedKinds() []event.Kind {
	counts := s.KindCounts()
	out := make([]event.Kind, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
