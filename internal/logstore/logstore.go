// Package logstore is the append-only event log the simulated services
// write to and the measurement pipeline reads from.
//
// The paper notes that its 14 datasets were aggregated from system logs
// "via map-reduce computation" and that, for privacy and storage reasons,
// many authentication-related logs are sanitized or erased within a short
// time window. Both properties are modeled here: MapReduce provides a
// deterministic parallel aggregation framework, and Retention applies
// kind-scoped erasure windows.
//
// A store has two phases. While the simulation runs it is append-only and
// reads scan the full log. Once the world ends, Seal freezes it: appends
// become illegal, a per-kind index is built, and every read routes through
// it — Select/SelectWhere touch only the matching kind partition, Between
// binary-searches the time-ordered log, and KindCounts answers from the
// index without visiting records. Sealing is what makes the study's
// analysis fan-out cheap: dozens of concurrent read-only analyses over the
// same sealed store, each proportional to the records it actually uses.
package logstore

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"manualhijack/internal/event"
)

// Store is an append-only event log. Appends must be time-ordered (the
// simulation clock guarantees this); reads may happen concurrently with
// each other but not with appends or Sanitize.
type Store struct {
	mu     sync.Mutex
	events []event.Event
	// sealed marks the store read-only; byKind is the per-kind partition
	// index built by Seal, each partition preserving log order.
	sealed bool
	byKind map[event.Kind][]event.Event
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Append adds a record. Records must arrive in non-decreasing time order;
// out-of-order appends panic because they indicate a simulation bug that
// would silently corrupt every time-windowed analysis. Appending to a
// sealed store panics for the same reason: the analysis phase relies on
// the log being frozen.
func (s *Store) Append(e event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic("logstore: append to sealed store: " + string(e.EventKind()))
	}
	if n := len(s.events); n > 0 && e.When().Before(s.events[n-1].When()) {
		panic("logstore: out-of-order append: " + string(e.EventKind()) +
			" at " + e.When().String() + " after " + s.events[n-1].When().String())
	}
	s.events = append(s.events, e)
}

// Seal freezes the store and builds the kind index. Further appends panic;
// reads become index-backed and safe to run concurrently. Sealing an
// already-sealed store is a no-op. World.Run seals its log when the
// simulation window ends.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return
	}
	s.rebuildIndexLocked()
	s.sealed = true
}

// Sealed reports whether the store has been frozen.
func (s *Store) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// rebuildIndexLocked recomputes the per-kind partitions from the event
// slice. Appends are time-ordered, so filtering by kind preserves order
// within each partition.
func (s *Store) rebuildIndexLocked() {
	idx := make(map[event.Kind][]event.Event)
	for _, e := range s.events {
		k := e.EventKind()
		idx[k] = append(idx[k], e)
	}
	s.byKind = idx
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Scan calls fn for every record in order.
func (s *Store) Scan(fn func(event.Event)) {
	for _, e := range s.snapshot() {
		fn(e)
	}
}

// snapshot returns the current record slice. Callers must treat it as
// read-only.
func (s *Store) snapshot() []event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// kindPartition returns the sealed index partition for k. ok is false on
// an unsealed store, where callers must fall back to scanning.
func (s *Store) kindPartition(k event.Kind) (part []event.Event, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealed {
		return nil, false
	}
	return s.byKind[k], true
}

// Select returns every record of concrete type T, in order. On a sealed
// store only the matching kind partition is visited.
func Select[T event.Event](s *Store) []T {
	var out []T
	forEachOfType(s, func(t T) { out = append(out, t) })
	return out
}

// SelectWhere returns every record of type T matching pred, in order.
func SelectWhere[T event.Event](s *Store, pred func(T) bool) []T {
	var out []T
	forEachOfType(s, func(t T) {
		if pred(t) {
			out = append(out, t)
		}
	})
	return out
}

// forEachOfType visits every record of concrete type T in log order,
// routing through the kind index when the store is sealed and T is a
// registered record type.
func forEachOfType[T event.Event](s *Store, fn func(T)) {
	if k, ok := event.KindFor[T](); ok {
		if part, sealed := s.kindPartition(k); sealed {
			for _, e := range part {
				if t, ok := e.(T); ok {
					fn(t)
				}
			}
			return
		}
	}
	s.Scan(func(e event.Event) {
		if t, ok := e.(T); ok {
			fn(t)
		}
	})
}

// Between returns records with from <= When < to, preserving order. On a
// sealed store the window is located by binary search and the returned
// slice aliases the frozen log; callers must treat it as read-only.
func (s *Store) Between(from, to time.Time) []event.Event {
	s.mu.Lock()
	sealed := s.sealed
	events := s.events
	s.mu.Unlock()
	if sealed {
		lo := sort.Search(len(events), func(i int) bool { return !events[i].When().Before(from) })
		hi := sort.Search(len(events), func(i int) bool { return !events[i].When().Before(to) })
		if lo >= hi {
			return nil
		}
		// Full-cap slice so an appending caller cannot clobber the log.
		return events[lo:hi:hi]
	}
	var out []event.Event
	for _, e := range events {
		w := e.When()
		if !w.Before(from) && w.Before(to) {
			out = append(out, e)
		}
	}
	return out
}

// Retention is a kind-scoped erasure policy: records of Kinds older than
// Window (relative to "now") are erased. A nil Kinds slice applies to all
// kinds.
type Retention struct {
	Kinds  []event.Kind
	Window time.Duration
}

// Sanitize erases records covered by the policy that are older than
// now-policy.Window. It returns the number of erased records. This models
// the short retention of authentication logs that forced the paper's
// authors to draw several datasets over only a few weeks. Sanitizing a
// sealed store rebuilds the kind index so partitions never serve erased
// records; like appends, it must not run concurrently with reads.
func (s *Store) Sanitize(now time.Time, policy Retention) int {
	cutoff := now.Add(-policy.Window)
	// Build the kind set once instead of rescanning policy.Kinds per record.
	var kinds map[event.Kind]bool
	if policy.Kinds != nil {
		kinds = make(map[event.Kind]bool, len(policy.Kinds))
		for _, k := range policy.Kinds {
			kinds[k] = true
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.events[:0]
	erased := 0
	for _, e := range s.events {
		if e.When().Before(cutoff) && (kinds == nil || kinds[e.EventKind()]) {
			erased++
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so erased records are actually unreachable.
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = kept
	if s.sealed && erased > 0 {
		s.rebuildIndexLocked()
	}
	return erased
}

// KV is one key/value pair emitted by a mapper.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// MapReduce runs mapper over every record in parallel shards, groups the
// emitted pairs by key, and reduces each key's values. Despite the
// parallel map phase, the result is deterministic: values reach the
// reducer in original log order.
func MapReduce[K comparable, V any, R any](
	s *Store,
	mapper func(event.Event) []KV[K, V],
	reducer func(K, []V) R,
) map[K]R {
	events := s.snapshot()
	shards := runtime.GOMAXPROCS(0)
	if shards > len(events) {
		shards = len(events)
	}
	if shards < 1 {
		shards = 1
	}

	type indexed struct {
		idx int
		kv  KV[K, V]
	}
	outs := make([][]indexed, shards)
	var wg sync.WaitGroup
	chunk := (len(events) + shards - 1) / shards
	for sh := 0; sh < shards; sh++ {
		lo := sh * chunk
		hi := lo + chunk
		if hi > len(events) {
			hi = len(events)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			var local []indexed
			for i := lo; i < hi; i++ {
				for _, kv := range mapper(events[i]) {
					local = append(local, indexed{idx: i, kv: kv})
				}
			}
			outs[sh] = local
		}(sh, lo, hi)
	}
	wg.Wait()

	// Group by key. Shards are already internally ordered and cover
	// disjoint ascending index ranges, so appending shard-by-shard in
	// order preserves global log order per key.
	groups := make(map[K][]V)
	for _, shard := range outs {
		for _, iv := range shard {
			groups[iv.kv.Key] = append(groups[iv.kv.Key], iv.kv.Val)
		}
	}
	result := make(map[K]R, len(groups))
	for k, vs := range groups {
		result[k] = reducer(k, vs)
	}
	return result
}

// CountBy is a MapReduce convenience that counts records by a key function
// (key extraction returning ok=false skips the record).
func CountBy[K comparable](s *Store, key func(event.Event) (K, bool)) map[K]int {
	return MapReduce(s,
		func(e event.Event) []KV[K, struct{}] {
			if k, ok := key(e); ok {
				return []KV[K, struct{}]{{Key: k}}
			}
			return nil
		},
		func(_ K, vs []struct{}) int { return len(vs) },
	)
}

// KindCounts tallies records by kind (an aggregate useful for log-volume
// sanity checks and the hijacksim binary). A sealed store answers from
// the kind index in O(kinds); an unsealed one scans.
func (s *Store) KindCounts() map[event.Kind]int {
	s.mu.Lock()
	if s.sealed {
		out := make(map[event.Kind]int, len(s.byKind))
		for k, part := range s.byKind {
			out[k] = len(part)
		}
		s.mu.Unlock()
		return out
	}
	events := s.events
	s.mu.Unlock()
	out := make(map[event.Kind]int)
	for _, e := range events {
		out[e.EventKind()]++
	}
	return out
}

// SortedKinds returns the kinds present in the store, sorted.
func (s *Store) SortedKinds() []event.Kind {
	counts := s.KindCounts()
	out := make([]event.Kind, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
