package logstore

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

var t0 = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)

func login(at time.Time, acct identity.AccountID, actor event.Actor) event.Login {
	return event.Login{
		Base:    event.Base{Time: at},
		Account: acct,
		Outcome: event.LoginSuccess,
		Actor:   actor,
	}
}

func TestAppendScanOrder(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Minute), identity.AccountID(i+1), event.ActorOwner))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	var prev time.Time
	s.Scan(func(e event.Event) {
		if e.When().Before(prev) {
			t.Fatal("scan out of order")
		}
		prev = e.When()
	})
}

func TestOutOfOrderAppendPanics(t *testing.T) {
	s := New()
	s.Append(login(t0.Add(time.Hour), 1, event.ActorOwner))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(login(t0, 2, event.ActorOwner))
}

func TestSelectByType(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(event.Search{Base: event.Base{Time: t0.Add(time.Minute)}, Account: 1, Query: "wire transfer"})
	s.Append(login(t0.Add(2*time.Minute), 2, event.ActorHijacker))

	logins := Select[event.Login](s)
	if len(logins) != 2 {
		t.Fatalf("logins = %d, want 2", len(logins))
	}
	searches := Select[event.Search](s)
	if len(searches) != 1 || searches[0].Query != "wire transfer" {
		t.Fatalf("searches = %v", searches)
	}
}

func TestSelectWhere(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		actor := event.ActorOwner
		if i%2 == 0 {
			actor = event.ActorHijacker
		}
		s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i+1), actor))
	}
	bad := SelectWhere(s, func(l event.Login) bool { return l.Actor == event.ActorHijacker })
	if len(bad) != 3 {
		t.Fatalf("hijacker logins = %d, want 3", len(bad))
	}
}

func TestBetween(t *testing.T) {
	s := New()
	for i := 0; i < 24; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Hour), 1, event.ActorOwner))
	}
	got := s.Between(t0.Add(5*time.Hour), t0.Add(10*time.Hour))
	if len(got) != 5 {
		t.Fatalf("between = %d, want 5", len(got))
	}
}

func TestSanitizeByKindAndAge(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(event.Search{Base: event.Base{Time: t0}, Account: 1, Query: "old search"})
	s.Append(login(t0.Add(40*24*time.Hour), 2, event.ActorOwner))

	now := t0.Add(41 * 24 * time.Hour)
	erased := s.Sanitize(now, Retention{Kinds: []event.Kind{event.KindLogin}, Window: 14 * 24 * time.Hour})
	if erased != 1 {
		t.Fatalf("erased = %d, want 1 (only the old login)", erased)
	}
	if len(Select[event.Search](s)) != 1 {
		t.Fatal("search record should survive a login-scoped policy")
	}
	if len(Select[event.Login](s)) != 1 {
		t.Fatal("recent login should survive")
	}
}

func TestSanitizeAllKinds(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(event.Search{Base: event.Base{Time: t0.Add(time.Minute)}, Account: 1})
	erased := s.Sanitize(t0.Add(time.Hour), Retention{Window: time.Second})
	if erased != 2 || s.Len() != 0 {
		t.Fatalf("erased = %d len = %d", erased, s.Len())
	}
}

func TestMapReduceCounts(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		actor := event.ActorOwner
		if i%10 == 0 {
			actor = event.ActorHijacker
		}
		s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i%7+1), actor))
	}
	counts := CountBy(s, func(e event.Event) (event.Actor, bool) {
		l, ok := e.(event.Login)
		if !ok {
			return "", false
		}
		return l.Actor, true
	})
	if counts[event.ActorHijacker] != 10 || counts[event.ActorOwner] != 90 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMapReduceOrderPreserved(t *testing.T) {
	s := New()
	const n = 5000
	for i := 0; i < n; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i%3+1), event.ActorOwner))
	}
	// Collect per-account times; they must arrive in log order even though
	// the map phase is parallel.
	res := MapReduce(s,
		func(e event.Event) []KV[identity.AccountID, time.Time] {
			l := e.(event.Login)
			return []KV[identity.AccountID, time.Time]{{Key: l.Account, Val: l.Time}}
		},
		func(_ identity.AccountID, vs []time.Time) bool {
			for i := 1; i < len(vs); i++ {
				if vs[i].Before(vs[i-1]) {
					return false
				}
			}
			return true
		},
	)
	for k, ordered := range res {
		if !ordered {
			t.Fatalf("account %d values out of order", k)
		}
	}
	if len(res) != 3 {
		t.Fatalf("keys = %d, want 3", len(res))
	}
}

func TestMapReduceDeterministic(t *testing.T) {
	s := New()
	for i := 0; i < 2000; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i%11+1), event.ActorOwner))
	}
	run := func() map[identity.AccountID]string {
		return MapReduce(s,
			func(e event.Event) []KV[identity.AccountID, int] {
				l := e.(event.Login)
				return []KV[identity.AccountID, int]{{Key: l.Account, Val: int(l.Time.Unix())}}
			},
			func(k identity.AccountID, vs []int) string {
				return fmt.Sprintf("%d:%d:%d", k, len(vs), vs[0]+vs[len(vs)-1])
			},
		)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic key count")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterministic reduce for key %d: %s vs %s", k, v, b[k])
		}
	}
}

func TestMapReduceEmptyStore(t *testing.T) {
	s := New()
	res := CountBy(s, func(e event.Event) (string, bool) { return "x", true })
	if len(res) != 0 {
		t.Fatalf("empty store produced %v", res)
	}
}

func TestKindCounts(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(event.Search{Base: event.Base{Time: t0}, Account: 1})
	s.Append(event.Search{Base: event.Base{Time: t0}, Account: 1})
	kc := s.KindCounts()
	if kc[event.KindLogin] != 1 || kc[event.KindSearch] != 2 {
		t.Fatalf("kind counts = %v", kc)
	}
	kinds := s.SortedKinds()
	if len(kinds) != 2 || kinds[0] != event.KindLogin {
		t.Fatalf("sorted kinds = %v", kinds)
	}
}

// Property: Sanitize never erases records newer than the cutoff and the
// store length shrinks by exactly the erased count.
func TestSanitizeProperty(t *testing.T) {
	f := func(offsets []uint16, windowHours uint8) bool {
		s := New()
		last := t0
		for _, off := range offsets {
			last = last.Add(time.Duration(off) * time.Second)
			s.Append(login(last, 1, event.ActorOwner))
		}
		before := s.Len()
		now := last
		window := time.Duration(windowHours) * time.Hour
		erased := s.Sanitize(now, Retention{Window: window})
		if s.Len() != before-erased {
			return false
		}
		cutoff := now.Add(-window)
		ok := true
		s.Scan(func(e event.Event) {
			if e.When().Before(cutoff) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	s := New()
	ip := netip.MustParseAddr("10.1.2.3")
	s.Append(event.Login{
		Base: event.Base{Time: t0}, Account: 7, IP: ip,
		Outcome: event.LoginSuccess, RiskScore: 0.42, Session: 9,
		Actor: event.ActorHijacker,
	})
	s.Append(event.Search{Base: event.Base{Time: t0.Add(time.Minute)}, Account: 7, Query: "wire transfer", Actor: event.ActorHijacker})
	s.Append(event.MoneyWired{Base: event.Base{Time: t0.Add(time.Hour)}, VictimAccount: 7, Recipient: 9, Crew: "ng", Amount: 612.5})

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), s.Len())
	}
	logins := Select[event.Login](got)
	if len(logins) != 1 || logins[0].IP != ip || logins[0].RiskScore != 0.42 ||
		logins[0].Actor != event.ActorHijacker {
		t.Fatalf("login round trip = %+v", logins)
	}
	wires := Select[event.MoneyWired](got)
	if len(wires) != 1 || wires[0].Amount != 612.5 || wires[0].Crew != "ng" {
		t.Fatalf("wire round trip = %+v", wires)
	}
}

func TestNDJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadNDJSON(strings.NewReader(`{"kind":"no.such.kind","data":{}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNDJSONAllKindsRoundTrip(t *testing.T) {
	// One record of every kind survives the codec.
	s := New()
	b := func(min int) event.Base { return event.Base{Time: t0.Add(time.Duration(min) * time.Minute)} }
	all := []event.Event{
		event.Login{Base: b(0), Account: 1},
		event.PasswordChanged{Base: b(1), Account: 1},
		event.RecoveryChanged{Base: b(2), Account: 1, What: "email"},
		event.TwoSVEnrolled{Base: b(3), Account: 1, Phone: "+2251"},
		event.MessageSent{Base: b(4), FromAcct: 1, Recipients: []identity.Address{"a@b.test"}},
		event.Search{Base: b(5), Account: 1, Query: "bank"},
		event.FolderOpened{Base: b(6), Account: 1, Folder: event.FolderStarred},
		event.ContactsViewed{Base: b(7), Account: 1},
		event.FilterCreated{Base: b(8), Account: 1, ForwardTo: "x@y.test"},
		event.ReplyToSet{Base: b(9), Account: 1, Addr: "x@y.test"},
		event.MassDeletion{Base: b(10), Account: 1, Deleted: 5},
		event.SpamReported{Base: b(11), Reporter: 2, Message: 3},
		event.PageCreated{Base: b(12), Page: 1, Target: event.TargetMail},
		event.PageHit{Base: b(13), Page: 1, Method: "GET"},
		event.PageDetected{Base: b(14), Page: 1},
		event.PageTakedown{Base: b(15), Page: 1},
		event.LureSent{Base: b(16), Victim: "v@x.edu"},
		event.CredentialPhished{Base: b(17), Account: 1},
		event.HijackStarted{Base: b(18), Account: 1, Crew: "ng"},
		event.HijackAssessed{Base: b(19), Account: 1, Duration: 3 * time.Minute},
		event.HijackEnded{Base: b(20), Account: 1},
		event.ScamReply{Base: b(21), VictimAccount: 1, Recipient: 2},
		event.MoneyWired{Base: b(22), VictimAccount: 1, Amount: 100},
		event.NotificationSent{Base: b(23), Account: 1, Channel: event.ChannelSMS},
		event.ClaimFiled{Base: b(24), Account: 1},
		event.ClaimAttempt{Base: b(25), Account: 1, Method: event.MethodSMS},
		event.ClaimResolved{Base: b(26), Account: 1, Success: true},
		event.Remission{Base: b(27), Account: 1, RestoredMessages: 4},
	}
	for _, e := range all {
		s.Append(e)
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(all) {
		t.Fatalf("round trip %d of %d kinds", got.Len(), len(all))
	}
	i := 0
	got.Scan(func(e event.Event) {
		if e.EventKind() != all[i].EventKind() {
			t.Fatalf("record %d kind = %s, want %s", i, e.EventKind(), all[i].EventKind())
		}
		i++
	})
}
