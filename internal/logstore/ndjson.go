package logstore

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"manualhijack/internal/event"
)

// The NDJSON dump format is the contract between `hijacksim -events` and
// `cmd/analyze`: one record per line, preceded by a versioned header line.
//
// Version 2 (current):
//
//	{"format":"manualhijack-ndjson","version":2,"records":N,"start":...,"end":...,"seed":S}
//	{"kind":"auth.login","data":{...}}
//	...
//
// Version 1 is the headerless legacy format; readers still accept it.
// Files may be gzip-compressed: writers compress when the path ends in
// ".gz", readers detect the gzip magic bytes regardless of name.
const (
	// FormatName tags the header line of a versioned dump.
	FormatName = "manualhijack-ndjson"
	// FormatVersion is the dump version this package writes.
	FormatVersion = 2
)

// envelope is the NDJSON wire format: one object per line, tagged with
// the record kind so Decode can pick the concrete type.
type envelope struct {
	Kind event.Kind      `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Meta is the dump-level metadata carried by the header line: the
// observation window of the world that produced the log — which offline
// analyses need, because the first record's timestamp is not the window
// start — and the world seed for provenance. A zero Meta is legal; readers
// then fall back to the decoded records' time range.
type Meta struct {
	Start time.Time
	End   time.Time
	Seed  int64
}

// header is the first line of a version-2 dump.
type header struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Records int       `json:"records"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Seed    int64     `json:"seed"`
}

// WriteNDJSON streams the store as newline-delimited JSON, preserving log
// order. Equivalent to WriteNDJSONMeta with a zero Meta.
func WriteNDJSON(w io.Writer, s *Store) error {
	return WriteNDJSONMeta(w, s, Meta{})
}

// WriteNDJSONMeta streams the store as newline-delimited JSON with a
// version-2 header carrying m. The format is what cmd/hijacksim dumps and
// cmd/analyze reads.
func WriteNDJSONMeta(w io.Writer, s *Store, m Meta) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Format:  FormatName,
		Version: FormatVersion,
		Records: s.Len(),
		Start:   m.Start,
		End:     m.End,
		Seed:    m.Seed,
	}); err != nil {
		return err
	}
	ew := &envelopeWriter{w: bw, enc: enc}
	var err error
	s.Scan(func(e event.Event) {
		if err != nil {
			return
		}
		err = ew.writeEvent(e)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// envelopeWriter writes record lines in the dump wire format. The fast
// per-kind codec handles every registered value type; anything it
// declines (unregistered type, non-finite float) goes through the
// encoding/json path, which produces the same bytes — the fast path is a
// byte-identical shortcut, pinned by TestFastCodecMatchesEncodingJSON
// and TestNDJSONRewriteByteIdentical.
type envelopeWriter struct {
	w       io.Writer
	enc     *json.Encoder
	scratch []byte
}

func newEnvelopeWriter(w io.Writer) *envelopeWriter {
	return &envelopeWriter{w: w, enc: json.NewEncoder(w)}
}

func (ew *envelopeWriter) writeEvent(e event.Event) error {
	if out, ok := event.AppendLine(ew.scratch[:0], e); ok {
		ew.scratch = out[:0]
		_, err := ew.w.Write(out)
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return ew.enc.Encode(envelope{Kind: e.EventKind(), Data: data})
}

// WriteNDJSONFile dumps s to path, gzip-compressing when the name ends in
// ".gz". The file's Close error is checked and returned — a full disk or
// write-behind failure must not report a truncated dump as success.
func WriteNDJSONFile(path string, s *Store, m Meta) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("logstore: close %s: %w", path, cerr)
		}
	}()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteNDJSONMeta(zw, s, m); err != nil {
			return err
		}
		return zw.Close()
	}
	return WriteNDJSONMeta(f, s, m)
}

// ReadOptions controls ReadNDJSONWith.
type ReadOptions struct {
	// SkipCorrupt tolerates malformed lines, unknown kinds, truncated
	// trailing records (crash-durable dumps), and out-of-order records:
	// offenders are dropped and counted in ReadStats — never silently.
	// The default strict mode fails on the first bad line with its number.
	// When opening a segment directory, corruption is handled at segment
	// granularity: a segment with any bad line is dropped whole (counted
	// in SegmentsDropped), because a partial segment would silently shift
	// every time-windowed aggregate behind it.
	SkipCorrupt bool
	// Shards bounds the parallel JSON-decode workers: 0 means GOMAXPROCS,
	// 1 decodes inline on the reading goroutine (the sequential baseline).
	// For a segment directory this is the segment-verification worker
	// count instead (each segment decodes inline on its worker).
	Shards int
	// CacheSegments bounds how many decoded segments the returned store
	// keeps in RAM when the input is a segment directory (0 means
	// DefaultCacheSegments). Ignored for monolithic dumps.
	CacheSegments int
	// ScanWorkers sets the returned store's ordered-scan decode-ahead
	// window when the input is a segment directory (0 means 1). Ignored
	// for monolithic dumps.
	ScanWorkers int
}

// ReadStats reports what a load actually ingested.
type ReadStats struct {
	Records    int  // decoded records in the returned store
	Dropped    int  // malformed or unknown-kind lines dropped (SkipCorrupt); for segment directories this includes every record of a dropped segment
	OutOfOrder int  // records dropped for violating time order (SkipCorrupt)
	Missing    int  // header-declared records absent from the input (truncated dump)
	Truncated  bool // the input itself ended mid-stream (e.g. a cut gzip)
	Legacy     bool // headerless version-1 input
	Meta       Meta // header metadata (zero when Legacy)
	// First and Last bound the decoded records' timestamps; offline
	// analysis falls back to them when Meta carries no window.
	First, Last time.Time
	// Segments and SegmentsDropped describe a segment-directory load:
	// segments served by the returned store, and whole segments dropped
	// for corruption or cross-segment disorder (SkipCorrupt mode only —
	// strict mode fails instead). Both zero for monolithic dumps.
	Segments        int
	SegmentsDropped int
}

// ReadNDJSON reconstructs a store from WriteNDJSON output in strict mode.
// The returned store is sealed: a dumped log is complete by construction,
// so the load is the moment the kind index can be built — readers get the
// same index-backed fast paths (Select, Between, KindCounts) a live world
// gets after World.Run.
func ReadNDJSON(r io.Reader) (*Store, error) {
	s, _, err := ReadNDJSONWith(r, ReadOptions{})
	return s, err
}

// ReadNDJSONWith reconstructs a sealed store from NDJSON, decoding lines
// in parallel shards and verifying time order instead of trusting it.
// Gzip input is detected by magic bytes and decompressed transparently.
func ReadNDJSONWith(r io.Reader, opts ReadOptions) (*Store, *ReadStats, error) {
	plain, closeFn, err := sniffGzip(r)
	if err != nil {
		return nil, nil, err
	}
	defer closeFn()
	return readNDJSON(plain, opts)
}

// ReadNDJSONFile loads a dump from disk (plain or gzip-compressed). When
// path is a directory it is opened as a spilled segment directory instead
// (see OpenSegmentDir) — the offline pipeline treats both layouts as one
// virtual store.
func ReadNDJSONFile(path string, opts ReadOptions) (*Store, *ReadStats, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return OpenSegmentDir(path, opts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadNDJSONWith(f, opts)
}

// sniffGzip peeks at r and transparently unwraps a gzip stream. The
// returned close function releases the decompressor (a no-op for plain
// input); the underlying reader is never closed.
func sniffGzip(r io.Reader) (io.Reader, func() error, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, fmt.Errorf("logstore: gzip: %w", err)
		}
		return zr, zr.Close, nil
	}
	return br, func() error { return nil }, nil
}

// batchLines is the unit of work handed to a decode shard. JSON unmarshal
// dominates ingest CPU, so lines are decoded out-of-line while the reader
// goroutine keeps scanning; batches carry their original position so the
// log is reassembled in order.
const batchLines = 2048

// lineBatch is a contiguous run of raw lines plus the decode results a
// worker fills in. events[i] is nil where line i was dropped; errs[i]
// carries the reason.
type lineBatch struct {
	idx    int
	nums   []int // 1-based input line numbers
	lines  [][]byte
	events []event.Event
	errs   []error
}

// decode unmarshals every line of the batch. In strict mode the first
// error stops the batch and publishes its index through minFailed so
// later batches can be abandoned — earlier ones still decode fully, which
// keeps "first bad line" deterministic under parallel scheduling.
func (b *lineBatch) decode(skipCorrupt bool, minFailed *atomic.Int64) {
	b.events = make([]event.Event, len(b.lines))
	b.errs = make([]error, len(b.lines))
	for i, data := range b.lines {
		e, err := decodeLine(data)
		if err != nil {
			b.errs[i] = fmt.Errorf("logstore: line %d: %w", b.nums[i], err)
			if !skipCorrupt {
				for {
					cur := minFailed.Load()
					if int64(b.idx) >= cur || minFailed.CompareAndSwap(cur, int64(b.idx)) {
						break
					}
				}
				b.lines = nil
				return
			}
			continue
		}
		b.events[i] = e
	}
	// Drop the raw bytes so they can be reclaimed while later batches
	// stream through; only the decoded records are retained.
	b.lines = nil
}

func decodeLine(data []byte) (event.Event, error) {
	// Canonical lines take the hand-rolled path; any shape surprise —
	// foreign writer, legacy dump, corruption — falls back to
	// encoding/json, which owns the error semantics.
	if e, ok := event.DecodeLineFast(data); ok {
		return e, nil
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	return event.Decode(env.Kind, env.Data)
}

// readNDJSON decodes a full dump and seals it into a store.
func readNDJSON(r io.Reader, opts ReadOptions) (*Store, *ReadStats, error) {
	events, st, err := decodeNDJSON(r, opts)
	if err != nil {
		return nil, nil, err
	}
	// The log is complete by construction: seal so every read gets the
	// kind-indexed fast paths instead of full-log scans.
	s := &Store{events: events}
	s.Seal()
	return s, st, nil
}

// decodeNDJSON is the core NDJSON decode shared by monolithic dump loads
// and segment-file loads: it returns the time-ordered event slice and the
// ingest stats without committing to a storage layout.
func decodeNDJSON(r io.Reader, opts ReadOptions) ([]event.Event, *ReadStats, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	st := &ReadStats{}

	var (
		batches   []*lineBatch
		cur       *lineBatch
		work      chan *lineBatch
		wg        sync.WaitGroup
		minFailed atomic.Int64
	)
	minFailed.Store(math.MaxInt64)
	if shards > 1 {
		work = make(chan *lineBatch, shards*2)
		wg.Add(shards)
		for i := 0; i < shards; i++ {
			go func() {
				defer wg.Done()
				for b := range work {
					if !opts.SkipCorrupt && int64(b.idx) > minFailed.Load() {
						continue // a lower batch already failed; this one cannot hold the first error
					}
					b.decode(opts.SkipCorrupt, &minFailed)
				}
			}()
		}
	}
	flush := func() {
		if cur == nil {
			return
		}
		b := cur
		cur = nil
		if work != nil {
			work <- b
		} else if opts.SkipCorrupt || int64(b.idx) <= minFailed.Load() {
			b.decode(opts.SkipCorrupt, &minFailed)
		}
	}

	line := 0
	headerRecords := -1
	sawHeader := false
	for sc.Scan() {
		if !opts.SkipCorrupt && minFailed.Load() < math.MaxInt64 {
			break // a shard already hit a bad line; strict mode will fail on it
		}
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			// The first non-empty line is either a version-2 header or,
			// in a legacy dump, already a record.
			sawHeader = true
			var h header
			if json.Unmarshal(raw, &h) == nil && h.Format == FormatName {
				if h.Version != FormatVersion {
					drain(work, &wg)
					return nil, nil, fmt.Errorf("logstore: line %d: unsupported dump version %d (reader speaks %d)",
						line, h.Version, FormatVersion)
				}
				headerRecords = h.Records
				st.Meta = Meta{Start: h.Start, End: h.End, Seed: h.Seed}
				continue
			}
			st.Legacy = true
		}
		if cur == nil {
			cur = &lineBatch{idx: len(batches)}
			batches = append(batches, cur)
		}
		cur.nums = append(cur.nums, line)
		cur.lines = append(cur.lines, append([]byte(nil), raw...))
		if len(cur.lines) >= batchLines {
			flush()
		}
	}
	flush()
	drain(work, &wg)

	if err := sc.Err(); err != nil {
		if !opts.SkipCorrupt {
			return nil, nil, fmt.Errorf("logstore: line %d: %w", line+1, err)
		}
		// A crash-durable dump can end mid-stream (a cut gzip member, an
		// over-long mangled line). Keep what decoded; flag the cut.
		st.Truncated = true
	}

	// Reassemble in input order, verifying the time-ordering invariant the
	// store relies on instead of trusting the dump.
	events := make([]event.Event, 0, total(batches))
	var last time.Time
	for _, b := range batches {
		for i := range b.events {
			if err := b.errs[i]; err != nil {
				if !opts.SkipCorrupt {
					return nil, nil, err
				}
				st.Dropped++
				continue
			}
			e := b.events[i]
			if e == nil {
				continue // past a strict-mode failure; unreachable, but harmless
			}
			if len(events) > 0 && e.When().Before(last) {
				if !opts.SkipCorrupt {
					return nil, nil, fmt.Errorf("logstore: line %d: out-of-order record: %s at %s after %s",
						b.nums[i], e.EventKind(), e.When(), last)
				}
				st.OutOfOrder++
				continue
			}
			last = e.When()
			events = append(events, e)
		}
	}

	st.Records = len(events)
	if len(events) > 0 {
		st.First = events[0].When()
		st.Last = last
	}
	if headerRecords >= 0 {
		accounted := st.Records + st.Dropped + st.OutOfOrder
		if accounted < headerRecords {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: dump truncated: header declares %d records, input held %d",
					headerRecords, accounted)
			}
			st.Missing = headerRecords - accounted
		} else if accounted > headerRecords && !opts.SkipCorrupt {
			return nil, nil, fmt.Errorf("logstore: header declares %d records, input held %d (concatenated dumps?)",
				headerRecords, accounted)
		}
	}

	return events, st, nil
}

// drain closes the work channel (if any) and waits for the shards.
func drain(work chan *lineBatch, wg *sync.WaitGroup) {
	if work != nil {
		close(work)
		wg.Wait()
	}
}

func total(batches []*lineBatch) int {
	n := 0
	for _, b := range batches {
		n += len(b.events)
	}
	return n
}
