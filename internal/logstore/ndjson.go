package logstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"manualhijack/internal/event"
)

// envelope is the NDJSON wire format: one object per line, tagged with
// the record kind so Decode can pick the concrete type.
type envelope struct {
	Kind event.Kind      `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// WriteNDJSON streams the store as newline-delimited JSON, preserving log
// order. The format is what cmd/hijacksim dumps and cmd/analyze reads.
func WriteNDJSON(w io.Writer, s *Store) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	var err error
	s.Scan(func(e event.Event) {
		if err != nil {
			return
		}
		var data []byte
		if data, err = json.Marshal(e); err != nil {
			return
		}
		err = enc.Encode(envelope{Kind: e.EventKind(), Data: data})
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadNDJSON reconstructs a store from WriteNDJSON output. Records must
// appear in time order (they do, by construction).
func ReadNDJSON(r io.Reader) (*Store, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			return nil, fmt.Errorf("logstore: line %d: %w", line, err)
		}
		e, err := event.Decode(env.Kind, env.Data)
		if err != nil {
			return nil, fmt.Errorf("logstore: line %d: %w", line, err)
		}
		s.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
