package logstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"manualhijack/internal/event"
)

var testMeta = Meta{
	Start: t0,
	End:   t0.Add(30 * 24 * time.Hour),
	Seed:  42,
}

// dumpLines writes s with testMeta and returns the dump split into lines
// (header first), for fixture surgery.
func dumpLines(t *testing.T, s *Store) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteNDJSONMeta(&buf, s, testMeta); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != s.Len()+1 {
		t.Fatalf("dump has %d lines, want %d records + header", len(lines), s.Len())
	}
	return lines
}

// The PR-1 fast paths (Select, Between, KindCounts) only engage on a
// sealed store; a dumped log is complete by construction, so loading it
// must seal. This is the regression test for the unsealed-analyze-path
// bug: cmd/analyze used to receive an unsealed store and silently fall
// back to full-log scans.
func TestReadNDJSONSealsStore(t *testing.T) {
	src := mixedStore(300)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sealed() {
		t.Fatal("round-tripped store is not sealed")
	}

	// Sealed, index-backed reads must match what a raw scan of the loaded
	// log says.
	wantLogins := 0
	wantCounts := map[event.Kind]int{}
	from, to := t0.Add(30*time.Second), t0.Add(200*time.Second)
	wantWindow := 0
	got.Scan(func(e event.Event) {
		wantCounts[e.EventKind()]++
		if _, ok := e.(event.Login); ok {
			wantLogins++
		}
		if w := e.When(); !w.Before(from) && w.Before(to) {
			wantWindow++
		}
	})
	if logins := Select[event.Login](got); len(logins) != wantLogins {
		t.Fatalf("Select = %d, scan says %d", len(logins), wantLogins)
	}
	if win := got.Between(from, to); len(win) != wantWindow {
		t.Fatalf("Between = %d, scan says %d", len(win), wantWindow)
	}
	if counts := got.KindCounts(); !reflect.DeepEqual(counts, wantCounts) {
		t.Fatalf("KindCounts = %v, scan says %v", counts, wantCounts)
	}
}

// write → read → re-write must be byte-identical: the decode loses
// nothing, the encoder is deterministic, and the header (including its
// metadata) round-trips.
func TestNDJSONRewriteByteIdentical(t *testing.T) {
	src := benchStore(2000)
	var first bytes.Buffer
	if err := WriteNDJSONMeta(&first, src, testMeta); err != nil {
		t.Fatal(err)
	}
	loaded, st, err := ReadNDJSONWith(bytes.NewReader(first.Bytes()), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Legacy || st.Meta != testMeta || st.Records != src.Len() {
		t.Fatalf("header did not round-trip: %+v", st)
	}
	if st.First != t0 || st.Last.Before(st.First) {
		t.Fatalf("record time range wrong: %v .. %v", st.First, st.Last)
	}
	var second bytes.Buffer
	if err := WriteNDJSONMeta(&second, loaded, st.Meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-write diverges: %d vs %d bytes", first.Len(), second.Len())
	}
}

// A headerless (version-1) dump still loads, flagged Legacy, with the
// window falling back to the record time range.
func TestNDJSONLegacyHeaderless(t *testing.T) {
	lines := dumpLines(t, mixedStore(50))
	legacy := strings.Join(lines[1:], "\n") + "\n"
	s, st, err := ReadNDJSONWith(strings.NewReader(legacy), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Legacy || st.Meta != (Meta{}) {
		t.Fatalf("legacy dump not flagged: %+v", st)
	}
	if !s.Sealed() || s.Len() != len(lines)-1 {
		t.Fatalf("legacy load: sealed=%v len=%d", s.Sealed(), s.Len())
	}
}

func TestNDJSONUnsupportedVersion(t *testing.T) {
	in := `{"format":"manualhijack-ndjson","version":99,"records":0}` + "\n"
	if _, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version accepted: %v", err)
	}
}

// Strict mode fails on the first bad line and names it; -skip-corrupt
// drops it, reports it, and still seals.
func TestNDJSONCorruptLineModes(t *testing.T) {
	lines := dumpLines(t, mixedStore(40))
	n := len(lines) - 1 // records
	corruptAt := 5      // 1-based input line (a record, not the header)
	lines[corruptAt-1] = `{"kind":"auth.login","data":{"broken`
	in := strings.Join(lines, "\n") + "\n"

	if _, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "line 5") {
		t.Fatalf("strict mode error = %v, want line 5", err)
	}

	s, st, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.Records != n-1 || st.Missing != 0 {
		t.Fatalf("tolerant stats = %+v, want 1 dropped of %d", st, n)
	}
	if !s.Sealed() || s.Len() != n-1 {
		t.Fatalf("tolerant load: sealed=%v len=%d want %d", s.Sealed(), s.Len(), n-1)
	}
}

// A dump cut mid-record (crash-durable write) is a truncated trailing
// line: strict refuses, tolerant keeps the complete prefix and reports
// both the dropped partial line and the header shortfall.
func TestNDJSONTruncatedTail(t *testing.T) {
	lines := dumpLines(t, mixedStore(30))
	n := len(lines) - 1
	wholeLoss := 2 // drop two full records, then half of a third
	kept := lines[:len(lines)-wholeLoss]
	lastIdx := len(kept) - 1
	kept[lastIdx] = kept[lastIdx][:len(kept[lastIdx])/2]
	in := strings.Join(kept, "\n")

	if _, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{}); err == nil {
		t.Fatal("strict mode accepted a truncated dump")
	}

	s, st, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := n - wholeLoss - 1
	if st.Records != wantRecords || st.Dropped != 1 || st.Missing != wholeLoss {
		t.Fatalf("tolerant stats = %+v, want records=%d dropped=1 missing=%d",
			st, wantRecords, wholeLoss)
	}
	if s.Len() != wantRecords || !s.Sealed() {
		t.Fatalf("store len=%d sealed=%v", s.Len(), s.Sealed())
	}
}

// Losing exactly whole lines leaves no malformed line behind — only the
// header's record count exposes the truncation.
func TestNDJSONHeaderCountCatchesCleanTruncation(t *testing.T) {
	lines := dumpLines(t, mixedStore(20))
	in := strings.Join(lines[:len(lines)-3], "\n") + "\n"
	if _, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("clean truncation not caught: %v", err)
	}
	_, st, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Missing != 3 || st.Dropped != 0 {
		t.Fatalf("tolerant stats = %+v, want missing=3", st)
	}
}

// Records must be time-ordered; the reader verifies instead of trusting.
func TestNDJSONOutOfOrder(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(login(t0.Add(time.Minute), 2, event.ActorOwner))
	s.Append(login(t0.Add(2*time.Minute), 3, event.ActorOwner))
	lines := dumpLines(t, s)
	lines[2], lines[3] = lines[3], lines[2] // swap the 2nd and 3rd records

	in := strings.Join(lines, "\n") + "\n"
	if _, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("disorder accepted: %v", err)
	}

	got, st, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.OutOfOrder != 1 || got.Len() != 2 {
		t.Fatalf("tolerant disorder: stats=%+v len=%d", st, got.Len())
	}
}

// Gzip round trip: WriteNDJSONFile compresses on a .gz path, and the
// reader detects gzip by magic bytes (no filename needed).
func TestNDJSONGzipRoundTrip(t *testing.T) {
	src := mixedStore(200)
	path := filepath.Join(t.TempDir(), "world.ndjson.gz")
	if err := WriteNDJSONFile(path, src, testMeta); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf(".gz file is not gzip (starts %x)", raw[:2])
	}

	got, st, err := ReadNDJSONFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != src.Len() || !got.Sealed() || st.Meta != testMeta {
		t.Fatalf("gzip round trip: len=%d sealed=%v meta=%+v", got.Len(), got.Sealed(), st.Meta)
	}

	// Magic-byte detection from a bare reader, too.
	got2, _, err := ReadNDJSONWith(bytes.NewReader(raw), ReadOptions{})
	if err != nil || got2.Len() != src.Len() {
		t.Fatalf("magic-byte gzip read: len=%d err=%v", got2.Len(), err)
	}

	// A gzip stream cut mid-member is tolerated only with -skip-corrupt.
	cut := raw[:len(raw)*2/3]
	if _, _, err := ReadNDJSONWith(bytes.NewReader(cut), ReadOptions{}); err == nil {
		t.Fatal("strict mode accepted a cut gzip stream")
	}
	_, st3, err := ReadNDJSONWith(bytes.NewReader(cut), ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Truncated {
		t.Fatalf("cut gzip not flagged truncated: %+v", st3)
	}
}

func TestNDJSONPlainFileRoundTrip(t *testing.T) {
	src := mixedStore(100)
	path := filepath.Join(t.TempDir(), "world.ndjson")
	if err := WriteNDJSONFile(path, src, testMeta); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReadNDJSONFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != src.Len() || st.Meta.Seed != testMeta.Seed {
		t.Fatalf("plain file round trip: len=%d meta=%+v", got.Len(), st.Meta)
	}
}

// The sharded parallel decode must be a pure performance change: any
// shard count yields the same store and stats, in both modes.
func TestNDJSONParallelMatchesSequential(t *testing.T) {
	lines := dumpLines(t, benchStore(10000))
	lines[17] = "garbage"        // malformed
	lines[4003] = `{"kind":"x"}` // unknown kind
	in := strings.Join(lines, "\n") + "\n"

	var wantStore *Store
	var wantStats *ReadStats
	for _, shards := range []int{1, 2, 8} {
		s, st, err := ReadNDJSONWith(strings.NewReader(in),
			ReadOptions{SkipCorrupt: true, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if wantStore == nil {
			wantStore, wantStats = s, st
			if st.Dropped != 2 {
				t.Fatalf("fixture should drop 2 lines, got %+v", st)
			}
			continue
		}
		if !reflect.DeepEqual(st, wantStats) {
			t.Fatalf("shards=%d stats diverge: %+v vs %+v", shards, st, wantStats)
		}
		if s.Len() != wantStore.Len() || !reflect.DeepEqual(s.KindCounts(), wantStore.KindCounts()) {
			t.Fatalf("shards=%d store diverges", shards)
		}
	}

	// Strict mode: every shard count reports the same first bad line.
	for _, shards := range []int{1, 2, 8} {
		_, _, err := ReadNDJSONWith(strings.NewReader(in), ReadOptions{Shards: shards})
		if err == nil || !strings.Contains(err.Error(), "line 18") {
			t.Fatalf("shards=%d: first-bad-line = %v, want line 18", shards, err)
		}
	}
}

// Blank lines are ignored but still count toward reported line numbers.
func TestNDJSONBlankLines(t *testing.T) {
	lines := dumpLines(t, mixedStore(10))
	withBlanks := lines[0] + "\n\n" + strings.Join(lines[1:], "\n\n") + "\n"
	s, st, err := ReadNDJSONWith(strings.NewReader(withBlanks), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(lines)-1 || st.Dropped != 0 {
		t.Fatalf("blank lines mishandled: len=%d stats=%+v", s.Len(), st)
	}
}

// The all-kinds fixture in logstore_test.go must cover the full codec
// vocabulary — a new event type cannot ship without dump/load coverage.
func TestNDJSONVocabularyComplete(t *testing.T) {
	kinds := event.RegisteredKinds()
	if len(kinds) != 28 {
		t.Fatalf("registered kinds = %d; update the all-kinds round-trip fixture and this count", len(kinds))
	}
}

// A tolerant read of a pristine dump reports a clean bill of health.
func TestNDJSONSkipCorruptCleanInput(t *testing.T) {
	var buf bytes.Buffer
	src := mixedStore(60)
	if err := WriteNDJSONMeta(&buf, src, testMeta); err != nil {
		t.Fatal(err)
	}
	_, st, err := ReadNDJSONWith(&buf, ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped+st.OutOfOrder+st.Missing != 0 || st.Truncated || st.Records != src.Len() {
		t.Fatalf("clean input reported dirty: %+v", st)
	}
}
