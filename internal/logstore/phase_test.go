package logstore

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

// TestSealPublishHandoff pins the supported cross-goroutine pattern of
// the two-phase contract: a single writer appends and seals; readers on
// other goroutines synchronize on nothing but Sealed() before reading.
// Under -race this asserts the atomic release/acquire publish actually
// orders the writer's appends and index build before the readers' reads —
// the guarantee the study's analysis fan-out relies on now that Append
// takes no lock.
func TestSealPublishHandoff(t *testing.T) {
	const records = 5000
	s := New()
	go func() {
		for i := 0; i < records; i++ {
			s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i%17+1), event.ActorOwner))
		}
		s.Seal()
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !s.Sealed() {
				runtime.Gosched()
			}
			switch g % 3 {
			case 0:
				if n := len(Select[event.Login](s)); n != records {
					t.Errorf("reader saw %d logins, want %d", n, records)
				}
			case 1:
				if kc := s.KindCounts(); kc[event.KindLogin] != records {
					t.Errorf("reader saw counts %v, want %d logins", kc, records)
				}
			case 2:
				win := s.Between(t0, t0.Add(records*time.Second))
				if len(win) != records {
					t.Errorf("reader saw %d records in window, want %d", len(win), records)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Append must stay amortized ≤1 allocation per record (slice growth only)
// on a cold store, and allocation-free on a Reserve-sized one — the
// single-writer rewrite removed the per-append lock, and these assertions
// keep the remaining costs from silently regressing.
func TestAppendAmortizedAllocs(t *testing.T) {
	// Box the record once: interface conversion at the call site is the
	// caller's allocation, not Append's.
	var e event.Event = login(t0, 1, event.ActorOwner)

	cold := New()
	allocs := testing.AllocsPerRun(20000, func() { cold.Append(e) })
	if allocs > 1 {
		t.Fatalf("cold Append allocated %.3f times per record, want amortized <= 1", allocs)
	}

	warm := New()
	warm.Reserve(30000)
	allocs = testing.AllocsPerRun(20000, func() { warm.Append(e) })
	if allocs != 0 {
		t.Fatalf("reserved Append allocated %.3f times per record, want 0", allocs)
	}
}

func TestReservePreservesRecords(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Minute), identity.AccountID(i+1), event.ActorOwner))
	}
	s.Reserve(5000)
	if s.Len() != 10 {
		t.Fatalf("Reserve dropped records: len = %d", s.Len())
	}
	s.Reserve(1) // shrinking request is a no-op
	s.Append(login(t0.Add(time.Hour), 99, event.ActorOwner))
	if s.Len() != 11 {
		t.Fatalf("append after Reserve: len = %d", s.Len())
	}
	s.Seal()
	if got := Select[event.Login](s); len(got) != 11 || got[10].Account != 99 {
		t.Fatalf("records corrupted by Reserve: %d", len(got))
	}
}

// The two-pass index build must produce partitions exactly as large as
// their kind's population — appending past a partition's capacity would
// reallocate away from the shared backing array, so equality of len and
// cap proves the counting pass matched the fill pass.
func TestSealPartitionsExactlySized(t *testing.T) {
	s := mixedStore(300)
	s.Seal()
	for k, part := range s.byKind {
		if len(part) != cap(part) {
			t.Fatalf("partition %s: len %d != cap %d (not exact-size allocated)", k, len(part), cap(part))
		}
	}
	total := 0
	for _, part := range s.byKind {
		total += len(part)
	}
	if total != s.Len() {
		t.Fatalf("partitions hold %d records, store holds %d", total, s.Len())
	}
}
