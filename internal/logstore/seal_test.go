package logstore

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

// mixedStore builds a store with interleaved kinds: a login every record,
// a search every 3rd, a wire every 7th.
func mixedStore(n int) *Store {
	s := New()
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		s.Append(login(at, identity.AccountID(i%13+1), event.ActorOwner))
		if i%3 == 0 {
			s.Append(event.Search{Base: event.Base{Time: at}, Account: 1, Query: "bank"})
		}
		if i%7 == 0 {
			s.Append(event.MoneyWired{Base: event.Base{Time: at}, VictimAccount: 1, Amount: 10})
		}
	}
	return s
}

// Sealing must not change what any read returns — only how it is served.
func TestSealPreservesReads(t *testing.T) {
	unsealed := mixedStore(500)
	sealed := mixedStore(500)
	sealed.Seal()
	if !sealed.Sealed() || unsealed.Sealed() {
		t.Fatal("sealed flags wrong")
	}

	if got, want := Select[event.Login](sealed), Select[event.Login](unsealed); !reflect.DeepEqual(got, want) {
		t.Fatalf("Select[Login] diverges: %d vs %d", len(got), len(want))
	}
	if got, want := Select[event.MoneyWired](sealed), Select[event.MoneyWired](unsealed); !reflect.DeepEqual(got, want) {
		t.Fatalf("Select[MoneyWired] diverges: %d vs %d", len(got), len(want))
	}
	pred := func(l event.Login) bool { return l.Account == 3 }
	if got, want := SelectWhere(sealed, pred), SelectWhere(unsealed, pred); !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectWhere diverges: %d vs %d", len(got), len(want))
	}
	from, to := t0.Add(30*time.Second), t0.Add(90*time.Second)
	if got, want := sealed.Between(from, to), unsealed.Between(from, to); !reflect.DeepEqual(got, want) {
		t.Fatalf("Between diverges: %d vs %d", len(got), len(want))
	}
	if got, want := sealed.KindCounts(), unsealed.KindCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("KindCounts diverges: %v vs %v", got, want)
	}
	if got, want := sealed.SortedKinds(), unsealed.SortedKinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKinds diverges: %v vs %v", got, want)
	}
}

func TestSealEmptySelectStaysNil(t *testing.T) {
	s := mixedStore(10)
	s.Seal()
	if got := Select[event.Remission](s); got != nil {
		t.Fatalf("empty partition select = %#v, want nil", got)
	}
	if got := s.Between(t0.Add(-2*time.Hour), t0.Add(-time.Hour)); got != nil {
		t.Fatalf("empty window = %#v, want nil", got)
	}
}

func TestSealBetweenBoundaries(t *testing.T) {
	s := New()
	for i := 0; i < 24; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Hour), 1, event.ActorOwner))
	}
	s.Seal()
	got := s.Between(t0.Add(5*time.Hour), t0.Add(10*time.Hour))
	if len(got) != 5 {
		t.Fatalf("between = %d, want 5 (from inclusive, to exclusive)", len(got))
	}
	if got[0].When() != t0.Add(5*time.Hour) || got[4].When() != t0.Add(9*time.Hour) {
		t.Fatalf("window edges wrong: %v .. %v", got[0].When(), got[4].When())
	}
	if all := s.Between(t0.Add(-time.Hour), t0.Add(48*time.Hour)); len(all) != 24 {
		t.Fatalf("full window = %d, want 24", len(all))
	}
}

func TestAppendAfterSealPanics(t *testing.T) {
	s := mixedStore(5)
	s.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("append to sealed store did not panic")
		}
	}()
	s.Append(login(t0.Add(time.Hour), 1, event.ActorOwner))
}

func TestSealIdempotent(t *testing.T) {
	s := mixedStore(20)
	s.Seal()
	before := s.KindCounts()
	s.Seal()
	if !reflect.DeepEqual(before, s.KindCounts()) {
		t.Fatal("double seal changed counts")
	}
}

// Sanitize on a sealed store must rebuild the index: a stale partition
// serving erased records would undo the erasure guarantee.
func TestSanitizeRebuildsSealedIndex(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	s.Append(event.Search{Base: event.Base{Time: t0}, Account: 1, Query: "old"})
	s.Append(login(t0.Add(40*24*time.Hour), 2, event.ActorOwner))
	s.Seal()

	erased := s.Sanitize(t0.Add(41*24*time.Hour), Retention{
		Kinds: []event.Kind{event.KindLogin}, Window: 14 * 24 * time.Hour,
	})
	if erased != 1 {
		t.Fatalf("erased = %d, want 1", erased)
	}
	logins := Select[event.Login](s)
	if len(logins) != 1 || logins[0].Account != 2 {
		t.Fatalf("sealed index served stale partition: %+v", logins)
	}
	if kc := s.KindCounts(); kc[event.KindLogin] != 1 || kc[event.KindSearch] != 1 {
		t.Fatalf("kind counts stale after sanitize: %v", kc)
	}
}

// Concurrent index-backed reads on a sealed store must be race-free and
// mutually consistent (run with -race).
func TestSealedConcurrentReads(t *testing.T) {
	s := mixedStore(2000)
	s.Seal()

	wantLogins := Select[event.Login](s)
	from, to := t0.Add(100*time.Second), t0.Add(900*time.Second)
	wantWindow := s.Between(from, to)
	wantCounts := s.KindCounts()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				if got := Select[event.Login](s); len(got) != len(wantLogins) {
					errs <- "Select diverged"
				}
			case 1:
				if got := s.Between(from, to); !reflect.DeepEqual(got, wantWindow) {
					errs <- "Between diverged"
				}
			case 2:
				counts := CountBy(s, func(e event.Event) (event.Kind, bool) { return e.EventKind(), true })
				if !reflect.DeepEqual(counts, wantCounts) {
					errs <- "MapReduce diverged"
				}
			case 3:
				if got := s.KindCounts(); !reflect.DeepEqual(got, wantCounts) {
					errs <- "KindCounts diverged"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
