package logstore

// Segmented spill-to-disk operation. The paper's datasets were aggregated
// from production logs "via map-reduce computation" — logs far too large
// for any single machine's RAM. This file gives the store the same shape:
// during the single-writer build phase, time-contiguous segments seal at a
// record (or approximate byte) threshold and spill to versioned NDJSON(.gz)
// segment files, so the store holds only the active segment plus a small
// decoded-segment cache. After Seal, every read path (Scan, Select,
// Between, KindCounts, MapReduce) streams segments back through the cache
// in log order — analyses run over million-user worlds in RAM bounded by
// the segment size, not the world size.
//
// Segment files reuse the version-2 dump format verbatim (one header line,
// then envelope lines), with the header's start/end carrying the segment's
// own first/last record timestamps. A manifest.json ties the directory
// together: the world's observation window and seed, plus per-segment
// record counts, time bounds, and kind tallies (which let kind-filtered
// reads skip segments wholesale).

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manualhijack/internal/event"
)

const (
	// SegmentFormatName tags manifest.json in a segment directory.
	SegmentFormatName = "manualhijack-segments"
	// SegmentFormatVersion is the segment-directory layout version.
	SegmentFormatVersion = 1
	// ManifestName is the directory-level metadata file.
	ManifestName = "manifest.json"
	// DefaultSegmentRecords is the seal threshold when SpillConfig leaves
	// SegmentRecords unset: big enough that segment count stays in the
	// dozens at production scale, small enough that one segment is a
	// rounding error next to a scale-1.0 world.
	DefaultSegmentRecords = 100_000
	// DefaultCacheSegments is the decoded-segment cache size when unset:
	// the segment being read plus one being prefetched.
	DefaultCacheSegments = 2
)

// SpillConfig configures segmented spill-to-disk operation (EnableSpill).
type SpillConfig struct {
	// Dir receives the segment files and manifest; created if absent.
	Dir string
	// SegmentRecords seals the active segment at this many records
	// (<= 0 means DefaultSegmentRecords).
	SegmentRecords int
	// SegmentBytes, when > 0, additionally seals when the active
	// segment's estimated encoded size reaches this many bytes. The
	// estimate is the measured bytes-per-record of previous segments
	// (pre-compression), so the first segment is governed by
	// SegmentRecords alone.
	SegmentBytes int64
	// CacheSegments bounds decoded sealed segments kept in RAM for reads
	// after Seal (<= 0 means DefaultCacheSegments). Ordered scans may
	// hold up to ScanWorkers+1 segments regardless, so the decode-ahead
	// window never thrashes its own prefetches.
	CacheSegments int
	// Writers sizes the background encode/write pool that seals segments
	// off the append path (<= 0 means 1). The append goroutine only
	// hands the filled segment over and keeps simulating; writers absorb
	// the JSON encode, compression, and disk I/O.
	Writers int
	// Compress gzips segment files.
	Compress bool
	// GzipLevel is the compression level when Compress is set (0 means
	// gzip.BestSpeed — the spill path favors throughput; archival dumps
	// via WriteNDJSONFile keep gzip.DefaultCompression).
	GzipLevel int
	// ScanWorkers sets how many segments an ordered scan decodes ahead
	// of the one being folded (<= 0 means 1, the classic
	// prefetch-next). Delivery order is unaffected — builders always
	// see segments in log order — only the decode overlaps.
	ScanWorkers int
	// Meta is the world-level metadata (observation window, seed) written
	// to the manifest, exactly like a monolithic dump header.
	Meta Meta
}

// segmentInfo is one sealed segment's manifest entry.
type segmentInfo struct {
	File    string             `json:"file"`
	Records int                `json:"records"`
	First   time.Time          `json:"first"`
	Last    time.Time          `json:"last"`
	Kinds   map[event.Kind]int `json:"kinds"`
}

// manifest is the directory-level metadata file.
type manifest struct {
	Format   string        `json:"format"`
	Version  int           `json:"version"`
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	Seed     int64         `json:"seed"`
	Records  int           `json:"records"`
	Segments []segmentInfo `json:"segments"`
}

// spillState is the segmented half of a Store. During the build phase it
// tracks segments handed to the writer pool and the byte-size estimate;
// after Seal the cache serves every read.
type spillState struct {
	cfg SpillConfig
	// segs lists sealed, spilled segments in time order. During an async
	// build it is empty; finishSpill assembles it from results after the
	// pipeline drains.
	segs []segmentInfo
	// spilled is the total record count handed to the pipeline.
	spilled int
	// seq numbers the next segment (0-based).
	seq int
	// buildKinds is the running kind tally of everything handed to the
	// pipeline, so build-phase KindCounts does not depend on which
	// segments the writers have finished.
	buildKinds map[event.Kind]int
	// encBytes/encRecords accumulate measured pre-compression encode
	// sizes, driving the SegmentBytes estimate. Atomics: writers add,
	// the append goroutine reads in shouldSeal. The estimate lags the
	// pipeline by however many segments are in flight, which only makes
	// byte-based sealing more conservative during ramp-up.
	encBytes   atomic.Int64
	encRecords atomic.Int64

	// Writer pool, started lazily at the first segment seal. work is the
	// bounded handoff (cap = pool size — the append goroutine blocks
	// rather than letting unwritten segments pile up in RAM); free
	// recycles cleared backing arrays so steady-state appends never
	// allocate a segment.
	work chan spillJob
	free chan []event.Event
	wg   sync.WaitGroup

	// resMu guards results: seq → outcome, consumed by finishSpill.
	resMu   sync.Mutex
	results map[int]spillResult

	// failed flips on the first write error; Append checks it so the
	// error surfaces at the next append, not segments later. firstErr
	// keeps the lowest-index error (workers may fail out of order).
	failed  atomic.Bool
	werrMu  sync.Mutex
	werr    error
	werrSeq int

	// finished flips when Seal writes the manifest; from then on reads go
	// through the cache. Published by Seal's release-store like the rest
	// of the sealed state.
	finished bool
	cache    *segCache
}

// spillJob is one filled segment in flight to the writer pool. The
// events slice is owned by the worker until it lands on free.
type spillJob struct {
	seq    int
	events []event.Event
	info   segmentInfo
}

// spillResult is one worker's outcome, keyed by segment sequence.
type spillResult struct {
	info segmentInfo
	err  error
}

// recordErr notes a segment write failure, keeping the lowest-index one.
func (sp *spillState) recordErr(seq int, err error) {
	sp.werrMu.Lock()
	if sp.werr == nil || seq < sp.werrSeq {
		sp.werr, sp.werrSeq = err, seq
	}
	sp.werrMu.Unlock()
	sp.failed.Store(true)
}

// firstErr returns the lowest-index segment write error, if any.
func (sp *spillState) firstErr() error {
	if !sp.failed.Load() {
		return nil
	}
	sp.werrMu.Lock()
	defer sp.werrMu.Unlock()
	return sp.werr
}

// EnableSpill switches an empty, unsealed store into segmented
// spill-to-disk mode. It must be called before the first Append (the
// segment sequence must cover the whole log) and follows the build-phase
// contract: writer goroutine only.
func (s *Store) EnableSpill(cfg SpillConfig) error {
	if s.sealed.Load() {
		return fmt.Errorf("logstore: EnableSpill on sealed store")
	}
	if len(s.events) > 0 {
		return fmt.Errorf("logstore: EnableSpill after %d appends (must precede the first)", len(s.events))
	}
	if s.spill != nil {
		return fmt.Errorf("logstore: EnableSpill called twice")
	}
	if cfg.Dir == "" {
		return fmt.Errorf("logstore: EnableSpill requires a directory")
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = DefaultSegmentRecords
	}
	if cfg.CacheSegments <= 0 {
		cfg.CacheSegments = DefaultCacheSegments
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	if cfg.ScanWorkers <= 0 {
		cfg.ScanWorkers = 1
	}
	if cfg.GzipLevel == 0 {
		cfg.GzipLevel = gzip.BestSpeed
	}
	if cfg.GzipLevel < gzip.HuffmanOnly || cfg.GzipLevel > gzip.BestCompression {
		return fmt.Errorf("logstore: invalid gzip level %d", cfg.GzipLevel)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("logstore: spill dir: %w", err)
	}
	s.spill = &spillState{cfg: cfg, buildKinds: make(map[event.Kind]int, 32)}
	return nil
}

// Spilling reports whether the store is in segmented spill-to-disk mode
// (either phase).
func (s *Store) Spilling() bool { return s.spill != nil }

// Segmented reports whether the sealed store serves its records from
// spilled segment files through the cache rather than from RAM.
func (s *Store) Segmented() bool { return s.spill != nil && s.spill.finished }

// SegmentCount returns the number of sealed, spilled segments.
func (s *Store) SegmentCount() int {
	if s.spill == nil {
		return 0
	}
	return len(s.spill.segs)
}

// shouldSeal reports whether the active segment has reached a spill
// threshold.
func (sp *spillState) shouldSeal(active int) bool {
	if active >= sp.cfg.SegmentRecords {
		return true
	}
	if sp.cfg.SegmentBytes > 0 {
		if recs := sp.encRecords.Load(); recs > 0 {
			avg := sp.encBytes.Load() / recs
			if int64(active)*avg >= sp.cfg.SegmentBytes {
				return true
			}
		}
	}
	return false
}

// startWriters arms the background encode/write pool. Lazy: stores that
// never fill a segment never spawn goroutines.
func (sp *spillState) startWriters() {
	w := sp.cfg.Writers
	sp.work = make(chan spillJob, w)
	// One array per in-flight job (queued + being written) plus the
	// active segment can circulate; size free so a cleared array is
	// never dropped and re-allocated.
	sp.free = make(chan []event.Event, 2*w+2)
	sp.results = make(map[int]spillResult, 64)
	sp.wg.Add(w)
	for i := 0; i < w; i++ {
		go sp.writeLoop()
	}
}

func (sp *spillState) writeLoop() {
	defer sp.wg.Done()
	for job := range sp.work {
		raw, err := writeSegmentFile(filepath.Join(sp.cfg.Dir, job.info.File), job.events, job.info, sp.cfg)
		if err != nil {
			err = fmt.Errorf("segment %s (index %d): %w", job.info.File, job.seq+1, err)
			sp.recordErr(job.seq, err)
		} else {
			sp.encBytes.Add(raw)
			sp.encRecords.Add(int64(job.info.Records))
		}
		sp.resMu.Lock()
		sp.results[job.seq] = spillResult{info: job.info, err: err}
		sp.resMu.Unlock()
		// Recycle the backing array to the append goroutine. Cleared
		// first so spilled records become collectable even while the
		// array waits on the free list.
		clearEvents(job.events)
		select {
		case sp.free <- job.events[:0]:
		default:
		}
	}
}

// spillActive hands the filled active segment to the writer pool and
// swaps in a recycled backing array, so the append goroutine pays only
// the kind tally and the channel send — the JSON encode, compression,
// and disk write happen on the pool. Blocks only when every writer is
// busy and the queue is full (backpressure: unwritten segments must not
// accumulate in RAM). No-op when the active segment is empty.
func (s *Store) spillActive() error {
	sp := s.spill
	if err := sp.firstErr(); err != nil {
		return err
	}
	n := len(s.events)
	if n == 0 {
		return nil
	}
	if sp.work == nil {
		sp.startWriters()
	}
	name := fmt.Sprintf("seg-%06d.ndjson", sp.seq+1)
	if sp.cfg.Compress {
		name += ".gz"
	}
	info := segmentInfo{
		File:    name,
		Records: n,
		First:   s.events[0].When(),
		Last:    s.last,
		Kinds:   make(map[event.Kind]int, 32),
	}
	for _, e := range s.events {
		info.Kinds[e.EventKind()]++
		sp.buildKinds[e.EventKind()]++
	}
	sp.work <- spillJob{seq: sp.seq, events: s.events, info: info}
	sp.seq++
	sp.spilled += n
	var next []event.Event
	select {
	case next = <-sp.free:
	default:
		// Pool ramp-up (or a dropped array under a full free list):
		// allocate a fresh segment at the same capacity.
		next = make([]event.Event, 0, cap(s.events))
	}
	s.events = next
	return nil
}

// clearEvents zeroes the slice so spilled records become collectable even
// while the backing array is reused.
func clearEvents(events []event.Event) {
	for i := range events {
		events[i] = nil
	}
}

// writeSegmentFile dumps one segment in the version-2 wire format, header
// start/end being the segment's own record-time bounds. It returns the
// pre-compression encoded size (feeding the SegmentBytes estimate).
func writeSegmentFile(path string, events []event.Event, info segmentInfo, cfg SpillConfig) (rawBytes int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("logstore: close %s: %w", path, cerr)
		}
	}()
	var w io.Writer = f
	var zw *gzip.Writer
	if cfg.Compress {
		level := cfg.GzipLevel
		if level == 0 {
			// Direct callers (tests) that skip EnableSpill's defaulting
			// still get the spill-path default.
			level = gzip.BestSpeed
		}
		zw, err = gzip.NewWriterLevel(f, level)
		if err != nil {
			return 0, err
		}
		w = zw
	}
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<20)}
	ew := newEnvelopeWriter(cw)
	if err := ew.enc.Encode(header{
		Format:  FormatName,
		Version: FormatVersion,
		Records: info.Records,
		Start:   info.First,
		End:     info.Last,
		Seed:    cfg.Meta.Seed,
	}); err != nil {
		return 0, err
	}
	for _, e := range events {
		if err := ew.writeEvent(e); err != nil {
			return 0, err
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return 0, err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return 0, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// finishSpill flushes the final partial segment, drains the writer pool,
// surfaces the first write error, writes the manifest, and arms the
// segment cache. Called by Seal with the store still unsealed.
func (s *Store) finishSpill() error {
	sp := s.spill
	if err := s.spillActive(); err != nil {
		return err
	}
	if sp.work != nil {
		close(sp.work)
		sp.wg.Wait()
		sp.work = nil
		sp.free = nil
	}
	if err := sp.firstErr(); err != nil {
		return err
	}
	// Assemble the manifest in segment order from the pool's results.
	sp.segs = make([]segmentInfo, 0, sp.seq)
	for i := 0; i < sp.seq; i++ {
		res, ok := sp.results[i]
		if !ok || res.err != nil {
			return fmt.Errorf("segment %d missing from writer results", i+1)
		}
		sp.segs = append(sp.segs, res.info)
	}
	sp.results = nil
	m := manifest{
		Format:   SegmentFormatName,
		Version:  SegmentFormatVersion,
		Start:    sp.cfg.Meta.Start,
		End:      sp.cfg.Meta.End,
		Seed:     sp.cfg.Meta.Seed,
		Records:  sp.spilled,
		Segments: sp.segs,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(sp.cfg.Dir, ManifestName), data, 0o644); err != nil {
		return err
	}
	// Release the active segment's backing array: the sealed store reads
	// from disk only.
	s.events = nil
	sp.cache = newSegCache(sp.cfg.Dir, sp.segs, effectiveCache(sp.cfg))
	sp.finished = true
	return nil
}

// effectiveCache sizes the decoded-segment cache: at least the configured
// bound, and at least the decode-ahead window plus the segment being
// folded — a scan must never evict its own prefetches.
func effectiveCache(cfg SpillConfig) int {
	n := cfg.CacheSegments
	if w := cfg.ScanWorkers + 1; w > n {
		n = w
	}
	return n
}

// scan streams every spilled segment through fn in log order. Up to
// ScanWorkers segments decode ahead in the background while the current
// one is folded; delivery stays strictly in segment order, so
// float-summation order — and with it report byte-identity — is
// untouched by the parallelism.
func (sp *spillState) scan(fn func(event.Event)) {
	sp.scanSegments(func(_ int, events []event.Event) {
		for _, e := range events {
			fn(e)
		}
	})
}

// scanSegments delivers whole decoded segments (with their index) in
// order — the hook core uses to fold per-segment shards without a second
// decode pass.
func (sp *spillState) scanSegments(fn func(seg int, events []event.Event)) {
	ahead := sp.cfg.ScanWorkers
	if ahead < 1 {
		ahead = 1
	}
	for i := range sp.segs {
		for j := i + 1; j <= i+ahead && j < len(sp.segs); j++ {
			sp.cache.prefetch(j)
		}
		fn(i, sp.cache.get(i))
	}
}

// scanKind is scan restricted to one record kind, skipping segments whose
// manifest shows none of it. The decode-ahead window walks the same
// skip-list: only segments that hold k are prefetched.
func (sp *spillState) scanKind(k event.Kind, fn func(event.Event)) {
	ahead := sp.cfg.ScanWorkers
	if ahead < 1 {
		ahead = 1
	}
	for i, seg := range sp.segs {
		if seg.Kinds[k] == 0 {
			continue
		}
		queued := 0
		for j := i + 1; j < len(sp.segs) && queued < ahead; j++ {
			if sp.segs[j].Kinds[k] > 0 {
				sp.cache.prefetch(j)
				queued++
			}
		}
		for _, e := range sp.cache.get(i) {
			if e.EventKind() == k {
				fn(e)
			}
		}
	}
}

// between materializes the [from, to) window across segments, skipping
// segments wholly outside it.
func (sp *spillState) between(from, to time.Time) []event.Event {
	var out []event.Event
	for i, seg := range sp.segs {
		if seg.Last.Before(from) || !seg.First.Before(to) {
			continue
		}
		evs := sp.cache.get(i)
		lo := sort.Search(len(evs), func(j int) bool { return !evs[j].When().Before(from) })
		hi := sort.Search(len(evs), func(j int) bool { return !evs[j].When().Before(to) })
		out = append(out, evs[lo:hi]...)
	}
	return out
}

// segCache is a small LRU of decoded segments, safe for the sealed phase's
// concurrent readers. Concurrent requests for the same segment share one
// decode (the loser waits on the winner's ready channel), and prefetch is
// just a load nobody waits for.
type segCache struct {
	dir  string
	segs []segmentInfo
	max  int

	mu      sync.Mutex
	entries map[int]*cacheEntry
	// order holds fully-loaded entry indices, LRU first. In-flight loads
	// are not evictable, so membership here implies ready is closed.
	order []int

	// Diagnostics counters (SegmentCacheStats).
	hits      atomic.Int64
	misses    atomic.Int64
	dedup     atomic.Int64
	evictions atomic.Int64
}

// SegmentCacheStats reports decoded-segment cache traffic since Seal (or
// directory open): cache hits, decode misses, prefetches deduplicated
// against an in-flight or resident entry, and evictions. analyze prints
// them so scan-pattern regressions (thrash, dead prefetch) are visible.
type SegmentCacheStats struct {
	Hits            int64
	Misses          int64
	PrefetchDeduped int64
	Evictions       int64
}

// SegmentCacheStats returns cache counters for a segmented store; zero
// for stores without one.
func (s *Store) SegmentCacheStats() SegmentCacheStats {
	sp := s.spill
	if sp == nil || sp.cache == nil {
		return SegmentCacheStats{}
	}
	c := sp.cache
	return SegmentCacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		PrefetchDeduped: c.dedup.Load(),
		Evictions:       c.evictions.Load(),
	}
}

type cacheEntry struct {
	ready  chan struct{}
	events []event.Event
	err    error
}

func newSegCache(dir string, segs []segmentInfo, max int) *segCache {
	if max < 1 {
		max = 1
	}
	return &segCache{dir: dir, segs: segs, max: max, entries: make(map[int]*cacheEntry)}
}

// get returns segment i's decoded records, loading and caching on miss.
// Segment files are written by this process or verified at directory open,
// so a read failure here is real I/O corruption and panics like any other
// violated store invariant.
func (c *segCache) get(i int) []event.Event {
	evs, err := c.load(i)
	if err != nil {
		panic(fmt.Sprintf("logstore: segment %s: %v", c.segs[i].File, err))
	}
	return evs
}

func (c *segCache) load(i int) ([]event.Event, error) {
	c.mu.Lock()
	if e, ok := c.entries[i]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		c.touch(i)
		return e.events, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[i] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.events, e.err = decodeSegmentFile(filepath.Join(c.dir, c.segs[i].File), c.segs[i])
	close(e.ready)

	c.mu.Lock()
	c.order = append(c.order, i)
	for len(c.order) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return e.events, e.err
}

// touch marks i most-recently-used.
func (c *segCache) touch(i int) {
	c.mu.Lock()
	for j, v := range c.order {
		if v == i {
			c.order = append(append(c.order[:j:j], c.order[j+1:]...), i)
			break
		}
	}
	c.mu.Unlock()
}

// prefetch starts loading segment i in the background unless it is already
// present or the cache is too small to hold a readahead slot.
func (c *segCache) prefetch(i int) {
	if c.max < 2 {
		return
	}
	c.mu.Lock()
	_, ok := c.entries[i]
	c.mu.Unlock()
	if ok {
		c.dedup.Add(1)
		return
	}
	go c.load(i)
}

// decodeSegmentFile strictly decodes one segment and cross-checks it
// against its manifest entry.
func decodeSegmentFile(path string, want segmentInfo) ([]event.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	plain, closeFn, err := sniffGzip(f)
	if err != nil {
		return nil, err
	}
	defer closeFn()
	// Inline decode: segment loads already run on the analysis worker
	// pool, so sharding inside one segment would just oversubscribe.
	events, _, err := decodeNDJSON(plain, ReadOptions{Shards: 1})
	if err != nil {
		return nil, err
	}
	if len(events) != want.Records {
		return nil, fmt.Errorf("holds %d records, manifest declares %d", len(events), want.Records)
	}
	return events, nil
}

// OpenSegmentDir opens a spilled segment directory as a sealed virtual
// store. Every segment is decoded once up front — re-verifying per-segment
// time order, record counts against headers and manifest, and
// cross-segment monotonicity — then discarded; reads stream segments back
// through a bounded cache, so peak RAM stays O(segment), not O(world).
//
// Strict mode fails on the first problem. With SkipCorrupt, a bad segment
// (any malformed line, count mismatch, or disorder against its
// predecessor) is dropped whole and reported in ReadStats.SegmentsDropped
// — never silently.
func OpenSegmentDir(dir string, opts ReadOptions) (*Store, *ReadStats, error) {
	st := &ReadStats{}
	man, segs, err := loadSegmentList(dir, st, opts)
	if err != nil {
		return nil, nil, err
	}
	if len(segs) == 0 && st.SegmentsDropped == 0 {
		return nil, nil, fmt.Errorf("logstore: %s: no segment files (not a segment directory?)", dir)
	}

	// Verification pass: decode every segment once, in parallel workers,
	// rebuilding its manifest entry from the records themselves.
	type checked struct {
		info segmentInfo
		err  error
	}
	results := make([]checked, len(segs))
	workers := opts.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				info, err := verifySegment(dir, segs[i])
				results[i] = checked{info: info, err: err}
			}
		}()
	}
	for i := range segs {
		work <- i
	}
	close(work)
	wg.Wait()

	// Keep verified segments that also respect cross-segment monotonicity
	// (segment i must start no earlier than segment i-1 ended).
	var kept []segmentInfo
	var last time.Time
	for i, res := range results {
		if res.err == nil && len(kept) > 0 && res.info.Records > 0 && res.info.First.Before(last) {
			res.err = fmt.Errorf("starts at %s, before predecessor's last record at %s",
				res.info.First, last)
		}
		if res.err != nil {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: segment %s: %w", segs[i].File, res.err)
			}
			st.SegmentsDropped++
			st.Dropped += segs[i].Records
			if segs[i].Records == 0 {
				st.Dropped += res.info.Records
			}
			continue
		}
		if res.info.Records == 0 {
			continue // empty segment: legal, nothing to serve
		}
		kept = append(kept, res.info)
		last = res.info.Last
		st.Records += res.info.Records
	}

	st.Segments = len(kept)
	if man != nil {
		st.Meta = Meta{Start: man.Start, End: man.End, Seed: man.Seed}
	}
	if len(kept) > 0 {
		st.First = kept[0].First
		st.Last = kept[len(kept)-1].Last
	}

	cacheN := opts.CacheSegments
	if cacheN <= 0 {
		cacheN = DefaultCacheSegments
	}
	scanW := opts.ScanWorkers
	if scanW <= 0 {
		scanW = 1
	}
	cfg := SpillConfig{Dir: dir, CacheSegments: cacheN, ScanWorkers: scanW, Meta: st.Meta}
	s := &Store{spill: &spillState{
		cfg:      cfg,
		segs:     kept,
		spilled:  st.Records,
		finished: true,
		cache:    newSegCache(dir, kept, effectiveCache(cfg)),
	}}
	s.sealed.Store(true)
	return s, st, nil
}

// loadSegmentList reads the manifest, falling back to globbing segment
// files (manifest-less directories are served with zero Meta). The
// returned entries carry manifest expectations where known; Records is 0
// for globbed files until verification fills it in.
func loadSegmentList(dir string, st *ReadStats, opts ReadOptions) (*manifest, []segmentInfo, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err == nil {
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil || m.Format != SegmentFormatName {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: %s/%s: malformed manifest", dir, ManifestName)
			}
		} else if m.Version != SegmentFormatVersion {
			return nil, nil, fmt.Errorf("logstore: %s: unsupported segment layout version %d (reader speaks %d)",
				dir, m.Version, SegmentFormatVersion)
		} else {
			return &m, m.Segments, nil
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson*"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(matches)
	segs := make([]segmentInfo, 0, len(matches))
	for _, m := range matches {
		segs = append(segs, segmentInfo{File: filepath.Base(m)})
	}
	return nil, segs, nil
}

// verifySegment fully decodes one segment in strict mode and rebuilds its
// manifest entry from the records; any discrepancy with the manifest's
// expectations condemns the segment.
func verifySegment(dir string, want segmentInfo) (segmentInfo, error) {
	f, err := os.Open(filepath.Join(dir, want.File))
	if err != nil {
		return segmentInfo{}, err
	}
	defer f.Close()
	plain, closeFn, err := sniffGzip(f)
	if err != nil {
		return segmentInfo{}, err
	}
	defer closeFn()
	events, _, err := decodeNDJSON(plain, ReadOptions{Shards: 1})
	if err != nil {
		return segmentInfo{}, err
	}
	info := segmentInfo{File: want.File, Records: len(events), Kinds: make(map[event.Kind]int, 32)}
	if len(events) > 0 {
		info.First = events[0].When()
		info.Last = events[len(events)-1].When()
	}
	for _, e := range events {
		info.Kinds[e.EventKind()]++
	}
	// A globbed entry (no manifest) has Records == 0 and File only; a
	// manifest entry must agree with the file's actual contents.
	if want.Records != 0 || !want.First.IsZero() {
		switch {
		case info.Records != want.Records:
			return info, fmt.Errorf("holds %d records, manifest declares %d", info.Records, want.Records)
		case !info.First.Equal(want.First) || !info.Last.Equal(want.Last):
			return info, fmt.Errorf("record time bounds [%s, %s] disagree with manifest [%s, %s]",
				info.First, info.Last, want.First, want.Last)
		}
	}
	return info, nil
}

// ResegmentNDJSONFile streams a monolithic dump into a fresh segment
// directory, returning the sealed segmented store. Unlike ReadNDJSONFile
// the decode is sequential and line-at-a-time, so peak RAM is one segment
// — this is how cmd/analyze ingests a dump bigger than memory.
func ResegmentNDJSONFile(path string, cfg SpillConfig, opts ReadOptions) (*Store, *ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	plain, closeFn, err := sniffGzip(f)
	if err != nil {
		return nil, nil, err
	}
	defer closeFn()

	sc := bufio.NewScanner(plain)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	st := &ReadStats{}
	s := New()
	spillArmed := false
	arm := func() error {
		if spillArmed {
			return nil
		}
		spillArmed = true
		return s.EnableSpill(cfg)
	}

	line := 0
	headerRecords := -1
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			sawHeader = true
			var h header
			if json.Unmarshal(raw, &h) == nil && h.Format == FormatName {
				if h.Version != FormatVersion {
					return nil, nil, fmt.Errorf("logstore: line %d: unsupported dump version %d (reader speaks %d)",
						line, h.Version, FormatVersion)
				}
				headerRecords = h.Records
				st.Meta = Meta{Start: h.Start, End: h.End, Seed: h.Seed}
				// The segment directory inherits the dump's provenance
				// unless the caller pinned its own.
				if cfg.Meta == (Meta{}) {
					cfg.Meta = st.Meta
				}
				continue
			}
			st.Legacy = true
		}
		if err := arm(); err != nil {
			return nil, nil, err
		}
		e, err := decodeLine(raw)
		if err != nil {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: line %d: %w", line, err)
			}
			st.Dropped++
			continue
		}
		if st.Records > 0 && e.When().Before(st.Last) {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: line %d: out-of-order record: %s at %s after %s",
					line, e.EventKind(), e.When(), st.Last)
			}
			st.OutOfOrder++
			continue
		}
		s.Append(e)
		if st.Records == 0 {
			st.First = e.When()
		}
		st.Last = e.When()
		st.Records++
	}
	if err := sc.Err(); err != nil {
		if !opts.SkipCorrupt {
			return nil, nil, fmt.Errorf("logstore: line %d: %w", line+1, err)
		}
		st.Truncated = true
	}
	if headerRecords >= 0 {
		accounted := st.Records + st.Dropped + st.OutOfOrder
		if accounted < headerRecords {
			if !opts.SkipCorrupt {
				return nil, nil, fmt.Errorf("logstore: dump truncated: header declares %d records, input held %d",
					headerRecords, accounted)
			}
			st.Missing = headerRecords - accounted
		} else if accounted > headerRecords && !opts.SkipCorrupt {
			return nil, nil, fmt.Errorf("logstore: header declares %d records, input held %d (concatenated dumps?)",
				headerRecords, accounted)
		}
	}
	if err := arm(); err != nil {
		return nil, nil, err
	}
	s.Seal()
	st.Segments = s.SegmentCount()
	return s, st, nil
}
