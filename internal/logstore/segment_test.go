package logstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
)

// spilledMixedStore is mixedStore built in spill mode.
func spilledMixedStore(t *testing.T, n int, cfg SpillConfig) *Store {
	t.Helper()
	s := New()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if err := s.EnableSpill(cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		s.Append(login(at, identity.AccountID(i%13+1), event.ActorOwner))
		if i%3 == 0 {
			s.Append(event.Search{Base: event.Base{Time: at}, Account: 1, Query: "bank"})
		}
		if i%7 == 0 {
			s.Append(event.MoneyWired{Base: event.Base{Time: at}, VictimAccount: 1, Amount: 10})
		}
	}
	return s
}

// assertStoresEqual checks every read path of got against want record for
// record. Both stores must be sealed.
func assertStoresEqual(t *testing.T, got, want *Store) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	var gotEvents, wantEvents []event.Event
	got.Scan(func(e event.Event) { gotEvents = append(gotEvents, e) })
	want.Scan(func(e event.Event) { wantEvents = append(wantEvents, e) })
	if !reflect.DeepEqual(gotEvents, wantEvents) {
		t.Fatalf("Scan diverges: %d vs %d records", len(gotEvents), len(wantEvents))
	}
	if g, w := Select[event.Login](got), Select[event.Login](want); !reflect.DeepEqual(g, w) {
		t.Fatalf("Select[Login] diverges: %d vs %d", len(g), len(w))
	}
	if g, w := Select[event.MoneyWired](got), Select[event.MoneyWired](want); !reflect.DeepEqual(g, w) {
		t.Fatalf("Select[MoneyWired] diverges: %d vs %d", len(g), len(w))
	}
	pred := func(l event.Login) bool { return l.Account == 3 }
	if g, w := SelectWhere(got, pred), SelectWhere(want, pred); !reflect.DeepEqual(g, w) {
		t.Fatalf("SelectWhere diverges: %d vs %d", len(g), len(w))
	}
	from, to := t0.Add(30*time.Second), t0.Add(200*time.Second)
	if g, w := got.Between(from, to), want.Between(from, to); !reflect.DeepEqual(g, w) {
		t.Fatalf("Between diverges: %d vs %d", len(g), len(w))
	}
	if g, w := got.KindCounts(), want.KindCounts(); !reflect.DeepEqual(g, w) {
		t.Fatalf("KindCounts diverges: %v vs %v", g, w)
	}
	if g, w := got.SortedKinds(), want.SortedKinds(); !reflect.DeepEqual(g, w) {
		t.Fatalf("SortedKinds diverges: %v vs %v", g, w)
	}
	key := func(e event.Event) (event.Kind, bool) { return e.EventKind(), true }
	if g, w := CountBy(got, key), CountBy(want, key); !reflect.DeepEqual(g, w) {
		t.Fatalf("CountBy diverges: %v vs %v", g, w)
	}
}

// Every read path of a spilled store must answer exactly like the in-RAM
// store that saw the same appends — the store-level half of the segmented
// parity guarantee.
func TestSpilledReadsMatchMonolithic(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			mono := mixedStore(900)
			mono.Seal()
			// Small segments and a tiny cache force constant eviction and
			// reload during the comparison.
			spilled := spilledMixedStore(t, 900, SpillConfig{
				SegmentRecords: 97,
				CacheSegments:  2,
				Compress:       compress,
			})
			spilled.Seal()
			if !spilled.Segmented() {
				t.Fatal("spilled store not segmented after Seal")
			}
			if spilled.SegmentCount() < 3 {
				t.Fatalf("only %d segments; the test needs several", spilled.SegmentCount())
			}
			assertStoresEqual(t, spilled, mono)
		})
	}
}

// Appending exactly k*threshold records must produce exactly k segments,
// each holding exactly threshold records — the record on the seal
// threshold lands in the segment it filled, never duplicated into or lost
// from the next.
func TestSegmentBoundaryExact(t *testing.T) {
	const threshold = 50
	dir := t.TempDir()
	s := New()
	if err := s.EnableSpill(SpillConfig{Dir: dir, SegmentRecords: threshold}); err != nil {
		t.Fatal(err)
	}
	const n = 3 * threshold
	for i := 0; i < n; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i+1), event.ActorOwner))
	}
	s.Seal()
	if s.SegmentCount() != 3 {
		t.Fatalf("%d records at threshold %d made %d segments, want 3", n, threshold, s.SegmentCount())
	}
	for i, seg := range s.spill.segs {
		if seg.Records != threshold {
			t.Fatalf("segment %d holds %d records, want %d", i, seg.Records, threshold)
		}
	}
	// Nothing lost, nothing duplicated: every account ID 1..n seen once,
	// in order.
	next := identity.AccountID(1)
	s.Scan(func(e event.Event) {
		if e.(event.Login).Account != next {
			t.Fatalf("scan saw account %d, want %d", e.(event.Login).Account, next)
		}
		next++
	})
	if int(next-1) != n {
		t.Fatalf("scan visited %d records, want %d", next-1, n)
	}

	// One past the threshold spills a fourth, single-record segment.
	s2 := New()
	if err := s2.EnableSpill(SpillConfig{Dir: t.TempDir(), SegmentRecords: threshold}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n+1; i++ {
		s2.Append(login(t0.Add(time.Duration(i)*time.Second), identity.AccountID(i+1), event.ActorOwner))
	}
	s2.Seal()
	if s2.SegmentCount() != 4 {
		t.Fatalf("threshold+1 made %d segments, want 4", s2.SegmentCount())
	}
	if last := s2.spill.segs[3]; last.Records != 1 {
		t.Fatalf("final segment holds %d records, want 1", last.Records)
	}
}

// A spilling store must never hold more than one segment's worth of
// records in RAM, even when the caller reserves a whole-world estimate —
// the Reserve/expectedEvents interplay that would otherwise defeat the
// memory bound.
func TestSpillBoundsActiveCapacity(t *testing.T) {
	s := New()
	if err := s.EnableSpill(SpillConfig{Dir: t.TempDir(), SegmentRecords: 100}); err != nil {
		t.Fatal(err)
	}
	s.Reserve(1_000_000)
	if c := cap(s.events); c > 100 {
		t.Fatalf("Reserve grew the active segment to cap %d, want <= 100", c)
	}
	for i := 0; i < 950; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Second), 1, event.ActorOwner))
		if c := cap(s.events); c > 128 {
			t.Fatalf("active segment cap grew to %d after %d appends, want <= 128", c, i+1)
		}
	}
	s.Seal()
	if s.Len() != 950 {
		t.Fatalf("Len = %d, want 950", s.Len())
	}
}

// Reopening a spill directory must serve exactly what was spilled, with
// the manifest metadata intact — and ReadNDJSONFile must route directory
// paths there transparently.
func TestOpenSegmentDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{Start: t0, End: t0.Add(time.Hour), Seed: 99}
	orig := spilledMixedStore(t, 700, SpillConfig{Dir: dir, SegmentRecords: 128, Compress: true, Meta: meta})
	orig.Seal()

	got, st, err := ReadNDJSONFile(dir, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Segmented() || !got.Sealed() {
		t.Fatal("reopened store should be sealed and segmented")
	}
	if st.Records != orig.Len() {
		t.Fatalf("stats report %d records, want %d", st.Records, orig.Len())
	}
	if st.Segments != orig.SegmentCount() {
		t.Fatalf("stats report %d segments, want %d", st.Segments, orig.SegmentCount())
	}
	if st.Meta != meta {
		t.Fatalf("Meta = %+v, want %+v", st.Meta, meta)
	}
	assertStoresEqual(t, got, orig)
}

// A directory with no manifest still opens via the file glob; per-segment
// headers are re-verified in place of manifest expectations.
func TestOpenSegmentDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	orig := spilledMixedStore(t, 400, SpillConfig{Dir: dir, SegmentRecords: 90})
	orig.Seal()
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	got, st, err := OpenSegmentDir(dir, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != orig.Len() {
		t.Fatalf("stats report %d records, want %d", st.Records, orig.Len())
	}
	if !st.Meta.Start.IsZero() {
		t.Fatal("manifest-less open should carry zero Meta")
	}
	assertStoresEqual(t, got, orig)
}

// corruptSegment mangles one line of a segment file in place.
func corruptSegment(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("segment %s too short to corrupt", path)
	}
	lines[2] = "{\"kind\":\"nonsense\"garbage\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A corrupt segment fails a strict open with the segment named; with
// SkipCorrupt the whole segment is dropped, counted in SegmentsDropped and
// Dropped — never silently — and the rest of the log still serves.
func TestOpenSegmentDirCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	orig := spilledMixedStore(t, 500, SpillConfig{Dir: dir, SegmentRecords: 100})
	orig.Seal()
	total := orig.Len()
	nsegs := orig.SegmentCount()
	badRecords := orig.spill.segs[1].Records
	corruptSegment(t, filepath.Join(dir, orig.spill.segs[1].File))

	if _, _, err := OpenSegmentDir(dir, ReadOptions{}); err == nil {
		t.Fatal("strict open of a corrupt segment succeeded")
	} else if !strings.Contains(err.Error(), "seg-000002") {
		t.Fatalf("error does not name the bad segment: %v", err)
	}

	got, st, err := OpenSegmentDir(dir, ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsDropped != 1 {
		t.Fatalf("SegmentsDropped = %d, want 1", st.SegmentsDropped)
	}
	if st.Dropped != badRecords {
		t.Fatalf("Dropped = %d, want the bad segment's %d records", st.Dropped, badRecords)
	}
	if st.Segments != nsegs-1 {
		t.Fatalf("Segments = %d, want %d", st.Segments, nsegs-1)
	}
	if st.Records != total-badRecords {
		t.Fatalf("Records = %d, want %d", st.Records, total-badRecords)
	}
	n := 0
	got.Scan(func(event.Event) { n++ })
	if n != total-badRecords {
		t.Fatalf("scan visited %d records, want %d", n, total-badRecords)
	}
}

// Cross-segment monotonicity: a segment starting before its predecessor
// ended is disorder the per-segment checks cannot see. Strict mode fails;
// SkipCorrupt drops the offender and reports it.
func TestOpenSegmentDirCrossSegmentOrder(t *testing.T) {
	dir := t.TempDir()
	// Two spill dirs with overlapping time ranges, assembled so segment 2
	// starts before segment 1 ended.
	late := spilledMixedStore(t, 200, SpillConfig{Dir: t.TempDir(), SegmentRecords: 1 << 20})
	late.Seal()
	early := spilledMixedStore(t, 50, SpillConfig{Dir: t.TempDir(), SegmentRecords: 1 << 20})
	early.Seal()
	copyFile := func(src, dst string) {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile(filepath.Join(late.spill.cfg.Dir, "seg-000001.ndjson"), filepath.Join(dir, "seg-000001.ndjson"))
	copyFile(filepath.Join(early.spill.cfg.Dir, "seg-000001.ndjson"), filepath.Join(dir, "seg-000002.ndjson"))

	if _, _, err := OpenSegmentDir(dir, ReadOptions{}); err == nil {
		t.Fatal("strict open of disordered segments succeeded")
	} else if !strings.Contains(err.Error(), "before predecessor") {
		t.Fatalf("unexpected error: %v", err)
	}

	got, st, err := OpenSegmentDir(dir, ReadOptions{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsDropped != 1 || st.Segments != 1 {
		t.Fatalf("SegmentsDropped = %d, Segments = %d, want 1 and 1", st.SegmentsDropped, st.Segments)
	}
	if got.Len() != late.Len() {
		t.Fatalf("kept %d records, want the first segment's %d", got.Len(), late.Len())
	}
}

// Streaming a monolithic dump into segments must preserve every record and
// the dump's provenance, without ever materializing the whole log.
func TestResegmentNDJSONFile(t *testing.T) {
	src := mixedStore(600)
	src.Seal()
	path := filepath.Join(t.TempDir(), "dump.ndjson.gz")
	if err := WriteNDJSONFile(path, src, testMeta); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, st, err := ResegmentNDJSONFile(path, SpillConfig{Dir: dir, SegmentRecords: 110}, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != src.Len() || st.Meta != testMeta {
		t.Fatalf("stats = %+v, want %d records with meta %+v", st, src.Len(), testMeta)
	}
	if got.SegmentCount() < 3 {
		t.Fatalf("resegment made %d segments, want several", got.SegmentCount())
	}
	assertStoresEqual(t, got, src)

	// The directory must reopen on its own with the inherited metadata.
	reopened, rst, err := OpenSegmentDir(dir, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rst.Meta != testMeta {
		t.Fatalf("reopened Meta = %+v, want %+v", rst.Meta, testMeta)
	}
	assertStoresEqual(t, reopened, src)
}

// Misuse guards: spill mode rejects late enablement, build-phase scans,
// and Sanitize (spilled segments are immutable).
func TestSpillMisusePanicsAndErrors(t *testing.T) {
	s := New()
	s.Append(login(t0, 1, event.ActorOwner))
	if err := s.EnableSpill(SpillConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("EnableSpill after an append should fail")
	}

	sp := New()
	if err := sp.EnableSpill(SpillConfig{Dir: t.TempDir(), SegmentRecords: 10}); err != nil {
		t.Fatal(err)
	}
	if err := sp.EnableSpill(SpillConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("double EnableSpill should fail")
	}
	for i := 0; i < 25; i++ {
		sp.Append(login(t0.Add(time.Duration(i)*time.Second), 1, event.ActorOwner))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build-phase Scan on a spilling store did not panic")
			}
		}()
		sp.Scan(func(event.Event) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sanitize on a spilling store did not panic")
			}
		}()
		sp.Sanitize(t0.Add(time.Hour), Retention{Window: time.Minute})
	}()
	sp.Seal()
	if !sp.Segmented() {
		t.Fatal("not segmented after Seal")
	}
}
