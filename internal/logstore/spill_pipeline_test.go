package logstore

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"manualhijack/internal/event"
)

// TestScanWorkersMatchSequential hammers the decode-ahead scan: at every
// worker depth, concurrent full scans over a tiny cache (constant eviction
// and reload, prefetches racing folds) must deliver segments strictly in
// order and the exact record sequence of the monolithic store. Run under
// -race this also proves the cache's load/prefetch synchronization.
func TestScanWorkersMatchSequential(t *testing.T) {
	const records = 900
	mono := mixedStore(records)
	mono.Seal()
	var want []event.Event
	mono.Scan(func(e event.Event) { want = append(want, e) })

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := spilledMixedStore(t, records, SpillConfig{
				SegmentRecords: 61,
				CacheSegments:  1, // effectiveCache bumps to workers+1
				ScanWorkers:    workers,
			})
			s.Seal()
			if s.SegmentCount() < 8 {
				t.Fatalf("only %d segments; the hammer needs many", s.SegmentCount())
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lastSeg := -1
					got := make([]event.Event, 0, len(want))
					s.ScanSegments(func(seg int, events []event.Event) {
						if seg <= lastSeg {
							t.Errorf("segment %d delivered after %d", seg, lastSeg)
						}
						lastSeg = seg
						got = append(got, events...)
					})
					if !reflect.DeepEqual(got, want) {
						t.Errorf("decode-ahead scan diverged from monolithic (%d vs %d records)",
							len(got), len(want))
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestSpillAppendSteadyStateAllocs is the async-spill allocation fence:
// once the writer pool's free list is warm, Append inside a segment must
// not allocate at all — the filled-segment handoff recycles backing
// arrays, so the steady-state append path costs a slice store and a tally.
func TestSpillAppendSteadyStateAllocs(t *testing.T) {
	const threshold = 5000
	s := New()
	if err := s.EnableSpill(SpillConfig{Dir: t.TempDir(), SegmentRecords: threshold}); err != nil {
		t.Fatal(err)
	}
	at := t0
	next := func() event.Event {
		at = at.Add(time.Second)
		return login(at, 1, event.ActorOwner)
	}
	// Warm up: four full segments grow the backing array to the segment
	// size and stock the free list.
	for i := 0; i < 4*threshold; i++ {
		s.Append(next())
	}
	// Wait for the writer pool to drain so background encode/write
	// allocations cannot pollute the measurement.
	sp := s.spill
	deadline := time.Now().Add(10 * time.Second)
	for {
		sp.resMu.Lock()
		done := len(sp.results)
		sp.resMu.Unlock()
		if done == sp.seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer pool did not drain: %d of %d segments written", done, sp.seq)
		}
		time.Sleep(time.Millisecond)
	}

	// 3000 runs (+1 warm-up) stay inside the active segment: no seal, no
	// slice growth, so the only legal answer is zero. The record is boxed
	// once outside the loop — equal-time appends are legal, so one record
	// serves every run without a per-run interface allocation.
	var e event.Event = login(at.Add(time.Second), 1, event.ActorOwner)
	allocs := testing.AllocsPerRun(3000, func() { s.Append(e) })
	if allocs != 0 {
		t.Fatalf("steady-state spill Append allocated %.3f times per record, want 0", allocs)
	}
	s.Seal()
}

// TestSpillWriteErrorSurfacesSegment pins the failure contract: a
// background segment write error poisons the log and panics at the next
// append, naming the failed segment file and its 1-based index.
func TestSpillWriteErrorSurfacesSegment(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if err := s.EnableSpill(SpillConfig{Dir: dir, SegmentRecords: 10}); err != nil {
		t.Fatal(err)
	}
	// Yank the directory out from under the writer pool: the first
	// segment's os.Create must fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Append(login(t0.Add(time.Duration(i)*time.Second), 1, event.ActorOwner))
	}
	sp := s.spill
	deadline := time.Now().Add(10 * time.Second)
	for !sp.failed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("writer never reported the failure")
		}
		time.Sleep(time.Millisecond)
	}
	msg := func() (m string) {
		defer func() {
			if r := recover(); r != nil {
				m = fmt.Sprint(r)
			}
		}()
		s.Append(login(t0.Add(time.Minute), 1, event.ActorOwner))
		return ""
	}()
	if msg == "" {
		t.Fatal("append after spill failure did not panic")
	}
	for _, want := range []string{"logstore: spill:", "seg-000001", "(index 1)"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not name %q", msg, want)
		}
	}
}
