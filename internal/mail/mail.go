// Package mail implements the provider's mail service: mailboxes with
// system folders, message delivery across the simulated user base,
// full-text search, filters/forwarding, Reply-To configuration, contact
// lists, spam reporting, and mass deletion with restorable backups.
//
// The mail service is where manual hijackers spend their time: the paper
// shows they assess an account's value by searching the mailbox for
// financial terms and opening significant folders (§5.2, Table 3), exploit
// it by mailing the victim's contacts (§5.3), and hide by creating filters
// and Reply-To redirections (§5.4). Every one of those actions is an event
// in the log store, which is what the measurement pipeline consumes.
package mail

import (
	"strings"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// Message is one stored message. Content is modeled as a set of keyword
// phrases; search matches against them.
type Message struct {
	ID       event.MessageID
	From     identity.Address
	Keywords []string
	Class    event.MessageClass
	Folder   event.Folder
	Starred  bool
	Received time.Time
	PageID   event.PageID // for lures: the linked phishing page
	ReplyTo  identity.Address
	// Forwarded marks messages that a hijacker-created filter diverted.
	Forwarded bool
}

// Filter is a mailbox rule. ForwardTo != "" forwards matching incoming
// mail; ToTrash diverts it to Trash (the hide-in-the-shadows tactic).
type Filter struct {
	ForwardTo identity.Address
	ToTrash   bool
	CreatedBy event.Actor
}

// Mailbox is one account's mail state.
type Mailbox struct {
	Account   identity.AccountID
	messages  map[event.MessageID]*Message
	order     []event.MessageID // delivery order, for deterministic scans
	Filters   []Filter
	ReplyTo   identity.Address
	replyToBy event.Actor
	// backup holds messages removed by MassDelete so Restore can undo the
	// hijacker's deletion (the defense added between 2011 and 2012).
	backup []*Message
	// deletedContacts holds the contact list if a hijacker wiped it.
	deletedContacts []identity.Address
	contactsWiped   bool
}

// Len returns the number of live messages.
func (mb *Mailbox) Len() int { return len(mb.messages) }

// scan iterates live messages in delivery order.
func (mb *Mailbox) scan(fn func(*Message)) {
	for _, id := range mb.order {
		if m, ok := mb.messages[id]; ok {
			fn(m)
		}
	}
}

// CountMatching returns how many live messages match the query. Besides
// plain keyword-phrase matching, two operators from the hijackers'
// observed search terms (Table 3) are supported:
//
//	is:starred                     — starred messages
//	filename:(jpg or jpeg or png)  — any of the listed attachment keywords
func (mb *Mailbox) CountMatching(query string) int {
	match := parseQuery(query)
	n := 0
	mb.scan(func(m *Message) {
		if match(m) {
			n++
		}
	})
	return n
}

// parseQuery compiles a search query into a message predicate.
func parseQuery(query string) func(*Message) bool {
	q := strings.ToLower(strings.TrimSpace(query))
	if q == "is:starred" {
		return func(m *Message) bool { return m.Starred }
	}
	if rest, ok := strings.CutPrefix(q, "filename:"); ok {
		rest = strings.Trim(rest, "() ")
		var terms []string
		for _, part := range strings.Split(rest, " or ") {
			if part = strings.TrimSpace(part); part != "" {
				terms = append(terms, part)
			}
		}
		return func(m *Message) bool {
			for _, t := range terms {
				if keywordContains(m, t) {
					return true
				}
			}
			return false
		}
	}
	return func(m *Message) bool { return keywordContains(m, q) }
}

func keywordContains(m *Message, q string) bool {
	for _, k := range m.Keywords {
		if strings.Contains(strings.ToLower(k), q) {
			return true
		}
	}
	return false
}

// InFolder returns the message IDs in a folder (starred is a flag, not a
// location, mirroring real mail systems).
func (mb *Mailbox) InFolder(f event.Folder) []event.MessageID {
	var out []event.MessageID
	mb.scan(func(m *Message) {
		if f == event.FolderStarred {
			if m.Starred {
				out = append(out, m.ID)
			}
			return
		}
		if m.Folder == f {
			out = append(out, m.ID)
		}
	})
	return out
}

// HasForwardingFilter reports whether any filter forwards mail out.
func (mb *Mailbox) HasForwardingFilter() bool {
	for _, f := range mb.Filters {
		if f.ForwardTo != "" {
			return true
		}
	}
	return false
}

// Service is the mail system shared by the whole world.
type Service struct {
	dir   *identity.Directory
	clock *simtime.Clock
	log   *logstore.Store

	boxes   map[identity.AccountID]*Mailbox
	nextMsg event.MessageID

	// deliveryHook, when set, observes every message delivered to a
	// provider mailbox (the victim agents react to scams/phish this way).
	deliveryHook func(rcpt identity.AccountID, m *Message)

	// actionHook, when set, observes every in-session mailbox action —
	// the live feed for online behavioral risk analysis (§8.2).
	actionHook func(acct identity.AccountID, sess event.SessionID, a ActionInfo)
}

// ActionInfo describes one observable in-session action for the behavioral
// feed.
type ActionInfo struct {
	Type       string // "search" | "folder_open" | "contacts_view" | "filter_create" | "replyto_set" | "send" | "mass_delete"
	Query      string
	Folder     event.Folder
	Recipients int
	ForwardOut bool
}

// SetDeliveryHook installs the per-delivery observer.
func (s *Service) SetDeliveryHook(fn func(rcpt identity.AccountID, m *Message)) {
	s.deliveryHook = fn
}

// SetActionHook installs the in-session action observer.
func (s *Service) SetActionHook(fn func(acct identity.AccountID, sess event.SessionID, a ActionInfo)) {
	s.actionHook = fn
}

// observe feeds the action hook if installed.
func (s *Service) observe(acct identity.AccountID, sess event.SessionID, a ActionInfo) {
	if s.actionHook != nil && sess != 0 {
		s.actionHook(acct, sess, a)
	}
}

// NewService creates the mail service with empty mailboxes for every
// account in dir.
func NewService(dir *identity.Directory, clock *simtime.Clock, log *logstore.Store) *Service {
	s := &Service{
		dir:   dir,
		clock: clock,
		log:   log,
		boxes: make(map[identity.AccountID]*Mailbox, dir.Len()),
	}
	dir.All(func(a *identity.Account) {
		s.boxes[a.ID] = &Mailbox{
			Account:  a.ID,
			messages: make(map[event.MessageID]*Message),
		}
	})
	return s
}

// Mailbox returns an account's mailbox (nil for unknown accounts).
func (s *Service) Mailbox(id identity.AccountID) *Mailbox { return s.boxes[id] }

// Keyword lexicons used to seed mailbox history. Finance keywords are what
// make an account "valuable" to a manual hijacker (§5.2).
var (
	FinanceKeywords = []string{
		"wire transfer", "bank transfer", "bank", "transferencia", "investment",
		"banco", "账单", "statement", "invoice", "tax", "salary", "signature",
	}
	CredentialKeywords = []string{
		"password", "amazon", "dropbox", "paypal", "match", "ftp", "facebook",
		"skype", "username", "account",
	}
	ContentKeywords = []string{
		"jpg", "mov", "mp4", "3gp", "passport", "sex", "zip", "photo",
		"vacation", "family",
	}
	FillerKeywords = []string{
		"meeting", "lunch", "project", "newsletter", "receipt", "travel",
		"schedule", "party", "homework", "weekend",
	}
)

// SeedConfig controls historical mailbox generation.
type SeedConfig struct {
	// MeanMessages is the mean historical mailbox size.
	MeanMessages int
	// FinanceAccountRate is the fraction of accounts whose history contains
	// financial content (these are the accounts hijackers deem valuable).
	FinanceAccountRate float64
	// StarRate, DraftRate are per-message odds of the flag/folder.
	StarRate  float64
	DraftRate float64
}

// DefaultSeedConfig returns the study's mailbox-history defaults.
func DefaultSeedConfig() SeedConfig {
	return SeedConfig{
		MeanMessages:       60,
		FinanceAccountRate: 0.45,
		StarRate:           0.06,
		DraftRate:          0.04,
	}
}

// Seed populates every mailbox with pre-study message history. It does not
// log events (history predates the measurement window).
func (s *Service) Seed(r *randx.Rand, cfg SeedConfig) {
	gen := r.Fork("mailseed")
	now := s.clock.Now()
	s.dir.All(func(a *identity.Account) {
		mb := s.boxes[a.ID]
		hasFinance := gen.Bool(cfg.FinanceAccountRate)
		n := 1 + gen.Poisson(float64(cfg.MeanMessages))
		for i := 0; i < n; i++ {
			var kw []string
			switch {
			case hasFinance && gen.Bool(0.25):
				kw = []string{randx.Pick(gen, FinanceKeywords), randx.Pick(gen, FillerKeywords)}
			case gen.Bool(0.10):
				kw = []string{randx.Pick(gen, CredentialKeywords)}
			case gen.Bool(0.15):
				kw = []string{randx.Pick(gen, ContentKeywords)}
			default:
				kw = []string{randx.Pick(gen, FillerKeywords)}
			}
			from := a.Addr
			folder := event.FolderInbox
			if len(a.Contacts) > 0 {
				from = randx.Pick(gen, a.Contacts)
			}
			if gen.Bool(cfg.DraftRate) {
				folder = event.FolderDrafts
				from = a.Addr
			} else if gen.Bool(0.3) {
				folder = event.FolderSent
				from = a.Addr
			}
			s.nextMsg++
			m := &Message{
				ID:       s.nextMsg,
				From:     from,
				Keywords: kw,
				Class:    event.ClassOrganic,
				Folder:   folder,
				Starred:  gen.Bool(cfg.StarRate),
				Received: now.Add(-gen.ExpDuration(90 * 24 * time.Hour)),
			}
			mb.messages[m.ID] = m
			mb.order = append(mb.order, m.ID)
		}
	})
}

// SendReq describes an outbound message.
type SendReq struct {
	FromAcct   identity.AccountID // None for external senders (lures, spam)
	FromAddr   identity.Address
	Recipients []identity.Address
	Keywords   []string
	Class      event.MessageClass
	Customized bool
	PageID     event.PageID
	Session    event.SessionID
	Actor      event.Actor
}

// Send delivers a message to every provider recipient and logs it. The
// sender's configured Reply-To (a hijacker retention tactic) is stamped on
// the message. Returns the message ID.
func (s *Service) Send(req SendReq) event.MessageID {
	s.nextMsg++
	id := s.nextMsg
	now := s.clock.Now()

	var replyTo identity.Address
	if req.FromAcct != identity.None {
		if mb := s.boxes[req.FromAcct]; mb != nil {
			replyTo = mb.ReplyTo
			// Record a copy in the sender's Sent folder.
			sent := &Message{
				ID: id, From: req.FromAddr, Keywords: req.Keywords,
				Class: req.Class, Folder: event.FolderSent, Received: now,
				PageID: req.PageID, ReplyTo: replyTo,
			}
			mb.messages[id] = sent
			mb.order = append(mb.order, id)
		}
	}

	for _, rcpt := range req.Recipients {
		rid := s.dir.Lookup(rcpt)
		if rid == identity.None {
			continue // external recipient: delivery is out of scope
		}
		mb := s.boxes[rid]
		copyID := s.nextCopyID()
		m := &Message{
			ID: copyID, From: req.FromAddr, Keywords: req.Keywords,
			Class: req.Class, Folder: event.FolderInbox, Received: now,
			PageID: req.PageID, ReplyTo: replyTo,
		}
		// Apply the recipient's filters (hijacker rules diverting or
		// forwarding incoming mail).
		for _, f := range mb.Filters {
			if f.ToTrash {
				m.Folder = event.FolderTrash
			}
			if f.ForwardTo != "" {
				m.Forwarded = true
			}
		}
		mb.messages[copyID] = m
		mb.order = append(mb.order, copyID)
		if s.deliveryHook != nil {
			s.deliveryHook(rid, m)
		}
	}

	s.log.Append(event.MessageSent{
		Base:       event.Base{Time: now},
		ID:         id,
		From:       req.FromAddr,
		FromAcct:   req.FromAcct,
		Recipients: append([]identity.Address(nil), req.Recipients...),
		Class:      req.Class,
		Customized: req.Customized,
		ReplyTo:    replyTo,
		PageID:     req.PageID,
		Session:    req.Session,
		Actor:      req.Actor,
	})
	s.observe(req.FromAcct, req.Session, ActionInfo{Type: "send", Recipients: len(req.Recipients)})
	return id
}

func (s *Service) nextCopyID() event.MessageID {
	s.nextMsg++
	return s.nextMsg
}

// Search runs a mailbox search, logs it, and returns the number of hits.
func (s *Service) Search(acct identity.AccountID, query string, sess event.SessionID, actor event.Actor) int {
	mb := s.boxes[acct]
	if mb == nil {
		return 0
	}
	s.log.Append(event.Search{
		Base: event.Base{Time: s.clock.Now()}, Account: acct, Query: query,
		Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "search", Query: query})
	return mb.CountMatching(query)
}

// OpenFolder logs a folder view and returns the messages in it.
func (s *Service) OpenFolder(acct identity.AccountID, f event.Folder, sess event.SessionID, actor event.Actor) []event.MessageID {
	mb := s.boxes[acct]
	if mb == nil {
		return nil
	}
	s.log.Append(event.FolderOpened{
		Base: event.Base{Time: s.clock.Now()}, Account: acct, Folder: f,
		Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "folder_open", Folder: f})
	return mb.InFolder(f)
}

// ViewContacts logs a contact-list view and returns the contacts.
func (s *Service) ViewContacts(acct identity.AccountID, sess event.SessionID, actor event.Actor) []identity.Address {
	a := s.dir.Get(acct)
	mb := s.boxes[acct]
	if a == nil || mb == nil {
		return nil
	}
	s.log.Append(event.ContactsViewed{
		Base: event.Base{Time: s.clock.Now()}, Account: acct,
		Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "contacts_view"})
	if mb.contactsWiped {
		return nil
	}
	return a.Contacts
}

// CreateFilter installs a mailbox rule and logs it.
func (s *Service) CreateFilter(acct identity.AccountID, f Filter, sess event.SessionID, actor event.Actor) {
	mb := s.boxes[acct]
	if mb == nil {
		return
	}
	f.CreatedBy = actor
	mb.Filters = append(mb.Filters, f)
	s.log.Append(event.FilterCreated{
		Base: event.Base{Time: s.clock.Now()}, Account: acct,
		ForwardTo: f.ForwardTo, Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "filter_create", ForwardOut: f.ForwardTo != ""})
}

// SetReplyTo configures the outbound Reply-To address and logs it.
func (s *Service) SetReplyTo(acct identity.AccountID, addr identity.Address, sess event.SessionID, actor event.Actor) {
	mb := s.boxes[acct]
	if mb == nil {
		return
	}
	mb.ReplyTo = addr
	mb.replyToBy = actor
	s.log.Append(event.ReplyToSet{
		Base: event.Base{Time: s.clock.Now()}, Account: acct, Addr: addr,
		Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "replyto_set"})
}

// MassDelete removes every message and the contact list, keeping a backup
// for Restore. Returns the number of messages deleted.
func (s *Service) MassDelete(acct identity.AccountID, sess event.SessionID, actor event.Actor) int {
	mb := s.boxes[acct]
	a := s.dir.Get(acct)
	if mb == nil || a == nil {
		return 0
	}
	n := len(mb.messages)
	for _, id := range mb.order {
		if m, ok := mb.messages[id]; ok {
			mb.backup = append(mb.backup, m)
		}
	}
	mb.messages = make(map[event.MessageID]*Message)
	mb.order = nil
	if !mb.contactsWiped {
		mb.deletedContacts = a.Contacts
		a.Contacts = nil
		mb.contactsWiped = true
	}
	s.log.Append(event.MassDeletion{
		Base: event.Base{Time: s.clock.Now()}, Account: acct, Deleted: n,
		Session: sess, Actor: actor,
	})
	s.observe(acct, sess, ActionInfo{Type: "mass_delete"})
	return n
}

// Restore undoes a MassDelete and clears hijacker-created settings
// (filters, Reply-To). It is the remission step added to the recovery flow
// between the 2011 and 2012 observation windows (§5.4, §6.4). It returns
// the number of restored messages and whether settings were cleared.
func (s *Service) Restore(acct identity.AccountID) (restored int, cleared bool) {
	mb := s.boxes[acct]
	a := s.dir.Get(acct)
	if mb == nil || a == nil {
		return 0, false
	}
	for _, m := range mb.backup {
		if _, live := mb.messages[m.ID]; !live {
			mb.messages[m.ID] = m
			mb.order = append(mb.order, m.ID)
			restored++
		}
	}
	mb.backup = nil
	if mb.contactsWiped {
		a.Contacts = mb.deletedContacts
		mb.deletedContacts = nil
		mb.contactsWiped = false
	}
	// Clear hijacker-created settings.
	var keep []Filter
	for _, f := range mb.Filters {
		if f.CreatedBy != event.ActorHijacker {
			keep = append(keep, f)
		} else {
			cleared = true
		}
	}
	mb.Filters = keep
	if mb.replyToBy == event.ActorHijacker {
		mb.ReplyTo = ""
		mb.replyToBy = ""
		cleared = true
	}
	return restored, cleared
}

// ReportSpam logs a recipient flagging a message.
func (s *Service) ReportSpam(reporter identity.AccountID, msgID event.MessageID, from identity.Address, fromAcct identity.AccountID, class event.MessageClass) {
	s.log.Append(event.SpamReported{
		Base: event.Base{Time: s.clock.Now()}, Reporter: reporter,
		Message: msgID, From: from, FromAcct: fromAcct, Class: class,
	})
}

// FinancialValue scores how attractive a mailbox is to a manual hijacker:
// the number of messages carrying financial keywords. The hijacker agent
// uses its *search results* (not this method) to decide; this is the
// ground-truth accessor used by tests and the behavioral detector's
// evaluation.
func (s *Service) FinancialValue(acct identity.AccountID) int {
	mb := s.boxes[acct]
	if mb == nil {
		return 0
	}
	total := 0
	for _, k := range FinanceKeywords {
		total += mb.CountMatching(k)
	}
	return total
}
