package mail

import (
	"testing"
	"testing/quick"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

type fixture struct {
	dir   *identity.Directory
	clock *simtime.Clock
	log   *logstore.Store
	svc   *Service
}

func newFixture(t *testing.T, n int, seed int64) *fixture {
	t.Helper()
	clock := simtime.NewClock(simtime.Epoch)
	cfg := identity.DefaultConfig(simtime.Epoch)
	cfg.N = n
	dir := identity.NewDirectory(randx.New(seed), cfg)
	log := logstore.New()
	svc := NewService(dir, clock, log)
	return &fixture{dir: dir, clock: clock, log: log, svc: svc}
}

func TestSeedPopulatesMailboxes(t *testing.T) {
	f := newFixture(t, 200, 1)
	f.svc.Seed(randx.New(1), DefaultSeedConfig())
	empty := 0
	f.dir.All(func(a *identity.Account) {
		if f.svc.Mailbox(a.ID).Len() == 0 {
			empty++
		}
	})
	if empty > 0 {
		t.Fatalf("%d mailboxes empty after seed", empty)
	}
	if f.log.Len() != 0 {
		t.Fatalf("seeding logged %d events; history must not be logged", f.log.Len())
	}
}

func TestFinanceAccountRate(t *testing.T) {
	f := newFixture(t, 2000, 2)
	f.svc.Seed(randx.New(2), DefaultSeedConfig())
	withFinance := 0
	f.dir.All(func(a *identity.Account) {
		if f.svc.FinancialValue(a.ID) > 0 {
			withFinance++
		}
	})
	rate := float64(withFinance) / 2000
	if rate < 0.35 || rate > 0.60 {
		t.Fatalf("finance-account rate = %.3f, want ~0.45", rate)
	}
}

func TestSendDeliversToProviderRecipients(t *testing.T) {
	f := newFixture(t, 10, 3)
	a, b := f.dir.Get(1), f.dir.Get(2)
	before := f.svc.Mailbox(b.ID).Len()
	f.svc.Send(SendReq{
		FromAcct: a.ID, FromAddr: a.Addr,
		Recipients: []identity.Address{b.Addr, "outsider@web.org"},
		Keywords:   []string{"lunch"}, Class: event.ClassOrganic,
		Actor: event.ActorOwner,
	})
	if got := f.svc.Mailbox(b.ID).Len(); got != before+1 {
		t.Fatalf("recipient mailbox grew by %d, want 1", got-before)
	}
	// Sender keeps a Sent copy.
	if got := len(f.svc.Mailbox(a.ID).InFolder(event.FolderSent)); got != 1 {
		t.Fatalf("sender sent-folder = %d, want 1", got)
	}
	sent := logstore.Select[event.MessageSent](f.log)
	if len(sent) != 1 || len(sent[0].Recipients) != 2 {
		t.Fatalf("sent events = %+v", sent)
	}
}

func TestSearchLogsAndCounts(t *testing.T) {
	f := newFixture(t, 5, 4)
	a := f.dir.Get(1)
	f.svc.Send(SendReq{
		FromAcct: 2, FromAddr: f.dir.Get(2).Addr,
		Recipients: []identity.Address{a.Addr},
		Keywords:   []string{"wire transfer", "urgent"}, Class: event.ClassOrganic,
		Actor: event.ActorOwner,
	})
	hits := f.svc.Search(a.ID, "wire transfer", 1, event.ActorHijacker)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	// Case-insensitive substring match.
	if got := f.svc.Search(a.ID, "WIRE", 1, event.ActorHijacker); got != 1 {
		t.Fatalf("case-insensitive hits = %d, want 1", got)
	}
	searches := logstore.Select[event.Search](f.log)
	if len(searches) != 2 || searches[0].Actor != event.ActorHijacker {
		t.Fatalf("search events = %+v", searches)
	}
}

func TestFolderAndStarredSemantics(t *testing.T) {
	f := newFixture(t, 5, 5)
	mb := f.svc.Mailbox(1)
	// Hand-plant messages.
	mb.messages = map[event.MessageID]*Message{
		1: {ID: 1, Folder: event.FolderInbox, Starred: true},
		2: {ID: 2, Folder: event.FolderDrafts},
		3: {ID: 3, Folder: event.FolderSent, Starred: true},
	}
	mb.order = []event.MessageID{1, 2, 3}
	if got := len(mb.InFolder(event.FolderStarred)); got != 2 {
		t.Fatalf("starred = %d, want 2 (flag spans folders)", got)
	}
	if got := len(mb.InFolder(event.FolderDrafts)); got != 1 {
		t.Fatalf("drafts = %d", got)
	}
	ids := f.svc.OpenFolder(1, event.FolderDrafts, 9, event.ActorHijacker)
	if len(ids) != 1 {
		t.Fatalf("OpenFolder = %v", ids)
	}
	opens := logstore.Select[event.FolderOpened](f.log)
	if len(opens) != 1 || opens[0].Folder != event.FolderDrafts {
		t.Fatalf("folder events = %+v", opens)
	}
}

func TestReplyToStampedOnOutbound(t *testing.T) {
	f := newFixture(t, 5, 6)
	a, b := f.dir.Get(1), f.dir.Get(2)
	f.svc.SetReplyTo(a.ID, "doppel@evil.test", 1, event.ActorHijacker)
	f.svc.Send(SendReq{
		FromAcct: a.ID, FromAddr: a.Addr,
		Recipients: []identity.Address{b.Addr},
		Class:      event.ClassScam, Actor: event.ActorHijacker,
	})
	sent := logstore.Select[event.MessageSent](f.log)
	if sent[0].ReplyTo != "doppel@evil.test" {
		t.Fatalf("ReplyTo = %q", sent[0].ReplyTo)
	}
	// Delivered copy carries it too.
	var delivered *Message
	f.svc.Mailbox(b.ID).scan(func(m *Message) { delivered = m })
	if delivered == nil || delivered.ReplyTo != "doppel@evil.test" {
		t.Fatalf("delivered copy ReplyTo = %+v", delivered)
	}
}

func TestFilterDivertsIncoming(t *testing.T) {
	f := newFixture(t, 5, 7)
	a, b := f.dir.Get(1), f.dir.Get(2)
	f.svc.CreateFilter(a.ID, Filter{ToTrash: true, ForwardTo: "doppel@evil.test"}, 1, event.ActorHijacker)
	f.svc.Send(SendReq{
		FromAcct: b.ID, FromAddr: b.Addr,
		Recipients: []identity.Address{a.Addr},
		Class:      event.ClassOrganic, Actor: event.ActorOwner,
	})
	mb := f.svc.Mailbox(a.ID)
	trash := mb.InFolder(event.FolderTrash)
	if len(trash) != 1 {
		t.Fatalf("trash = %d, want 1 (filter should divert)", len(trash))
	}
	if !mb.HasForwardingFilter() {
		t.Fatal("forwarding filter not detected")
	}
	var m *Message
	mb.scan(func(x *Message) { m = x })
	if !m.Forwarded {
		t.Fatal("message not marked forwarded")
	}
}

func TestMassDeleteAndRestore(t *testing.T) {
	f := newFixture(t, 5, 8)
	f.svc.Seed(randx.New(8), DefaultSeedConfig())
	a := f.dir.Get(1)
	contactsBefore := len(a.Contacts)
	msgsBefore := f.svc.Mailbox(a.ID).Len()
	if msgsBefore == 0 || contactsBefore == 0 {
		t.Fatal("fixture account has no content")
	}

	deleted := f.svc.MassDelete(a.ID, 1, event.ActorHijacker)
	if deleted != msgsBefore {
		t.Fatalf("deleted = %d, want %d", deleted, msgsBefore)
	}
	if f.svc.Mailbox(a.ID).Len() != 0 || len(a.Contacts) != 0 {
		t.Fatal("mass delete left content behind")
	}
	if got := f.svc.ViewContacts(a.ID, 1, event.ActorHijacker); got != nil {
		t.Fatal("wiped contacts should view as empty")
	}

	// Hijacker settings present before restore.
	f.svc.SetReplyTo(a.ID, "doppel@evil.test", 1, event.ActorHijacker)
	f.svc.CreateFilter(a.ID, Filter{ForwardTo: "doppel@evil.test"}, 1, event.ActorHijacker)

	restored, cleared := f.svc.Restore(a.ID)
	if restored != msgsBefore {
		t.Fatalf("restored = %d, want %d", restored, msgsBefore)
	}
	if !cleared {
		t.Fatal("hijacker settings not cleared")
	}
	if len(a.Contacts) != contactsBefore {
		t.Fatalf("contacts = %d, want %d", len(a.Contacts), contactsBefore)
	}
	mb := f.svc.Mailbox(a.ID)
	if mb.ReplyTo != "" || mb.HasForwardingFilter() {
		t.Fatal("hijacker settings survived restore")
	}
}

func TestRestorePreservesOwnerSettings(t *testing.T) {
	f := newFixture(t, 5, 9)
	a := f.dir.Get(1)
	f.svc.CreateFilter(a.ID, Filter{ToTrash: true}, 1, event.ActorOwner)
	f.svc.SetReplyTo(a.ID, "me.alt@web.org", 1, event.ActorOwner)
	_, cleared := f.svc.Restore(a.ID)
	if cleared {
		t.Fatal("owner settings wrongly reported cleared")
	}
	mb := f.svc.Mailbox(a.ID)
	if len(mb.Filters) != 1 || mb.ReplyTo != "me.alt@web.org" {
		t.Fatal("owner settings removed by restore")
	}
}

func TestRestoreIdempotent(t *testing.T) {
	f := newFixture(t, 5, 10)
	f.svc.Seed(randx.New(10), DefaultSeedConfig())
	a := f.dir.Get(1)
	n := f.svc.Mailbox(a.ID).Len()
	f.svc.MassDelete(a.ID, 1, event.ActorHijacker)
	r1, _ := f.svc.Restore(a.ID)
	r2, _ := f.svc.Restore(a.ID)
	if r1 != n || r2 != 0 {
		t.Fatalf("restore twice: %d then %d, want %d then 0", r1, r2, n)
	}
	if f.svc.Mailbox(a.ID).Len() != n {
		t.Fatal("double restore duplicated messages")
	}
}

func TestSpamReportLogged(t *testing.T) {
	f := newFixture(t, 5, 11)
	f.svc.ReportSpam(2, 77, "x@y.test", 1, event.ClassScam)
	reports := logstore.Select[event.SpamReported](f.log)
	if len(reports) != 1 || reports[0].Class != event.ClassScam || reports[0].Message != 77 {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestUnknownAccountSafe(t *testing.T) {
	f := newFixture(t, 3, 12)
	if f.svc.Search(99, "x", 1, event.ActorOwner) != 0 {
		t.Fatal("unknown account search")
	}
	if f.svc.OpenFolder(99, event.FolderInbox, 1, event.ActorOwner) != nil {
		t.Fatal("unknown account folder")
	}
	if f.svc.MassDelete(99, 1, event.ActorOwner) != 0 {
		t.Fatal("unknown account delete")
	}
	if n, c := f.svc.Restore(99); n != 0 || c {
		t.Fatal("unknown account restore")
	}
	if f.svc.ViewContacts(99, 1, event.ActorOwner) != nil {
		t.Fatal("unknown account contacts")
	}
}

func TestEventTimesAdvanceWithClock(t *testing.T) {
	f := newFixture(t, 3, 13)
	a := f.dir.Get(1)
	f.svc.Search(a.ID, "x", 1, event.ActorOwner)
	f.clock.Advance(2 * time.Hour)
	f.svc.Search(a.ID, "y", 1, event.ActorOwner)
	searches := logstore.Select[event.Search](f.log)
	if d := searches[1].When().Sub(searches[0].When()); d != 2*time.Hour {
		t.Fatalf("event spacing = %v", d)
	}
}

// Property: delivering any sequence of messages then mass-deleting and
// restoring returns the mailbox to the same size, with no duplicates.
func TestDeleteRestoreRoundTripProperty(t *testing.T) {
	f := newFixture(t, 4, 14)
	a, b := f.dir.Get(1), f.dir.Get(2)
	prop := func(batch uint8) bool {
		n := int(batch % 20)
		for i := 0; i < n; i++ {
			f.svc.Send(SendReq{
				FromAcct: b.ID, FromAddr: b.Addr,
				Recipients: []identity.Address{a.Addr},
				Class:      event.ClassOrganic, Actor: event.ActorOwner,
			})
		}
		mb := f.svc.Mailbox(a.ID)
		before := mb.Len()
		f.svc.MassDelete(a.ID, 1, event.ActorHijacker)
		restored, _ := f.svc.Restore(a.ID)
		if restored != before || mb.Len() != before {
			return false
		}
		seen := map[event.MessageID]bool{}
		ok := true
		mb.scan(func(m *Message) {
			if seen[m.ID] {
				ok = false
			}
			seen[m.ID] = true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchOperators(t *testing.T) {
	f := newFixture(t, 5, 15)
	mb := f.svc.Mailbox(1)
	mb.messages = map[event.MessageID]*Message{
		1: {ID: 1, Keywords: []string{"vacation", "jpg"}, Starred: true, Folder: event.FolderInbox},
		2: {ID: 2, Keywords: []string{"report", "png"}, Folder: event.FolderInbox},
		3: {ID: 3, Keywords: []string{"lunch"}, Folder: event.FolderInbox},
	}
	mb.order = []event.MessageID{1, 2, 3}

	if got := mb.CountMatching("is:starred"); got != 1 {
		t.Fatalf("is:starred = %d, want 1", got)
	}
	if got := mb.CountMatching("filename:(jpg or jpeg or png)"); got != 2 {
		t.Fatalf("filename query = %d, want 2", got)
	}
	if got := mb.CountMatching("filename:(pdf)"); got != 0 {
		t.Fatalf("filename pdf = %d, want 0", got)
	}
	// Plain queries still work, case-insensitively.
	if got := mb.CountMatching("LUNCH"); got != 1 {
		t.Fatalf("plain query = %d, want 1", got)
	}
}
