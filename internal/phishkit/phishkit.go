// Package phishkit simulates the phishing infrastructure manual hijackers
// rely on: hosted phishing pages (including ones abusing the provider's
// Forms product, as in Dataset 3), lure email blasts, victim click/submit
// traffic with realistic HTTP referrers, and the hand-off of captured
// provider credentials to hijacker crews.
//
// The package reproduces the generative processes behind §4:
//
//   - per-page conversion quality spanning the 3%–45% range with a ~14%
//     mean (Figure 5),
//   - click arrivals that decay exponentially from the blast, plus the
//     "high-volume outlier" campaign with a quiet testing period, a step,
//     and a diurnal pattern (Figure 6),
//   - blank referrers for mail-driven traffic with a small webmail
//     remainder (Figure 3),
//   - an .edu-heavy delivered-victim mix, because commodity spam filtering
//     at self-hosted domains passes roughly 10× more lure mail than the
//     big providers (Figure 4, per Kanich et al.),
//   - target-kind mixes for lures and pages (Table 2).
package phishkit

import (
	"fmt"
	"math"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// Page is one phishing page.
type Page struct {
	ID      event.PageID
	Target  event.TargetKind
	OnForms bool
	// Conversion is the probability a visitor completes the credential
	// form (the page's "quality"; Figure 5).
	Conversion float64
	CreatedAt  time.Time
	Detected   bool
	TakenDown  bool
	// Targeted marks pages fed by an explicit victim list (contact
	// campaigns) rather than a mass blast.
	Targeted bool
	// DetectionFactor scales the anti-phishing pipeline's delay for this
	// page (1 when unset).
	DetectionFactor float64

	sink     CredentialSink
	dropRate float64
}

// Credential is one captured provider credential as the collector sees it:
// the address and whatever password the victim typed. §5.1 observes that
// hijackers end up with a correct password only ~75% of the time (stale or
// mistyped submissions), which surfaces here as a Password that no longer
// matches the account.
type Credential struct {
	Account  identity.AccountID
	Addr     identity.Address
	Password string
	Page     event.PageID
	At       time.Time
	Decoy    bool
}

// CredentialSink receives provider credentials captured by pages —
// normally a hijacker crew's intake queue.
type CredentialSink interface {
	CredentialCaptured(c Credential)
}

// Detector is notified when pages go live so it can schedule detection
// (implemented by the safebrowsing package).
type Detector interface {
	PageCreated(p *Page)
}

// Infrastructure hosts pages and runs campaigns.
type Infrastructure struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	plan  *geo.IPPlan
	rng   *randx.Rand

	detector Detector
	pages    map[event.PageID]*Page

	nextPage     event.PageID
	nextCampaign int64

	// webVictims is the weighted external-address domain chooser for
	// delivered lures (edu-heavy).
	webVictims *randx.Weighted[string]
	referrers  *randx.Weighted[string]
}

// NewInfrastructure builds the phishing substrate.
func NewInfrastructure(clock *simtime.Clock, log *logstore.Store, dir *identity.Directory, plan *geo.IPPlan, rng *randx.Rand) *Infrastructure {
	domains := identity.ExternalDomains()
	weights := make([]float64, len(domains))
	for i, d := range domains {
		if identity.TLD(identity.Address("x@"+d)) == "edu" {
			// Self-hosted .edu mail: ~10× the delivery rate of filtered
			// providers, and there are 4 edu domains among ~26 — that
			// yields the order-of-magnitude edu dominance of Figure 4.
			weights[i] = 40
		} else {
			weights[i] = 1
		}
	}
	return &Infrastructure{
		clock: clock, log: log, dir: dir, plan: plan,
		rng:        rng.Fork("phishkit"),
		pages:      make(map[event.PageID]*Page),
		webVictims: randx.NewWeighted(domains, weights),
		referrers: randx.NewWeighted(
			// Figure 3's non-blank referrer mix: mostly webmail.
			[]string{"webmail.generic", "mail.yahoo.com", "webmail.other",
				"mail.provider.legacy", "www.provider.test", "outlook.live.com",
				"mail.aol.com", "phishtank.org", "facebook.com", "yandex.ru"},
			[]float64{30, 22, 16, 10, 7, 6, 4, 2, 2, 1},
		),
	}
}

// SetDetector installs the anti-phishing pipeline.
func (inf *Infrastructure) SetDetector(d Detector) { inf.detector = d }

// Page returns a hosted page by ID (nil if unknown).
func (inf *Infrastructure) Page(id event.PageID) *Page { return inf.pages[id] }

// PageCount returns the number of pages ever hosted.
func (inf *Infrastructure) PageCount() int { return len(inf.pages) }

// TargetMix weights campaign target kinds. DefaultEmailTargetMix matches
// Table 2's phishing-email column; DefaultPageTargetMix matches the page
// column.
func DefaultEmailTargetMix() *randx.Weighted[event.TargetKind] {
	return randx.NewWeighted(
		[]event.TargetKind{event.TargetMail, event.TargetBank, event.TargetAppStore, event.TargetSocial, event.TargetOther},
		[]float64{35, 21, 16, 14, 14},
	)
}

// DefaultPageTargetMix matches Table 2's phishing-page column.
func DefaultPageTargetMix() *randx.Weighted[event.TargetKind] {
	return randx.NewWeighted(
		[]event.TargetKind{event.TargetMail, event.TargetBank, event.TargetAppStore, event.TargetSocial, event.TargetOther},
		[]float64{27, 25, 17, 15, 15},
	)
}

// Campaign describes one phishing campaign.
type Campaign struct {
	// Target is the kind of credential solicited.
	Target event.TargetKind
	// Lures is the blast size (number of lure emails delivered).
	Lures int
	// OnForms hosts the page on the provider's Forms product (Dataset 3).
	OnForms bool
	// HasURL: lures link to the page; otherwise they ask the victim to
	// reply with credentials (§4.1: 62 of 100 curated emails had URLs).
	HasURL bool
	// Victims optionally fixes the victim list (hijacker crews target the
	// contacts of previous victims this way). When nil, victims are drawn
	// from the web population.
	Victims []identity.Address
	// ProviderVictimShare is the fraction of generated victims who are
	// provider accounts (ignored when Victims is set).
	ProviderVictimShare float64
	// Sink receives captured provider credentials.
	Sink CredentialSink
	// Outlier selects the Figure 6 high-volume shape: a ~15 h quiet
	// period with attacker self-testing, then a step to sustained diurnal
	// volume over several days.
	Outlier bool
	// ClickRate is the probability a delivered lure leads to a page visit
	// (or, for URL-less lures, that the victim replies with credentials).
	ClickRate float64
	// ClickDelayMean is the mean lure-to-click delay. Mass campaigns see
	// fast clicks clustered around delivery; contact-targeted phishing
	// from a hijacked account converts at the victims' mail-checking pace
	// (a day or more).
	ClickDelayMean time.Duration
	// PasswordGoodRate is how often a submitting victim types their real,
	// current password (§5.1: hijackers hold a correct password 75% of
	// the time).
	PasswordGoodRate float64
	// DropRate is the chance a captured credential never reaches the
	// crew — the collector email account or drop box gets suspended
	// (§5.1 cites this to explain decoys that were never accessed).
	DropRate float64
	// Conversion overrides the page's drawn conversion rate when
	// positive. Contact-targeted spear phishing converts far better than
	// mass phishing (Jagatic et al., cited in §4: social phishing
	// succeeded 72% vs 16% for the control).
	Conversion float64
	// DetectionFactor scales the anti-phishing pipeline's detection delay
	// for this campaign's page (>1 = survives longer). The Figure 6
	// outlier ran for several days before its takedown.
	DetectionFactor float64
}

// DefaultCampaign returns a campaign with study defaults for the given
// target and size.
func DefaultCampaign(target event.TargetKind, lures int) Campaign {
	return Campaign{
		Target:              target,
		Lures:               lures,
		HasURL:              true,
		ProviderVictimShare: 0.20,
		ClickRate:           0.28,
		ClickDelayMean:      3 * time.Hour,
		PasswordGoodRate:    0.75,
		DropRate:            0.12,
	}
}

// Launch creates the campaign's page, blasts lures, and schedules victim
// traffic. It returns the page ID.
func (inf *Infrastructure) Launch(c Campaign) event.PageID {
	inf.nextCampaign++
	campaignID := inf.nextCampaign
	now := inf.clock.Now()

	inf.nextPage++
	p := &Page{
		ID:      inf.nextPage,
		Target:  c.Target,
		OnForms: c.OnForms,
		// Mean ≈ 0.14 with a wide spread, clamped to the observed 3–45%.
		Conversion: inf.rng.ClampedNormal(0.13, 0.10, 0.03, 0.45),
		CreatedAt:  now,
	}
	if c.Conversion > 0 {
		p.Conversion = c.Conversion
	}
	p.Targeted = len(c.Victims) > 0
	p.sink = c.Sink
	p.dropRate = c.DropRate
	p.DetectionFactor = c.DetectionFactor
	if p.DetectionFactor <= 0 {
		p.DetectionFactor = 1
	}
	inf.pages[p.ID] = p
	inf.log.Append(event.PageCreated{
		Base: event.Base{Time: now}, Page: p.ID, Target: c.Target,
		Quality: p.Conversion, OnForms: c.OnForms, Targeted: p.Targeted,
	})
	if inf.detector != nil {
		inf.detector.PageCreated(p)
	}

	if c.Outlier {
		inf.scheduleOutlierTesting(p)
	}

	for i := 0; i < c.Lures; i++ {
		victim := inf.pickVictim(c)
		delay := inf.lureDelay(c)
		inf.clock.After(delay, func() { inf.deliverLure(campaignID, p, c, victim) })
	}
	return p.ID
}

// pickVictim chooses a lure recipient.
func (inf *Infrastructure) pickVictim(c Campaign) identity.Address {
	if len(c.Victims) > 0 {
		return randx.Pick(inf.rng, c.Victims)
	}
	if inf.rng.Bool(c.ProviderVictimShare) && inf.dir.Len() > 0 {
		id := identity.AccountID(1 + inf.rng.Intn(inf.dir.Len()))
		return inf.dir.Get(id).Addr
	}
	domain := inf.webVictims.Choose(inf.rng)
	return identity.Address(fmt.Sprintf("user%d@%s", inf.rng.Intn(1_000_000), domain))
}

// lureDelay spaces lure deliveries: a mass blast clustered at the start
// for standard campaigns; for the outlier, the quiet testing period first,
// then deliveries spread over several days.
func (inf *Infrastructure) lureDelay(c Campaign) time.Duration {
	if c.Outlier {
		return 15*time.Hour + inf.rng.DurationBetween(0, 72*time.Hour)
	}
	return inf.rng.ExpDuration(90 * time.Minute)
}

// deliverLure logs the lure and schedules the victim's reaction.
func (inf *Infrastructure) deliverLure(campaignID int64, p *Page, c Campaign, victim identity.Address) {
	pageRef := p.ID
	if !c.HasURL {
		pageRef = 0
	}
	reported := inf.rng.Bool(0.04) // a small share of victims report lures
	inf.log.Append(event.LureSent{
		Base: event.Base{Time: inf.clock.Now()}, Campaign: campaignID,
		Page: pageRef, Victim: victim, Target: c.Target, HasURL: c.HasURL,
		Reported: reported,
	})
	if !inf.rng.Bool(c.ClickRate) {
		return
	}
	// Click delay after reading the lure: exponential, decaying from the
	// blast.
	mean := c.ClickDelayMean
	if mean <= 0 {
		mean = 3 * time.Hour
	}
	delay := inf.rng.ExpDuration(mean)
	if c.Outlier {
		// Sustained diurnal arrivals: re-draw until the arrival hour is
		// plausible for an awake victim.
		delay = inf.diurnalDelay(delay)
	}
	inf.clock.After(delay, func() { inf.visit(p, c, victim) })
}

// diurnalDelay shifts a delay so the resulting wall-clock hour follows a
// day/night cycle (acceptance by hour weight, at most a few retries).
func (inf *Infrastructure) diurnalDelay(d time.Duration) time.Duration {
	for i := 0; i < 4; i++ {
		at := inf.clock.Now().Add(d)
		h := float64(at.Hour())
		// Weight peaks mid-day, troughs at night.
		w := 0.25 + 0.75*(0.5-0.5*math.Cos(2*math.Pi*(h-3)/24))
		if inf.rng.Bool(w) {
			return d
		}
		d += inf.rng.DurationBetween(2*time.Hour, 8*time.Hour)
	}
	return d
}

// visit records the GET (and possible POST) on a live page.
func (inf *Infrastructure) visit(p *Page, c Campaign, victim identity.Address) {
	if p.TakenDown {
		return
	}
	now := inf.clock.Now()
	referrer := ""
	if inf.rng.Bool(0.008) { // >99% of referrers are blank (Figure 3)
		referrer = inf.referrers.Choose(inf.rng)
	}
	ip := inf.plan.Addr(inf.rng, randx.Pick(inf.rng, geo.AllCountries()))
	inf.log.Append(event.PageHit{
		Base: event.Base{Time: now}, Page: p.ID, Method: "GET",
		Referrer: referrer, IP: ip,
	})
	if !inf.rng.Bool(p.Conversion) {
		return
	}
	inf.log.Append(event.PageHit{
		Base: event.Base{Time: now}, Page: p.ID, Method: "POST",
		Referrer: referrer, Victim: victim, IP: ip,
	})
	inf.captureCredential(p, c, victim, false)
}

// captureCredential hands a provider credential to the page's sink. Only
// mail-targeted pages against provider accounts feed manual hijacking.
func (inf *Infrastructure) captureCredential(p *Page, c Campaign, victim identity.Address, decoy bool) {
	id := inf.dir.Lookup(victim)
	if id == identity.None || p.Target != event.TargetMail {
		return
	}
	now := inf.clock.Now()
	inf.log.Append(event.CredentialPhished{
		Base: event.Base{Time: now}, Account: id, Page: p.ID, Decoy: decoy,
	})
	if p.sink == nil || inf.rng.Bool(p.dropRate) {
		return
	}
	acct := inf.dir.Get(id)
	password := acct.Password
	if !decoy && !inf.rng.Bool(c.PasswordGoodRate) {
		password += "-stale" // outdated or mistyped submission
	}
	// Legacy-client users sometimes type the application-specific
	// password they use daily — which bypasses 2-step verification
	// (§8.2's "those passwords can be phished").
	if !decoy && len(acct.AppPasswords) > 0 && inf.rng.Bool(0.5) {
		password = acct.AppPasswords[inf.rng.Intn(len(acct.AppPasswords))]
	}
	p.sink.CredentialCaptured(Credential{
		Account: id, Addr: victim, Password: password, Page: p.ID,
		At: now, Decoy: decoy,
	})
}

// SubmitDecoy injects a decoy credential into a page, as the study's
// Dataset 4 experiment did with 200 manually submitted fake credentials.
// The decoy flows to the page's sink like a real catch.
func (inf *Infrastructure) SubmitDecoy(pageID event.PageID, decoyAccount identity.AccountID) bool {
	p := inf.pages[pageID]
	if p == nil || p.TakenDown {
		return false
	}
	acct := inf.dir.Get(decoyAccount)
	if acct == nil {
		return false
	}
	now := inf.clock.Now()
	ip := inf.plan.Addr(inf.rng, geo.US)
	inf.log.Append(event.PageHit{
		Base: event.Base{Time: now}, Page: p.ID, Method: "GET", IP: ip,
	})
	inf.log.Append(event.PageHit{
		Base: event.Base{Time: now}, Page: p.ID, Method: "POST",
		Victim: acct.Addr, IP: ip,
	})
	inf.log.Append(event.CredentialPhished{
		Base: event.Base{Time: now}, Account: decoyAccount, Page: p.ID, Decoy: true,
	})
	if p.sink != nil && !inf.rng.Bool(p.dropRate) {
		p.sink.CredentialCaptured(Credential{
			Account: decoyAccount, Addr: acct.Addr, Password: acct.Password,
			Page: p.ID, At: now, Decoy: true,
		})
	}
	return true
}

// Takedown disables a page (called by the anti-phishing pipeline).
func (inf *Infrastructure) Takedown(id event.PageID) {
	p := inf.pages[id]
	if p == nil || p.TakenDown {
		return
	}
	p.TakenDown = true
	inf.log.Append(event.PageTakedown{Base: event.Base{Time: inf.clock.Now()}, Page: id})
}

// MarkDetected records detection (called by the anti-phishing pipeline,
// which logs the PageDetected event itself).
func (inf *Infrastructure) MarkDetected(id event.PageID) {
	if p := inf.pages[id]; p != nil {
		p.Detected = true
	}
}

// scheduleOutlierTesting emits the attacker's own test hits during the
// quiet period before the outlier campaign's step (Figure 6, bottom).
func (inf *Infrastructure) scheduleOutlierTesting(p *Page) {
	tests := 2 + inf.rng.Intn(4)
	for i := 0; i < tests; i++ {
		delay := inf.rng.DurationBetween(5*time.Minute, 14*time.Hour)
		inf.clock.After(delay, func() {
			if p.TakenDown {
				return
			}
			inf.log.Append(event.PageHit{
				Base: event.Base{Time: inf.clock.Now()}, Page: p.ID,
				Method: "GET", IP: inf.plan.Addr(inf.rng, geo.Nigeria),
			})
		})
	}
}
