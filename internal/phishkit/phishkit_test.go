package phishkit

import (
	"testing"
	"testing/quick"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

type fixture struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	inf   *Infrastructure
}

type sinkRecorder struct {
	got []Credential
}

func (s *sinkRecorder) CredentialCaptured(c Credential) {
	s.got = append(s.got, c)
}

func newFixture(t *testing.T, seed int64, accounts int) *fixture {
	t.Helper()
	clock := simtime.NewClock(simtime.Epoch)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = accounts
	rng := randx.New(seed)
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	inf := NewInfrastructure(clock, log, dir, geo.NewIPPlan(2), rng)
	return &fixture{clock: clock, log: log, dir: dir, inf: inf}
}

func TestCampaignProducesTraffic(t *testing.T) {
	f := newFixture(t, 1, 100)
	c := DefaultCampaign(event.TargetMail, 500)
	pid := f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(7 * 24 * time.Hour))

	lures := logstore.Select[event.LureSent](f.log)
	if len(lures) != 500 {
		t.Fatalf("lures = %d, want 500", len(lures))
	}
	hits := logstore.Select[event.PageHit](f.log)
	gets, posts := 0, 0
	for _, h := range hits {
		if h.Page != pid {
			t.Fatalf("hit on unknown page %d", h.Page)
		}
		switch h.Method {
		case "GET":
			gets++
		case "POST":
			posts++
		}
	}
	if gets == 0 || posts == 0 {
		t.Fatalf("gets=%d posts=%d, want both > 0", gets, posts)
	}
	if posts > gets {
		t.Fatalf("more POSTs (%d) than GETs (%d)", posts, gets)
	}
}

func TestConversionBounds(t *testing.T) {
	f := newFixture(t, 2, 10)
	for i := 0; i < 200; i++ {
		pid := f.inf.Launch(DefaultCampaign(event.TargetOther, 0))
		p := f.inf.Page(pid)
		if p.Conversion < 0.03 || p.Conversion > 0.45 {
			t.Fatalf("conversion %.3f outside [0.03, 0.45]", p.Conversion)
		}
	}
}

func TestReferrersMostlyBlank(t *testing.T) {
	f := newFixture(t, 3, 200)
	c := DefaultCampaign(event.TargetMail, 4000)
	c.ClickRate = 0.9
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(7 * 24 * time.Hour))

	blank, nonBlank := 0, 0
	for _, h := range logstore.Select[event.PageHit](f.log) {
		if h.Method != "GET" {
			continue
		}
		if h.Referrer == "" {
			blank++
		} else {
			nonBlank++
		}
	}
	total := blank + nonBlank
	if total < 1000 {
		t.Fatalf("too few hits to judge: %d", total)
	}
	share := float64(blank) / float64(total)
	if share < 0.98 {
		t.Fatalf("blank referrer share = %.4f, want > 0.98", share)
	}
}

func TestCredentialSinkReceivesProviderMailCreds(t *testing.T) {
	f := newFixture(t, 4, 300)
	sink := &sinkRecorder{}
	c := DefaultCampaign(event.TargetMail, 3000)
	c.Sink = sink
	c.ProviderVictimShare = 0.5
	c.ClickRate = 0.9
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(7 * 24 * time.Hour))

	if len(sink.got) == 0 {
		t.Fatal("sink received no credentials")
	}
	phished := logstore.Select[event.CredentialPhished](f.log)
	// The collector loses DropRate (~12%) of captures (§5.1).
	delivered := float64(len(sink.got)) / float64(len(phished))
	if delivered < 0.80 || delivered > 0.95 {
		t.Fatalf("sink received %.2f of %d captures, want ~0.88", delivered, len(phished))
	}
	// Roughly 75% of captured passwords are current (§5.1).
	good := 0
	for _, c := range sink.got {
		if f.dir.Get(c.Account).Password == c.Password {
			good++
		}
	}
	ratio := float64(good) / float64(len(sink.got))
	if ratio < 0.65 || ratio > 0.85 {
		t.Fatalf("good-password ratio = %.2f, want ~0.75", ratio)
	}
}

func TestBankPagesDoNotFeedHijacking(t *testing.T) {
	f := newFixture(t, 5, 300)
	sink := &sinkRecorder{}
	c := DefaultCampaign(event.TargetBank, 2000)
	c.Sink = sink
	c.ProviderVictimShare = 0.5
	c.ClickRate = 0.9
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(7 * 24 * time.Hour))
	if len(sink.got) != 0 {
		t.Fatalf("bank-target page fed %d provider credentials", len(sink.got))
	}
}

func TestTakedownStopsTraffic(t *testing.T) {
	f := newFixture(t, 6, 100)
	c := DefaultCampaign(event.TargetMail, 2000)
	c.ClickRate = 0.9
	pid := f.inf.Launch(c)
	// Take the page down one hour in.
	f.clock.RunUntil(simtime.Epoch.Add(time.Hour))
	f.inf.Takedown(pid)
	takedownAt := f.clock.Now()
	f.clock.RunUntil(simtime.Epoch.Add(7 * 24 * time.Hour))

	for _, h := range logstore.Select[event.PageHit](f.log) {
		if h.When().After(takedownAt) {
			t.Fatalf("hit at %s after takedown at %s", h.When(), takedownAt)
		}
	}
	downs := logstore.Select[event.PageTakedown](f.log)
	if len(downs) != 1 {
		t.Fatalf("takedown events = %d", len(downs))
	}
	// Takedown is idempotent.
	f.inf.Takedown(pid)
	if len(logstore.Select[event.PageTakedown](f.log)) != 1 {
		t.Fatal("double takedown logged twice")
	}
}

func TestDecoySubmission(t *testing.T) {
	f := newFixture(t, 7, 50)
	sink := &sinkRecorder{}
	c := DefaultCampaign(event.TargetMail, 0)
	c.Sink = sink
	c.DropRate = 0 // no collector loss in this test
	pid := f.inf.Launch(c)

	if !f.inf.SubmitDecoy(pid, 1) {
		t.Fatal("decoy submission failed")
	}
	if len(sink.got) != 1 || !sink.got[0].Decoy || sink.got[0].Account != 1 {
		t.Fatalf("sink = %+v", sink.got)
	}
	if sink.got[0].Password != f.dir.Get(1).Password {
		t.Fatal("decoy password should be the real one (the study controls the decoy account)")
	}
	// Decoy on a taken-down page fails.
	f.inf.Takedown(pid)
	if f.inf.SubmitDecoy(pid, 2) {
		t.Fatal("decoy accepted on dead page")
	}
	// Unknown page or account fails.
	if f.inf.SubmitDecoy(999, 1) || f.inf.SubmitDecoy(pid, 9999) {
		t.Fatal("bad decoy accepted")
	}
}

func TestExplicitVictimList(t *testing.T) {
	f := newFixture(t, 8, 100)
	targets := []identity.Address{f.dir.Get(1).Addr, f.dir.Get(2).Addr}
	c := DefaultCampaign(event.TargetMail, 300)
	c.Victims = targets
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(3 * 24 * time.Hour))
	for _, l := range logstore.Select[event.LureSent](f.log) {
		if l.Victim != targets[0] && l.Victim != targets[1] {
			t.Fatalf("lure to %s outside victim list", l.Victim)
		}
	}
}

func TestEduDominanceInWebVictims(t *testing.T) {
	f := newFixture(t, 9, 10)
	c := DefaultCampaign(event.TargetOther, 5000)
	c.ProviderVictimShare = 0
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(3 * 24 * time.Hour))
	edu, other := 0, 0
	for _, l := range logstore.Select[event.LureSent](f.log) {
		if identity.TLD(l.Victim) == "edu" {
			edu++
		} else {
			other++
		}
	}
	share := float64(edu) / float64(edu+other)
	if share < 0.70 {
		t.Fatalf("edu share = %.3f, want edu-dominant (> 0.70)", share)
	}
}

func TestURLlessLures(t *testing.T) {
	f := newFixture(t, 10, 50)
	c := DefaultCampaign(event.TargetMail, 200)
	c.HasURL = false
	f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(2 * 24 * time.Hour))
	for _, l := range logstore.Select[event.LureSent](f.log) {
		if l.HasURL || l.Page != 0 {
			t.Fatalf("URL-less campaign produced lure %+v", l)
		}
	}
}

func TestOutlierQuietPeriod(t *testing.T) {
	f := newFixture(t, 11, 200)
	c := DefaultCampaign(event.TargetMail, 3000)
	c.Outlier = true
	c.ClickRate = 0.9
	pid := f.inf.Launch(c)
	f.clock.RunUntil(simtime.Epoch.Add(8 * 24 * time.Hour))

	early, late := 0, 0
	for _, h := range logstore.Select[event.PageHit](f.log) {
		if h.Page != pid || h.Method != "GET" {
			continue
		}
		if h.When().Sub(simtime.Epoch) < 15*time.Hour {
			early++
		} else {
			late++
		}
	}
	if early > 10 {
		t.Fatalf("quiet period has %d hits, want only a few test hits", early)
	}
	if late < 100 {
		t.Fatalf("post-step volume = %d, want large", late)
	}
}

func TestTargetMixes(t *testing.T) {
	r := randx.New(12)
	mix := DefaultEmailTargetMix()
	var mailShare int
	const n = 10000
	for i := 0; i < n; i++ {
		if mix.Choose(r) == event.TargetMail {
			mailShare++
		}
	}
	got := float64(mailShare) / n
	if got < 0.32 || got > 0.38 {
		t.Fatalf("email-mix mail share = %.3f, want ~0.35", got)
	}
}

// Property: per page, POSTs never exceed GETs, and no hit lands after the
// page's takedown — for arbitrary campaign shapes.
func TestPageHitInvariantsProperty(t *testing.T) {
	f := newFixture(t, 20, 150)
	prop := func(lures uint16, clickPct, convPct uint8) bool {
		c := DefaultCampaign(event.TargetMail, int(lures%800))
		c.ClickRate = float64(clickPct%100) / 100
		c.Conversion = 0.01 + float64(convPct%45)/100
		pid := f.inf.Launch(c)
		f.clock.RunUntil(f.clock.Now().Add(5 * 24 * time.Hour))

		gets, posts := 0, 0
		var lastHit, takedown time.Time
		for _, h := range logstore.Select[event.PageHit](f.log) {
			if h.Page != pid {
				continue
			}
			switch h.Method {
			case "GET":
				gets++
			case "POST":
				posts++
			}
			lastHit = h.When()
		}
		for _, d := range logstore.Select[event.PageTakedown](f.log) {
			if d.Page == pid {
				takedown = d.When()
			}
		}
		if posts > gets {
			return false
		}
		if !takedown.IsZero() && lastHit.After(takedown) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
