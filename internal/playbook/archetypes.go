package playbook

import (
	"fmt"
	"net/netip"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
)

// This file implements the non-manual archetypes: eight patterns from
// the anti-abuse FRAUD_TYPES catalog (smash & grab, low & slow, country
// hopper, data thief, credential stuffer, spam cannon, sleeper,
// ransomer) and the two related-work profiles (enterprise lateral
// phisher, impersonation-as-a-service). Each registers a constructor,
// embeds *Scaffold, and emits its characteristic signal signature —
// the shape a detector would key on, and what the per-archetype unit
// tests assert.

func init() {
	Register("smashgrab", newSmashGrab)
	Register("lowslow", newLowSlow)
	Register("hopper", newHopper)
	Register("datathief", newDataThief)
	Register("stuffer", newStuffer)
	Register("spamcannon", newSpamCannon)
	Register("sleeper", newSleeper)
	Register("ransomer", newRansomer)
	Register("lateralphisher", newLateralPhisher)
	Register("impaas", newIMPaaS)
}

func defaultCountry(cfg *Config, c geo.Country) {
	if cfg.Country == "" {
		cfg.Country = c
	}
}

// ---------------------------------------------------------------------
// smashgrab — maximum extraction before the owner can react: login,
// download contacts and inbox, blast 80–200 scam recipient slots within
// 1–3 hours, lock the owner out and burn the account inside a day.
// Signature: contact exfil + large same-session spam burst + password
// change, all within hours of first entry.
// ---------------------------------------------------------------------

type smashGrab struct{ *Scaffold }

func newSmashGrab(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.Nigeria)
	return &smashGrab{NewScaffold("smashgrab", cfg, env)}
}

func (a *smashGrab) Start(end time.Time) { a.StartTicks(9*time.Minute, end, a.tick) }

func (a *smashGrab) tick() {
	if !a.Working(a.E.Clock.Now()) {
		return
	}
	for i := 0; i < 3; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		ip, ok := a.PickIP(cred.Account)
		if !ok {
			a.Requeue(cred)
			return
		}
		a.Processed++
		res := a.Login(cred.Account, cred.Password, ip, a.Device())
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		contacts := a.Contacts(cred.Account, res.Session)
		a.E.Mail.OpenFolder(cred.Account, event.FolderInbox, res.Session, event.ActorHijacker)

		acct, sess := cred.Account, res.Session
		blastAt := start.Add(a.Rng.DurationBetween(time.Hour, 3*time.Hour))
		target := 80 + a.Rng.Intn(121) // 80–200 recipient slots
		a.E.Clock.Schedule(blastAt, func() {
			if a.SendBatches(acct, sess, contacts, target, 4, event.ClassScam,
				false, []string{"urgent", "money", "western union"}, 0) > 0 {
				a.Exploited++
			}
		})
		// Burn the account: password change locks the owner out; done
		// well inside 24 hours.
		closeAt := blastAt.Add(a.Rng.DurationBetween(time.Hour, 12*time.Hour))
		pw := fmt.Sprintf("smash-%06d", a.Rng.Intn(1_000_000))
		a.E.Clock.Schedule(closeAt, func() {
			a.E.Auth.ChangePassword(acct, pw, sess, event.ActorHijacker)
			a.LogEnd(acct, start, true, true)
		})
	}
}

// ---------------------------------------------------------------------
// lowslow — patience as cover: first touch 2–5 days after capture, then
// a handful of small customized sends spread over 2–3 further days,
// account left open. Signature: activity span ≥4 days from capture, low
// per-day volume, no lockout.
// ---------------------------------------------------------------------

type lowSlow struct{ *Scaffold }

func newLowSlow(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.IvoryCoast)
	return &lowSlow{NewScaffold("lowslow", cfg, env)}
}

func (a *lowSlow) Start(end time.Time) { a.MarkStarted(end) }

// CredentialCaptured schedules the whole slow arc directly: no tick
// loop, nothing to batch — the point is that nothing ever bursts.
func (a *lowSlow) CredentialCaptured(cred phishkit.Credential) {
	before := a.QueueLen()
	a.Scaffold.CredentialCaptured(cred)
	if a.QueueLen() == before { // duplicate account
		return
	}
	a.E.Clock.After(a.Rng.DurationBetween(2*24*time.Hour, 5*24*time.Hour), func() {
		c, ok := a.PopCred()
		if ok {
			a.begin(c)
		}
	})
}

func (a *lowSlow) begin(cred phishkit.Credential) {
	ip, ok := a.PickIP(cred.Account)
	if !ok {
		ip = a.FreshIP(a.Cfg.Country)
	}
	a.Processed++
	res := a.Login(cred.Account, cred.Password, ip, a.Device())
	if res.Outcome != event.LoginSuccess {
		return
	}
	a.LoggedIn++
	start := a.E.Clock.Now()
	a.LogStart(cred.Account, res.Session)
	contacts := a.Contacts(cred.Account, res.Session)
	if len(contacts) == 0 {
		a.LogEnd(cred.Account, start, false, false)
		return
	}
	// 4–6 small waves of 3–8 customized pleas over 2–3 days; total lands
	// in the catalog's 15–40 recipient band.
	waves := 4 + a.Rng.Intn(3)
	span := a.Rng.DurationBetween(2*24*time.Hour, 3*24*time.Hour)
	acct, sess := cred.Account, res.Session
	sent := false // count the account as exploited once, not per wave
	for i := 0; i < waves; i++ {
		at := start.Add(time.Duration(i+1) * span / time.Duration(waves))
		k := 3 + a.Rng.Intn(6)
		batch := randx.Sample(a.Rng, contacts, k)
		a.E.Clock.Schedule(at, func() {
			if a.SendBatches(acct, sess, batch, len(batch), 1, event.ClassScam,
				true, []string{"help", "favor"}, 0) > 0 && !sent {
				sent = true
				a.Exploited++
			}
		})
	}
	// Leave the account open — the owner keeps using it none the wiser.
	a.E.Clock.Schedule(start.Add(span).Add(time.Hour), func() {
		a.LogEnd(acct, start, false, true)
	})
}

// ---------------------------------------------------------------------
// hopper — the same account entered from 3–4 different countries over
// about a week (resold credentials or a roaming proxy kit), spam from
// the last stop. Signature: one account's hijacker logins geolocate to
// ≥3 countries.
// ---------------------------------------------------------------------

type hopper struct {
	*Scaffold
	route []geo.Country
}

func newHopper(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.Malaysia)
	return &hopper{
		Scaffold: NewScaffold("hopper", cfg, env),
		route: []geo.Country{
			geo.Malaysia, geo.Nigeria, geo.China, geo.Venezuela, geo.SouthAfrica,
		},
	}
}

func (a *hopper) Start(end time.Time) { a.StartTicks(11*time.Minute, end, a.tick) }

func (a *hopper) tick() {
	for i := 0; i < 2; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		a.Processed++
		stops := 3 + a.Rng.Intn(2) // 3–4 countries
		first := a.Rng.Intn(len(a.route))
		start := a.E.Clock.Now()
		st := &hopperState{}
		for hop := 0; hop < stops; hop++ {
			country := a.route[(first+hop)%len(a.route)]
			at := start.Add(time.Duration(hop) * a.Rng.DurationBetween(36*time.Hour, 56*time.Hour))
			last := hop == stops-1
			a.E.Clock.Schedule(at, func() {
				a.hop(cred, country, st, last)
			})
		}
	}
}

type hopperState struct {
	entered  bool
	enteredA time.Time
	contacts []identity.Address
	dead     bool
}

func (a *hopper) hop(cred phishkit.Credential, country geo.Country, st *hopperState, last bool) {
	if st.dead {
		return
	}
	res := a.Login(cred.Account, cred.Password, a.FreshIP(country), a.Device())
	if res.Outcome != event.LoginSuccess {
		if res.Outcome != event.LoginWrongPassword {
			return // challenged or blocked this stop; try the next
		}
		st.dead = true // password rotated out from under the route
		if st.entered {
			a.LogEnd(cred.Account, st.enteredA, false, false)
		}
		return
	}
	if !st.entered {
		st.entered = true
		st.enteredA = a.E.Clock.Now()
		a.LoggedIn++
		a.LogStart(cred.Account, res.Session)
		st.contacts = a.Contacts(cred.Account, res.Session)
	}
	if last {
		exploited := a.SendBatches(cred.Account, res.Session, st.contacts,
			30+a.Rng.Intn(41), 3, event.ClassScam, false,
			[]string{"stranded", "money"}, 0) > 0
		if exploited {
			a.Exploited++
		}
		a.LogEnd(cred.Account, st.enteredA, false, exploited)
	}
}

// ---------------------------------------------------------------------
// datathief — exfiltration only: login, pull the address book and walk
// the folders, close inside half an hour. Signature: contact exfil plus
// folder sweeps with zero outbound messages, ever.
// ---------------------------------------------------------------------

type dataThief struct{ *Scaffold }

func newDataThief(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.China)
	return &dataThief{NewScaffold("datathief", cfg, env)}
}

func (a *dataThief) Start(end time.Time) { a.StartTicks(8*time.Minute, end, a.tick) }

func (a *dataThief) tick() {
	for i := 0; i < 4; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		ip, ok := a.PickIP(cred.Account)
		if !ok {
			a.Requeue(cred)
			return
		}
		a.Processed++
		res := a.Login(cred.Account, cred.Password, ip, a.Device())
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		a.Contacts(cred.Account, res.Session)
		acct, sess := cred.Account, res.Session
		step := a.Rng.DurationBetween(2*time.Minute, 6*time.Minute)
		folders := []event.Folder{event.FolderInbox, event.FolderSent, event.FolderDrafts}
		for j, f := range folders {
			folder := f
			a.E.Clock.Schedule(start.Add(time.Duration(j+1)*step), func() {
				a.E.Mail.OpenFolder(acct, folder, sess, event.ActorHijacker)
			})
		}
		// The haul is the data itself; no spam would only risk exposure.
		a.E.Clock.Schedule(start.Add(time.Duration(len(folders)+1)*step), func() {
			a.Exploited++
			a.LogEnd(acct, start, false, true)
		})
	}
}

// ---------------------------------------------------------------------
// stuffer — credential-list validation at pace: bursts of 3–7 accounts
// pushed through a single fresh IP seconds apart, minimal post-login
// activity. Signature: one IP touching many distinct accounts inside
// minutes — the anti-discipline that stresses IP-fanout detectors.
// ---------------------------------------------------------------------

type stuffer struct{ *Scaffold }

func newStuffer(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.Vietnam)
	return &stuffer{NewScaffold("stuffer", cfg, env)}
}

func (a *stuffer) Start(end time.Time) { a.StartTicks(13*time.Minute, end, a.tick) }

func (a *stuffer) tick() {
	if a.QueueLen() == 0 {
		return
	}
	n := 3 + a.Rng.Intn(5) // burst of 3–7
	if q := a.QueueLen(); n > q {
		n = q
	}
	ip := a.FreshIP(a.Cfg.Country)
	now := a.E.Clock.Now()
	for i := 0; i < n; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		at := now.Add(time.Duration(i) * a.Rng.DurationBetween(20*time.Second, 50*time.Second))
		a.E.Clock.Schedule(at, func() { a.validate(cred, ip) })
	}
}

func (a *stuffer) validate(cred phishkit.Credential, ip netip.Addr) {
	a.Processed++
	res := a.Login(cred.Account, cred.Password, ip, a.Device())
	if res.Outcome != event.LoginSuccess {
		return
	}
	a.LoggedIn++
	start := a.E.Clock.Now()
	a.LogStart(cred.Account, res.Session)
	// A single inbox peek confirms the account is live; the validated
	// credential is the product, resold rather than worked.
	a.E.Mail.OpenFolder(cred.Account, event.FolderInbox, res.Session, event.ActorHijacker)
	a.LogEnd(cred.Account, start, false, false)
}

// ---------------------------------------------------------------------
// spamcannon — the account is a relay: login and immediately pump bulk
// spam to the address book in minutes, no finesse, gone within the
// hour. Signature: bulk-class outbound at maximum rate right after
// entry.
// ---------------------------------------------------------------------

type spamCannon struct{ *Scaffold }

func newSpamCannon(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.Brazil)
	return &spamCannon{NewScaffold("spamcannon", cfg, env)}
}

func (a *spamCannon) Start(end time.Time) { a.StartTicks(10*time.Minute, end, a.tick) }

func (a *spamCannon) tick() {
	for i := 0; i < 2; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		a.Processed++
		res := a.Login(cred.Account, cred.Password, a.FreshIP(a.Cfg.Country), a.Device())
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		contacts := a.Contacts(cred.Account, res.Session)
		acct, sess := cred.Account, res.Session
		rounds := 3
		sent := false // count the account as exploited once, not per round
		for r := 0; r < rounds; r++ {
			at := start.Add(time.Duration(r+1) * a.Rng.DurationBetween(90*time.Second, 4*time.Minute))
			a.E.Clock.Schedule(at, func() {
				if a.SendBatches(acct, sess, contacts, 40+a.Rng.Intn(31), 2,
					event.ClassSpamBulk, false, []string{"pharmacy", "deal"}, 0) > 0 && !sent {
					sent = true
					a.Exploited++
				}
			})
		}
		a.E.Clock.Schedule(start.Add(20*time.Minute), func() {
			a.LogEnd(acct, start, false, true)
		})
	}
}

// ---------------------------------------------------------------------
// sleeper — validate now, cash in later: a quiet confirmation login,
// then nothing for 7–10 days before returning to exploit. Signature:
// two tagged entries on the same account ≥7 days apart with silence
// between.
// ---------------------------------------------------------------------

type sleeper struct{ *Scaffold }

func newSleeper(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.India)
	return &sleeper{NewScaffold("sleeper", cfg, env)}
}

func (a *sleeper) Start(end time.Time) { a.StartTicks(12*time.Minute, end, a.tick) }

func (a *sleeper) tick() {
	cred, ok := a.PopCred()
	if !ok {
		return
	}
	ip, ok := a.PickIP(cred.Account)
	if !ok {
		a.Requeue(cred)
		return
	}
	a.Processed++
	res := a.Login(cred.Account, cred.Password, ip, a.Device())
	if res.Outcome != event.LoginSuccess {
		return
	}
	a.LoggedIn++
	start := a.E.Clock.Now()
	a.LogStart(cred.Account, res.Session)
	a.E.Mail.OpenFolder(cred.Account, event.FolderInbox, res.Session, event.ActorHijacker)
	a.E.Clock.After(a.Rng.DurationBetween(7*24*time.Hour, 10*24*time.Hour), func() {
		a.wake(cred, start)
	})
}

func (a *sleeper) wake(cred phishkit.Credential, firstEntry time.Time) {
	res := a.Login(cred.Account, cred.Password, a.FreshIP(a.Cfg.Country), a.Device())
	if res.Outcome != event.LoginSuccess {
		// The nap cost the access (password rotated, risk engine woke up).
		a.LogEnd(cred.Account, firstEntry, false, false)
		return
	}
	contacts := a.Contacts(cred.Account, res.Session)
	exploited := a.SendBatches(cred.Account, res.Session, contacts,
		25+a.Rng.Intn(26), 2, event.ClassScam, false,
		[]string{"urgent", "transfer"}, 0) > 0
	if exploited {
		a.Exploited++
	}
	a.LogEnd(cred.Account, firstEntry, false, exploited)
}

// ---------------------------------------------------------------------
// ransomer — extortion: seize the account by changing the password
// within minutes of entry, then ransom it back via customized notes to
// the victim's closest contacts. Signature: hijacker password change
// almost immediately after entry plus small customized extortion sends.
// ---------------------------------------------------------------------

type ransomer struct{ *Scaffold }

func newRansomer(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.SouthAfrica)
	return &ransomer{NewScaffold("ransomer", cfg, env)}
}

func (a *ransomer) Start(end time.Time) { a.StartTicks(14*time.Minute, end, a.tick) }

func (a *ransomer) tick() {
	for i := 0; i < 2; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		ip, ok := a.PickIP(cred.Account)
		if !ok {
			a.Requeue(cred)
			return
		}
		a.Processed++
		res := a.Login(cred.Account, cred.Password, ip, a.Device())
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		contacts := a.Contacts(cred.Account, res.Session)
		acct, sess := cred.Account, res.Session
		pw := fmt.Sprintf("ransom-%06d", a.Rng.Intn(1_000_000))
		seizeAt := start.Add(a.Rng.DurationBetween(2*time.Minute, 9*time.Minute))
		a.E.Clock.Schedule(seizeAt, func() {
			// Seize first — the lockout IS the product being sold back.
			a.E.Auth.ChangePassword(acct, pw, sess, event.ActorHijacker)
			demand := randx.Sample(a.Rng, contacts, 5)
			if a.SendBatches(acct, sess, demand, len(demand), 1, event.ClassScam,
				true, []string{"ransom", "pay", "account"}, 0) > 0 {
				a.Exploited++
			}
			a.LogEnd(acct, start, true, true)
		})
	}
}

// ---------------------------------------------------------------------
// lateralphisher — the enterprise spread pattern (Ho et al. 2019): a
// compromised account phishes its own contacts with targeted lures, and
// every capture feeds the same actor, so compromise walks the org
// graph. Signature: targeted phishing-class mail carrying a live page
// from freshly hijacked accounts, chained over generations.
// ---------------------------------------------------------------------

type lateralPhisher struct{ *Scaffold }

func newLateralPhisher(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.US)
	return &lateralPhisher{NewScaffold("lateralphisher", cfg, env)}
}

func (a *lateralPhisher) Start(end time.Time) { a.StartTicks(10*time.Minute, end, a.tick) }

func (a *lateralPhisher) tick() {
	for i := 0; i < 2; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		ip, ok := a.PickIP(cred.Account)
		if !ok {
			a.Requeue(cred)
			return
		}
		a.Processed++
		res := a.Login(cred.Account, cred.Password, ip, a.Device())
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		contacts := a.Contacts(cred.Account, res.Session)
		if len(contacts) == 0 {
			a.LogEnd(cred.Account, start, false, false)
			continue
		}
		// A targeted page whose captures flow back into this actor's
		// queue: each generation of victims seeds the next.
		camp := phishkit.DefaultCampaign(event.TargetMail, len(contacts))
		camp.Victims = contacts
		camp.Sink = a
		camp.ClickRate = 0.30
		camp.Conversion = 0.20
		camp.ClickDelayMean = 20 * time.Hour
		pageID := a.E.Inf.Launch(camp)
		sent := a.SendBatches(cred.Account, res.Session, contacts,
			len(contacts), 3, event.ClassPhish, true,
			[]string{"document", "shared", "review"}, pageID)
		if sent > 0 {
			a.Exploited++
		}
		acct := cred.Account
		a.E.Clock.Schedule(start.Add(30*time.Minute), func() {
			a.LogEnd(acct, start, false, sent > 0)
		})
	}
}

// ---------------------------------------------------------------------
// impaas — impersonation-as-a-service (Campobasso & Allodi 2020): the
// kit ships the victim's own browser fingerprint and a residential exit
// in the victim's home country, so device-novelty and geo-velocity
// signals both read "the usual user". Signature: hijacker logins whose
// device equals the victim's fingerprint and whose IP geolocates home.
// ---------------------------------------------------------------------

type impaas struct{ *Scaffold }

func newIMPaaS(cfg Config, env Env) Actor {
	defaultCountry(&cfg, geo.France)
	return &impaas{NewScaffold("impaas", cfg, env)}
}

func (a *impaas) Start(end time.Time) { a.StartTicks(15*time.Minute, end, a.tick) }

func (a *impaas) tick() {
	for i := 0; i < 2; i++ {
		cred, ok := a.PopCred()
		if !ok {
			return
		}
		victim := a.E.Dir.Get(cred.Account)
		if victim == nil {
			continue
		}
		a.Processed++
		// The whole point: the victim's fingerprint from a residential
		// exit in the victim's own country — not the kit, not home base.
		ip := a.FreshIP(victim.HomeCountry)
		device := identity.DeviceFingerprint(cred.Account)
		res := a.Login(cred.Account, cred.Password, ip, device)
		if res.Outcome != event.LoginSuccess {
			continue
		}
		a.LoggedIn++
		start := a.E.Clock.Now()
		a.LogStart(cred.Account, res.Session)
		a.E.Mail.OpenFolder(cred.Account, event.FolderInbox, res.Session, event.ActorHijacker)
		contacts := a.Contacts(cred.Account, res.Session)
		acct, sess := cred.Account, res.Session
		// Blend in: a modest customized run after a day-plus of quiet,
		// volume low enough to pass for the owner.
		at := start.Add(a.Rng.DurationBetween(24*time.Hour, 48*time.Hour))
		a.E.Clock.Schedule(at, func() {
			batch := randx.Sample(a.Rng, contacts, 6)
			if a.SendBatches(acct, sess, batch, len(batch), 1, event.ClassScam,
				true, []string{"invoice", "payment"}, 0) > 0 {
				a.Exploited++
			}
			a.LogEnd(acct, start, false, true)
		})
	}
}
