// Package playbook is the pluggable attacker subsystem: the actor
// contract the manual hijacker crews (internal/hijacker) already satisfy
// — credential intake from phishing pages, scheduled ticks off the
// simulation clock, IP/device selection, event emission into the log —
// extracted into an interface plus shared scaffolding, with a registry of
// named attacker archetypes behind it.
//
// The manual crew of the source paper is the first registered playbook;
// the rest come from the anti-abuse FRAUD_TYPES catalog (smash & grab,
// low & slow, country hopper, data thief, credential stuffer, and
// friends) and from related work: the enterprise lateral phisher that
// spreads account→contacts inside the org graph (Ho et al. 2019, Shah et
// al. 2020), and the impersonation-as-a-service attacker that replays the
// victim's own browser fingerprint so device-novelty scoring is blind to
// it (Campobasso & Allodi 2020).
//
// Every actor stamps its archetype name on the login and hijack-lifecycle
// records it emits (ground truth that survives dumps), which is what the
// per-archetype detection scorecard (analysis.ArchetypeScorecard) keys
// on. Detectors must not read the tag.
package playbook

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/geo"
	"manualhijack/internal/hijacker"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// Actor is the attacker contract: an agent that receives phished
// credentials, schedules its own activity against the simulation clock,
// and works accounts through the same provider services victims use.
// hijacker.Crew satisfies it; so does every scaffolded archetype here.
type Actor interface {
	phishkit.CredentialSink
	// Name identifies the actor instance (unique within a world).
	Name() string
	// Archetype names the playbook the actor runs ("manual", "smashgrab",
	// ...) — the ground-truth tag on its emitted events.
	Archetype() string
	// Country is the actor's home origin (IP pool allocation).
	Country() geo.Country
	// Start schedules the actor's activity until end. Called exactly once.
	Start(end time.Time)
}

// StatsProvider is the optional counters surface actors expose for CLI
// tables and calibration (both hijacker.Crew and Scaffold implement it).
type StatsProvider interface {
	ActorStats() (processed, loggedIn, exploited int)
}

// Env is the world wiring an actor operates against. Rng is the world's
// root stream: every actor forks its own substream by name, so actor
// construction order cannot perturb anyone else's randomness.
type Env struct {
	Clock *simtime.Clock
	Log   *logstore.Store
	Rng   *randx.Rand
	Dir   *identity.Directory
	Mail  *mail.Service
	Auth  *auth.Service
	Inf   *phishkit.Infrastructure
	Plan  *geo.IPPlan
	// Listener receives hijack-ended callbacks (the victim manager);
	// optional.
	Listener hijacker.Listener
}

// Config is the archetype-independent knob set. Zero values mean the
// archetype's own defaults (each constructor fills in a home country, a
// working schedule, and IP discipline appropriate to its pattern).
type Config struct {
	Name    string
	Country geo.Country
	// IPPoolSize / MaxAccountsPerIPDay bound the per-day disciplined IP
	// pool (§5.1's under-10-accounts-per-IP discipline). Archetypes that
	// deliberately break the discipline (the credential stuffer) ignore
	// the cap by design.
	IPPoolSize          int
	MaxAccountsPerIPDay int
	// WorkStartUTC/WorkEndUTC bound the working day; equal values mean
	// around-the-clock operation. WeekendsOff keeps Saturday/Sunday idle.
	WorkStartUTC int
	WorkEndUTC   int
	WeekendsOff  bool
}

// Constructor builds one actor instance of an archetype.
type Constructor func(cfg Config, env Env) Actor

var archetypes = map[string]Constructor{}

// Register adds an archetype constructor under name. Panics on duplicate
// registration — archetype names are ground-truth labels and must be
// unambiguous.
func Register(name string, ctor Constructor) {
	if _, dup := archetypes[name]; dup {
		panic("playbook: duplicate archetype " + name)
	}
	archetypes[name] = ctor
}

// Names returns every registered archetype name, sorted.
func Names() []string {
	out := make([]string, 0, len(archetypes))
	for name := range archetypes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds an actor of the named archetype. Unknown names error (they
// would silently drop attack traffic otherwise).
func New(archetype string, cfg Config, env Env) (Actor, error) {
	ctor, ok := archetypes[archetype]
	if !ok {
		return nil, fmt.Errorf("playbook: unknown archetype %q (have %s)",
			archetype, strings.Join(Names(), ", "))
	}
	if cfg.Name == "" {
		cfg.Name = archetype
	}
	return ctor(cfg, env), nil
}

// RosterEntry is one parsed `-archetypes` element: an archetype and how
// many instances of it to field.
type RosterEntry struct {
	Archetype string
	Count     int
}

// ParseRoster parses a CLI roster spec like "smashgrab:3,stuffer:2" (a
// bare name means count 1). Every name is validated against the registry
// so typos fail loudly instead of silently fielding no attackers.
func ParseRoster(spec string) ([]RosterEntry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []RosterEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if _, ok := archetypes[name]; !ok {
			return nil, fmt.Errorf("playbook: unknown archetype %q (have %s)",
				name, strings.Join(Names(), ", "))
		}
		count := 1
		if hasCount {
			n, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("playbook: bad count %q for archetype %q", countStr, name)
			}
			count = n
		}
		out = append(out, RosterEntry{Archetype: name, Count: count})
	}
	return out, nil
}

// newManual wraps a manual hijacker crew (the paper's attacker) as a
// registered playbook. It runs the crew's full pipeline — office-hours
// queue work, ~3-minute value assessment, scam/contact-phishing
// exploitation, retention tactics.
func newManual(cfg Config, env Env) Actor {
	if cfg.Country == "" {
		cfg.Country = geo.IvoryCoast
	}
	hcfg := hijacker.DefaultConfig(cfg.Name, cfg.Country, hijacker.LangEN)
	if cfg.IPPoolSize > 0 {
		hcfg.IPPoolSize = cfg.IPPoolSize
	}
	if cfg.MaxAccountsPerIPDay > 0 {
		hcfg.MaxAccountsPerIPDay = cfg.MaxAccountsPerIPDay
	}
	if cfg.WorkEndUTC > cfg.WorkStartUTC {
		hcfg.WorkStartUTC = cfg.WorkStartUTC
		hcfg.WorkEndUTC = cfg.WorkEndUTC
		hcfg.LunchUTC = cfg.WorkStartUTC + (cfg.WorkEndUTC-cfg.WorkStartUTC)/2
	}
	crew := hijacker.NewCrew(hcfg, env.Clock, env.Log, env.Rng,
		env.Dir, env.Mail, env.Auth, env.Inf, env.Plan)
	if env.Listener != nil {
		crew.SetListener(env.Listener)
	}
	return crew
}

func init() {
	Register(hijacker.ManualArchetype, newManual)
}
