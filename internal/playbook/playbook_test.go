package playbook_test

import (
	"testing"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/playbook"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// harness is a small world with a permissive login defense, so each
// archetype's behavior — not the defense — is what the signature tests
// observe.
type harness struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	plan  *geo.IPPlan
	env   playbook.Env
}

func newHarness(t *testing.T, seed int64, accounts int) *harness {
	t.Helper()
	// Monday 00:00 UTC keeps work-hour math predictable.
	start := time.Date(2012, 11, 5, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewClock(start)
	rng := randx.New(seed)
	idCfg := identity.DefaultConfig(start)
	idCfg.N = accounts
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	plan := geo.NewIPPlan(4)
	mailSvc := mail.NewService(dir, clock, log)
	mailSvc.Seed(rng, mail.DefaultSeedConfig())
	ch := challenge.New(challenge.DefaultConfig(), rng.Fork("challenge"))
	authSvc := auth.NewService(dir, clock, log, nil, ch, auth.Config{RiskEnabled: false})
	inf := phishkit.NewInfrastructure(clock, log, dir, plan, rng)
	return &harness{
		clock: clock, log: log, dir: dir, plan: plan,
		env: playbook.Env{
			Clock: clock, Log: log, Rng: rng, Dir: dir,
			Mail: mailSvc, Auth: authSvc, Inf: inf, Plan: plan,
		},
	}
}

// actor builds and starts one archetype instance with the given horizon.
func (h *harness) actor(t *testing.T, archetype string, days int) playbook.Actor {
	t.Helper()
	a, err := playbook.New(archetype, playbook.Config{}, h.env)
	if err != nil {
		t.Fatal(err)
	}
	if a.Archetype() != archetype {
		t.Fatalf("Archetype() = %q, want %q", a.Archetype(), archetype)
	}
	a.Start(h.clock.Now().Add(time.Duration(days) * 24 * time.Hour))
	return a
}

func (h *harness) feed(a playbook.Actor, ids ...identity.AccountID) {
	for _, id := range ids {
		acct := h.dir.Get(id)
		a.CredentialCaptured(phishkit.Credential{
			Account: id, Addr: acct.Addr, Password: acct.Password, At: h.clock.Now(),
		})
	}
}

func (h *harness) run(days int) {
	h.clock.RunUntil(h.clock.Now().Add(time.Duration(days) * 24 * time.Hour))
}

// scan walks every logged event.
func (h *harness) scan(fn func(event.Event)) { h.log.Scan(fn) }

// logins returns the archetype-tagged login records, in log order.
func (h *harness) logins(archetype string) []event.Login {
	var out []event.Login
	h.scan(func(e event.Event) {
		if l, ok := e.(event.Login); ok && l.Archetype == archetype {
			out = append(out, l)
		}
	})
	return out
}

// sessions returns the successful-login session IDs for an archetype.
func (h *harness) sessions(archetype string) map[event.SessionID]bool {
	out := map[event.SessionID]bool{}
	for _, l := range h.logins(archetype) {
		if l.Outcome == event.LoginSuccess {
			out[l.Session] = true
		}
	}
	return out
}

// sends returns hijacker-sent messages within the given sessions.
func (h *harness) sends(sess map[event.SessionID]bool) []event.MessageSent {
	var out []event.MessageSent
	h.scan(func(e event.Event) {
		if m, ok := e.(event.MessageSent); ok && m.Actor == event.ActorHijacker && sess[m.Session] {
			out = append(out, m)
		}
	})
	return out
}

func (h *harness) hijackSpan(t *testing.T, archetype string) (started event.HijackStarted, ended event.HijackEnded) {
	t.Helper()
	var haveS, haveE bool
	h.scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.HijackStarted:
			if ev.Archetype == archetype && !haveS {
				started, haveS = ev, true
			}
		case event.HijackEnded:
			if ev.Archetype == archetype && !haveE {
				ended, haveE = ev, true
			}
		}
	})
	if !haveS || !haveE {
		t.Fatalf("%s: hijack lifecycle incomplete (started=%v ended=%v)", archetype, haveS, haveE)
	}
	return started, ended
}

func TestRegistryHasAllPlaybooks(t *testing.T) {
	want := []string{
		"datathief", "hopper", "impaas", "lateralphisher", "lowslow",
		"manual", "ransomer", "smashgrab", "sleeper", "spamcannon", "stuffer",
	}
	names := map[string]bool{}
	for _, n := range playbook.Names() {
		names[n] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("archetype %q not registered", n)
		}
	}
	if len(playbook.Names()) < 10 {
		t.Fatalf("only %d playbooks registered, want >= 10", len(playbook.Names()))
	}
}

func TestParseRoster(t *testing.T) {
	got, err := playbook.ParseRoster(" smashgrab:3, stuffer:2 ,datathief ")
	if err != nil {
		t.Fatal(err)
	}
	want := []playbook.RosterEntry{
		{Archetype: "smashgrab", Count: 3},
		{Archetype: "stuffer", Count: 2},
		{Archetype: "datathief", Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := playbook.ParseRoster("nosucharchetype:1"); err == nil {
		t.Error("unknown archetype accepted")
	}
	if _, err := playbook.ParseRoster("smashgrab:0"); err == nil {
		t.Error("zero count accepted")
	}
	if entries, err := playbook.ParseRoster(""); err != nil || entries != nil {
		t.Errorf("empty spec: got %v, %v", entries, err)
	}
}

func TestUnknownArchetypeErrors(t *testing.T) {
	h := newHarness(t, 1, 10)
	if _, err := playbook.New("nosuch", playbook.Config{}, h.env); err == nil {
		t.Fatal("unknown archetype did not error")
	}
}

// Signature: the manual crew rides the playbook registry unchanged —
// office-hours queue work with manual-tagged logins and lifecycle events.
func TestManualSignature(t *testing.T) {
	h := newHarness(t, 5, 60)
	a := h.actor(t, "manual", 4)
	h.feed(a, 1, 2, 3)
	h.run(4)

	logins := h.logins("manual")
	if len(logins) == 0 {
		t.Fatal("no manual-tagged logins")
	}
	for _, l := range logins {
		if l.Time.Hour() < 8 || l.Time.Hour() >= 17 {
			t.Errorf("manual login at %v — outside office hours", l.Time)
		}
	}
	if st, _ := h.hijackSpan(t, "manual"); st.Archetype != "manual" {
		t.Errorf("HijackStarted archetype = %q", st.Archetype)
	}
}

// Signature: contact exfil plus a 80–200-slot scam burst within hours of
// entry, owner locked out, account burned inside a day.
func TestSmashGrabSignature(t *testing.T) {
	h := newHarness(t, 7, 60)
	a := h.actor(t, "smashgrab", 3)
	h.feed(a, 1)
	h.run(3)

	started, ended := h.hijackSpan(t, "smashgrab")
	if !ended.LockedOut {
		t.Error("smashgrab did not lock the owner out")
	}
	if d := ended.Time.Sub(started.Time); d <= 0 || d > 24*time.Hour {
		t.Errorf("account burned after %v, want within 24h", d)
	}
	slots := 0
	var firstSend time.Time
	for _, m := range h.sends(h.sessions("smashgrab")) {
		if m.Class != event.ClassScam {
			t.Errorf("smashgrab sent %v, want scam class only", m.Class)
		}
		if firstSend.IsZero() {
			firstSend = m.Time
		}
		slots += len(m.Recipients)
	}
	if slots < 80 {
		t.Errorf("scam blast used %d recipient slots, want >= 80", slots)
	}
	if gap := firstSend.Sub(started.Time); gap > 3*time.Hour {
		t.Errorf("first blast %v after entry, want within 3h", gap)
	}
	locked := false
	h.scan(func(e event.Event) {
		if p, ok := e.(event.PasswordChanged); ok && p.Actor == event.ActorHijacker && p.Account == started.Account {
			locked = true
		}
	})
	if !locked {
		t.Error("no hijacker password change logged")
	}
}

// Signature: first touch days after capture, small customized waves, an
// activity span of at least 4 days from capture, and no lockout.
func TestLowSlowSignature(t *testing.T) {
	h := newHarness(t, 11, 60)
	a := h.actor(t, "lowslow", 12)
	captureAt := h.clock.Now()
	h.feed(a, 1)
	h.run(12)

	logins := h.logins("lowslow")
	if len(logins) == 0 {
		t.Fatal("no lowslow logins")
	}
	if wait := logins[0].Time.Sub(captureAt); wait < 2*24*time.Hour {
		t.Errorf("first touch %v after capture, want >= 2 days", wait)
	}
	sends := h.sends(h.sessions("lowslow"))
	if len(sends) < 3 {
		t.Fatalf("lowslow sent %d waves, want several small ones", len(sends))
	}
	var last time.Time
	for _, m := range sends {
		if len(m.Recipients) > 8 {
			t.Errorf("wave of %d recipients — too loud for low & slow", len(m.Recipients))
		}
		if !m.Customized {
			t.Error("lowslow send not customized")
		}
		last = m.Time
	}
	if span := last.Sub(captureAt); span < 4*24*time.Hour {
		t.Errorf("activity span %v, want >= 4 days", span)
	}
	_, ended := h.hijackSpan(t, "lowslow")
	if ended.LockedOut {
		t.Error("lowslow locked the owner out — the account should stay open")
	}
}

// Signature: one account entered from at least three countries.
func TestHopperSignature(t *testing.T) {
	h := newHarness(t, 13, 60)
	a := h.actor(t, "hopper", 10)
	h.feed(a, 1)
	h.run(10)

	countries := map[geo.Country]bool{}
	for _, l := range h.logins("hopper") {
		if l.Outcome == event.LoginSuccess {
			countries[h.plan.Locate(l.IP)] = true
		}
	}
	if len(countries) < 3 {
		t.Fatalf("hopper crossed %d countries (%v), want >= 3", len(countries), countries)
	}
}

// Signature: download-then-close — contact exfil and folder sweeps with
// zero outbound mail, no lockout, done within the hour.
func TestDataThiefSignature(t *testing.T) {
	h := newHarness(t, 17, 60)
	a := h.actor(t, "datathief", 2)
	h.feed(a, 1, 2)
	h.run(2)

	sess := h.sessions("datathief")
	if len(sess) == 0 {
		t.Fatal("no datathief entries")
	}
	if sends := h.sends(sess); len(sends) != 0 {
		t.Fatalf("datathief sent %d messages, want zero spam ever", len(sends))
	}
	var exfil, folders int
	h.scan(func(e event.Event) {
		switch ev := e.(type) {
		case event.ContactsViewed:
			if sess[ev.Session] {
				exfil++
			}
		case event.FolderOpened:
			if sess[ev.Session] {
				folders++
			}
		}
	})
	if exfil == 0 || folders == 0 {
		t.Errorf("download phase incomplete: %d contact views, %d folder opens", exfil, folders)
	}
	started, ended := h.hijackSpan(t, "datathief")
	if ended.LockedOut {
		t.Error("datathief locked the owner out")
	}
	if d := ended.Time.Sub(started.Time); d > time.Hour {
		t.Errorf("thief lingered %v, want under an hour", d)
	}
}

// Signature: one IP pushed through 3+ distinct accounts within minutes —
// the anti-discipline shape.
func TestStufferSignature(t *testing.T) {
	h := newHarness(t, 19, 60)
	a := h.actor(t, "stuffer", 1)
	h.feed(a, 1, 2, 3, 4, 5)
	h.run(1)

	type use struct {
		accounts map[identity.AccountID]bool
		first    time.Time
		last     time.Time
	}
	byIP := map[string]*use{}
	for _, l := range h.logins("stuffer") {
		key := l.IP.String()
		u := byIP[key]
		if u == nil {
			u = &use{accounts: map[identity.AccountID]bool{}, first: l.Time}
			byIP[key] = u
		}
		u.accounts[l.Account] = true
		u.last = l.Time
	}
	burst := false
	for _, u := range byIP {
		if len(u.accounts) >= 3 && u.last.Sub(u.first) <= 30*time.Minute {
			burst = true
		}
	}
	if !burst {
		t.Fatalf("no single-IP burst of >= 3 accounts within 30 minutes (IPs: %d)", len(byIP))
	}
	if sends := h.sends(h.sessions("stuffer")); len(sends) != 0 {
		t.Errorf("stuffer sent %d messages, want validation only", len(sends))
	}
}

// Signature: bulk-class spam at maximum rate immediately after entry.
func TestSpamCannonSignature(t *testing.T) {
	h := newHarness(t, 23, 60)
	a := h.actor(t, "spamcannon", 1)
	h.feed(a, 1)
	h.run(1)

	logins := h.logins("spamcannon")
	if len(logins) == 0 {
		t.Fatal("no spamcannon entries")
	}
	sends := h.sends(h.sessions("spamcannon"))
	if len(sends) == 0 {
		t.Fatal("cannon fired nothing")
	}
	entry := logins[0].Time
	for _, m := range sends {
		if m.Class != event.ClassSpamBulk {
			t.Errorf("sent %v, want bulk spam class", m.Class)
		}
		if gap := m.Time.Sub(entry); gap > time.Hour {
			t.Errorf("send %v after entry, want within the hour", gap)
		}
	}
}

// Signature: a quiet validation entry, then a return at least 7 days
// later on the same account.
func TestSleeperSignature(t *testing.T) {
	h := newHarness(t, 29, 60)
	a := h.actor(t, "sleeper", 12)
	h.feed(a, 1)
	h.run(12)

	var ok []event.Login
	for _, l := range h.logins("sleeper") {
		if l.Outcome == event.LoginSuccess {
			ok = append(ok, l)
		}
	}
	if len(ok) < 2 {
		t.Fatalf("sleeper logged in %d times, want validate + return", len(ok))
	}
	if gap := ok[len(ok)-1].Time.Sub(ok[0].Time); gap < 7*24*time.Hour {
		t.Errorf("return after %v, want >= 7 days of silence", gap)
	}
}

// Signature: the owner is locked out within minutes of entry and the
// extortion note goes out customized to a handful of contacts.
func TestRansomerSignature(t *testing.T) {
	h := newHarness(t, 31, 60)
	a := h.actor(t, "ransomer", 1)
	h.feed(a, 1)
	h.run(1)

	started, ended := h.hijackSpan(t, "ransomer")
	if !ended.LockedOut {
		t.Error("ransomer did not seize the account")
	}
	var seizedAt time.Time
	h.scan(func(e event.Event) {
		if p, ok := e.(event.PasswordChanged); ok && p.Actor == event.ActorHijacker && p.Account == started.Account && seizedAt.IsZero() {
			seizedAt = p.Time
		}
	})
	if seizedAt.IsZero() {
		t.Fatal("no hijacker password change")
	}
	if gap := seizedAt.Sub(started.Time); gap > 15*time.Minute {
		t.Errorf("seizure %v after entry, want within 15 minutes", gap)
	}
	for _, m := range h.sends(h.sessions("ransomer")) {
		if !m.Customized || m.Class != event.ClassScam {
			t.Errorf("ransom note customized=%v class=%v, want customized scam", m.Customized, m.Class)
		}
		if len(m.Recipients) > 5 {
			t.Errorf("ransom note to %d recipients, want a handful", len(m.Recipients))
		}
	}
}

// Signature: targeted phishing-class mail carrying a live page from the
// hijacked account to its own contacts — and the page's captures feed
// the same actor, so the compromise can walk the contact graph.
func TestLateralPhisherSignature(t *testing.T) {
	h := newHarness(t, 37, 120)
	a := h.actor(t, "lateralphisher", 10)
	h.feed(a, 1, 2, 3, 4, 5, 6)
	h.run(10)

	sends := h.sends(h.sessions("lateralphisher"))
	if len(sends) == 0 {
		t.Fatal("no lateral sends")
	}
	for _, m := range sends {
		if m.Class != event.ClassPhish {
			t.Errorf("sent %v, want phish class", m.Class)
		}
		if m.PageID == 0 {
			t.Error("phish mail without a live page")
		}
		page := h.env.Inf.Page(m.PageID)
		if page == nil || !page.Targeted {
			t.Errorf("page %d not a targeted campaign page", m.PageID)
		}
	}
	// The campaign sink is the actor itself: captures from the page land
	// back in its own queue (the lateral chain).
	captured := 0
	h.scan(func(e event.Event) {
		if c, ok := e.(event.CredentialPhished); ok && !c.Decoy {
			if p := h.env.Inf.Page(c.Page); p != nil && p.Targeted {
				captured++
			}
		}
	})
	if captured == 0 {
		t.Error("no lateral captures from the targeted pages (seed chosen to convert)")
	}
}

// Signature: every login replays the victim's own device fingerprint
// from an IP in the victim's home country — device novelty and
// geo-velocity both blind.
func TestIMPaaSSignature(t *testing.T) {
	h := newHarness(t, 41, 60)
	a := h.actor(t, "impaas", 4)
	h.feed(a, 1, 2)
	h.run(4)

	logins := h.logins("impaas")
	if len(logins) == 0 {
		t.Fatal("no impaas logins")
	}
	for _, l := range logins {
		if want := identity.DeviceFingerprint(l.Account); l.DeviceID != want {
			t.Errorf("account %d: device %q, want the victim's own fingerprint %q", l.Account, l.DeviceID, want)
		}
		if home := h.dir.Get(l.Account).HomeCountry; h.plan.Locate(l.IP) != home {
			t.Errorf("account %d: login from %v, want home country %v", l.Account, h.plan.Locate(l.IP), home)
		}
	}
}
