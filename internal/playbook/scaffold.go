package playbook

import (
	"net/netip"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/hijacker"
	"manualhijack/internal/identity"
	"manualhijack/internal/mail"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
)

// Scaffold carries the machinery every archetype shares: the forked
// random stream, the credential queue with dedupe, the per-day
// disciplined IP pool, the kit device fingerprint, hijack lifecycle
// logging, and headline counters. Archetypes embed it and add behavior.
type Scaffold struct {
	Cfg Config
	E   Env
	// Rng is the actor's private substream, forked by name so
	// construction order cannot perturb other actors.
	Rng *randx.Rand

	arch   string
	device string

	queue []phishkit.Credential
	seen  map[identity.AccountID]bool

	ticking bool
	end     time.Time

	// Disciplined per-day IP pool (the crew's pickIP generalized): fill
	// one cloaking-service address to the per-IP daily account cap before
	// allocating the next, up to IPPoolSize fresh addresses per day.
	ips        []netip.Addr
	ipDayStart time.Time
	ipUse      map[netip.Addr]map[identity.AccountID]bool

	Processed int
	LoggedIn  int
	Exploited int
}

// NewScaffold builds the shared actor base for one archetype instance.
func NewScaffold(archetype string, cfg Config, env Env) *Scaffold {
	if cfg.IPPoolSize <= 0 {
		cfg.IPPoolSize = 30
	}
	if cfg.MaxAccountsPerIPDay <= 0 {
		cfg.MaxAccountsPerIPDay = 10
	}
	return &Scaffold{
		Cfg:    cfg,
		E:      env,
		Rng:    env.Rng.Fork("playbook/" + cfg.Name),
		arch:   archetype,
		device: "kit-" + cfg.Name,
		seen:   map[identity.AccountID]bool{},
		ipUse:  map[netip.Addr]map[identity.AccountID]bool{},
	}
}

// Name implements Actor.
func (s *Scaffold) Name() string { return s.Cfg.Name }

// Country implements Actor.
func (s *Scaffold) Country() geo.Country { return s.Cfg.Country }

// Archetype implements Actor.
func (s *Scaffold) Archetype() string { return s.arch }

// ActorStats implements StatsProvider.
func (s *Scaffold) ActorStats() (processed, loggedIn, exploited int) {
	return s.Processed, s.LoggedIn, s.Exploited
}

// CredentialCaptured implements phishkit.CredentialSink: captured
// credentials enter the work queue, deduplicated per account.
func (s *Scaffold) CredentialCaptured(cred phishkit.Credential) {
	if s.seen[cred.Account] {
		return
	}
	s.seen[cred.Account] = true
	s.queue = append(s.queue, cred)
}

// QueueLen returns the pending-credential backlog.
func (s *Scaffold) QueueLen() int { return len(s.queue) }

// PopCred takes the oldest queued credential.
func (s *Scaffold) PopCred() (phishkit.Credential, bool) {
	if len(s.queue) == 0 {
		return phishkit.Credential{}, false
	}
	cred := s.queue[0]
	s.queue = s.queue[1:]
	return cred, true
}

// Requeue returns a credential to the front of the queue (IP pool
// exhausted for the day; retry tomorrow).
func (s *Scaffold) Requeue(cred phishkit.Credential) {
	s.queue = append([]phishkit.Credential{cred}, s.queue...)
}

// StartTicks begins the actor's periodic work loop. Guards against
// double starts, which would double-spend the random stream.
func (s *Scaffold) StartTicks(every time.Duration, end time.Time, tick func()) {
	if s.ticking {
		panic("playbook: actor " + s.Cfg.Name + " started twice")
	}
	s.ticking = true
	s.end = end
	s.E.Clock.Every(every, end, tick)
}

// MarkStarted records the activity horizon for archetypes that schedule
// everything from credential callbacks instead of a tick loop.
func (s *Scaffold) MarkStarted(end time.Time) {
	if s.ticking {
		panic("playbook: actor " + s.Cfg.Name + " started twice")
	}
	s.ticking = true
	s.end = end
}

// End returns the activity horizon set at Start.
func (s *Scaffold) End() time.Time { return s.end }

// Working reports whether t falls inside the configured working window.
// Zero-width windows mean the actor operates around the clock.
func (s *Scaffold) Working(t time.Time) bool {
	if s.Cfg.WeekendsOff {
		switch t.Weekday() {
		case time.Saturday, time.Sunday:
			return false
		}
	}
	if s.Cfg.WorkEndUTC <= s.Cfg.WorkStartUTC {
		return true
	}
	h := t.Hour()
	return h >= s.Cfg.WorkStartUTC && h < s.Cfg.WorkEndUTC
}

// PickIP returns a home-country IP whose distinct-account count today is
// under the discipline cap, filling one address before allocating the
// next. Reports false when the day's pool is exhausted.
func (s *Scaffold) PickIP(acct identity.AccountID) (netip.Addr, bool) {
	day := dayOf(s.E.Clock.Now())
	if !s.ipDayStart.Equal(day) {
		s.ipDayStart = day
		s.ips = s.ips[:0]
		s.ipUse = map[netip.Addr]map[identity.AccountID]bool{}
	}
	for _, ip := range s.ips {
		u := s.ipUse[ip]
		if u[acct] || len(u) < s.Cfg.MaxAccountsPerIPDay {
			u[acct] = true
			return ip, true
		}
	}
	if len(s.ips) >= s.Cfg.IPPoolSize {
		return netip.Addr{}, false
	}
	ip := s.E.Plan.Addr(s.Rng, s.Cfg.Country)
	s.ips = append(s.ips, ip)
	s.ipUse[ip] = map[identity.AccountID]bool{acct: true}
	return ip, true
}

// FreshIP draws a new address in the given country, outside the
// disciplined pool — for archetypes whose signature is precisely that
// they ignore IP discipline (stuffers, hoppers).
func (s *Scaffold) FreshIP(country geo.Country) netip.Addr {
	return s.E.Plan.Addr(s.Rng, country)
}

// Device is the actor's shared kit fingerprint.
func (s *Scaffold) Device() string { return s.device }

// Principal is the challenge identity archetypes present: no phones, a
// sliver of guessing skill — scaffolded archetypes are not the paper's
// phone-equipped manual crews, so challenges usually stop them.
func (s *Scaffold) Principal() challenge.Principal {
	return challenge.Principal{KnowledgeSkill: 0.1}
}

// Login performs one tagged hijacker login attempt.
func (s *Scaffold) Login(acct identity.AccountID, password string, ip netip.Addr, device string) auth.LoginResult {
	return s.E.Auth.Login(auth.LoginReq{
		Account: acct, Password: password, IP: ip, DeviceID: device,
		Principal: s.Principal(), Actor: event.ActorHijacker,
		Archetype: s.arch,
	})
}

// LogStart emits the tagged HijackStarted record.
func (s *Scaffold) LogStart(acct identity.AccountID, sess event.SessionID) {
	s.E.Log.Append(event.HijackStarted{
		Base: event.Base{Time: s.E.Clock.Now()}, Account: acct,
		Crew: s.Cfg.Name, Session: sess, Archetype: s.arch,
	})
}

// LogEnd emits the tagged HijackEnded record and notifies the listener
// so victim recovery machinery can react.
func (s *Scaffold) LogEnd(acct identity.AccountID, hijackedAt time.Time, lockedOut, exploited bool) {
	s.E.Log.Append(event.HijackEnded{
		Base: event.Base{Time: s.E.Clock.Now()}, Account: acct,
		Crew: s.Cfg.Name, LockedOut: lockedOut, Archetype: s.arch,
	})
	if s.E.Listener != nil {
		s.E.Listener.HijackEnded(s.Cfg.Name, acct, hijackedAt, lockedOut, exploited)
	}
}

// Contacts harvests the account's address book in-session.
func (s *Scaffold) Contacts(acct identity.AccountID, sess event.SessionID) []identity.Address {
	return s.E.Mail.ViewContacts(acct, sess, event.ActorHijacker)
}

// SendBatches blasts recipients in ChunkContacts batches from the
// hijacked account until the recipient-slot target is reached (the full
// list repeats if shorter than the target). Returns recipient slots used.
func (s *Scaffold) SendBatches(acct identity.AccountID, sess event.SessionID, recipients []identity.Address, target, nChunks int, class event.MessageClass, customized bool, keywords []string, pageID event.PageID) int {
	rec := s.E.Dir.Get(acct)
	if rec == nil || len(recipients) == 0 || target <= 0 {
		return 0
	}
	chunks := hijacker.ChunkContacts(recipients, nChunks)
	sent := 0
	for sent < target {
		for _, ch := range chunks {
			if sent >= target {
				break
			}
			s.E.Mail.Send(mail.SendReq{
				FromAcct: acct, FromAddr: rec.Addr, Recipients: ch,
				Keywords: keywords, Class: class, Customized: customized,
				PageID: pageID, Session: sess, Actor: event.ActorHijacker,
			})
			sent += len(ch)
		}
	}
	return sent
}

// dayOf truncates t to its UTC day (IP pool bookkeeping).
func dayOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}
