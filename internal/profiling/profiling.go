// Package profiling wires the standard pprof/trace collectors into the
// command-line binaries, so every optimization round starts from profile
// evidence instead of guesses (ISSUE 4). The binaries expose it as
// -cpuprofile/-memprofile/-trace flags; `go tool pprof` and
// `go tool trace` read the outputs.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable the collector.
type Config struct {
	CPUProfile string // pprof CPU profile, sampled over the whole run
	MemProfile string // pprof allocs-space heap profile, written at Stop
	Trace      string // runtime execution trace
}

// Start begins the enabled collectors. The returned stop function flushes
// and closes them; call it exactly once (normally via defer) before the
// process exits, or the profiles will be empty or truncated. A failure to
// open or start any collector stops the ones already running and returns
// the error, so a half-configured run never silently profiles less than
// asked.
func Start(cfg Config) (stop func() error, err error) {
	var stops []func() error
	stopAll := func() error {
		// Stop in reverse start order; keep the first error.
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		stops = nil
		return first
	}
	defer func() {
		if err != nil {
			stopAll()
		}
	}()

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: start trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// An up-to-date heap picture, not one lagging a GC cycle.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("profiling: write mem profile: %w", err)
			}
			return f.Close()
		})
	}
	return stopAll, nil
}
