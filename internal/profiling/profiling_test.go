package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNothingEnabled(t *testing.T) {
	stop, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	sink := 0
	buf := make([]byte, 0, 1)
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
		if i%100_000 == 0 {
			buf = append(make([]byte, 1024), buf...)
		}
	}
	_ = sink
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	stop, err := Start(Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x.pprof")})
	if err == nil {
		stop()
		t.Fatal("unwritable profile path accepted")
	}
}
