//go:build !linux && !darwin

package profiling

// PeakRSS is unavailable on this platform; callers treat 0 as "unknown".
func PeakRSS() uint64 { return 0 }
