//go:build linux || darwin

package profiling

import (
	"runtime"
	"syscall"
)

// PeakRSS returns the process's peak resident set size in bytes, from
// getrusage(2). It returns 0 when the kernel does not report it. The
// study binaries print it so the bench harness can record real memory
// high-water marks, not just Go-heap numbers — the spilled-segment log's
// whole point is bounding this figure.
func PeakRSS() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := uint64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		return rss // already bytes
	}
	return rss * 1024 // linux reports kilobytes
}
