// Package randx provides the deterministic random machinery for the study.
//
// Every subsystem gets its own *Rand forked from a root seed by name, so
// adding randomness consumption to one subsystem does not perturb the
// streams of the others — a property the experiment tests rely on. All
// distributions needed by the simulation (exponential, log-normal, Zipf,
// weighted categorical, Bernoulli) live here so the agent code stays
// declarative.
package randx

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Rand is a deterministic random stream. It embeds *rand.Rand and adds the
// distributions the simulation uses.
type Rand struct {
	*rand.Rand
	seed int64
}

// New returns a stream seeded with seed.
func New(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this stream was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Fork derives an independent stream from this stream's seed and a name.
// Forking is a pure function of (seed, name): it does not consume from the
// parent stream, so sibling subsystems are isolated from each other.
func (r *Rand) Fork(name string) *Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", r.seed, name)
	return New(int64(h.Sum64()))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func (r *Rand) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(r.Exp(float64(mean)))
}

// LogNormal returns a log-normally distributed value where mu and sigma are
// the parameters of the underlying normal (i.e. the median is exp(mu)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// LogNormalMedian returns a log-normal sample parameterized by its median
// and the sigma of the underlying normal. This form is convenient when the
// paper states "average/typical X" and we want a heavy right tail.
func (r *Rand) LogNormalMedian(median float64, sigma float64) float64 {
	return r.LogNormal(math.Log(median), sigma)
}

// DurationLogNormal returns a log-normal duration with the given median.
func (r *Rand) DurationLogNormal(median time.Duration, sigma float64) time.Duration {
	return time.Duration(r.LogNormalMedian(float64(median), sigma))
}

// Between returns a uniform value in [lo, hi).
func (r *Rand) Between(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// DurationBetween returns a uniform duration in [lo, hi).
func (r *Rand) DurationBetween(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)))
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice, which always indicates a simulation bug.
func Pick[T any](r *Rand, items []T) T {
	if len(items) == 0 {
		panic("randx: Pick from empty slice")
	}
	return items[r.Intn(len(items))]
}

// Sample returns k distinct elements drawn without replacement. If
// k >= len(items) a shuffled copy of all items is returned.
func Sample[T any](r *Rand, items []T, k int) []T {
	n := len(items)
	if k > n {
		k = n
	}
	idx := r.Perm(n)[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// Shuffle shuffles items in place.
func Shuffle[T any](r *Rand, items []T) {
	r.Rand.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
}

// Weighted selects among weighted alternatives. Build one with NewWeighted;
// it is immutable and safe to share across (single-goroutine) callers.
type Weighted[T any] struct {
	items []T
	cum   []float64
	total float64
}

// NewWeighted builds a weighted chooser. Weights must be non-negative and
// sum to a positive total.
func NewWeighted[T any](items []T, weights []float64) *Weighted[T] {
	if len(items) != len(weights) {
		panic("randx: items/weights length mismatch")
	}
	if len(items) == 0 {
		panic("randx: empty weighted chooser")
	}
	w := &Weighted[T]{items: append([]T(nil), items...), cum: make([]float64, len(weights))}
	for i, wt := range weights {
		if wt < 0 || math.IsNaN(wt) {
			panic("randx: negative or NaN weight")
		}
		w.total += wt
		w.cum[i] = w.total
	}
	if w.total <= 0 {
		panic("randx: zero total weight")
	}
	return w
}

// Choose draws one item according to the weights.
func (w *Weighted[T]) Choose(r *Rand) T {
	x := r.Float64() * w.total
	i := sort.SearchFloat64s(w.cum, x)
	if i >= len(w.items) {
		i = len(w.items) - 1
	}
	return w.items[i]
}

// Len reports the number of alternatives.
func (w *Weighted[T]) Len() int { return len(w.items) }

// Zipf draws ranks in [0, n) with a Zipf-like distribution of exponent s.
// Used for popularity skews (search-term frequency, contact activity).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(r.Rand, s, 1, n-1)}
}

// Rank draws one rank.
func (z *Zipf) Rank() int { return int(z.z.Uint64()) }

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ClampedNormal returns a normal sample with the given mean and stddev,
// clamped to [lo, hi].
func (r *Rand) ClampedNormal(mean, stddev, lo, hi float64) float64 {
	x := r.NormFloat64()*stddev + mean
	return math.Min(hi, math.Max(lo, x))
}
