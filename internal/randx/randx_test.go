package randx

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	root := New(7)
	a1 := root.Fork("auth")
	// Consuming from a sibling must not perturb another fork.
	m := root.Fork("mail")
	for i := 0; i < 50; i++ {
		m.Float64()
	}
	a2 := root.Fork("auth")
	for i := 0; i < 100; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatal("fork stream depends on sibling consumption")
		}
	}
}

func TestForkDistinctNames(t *testing.T) {
	root := New(7)
	if root.Fork("a").Seed() == root.Fork("b").Seed() {
		t.Fatal("distinct fork names share a seed")
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(1)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestBoolRate(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("Bool(0.3) rate = %.3f", rate)
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp(10) mean = %.3f", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(9)
	var below int
	const n = 20000
	for i := 0; i < n; i++ {
		if r.LogNormalMedian(100, 0.8) < 100 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median check: %.3f below the stated median", frac)
	}
}

func TestWeightedShares(t *testing.T) {
	r := New(11)
	w := NewWeighted([]string{"a", "b", "c"}, []float64{70, 20, 10})
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[w.Choose(r)]++
	}
	if got := float64(counts["a"]) / n; got < 0.67 || got > 0.73 {
		t.Fatalf("share(a) = %.3f, want ~0.70", got)
	}
	if got := float64(counts["c"]) / n; got < 0.08 || got > 0.12 {
		t.Fatalf("share(c) = %.3f, want ~0.10", got)
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { NewWeighted([]string{"a"}, []float64{1, 2}) },
		"empty":    func() { NewWeighted([]string{}, []float64{}) },
		"negative": func() { NewWeighted([]string{"a"}, []float64{-1}) },
		"zero":     func() { NewWeighted([]string{"a"}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(13)
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := Sample(r, items, 5)
	if len(got) != 5 {
		t.Fatalf("Sample returned %d items", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d in sample", v)
		}
		seen[v] = true
	}
	if len(Sample(r, items, 20)) != len(items) {
		t.Fatal("oversized sample did not return all items")
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{0.5, 4, 100} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.06+0.05 {
			t.Fatalf("Poisson(%v) mean = %.3f", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestClampedNormal(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		x := r.ClampedNormal(5, 10, 0, 10)
		if x < 0 || x > 10 {
			t.Fatalf("ClampedNormal escaped bounds: %v", x)
		}
	}
}

func TestDurationBetween(t *testing.T) {
	r := New(23)
	lo, hi := time.Minute, time.Hour
	for i := 0; i < 1000; i++ {
		d := r.DurationBetween(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("DurationBetween out of range: %v", d)
		}
	}
	if got := r.DurationBetween(hi, lo); got != hi {
		t.Fatalf("inverted range should return lo bound, got %v", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: rank0=%d rank10=%d", counts[0], counts[10])
	}
}

// Property: Fork is a pure function of (seed, name).
func TestForkPure(t *testing.T) {
	f := func(seed int64, name string) bool {
		return New(seed).Fork(name).Seed() == New(seed).Fork(name).Seed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Bool(p) respects its bounds for all p.
func TestBoolBoundsProperty(t *testing.T) {
	r := New(31)
	f := func(p float64) bool {
		v := r.Bool(p)
		if p <= 0 && v {
			return false
		}
		if p >= 1 && !v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
