// Package recovery implements the account-recovery workflow of §6: claim
// filing, ownership verification over SMS / secondary email / fallback
// (knowledge tests, manual review), and the remission step that reverts
// hijacker changes (restoring deleted content, clearing hijacker-added
// settings, resetting the password).
//
// The method success models are decomposed the way the paper explains the
// failures: SMS fails on unreliable gateways and confused users; email
// fails on mistyped (bouncing) addresses and is not offered at all when
// the secondary address shows signs of having been recycled by its
// upstream provider; the fallback options have a poor success rate by
// nature (§6.3).
package recovery

import (
	"fmt"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// Config tunes the recovery pipeline.
type Config struct {
	// SMSGatewayRate is the chance the verification SMS arrives;
	// SMSCompletionRate the chance the user finishes the flow.
	// 0.93 × 0.87 ≈ the paper's 80.91% end-to-end SMS success.
	SMSGatewayRate    float64
	SMSCompletionRate float64
	// EmailCompletionRate is the success chance when the recovery email is
	// deliverable; mistyped addresses bounce (~5% of attempts) and
	// recycled addresses are never offered. 0.95 × 0.785 ≈ 74.57%.
	EmailCompletionRate float64
	// FallbackSuccessRate covers secret questions, knowledge tests, and
	// manual review (paper: 14.20%).
	FallbackSuccessRate float64
	// Processing delays per method (means of exponential draws).
	SMSDelay      time.Duration
	EmailDelay    time.Duration
	FallbackDelay time.Duration
	// RestoreEnabled turns on content restoration during remission — the
	// defense added between the 2011 and 2012 observation windows that
	// made hijacker mass-deletion pointless (§5.4).
	RestoreEnabled bool
	// FallbackLastResortOnly withholds the knowledge-test fallback from
	// claims on accounts that have stronger options on file — §6.3's
	// stance ("we only offer the ability to recover an account via
	// security questions under certain limited circumstances"), which is
	// what keeps impostors from routing around SMS verification. When
	// false, a claimant who fails the stronger methods still gets the
	// knowledge test.
	FallbackLastResortOnly bool
	// FraudGuessRate is an impostor's chance of passing the knowledge
	// fallback by researching the victim (§6.3 cites Schechter et al. on
	// guessable answers).
	FraudGuessRate float64
}

// DefaultConfig returns the post-2012 configuration.
func DefaultConfig() Config {
	return Config{
		SMSGatewayRate:         0.93,
		SMSCompletionRate:      0.87,
		EmailCompletionRate:    0.785,
		FallbackSuccessRate:    0.142,
		SMSDelay:               40 * time.Minute,
		EmailDelay:             3 * time.Hour,
		FallbackDelay:          40 * time.Hour,
		RestoreEnabled:         true,
		FallbackLastResortOnly: true,
		FraudGuessRate:         0.17,
	}
}

// Config2011 returns the 2011-era configuration (no content restore).
func Config2011() Config {
	c := DefaultConfig()
	c.RestoreEnabled = false
	return c
}

// Service processes recovery claims.
type Service struct {
	cfg   Config
	clock *simtime.Clock
	log   *logstore.Store
	rng   *randx.Rand
	dir   *identity.Directory
	auth  *auth.Service
	mail  *mail.Service

	// OnRecovered is called after a successful recovery with the fresh
	// password (the victim agent updates what the owner "knows").
	OnRecovered func(acct identity.AccountID, newPassword string)
	// OnFraudSuccess is called when an impostor's claim succeeds: the
	// account was handed to the hijacker (§6.3's nightmare case).
	OnFraudSuccess func(acct identity.AccountID, newPassword string)

	pending map[identity.AccountID]bool

	// Counters for calibration and tests.
	Filed          int
	Succeeded      int
	Failed         int
	FraudSucceeded int
}

// NewService assembles the recovery pipeline.
func NewService(
	cfg Config,
	clock *simtime.Clock,
	log *logstore.Store,
	rng *randx.Rand,
	dir *identity.Directory,
	authSvc *auth.Service,
	mailSvc *mail.Service,
) *Service {
	return &Service{
		cfg: cfg, clock: clock, log: log, rng: rng.Fork("recovery"),
		dir: dir, auth: authSvc, mail: mailSvc,
		pending: make(map[identity.AccountID]bool),
	}
}

// FileClaim starts a recovery claim by the rightful owner. trigger
// records what alerted the user ("notification", "lockout", "noticed",
// "suspended"); hijackedAt and flaggedAt carry the latency-measurement
// anchors (§6.2). Duplicate claims for an account already in flight are
// ignored.
func (s *Service) FileClaim(acct identity.AccountID, trigger string, hijackedAt, flaggedAt time.Time) {
	a := s.dir.Get(acct)
	if a == nil || s.pending[acct] {
		return
	}
	s.pending[acct] = true
	s.Filed++
	now := s.clock.Now()
	s.log.Append(event.ClaimFiled{
		Base: event.Base{Time: now}, Account: acct, Trigger: trigger,
		HijackedAt: hijackedAt, Actor: event.ActorOwner,
	})
	s.tryMethods(claimCtx{acct: acct, actor: event.ActorOwner, hijackedAt: hijackedAt, flaggedAt: flaggedAt},
		s.methodsFor(a))
}

// FileFraudClaim is an impostor's recovery attempt (§6.3): the claimant
// cannot receive the SMS or the recovery email, so everything rides on
// whether the knowledge fallback is offered and guessed. onSuccess (may
// be nil) receives the fresh password when the impostor wins the account.
func (s *Service) FileFraudClaim(acct identity.AccountID, onSuccess func(newPassword string)) {
	a := s.dir.Get(acct)
	if a == nil || s.pending[acct] {
		return
	}
	s.pending[acct] = true
	now := s.clock.Now()
	s.log.Append(event.ClaimFiled{
		Base: event.Base{Time: now}, Account: acct, Trigger: "fraud",
		HijackedAt: now, Actor: event.ActorHijacker,
	})
	s.tryMethods(claimCtx{
		acct: acct, actor: event.ActorHijacker,
		hijackedAt: now, flaggedAt: now, onFraud: onSuccess,
	}, s.methodsFor(a))
}

// claimCtx threads one claim's identity and anchors through the attempt
// chain.
type claimCtx struct {
	acct       identity.AccountID
	actor      event.Actor
	hijackedAt time.Time
	flaggedAt  time.Time
	onFraud    func(newPassword string)
}

// methodsFor returns the verification methods offered, in preference
// order. A recycled secondary email is not offered at all ("we do not
// offer this option if there is any indication that the secondary email
// address has been recycled"), and under the last-resort policy the
// knowledge fallback is withheld when stronger options exist.
func (s *Service) methodsFor(a *identity.Account) []event.RecoveryMethod {
	var out []event.RecoveryMethod
	if a.Phone != "" {
		out = append(out, event.MethodSMS)
	}
	if a.SecondaryEmail != "" && !a.SecondaryRecycled {
		out = append(out, event.MethodEmail)
	}
	if len(out) == 0 || !s.cfg.FallbackLastResortOnly {
		out = append(out, event.MethodFallback)
	}
	return out
}

// tryMethods schedules the next verification attempt; on failure it falls
// through to the next offered method.
func (s *Service) tryMethods(c claimCtx, methods []event.RecoveryMethod) {
	if len(methods) == 0 {
		s.resolve(c, false, "")
		return
	}
	m := methods[0]
	delay := s.rng.ExpDuration(s.delayFor(m))
	s.clock.After(delay, func() {
		success, reason := s.attempt(c, m)
		s.log.Append(event.ClaimAttempt{
			Base: event.Base{Time: s.clock.Now()}, Account: c.acct,
			Method: m, Success: success, Reason: reason, Actor: c.actor,
		})
		if success {
			s.resolve(c, true, m)
			return
		}
		s.tryMethods(c, methods[1:])
	})
}

func (s *Service) delayFor(m event.RecoveryMethod) time.Duration {
	switch m {
	case event.MethodSMS:
		return s.cfg.SMSDelay
	case event.MethodEmail:
		return s.cfg.EmailDelay
	default:
		return s.cfg.FallbackDelay
	}
}

// attempt draws one verification outcome.
func (s *Service) attempt(c claimCtx, m event.RecoveryMethod) (bool, string) {
	a := s.dir.Get(c.acct)
	if c.actor == event.ActorHijacker {
		// The impostor controls neither the phone nor the secondary
		// mailbox; only the knowledge test is guessable.
		if m != event.MethodFallback {
			return false, "not_claimant"
		}
		return s.rng.Bool(s.cfg.FraudGuessRate), "guess"
	}
	switch m {
	case event.MethodSMS:
		if !s.rng.Bool(s.cfg.SMSGatewayRate) {
			return false, "gateway"
		}
		if !s.rng.Bool(s.cfg.SMSCompletionRate) {
			return false, "user"
		}
		return true, ""
	case event.MethodEmail:
		if a.SecondaryTypo {
			return false, "bounce"
		}
		if !s.rng.Bool(s.cfg.EmailCompletionRate) {
			return false, "stale"
		}
		return true, ""
	default:
		if !s.rng.Bool(s.cfg.FallbackSuccessRate) {
			return false, "failed_verification"
		}
		return true, ""
	}
}

// resolve finishes the claim; on success it runs remission (or, for a
// successful impostor, hands the account over).
func (s *Service) resolve(c claimCtx, success bool, m event.RecoveryMethod) {
	delete(s.pending, c.acct)
	now := s.clock.Now()
	s.log.Append(event.ClaimResolved{
		Base: event.Base{Time: now}, Account: c.acct, Success: success,
		Method: m, HijackedAt: c.hijackedAt, FlaggedAt: c.flaggedAt,
		Actor: c.actor,
	})
	if !success {
		s.Failed++
		return
	}
	if c.actor == event.ActorHijacker {
		s.FraudSucceeded++
		newPassword := fmt.Sprintf("stolen-recovery-%d-%06d", c.acct, s.rng.Intn(1_000_000))
		s.auth.ResetForRecovery(c.acct, newPassword)
		if c.onFraud != nil {
			c.onFraud(newPassword)
		}
		if s.OnFraudSuccess != nil {
			s.OnFraudSuccess(c.acct, newPassword)
		}
		return
	}
	s.Succeeded++
	s.remission(c.acct)
}

// remission reverts hijacker changes: fresh password, 2SV lockout cleared,
// hijacker settings removed, and (when enabled) deleted content restored
// (§6.4). Content recovery is an optional last step in the real flow; the
// model applies it whenever enabled.
func (s *Service) remission(acct identity.AccountID) {
	newPassword := fmt.Sprintf("recovered-%d-%06d", acct, s.rng.Intn(1_000_000))
	s.auth.ResetForRecovery(acct, newPassword)
	restored, cleared := 0, false
	if s.cfg.RestoreEnabled {
		restored, cleared = s.mail.Restore(acct)
	}
	s.log.Append(event.Remission{
		Base: event.Base{Time: s.clock.Now()}, Account: acct,
		RestoredMessages: restored, ClearedSettings: cleared,
	})
	if s.OnRecovered != nil {
		s.OnRecovered(acct, newPassword)
	}
}
