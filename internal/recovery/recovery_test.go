package recovery

import (
	"testing"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

type fixture struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	mail  *mail.Service
	auth  *auth.Service
	svc   *Service
}

func newFixture(t *testing.T, seed int64, n int, cfg Config) *fixture {
	t.Helper()
	clock := simtime.NewClock(simtime.Epoch)
	rng := randx.New(seed)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = n
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	mailSvc := mail.NewService(dir, clock, log)
	authSvc := auth.NewService(dir, clock, log, nil, nil, auth.Config{})
	svc := NewService(cfg, clock, log, rng, dir, authSvc, mailSvc)
	return &fixture{clock: clock, log: log, dir: dir, mail: mailSvc, auth: authSvc, svc: svc}
}

func (f *fixture) run(d time.Duration) { f.clock.RunUntil(f.clock.Now().Add(d)) }

func TestClaimWithPhoneTriesSMSFirst(t *testing.T) {
	f := newFixture(t, 1, 50, DefaultConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	f.svc.FileClaim(a.ID, "lockout", simtime.Epoch, simtime.Epoch)
	f.run(10 * 24 * time.Hour)

	attempts := logstore.Select[event.ClaimAttempt](f.log)
	if len(attempts) == 0 || attempts[0].Method != event.MethodSMS {
		t.Fatalf("attempts = %+v", attempts)
	}
	resolved := logstore.Select[event.ClaimResolved](f.log)
	if len(resolved) != 1 {
		t.Fatalf("resolved = %d", len(resolved))
	}
}

func TestRecycledEmailNotOffered(t *testing.T) {
	f := newFixture(t, 2, 200, DefaultConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone == "" && x.SecondaryEmail != "" && x.SecondaryRecycled {
			a = x
		}
	})
	if a == nil {
		t.Skip("no phone-less recycled-secondary account in fixture")
	}
	f.svc.FileClaim(a.ID, "lockout", simtime.Epoch, simtime.Epoch)
	f.run(20 * 24 * time.Hour)
	for _, at := range logstore.Select[event.ClaimAttempt](f.log) {
		if at.Method == event.MethodEmail {
			t.Fatal("recycled secondary email was offered")
		}
	}
}

func TestTypoEmailBounces(t *testing.T) {
	f := newFixture(t, 3, 400, DefaultConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone == "" && x.SecondaryTypo {
			a = x
		}
	})
	if a == nil {
		t.Skip("no typo account in fixture")
	}
	f.svc.FileClaim(a.ID, "lockout", simtime.Epoch, simtime.Epoch)
	f.run(30 * 24 * time.Hour)
	found := false
	for _, at := range logstore.Select[event.ClaimAttempt](f.log) {
		if at.Method == event.MethodEmail {
			found = true
			if at.Success || at.Reason != "bounce" {
				t.Fatalf("typo email attempt = %+v", at)
			}
		}
	}
	if !found {
		t.Fatal("email never attempted")
	}
}

func TestMethodSuccessRates(t *testing.T) {
	// Run many claims and check the measured per-method success rates
	// against Figure 10: SMS 80.91%, Email 74.57%, Fallback 14.20%.
	f := newFixture(t, 4, 5000, DefaultConfig())
	f.dir.All(func(a *identity.Account) {
		f.svc.FileClaim(a.ID, "lockout", simtime.Epoch, simtime.Epoch)
	})
	f.run(90 * 24 * time.Hour)

	counts := map[event.RecoveryMethod][2]int{} // [attempts, successes]
	for _, at := range logstore.Select[event.ClaimAttempt](f.log) {
		c := counts[at.Method]
		c[0]++
		if at.Success {
			c[1]++
		}
		counts[at.Method] = c
	}
	check := func(m event.RecoveryMethod, want, tol float64) {
		c := counts[m]
		if c[0] == 0 {
			t.Fatalf("no %s attempts", m)
		}
		rate := float64(c[1]) / float64(c[0])
		if rate < want-tol || rate > want+tol {
			t.Errorf("%s success = %.4f (n=%d), want %.4f±%.2f", m, rate, c[0], want, tol)
		}
	}
	check(event.MethodSMS, 0.8091, 0.03)
	check(event.MethodEmail, 0.7457, 0.04)
	check(event.MethodFallback, 0.1420, 0.03)
}

func TestFallbackChainAndFailure(t *testing.T) {
	f := newFixture(t, 5, 500, DefaultConfig())
	// An account with no options at all gets only the fallback.
	var bare *identity.Account
	f.dir.All(func(x *identity.Account) {
		if bare == nil && x.Phone == "" && x.SecondaryEmail == "" {
			bare = x
		}
	})
	if bare == nil {
		t.Skip("no bare account")
	}
	f.svc.FileClaim(bare.ID, "noticed", simtime.Epoch, simtime.Epoch)
	f.run(60 * 24 * time.Hour)
	attempts := logstore.Select[event.ClaimAttempt](f.log)
	if len(attempts) != 1 || attempts[0].Method != event.MethodFallback {
		t.Fatalf("attempts = %+v", attempts)
	}
	resolved := logstore.Select[event.ClaimResolved](f.log)
	if len(resolved) != 1 {
		t.Fatalf("resolved = %d", len(resolved))
	}
	if resolved[0].Success != attempts[0].Success {
		t.Fatal("resolution disagrees with the only attempt")
	}
}

func TestRemissionRestoresAndResets(t *testing.T) {
	f := newFixture(t, 6, 50, DefaultConfig())
	f.mail.Seed(randx.New(6), mail.DefaultSeedConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	oldPassword := a.Password
	// Simulate hijacker damage.
	f.mail.MassDelete(a.ID, 1, event.ActorHijacker)
	f.mail.SetReplyTo(a.ID, "doppel@evil.test", 1, event.ActorHijacker)
	f.auth.ChangePassword(a.ID, "stolen", 1, event.ActorHijacker)
	f.auth.Enroll2SV(a.ID, "+2348000000000", 1, event.ActorHijacker)

	var recoveredPassword string
	f.svc.OnRecovered = func(id identity.AccountID, pw string) { recoveredPassword = pw }

	// Keep filing until a successful recovery (SMS succeeds ~81%).
	for i := 0; i < 10 && recoveredPassword == ""; i++ {
		f.svc.FileClaim(a.ID, "lockout", f.clock.Now(), f.clock.Now())
		f.run(10 * 24 * time.Hour)
	}
	if recoveredPassword == "" {
		t.Fatal("no successful recovery in 10 tries")
	}
	if a.Password == "stolen" || a.Password == oldPassword {
		t.Fatal("password not freshly reset")
	}
	if a.TwoSV || a.LockedByPhone {
		t.Fatal("hijacker 2SV survived")
	}
	if f.mail.Mailbox(a.ID).Len() == 0 {
		t.Fatal("content not restored")
	}
	if f.mail.Mailbox(a.ID).ReplyTo != "" {
		t.Fatal("hijacker Reply-To survived")
	}
	rem := logstore.Select[event.Remission](f.log)
	if len(rem) == 0 || rem[0].RestoredMessages == 0 {
		t.Fatalf("remission events = %+v", rem)
	}
}

func TestNoRestoreIn2011Era(t *testing.T) {
	f := newFixture(t, 7, 50, Config2011())
	f.mail.Seed(randx.New(7), mail.DefaultSeedConfig())
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	f.mail.MassDelete(a.ID, 1, event.ActorHijacker)
	done := false
	f.svc.OnRecovered = func(identity.AccountID, string) { done = true }
	for i := 0; i < 10 && !done; i++ {
		f.svc.FileClaim(a.ID, "lockout", f.clock.Now(), f.clock.Now())
		f.run(10 * 24 * time.Hour)
	}
	if !done {
		t.Fatal("no successful recovery")
	}
	if f.mail.Mailbox(a.ID).Len() != 0 {
		t.Fatal("2011-era recovery restored content")
	}
}

func TestDuplicateClaimsIgnored(t *testing.T) {
	f := newFixture(t, 8, 20, DefaultConfig())
	a := f.dir.Get(1)
	f.svc.FileClaim(a.ID, "lockout", simtime.Epoch, simtime.Epoch)
	f.svc.FileClaim(a.ID, "notification", simtime.Epoch, simtime.Epoch)
	f.run(30 * 24 * time.Hour)
	filed := logstore.Select[event.ClaimFiled](f.log)
	if len(filed) != 1 {
		t.Fatalf("filed = %d, want 1", len(filed))
	}
}

func TestLatencyAnchorsCarried(t *testing.T) {
	f := newFixture(t, 9, 50, DefaultConfig())
	hijackedAt := simtime.Epoch.Add(-2 * time.Hour)
	flaggedAt := simtime.Epoch.Add(-time.Hour)
	a := f.dir.Get(1)
	f.svc.FileClaim(a.ID, "notification", hijackedAt, flaggedAt)
	f.run(30 * 24 * time.Hour)
	resolved := logstore.Select[event.ClaimResolved](f.log)
	if len(resolved) != 1 {
		t.Fatalf("resolved = %d", len(resolved))
	}
	if !resolved[0].HijackedAt.Equal(hijackedAt) || !resolved[0].FlaggedAt.Equal(flaggedAt) {
		t.Fatalf("anchors = %+v", resolved[0])
	}
}

func TestFraudClaimBlockedByLastResortPolicy(t *testing.T) {
	f := newFixture(t, 10, 200, DefaultConfig())
	// Pick an account with a phone on file: under the last-resort policy
	// the impostor never reaches the knowledge test.
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	won := false
	f.svc.FileFraudClaim(a.ID, func(string) { won = true })
	f.run(30 * 24 * time.Hour)
	if won {
		t.Fatal("impostor won an account that has a phone on file")
	}
	resolved := logstore.Select[event.ClaimResolved](f.log)
	if len(resolved) != 1 || resolved[0].Success || resolved[0].Actor != event.ActorHijacker {
		t.Fatalf("resolved = %+v", resolved)
	}
	// No attempt may have touched the fallback.
	for _, at := range logstore.Select[event.ClaimAttempt](f.log) {
		if at.Method == event.MethodFallback {
			t.Fatal("fallback offered despite stronger options on file")
		}
		if at.Success {
			t.Fatalf("impostor passed %s", at.Method)
		}
	}
}

func TestFraudClaimCanGuessFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FraudGuessRate = 1 // force the guess for determinism
	f := newFixture(t, 11, 400, cfg)
	// A bare account (no options) exposes the knowledge fallback.
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone == "" && x.SecondaryEmail == "" {
			a = x
		}
	})
	if a == nil {
		t.Skip("no bare account in fixture")
	}
	oldPassword := a.Password
	var got string
	f.svc.FileFraudClaim(a.ID, func(pw string) { got = pw })
	f.run(30 * 24 * time.Hour)
	if got == "" {
		t.Fatal("impostor with guaranteed guess did not win")
	}
	if a.Password == oldPassword || a.Password != got {
		t.Fatal("account password not handed to the impostor")
	}
	if f.svc.FraudSucceeded != 1 {
		t.Fatalf("fraud counter = %d", f.svc.FraudSucceeded)
	}
}

func TestUnrestrictedFallbackEnablesFraud(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FallbackLastResortOnly = false
	cfg.FraudGuessRate = 1
	f := newFixture(t, 12, 100, cfg)
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	won := false
	f.svc.FileFraudClaim(a.ID, func(string) { won = true })
	f.run(30 * 24 * time.Hour)
	if !won {
		t.Fatal("with an unrestricted fallback the impostor should win a phone-bearing account")
	}
}
