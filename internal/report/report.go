// Package report renders the study's tables and figures as text: aligned
// tables, ASCII bar charts and time series, and the paper-vs-measured
// comparison the EXPERIMENTS.md workflow is built on.
package report

import (
	"fmt"
	"io"
	"strings"

	"manualhijack/internal/stats"
)

// Table writes an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Bars renders entries as a labeled ASCII bar chart of shares.
func Bars(w io.Writer, title string, entries []stats.Entry, maxRows int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	if maxRows > 0 && len(entries) > maxRows {
		entries = entries[:maxRows]
	}
	labelW := 0
	for _, e := range entries {
		if len([]rune(e.Key)) > labelW {
			labelW = len([]rune(e.Key))
		}
	}
	for _, e := range entries {
		bar := strings.Repeat("#", int(e.Share*50+0.5))
		fmt.Fprintf(w, "  %s %6.2f%% %s\n", pad(e.Key, labelW), e.Share*100, bar)
	}
}

// Series renders an int series as a compact sparkline-style row plus its
// peak annotation.
func Series(w io.Writer, title string, counts []int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	if len(counts) == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	levels := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, c := range counts {
		idx := 0
		if peak > 0 {
			idx = c * (len(levels) - 1) / peak
		}
		b.WriteRune(levels[idx])
	}
	fmt.Fprintf(w, "  [%s] peak=%d buckets=%d\n", b.String(), peak, len(counts))
}

// SeriesFloat renders a float series.
func SeriesFloat(w io.Writer, title string, vals []float64) {
	ints := make([]int, len(vals))
	for i, v := range vals {
		ints[i] = int(v*100 + 0.5)
	}
	Series(w, title, ints)
}

// Compare is one paper-vs-measured row.
type Compare struct {
	Artifact string
	Metric   string
	Paper    string
	Measured string
	Note     string
}

// CompareTable renders the paper-vs-measured comparison.
func CompareTable(w io.Writer, title string, rows []Compare) {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{r.Artifact, r.Metric, r.Paper, r.Measured, r.Note})
	}
	Table(w, title, []string{"artifact", "metric", "paper", "measured", "note"}, table)
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Pct2 formats a fraction as a percentage with two decimals.
func Pct2(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// F formats a float compactly.
func F(f float64) string { return fmt.Sprintf("%.2f", f) }
