package report

import (
	"strings"
	"testing"

	"manualhijack/internal/core"
	"manualhijack/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, "title", []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and separator aligned to the widest cell.
	if !strings.Contains(lines[2], "-----------") {
		t.Fatalf("separator wrong: %q", lines[2])
	}
	if !strings.HasPrefix(lines[4], "  longer-cell") {
		t.Fatalf("row wrong: %q", lines[4])
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	Bars(&b, "shares", []stats.Entry{
		{Key: "CN", Share: 0.5, Count: 50},
		{Key: "MY", Share: 0.3, Count: 30},
		{Key: "ZA", Share: 0.2, Count: 20},
	}, 2)
	out := b.String()
	if !strings.Contains(out, "CN") || !strings.Contains(out, "50.00%") {
		t.Fatalf("bars output: %q", out)
	}
	if strings.Contains(out, "ZA") {
		t.Fatal("maxRows not respected")
	}
	if strings.Count(out, "#") < 25 {
		t.Fatalf("bar for 50%% too short: %q", out)
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	Series(&b, "s", []int{0, 1, 5, 10})
	out := b.String()
	if !strings.Contains(out, "peak=10") || !strings.Contains(out, "buckets=4") {
		t.Fatalf("series: %q", out)
	}
	b.Reset()
	Series(&b, "empty", nil)
	if !strings.Contains(b.String(), "(empty)") {
		t.Fatal("empty series not handled")
	}
}

func TestCompareTable(t *testing.T) {
	var b strings.Builder
	CompareTable(&b, "cmp", []Compare{
		{Artifact: "F7", Metric: "within 30 min", Paper: "20%", Measured: "18.9%", Note: "n=42"},
	})
	out := b.String()
	for _, want := range []string{"F7", "within 30 min", "20%", "18.9%", "n=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.2094) != "20.9%" {
		t.Fatal(Pct(0.2094))
	}
	if Pct2(0.8091) != "80.91%" {
		t.Fatal(Pct2(0.8091))
	}
	if F(3.14159) != "3.14" {
		t.Fatal(F(3.14159))
	}
}

func TestUnicodeWidths(t *testing.T) {
	var b strings.Builder
	Table(&b, "", []string{"term"}, [][]string{{"账单"}, {"wire"}})
	if !strings.Contains(b.String(), "账单") {
		t.Fatal("unicode cell lost")
	}
}

func TestRenderStudyZeroValue(t *testing.T) {
	// A zero-value report (no data at all) must render without panicking —
	// robustness for partial or failed studies.
	var b strings.Builder
	RenderStudy(&b, &core.StudyReport{})
	if !strings.Contains(b.String(), "reproduction report") {
		t.Fatal("header missing")
	}
}
