package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
)

// RenderStudy writes the full study report: every reproduced table and
// figure with the paper's value alongside the measured one.
func RenderStudy(w io.Writer, r *core.StudyReport) {
	fmt.Fprintf(w, "Manual Account Hijacking — reproduction report\n")
	fmt.Fprintf(w, "events: 2011=%d 2012=%d 2013=%d 2014=%d\n\n",
		r.Events2011, r.Events2012, r.Events2013, r.Events2014)
	renderArtifacts(w, r)
}

// RenderOffline writes the same artifact sections RenderStudy renders,
// for a report computed from a single dumped log by cmd/analyze. skipped
// names the registry analyses that could not run offline (they need the
// live world's directory, which the event log does not carry); their
// sections render as zeros.
func RenderOffline(w io.Writer, r *core.StudyReport, source string, skipped []string) {
	fmt.Fprintf(w, "Manual Account Hijacking — offline analysis of %s\n", source)
	if len(skipped) > 0 {
		fmt.Fprintf(w, "skipped (need the live world, not just its log): %s\n",
			strings.Join(skipped, ", "))
	}
	fmt.Fprintln(w)
	renderArtifacts(w, r)
}

// renderArtifacts writes every reproduced table and figure — the shared
// body of the in-process and offline reports.
func renderArtifacts(w io.Writer, r *core.StudyReport) {
	// ---- §3 base rates ----
	CompareTable(w, "§3 Base rates", []Compare{
		{"§3", "manual hijacks / M active users / day", "≈9",
			F(r.BaseRates.HijacksPerMillionActivePerDay),
			fmt.Sprintf("%d hijacks, %d active, %.0f days (low-intensity world)",
				r.BaseRates.Hijacks, r.BaseRates.ActiveAccounts, r.BaseRates.Days)},
		{"§3", "phishing pages detected / week", "16k–25k (Google scale)",
			fmt.Sprintf("%v", r.BaseRates.PagesPerWeek), "sim scale"},
	})
	fmt.Fprintln(w)

	// ---- Table 2 ----
	rows := [][]string{}
	for _, k := range []event.TargetKind{event.TargetMail, event.TargetBank,
		event.TargetAppStore, event.TargetSocial, event.TargetOther} {
		rows = append(rows, []string{string(k),
			Pct(r.Table2.EmailShares[k]), paperT2Email[k],
			Pct(r.Table2.PageShares[k]), paperT2Page[k]})
	}
	Table(w, "Table 2 — phishing targets (Datasets 1–2)",
		[]string{"target", "emails", "paper", "pages", "paper"}, rows)
	fmt.Fprintf(w, "  emails with URLs: %s (paper 62%%)\n\n", Pct(r.URLShare))

	// ---- Figures 3–6 ----
	CompareTable(w, "Figure 3 — HTTP referrers (Dataset 3)", []Compare{
		{"F3", "blank referrer share", ">99%", Pct2(r.Fig3.BlankShare),
			fmt.Sprintf("%d GETs", r.Fig3.TotalGETs)},
	})
	Bars(w, "  non-blank referrers", r.Fig3.NonBlank, 10)
	fmt.Fprintln(w)

	CompareTable(w, "Figure 4 — phished address TLDs (Dataset 3)", []Compare{
		{"F4", "edu share", "dominant (paper text: >99%)", Pct(r.Fig4.EduShare),
			fmt.Sprintf("%d submissions", r.Fig4.N)},
	})
	Bars(w, "  TLD breakdown", r.Fig4.Shares, 12)
	fmt.Fprintln(w)

	CompareTable(w, "Figure 5 — page success rates (Dataset 3)", []Compare{
		{"F5", "mean POST/GET", "13.78%", Pct(r.Fig5.Mean), fmt.Sprintf("%d pages", len(r.Fig5.PerPage))},
		{"F5", "min", "≈3%", Pct(r.Fig5.Min), ""},
		{"F5", "max", "≈45%", Pct(r.Fig5.Max), ""},
	})
	fmt.Fprintln(w)

	SeriesFloat(w, "Figure 6 — mean hourly submissions per standard page", r.Fig6.StandardAvg)
	Series(w, "Figure 6 — high-volume outlier page", r.Fig6.Outlier)
	fmt.Fprintf(w, "  outlier quiet period: %dh (paper ≈15h of attacker self-testing)\n\n",
		r.Fig6.OutlierQuietHours)

	// ---- Figures 7–8, Table 3, §5 ----
	CompareTable(w, "Figure 7 — decoy access speed (Dataset 4)", []Compare{
		{"F7", "decoys submitted", "200", fmt.Sprintf("%d", r.Fig7.Submitted), ""},
		{"F7", "accessed", "most (not all)", Pct(r.Fig7.AccessedShare), ""},
		{"F7", "accessed within 30 min", "20%", Pct(r.Fig7.Within30Min), ""},
		{"F7", "accessed within 7 h", "50%", Pct(r.Fig7.Within7Hours), ""},
	})
	fmt.Fprintln(w)

	SeriesFloat(w, "Figure 8 — daily attempts per hijacker IP", r.Fig8.DailyAttempts)
	SeriesFloat(w, "Figure 8 — daily successes per hijacker IP", r.Fig8.DailySuccesses)
	CompareTable(w, "Figure 8 — hijacker activity per IP (Dataset 5)", []Compare{
		{"F8", "distinct accounts / IP / day", "9.6 (consistently <10)",
			F(r.Fig8.MeanAccountsPerIPDay),
			fmt.Sprintf("max %d over %d IP-days", r.Fig8.MaxAccountsPerIPDay, r.Fig8.IPDays)},
		{"F8", "correct password share", "75%", Pct(r.Fig8.PasswordOKShare), "incl. retry variants"},
		{"F8", "login success share", "(lower: defenses)", Pct(r.Fig8.SuccessShare), ""},
	})
	fmt.Fprintln(w)

	Bars(w, "Table 3 — hijacker search terms (Dataset 6)", r.Table3.Terms, 15)
	fmt.Fprintf(w, "  finance share %s (paper: finance dominates); credentials %s; es=%v zh=%v; n=%d\n\n",
		Pct(r.Table3.FinanceShare), Pct(r.Table3.CredShare),
		r.Table3.HasSpanish, r.Table3.HasChinese, r.Table3.N)

	CompareTable(w, "§5.2 — value assessment (Dataset 7)", []Compare{
		{"§5.2", "mean assessment time", "3 min", r.Assessment.MeanDuration.Round(time.Second).String(),
			fmt.Sprintf("%d cases", r.Assessment.Cases)},
		{"§5.2", "Starred opened", "16%", Pct(r.Assessment.FolderOpenRates[event.FolderStarred]), ""},
		{"§5.2", "Drafts opened", "11%", Pct(r.Assessment.FolderOpenRates[event.FolderDrafts]), ""},
		{"§5.2", "Sent opened", "5%", Pct(r.Assessment.FolderOpenRates[event.FolderSent]), ""},
		{"§5.2", "Trash opened", "<1%", Pct(r.Assessment.FolderOpenRates[event.FolderTrash]), ""},
		{"§5.2", "exploited share", "(not stated)", Pct(r.Assessment.ExploitedShare), "some abandoned"},
	})
	fmt.Fprintln(w)

	CompareTable(w, "§5.3 — exploitation (Datasets 7–9)", []Compare{
		{"§5.3", "hijack-day mail volume delta", "+25%", deltaPct(r.Exploitation.VolumeDelta), "see EXPERIMENTS.md"},
		{"§5.3", "distinct recipients delta", "+630%", deltaPct(r.Exploitation.RecipientsDelta), "≫ volume delta"},
		{"§5.3", "spam reports delta", "+39%", deltaPct(r.Exploitation.ReportsDelta), ""},
		{"§5.3", "scam share of sent mail", "65%", Pct(r.Exploitation.ScamShare), ""},
		{"§5.3", "phishing share", "35%", Pct(r.Exploitation.PhishShare), ""},
		{"§5.3", "victims with ≤5 messages", "65%", Pct(r.Exploitation.AtMostFiveMessages), ""},
		{"§5.3", "cases with <10-recipient mail", "6%", Pct(r.Exploitation.SmallCustomizedShare), "tend to be customized"},
		{"§5.3", "contact-cohort hijack multiplier", "36×", F(r.ContactRisk.Multiplier) + "×",
			fmt.Sprintf("%.2f%% vs %.2f%% (n=%d/%d)", r.ContactRisk.ContactRate*100,
				r.ContactRisk.RandomRate*100, r.ContactRisk.ContactCohort, r.ContactRisk.RandomCohort)},
	})
	fmt.Fprintln(w)

	CompareTable(w, "§5.4 — retention tactics (Datasets 7, 10)", []Compare{
		{"§5.4", "mass deletion | lockout, 2011", "46%", Pct(r.Retention2011.MassDeleteGivenLockout), ""},
		{"§5.4", "mass deletion | lockout, 2012", "1.6%", Pct(r.Retention2012.MassDeleteGivenLockout), "restore defense deployed"},
		{"§5.4", "recovery changes | lockout, 2011", "60%", Pct(r.Retention2011.RecoveryChangeGivenLockout), ""},
		{"§5.4", "recovery changes | lockout, 2012", "21%", Pct(r.Retention2012.RecoveryChangeGivenLockout), ""},
		{"§5.4", "forwarding filters, 2012", "15%", Pct(r.Retention2012.FilterShare), ""},
		{"§5.4", "hijacker Reply-To, 2012", "26%", Pct(r.Retention2012.ReplyToShare), ""},
	})
	fmt.Fprintln(w)

	// ---- §6 recovery ----
	CompareTable(w, "Figure 9 — recovery latency (Dataset 11)", []Compare{
		{"F9", "recovered within 1 h", "22%", Pct(r.Fig9.Within1Hour),
			fmt.Sprintf("%d recoveries", r.Fig9.Recoveries)},
		{"F9", "recovered within 13 h", "50%", Pct(r.Fig9.Within13Hour), ""},
	})
	if r.Fig9.Latencies != nil && r.Fig9.Latencies.N() > 0 {
		cdf := make([]float64, 0, 36)
		for h := 0; h < 36; h++ {
			cdf = append(cdf, r.Fig9.Latencies.FracBelow(float64(h)))
		}
		SeriesFloat(w, "  cumulative recoveries by hour (0–35h)", cdf)
	}
	if r.Fig7.Delays != nil && r.Fig7.Delays.N() > 0 {
		cdf := make([]float64, 0, 46)
		for h := 0; h < 46; h++ {
			cdf = append(cdf, r.Fig7.Delays.FracBelow(float64(h)))
		}
		SeriesFloat(w, "Figure 7 — decoy-access CDF by hour (0–45h)", cdf)
	}
	fmt.Fprintln(w)

	f10rows := []Compare{}
	for _, m := range []event.RecoveryMethod{event.MethodSMS, event.MethodEmail, event.MethodFallback} {
		ms := r.Fig10.Methods[m]
		f10rows = append(f10rows, Compare{
			"F10", string(m) + " success rate", paperF10[m], Pct2(ms.Rate),
			fmt.Sprintf("%d attempts", ms.Attempts)})
	}
	CompareTable(w, "Figure 10 — recovery method success (Dataset 12)", f10rows)
	CompareTable(w, "§6.3 — channel reliability", []Compare{
		{"§6.3", "secondary emails recycled", "7%", Pct(r.Channels.RecycledShare), ""},
		{"§6.3", "email attempts bouncing", "≈5%", Pct(r.Channels.BounceShare),
			fmt.Sprintf("%d email attempts", r.Channels.EmailAttempts)},
	})
	fmt.Fprintln(w)

	// ---- §7 attribution ----
	Bars(w, "Figure 11 — hijack-case IP countries (Dataset 13)", r.Fig11.Shares, 12)
	fmt.Fprintf(w, "  paper: China & Malaysia dominate, ZA ≈10%%; cases=%d\n\n", r.Fig11.Cases)
	Bars(w, "Figure 12 — hijacker 2SV phone countries (Dataset 14)", r.Fig12.Shares, 12)
	fmt.Fprintf(w, "  paper: CI 33.8%%, NG 31.4%%, ZA 8.4%%, FR 6.4%%; phones=%d\n\n", r.Fig12.Phones)

	// ---- Figure 2 lifecycle funnel ----
	lc := r.Lifecycle
	fmt.Fprintf(w, "Figure 2 — the hijacking cycle as a funnel (2012 world)\n")
	fmt.Fprintf(w, "  %d lures → %d visits → %d credentials → %d attempted → %d entered → %d exploited → %d locked out → %d claims → %d recovered\n",
		lc.LuresDelivered, lc.PageVisits, lc.CredentialsCaptured,
		lc.AccountsAttempted, lc.AccountsEntered, lc.AccountsExploited,
		lc.AccountsLockedOut, lc.ClaimsFiled, lc.AccountsRecovered)
	Bars(w, "  stage survival", lc.Rates(), 8)
	fmt.Fprintln(w)

	// ---- §5.5 office job ----
	hours := make([]int, 24)
	for h, share := range r.Schedule.HourlyShare {
		hours[h] = int(share * 1000)
	}
	Series(w, "§5.5 — hijacker logins by UTC hour (the office-job fingerprint)", hours)
	fmt.Fprintf(w, "  weekend share %s (uniform would be 28.6%%; paper: \"largely inactive over the weekends\"); lunch dip %s; active hours %d; n=%d\n\n",
		Pct(r.Schedule.WeekendShare), Pct(r.Schedule.LunchDip), r.Schedule.ActiveHours, r.Schedule.Logins)

	// ---- §5.4 doppelganger review ----
	CompareTable(w, "§5.4 — doppelganger-address review (recovery-time defense)", []Compare{
		{"§5.4", "flagged redirections precision", "(not stated)", Pct(r.Doppelganger.Precision),
			fmt.Sprintf("%d flagged of %d hijacker settings", len(r.Doppelganger.Findings), r.Doppelganger.HijackerSettings)},
		{"§5.4", "recall over hijacker settings", "(not stated)", Pct(r.Doppelganger.Recall),
			"look-alikes only; unrelated drop boxes evade"},
		{"§5.4", "similarity: hijacker vs owner", "(separation)",
			F(r.Doppelganger.MeanHijackerSim) + " vs " + F(r.Doppelganger.MeanOwnerSim), ""},
	})
	fmt.Fprintln(w)

	// ---- scam funnel ----
	m := r.Monetization
	CompareTable(w, "§5.3/§5.4 — the scam funnel (this reproduction's instrument)", []Compare{
		{"funnel", "plea recipients", "(not stated)", fmt.Sprintf("%d", m.PleaRecipients), ""},
		{"funnel", "recipients who engaged", "(not stated)", fmt.Sprintf("%d", m.Replies), ""},
		{"funnel", "replies that reached the crew", "(retention tactics)", fmt.Sprintf("%d", m.ReachedCrew), fmt.Sprintf("routes %v", m.ReplyRoutes)},
		{"funnel", "completed wires", "(not stated)", fmt.Sprintf("%d", m.Payments), ""},
		{"funnel", "revenue", "(FBI: significant)", fmt.Sprintf("$%.0f ($%.0f/exploited hijack)", m.Revenue, m.RevenuePerHijack), ""},
	})
	fmt.Fprintln(w)

	// ---- §8 defenses ----
	CompareTable(w, "§8 — defense evaluation (this reproduction's instruments)", []Compare{
		{"§8.2", "behavioral detector precision", "(not stated)", Pct(r.Behavior.Precision),
			fmt.Sprintf("%d hijack / %d organic sessions", r.Behavior.HijackSessions, r.Behavior.OrganicSessions)},
		{"§8.2", "behavioral detector recall", "(not stated)", Pct(r.Behavior.Recall), ""},
		{"§8.2", "mean exposure before flag", "\"already too late\"",
			r.Behavior.MeanExposure.Round(time.Second).String(), ""},
	})
	sweep := [][]string{}
	for _, pt := range r.RiskSweep {
		sweep = append(sweep, []string{
			F(pt.Threshold), Pct(pt.HijackerCaught), Pct2(pt.OwnerChallenged)})
	}
	Table(w, "§8.1 — login-risk threshold sweep (counterfactual)",
		[]string{"threshold", "hijackers challenged", "owners challenged"}, sweep)

	// ---- per-archetype scorecard (playbook actors, when fielded) ----
	if sc := r.ArchetypeScorecard; len(sc.Rows) > 0 {
		fmt.Fprintln(w)
		rows := [][]string{}
		for _, row := range sc.Rows {
			rows = append(rows, []string{
				row.Archetype,
				fmt.Sprintf("%d", row.Accounts), fmt.Sprintf("%d", row.Attempts),
				fmt.Sprintf("%d", row.Logins), fmt.Sprintf("%d", row.Challenged),
				fmt.Sprintf("%d", row.Blocked), Pct(row.Recall),
				row.MedianTTD.Round(time.Second).String(),
			})
		}
		Table(w, "§8.1 — per-archetype detection scorecard (2012 world)",
			[]string{"archetype", "accts", "attempts", "in", "challenged", "blocked", "recall", "median-ttd"},
			rows)
		fmt.Fprintf(w, "  owner FP cost: %d logins, %d challenged (%s), %d blocked (%s)\n",
			sc.OwnerLogins, sc.OwnerChallenged, Pct2(sc.OwnerChallengedShare),
			sc.OwnerBlocked, Pct2(sc.OwnerBlockedShare))
	}
}

func deltaPct(f float64) string { return fmt.Sprintf("%+.0f%%", f*100) }

var paperT2Email = map[event.TargetKind]string{
	event.TargetMail: "35%", event.TargetBank: "21%", event.TargetAppStore: "16%",
	event.TargetSocial: "14%", event.TargetOther: "14%",
}

var paperT2Page = map[event.TargetKind]string{
	event.TargetMail: "27%", event.TargetBank: "25%", event.TargetAppStore: "17%",
	event.TargetSocial: "15%", event.TargetOther: "15%",
}

var paperF10 = map[event.RecoveryMethod]string{
	event.MethodSMS:      "80.91%",
	event.MethodEmail:    "74.57%",
	event.MethodFallback: "14.20%",
}
