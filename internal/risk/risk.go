// Package risk implements login-time risk analysis — the server-side
// defense the paper calls "the best defense strategy that an identity
// provider can implement" (§8.2). For every login attempt it computes an
// anomaly score from observable signals; the auth service challenges or
// blocks attempts above configurable thresholds.
//
// The paper deliberately does not disclose Google's signals. This analyzer
// implements a credible, explicitly-documented signal set with the same
// structural property the paper describes: individual hijacker actions look
// a lot like legitimate-user actions (§8.1), so no single signal is
// decisive, the score straddles the legitimate distribution, and tuning the
// threshold trades false positives (challenged owners) against false
// negatives (admitted hijackers). The ablation benchmarks quantify exactly
// that trade-off.
package risk

import (
	"net/netip"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
)

// Attempt is the observable information available at login time. It
// deliberately excludes the simulation's ground-truth Actor.
type Attempt struct {
	Account  identity.AccountID
	IP       netip.Addr
	DeviceID string
	At       time.Time
	// PasswordOK is known to the service before risk analysis runs (the
	// paper's hijackers have the right password 75% of the time, so wrong
	// passwords feed the failure-history signal rather than deciding).
	PasswordOK bool
}

// Signals is the decomposed feature vector for one attempt, exposed so the
// ablation benchmarks can disable features individually and tests can
// assert on the decomposition.
type Signals struct {
	NewCountry     bool    // account never seen logging in from this country
	ImpossibleHop  bool    // different country within the velocity window
	NewDevice      bool    // device never seen on this account
	IPFanout       float64 // distinct accounts from this IP today / fanout cap
	RecentFailures float64 // recent wrong-password attempts / failure cap
}

// Weights scales each signal's contribution to the score. Zeroing a weight
// ablates the signal.
type Weights struct {
	NewCountry     float64
	ImpossibleHop  float64
	NewDevice      float64
	IPFanout       float64
	RecentFailures float64
}

// DefaultWeights is the production-tuned weighting.
func DefaultWeights() Weights {
	return Weights{
		NewCountry:     0.40,
		ImpossibleHop:  0.20,
		NewDevice:      0.15,
		IPFanout:       0.15,
		RecentFailures: 0.10,
	}
}

// Analyzer scores login attempts. It maintains per-account and per-IP
// observation history, which it updates only on successful logins (failed
// attempts update the failure history).
//
// Concurrency contract: an Analyzer is confined to a single goroutine.
// Score, Extract, PrimeAccount, and RecordOutcome all mutate unsynchronized
// state (account histories are created lazily, so even a "read" allocates),
// and no method takes a lock. The simulator upholds the contract by running
// every world on one goroutine; the serving layer (internal/serve) upholds
// it by confining each Analyzer to one account shard and serializing access
// behind the shard's mutex, with the cross-account IP-fanout state factored
// out into a FanoutSource the shards share. The -race tests in
// internal/serve prove that wrapper makes concurrent use safe.
type Analyzer struct {
	Plan    *geo.IPPlan
	Weights Weights

	accounts map[identity.AccountID]*accountHistory
	fanout   FanoutSource
}

type accountHistory struct {
	countries   map[geo.Country]bool
	devices     map[string]bool
	lastLogin   time.Time
	lastCountry geo.Country
	failures    []time.Time
}

type ipHistory struct {
	day      time.Time // start of the UTC day the counter covers
	accounts map[identity.AccountID]bool
}

// Velocity and history windows.
const (
	velocityWindow = 6 * time.Hour
	failureWindow  = time.Hour
	fanoutCap      = 10 // the paper's hijackers stay under ~10 accounts/IP/day
	failureCap     = 3
)

// FanoutSource supplies the IP-fanout signal: how many distinct accounts an
// address logged into today. It is the one piece of analyzer state that
// couples accounts, so it is factored out of the per-account history: the
// single-goroutine simulator uses the built-in IPFanoutTracker, while the
// serving layer substitutes a locked, IP-sharded source that account shards
// share. Implementations define their own synchronization; the Analyzer
// calls them without taking locks.
type FanoutSource interface {
	// Fanout returns the signal in [0,1] for an attempt by acct from ip at
	// time at, counting acct as if it were about to log in.
	Fanout(ip netip.Addr, acct identity.AccountID, at time.Time) float64
	// RecordSuccess absorbs a successful login into the per-IP history.
	RecordSuccess(ip netip.Addr, acct identity.AccountID, at time.Time)
}

// IPFanoutTracker is the built-in FanoutSource: a plain per-day counter of
// distinct accounts per address. Like the Analyzer it is confined to a
// single goroutine; callers that share one across goroutines must wrap it
// in their own lock.
//
// The fanout signal only ever reads one UTC day of history, so when the
// clock crosses into a new day the tracker evicts entries older than the
// fanout window. That bounds memory by the addresses active over the last
// two days rather than every address ever seen — the difference between a
// long-running riskd process holding steady and leaking linearly with
// distinct client IPs. Eviction keeps a one-day grace window (entries are
// dropped only once they are strictly older than the window) so serving
// lanes that straggle across a day boundary still find their day's entry;
// evicting the moment the day changes would erase history an
// out-of-order-by-seconds request is about to read, which the replay
// parity tests catch.
type IPFanoutTracker struct {
	ips map[netip.Addr]*ipHistory
	// sweepDay is the newest day a sweep has run for; sweeps only move it
	// forward.
	sweepDay time.Time
}

// NewIPFanoutTracker returns an empty tracker.
func NewIPFanoutTracker() *IPFanoutTracker {
	return &IPFanoutTracker{ips: make(map[netip.Addr]*ipHistory)}
}

// sweep evicts entries more than one day older than the current day, once
// per day change. Amortized cost: one map pass per UTC day, not per call.
func (t *IPFanoutTracker) sweep(day time.Time) {
	if !day.After(t.sweepDay) {
		return
	}
	cutoff := day.Add(-24 * time.Hour)
	for ip, ih := range t.ips {
		if ih.day.Before(cutoff) {
			delete(t.ips, ip)
		}
	}
	t.sweepDay = day
}

// Tracked returns the number of addresses currently held, for bounded-
// growth tests and serving metrics.
func (t *IPFanoutTracker) Tracked() int { return len(t.ips) }

// Fanout implements FanoutSource.
func (t *IPFanoutTracker) Fanout(ip netip.Addr, acct identity.AccountID, at time.Time) float64 {
	ih := t.ips[ip]
	if ih == nil || !ih.day.Equal(dayOf(at)) {
		return 0
	}
	n := len(ih.accounts)
	if !ih.accounts[acct] {
		n++
	}
	return min(1, float64(n)/fanoutCap)
}

// RecordSuccess implements FanoutSource.
func (t *IPFanoutTracker) RecordSuccess(ip netip.Addr, acct identity.AccountID, at time.Time) {
	day := dayOf(at)
	t.sweep(day)
	ih := t.ips[ip]
	if ih == nil || !ih.day.Equal(day) {
		ih = &ipHistory{day: day, accounts: make(map[identity.AccountID]bool)}
		t.ips[ip] = ih
	}
	ih.accounts[acct] = true
}

// NewAnalyzer returns an analyzer using plan for geolocation, with its own
// private IP-fanout tracker.
func NewAnalyzer(plan *geo.IPPlan, w Weights) *Analyzer {
	return NewAnalyzerWithFanout(plan, w, NewIPFanoutTracker())
}

// NewAnalyzerWithFanout returns an analyzer that reads and feeds the given
// fanout source instead of a private tracker — the hook the sharded serving
// layer uses to share cross-account IP state between per-account shards.
func NewAnalyzerWithFanout(plan *geo.IPPlan, w Weights, src FanoutSource) *Analyzer {
	return &Analyzer{
		Plan:     plan,
		Weights:  w,
		accounts: make(map[identity.AccountID]*accountHistory),
		fanout:   src,
	}
}

func (a *Analyzer) history(id identity.AccountID) *accountHistory {
	h := a.accounts[id]
	if h == nil {
		h = &accountHistory{
			countries: make(map[geo.Country]bool),
			devices:   make(map[string]bool),
		}
		a.accounts[id] = h
	}
	return h
}

// PrimeAccount seeds an account's history with its usual country and
// device, modeling the pre-study observation period (without it, every
// first login would look anomalous).
func (a *Analyzer) PrimeAccount(id identity.AccountID, home geo.Country, device string) {
	h := a.history(id)
	h.countries[home] = true
	if device != "" {
		h.devices[device] = true
	}
	h.lastCountry = home
}

// Extract computes the signal vector for an attempt without mutating
// history.
func (a *Analyzer) Extract(att Attempt) Signals {
	h := a.history(att.Account)
	country := a.Plan.Locate(att.IP)

	var s Signals
	s.NewCountry = !h.countries[country]
	if !h.lastLogin.IsZero() && att.At.Sub(h.lastLogin) < velocityWindow &&
		h.lastCountry != country {
		s.ImpossibleHop = true
	}
	s.NewDevice = att.DeviceID != "" && !h.devices[att.DeviceID]
	s.IPFanout = a.fanout.Fanout(att.IP, att.Account, att.At)

	recent := 0
	for _, ft := range h.failures {
		if att.At.Sub(ft) <= failureWindow {
			recent++
		}
	}
	s.RecentFailures = min(1, float64(recent)/failureCap)
	return s
}

// Score returns the risk score in [0,1] for an attempt.
func (a *Analyzer) Score(att Attempt) float64 {
	return a.Weights.Combine(a.Extract(att))
}

// Combine folds a signal vector into a score using the weights.
func (w Weights) Combine(s Signals) float64 {
	score := 0.0
	if s.NewCountry {
		score += w.NewCountry
	}
	if s.ImpossibleHop {
		score += w.ImpossibleHop
	}
	if s.NewDevice {
		score += w.NewDevice
	}
	score += w.IPFanout * s.IPFanout
	score += w.RecentFailures * s.RecentFailures
	if score > 1 {
		score = 1
	}
	return score
}

// RecordOutcome updates history after the service decides the attempt. On
// success the country/device/IP observations are absorbed (the account's
// behavioral baseline drifts toward its real use); on failure only the
// failure history grows.
func (a *Analyzer) RecordOutcome(att Attempt, success bool) {
	h := a.history(att.Account)
	if !success {
		h.failures = append(h.failures, att.At)
		// Keep the window bounded.
		for len(h.failures) > 0 && att.At.Sub(h.failures[0]) > failureWindow {
			h.failures = h.failures[1:]
		}
		return
	}
	country := a.Plan.Locate(att.IP)
	h.countries[country] = true
	if att.DeviceID != "" {
		h.devices[att.DeviceID] = true
	}
	h.lastLogin = att.At
	h.lastCountry = country
	a.fanout.RecordSuccess(att.IP, att.Account, att.At)
}

func dayOf(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}
