package risk

import (
	"testing"
	"time"

	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

var t0 = time.Date(2012, 11, 1, 12, 0, 0, 0, time.UTC)

func newAnalyzer() (*Analyzer, *geo.IPPlan, *randx.Rand) {
	plan := geo.NewIPPlan(4)
	return NewAnalyzer(plan, DefaultWeights()), plan, randx.New(1)
}

func TestHomeLoginScoresLow(t *testing.T) {
	a, plan, r := newAnalyzer()
	a.PrimeAccount(1, geo.US, "dev-1")
	att := Attempt{Account: 1, IP: plan.Addr(r, geo.US), DeviceID: "dev-1", At: t0, PasswordOK: true}
	if score := a.Score(att); score > 0.1 {
		t.Fatalf("home login score = %.2f, want ~0", score)
	}
}

func TestForeignNewDeviceScoresHigh(t *testing.T) {
	a, plan, r := newAnalyzer()
	a.PrimeAccount(1, geo.US, "dev-1")
	att := Attempt{Account: 1, IP: plan.Addr(r, geo.Nigeria), DeviceID: "dev-x", At: t0, PasswordOK: true}
	score := a.Score(att)
	if score < 0.5 {
		t.Fatalf("hijacker-shaped login score = %.2f, want >= 0.5", score)
	}
	sig := a.Extract(att)
	if !sig.NewCountry || !sig.NewDevice {
		t.Fatalf("signals = %+v", sig)
	}
}

func TestImpossibleHop(t *testing.T) {
	a, plan, r := newAnalyzer()
	a.PrimeAccount(1, geo.US, "dev-1")
	// Legitimate login from home.
	home := Attempt{Account: 1, IP: plan.Addr(r, geo.US), DeviceID: "dev-1", At: t0, PasswordOK: true}
	a.RecordOutcome(home, true)
	// Two hours later from China: impossible hop.
	att := Attempt{Account: 1, IP: plan.Addr(r, geo.China), DeviceID: "dev-1", At: t0.Add(2 * time.Hour)}
	if sig := a.Extract(att); !sig.ImpossibleHop {
		t.Fatal("hop within velocity window not flagged")
	}
	// Ten hours later: outside the window.
	att.At = t0.Add(10 * time.Hour)
	if sig := a.Extract(att); sig.ImpossibleHop {
		t.Fatal("slow hop wrongly flagged")
	}
}

func TestIPFanoutSignal(t *testing.T) {
	a, plan, r := newAnalyzer()
	ip := plan.Addr(r, geo.Malaysia)
	// Nine distinct accounts log in from the IP today.
	for i := 1; i <= 9; i++ {
		att := Attempt{Account: identity.AccountID(i), IP: ip, At: t0.Add(time.Duration(i) * time.Minute), PasswordOK: true}
		a.RecordOutcome(att, true)
	}
	att := Attempt{Account: 100, IP: ip, At: t0.Add(time.Hour)}
	sig := a.Extract(att)
	if sig.IPFanout < 0.99 {
		t.Fatalf("fanout = %.2f, want ~1.0 at 10 accounts", sig.IPFanout)
	}
	// Next day the counter resets.
	att.At = t0.Add(25 * time.Hour)
	if sig := a.Extract(att); sig.IPFanout != 0 {
		t.Fatalf("fanout next day = %.2f, want 0", sig.IPFanout)
	}
}

func TestFailureSignalDecays(t *testing.T) {
	a, plan, r := newAnalyzer()
	ip := plan.Addr(r, geo.US)
	for i := 0; i < 3; i++ {
		att := Attempt{Account: 1, IP: ip, At: t0.Add(time.Duration(i) * time.Minute)}
		a.RecordOutcome(att, false)
	}
	att := Attempt{Account: 1, IP: ip, At: t0.Add(5 * time.Minute)}
	if sig := a.Extract(att); sig.RecentFailures < 0.99 {
		t.Fatalf("failures = %.2f, want 1.0", sig.RecentFailures)
	}
	att.At = t0.Add(2 * time.Hour)
	if sig := a.Extract(att); sig.RecentFailures != 0 {
		t.Fatalf("failures after window = %.2f, want 0", sig.RecentFailures)
	}
}

func TestSuccessAbsorbsCountry(t *testing.T) {
	a, plan, r := newAnalyzer()
	a.PrimeAccount(1, geo.US, "dev-1")
	ip := plan.Addr(r, geo.France)
	att := Attempt{Account: 1, IP: ip, DeviceID: "dev-1", At: t0, PasswordOK: true}
	if !a.Extract(att).NewCountry {
		t.Fatal("France should be new at first")
	}
	a.RecordOutcome(att, true)
	att.At = t0.Add(24 * time.Hour)
	if a.Extract(att).NewCountry {
		t.Fatal("France should be absorbed after a successful login")
	}
}

func TestFailureDoesNotAbsorbCountry(t *testing.T) {
	a, plan, r := newAnalyzer()
	a.PrimeAccount(1, geo.US, "dev-1")
	ip := plan.Addr(r, geo.China)
	att := Attempt{Account: 1, IP: ip, At: t0}
	a.RecordOutcome(att, false)
	att.At = t0.Add(time.Hour)
	if !a.Extract(att).NewCountry {
		t.Fatal("failed login must not whitelist the country")
	}
}

func TestScoreClamped(t *testing.T) {
	w := Weights{NewCountry: 1, ImpossibleHop: 1, NewDevice: 1, IPFanout: 1, RecentFailures: 1}
	s := Signals{NewCountry: true, ImpossibleHop: true, NewDevice: true, IPFanout: 1, RecentFailures: 1}
	if got := w.Combine(s); got != 1 {
		t.Fatalf("score = %v, want clamped to 1", got)
	}
}

func TestAblationZeroWeight(t *testing.T) {
	w := DefaultWeights()
	w.NewCountry = 0
	s := Signals{NewCountry: true}
	if got := w.Combine(s); got != 0 {
		t.Fatalf("ablated signal still contributes: %v", got)
	}
}

func TestIPFanoutTrackerBoundedGrowth(t *testing.T) {
	plan := geo.NewIPPlan(4)
	r := randx.New(7)
	tr := NewIPFanoutTracker()
	// Ten days of traffic, 200 distinct IPs per day: an unpruned tracker
	// would hold all 2000, a pruned one at most two days' worth (the
	// current day plus the grace window for boundary stragglers).
	const perDay = 200
	for day := 0; day < 10; day++ {
		at := t0.Add(time.Duration(day) * 24 * time.Hour)
		for i := 0; i < perDay; i++ {
			ip := plan.Addr(r, geo.US)
			tr.RecordSuccess(ip, identity.AccountID(i), at)
		}
		if n := tr.Tracked(); n > 2*perDay {
			t.Fatalf("day %d: tracker holds %d IPs, want <= %d (stale days must be evicted)",
				day, n, 2*perDay)
		}
	}
	// The signal still works for today's IPs after the sweeps.
	at := t0.Add(9 * 24 * time.Hour)
	ip := plan.Addr(r, geo.US)
	for i := 0; i < 5; i++ {
		tr.RecordSuccess(ip, identity.AccountID(1000+i), at)
	}
	if f := tr.Fanout(ip, 9999, at); f == 0 {
		t.Fatal("fanout signal lost after eviction sweeps")
	}
}
