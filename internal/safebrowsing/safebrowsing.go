// Package safebrowsing simulates the provider's anti-phishing pipeline:
// while "indexing the web", it detects hosted phishing pages after a
// crawl-dependent delay and takes them down. Datasets 2–4 of the paper are
// drawn from this pipeline's output, and §3 reports it detected 16,000 to
// 25,000 phishing pages per week on the Internet during 2012–2013.
package safebrowsing

import (
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

// Config tunes the pipeline.
type Config struct {
	// DetectionMedian is the median page lifetime before detection;
	// DetectionSigma spreads it log-normally (some pages die in hours,
	// some survive days — Figure 6's outlier ran for days).
	DetectionMedian time.Duration
	DetectionSigma  float64
	// TakedownLag is the mean delay between detection and takedown.
	TakedownLag time.Duration
	// FormsDetectionFactor scales detection speed for pages hosted on the
	// provider's own Forms product (first-party visibility finds them a
	// bit faster).
	FormsDetectionFactor float64
}

// DefaultConfig returns the pipeline defaults.
func DefaultConfig() Config {
	return Config{
		DetectionMedian:      30 * time.Hour,
		DetectionSigma:       1.0,
		TakedownLag:          2 * time.Hour,
		FormsDetectionFactor: 0.7,
	}
}

// Pipeline implements phishkit.Detector.
type Pipeline struct {
	cfg   Config
	clock *simtime.Clock
	log   *logstore.Store
	inf   *phishkit.Infrastructure
	rng   *randx.Rand

	detected int
}

// NewPipeline wires the pipeline to the infrastructure. The caller must
// also call inf.SetDetector(p).
func NewPipeline(cfg Config, clock *simtime.Clock, log *logstore.Store, inf *phishkit.Infrastructure, rng *randx.Rand) *Pipeline {
	return &Pipeline{cfg: cfg, clock: clock, log: log, inf: inf, rng: rng.Fork("safebrowsing")}
}

// Detected returns how many pages the pipeline has flagged.
func (p *Pipeline) Detected() int { return p.detected }

// PageCreated schedules detection and takedown for a new page.
func (p *Pipeline) PageCreated(page *phishkit.Page) {
	median := p.cfg.DetectionMedian
	if page.OnForms {
		median = time.Duration(float64(median) * p.cfg.FormsDetectionFactor)
	}
	if page.DetectionFactor > 0 {
		median = time.Duration(float64(median) * page.DetectionFactor)
	}
	delay := p.rng.DurationLogNormal(median, p.cfg.DetectionSigma)
	id := page.ID
	p.clock.After(delay, func() {
		p.detected++
		p.inf.MarkDetected(id)
		p.log.Append(event.PageDetected{Base: event.Base{Time: p.clock.Now()}, Page: id})
		p.clock.After(p.rng.ExpDuration(p.cfg.TakedownLag), func() {
			p.inf.Takedown(id)
		})
	})
}
