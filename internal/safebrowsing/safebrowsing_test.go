package safebrowsing

import (
	"testing"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/phishkit"
	"manualhijack/internal/randx"
	"manualhijack/internal/simtime"
)

func newWorld(seed int64) (*simtime.Clock, *logstore.Store, *phishkit.Infrastructure, *Pipeline) {
	clock := simtime.NewClock(simtime.Epoch)
	rng := randx.New(seed)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = 20
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	inf := phishkit.NewInfrastructure(clock, log, dir, geo.NewIPPlan(2), rng)
	p := NewPipeline(DefaultConfig(), clock, log, inf, rng)
	inf.SetDetector(p)
	return clock, log, inf, p
}

func TestPagesEventuallyDetectedAndTakenDown(t *testing.T) {
	clock, log, inf, pipe := newWorld(1)
	const pages = 100
	for i := 0; i < pages; i++ {
		inf.Launch(phishkit.DefaultCampaign(event.TargetMail, 0))
	}
	clock.RunUntil(simtime.Epoch.Add(60 * 24 * time.Hour))

	if pipe.Detected() != pages {
		t.Fatalf("detected = %d, want all %d", pipe.Detected(), pages)
	}
	if n := len(logstore.Select[event.PageDetected](log)); n != pages {
		t.Fatalf("detection events = %d", n)
	}
	downs := logstore.Select[event.PageTakedown](log)
	if len(downs) != pages {
		t.Fatalf("takedowns = %d", len(downs))
	}
}

func TestDetectionFollowsCreationWithSpread(t *testing.T) {
	clock, log, inf, _ := newWorld(2)
	const pages = 300
	for i := 0; i < pages; i++ {
		inf.Launch(phishkit.DefaultCampaign(event.TargetOther, 0))
	}
	clock.RunUntil(simtime.Epoch.Add(120 * 24 * time.Hour))

	var fast, slow int
	for _, d := range logstore.Select[event.PageDetected](log) {
		life := d.When().Sub(simtime.Epoch)
		if life < 12*time.Hour {
			fast++
		}
		if life > 72*time.Hour {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("lifetime spread missing: fast=%d slow=%d", fast, slow)
	}
}

func TestTakedownAfterDetection(t *testing.T) {
	clock, log, inf, _ := newWorld(3)
	inf.Launch(phishkit.DefaultCampaign(event.TargetMail, 0))
	clock.RunUntil(simtime.Epoch.Add(60 * 24 * time.Hour))

	det := logstore.Select[event.PageDetected](log)
	down := logstore.Select[event.PageTakedown](log)
	if len(det) != 1 || len(down) != 1 {
		t.Fatalf("det=%d down=%d", len(det), len(down))
	}
	if down[0].When().Before(det[0].When()) {
		t.Fatal("takedown before detection")
	}
}

func TestFormsPagesDetectedFaster(t *testing.T) {
	clock, log, inf, _ := newWorld(4)
	const each = 400
	for i := 0; i < each; i++ {
		c := phishkit.DefaultCampaign(event.TargetMail, 0)
		c.OnForms = true
		inf.Launch(c)
	}
	for i := 0; i < each; i++ {
		inf.Launch(phishkit.DefaultCampaign(event.TargetMail, 0))
	}
	clock.RunUntil(simtime.Epoch.Add(120 * 24 * time.Hour))

	var formsSum, webSum time.Duration
	var formsN, webN int
	created := map[event.PageID]event.PageCreated{}
	for _, c := range logstore.Select[event.PageCreated](log) {
		created[c.Page] = c
	}
	for _, d := range logstore.Select[event.PageDetected](log) {
		life := d.When().Sub(created[d.Page].When())
		if created[d.Page].OnForms {
			formsSum += life
			formsN++
		} else {
			webSum += life
			webN++
		}
	}
	if formsN == 0 || webN == 0 {
		t.Fatal("missing detections")
	}
	formsMean := formsSum / time.Duration(formsN)
	webMean := webSum / time.Duration(webN)
	if formsMean >= webMean {
		t.Fatalf("forms mean %v not faster than web mean %v", formsMean, webMean)
	}
}
