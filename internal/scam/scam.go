// Package scam generates the semi-personalized scam messages manual
// hijackers send to a victim's contacts (§5.3). The paper distills scam
// schemes into five core principles; every generated message is composed
// from template features implementing them, and exposes which principles
// it uses so tests and the analysis can verify the structure:
//
//  1. a story with credible details,
//  2. sympathy-evoking language,
//  3. an appearance of limited financial risk (a loan, repaid quickly),
//  4. language discouraging out-of-band verification,
//  5. an untraceable, fast, safe-looking money transfer mechanism.
package scam

import (
	"fmt"
	"strings"

	"manualhijack/internal/randx"
)

// Principle is one of the five core scam principles (§5.3).
type Principle string

// The five principles.
const (
	CredibleStory      Principle = "credible_story"
	Sympathy           Principle = "sympathy"
	LimitedRisk        Principle = "limited_risk"
	DiscourageContact  Principle = "discourage_contact"
	UntraceablePayment Principle = "untraceable_payment"
)

// AllPrinciples lists the five principles.
func AllPrinciples() []Principle {
	return []Principle{CredibleStory, Sympathy, LimitedRisk, DiscourageContact, UntraceablePayment}
}

// Scheme is a scam storyline.
type Scheme string

// Schemes observed in the wild.
const (
	MuggedInCity Scheme = "mugged_in_city"
	SickRelative Scheme = "sick_relative"
)

// Victim carries the personalization tokens extracted from the hijacked
// account (gender, location) — the "semi-personalized" part of §5.3.
type Victim struct {
	Name   string
	Gender string // "f" | "m"
	City   string
}

// Message is one generated scam email.
type Message struct {
	Scheme     Scheme
	Subject    string
	Body       string
	Principles []Principle
	// Customized marks the higher-effort variant sent to small recipient
	// lists (§5.3: the <10-recipient messages tend to be more customized).
	Customized bool
}

// UsesPrinciple reports whether the message implements the principle.
func (m Message) UsesPrinciple(p Principle) bool {
	for _, mp := range m.Principles {
		if mp == p {
			return true
		}
	}
	return false
}

var farCities = []string{
	"West Midlands, UK", "Manila, Philippines", "Madrid, Spain",
	"Limassol, Cyprus", "Kiev, Ukraine", "Istanbul, Turkey",
}

var payments = []string{"Western Union", "MoneyGram"}

// Generator produces scam messages.
type Generator struct {
	rng *randx.Rand
}

// NewGenerator returns a generator with its own stream.
func NewGenerator(rng *randx.Rand) *Generator {
	return &Generator{rng: rng}
}

// Generate composes one scam message impersonating the victim, addressed
// to their contacts. customized selects the higher-effort variant.
func (g *Generator) Generate(scheme Scheme, v Victim, customized bool) Message {
	pronoun, possessive := "he", "his"
	if v.Gender == "f" {
		pronoun, possessive = "she", "her"
	}
	payment := randx.Pick(g.rng, payments)
	city := randx.Pick(g.rng, farCities)

	var subject, story, plea string
	switch scheme {
	case SickRelative:
		subject = "Sorry to bother you with this"
		story = fmt.Sprintf(
			"I am presently in %s with my ill cousin. %s is suffering from a kidney disease and must undergo a transplant to save %s life.",
			city, capitalize(pronoun), possessive)
		plea = "I urgently need help covering the deposit for the procedure."
	default: // MuggedInCity
		subject = fmt.Sprintf("Terrible situation in %s", city)
		story = fmt.Sprintf(
			"My family and I came down here to %s for a short vacation. We were mugged last night in an alley by a gang of thugs on our way back from shopping; one of them had a knife poking my neck for almost two minutes and everything we had on us including my cell phone and credit cards was stolen.",
			city)
		plea = "I'm urgently in need of some money to pay for my hotel bills and my flight ticket home."
	}

	parts := []string{
		story,
		"Quite honestly it was beyond a dreadful experience, I am still shaken.", // sympathy
		plea,
		fmt.Sprintf("It would only be a loan — I will pay you back as soon as I get home, you have my word. A %s transfer in my name is the fastest safe way and I can pick it up here with my passport.", payment), // limited risk + payment
		"My phone was taken so please don't try to call me, email is the only way I can be reached right now.",                                                                                                      // discourage contact
	}
	principles := AllPrinciples()

	body := strings.Join(parts, " ")
	if customized {
		body = fmt.Sprintf("Dear friend, it's %s. %s I remember our time in %s — please keep this between us.", v.Name, body, v.City)
	}
	return Message{
		Scheme:     scheme,
		Subject:    subject,
		Body:       body,
		Principles: principles,
		Customized: customized,
	}
}

// RandomScheme draws a scheme with the observed skew toward
// Mugged-in-City.
func (g *Generator) RandomScheme() Scheme {
	if g.rng.Bool(0.7) {
		return MuggedInCity
	}
	return SickRelative
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Keywords returns search/content keywords present in the message body,
// used when the message is delivered into mailboxes.
func (m Message) Keywords() []string {
	kw := []string{"money", "urgent", "loan"}
	for _, p := range payments {
		if strings.Contains(m.Body, p) {
			kw = append(kw, strings.ToLower(p))
		}
	}
	return kw
}
