package scam

import (
	"strings"
	"testing"

	"manualhijack/internal/randx"
)

func newGen(seed int64) *Generator { return NewGenerator(randx.New(seed)) }

func TestAllPrinciplesPresent(t *testing.T) {
	g := newGen(1)
	for _, scheme := range []Scheme{MuggedInCity, SickRelative} {
		m := g.Generate(scheme, Victim{Name: "Maria", Gender: "f", City: "Madrid"}, false)
		for _, p := range AllPrinciples() {
			if !m.UsesPrinciple(p) {
				t.Errorf("%s missing principle %s", scheme, p)
			}
		}
	}
}

func TestPrinciplesManifestInBody(t *testing.T) {
	g := newGen(2)
	m := g.Generate(MuggedInCity, Victim{Gender: "m"}, false)
	body := m.Body
	// Untraceable payment: Western Union or MoneyGram by name.
	if !strings.Contains(body, "Western Union") && !strings.Contains(body, "MoneyGram") {
		t.Error("no payment mechanism named")
	}
	// Limited risk: framed as a loan with repayment.
	if !strings.Contains(body, "loan") || !strings.Contains(body, "pay you back") {
		t.Error("limited-risk framing missing")
	}
	// Discourage contact: the stolen-phone excuse.
	if !strings.Contains(body, "don't try to call") {
		t.Error("discourage-contact language missing")
	}
	// Sympathy: distressing detail from the paper's excerpt.
	if !strings.Contains(body, "knife") {
		t.Error("distressing detail missing from mugged scheme")
	}
}

func TestGenderPersonalization(t *testing.T) {
	g := newGen(3)
	f := g.Generate(SickRelative, Victim{Gender: "f"}, false)
	if !strings.Contains(f.Body, "She is suffering") {
		t.Errorf("female pronoun not applied: %s", f.Body)
	}
	m := g.Generate(SickRelative, Victim{Gender: "m"}, false)
	if !strings.Contains(m.Body, "He is suffering") {
		t.Errorf("male pronoun not applied: %s", m.Body)
	}
}

func TestCustomizedVariant(t *testing.T) {
	g := newGen(4)
	v := Victim{Name: "Raj", Gender: "m", City: "Mumbai"}
	c := g.Generate(MuggedInCity, v, true)
	if !c.Customized {
		t.Fatal("customized flag not set")
	}
	if !strings.Contains(c.Body, "Raj") || !strings.Contains(c.Body, "Mumbai") {
		t.Fatal("customized message lacks personal tokens")
	}
	plain := g.Generate(MuggedInCity, v, false)
	if strings.Contains(plain.Body, "Mumbai") {
		t.Fatal("uncustomized message leaks victim city")
	}
}

func TestRandomSchemeSkew(t *testing.T) {
	g := newGen(5)
	mugged := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if g.RandomScheme() == MuggedInCity {
			mugged++
		}
	}
	rate := float64(mugged) / n
	if rate < 0.65 || rate > 0.75 {
		t.Fatalf("mugged share = %.3f, want ~0.70", rate)
	}
}

func TestKeywords(t *testing.T) {
	g := newGen(6)
	m := g.Generate(MuggedInCity, Victim{}, false)
	kw := m.Keywords()
	if len(kw) < 3 {
		t.Fatalf("keywords = %v", kw)
	}
	foundPayment := false
	for _, k := range kw {
		if k == "western union" || k == "moneygram" {
			foundPayment = true
		}
	}
	if !foundPayment {
		t.Fatalf("payment keyword missing: %v", kw)
	}
}

func TestDeterminism(t *testing.T) {
	a := newGen(7).Generate(MuggedInCity, Victim{Gender: "f"}, false)
	b := newGen(7).Generate(MuggedInCity, Victim{Gender: "f"}, false)
	if a.Body != b.Body || a.Subject != b.Subject {
		t.Fatal("same seed produced different messages")
	}
}
