package serve

// batch.go — POST /v1/score.batch: an NDJSON request stream, one decision
// per line, amortizing HTTP framing and syscalls across hundreds of logins
// per round trip.
//
// Each request line is a BatchItem: a score request (the default) or an
// outcome feedback, selected by the "op" field. The response is NDJSON
// too, exactly one line per non-blank request line, in request order:
//
//	score   → the ScoreResponse JSON (same bytes /v1/score would send)
//	outcome → {"ok":true}
//	invalid → {"error":"..."} (counted in bad_requests; the stream
//	          continues — a bad line must not desynchronize the framing)
//
// Items run through the sharded engine strictly in line order on the
// handler goroutine, so a score+outcome pair for the same account keeps
// its order within one stream — the property batched replay leans on.
// Cross-stream concurrency (many clients, many workers) is what exercises
// the shards.
//
// The full response is buffered and written in one shot: the client can
// therefore send the whole batch before reading anything without the two
// sides deadlocking on filled socket buffers, no matter the batch size.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/identity"
)

// BatchOp selects what a BatchItem does.
const (
	BatchOpScore   = "score"
	BatchOpOutcome = "outcome"
)

// BatchItem is one line of a /v1/score.batch request: the union of
// ScoreRequest and OutcomeRequest plus the discriminating "op" field
// (empty means "score").
type BatchItem struct {
	Op         string             `json:"op,omitempty"`
	Account    identity.AccountID `json:"account"`
	IP         string             `json:"ip"`
	DeviceID   string             `json:"device_id,omitempty"`
	At         time.Time          `json:"at"`
	PasswordOK bool               `json:"password_ok,omitempty"`
	Principal  *PrincipalWire     `json:"principal,omitempty"`
	Success    bool               `json:"success,omitempty"`
}

// ScoreItem wraps a score request as a batch line.
func ScoreItem(r ScoreRequest) BatchItem {
	return BatchItem{Account: r.Account, IP: r.IP, DeviceID: r.DeviceID,
		At: r.At, PasswordOK: r.PasswordOK, Principal: r.Principal}
}

// OutcomeItem wraps an outcome feedback as a batch line.
func OutcomeItem(r OutcomeRequest) BatchItem {
	return BatchItem{Op: BatchOpOutcome, Account: r.Account, IP: r.IP,
		DeviceID: r.DeviceID, At: r.At, Success: r.Success}
}

// AppendBatchItem appends r's JSON encoding, byte-identical to
// json.Marshal.
func AppendBatchItem(b []byte, r *BatchItem) []byte {
	b = append(b, '{')
	if r.Op != "" {
		b = append(b, `"op":`...)
		b = appendString(b, r.Op)
		b = append(b, ',')
	}
	b = append(b, `"account":`...)
	b = strconv.AppendInt(b, int64(r.Account), 10)
	b = append(b, `,"ip":`...)
	b = appendString(b, r.IP)
	if r.DeviceID != "" {
		b = append(b, `,"device_id":`...)
		b = appendString(b, r.DeviceID)
	}
	b = append(b, `,"at":`...)
	b = appendTime(b, r.At)
	if r.PasswordOK {
		b = append(b, `,"password_ok":true`...)
	}
	if r.Principal != nil {
		b = append(b, `,"principal":`...)
		b = appendPrincipal(b, r.Principal)
	}
	if r.Success {
		b = append(b, `,"success":true`...)
	}
	return append(b, '}')
}

// DecodeBatchItem parses one NDJSON line; same decode contract as
// DecodeScoreRequest.
func DecodeBatchItem(data []byte, r *BatchItem) error {
	d := &decodeState{data: data}
	return d.object(func(key []byte) error {
		switch {
		case foldEq(key, "op"):
			return d.fieldString(&r.Op, "op")
		case foldEq(key, "account"):
			return d.fieldInt32((*int32)(&r.Account), "account")
		case foldEq(key, "ip"):
			return d.fieldString(&r.IP, "ip")
		case foldEq(key, "device_id"):
			return d.fieldString(&r.DeviceID, "device_id")
		case foldEq(key, "at"):
			return d.fieldTime(&r.At, "at")
		case foldEq(key, "password_ok"):
			return d.fieldBool(&r.PasswordOK, "password_ok")
		case foldEq(key, "principal"):
			return d.decodePrincipal(&r.Principal)
		case foldEq(key, "success"):
			return d.fieldBool(&r.Success, "success")
		default:
			return d.skipValue()
		}
	})
}

// maxBatchLineBytes bounds one NDJSON line; a longer line aborts the
// stream (the framing is gone at that point).
const maxBatchLineBytes = 1 << 16

// batchReaderPool recycles the line readers for /v1/score.batch.
var batchReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, maxBatchLineBytes) },
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	br := batchReaderPool.Get().(*bufio.Reader)
	br.Reset(r.Body)
	defer func() {
		br.Reset(nil)
		batchReaderPool.Put(br)
	}()
	ob := getBuf()
	defer putBuf(ob)
	out := (*ob)[:0]

	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			out = appendBatchError(out, fmt.Sprintf("line longer than %d bytes", maxBatchLineBytes))
			s.metrics.badRequests.Add(1)
			break
		}
		if err != nil && err != io.EOF {
			out = appendBatchError(out, "read: "+err.Error())
			s.metrics.badRequests.Add(1)
			break
		}
		atEOF := err == io.EOF
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			out = s.serveBatchLine(out, trimmed)
		}
		if atEOF {
			break
		}
	}

	*ob = out[:0]
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(out)
}

// serveBatchLine runs one batch item and appends its response line.
func (s *Server) serveBatchLine(out []byte, line []byte) []byte {
	start := time.Now()
	var item BatchItem
	if err := DecodeBatchItem(line, &item); err != nil {
		s.metrics.badRequests.Add(1)
		return appendBatchError(out, "bad json: "+err.Error())
	}
	switch item.Op {
	case "", BatchOpScore:
		req := ScoreRequest{Account: item.Account, IP: item.IP, DeviceID: item.DeviceID,
			At: item.At, PasswordOK: item.PasswordOK, Principal: item.Principal}
		att, err := req.Attempt()
		if err != nil {
			s.metrics.badRequests.Add(1)
			return appendBatchError(out, err.Error())
		}
		var p *challenge.Principal
		if req.Principal != nil {
			pr := req.Principal.Principal()
			p = &pr
		}
		d := s.pipe.Score(att, p)
		s.publishScore(att, d)
		resp := ScoreResponse{
			Score:           d.Score,
			Signals:         d.Signals,
			Verdict:         d.Verdict,
			ChallengeMethod: d.ChallengeMethod,
		}
		if d.Challenge != nil {
			resp.ChallengePassed = &d.Challenge.Passed
		}
		s.metrics.observeScore(d, time.Since(start))
		out = AppendScoreResponse(out, &resp)
		return append(out, '\n')
	case BatchOpOutcome:
		req := OutcomeRequest{Account: item.Account, IP: item.IP, DeviceID: item.DeviceID,
			At: item.At, Success: item.Success}
		att, err := req.Attempt()
		if err != nil {
			s.metrics.badRequests.Add(1)
			return appendBatchError(out, err.Error())
		}
		s.pipe.RecordOutcome(att, req.Success)
		s.metrics.observeOutcome(time.Since(start))
		return append(out, okJSON...)
	default:
		s.metrics.badRequests.Add(1)
		return appendBatchError(out, fmt.Sprintf("unknown op %q", item.Op))
	}
}

func appendBatchError(out []byte, msg string) []byte {
	out = append(out, `{"error":`...)
	out = appendString(out, msg)
	return append(out, '}', '\n')
}
