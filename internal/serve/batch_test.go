package serve_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"manualhijack/internal/identity"
	"manualhijack/internal/serve"
)

// TestBatchMatchesSingles drives the same login sequence through two
// identically-seeded engines — one via /v1/score + /v1/outcome, one via a
// single /v1/score.batch stream — and requires identical decisions.
func TestBatchMatchesSingles(t *testing.T) {
	single, _ := newTestServer(t, 4)
	batched, _ := newTestServer(t, 4)

	base := time.Date(2012, 11, 2, 9, 0, 0, 0, time.UTC)
	var reqs []serve.ScoreRequest
	for i := 0; i < 40; i++ {
		reqs = append(reqs, serve.ScoreRequest{
			Account:    identity.AccountID(1 + i%5),
			IP:         "203.0.113.7",
			DeviceID:   "dev-batch",
			At:         base.Add(time.Duration(i) * time.Minute),
			PasswordOK: i%3 != 0,
		})
	}

	var items []serve.BatchItem
	var want []serve.ScoreResponse
	for _, req := range reqs {
		resp, err := single.Score(req)
		if err != nil {
			t.Fatalf("single score: %v", err)
		}
		want = append(want, *resp)
		items = append(items, serve.ScoreItem(req))
		out := serve.OutcomeRequest{Account: req.Account, IP: req.IP,
			DeviceID: req.DeviceID, At: req.At, Success: req.PasswordOK}
		if err := single.Outcome(out); err != nil {
			t.Fatalf("single outcome: %v", err)
		}
		items = append(items, serve.OutcomeItem(out))
	}

	results, err := batched.Batch(items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	for i, res := range results {
		if i%2 == 0 { // score line
			if res.Score == nil {
				t.Fatalf("item %d: expected score response, got %+v", i, res)
			}
			w := want[i/2]
			if res.Score.Score != w.Score || res.Score.Verdict != w.Verdict ||
				res.Score.ChallengeMethod != w.ChallengeMethod || res.Score.Signals != w.Signals {
				t.Fatalf("item %d: batch decision %+v != single decision %+v", i, *res.Score, w)
			}
		} else { // outcome line
			if !res.OK || res.Err != "" {
				t.Fatalf("item %d: expected ok outcome ack, got %+v", i, res)
			}
		}
	}
}

// TestBatchPerLineErrors checks that invalid lines produce error lines
// without desynchronizing the stream, and that blank lines are skipped.
func TestBatchPerLineErrors(t *testing.T) {
	c, _ := newTestServer(t, 1)

	body := strings.Join([]string{
		`{"account":1,"ip":"1.2.3.4","at":"2012-11-02T09:00:00Z","password_ok":true}`,
		``, // blank: skipped, no response line
		`{"account":0,"ip":"1.2.3.4","at":"2012-11-02T09:00:00Z"}`,  // missing account
		`not json at all`,                                           // parse failure
		`{"op":"frobnicate","account":1,"ip":"1.2.3.4","at":"2012-11-02T09:00:00Z"}`, // unknown op
		`{"op":"outcome","account":1,"ip":"1.2.3.4","at":"2012-11-02T09:01:00Z","success":true}`,
	}, "\n")

	r, err := http.Post(c.Base+"/v1/score.batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := nonBlankLines(string(raw))
	if len(lines) != 5 {
		t.Fatalf("expected 5 response lines, got %d: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"score"`) {
		t.Errorf("line 0: expected score response, got %q", lines[0])
	}
	for i, frag := range map[int]string{1: "account", 2: "bad json", 3: "unknown op"} {
		if !strings.Contains(lines[i], `"error"`) || !strings.Contains(lines[i], frag) {
			t.Errorf("line %d: expected error mentioning %q, got %q", i, frag, lines[i])
		}
	}
	if lines[4] != `{"ok":true}` {
		t.Errorf("line 4: expected outcome ack, got %q", lines[4])
	}
}

// TestBatchCountsMetrics checks batch traffic lands in the same statz
// counters as single requests.
func TestBatchCountsMetrics(t *testing.T) {
	c, _ := newTestServer(t, 1)
	items := []serve.BatchItem{
		serve.ScoreItem(validScoreReq()),
		serve.OutcomeItem(serve.OutcomeRequest{Account: 1, IP: "1.2.3.4",
			At: time.Date(2012, 11, 2, 9, 1, 0, 0, time.UTC), Success: true}),
		{Op: "bogus", Account: 1, IP: "1.2.3.4", At: time.Date(2012, 11, 2, 9, 2, 0, 0, time.UTC)},
	}
	results, err := c.Batch(items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if results[0].Score == nil || !results[1].OK || results[2].Err == "" {
		t.Fatalf("unexpected batch results: %+v", results)
	}
	st, err := c.Statz()
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	if st.Score != 1 || st.Outcome != 1 || st.BadRequests != 1 {
		t.Fatalf("statz score=%d outcome=%d bad=%d, want 1/1/1",
			st.Score, st.Outcome, st.BadRequests)
	}
}

func nonBlankLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
