package serve_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"manualhijack/internal/serve"
)

// benchHandler builds a primed server handler plus pre-encoded request
// bodies drawn from the shared test world, so the benchmark loop measures
// decode + score + encode and nothing else.
func benchHandler(b *testing.B, shards, n int) (http.Handler, [][]byte) {
	b.Helper()
	const seed, pop = 3, 2000
	dir, plan, atts := testWorld(seed, pop, n)
	cfg := serve.DefaultConfig(seed)
	cfg.Shards = shards
	e := serve.New(dir, plan, cfg)
	e.Prime()
	h := serve.NewServer(e, serve.ServerConfig{}).Handler()

	bodies := make([][]byte, n)
	for i, att := range atts {
		req := serve.ScoreRequest{
			Account:    att.Account,
			IP:         att.IP.String(),
			DeviceID:   att.DeviceID,
			At:         att.At,
			PasswordOK: att.PasswordOK,
		}
		bodies[i] = serve.AppendScoreRequest(nil, &req)
	}
	return h, bodies
}

// BenchmarkServeScoreParallel drives the whole HTTP handler — routing,
// backpressure, wire decode, sharded scoring, wire encode — concurrently
// through in-process recorders. This is the per-request serving cost minus
// the kernel's TCP bill, the figure the zero-alloc wire layer moves.
func BenchmarkServeScoreParallel(b *testing.B) {
	const n = 8192
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			h, bodies := benchHandler(b, shards, n)
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rd := bytes.NewReader(nil)
				for pb.Next() {
					rd.Reset(bodies[int(idx.Add(1))%n])
					req := httptest.NewRequest(http.MethodPost, "/v1/score", rd)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
			})
		})
	}
}

// BenchmarkServeScoreBatch measures the batch endpoint at various batch
// sizes: the per-login cost should fall as HTTP framing amortizes.
func BenchmarkServeScoreBatch(b *testing.B) {
	const n = 8192
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			h, bodies := benchHandler(b, 4, n)
			// Pre-frame NDJSON request bodies of `size` score lines each.
			var frames [][]byte
			for at := 0; at+size <= n; at += size {
				var f []byte
				for _, line := range bodies[at : at+size] {
					f = append(f, line...)
					f = append(f, '\n')
				}
				frames = append(frames, f)
			}
			var idx atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			// One benchmark iteration = one login, to stay comparable with
			// BenchmarkServeScoreParallel's per-request numbers.
			b.RunParallel(func(pb *testing.PB) {
				rd := bytes.NewReader(nil)
				for pb.Next() {
					// Claim a whole frame's worth of iterations at once.
					k := int(idx.Add(1)) % len(frames)
					for burned := 1; burned < size && pb.Next(); burned++ {
					}
					rd.Reset(frames[k])
					req := httptest.NewRequest(http.MethodPost, "/v1/score.batch", rd)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Fatalf("status %d: %s", w.Code, w.Body.String())
					}
				}
			})
		})
	}
}
