package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a typed HTTP client for a riskd server. It is safe for
// concurrent use (http.Client is).
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8077".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.http().Post(c.url(path), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return &StatusError{Code: r.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// StatusError is a non-200 reply.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: http %d: %s", e.Code, e.Msg)
}

// IsRejected reports whether err is a 429 backpressure shed.
func IsRejected(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// Score submits one attempt for scoring.
func (c *Client) Score(req ScoreRequest) (*ScoreResponse, error) {
	var resp ScoreResponse
	if err := c.post("/v1/score", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Outcome feeds back a final decision.
func (c *Client) Outcome(req OutcomeRequest) error {
	return c.post("/v1/outcome", req, nil)
}

// Statz fetches the serving counters.
func (c *Client) Statz() (*StatzResponse, error) {
	r, err := c.http().Get(c.url("/v1/statz"))
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	var resp StatzResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitHealthy polls /v1/healthz until the server answers or ctx expires.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		r, err := c.http().Get(c.url("/v1/healthz"))
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: server not healthy: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
