package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// defaultClient is the fallback *http.Client. http.DefaultClient's
// transport caps idle connections at 2 per host (the net/http default), so
// anything more concurrent than 2 workers hammering one riskd constantly
// re-dials — exactly the path concurrent replay saturates. This transport
// keeps enough idle connections around for every worker riskload can
// realistically run, and skips the HTTP/2 upgrade probe (riskd speaks
// plain HTTP/1.1 over loopback).
var (
	defaultClientOnce sync.Once
	defaultClient     *http.Client
)

// DefaultTransportConns is the idle-connection budget of the default
// client — comfortably above any -workers value riskload uses.
const DefaultTransportConns = 256

func sharedClient() *http.Client {
	defaultClientOnce.Do(func() {
		defaultClient = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        DefaultTransportConns,
				MaxIdleConnsPerHost: DefaultTransportConns,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	})
	return defaultClient
}

// Client is a typed HTTP client for a riskd server. It is safe for
// concurrent use (http.Client is).
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8077".
	Base string
	// HTTP is the underlying client; nil means a shared client whose
	// transport is tuned for many concurrent workers against one host
	// (MaxIdleConnsPerHost = DefaultTransportConns, vs http.DefaultClient's
	// 2, which thrashes the dial path under concurrent replay).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return sharedClient()
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// postBytes posts body and decodes a JSON reply into resp (skipped when
// resp is nil). The body buffer is owned by the caller and free for reuse
// once postBytes returns.
func (c *Client) postBytes(path, contentType string, body []byte, resp any) error {
	r, err := c.http().Post(c.url(path), contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return &StatusError{Code: r.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// StatusError is a non-200 reply.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: http %d: %s", e.Code, e.Msg)
}

// IsRejected reports whether err is a 429 backpressure shed.
func IsRejected(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// reqBufPool recycles client-side request-encode buffers.
var reqBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// Score submits one attempt for scoring.
func (c *Client) Score(req ScoreRequest) (*ScoreResponse, error) {
	bb := reqBufPool.Get().(*[]byte)
	body := AppendScoreRequest((*bb)[:0], &req)
	var resp ScoreResponse
	err := c.postBytes("/v1/score", "application/json", body, &resp)
	*bb = body[:0]
	reqBufPool.Put(bb)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Outcome feeds back a final decision.
func (c *Client) Outcome(req OutcomeRequest) error {
	bb := reqBufPool.Get().(*[]byte)
	body := AppendOutcomeRequest((*bb)[:0], &req)
	err := c.postBytes("/v1/outcome", "application/json", body, nil)
	*bb = body[:0]
	reqBufPool.Put(bb)
	return err
}

// BatchResult is one line of a /v1/score.batch reply.
type BatchResult struct {
	// Score is set for score items.
	Score *ScoreResponse
	// OK is true for acknowledged outcome items.
	OK bool
	// Err carries the server's per-line error, empty on success.
	Err string
}

// Batch streams items through POST /v1/score.batch and returns one result
// per item, in order. A transport-level failure (or a line-count mismatch,
// which means the stream desynchronized) is returned as an error; per-item
// failures come back in BatchResult.Err.
func (c *Client) Batch(items []BatchItem) ([]BatchResult, error) {
	bb := reqBufPool.Get().(*[]byte)
	body := (*bb)[:0]
	for i := range items {
		body = AppendBatchItem(body, &items[i])
		body = append(body, '\n')
	}
	r, err := c.http().Post(c.url("/v1/score.batch"), "application/x-ndjson", bytes.NewReader(body))
	*bb = body[:0]
	reqBufPool.Put(bb)
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return nil, &StatusError{Code: r.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}

	results := make([]BatchResult, 0, len(items))
	sc := newLineScanner(r.Body)
	for sc.scan() {
		line := sc.bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Err *string `json:"error"`
			OK  *bool   `json:"ok"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("serve: batch: bad response line %q: %w", line, err)
		}
		switch {
		case probe.Err != nil:
			results = append(results, BatchResult{Err: *probe.Err})
		case probe.OK != nil:
			results = append(results, BatchResult{OK: *probe.OK})
		default:
			var sr ScoreResponse
			if err := json.Unmarshal(line, &sr); err != nil {
				return nil, fmt.Errorf("serve: batch: bad score line %q: %w", line, err)
			}
			results = append(results, BatchResult{Score: &sr})
		}
	}
	if err := sc.err(); err != nil {
		return nil, fmt.Errorf("serve: batch: reading response: %w", err)
	}
	if len(results) != len(items) {
		return nil, fmt.Errorf("serve: batch: sent %d items, got %d response lines (stream desynchronized)",
			len(items), len(results))
	}
	return results, nil
}

// lineScanner is a bufio.Scanner stand-in sized for batch response lines.
type lineScanner struct {
	r    io.Reader
	buf  []byte
	line []byte
	e    error
}

func newLineScanner(r io.Reader) *lineScanner { return &lineScanner{r: r} }

func (s *lineScanner) scan() bool {
	for {
		if i := bytes.IndexByte(s.buf, '\n'); i >= 0 {
			s.line = s.buf[:i]
			s.buf = s.buf[i+1:]
			return true
		}
		if s.e != nil {
			if len(s.buf) > 0 {
				s.line, s.buf = s.buf, nil
				return true
			}
			return false
		}
		chunk := make([]byte, 32*1024)
		n, err := s.r.Read(chunk)
		s.buf = append(s.buf, chunk[:n]...)
		if err != nil {
			s.e = err
		}
	}
}

func (s *lineScanner) bytes() []byte { return s.line }

func (s *lineScanner) err() error {
	if s.e == io.EOF || s.e == nil {
		return nil
	}
	return s.e
}

// Statz fetches the serving counters.
func (c *Client) Statz() (*StatzResponse, error) {
	r, err := c.http().Get(c.url("/v1/statz"))
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	var resp StatzResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitHealthy polls /v1/healthz until the server answers or ctx expires.
func (c *Client) WaitHealthy(ctx context.Context) error {
	for {
		r, err := c.http().Get(c.url("/v1/healthz"))
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: server not healthy: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
