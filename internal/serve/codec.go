package serve

// codec.go — the hand-rolled JSON wire codec for the serve hot path.
//
// encoding/json costs the score path more than the decision pipeline it
// wraps: reflection-driven encoding allocates per field, the streaming
// decoder allocates per token, and together they put the handler an order
// of magnitude above the 1.33 µs in-process pipeline (BENCH_5). This file
// replaces both directions with append-based encoders and a single-pass
// scanner over a pooled body buffer, under two contracts the tests in
// codec_test.go enforce:
//
//   - Byte-level encode equivalence: for every wire struct, Append*
//     produces exactly the bytes json.Marshal produces — same field order,
//     same omitempty behavior, same float formatting (including the
//     exponent-trim quirk), same string escaping (HTML escaping, U+FFFD
//     replacement, U+2028/U+2029) — so clients cannot tell the codecs
//     apart and either side can be swapped independently.
//   - Decode parity: Decode* accepts exactly what a json.Decoder.Decode
//     into the same struct accepts (case-folded keys, unknown fields,
//     null semantics, duplicate-key last-wins, ignored trailing data) and
//     rejects what it rejects, yielding an identical struct on success.
//
// Allocation discipline: decoding a ScoreRequest costs one allocation per
// retained string (IP, DeviceID — they outlive the pooled body buffer
// because the analyzer's history maps key on them) plus one inside
// time.Parse; encoding appends into a caller-supplied (pooled) buffer and
// allocates nothing. TestWireAllocFences pins the decode+encode round
// trip at ≤ 4 allocs.
//
// Known, deliberate divergences from encoding/json, none observable on
// the wire: key case-folding is ASCII-only (encoding/json also folds
// U+212A/U+017F into k/s); NaN/±Inf encode as literals instead of
// erroring (the wire structs never carry them — scores live in [0,1],
// latencies are finite).

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string literal, matching
// encoding/json's default (HTML-escaping) encoder byte for byte.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control chars and the HTML trio <, >, & get \u00XX, as
				// encoding/json does with HTML escaping on.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendFloat matches encoding/json's float64 encoder: %f in the
// human-scale range, %e outside it, with the two-digit exponent trimmed.
func appendFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendTime appends t as a quoted RFC3339Nano literal, the exact bytes
// time.Time.MarshalJSON produces for in-range years.
func appendTime(b []byte, t time.Time) []byte {
	b = append(b, '"')
	b = t.AppendFormat(b, time.RFC3339Nano)
	return append(b, '"')
}

// ---------------------------------------------------------------------------
// Wire-struct encoders
// ---------------------------------------------------------------------------

// AppendScoreResponse appends r's JSON encoding — the bytes json.Marshal
// would produce — and returns the extended buffer. Zero allocations
// beyond buffer growth.
func AppendScoreResponse(b []byte, r *ScoreResponse) []byte {
	b = append(b, `{"score":`...)
	b = appendFloat(b, r.Score)
	b = append(b, `,"signals":{"NewCountry":`...)
	b = appendBool(b, r.Signals.NewCountry)
	b = append(b, `,"ImpossibleHop":`...)
	b = appendBool(b, r.Signals.ImpossibleHop)
	b = append(b, `,"NewDevice":`...)
	b = appendBool(b, r.Signals.NewDevice)
	b = append(b, `,"IPFanout":`...)
	b = appendFloat(b, r.Signals.IPFanout)
	b = append(b, `,"RecentFailures":`...)
	b = appendFloat(b, r.Signals.RecentFailures)
	b = append(b, `},"verdict":`...)
	b = appendString(b, string(r.Verdict))
	if r.ChallengeMethod != "" {
		b = append(b, `,"challenge_method":`...)
		b = appendString(b, string(r.ChallengeMethod))
	}
	if r.ChallengePassed != nil {
		b = append(b, `,"challenge_passed":`...)
		b = appendBool(b, *r.ChallengePassed)
	}
	return append(b, '}')
}

// AppendStatzResponse appends r's JSON encoding, matching json.Marshal
// (verdict map keys in sorted order).
func AppendStatzResponse(b []byte, r *StatzResponse) []byte {
	b = append(b, `{"uptime_s":`...)
	b = appendFloat(b, r.UptimeS)
	b = append(b, `,"score_requests":`...)
	b = strconv.AppendInt(b, r.Score, 10)
	b = append(b, `,"outcome_requests":`...)
	b = strconv.AppendInt(b, r.Outcome, 10)
	b = append(b, `,"rejected_429":`...)
	b = strconv.AppendInt(b, r.Rejected, 10)
	b = append(b, `,"bad_requests":`...)
	b = strconv.AppendInt(b, r.BadRequests, 10)
	b = append(b, `,"verdicts":`...)
	b = appendVerdictMap(b, r.Verdicts)
	b = append(b, `,"challenges_run":`...)
	b = strconv.AppendInt(b, r.ChallengesRun, 10)
	b = append(b, `,"latency":{"n":`...)
	b = strconv.AppendInt(b, int64(r.Latency.N), 10)
	b = append(b, `,"p50_us":`...)
	b = appendFloat(b, r.Latency.P50us)
	b = append(b, `,"p95_us":`...)
	b = appendFloat(b, r.Latency.P95us)
	b = append(b, `,"p99_us":`...)
	b = appendFloat(b, r.Latency.P99us)
	b = append(b, `,"max_us":`...)
	b = appendFloat(b, r.Latency.MaxUs)
	return append(b, `}}`...)
}

func appendVerdictMap(b []byte, m map[Verdict]int64) []byte {
	if m == nil {
		return append(b, "null"...)
	}
	// encoding/json emits map keys sorted; the verdict space is tiny, so an
	// insertion sort over a stack buffer keeps this allocation-free.
	var keys [8]Verdict
	n := 0
	for k := range m {
		if n == len(keys) {
			break // cannot happen with the three defined verdicts
		}
		keys[n] = k
		n++
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	b = append(b, '{')
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendString(b, string(keys[i]))
		b = append(b, ':')
		b = strconv.AppendInt(b, m[keys[i]], 10)
	}
	return append(b, '}')
}

// AppendScoreRequest appends r's JSON encoding — the client-side mirror of
// DecodeScoreRequest, byte-identical to json.Marshal.
func AppendScoreRequest(b []byte, r *ScoreRequest) []byte {
	b = append(b, `{"account":`...)
	b = strconv.AppendInt(b, int64(r.Account), 10)
	b = append(b, `,"ip":`...)
	b = appendString(b, r.IP)
	if r.DeviceID != "" {
		b = append(b, `,"device_id":`...)
		b = appendString(b, r.DeviceID)
	}
	b = append(b, `,"at":`...)
	b = appendTime(b, r.At)
	b = append(b, `,"password_ok":`...)
	b = appendBool(b, r.PasswordOK)
	if r.Principal != nil {
		b = append(b, `,"principal":`...)
		b = appendPrincipal(b, r.Principal)
	}
	return append(b, '}')
}

func appendPrincipal(b []byte, p *PrincipalWire) []byte {
	b = append(b, '{')
	first := true
	if len(p.Phones) > 0 {
		b = append(b, `"phones":[`...)
		for i, ph := range p.Phones {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, ph)
		}
		b = append(b, ']')
		first = false
	}
	if p.KnowledgeSkill != 0 {
		if !first {
			b = append(b, ',')
		}
		b = append(b, `"knowledge_skill":`...)
		b = appendFloat(b, p.KnowledgeSkill)
	}
	return append(b, '}')
}

// AppendOutcomeRequest appends r's JSON encoding, byte-identical to
// json.Marshal.
func AppendOutcomeRequest(b []byte, r *OutcomeRequest) []byte {
	b = append(b, `{"account":`...)
	b = strconv.AppendInt(b, int64(r.Account), 10)
	b = append(b, `,"ip":`...)
	b = appendString(b, r.IP)
	if r.DeviceID != "" {
		b = append(b, `,"device_id":`...)
		b = appendString(b, r.DeviceID)
	}
	b = append(b, `,"at":`...)
	b = appendTime(b, r.At)
	b = append(b, `,"success":`...)
	b = appendBool(b, r.Success)
	return append(b, '}')
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

// errUnexpectedEOF reports input that ends mid-value. (Input that ends
// after a complete value is fine: like json.Decoder.Decode, the decoders
// stop at the first complete JSON value and ignore anything after it.)
var errUnexpectedEOF = errors.New("serve: json: unexpected end of input")

type decodeState struct {
	data []byte
	off  int
}

func (d *decodeState) errorf(format string, args ...any) error {
	return fmt.Errorf("serve: json: "+format+" (offset %d)", append(args, d.off)...)
}

func (d *decodeState) skipWS() {
	for d.off < len(d.data) {
		switch d.data[d.off] {
		case ' ', '\t', '\r', '\n':
			d.off++
		default:
			return
		}
	}
}

// peek returns the next non-whitespace byte without consuming it.
func (d *decodeState) peek() (byte, error) {
	d.skipWS()
	if d.off >= len(d.data) {
		return 0, errUnexpectedEOF
	}
	return d.data[d.off], nil
}

func (d *decodeState) expect(c byte) error {
	got, err := d.peek()
	if err != nil {
		return err
	}
	if got != c {
		return d.errorf("expected %q, found %q", c, got)
	}
	d.off++
	return nil
}

// literal consumes true/false/null, returning the first byte consumed.
func (d *decodeState) literal() (byte, error) {
	c := d.data[d.off]
	var want string
	switch c {
	case 't':
		want = "true"
	case 'f':
		want = "false"
	case 'n':
		want = "null"
	default:
		return 0, d.errorf("unexpected %q", c)
	}
	if len(d.data)-d.off < len(want) || string(d.data[d.off:d.off+len(want)]) != want {
		return 0, d.errorf("invalid literal")
	}
	d.off += len(want)
	return c, nil
}

// scanString consumes a string literal (opening quote already verified by
// the caller's peek) and returns the raw bytes between the quotes plus
// whether they contain escapes. The scan validates escape syntax and
// rejects raw control characters, exactly as the encoding/json scanner
// does; it does not validate UTF-8 (encoding/json doesn't either — bad
// sequences are replaced at materialization time).
func (d *decodeState) scanString() (raw []byte, hasEsc bool, err error) {
	d.off++ // opening quote
	start := d.off
	for d.off < len(d.data) {
		c := d.data[d.off]
		switch {
		case c == '"':
			raw = d.data[start:d.off]
			d.off++
			return raw, hasEsc, nil
		case c == '\\':
			hasEsc = true
			d.off++
			if d.off >= len(d.data) {
				return nil, false, errUnexpectedEOF
			}
			switch d.data[d.off] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				d.off++
			case 'u':
				d.off++
				if len(d.data)-d.off < 4 {
					return nil, false, errUnexpectedEOF
				}
				for i := 0; i < 4; i++ {
					if !isHex(d.data[d.off+i]) {
						return nil, false, d.errorf("invalid \\u escape")
					}
				}
				d.off += 4
			default:
				return nil, false, d.errorf("invalid escape character %q", d.data[d.off])
			}
		case c < 0x20:
			return nil, false, d.errorf("invalid control character %#x in string", c)
		default:
			d.off++
		}
	}
	return nil, false, errUnexpectedEOF
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) rune {
	switch {
	case c >= '0' && c <= '9':
		return rune(c - '0')
	case c >= 'a' && c <= 'f':
		return rune(c-'a') + 10
	default:
		return rune(c-'A') + 10
	}
}

// unquote materializes a scanned string. The fast path — printable ASCII,
// no escapes — is a single allocation; the slow path resolves escapes
// (including surrogate pairs) and replaces invalid UTF-8 with U+FFFD,
// matching encoding/json's unquote.
func unquote(raw []byte, hasEsc bool) string {
	if !hasEsc {
		ascii := true
		for _, c := range raw {
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii {
			return string(raw)
		}
	}
	out := make([]byte, 0, len(raw)+8)
	for i := 0; i < len(raw); {
		c := raw[i]
		switch {
		case c == '\\':
			i++
			switch raw[i] {
			case '"', '\\', '/':
				out = append(out, raw[i])
				i++
			case 'b':
				out = append(out, '\b')
				i++
			case 'f':
				out = append(out, '\f')
				i++
			case 'n':
				out = append(out, '\n')
				i++
			case 'r':
				out = append(out, '\r')
				i++
			case 't':
				out = append(out, '\t')
				i++
			case 'u':
				r := hexVal(raw[i+1])<<12 | hexVal(raw[i+2])<<8 | hexVal(raw[i+3])<<4 | hexVal(raw[i+4])
				i += 5
				if utf16.IsSurrogate(r) {
					r2 := rune(utf8.RuneError)
					if i+5 < len(raw) && raw[i] == '\\' && raw[i+1] == 'u' {
						lo := hexVal(raw[i+2])<<12 | hexVal(raw[i+3])<<8 | hexVal(raw[i+4])<<4 | hexVal(raw[i+5])
						if r2 = utf16.DecodeRune(r, lo); r2 != utf8.RuneError {
							i += 6
						}
					}
					r = r2
				}
				out = utf8.AppendRune(out, r)
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(raw[i:])
			out = utf8.AppendRune(out, r) // RuneError replaces bad sequences
			i += size
		}
	}
	return string(out)
}

// scanNumber consumes a number token, validating full JSON number syntax.
func (d *decodeState) scanNumber() ([]byte, error) {
	start := d.off
	if d.off < len(d.data) && d.data[d.off] == '-' {
		d.off++
	}
	// Integer part: 0, or [1-9][0-9]*.
	switch {
	case d.off < len(d.data) && d.data[d.off] == '0':
		d.off++
	case d.off < len(d.data) && d.data[d.off] >= '1' && d.data[d.off] <= '9':
		for d.off < len(d.data) && isDigit(d.data[d.off]) {
			d.off++
		}
	default:
		return nil, d.errorf("invalid number")
	}
	if d.off < len(d.data) && d.data[d.off] == '.' {
		d.off++
		if d.off >= len(d.data) || !isDigit(d.data[d.off]) {
			return nil, d.errorf("invalid number: missing fraction digits")
		}
		for d.off < len(d.data) && isDigit(d.data[d.off]) {
			d.off++
		}
	}
	if d.off < len(d.data) && (d.data[d.off] == 'e' || d.data[d.off] == 'E') {
		d.off++
		if d.off < len(d.data) && (d.data[d.off] == '+' || d.data[d.off] == '-') {
			d.off++
		}
		if d.off >= len(d.data) || !isDigit(d.data[d.off]) {
			return nil, d.errorf("invalid number: missing exponent digits")
		}
		for d.off < len(d.data) && isDigit(d.data[d.off]) {
			d.off++
		}
	}
	return d.data[start:d.off], nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipValue consumes any JSON value, validating its syntax — unknown
// fields are fully checked, as encoding/json's scanner does.
func (d *decodeState) skipValue() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		d.off++
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c == '}' {
			d.off++
			return nil
		}
		for {
			if c, err := d.peek(); err != nil {
				return err
			} else if c != '"' {
				return d.errorf("expected object key")
			}
			if _, _, err := d.scanString(); err != nil {
				return err
			}
			if err := d.expect(':'); err != nil {
				return err
			}
			if err := d.skipValue(); err != nil {
				return err
			}
			c, err := d.peek()
			if err != nil {
				return err
			}
			d.off++
			if c == '}' {
				return nil
			}
			if c != ',' {
				return d.errorf("expected ',' or '}' in object")
			}
		}
	case '[':
		d.off++
		c, err := d.peek()
		if err != nil {
			return err
		}
		if c == ']' {
			d.off++
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			c, err := d.peek()
			if err != nil {
				return err
			}
			d.off++
			if c == ']' {
				return nil
			}
			if c != ',' {
				return d.errorf("expected ',' or ']' in array")
			}
		}
	case '"':
		_, _, err := d.scanString()
		return err
	case 't', 'f', 'n':
		_, err := d.literal()
		return err
	default:
		_, err := d.scanNumber()
		return err
	}
}

// foldEq reports whether raw (an unescaped key) equals name under ASCII
// case-folding — the match rule encoding/json applies to field names.
func foldEq(raw []byte, name string) bool {
	if len(raw) != len(name) {
		return false
	}
	for i := 0; i < len(raw); i++ {
		a, b := raw[i], name[i]
		if a >= 'A' && a <= 'Z' {
			a += 'a' - 'A'
		}
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// key scans an object key and returns its unescaped bytes (aliasing the
// input when escape-free).
func (d *decodeState) key() ([]byte, error) {
	c, err := d.peek()
	if err != nil {
		return nil, err
	}
	if c != '"' {
		return nil, d.errorf("expected object key")
	}
	raw, hasEsc, err := d.scanString()
	if err != nil {
		return nil, err
	}
	if hasEsc {
		return []byte(unquote(raw, true)), nil
	}
	return raw, nil
}

// fieldString decodes a string value into dst. JSON null leaves dst
// unchanged, as encoding/json does for non-pointer strings.
func (d *decodeState) fieldString(dst *string, name string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '"':
		raw, hasEsc, err := d.scanString()
		if err != nil {
			return err
		}
		*dst = unquote(raw, hasEsc)
		return nil
	case 'n':
		if lit, err := d.literal(); err != nil {
			return err
		} else if lit != 'n' {
			return d.errorf("cannot unmarshal bool into field %s of type string", name)
		}
		return nil
	default:
		return d.errorf("cannot unmarshal value into field %s of type string", name)
	}
}

// fieldBool decodes a bool value into dst; null leaves it unchanged.
func (d *decodeState) fieldBool(dst *bool, name string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 't', 'f', 'n':
		lit, err := d.literal()
		if err != nil {
			return err
		}
		if lit != 'n' {
			*dst = lit == 't'
		}
		return nil
	default:
		return d.errorf("cannot unmarshal value into field %s of type bool", name)
	}
}

// fieldInt32 decodes an integer into dst; null leaves it unchanged.
func (d *decodeState) fieldInt32(dst *int32, name string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if lit, err := d.literal(); err != nil {
			return err
		} else if lit != 'n' {
			return d.errorf("cannot unmarshal bool into field %s of type int32", name)
		}
		return nil
	}
	tok, err := d.scanNumber()
	if err != nil {
		if c == '"' || c == 't' || c == 'f' || c == '{' || c == '[' {
			return d.errorf("cannot unmarshal value into field %s of type int32", name)
		}
		return err
	}
	// strconv's param does not escape, so string(tok) stays on the stack.
	v, err := strconv.ParseInt(string(tok), 10, 32)
	if err != nil {
		return d.errorf("cannot unmarshal number %s into field %s of type int32", tok, name)
	}
	*dst = int32(v)
	return nil
}

// fieldFloat decodes a float64 into dst; null leaves it unchanged.
func (d *decodeState) fieldFloat(dst *float64, name string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if lit, err := d.literal(); err != nil {
			return err
		} else if lit != 'n' {
			return d.errorf("cannot unmarshal bool into field %s of type float64", name)
		}
		return nil
	}
	tok, err := d.scanNumber()
	if err != nil {
		if c == '"' || c == 't' || c == 'f' || c == '{' || c == '[' {
			return d.errorf("cannot unmarshal value into field %s of type float64", name)
		}
		return err
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return d.errorf("cannot unmarshal number %s into field %s of type float64", tok, name)
	}
	*dst = v
	return nil
}

// fieldTime decodes a time.Time via its UnmarshalJSON, handing it the raw
// scalar token exactly as encoding/json does (null is a no-op inside
// time.UnmarshalJSON itself).
func (d *decodeState) fieldTime(dst *time.Time, name string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	start := d.off
	switch c {
	case '"':
		if _, _, err := d.scanString(); err != nil {
			return err
		}
	case 't', 'f', 'n':
		if _, err := d.literal(); err != nil {
			return err
		}
	case '{', '[':
		return d.errorf("cannot unmarshal value into field %s of type time.Time", name)
	default:
		if _, err := d.scanNumber(); err != nil {
			return err
		}
	}
	return dst.UnmarshalJSON(d.data[start:d.off])
}

// object drives a key/value loop: field is called with the cursor on each
// value and must consume it. An initial null is accepted as a no-op (the
// json.Decoder contract for struct targets).
func (d *decodeState) object(field func(key []byte) error) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		_, err := d.literal()
		return err
	}
	if c != '{' {
		return d.errorf("cannot unmarshal non-object value")
	}
	d.off++
	if c, err := d.peek(); err != nil {
		return err
	} else if c == '}' {
		d.off++
		return nil
	}
	for {
		key, err := d.key()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		c, err := d.peek()
		if err != nil {
			return err
		}
		d.off++
		if c == '}' {
			return nil
		}
		if c != ',' {
			return d.errorf("expected ',' or '}' in object")
		}
	}
}

// decodePrincipal parses a PrincipalWire value, honoring encoding/json's
// pointer-null semantics: null stores nil, an object allocates.
func (d *decodeState) decodePrincipal(dst **PrincipalWire) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if _, err := d.literal(); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	p := *dst
	if p == nil {
		p = &PrincipalWire{}
	}
	err = d.object(func(key []byte) error {
		switch {
		case foldEq(key, "phones"):
			return d.decodeStringSlice(&p.Phones)
		case foldEq(key, "knowledge_skill"):
			return d.fieldFloat(&p.KnowledgeSkill, "knowledge_skill")
		default:
			return d.skipValue()
		}
	})
	if err != nil {
		return err
	}
	*dst = p
	return nil
}

// decodeStringSlice parses a []string; null stores nil, [] stores an
// empty non-nil slice, and null elements decode to "" — all matching
// encoding/json.
func (d *decodeState) decodeStringSlice(dst *[]string) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		if _, err := d.literal(); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if c != '[' {
		return d.errorf("cannot unmarshal non-array into []string")
	}
	d.off++
	out := (*dst)[:0]
	if out == nil {
		out = []string{}
	}
	if c, err := d.peek(); err != nil {
		return err
	} else if c == ']' {
		d.off++
		*dst = out
		return nil
	}
	for {
		var s string
		if err := d.fieldString(&s, "phones"); err != nil {
			return err
		}
		out = append(out, s)
		c, err := d.peek()
		if err != nil {
			return err
		}
		d.off++
		if c == ']' {
			*dst = out
			return nil
		}
		if c != ',' {
			return d.errorf("expected ',' or ']' in array")
		}
	}
}

// DecodeScoreRequest parses data into r with the semantics of
// json.Decoder.Decode: unknown fields are skipped (but validated), keys
// match case-insensitively, null fields are no-ops, duplicate keys take
// the last value, and trailing data after the first value is ignored.
func DecodeScoreRequest(data []byte, r *ScoreRequest) error {
	d := &decodeState{data: data}
	return d.object(func(key []byte) error {
		switch {
		case foldEq(key, "account"):
			return d.fieldInt32((*int32)(&r.Account), "account")
		case foldEq(key, "ip"):
			return d.fieldString(&r.IP, "ip")
		case foldEq(key, "device_id"):
			return d.fieldString(&r.DeviceID, "device_id")
		case foldEq(key, "at"):
			return d.fieldTime(&r.At, "at")
		case foldEq(key, "password_ok"):
			return d.fieldBool(&r.PasswordOK, "password_ok")
		case foldEq(key, "principal"):
			return d.decodePrincipal(&r.Principal)
		default:
			return d.skipValue()
		}
	})
}

// DecodeOutcomeRequest parses data into r; same contract as
// DecodeScoreRequest.
func DecodeOutcomeRequest(data []byte, r *OutcomeRequest) error {
	d := &decodeState{data: data}
	return d.object(func(key []byte) error {
		switch {
		case foldEq(key, "account"):
			return d.fieldInt32((*int32)(&r.Account), "account")
		case foldEq(key, "ip"):
			return d.fieldString(&r.IP, "ip")
		case foldEq(key, "device_id"):
			return d.fieldString(&r.DeviceID, "device_id")
		case foldEq(key, "at"):
			return d.fieldTime(&r.At, "at")
		case foldEq(key, "success"):
			return d.fieldBool(&r.Success, "success")
		default:
			return d.skipValue()
		}
	})
}
