package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/identity"
	"manualhijack/internal/risk"
	"manualhijack/internal/serve"
)

// nastyRunes feeds the string generator every escaping regime the encoder
// has to match: quotes, backslashes, control characters, the HTML trio,
// U+2028/U+2029, multi-byte runes, and (via raw bytes below) invalid UTF-8.
var nastyRunes = []rune{'a', 'b', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t',
	'\b', '\f', 0x01, 0x1f, '<', '>', '&', 'é', 'Ω', '語', '\u2028', '\u2029', '😀'}

func randString(rng *rand.Rand) string {
	n := rng.Intn(12)
	var b []byte
	for i := 0; i < n; i++ {
		if rng.Intn(16) == 0 {
			b = append(b, 0xff, 0xfe) // invalid UTF-8
			continue
		}
		b = append(b, string(nastyRunes[rng.Intn(len(nastyRunes))])...)
	}
	return string(b)
}

func randFloat(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return float64(rng.Intn(100)) // integral values
	default:
		// Spread across magnitudes so both the %f and %e regimes (and the
		// exponent-trim path) are exercised.
		return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(36)-10))
	}
}

func randTime(rng *rand.Rand) time.Time {
	return time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).UTC()
}

func randScoreRequest(rng *rand.Rand) serve.ScoreRequest {
	r := serve.ScoreRequest{
		Account:    identity.AccountID(rng.Int31()),
		IP:         randString(rng),
		At:         randTime(rng),
		PasswordOK: rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		r.DeviceID = randString(rng)
	}
	if rng.Intn(3) == 0 {
		p := &serve.PrincipalWire{}
		// nil-or-nonempty phones: an empty non-nil slice is omitted by
		// omitempty and would decode back as nil, so the round-trip
		// generator never produces it (json.Marshal has the same blind spot).
		if n := rng.Intn(3); n > 0 {
			for i := 0; i < n; i++ {
				p.Phones = append(p.Phones, randString(rng))
			}
		}
		if rng.Intn(2) == 0 {
			p.KnowledgeSkill = randFloat(rng)
		}
		r.Principal = p
	}
	return r
}

func randScoreResponse(rng *rand.Rand) serve.ScoreResponse {
	r := serve.ScoreResponse{
		Score: randFloat(rng),
		Signals: risk.Signals{
			NewCountry:     rng.Intn(2) == 0,
			ImpossibleHop:  rng.Intn(2) == 0,
			NewDevice:      rng.Intn(2) == 0,
			IPFanout:       randFloat(rng),
			RecentFailures: randFloat(rng),
		},
		Verdict: serve.Verdict(randString(rng)),
	}
	if rng.Intn(2) == 0 {
		r.ChallengeMethod = challenge.Method(randString(rng))
	}
	if rng.Intn(2) == 0 {
		passed := rng.Intn(2) == 0
		r.ChallengePassed = &passed
	}
	return r
}

func randStatzResponse(rng *rand.Rand) serve.StatzResponse {
	r := serve.StatzResponse{
		UptimeS:       randFloat(rng),
		Score:         rng.Int63(),
		Outcome:       rng.Int63(),
		Rejected:      rng.Int63(),
		BadRequests:   rng.Int63(),
		ChallengesRun: rng.Int63(),
		Latency: serve.LatencyWire{
			N: rng.Int(), P50us: randFloat(rng), P95us: randFloat(rng),
			P99us: randFloat(rng), MaxUs: randFloat(rng),
		},
	}
	if rng.Intn(8) != 0 {
		r.Verdicts = map[serve.Verdict]int64{}
		for _, v := range []serve.Verdict{serve.VerdictAdmit, serve.VerdictChallenge, serve.VerdictBlock} {
			if rng.Intn(3) > 0 {
				r.Verdicts[v] = rng.Int63()
			}
		}
	}
	return r
}

// TestEncodeEquivalence is the byte-level property: for randomized wire
// structs, every Append* encoder produces exactly json.Marshal's bytes.
func TestEncodeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 5000; i++ {
		checkEncode := func(name string, fast []byte, v any) {
			t.Helper()
			std, err := json.Marshal(v)
			if err != nil {
				t.Fatalf("%s: json.Marshal: %v", name, err)
			}
			if !bytes.Equal(fast, std) {
				t.Fatalf("%s encode mismatch (iter %d):\nfast %q\nstd  %q\nvalue %+v", name, i, fast, std, v)
			}
		}
		sreq := randScoreRequest(rng)
		checkEncode("ScoreRequest", serve.AppendScoreRequest(nil, &sreq), &sreq)
		oreq := serve.OutcomeRequest{Account: sreq.Account, IP: sreq.IP, DeviceID: sreq.DeviceID,
			At: sreq.At, Success: rng.Intn(2) == 0}
		checkEncode("OutcomeRequest", serve.AppendOutcomeRequest(nil, &oreq), &oreq)
		sresp := randScoreResponse(rng)
		checkEncode("ScoreResponse", serve.AppendScoreResponse(nil, &sresp), &sresp)
		statz := randStatzResponse(rng)
		checkEncode("StatzResponse", serve.AppendStatzResponse(nil, &statz), &statz)
	}
}

// TestDecodeRoundTrip is the decode property: a fast-encoded request
// decodes — through both the fast decoder and encoding/json — back to the
// original struct, and both decoders agree field for field.
func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 5000; i++ {
		orig := randScoreRequest(rng)
		wire := serve.AppendScoreRequest(nil, &orig)

		var fast, std serve.ScoreRequest
		if err := serve.DecodeScoreRequest(wire, &fast); err != nil {
			t.Fatalf("fast decode of own encoding failed (iter %d): %v\n%q", i, err, wire)
		}
		if err := json.Unmarshal(wire, &std); err != nil {
			t.Fatalf("encoding/json rejected fast encoding (iter %d): %v\n%q", i, err, wire)
		}
		// Strings with invalid UTF-8 are replaced with U+FFFD by both
		// decoders, so compare the decoded structs to each other (exact)
		// and to the original modulo that replacement.
		if !reflect.DeepEqual(fast, std) {
			t.Fatalf("decoders disagree (iter %d):\nfast %+v\nstd  %+v\nwire %q", i, fast, std, wire)
		}

		var ofast, ostd serve.OutcomeRequest
		owire := serve.AppendOutcomeRequest(nil, &serve.OutcomeRequest{
			Account: orig.Account, IP: orig.IP, DeviceID: orig.DeviceID, At: orig.At, Success: i%2 == 0})
		if err := serve.DecodeOutcomeRequest(owire, &ofast); err != nil {
			t.Fatalf("fast outcome decode failed (iter %d): %v", i, err)
		}
		if err := json.Unmarshal(owire, &ostd); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ofast, ostd) {
			t.Fatalf("outcome decoders disagree (iter %d):\nfast %+v\nstd  %+v", i, ofast, ostd)
		}
	}
}

// decodeParity runs one input through both decoders and fails the test on
// any accept/reject or decoded-value disagreement.
func decodeParity(t *testing.T, input []byte) {
	t.Helper()
	var fast, std serve.ScoreRequest
	fastErr := serve.DecodeScoreRequest(input, &fast)
	stdErr := json.NewDecoder(bytes.NewReader(input)).Decode(&std)
	if (fastErr == nil) != (stdErr == nil) {
		t.Fatalf("rejection parity broken on %q:\nfast err: %v\nstd err:  %v", input, fastErr, stdErr)
	}
	if fastErr == nil && !reflect.DeepEqual(fast, std) {
		t.Fatalf("decoded values diverge on %q:\nfast %+v\nstd  %+v", input, fast, std)
	}
}

// TestDecodeRejectionParity feeds the fast decoder the malformed-input
// corpus plus random mutations of valid documents and asserts it accepts
// and rejects exactly what json.Decoder.Decode accepts and rejects.
func TestDecodeRejectionParity(t *testing.T) {
	corpus := []string{
		// The old handler's bad-request cases.
		`{nope`,
		`{"account":1,"ip":"not-an-ip","at":"2012-11-02T09:00:00Z"}`,
		``,
		`null`,
		`  null  trailing-garbage`,
		`{}`,
		`{} {"account":2}`,
		`{"account":1}`,
		`5`, `"str"`, `[1,2]`, `true`,
		// Numbers.
		`{"account":01}`, `{"account":1.}`, `{"account":.5}`, `{"account":+1}`,
		`{"account":1e}`, `{"account":1e+}`, `{"account":-}`, `{"account":1.5}`,
		`{"account":1e2}`, `{"account":99999999999}`, `{"account":-0}`,
		`{"account":null}`, `{"account":"7"}`, `{"account":true}`,
		// Strings and escapes.
		`{"ip":"a\u00e9b"}`, `{"ip":"\ud83d\ude00"}`, `{"ip":"\ud800"}`, `{"ip":"\ud800\u0041"}`,
		`{"ip":"bad\escape"}`, `{"ip":"unterminated`, `{"ip":"ctrl` + "\x01" + `"}`,
		`{"ip":"\u12"}`, `{"ip":"\u12zz"}`, `{"ip": 5}`, `{"ip": null}`,
		// Keys: case folding, escapes, duplicates, unknowns.
		`{"ACCOUNT": 3, "Ip": "x", "DEVICE_id": "d"}`,
		`{"\u0061ccount": 9}`,
		`{"account":1,"account":2}`,
		`{"unknown":{"deep":[1,{"x":null}]},"account":4}`,
		`{"unknown":{"deep":[1,{"x":nulL}]}}`,
		`{"unknown":{bad}}`,
		`{"unknown":"trailing ws"   }   `,
		// Time field.
		`{"at":"2012-11-02T09:00:00Z"}`, `{"at":"2012-11-02T09:00:00.123456789+07:00"}`,
		`{"at":"not a time"}`, `{"at":123}`, `{"at":null}`, `{"at":{"x":1}}`,
		// Bools.
		`{"password_ok":true}`, `{"password_ok":false}`, `{"password_ok":null}`,
		`{"password_ok":1}`, `{"password_ok":"true"}`, `{"password_ok":tru}`,
		// Principal nesting.
		`{"principal":null}`, `{"principal":{}}`,
		`{"principal":{"phones":[]}}`, `{"principal":{"phones":null}}`,
		`{"principal":{"phones":["a",null,"b"]}}`,
		`{"principal":{"phones":["a",]}}`, `{"principal":{"phones":"a"}}`,
		`{"principal":{"knowledge_skill":0.5,"extra":[]}}`,
		`{"principal":{"knowledge_skill":"high"}}`,
		`{"principal":[1]}`,
		// Structural.
		`{"account":1,}`, `{"account" 1}`, `{"account":1 "ip":"x"}`, `{,}`,
		"\t\r\n {\"account\":  8 } \n",
	}
	for _, in := range corpus {
		decodeParity(t, []byte(in))
	}

	// Mutation fuzz: valid documents with random truncations, byte flips,
	// insertions, and deletions must be judged identically by both sides.
	rng := rand.New(rand.NewSource(71))
	mutBytes := []byte(`{}[]",:\u123etrufalsnl0189.-+eE` + "\x00\x1f\xff ")
	for i := 0; i < 4000; i++ {
		req := randScoreRequest(rng)
		doc := serve.AppendScoreRequest(nil, &req)
		for m := rng.Intn(3) + 1; m > 0; m-- {
			if len(doc) == 0 {
				break
			}
			switch p := rng.Intn(len(doc)); rng.Intn(4) {
			case 0: // truncate
				doc = doc[:p]
			case 1: // flip
				doc[p] = mutBytes[rng.Intn(len(mutBytes))]
			case 2: // insert
				doc = append(doc[:p], append([]byte{mutBytes[rng.Intn(len(mutBytes))]}, doc[p:]...)...)
			case 3: // delete
				doc = append(doc[:p], doc[p+1:]...)
			}
		}
		decodeParity(t, doc)
	}
}

// TestDecodeOmitemptyEdges pins the omitempty corners the replay and
// challenge paths depend on: nil principal, absent challenge_passed,
// empty signals, empty device.
func TestDecodeOmitemptyEdges(t *testing.T) {
	// A minimal request omits device_id and principal entirely.
	min := serve.ScoreRequest{Account: 5, IP: "1.2.3.4", At: time.Unix(1351846800, 0).UTC()}
	wire := serve.AppendScoreRequest(nil, &min)
	if bytes.Contains(wire, []byte("device_id")) || bytes.Contains(wire, []byte("principal")) {
		t.Fatalf("omitempty fields leaked into %q", wire)
	}
	var back serve.ScoreRequest
	if err := serve.DecodeScoreRequest(wire, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(min, back) {
		t.Fatalf("minimal round trip: got %+v want %+v", back, min)
	}

	// An all-zero response keeps score/signals/verdict (no omitempty) but
	// drops challenge_method and challenge_passed.
	zero := serve.ScoreResponse{}
	enc := serve.AppendScoreResponse(nil, &zero)
	std, _ := json.Marshal(&zero)
	if !bytes.Equal(enc, std) {
		t.Fatalf("zero response: fast %q std %q", enc, std)
	}
	if bytes.Contains(enc, []byte("challenge_method")) || bytes.Contains(enc, []byte("challenge_passed")) {
		t.Fatalf("zero response leaked omitempty fields: %q", enc)
	}
	for _, want := range []string{`"score":0`, `"NewCountry":false`, `"verdict":""`} {
		if !bytes.Contains(enc, []byte(want)) {
			t.Fatalf("zero response missing %s: %q", want, enc)
		}
	}

	// challenge_passed=false must still be emitted when the pointer is set.
	passed := false
	withP := serve.ScoreResponse{Verdict: serve.VerdictChallenge, ChallengePassed: &passed}
	if enc := serve.AppendScoreResponse(nil, &withP); !bytes.Contains(enc, []byte(`"challenge_passed":false`)) {
		t.Fatalf("explicit false challenge_passed dropped: %q", enc)
	}
}

// TestWireAllocFences pins the codec's allocation budget: the acceptance
// bar is ≤ 4 allocs for a full decode+encode of the replay-shaped score
// exchange (no principal). The decode's three allocations are the two
// retained strings (IP, DeviceID — they outlive the pooled body buffer)
// plus one inside time.Parse; the encode allocates nothing.
func TestWireAllocFences(t *testing.T) {
	body := []byte(`{"account":1234,"ip":"203.0.113.7","device_id":"device-1234","at":"2012-11-02T09:00:00.5Z","password_ok":true}`)
	var req serve.ScoreRequest
	decAllocs := testing.AllocsPerRun(2000, func() {
		req = serve.ScoreRequest{}
		if err := serve.DecodeScoreRequest(body, &req); err != nil {
			panic(err)
		}
	})
	if decAllocs > 3 {
		t.Errorf("DecodeScoreRequest: %.1f allocs/op, fence is 3", decAllocs)
	}

	passed := true
	resp := serve.ScoreResponse{
		Score:           0.55,
		Signals:         risk.Signals{NewCountry: true, IPFanout: 0.3},
		Verdict:         serve.VerdictChallenge,
		ChallengeMethod: challenge.MethodSMS,
		ChallengePassed: &passed,
	}
	buf := make([]byte, 0, 512)
	encAllocs := testing.AllocsPerRun(2000, func() {
		buf = serve.AppendScoreResponse(buf[:0], &resp)
	})
	if encAllocs != 0 {
		t.Errorf("AppendScoreResponse: %.1f allocs/op, fence is 0", encAllocs)
	}
	if total := decAllocs + encAllocs; total > 4 {
		t.Errorf("score decode+encode: %.1f allocs/op, acceptance fence is 4", total)
	}

	statz := serve.StatzResponse{
		UptimeS: 12.5, Score: 100, Outcome: 90,
		Verdicts: map[serve.Verdict]int64{serve.VerdictAdmit: 80, serve.VerdictChallenge: 15, serve.VerdictBlock: 5},
		Latency:  serve.LatencyWire{N: 100, P50us: 17, P95us: 80, P99us: 170, MaxUs: 900},
	}
	statzAllocs := testing.AllocsPerRun(2000, func() {
		buf = serve.AppendStatzResponse(buf[:0], &statz)
	})
	if statzAllocs != 0 {
		t.Errorf("AppendStatzResponse: %.1f allocs/op, fence is 0", statzAllocs)
	}

	var out serve.OutcomeRequest
	obody := []byte(`{"account":1234,"ip":"203.0.113.7","device_id":"device-1234","at":"2012-11-02T09:00:00Z","success":true}`)
	oAllocs := testing.AllocsPerRun(2000, func() {
		out = serve.OutcomeRequest{}
		if err := serve.DecodeOutcomeRequest(obody, &out); err != nil {
			panic(err)
		}
	})
	if oAllocs > 3 {
		t.Errorf("DecodeOutcomeRequest: %.1f allocs/op, fence is 3", oAllocs)
	}
}

func BenchmarkScoreWire(b *testing.B) {
	body := []byte(`{"account":1234,"ip":"203.0.113.7","device_id":"device-1234","at":"2012-11-02T09:00:00.5Z","password_ok":true}`)
	passed := true
	resp := serve.ScoreResponse{
		Score:           0.55,
		Signals:         risk.Signals{NewCountry: true, IPFanout: 0.3},
		Verdict:         serve.VerdictChallenge,
		ChallengeMethod: challenge.MethodSMS,
		ChallengePassed: &passed,
	}
	b.Run("decode/std", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req serve.ScoreRequest
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req serve.ScoreRequest
			if err := serve.DecodeScoreRequest(body, &req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/std", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/fast", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 512)
		for i := 0; i < b.N; i++ {
			buf = serve.AppendScoreResponse(buf[:0], &resp)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debugging edits
