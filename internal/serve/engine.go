package serve

import (
	"fmt"
	"hash/maphash"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
	"manualhijack/internal/risk"
)

// Config tunes the sharded decision pipeline.
type Config struct {
	// Shards is the number of account shards; 0 means GOMAXPROCS. Each
	// shard owns one risk.Analyzer and one challenge.Challenger behind a
	// mutex, so concurrency scales with the shard count while any single
	// account's history stays sequentially consistent.
	Shards int
	// IPShards is the number of shards for the cross-account IP-fanout
	// state; 0 means Shards.
	IPShards int
	// Weights are the risk signal weights.
	Weights risk.Weights
	// Challenge tunes the challenge flows.
	Challenge challenge.Config
	// ChallengeThreshold and BlockThreshold are the verdict cutoffs,
	// matching auth.Config semantics.
	ChallengeThreshold float64
	BlockThreshold     float64
	// Seed seeds the shard-local challenge random streams.
	Seed int64
}

// DefaultConfig mirrors the simulator's defense configuration
// (auth.DefaultConfig thresholds, risk.DefaultWeights) so a default riskd
// reproduces the study's operating point.
func DefaultConfig(seed int64) Config {
	a := auth.DefaultConfig()
	return Config{
		Weights:            risk.DefaultWeights(),
		Challenge:          challenge.DefaultConfig(),
		ChallengeThreshold: a.ChallengeThreshold,
		BlockThreshold:     a.BlockThreshold,
		Seed:               seed,
	}
}

// Decision is the pipeline's full answer for one attempt.
type Decision struct {
	Score           float64
	Signals         risk.Signals
	Verdict         Verdict
	ChallengeMethod challenge.Method
	// Challenge is set when a principal was supplied and the verdict
	// required a challenge: the actual (stochastic) challenge outcome.
	Challenge *challenge.Result
}

// Engine is the sharded decision pipeline.
//
// Concurrency model — the contract the -race tests in this package prove:
//
//   - Account state: every account maps to exactly one shard
//     (hash(AccountID) mod Shards). A shard's risk.Analyzer and
//     challenge.Challenger are touched only inside the shard mutex, which
//     upholds their single-goroutine contracts while letting distinct
//     shards run in parallel. Per-account operations are linearized by the
//     shard lock, so one account's history evolves in a single total order.
//   - IP state: the one signal that couples accounts (how many distinct
//     accounts an IP logged into today) lives in an IP-sharded
//     risk.IPFanoutTracker behind per-IP-shard mutexes. Those are leaf
//     locks: they are only ever acquired while an account-shard lock is
//     held, and no code path acquires an account lock while holding an IP
//     lock, so the lock order (account shard → IP shard) is acyclic and
//     deadlock-free.
//   - Directory: accounts are immutable after bootstrap. The engine never
//     writes identity.Account fields, so reading them (challenge-method
//     selection, Challenger.Run) needs no lock beyond the shard mutex that
//     already serializes the challenger. The serve layer therefore passes
//     shard-owned *identity.Account pointers to Challenger.Run rather than
//     copies — safe because nothing mutates them and the stochastic state
//     (the challenger's rng) is shard-confined.
type Engine struct {
	cfg    Config
	plan   *geo.IPPlan
	dir    *identity.Directory
	shards []*shard
	fanout *shardedFanout
}

type shard struct {
	mu sync.Mutex
	an *risk.Analyzer
	ch *challenge.Challenger
}

// shardedFanout is the shared FanoutSource: IP-sharded trackers behind leaf
// mutexes.
type shardedFanout struct {
	seed   maphash.Seed
	shards []*fanoutShard
}

type fanoutShard struct {
	mu sync.Mutex
	t  *risk.IPFanoutTracker
}

// Fanout implements risk.FanoutSource.
func (f *shardedFanout) Fanout(ip netip.Addr, acct identity.AccountID, at time.Time) float64 {
	s := f.shardFor(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Fanout(ip, acct, at)
}

// RecordSuccess implements risk.FanoutSource.
func (f *shardedFanout) RecordSuccess(ip netip.Addr, acct identity.AccountID, at time.Time) {
	s := f.shardFor(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t.RecordSuccess(ip, acct, at)
}

func (f *shardedFanout) shardFor(ip netip.Addr) *fanoutShard {
	if len(f.shards) == 1 {
		return f.shards[0]
	}
	b := ip.As16()
	h := maphash.Bytes(f.seed, b[:])
	return f.shards[h%uint64(len(f.shards))]
}

// New assembles an engine over the given (immutable) directory and IP
// plan. Call Prime before serving to warm per-account baselines.
func New(dir *identity.Directory, plan *geo.IPPlan, cfg Config) *Engine {
	nsh := cfg.Shards
	if nsh <= 0 {
		nsh = runtime.GOMAXPROCS(0)
	}
	nip := cfg.IPShards
	if nip <= 0 {
		nip = nsh
	}
	e := &Engine{
		cfg:  cfg,
		plan: plan,
		dir:  dir,
		fanout: &shardedFanout{
			seed:   maphash.MakeSeed(),
			shards: make([]*fanoutShard, nip),
		},
	}
	for i := range e.fanout.shards {
		e.fanout.shards[i] = &fanoutShard{t: risk.NewIPFanoutTracker()}
	}
	root := randx.New(cfg.Seed)
	e.shards = make([]*shard, nsh)
	for i := range e.shards {
		e.shards[i] = &shard{
			an: risk.NewAnalyzerWithFanout(plan, cfg.Weights, e.fanout),
			ch: challenge.New(cfg.Challenge, root.Fork(fmt.Sprintf("serve/shard/%d", i))),
		}
	}
	return e
}

// Shards returns the account-shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Directory exposes the account population the engine serves.
func (e *Engine) Directory() *identity.Directory { return e.dir }

func (e *Engine) shardFor(id identity.AccountID) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	// Fibonacci hashing spreads the dense sequential AccountIDs; plain
	// modulo would stripe contiguous IDs across shards too predictably for
	// adversarial load.
	h := uint64(id) * 0x9e3779b97f4a7c15
	return e.shards[h%uint64(len(e.shards))]
}

// Prime seeds every account's history with its home country and usual
// device fingerprint on its owning shard — the same warm-baseline start
// victim.Manager.PrimeRisk gives the simulator, and the state replay
// parity starts from.
func (e *Engine) Prime() {
	e.dir.All(func(a *identity.Account) {
		sh := e.shardFor(a.ID)
		sh.mu.Lock()
		sh.an.PrimeAccount(a.ID, a.HomeCountry, identity.DeviceFingerprint(a.ID))
		sh.mu.Unlock()
	})
}

// Score runs the decision pipeline for one attempt: signal extraction,
// scoring, verdict mapping, and — when a principal is supplied and the
// verdict is "challenge" — the challenge itself.
func (e *Engine) Score(att risk.Attempt, p *challenge.Principal) Decision {
	sh := e.shardFor(att.Account)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sig := sh.an.Extract(att)
	d := Decision{
		Signals: sig,
		Score:   sh.an.Weights.Combine(sig),
	}
	d.Verdict = VerdictFor(d.Score, e.cfg.ChallengeThreshold, e.cfg.BlockThreshold)
	if d.Verdict == VerdictChallenge {
		if acct := e.dir.Get(att.Account); acct != nil {
			d.ChallengeMethod = challenge.MethodFor(acct)
			if p != nil {
				res := sh.ch.Run(acct, *p)
				d.Challenge = &res
			}
		} else {
			d.ChallengeMethod = challenge.MethodNone
		}
	}
	return d
}

// RecordOutcome feeds back the service's final decision for an attempt so
// the account's history evolves exactly as the simulator's analyzer does:
// successes absorb country/device/IP observations, failures grow the
// failure window.
func (e *Engine) RecordOutcome(att risk.Attempt, success bool) {
	sh := e.shardFor(att.Account)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.an.RecordOutcome(att, success)
}
