package serve_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/core"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
	"manualhijack/internal/risk"
	"manualhijack/internal/serve"
)

func TestVerdictFor(t *testing.T) {
	a := auth.DefaultConfig()
	cases := []struct {
		score float64
		want  serve.Verdict
	}{
		{0, serve.VerdictAdmit},
		{a.ChallengeThreshold - 1e-9, serve.VerdictAdmit},
		{a.ChallengeThreshold, serve.VerdictChallenge},
		{a.BlockThreshold - 1e-9, serve.VerdictChallenge},
		{a.BlockThreshold, serve.VerdictBlock},
		{1, serve.VerdictBlock},
	}
	for _, c := range cases {
		if got := serve.VerdictFor(c.score, a.ChallengeThreshold, a.BlockThreshold); got != c.want {
			t.Errorf("VerdictFor(%v) = %s, want %s", c.score, got, c.want)
		}
	}
}

// testWorld builds a small deterministic population plus a mixed attempt
// stream over it: mostly home-country logins on the usual device, with new
// devices, foreign countries, shared attacker IPs (exercising the
// cross-account fanout signal), and some wrong passwords.
func testWorld(seed int64, pop, n int) (*identity.Directory, *geo.IPPlan, []risk.Attempt) {
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	dir := core.NewStudyDirectory(seed, start, pop)
	plan := core.DefaultIPPlan()
	countries := geo.AllCountries()
	rng := randx.New(seed).Fork("serve/test/attempts")

	// A handful of fixed "attacker" IPs reused across many accounts, so the
	// IP-fanout signal actually fires and couples accounts across shards.
	hotRng := randx.New(seed).Fork("serve/test/hotips")
	hotIPs := make([]netip.Addr, 4)
	for i := range hotIPs {
		hotIPs[i] = plan.Addr(hotRng, randx.Pick(hotRng, countries))
	}

	atts := make([]risk.Attempt, n)
	for i := range atts {
		id := identity.AccountID(rng.Intn(pop) + 1)
		acct := dir.Get(id)
		att := risk.Attempt{
			Account:    id,
			DeviceID:   identity.DeviceFingerprint(id),
			At:         start.Add(time.Duration(i) * 41 * time.Second),
			PasswordOK: rng.Bool(0.92),
		}
		country := acct.HomeCountry
		switch r := rng.Float64(); {
		case r < 0.10: // roaming from abroad on an unknown device
			country = randx.Pick(rng, countries)
			att.DeviceID = fmt.Sprintf("dev-%d", rng.Intn(1024))
		case r < 0.22: // new device at home
			att.DeviceID = fmt.Sprintf("dev-%d", rng.Intn(1024))
		}
		att.IP = plan.Addr(rng, country)
		if rng.Bool(0.15) {
			// Reuse one of a few hot IPs to drive per-IP fanout up.
			att.IP = randx.Pick(rng, hotIPs)
		}
		atts[i] = att
	}
	return dir, plan, atts
}

// TestShardedMatchesMonolithic is the core sharding-correctness check: the
// sharded engine must produce bit-identical scores to a single monolithic
// risk.Analyzer fed the same totally ordered attempt stream, for any shard
// count. This only holds because the IP-fanout state is shared across
// account shards — a regression that gives each shard its own fanout view
// breaks this test on the hot-IP attempts.
func TestShardedMatchesMonolithic(t *testing.T) {
	const seed, pop, n = 5, 400, 4000
	a := auth.DefaultConfig()
	dir, plan, atts := testWorld(seed, pop, n)

	// Reference: one analyzer, one goroutine — the simulator's shape.
	ref := risk.NewAnalyzer(plan, risk.DefaultWeights())
	dir.All(func(ac *identity.Account) {
		ref.PrimeAccount(ac.ID, ac.HomeCountry, identity.DeviceFingerprint(ac.ID))
	})
	want := make([]float64, n)
	for i, att := range atts {
		sig := ref.Extract(att)
		want[i] = ref.Weights.Combine(sig)
		success := att.PasswordOK && want[i] < a.ChallengeThreshold
		ref.RecordOutcome(att, success)
	}

	for _, shards := range []int{1, 3, 8} {
		cfg := serve.DefaultConfig(seed)
		cfg.Shards = shards
		e := serve.New(dir, plan, cfg)
		e.Prime()
		for i, att := range atts {
			d := e.Score(att, nil)
			if d.Score != want[i] {
				t.Fatalf("shards=%d attempt %d (account %d): score %v, monolithic %v",
					shards, i, att.Account, d.Score, want[i])
			}
			success := att.PasswordOK && want[i] < a.ChallengeThreshold
			e.RecordOutcome(att, success)
		}
	}
}

// TestShardedConcurrencySafety hammers one engine from many goroutines with
// overlapping accounts — Score (with and without principals) interleaved
// with RecordOutcome. Run under -race this proves the shard mutexes uphold
// the analyzer's and challenger's single-goroutine contracts.
func TestShardedConcurrencySafety(t *testing.T) {
	const seed, pop = 9, 64
	dir, plan, _ := testWorld(seed, pop, 0)
	cfg := serve.DefaultConfig(seed)
	cfg.Shards = 4
	e := serve.New(dir, plan, cfg)
	e.Prime()

	countries := geo.AllCountries()
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randx.New(seed).Fork(fmt.Sprintf("serve/test/worker/%d", w))
			for i := 0; i < 400; i++ {
				// Deliberately overlapping: all workers cycle the same IDs.
				id := identity.AccountID((w+i)%pop + 1)
				acct := dir.Get(id)
				country := acct.HomeCountry
				if i%5 == 0 {
					country = randx.Pick(rng, countries)
				}
				att := risk.Attempt{
					Account:    id,
					IP:         plan.Addr(rng, country),
					DeviceID:   identity.DeviceFingerprint(id),
					At:         start.Add(time.Duration(i) * time.Minute),
					PasswordOK: true,
				}
				var p *challenge.Principal
				if i%3 == 0 {
					pr := challenge.Principal{KnowledgeSkill: 0.8}
					if acct.Phone != "" {
						pr.Phones = []geo.Phone{acct.Phone}
					}
					p = &pr
				}
				d := e.Score(att, p)
				switch d.Verdict {
				case serve.VerdictAdmit, serve.VerdictChallenge, serve.VerdictBlock:
				default:
					t.Errorf("invalid verdict %q", d.Verdict)
					return
				}
				e.RecordOutcome(att, d.Verdict == serve.VerdictAdmit)
			}
		}(w)
	}
	wg.Wait()
}

// TestChallengerConcurrentUse forces the challenge path — a weight
// configuration where every foreign-country login lands between the
// thresholds — and runs it from many goroutines with principals, proving
// Challenger.Run on shard-owned accounts is safe under concurrent serving.
func TestChallengerConcurrentUse(t *testing.T) {
	const seed, pop = 13, 48
	dir, plan, _ := testWorld(seed, pop, 0)
	cfg := serve.DefaultConfig(seed)
	cfg.Shards = 4
	cfg.Weights = risk.Weights{NewCountry: 0.80} // foreign login → 0.80 → challenge band
	e := serve.New(dir, plan, cfg)
	e.Prime()

	countries := geo.AllCountries()
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randx.New(seed).Fork(fmt.Sprintf("serve/test/chal/%d", w))
			for i := 0; i < 200; i++ {
				id := identity.AccountID((w*17+i)%pop + 1)
				acct := dir.Get(id)
				var country geo.Country
				for {
					country = randx.Pick(rng, countries)
					if country != acct.HomeCountry {
						break
					}
				}
				att := risk.Attempt{
					Account:    id,
					IP:         plan.Addr(rng, country),
					DeviceID:   fmt.Sprintf("dev-%d-%d", w, i),
					At:         start.Add(time.Duration(i) * time.Minute),
					PasswordOK: true,
				}
				pr := challenge.Principal{KnowledgeSkill: 0.9}
				if acct.Phone != "" {
					pr.Phones = []geo.Phone{acct.Phone}
				}
				d := e.Score(att, &pr)
				if d.Verdict == serve.VerdictChallenge {
					if d.Challenge == nil {
						t.Errorf("challenge verdict with principal but no challenge result")
						return
					}
					ran.Add(1)
				}
				// Never record success: keeps every login "first from this
				// country", so the challenge band stays populated.
				e.RecordOutcome(att, false)
			}
		}(w)
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Fatal("no challenges ran — the test exercised nothing")
	}
}

// BenchmarkServeScore measures the sharded decision pipeline under parallel
// load: shards=1 is the serialized baseline, shards=GOMAXPROCS the scaled
// configuration. (On a single-core host the two are expected to be flat —
// the shard win needs real parallelism.)
func BenchmarkServeScore(b *testing.B) {
	const seed, pop, n = 3, 2000, 8192
	dir, plan, atts := testWorld(seed, pop, n)
	shardCounts := []int{1, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) == 1 {
		// Single-core host: GOMAXPROCS duplicates shards=1, so measure the
		// sharding overhead (hashing + extra mutexes) at shards=4 instead.
		shardCounts[1] = 4
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := serve.DefaultConfig(seed)
			cfg.Shards = shards
			e := serve.New(dir, plan, cfg)
			e.Prime()
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					att := atts[int(idx.Add(1))%n]
					d := e.Score(att, nil)
					e.RecordOutcome(att, d.Verdict == serve.VerdictAdmit)
				}
			})
		})
	}
}
