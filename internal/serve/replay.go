package serve

import (
	"fmt"

	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
)

// Replay streams the login attempts out of an NDJSON dump through a live
// riskd and cross-checks every served decision against what the simulator
// decided for the same seed. It is the bridge between the serving
// subsystem and the measurement pipeline: if riskd is bootstrapped from
// the dump's seed and population, parity must be exact — the served score
// equals the logged RiskScore bit-for-bit and the served verdict equals
// the verdict that score implies.
//
// The state contract that makes this work: for every login attempt the
// simulator scored, auth.Service evolves analyzer state as exactly
// Score(att) followed by RecordOutcome(att, outcome == success) — every
// admission path (plain success, app-password bypass, challenge pass) ends
// in a success record, and every refusal (wrong password, challenge fail,
// risk block) ends in a failure record. Replay therefore posts /v1/score
// and then /v1/outcome with success := (Outcome == LoginSuccess) for each
// event, in log order, and the server's sharded analyzers march in
// lockstep with the simulator's.
//
// The one excluded case: attempts against anti-abuse-disabled accounts are
// refused before risk analysis runs, so the simulator logs them with a
// zero score and no history update. They are identifiable — a blocked
// outcome whose logged score is below the block threshold could not have
// come from the risk gate — and are skipped (counted in Skipped).
//
// Replay is deliberately sequential: the fanout signal couples accounts
// through shared IPs, so only a totally ordered feed reproduces the
// simulator's single-goroutine history. Concurrency is the load
// generator's job, parity is replay's.

// ReplayConfig parameterizes the cross-check.
type ReplayConfig struct {
	// ChallengeThreshold and BlockThreshold must match the dump's world
	// (auth.DefaultConfig values for study dumps).
	ChallengeThreshold float64
	BlockThreshold     float64
	// Progress, when non-nil, is called every ProgressEvery scored events.
	Progress      func(scored, mismatches int)
	ProgressEvery int
}

// ReplayStats is the machine-readable outcome of a replay run.
type ReplayStats struct {
	// Logins is the number of login records in the dump.
	Logins int `json:"logins"`
	// Scored is how many were streamed through /v1/score + /v1/outcome.
	Scored int `json:"scored"`
	// Skipped counts attempts the simulator never scored (anti-abuse
	// refusals) — excluded from parity by construction.
	Skipped int `json:"skipped"`
	// Mismatches counts events where the served score or verdict diverged
	// from the simulator's logged decision. Zero is the acceptance bar.
	Mismatches int `json:"mismatches"`
	// FirstMismatch describes the earliest divergence, for debugging.
	FirstMismatch string `json:"first_mismatch,omitempty"`
}

// Replay runs the cross-check against the server behind c. The returned
// error covers transport failures; verdict divergence is reported in
// ReplayStats.Mismatches, not as an error.
func Replay(st *logstore.Store, c *Client, cfg ReplayConfig) (ReplayStats, error) {
	var rs ReplayStats
	logins := logstore.Select[event.Login](st)
	rs.Logins = len(logins)
	for _, ev := range logins {
		// Anti-abuse refusals never reached the risk gate: a genuine risk
		// block carries its gating score (>= BlockThreshold) in the log.
		if ev.Outcome == event.LoginBlocked && ev.RiskScore < cfg.BlockThreshold {
			rs.Skipped++
			continue
		}
		resp, err := c.Score(ScoreRequest{
			Account:    ev.Account,
			IP:         ev.IP.String(),
			DeviceID:   ev.DeviceID,
			At:         ev.Time,
			PasswordOK: ev.PasswordOK,
		})
		if err != nil {
			return rs, fmt.Errorf("serve: replay score (account %d at %s): %w", ev.Account, ev.Time, err)
		}
		expect := VerdictFor(ev.RiskScore, cfg.ChallengeThreshold, cfg.BlockThreshold)
		if resp.Score != ev.RiskScore || resp.Verdict != expect {
			rs.Mismatches++
			if rs.FirstMismatch == "" {
				rs.FirstMismatch = fmt.Sprintf(
					"account %d at %s: served score=%v verdict=%s, simulator logged score=%v (verdict %s)",
					ev.Account, ev.Time, resp.Score, resp.Verdict, ev.RiskScore, expect)
			}
		}
		err = c.Outcome(OutcomeRequest{
			Account:  ev.Account,
			IP:       ev.IP.String(),
			DeviceID: ev.DeviceID,
			At:       ev.Time,
			Success:  ev.Outcome == event.LoginSuccess,
		})
		if err != nil {
			return rs, fmt.Errorf("serve: replay outcome (account %d at %s): %w", ev.Account, ev.Time, err)
		}
		rs.Scored++
		if cfg.Progress != nil && cfg.ProgressEvery > 0 && rs.Scored%cfg.ProgressEvery == 0 {
			cfg.Progress(rs.Scored, rs.Mismatches)
		}
	}
	return rs, nil
}
