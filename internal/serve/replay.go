package serve

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
)

// Replay streams the login attempts out of an NDJSON dump through a live
// riskd and cross-checks every served decision against what the simulator
// decided for the same seed. It is the bridge between the serving
// subsystem and the measurement pipeline: if riskd is bootstrapped from
// the dump's seed and population, parity must be exact — the served score
// equals the logged RiskScore bit-for-bit and the served verdict equals
// the verdict that score implies.
//
// The state contract that makes this work: for every login attempt the
// simulator scored, auth.Service evolves analyzer state as exactly
// Score(att) followed by RecordOutcome(att, outcome == success) — every
// admission path (plain success, app-password bypass, challenge pass) ends
// in a success record, and every refusal (wrong password, challenge fail,
// risk block) ends in a failure record. Replay therefore posts /v1/score
// and then /v1/outcome with success := (Outcome == LoginSuccess) for each
// event, in log order, and the server's sharded analyzers march in
// lockstep with the simulator's.
//
// The one excluded case: attempts against anti-abuse-disabled accounts are
// refused before risk analysis runs, so the simulator logs them with a
// zero score and no history update. They are identifiable — a blocked
// outcome whose logged score is below the block threshold could not have
// come from the risk gate — and are skipped (counted in Skipped).
//
// # Concurrency without losing parity
//
// Per-account ordering alone is NOT enough to reproduce the simulator's
// single-goroutine history: the fanout signal couples accounts that share
// an IP, so two accounts hitting the same address must also keep their
// relative order. The dependency structure is exactly the connected
// components of the bipartite account/IP sharing graph — two events can
// race if and only if no chain of shared accounts or shared IPs links
// them. planLanes builds those components with a union-find, then deals
// whole components onto Workers lanes, largest first onto the least
// loaded (greedy LPT). Each lane replays its events strictly in log
// order on its own goroutine; cross-lane interleaving is arbitrary and
// harmless by construction. The same partition serves batch mode: a lane
// flushes its ordered score+outcome stream BatchSize logins at a time
// through /v1/score.batch, and the server walks each stream's lines in
// order.

// ReplayConfig parameterizes the cross-check.
type ReplayConfig struct {
	// ChallengeThreshold and BlockThreshold must match the dump's world
	// (auth.DefaultConfig values for study dumps).
	ChallengeThreshold float64
	BlockThreshold     float64
	// Workers is the number of concurrent replay lanes; 0 or 1 replays
	// sequentially. Parity stays exact at any worker count — events are
	// partitioned by connected component of the account/IP sharing graph.
	Workers int
	// BatchSize, when positive, switches to /v1/score.batch with that many
	// logins (score + outcome line pairs) per round trip.
	BatchSize int
	// Progress, when non-nil, is called every ProgressEvery scored events.
	Progress      func(scored, mismatches int)
	ProgressEvery int
}

// ReplayStats is the machine-readable outcome of a replay run.
type ReplayStats struct {
	// Logins is the number of login records in the dump.
	Logins int `json:"logins"`
	// Scored is how many were streamed through the server.
	Scored int `json:"scored"`
	// Skipped counts attempts the simulator never scored (anti-abuse
	// refusals) — excluded from parity by construction.
	Skipped int `json:"skipped"`
	// Mismatches counts events where the served score or verdict diverged
	// from the simulator's logged decision. Zero is the acceptance bar.
	Mismatches int `json:"mismatches"`
	// FirstMismatch describes the divergence earliest in the log.
	FirstMismatch string `json:"first_mismatch,omitempty"`
	// Workers and BatchSize echo the mode this run used.
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size,omitempty"`
	// HTTPReqs counts HTTP round trips issued: 2 per login unbatched,
	// one per flushed batch in batch mode.
	HTTPReqs int64 `json:"http_requests"`
}

// replayShared is the cross-lane accumulator.
type replayShared struct {
	cfg        ReplayConfig
	logins     []event.Login
	scored     atomic.Int64
	mismatches atomic.Int64
	httpReqs   atomic.Int64
	aborted    atomic.Bool

	mu       sync.Mutex
	firstIdx int // log index of the earliest recorded mismatch
	firstMsg string
	err      error
}

func (sh *replayShared) noteMismatch(i int, served *ScoreResponse, ev *event.Login, expect Verdict) {
	sh.mismatches.Add(1)
	sh.mu.Lock()
	if i < sh.firstIdx {
		sh.firstIdx = i
		sh.firstMsg = fmt.Sprintf(
			"account %d at %s: served score=%v verdict=%s, simulator logged score=%v (verdict %s)",
			ev.Account, ev.Time, served.Score, served.Verdict, ev.RiskScore, expect)
	}
	sh.mu.Unlock()
}

func (sh *replayShared) fail(err error) {
	sh.aborted.Store(true)
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.mu.Unlock()
}

func (sh *replayShared) progress() {
	n := sh.scored.Add(1)
	if sh.cfg.Progress != nil && sh.cfg.ProgressEvery > 0 && n%int64(sh.cfg.ProgressEvery) == 0 {
		sh.mu.Lock()
		sh.cfg.Progress(int(n), int(sh.mismatches.Load()))
		sh.mu.Unlock()
	}
}

// check compares one served decision against the log.
func (sh *replayShared) check(i int, resp *ScoreResponse) {
	ev := &sh.logins[i]
	expect := VerdictFor(ev.RiskScore, sh.cfg.ChallengeThreshold, sh.cfg.BlockThreshold)
	if resp.Score != ev.RiskScore || resp.Verdict != expect {
		sh.noteMismatch(i, resp, ev, expect)
	}
	sh.progress()
}

// Replay runs the cross-check against the server behind c. The returned
// error covers transport failures; verdict divergence is reported in
// ReplayStats.Mismatches, not as an error.
func Replay(st *logstore.Store, c *Client, cfg ReplayConfig) (ReplayStats, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	var rs ReplayStats
	rs.Workers = cfg.Workers
	rs.BatchSize = cfg.BatchSize

	logins := logstore.Select[event.Login](st)
	rs.Logins = len(logins)

	// Anti-abuse refusals never reached the risk gate: a genuine risk
	// block carries its gating score (>= BlockThreshold) in the log.
	idx := make([]int, 0, len(logins))
	for i := range logins {
		if logins[i].Outcome == event.LoginBlocked && logins[i].RiskScore < cfg.BlockThreshold {
			rs.Skipped++
			continue
		}
		idx = append(idx, i)
	}

	sh := &replayShared{cfg: cfg, logins: logins, firstIdx: len(logins)}
	lanes := planLanes(logins, idx, cfg.Workers)

	var wg sync.WaitGroup
	for _, lane := range lanes {
		if len(lane) == 0 {
			continue
		}
		wg.Add(1)
		go func(lane []int) {
			defer wg.Done()
			if cfg.BatchSize > 0 {
				replayLaneBatched(sh, c, lane)
			} else {
				replayLane(sh, c, lane)
			}
		}(lane)
	}
	wg.Wait()

	rs.Scored = int(sh.scored.Load())
	rs.Mismatches = int(sh.mismatches.Load())
	rs.FirstMismatch = sh.firstMsg
	rs.HTTPReqs = sh.httpReqs.Load()
	return rs, sh.err
}

// replayLane streams one lane through /v1/score + /v1/outcome in order.
func replayLane(sh *replayShared, c *Client, lane []int) {
	for _, i := range lane {
		if sh.aborted.Load() {
			return
		}
		ev := &sh.logins[i]
		resp, err := c.Score(ScoreRequest{
			Account:    ev.Account,
			IP:         ev.IP.String(),
			DeviceID:   ev.DeviceID,
			At:         ev.Time,
			PasswordOK: ev.PasswordOK,
		})
		sh.httpReqs.Add(1)
		if err != nil {
			sh.fail(fmt.Errorf("serve: replay score (account %d at %s): %w", ev.Account, ev.Time, err))
			return
		}
		sh.check(i, resp)
		err = c.Outcome(OutcomeRequest{
			Account:  ev.Account,
			IP:       ev.IP.String(),
			DeviceID: ev.DeviceID,
			At:       ev.Time,
			Success:  ev.Outcome == event.LoginSuccess,
		})
		sh.httpReqs.Add(1)
		if err != nil {
			sh.fail(fmt.Errorf("serve: replay outcome (account %d at %s): %w", ev.Account, ev.Time, err))
			return
		}
	}
}

// replayLaneBatched streams one lane through /v1/score.batch, BatchSize
// logins (= 2*BatchSize NDJSON lines) per round trip.
func replayLaneBatched(sh *replayShared, c *Client, lane []int) {
	items := make([]BatchItem, 0, 2*sh.cfg.BatchSize)
	evIdx := make([]int, 0, sh.cfg.BatchSize) // log index per score line

	flush := func() bool {
		if len(items) == 0 {
			return true
		}
		results, err := c.Batch(items)
		sh.httpReqs.Add(1)
		if err != nil {
			sh.fail(fmt.Errorf("serve: replay batch (%d items): %w", len(items), err))
			return false
		}
		// Lines alternate score, outcome, score, outcome, ...
		for k, i := range evIdx {
			sr := results[2*k]
			if sr.Err != "" || sr.Score == nil {
				ev := &sh.logins[i]
				sh.fail(fmt.Errorf("serve: replay batch score (account %d at %s): %s", ev.Account, ev.Time, sr.Err))
				return false
			}
			sh.check(i, sr.Score)
			if ack := results[2*k+1]; ack.Err != "" || !ack.OK {
				ev := &sh.logins[i]
				sh.fail(fmt.Errorf("serve: replay batch outcome (account %d at %s): %s", ev.Account, ev.Time, ack.Err))
				return false
			}
		}
		items = items[:0]
		evIdx = evIdx[:0]
		return true
	}

	for _, i := range lane {
		if sh.aborted.Load() {
			return
		}
		ev := &sh.logins[i]
		ip := ev.IP.String()
		items = append(items, ScoreItem(ScoreRequest{
			Account:    ev.Account,
			IP:         ip,
			DeviceID:   ev.DeviceID,
			At:         ev.Time,
			PasswordOK: ev.PasswordOK,
		}))
		items = append(items, OutcomeItem(OutcomeRequest{
			Account:  ev.Account,
			IP:       ip,
			DeviceID: ev.DeviceID,
			At:       ev.Time,
			Success:  ev.Outcome == event.LoginSuccess,
		}))
		evIdx = append(evIdx, i)
		if len(evIdx) >= sh.cfg.BatchSize {
			if !flush() {
				return
			}
		}
	}
	flush()
}

// planLanes partitions the selected log indices (ascending) into at most
// workers lanes such that any two events coupled through a chain of shared
// accounts or shared IPs land in the same lane. Components are assigned
// largest-first to the least-loaded lane; within a lane, indices keep log
// order.
func planLanes(logins []event.Login, idx []int, workers int) [][]int {
	if workers <= 1 || len(idx) == 0 {
		return [][]int{idx}
	}

	// Union-find over account ∪ IP keys.
	uf := newUnionFind()
	accKey := make(map[identity.AccountID]int)
	ipKey := make(map[netip.Addr]int)
	for _, i := range idx {
		ev := &logins[i]
		a, ok := accKey[ev.Account]
		if !ok {
			a = uf.add()
			accKey[ev.Account] = a
		}
		p, ok := ipKey[ev.IP]
		if !ok {
			p = uf.add()
			ipKey[ev.IP] = p
		}
		uf.union(a, p)
	}

	// Component sizes in events.
	compSize := make(map[int]int)
	for _, i := range idx {
		compSize[uf.find(accKey[logins[i].Account])]++
	}

	// Largest component first onto the least-loaded lane (greedy LPT).
	roots := make([]int, 0, len(compSize))
	for r := range compSize {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool {
		if compSize[roots[a]] != compSize[roots[b]] {
			return compSize[roots[a]] > compSize[roots[b]]
		}
		return roots[a] < roots[b] // determinism across runs
	})
	if workers > len(roots) {
		workers = len(roots)
	}
	laneOf := make(map[int]int, len(roots))
	load := make([]int, workers)
	for _, r := range roots {
		best := 0
		for l := 1; l < workers; l++ {
			if load[l] < load[best] {
				best = l
			}
		}
		laneOf[r] = best
		load[best] += compSize[r]
	}

	lanes := make([][]int, workers)
	for l := range lanes {
		lanes[l] = make([]int, 0, load[l])
	}
	for _, i := range idx {
		l := laneOf[uf.find(accKey[logins[i].Account])]
		lanes[l] = append(lanes[l], i)
	}
	return lanes
}

// unionFind is a grow-only disjoint-set forest with path halving and
// union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind() *unionFind { return &unionFind{} }

func (u *unionFind) add() int {
	n := len(u.parent)
	u.parent = append(u.parent, int32(n))
	u.size = append(u.size, 1)
	return n
}

func (u *unionFind) find(x int) int {
	for int(u.parent[x]) != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = int(u.parent[x])
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	u.size[ra] += u.size[rb]
}
