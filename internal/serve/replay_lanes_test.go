package serve

import (
	"net/netip"
	"testing"

	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
)

func mkLogin(acct identity.AccountID, ip string) event.Login {
	return event.Login{Account: acct, IP: netip.MustParseAddr(ip)}
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// laneIndex maps each log index to its lane.
func laneIndex(t *testing.T, lanes [][]int) map[int]int {
	t.Helper()
	of := map[int]int{}
	for l, lane := range lanes {
		for _, i := range lane {
			if prev, dup := of[i]; dup {
				t.Fatalf("index %d appears in lanes %d and %d", i, prev, l)
			}
			of[i] = l
		}
	}
	return of
}

func TestPlanLanesSharedIPCouplesAccounts(t *testing.T) {
	// Accounts 1 and 2 never share an IP directly with account 3, but
	// 1–2 share 10.0.0.1 and 2–3 share 10.0.0.2: all three are one
	// component. Account 4 is isolated.
	logins := []event.Login{
		mkLogin(1, "10.0.0.1"),
		mkLogin(2, "10.0.0.1"),
		mkLogin(2, "10.0.0.2"),
		mkLogin(3, "10.0.0.2"),
		mkLogin(4, "10.9.9.9"),
	}
	lanes := planLanes(logins, allIdx(len(logins)), 4)
	of := laneIndex(t, lanes)
	if len(of) != len(logins) {
		t.Fatalf("lanes cover %d of %d events", len(of), len(logins))
	}
	if of[0] != of[1] || of[1] != of[2] || of[2] != of[3] {
		t.Errorf("transitively coupled events split across lanes: %v", of)
	}
	if of[4] == of[0] {
		t.Errorf("isolated account 4 should get its own lane, got %v", of)
	}
}

func TestPlanLanesPreservesLogOrderWithinLane(t *testing.T) {
	rng := randx.New(99).Fork("lanes")
	var logins []event.Login
	for i := 0; i < 500; i++ {
		logins = append(logins, mkLogin(
			identity.AccountID(rng.Intn(40)+1),
			netip.AddrFrom4([4]byte{10, 0, byte(rng.Intn(8)), byte(rng.Intn(20))}).String()))
	}
	lanes := planLanes(logins, allIdx(len(logins)), 4)
	of := laneIndex(t, lanes)
	if len(of) != len(logins) {
		t.Fatalf("lanes cover %d of %d events", len(of), len(logins))
	}
	for l, lane := range lanes {
		for k := 1; k < len(lane); k++ {
			if lane[k] <= lane[k-1] {
				t.Fatalf("lane %d breaks log order at %d: %v <= %v", l, k, lane[k], lane[k-1])
			}
		}
	}
	// Every pair of events in different lanes must share neither account
	// nor IP with each other's component; spot-check directly: same
	// account or same IP always implies same lane.
	for i := range logins {
		for j := i + 1; j < len(logins); j++ {
			if logins[i].Account == logins[j].Account || logins[i].IP == logins[j].IP {
				if of[i] != of[j] {
					t.Fatalf("events %d and %d share account/IP but landed in lanes %d and %d",
						i, j, of[i], of[j])
				}
			}
		}
	}
}

func TestPlanLanesSequentialFallback(t *testing.T) {
	logins := []event.Login{mkLogin(1, "10.0.0.1"), mkLogin(2, "10.0.0.2")}
	lanes := planLanes(logins, allIdx(2), 1)
	if len(lanes) != 1 || len(lanes[0]) != 2 {
		t.Fatalf("workers=1 should yield one lane with everything: %v", lanes)
	}
	empty := planLanes(nil, nil, 8)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Fatalf("empty input should yield one empty lane: %v", empty)
	}
}

func TestPlanLanesBalance(t *testing.T) {
	// 64 isolated accounts, one event each: greedy LPT over 4 lanes must
	// land 16 per lane.
	var logins []event.Login
	for a := 1; a <= 64; a++ {
		logins = append(logins, mkLogin(identity.AccountID(a),
			netip.AddrFrom4([4]byte{10, 1, byte(a), 1}).String()))
	}
	lanes := planLanes(logins, allIdx(len(logins)), 4)
	for l, lane := range lanes {
		if len(lane) != 16 {
			t.Fatalf("lane %d has %d events, want 16 (%v lane sizes)", l, len(lane),
				[]int{len(lanes[0]), len(lanes[1]), len(lanes[2]), len(lanes[3])})
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind()
	ids := make([]int, 10)
	for i := range ids {
		ids[i] = u.add()
	}
	u.union(ids[0], ids[1])
	u.union(ids[2], ids[3])
	u.union(ids[1], ids[3])
	if u.find(ids[0]) != u.find(ids[2]) {
		t.Error("0 and 2 should be connected through 1-3")
	}
	if u.find(ids[4]) == u.find(ids[0]) {
		t.Error("4 should be isolated")
	}
}
