package serve_test

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"manualhijack/internal/core"
	"manualhijack/internal/logstore"
	"manualhijack/internal/serve"
)

// TestReplayParity is the end-to-end acceptance check for the serving
// subsystem: run a full simulated world (hijacking crews included), dump
// its event log, bootstrap a sharded riskd engine from nothing but the
// seed and population size, and stream the dump through the HTTP stack.
// Every served score and verdict must equal what the simulator decided —
// zero mismatches.
func TestReplayParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test runs a world")
	}
	cfg := core.DefaultConfig(11)
	cfg.Days = 8
	cfg.PopulationN = 800
	cfg.DecoyN = 30
	w := core.NewWorld(cfg)
	w.Run()

	var buf bytes.Buffer
	meta := logstore.Meta{Start: cfg.Start, End: w.End(), Seed: cfg.Seed}
	if err := logstore.WriteNDJSONMeta(&buf, w.Log, meta); err != nil {
		t.Fatal(err)
	}
	st, _, err := logstore.ReadNDJSONWith(bytes.NewReader(buf.Bytes()), logstore.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	newEngine := func(prime bool) *serve.Client {
		ecfg := serve.DefaultConfig(cfg.Seed)
		ecfg.Shards = 4
		dir := core.NewStudyDirectory(cfg.Seed, cfg.Start, cfg.PopulationN+cfg.DecoyN)
		e := serve.New(dir, core.DefaultIPPlan(), ecfg)
		if prime {
			e.Prime()
		}
		ts := httptest.NewServer(serve.NewServer(e, serve.ServerConfig{}).Handler())
		t.Cleanup(ts.Close)
		return &serve.Client{Base: ts.URL}
	}

	base := serve.ReplayConfig{
		ChallengeThreshold: cfg.Auth.ChallengeThreshold,
		BlockThreshold:     cfg.Auth.BlockThreshold,
	}
	// Parity must hold in every transport mode: sequential per-request,
	// concurrent lanes, and concurrent batched streams.
	modes := []struct {
		name string
		mod  func(*serve.ReplayConfig)
	}{
		{"sequential", func(*serve.ReplayConfig) {}},
		{"workers4", func(c *serve.ReplayConfig) { c.Workers = 4 }},
		{"workers4-batch64", func(c *serve.ReplayConfig) { c.Workers = 4; c.BatchSize = 64 }},
	}
	var seqScored int
	for _, m := range modes {
		rcfg := base
		m.mod(&rcfg)
		rs, err := serve.Replay(st, newEngine(true), rcfg)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if rs.Mismatches != 0 {
			t.Fatalf("%s: replay parity: %d mismatches of %d scored; first: %s",
				m.name, rs.Mismatches, rs.Scored, rs.FirstMismatch)
		}
		if rs.Scored < 1000 {
			t.Fatalf("%s: replay scored only %d logins — world too quiet to prove anything", m.name, rs.Scored)
		}
		if rs.Scored+rs.Skipped != rs.Logins {
			t.Fatalf("%s: accounting: scored %d + skipped %d != logins %d",
				m.name, rs.Scored, rs.Skipped, rs.Logins)
		}
		if seqScored == 0 {
			seqScored = rs.Scored
		} else if rs.Scored != seqScored {
			t.Fatalf("%s: scored %d logins, sequential scored %d — modes disagree on coverage",
				m.name, rs.Scored, seqScored)
		}
		if rs.BatchSize > 0 {
			// Batching must actually amortize round trips.
			if rs.HTTPReqs >= int64(rs.Scored) {
				t.Fatalf("%s: %d HTTP requests for %d logins — batching not amortizing",
					m.name, rs.HTTPReqs, rs.Scored)
			}
		} else if rs.HTTPReqs != int64(2*rs.Scored) {
			t.Fatalf("%s: %d HTTP requests, want %d (2 per login)", m.name, rs.HTTPReqs, 2*rs.Scored)
		}
	}

	// Negative control: an unprimed engine sees every first login as a new
	// country + new device and must diverge. If this passes with zero
	// mismatches, the parity check itself is broken.
	rs2, err := serve.Replay(st, newEngine(false), base)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Mismatches == 0 {
		t.Fatal("unprimed engine replayed with zero mismatches — the parity check has no teeth")
	}
}

// TestReplayParityArchetypes re-runs the parity gate over an
// archetype-heavy dump. The roster is deliberately stuffer-heavy: a
// credential stuffer validates many accounts from one IP in tight
// bursts, which is the worst case for the union-find lane planner (one
// shared IP welds many otherwise-independent account lanes together).
// Parity must still hold at full concurrency with batching.
func TestReplayParityArchetypes(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test runs a world")
	}
	cfg := core.DefaultConfig(13)
	cfg.Days = 8
	cfg.PopulationN = 800
	cfg.DecoyN = 30
	cfg.Archetypes = []core.ArchetypeSpec{
		{Archetype: "stuffer", Count: 3},
		{Archetype: "smashgrab", Count: 2},
		{Archetype: "hopper", Count: 1},
		{Archetype: "impaas", Count: 1},
	}
	w := core.NewWorld(cfg)
	w.Run()

	var buf bytes.Buffer
	meta := logstore.Meta{Start: cfg.Start, End: w.End(), Seed: cfg.Seed}
	if err := logstore.WriteNDJSONMeta(&buf, w.Log, meta); err != nil {
		t.Fatal(err)
	}
	st, _, err := logstore.ReadNDJSONWith(bytes.NewReader(buf.Bytes()), logstore.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ecfg := serve.DefaultConfig(cfg.Seed)
	ecfg.Shards = 4
	dir := core.NewStudyDirectory(cfg.Seed, cfg.Start, cfg.PopulationN+cfg.DecoyN)
	e := serve.New(dir, core.DefaultIPPlan(), ecfg)
	e.Prime()
	ts := httptest.NewServer(serve.NewServer(e, serve.ServerConfig{}).Handler())
	t.Cleanup(ts.Close)

	rs, err := serve.Replay(st, &serve.Client{Base: ts.URL}, serve.ReplayConfig{
		ChallengeThreshold: cfg.Auth.ChallengeThreshold,
		BlockThreshold:     cfg.Auth.BlockThreshold,
		Workers:            4,
		BatchSize:          64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Mismatches != 0 {
		t.Fatalf("archetype replay parity: %d mismatches of %d scored; first: %s",
			rs.Mismatches, rs.Scored, rs.FirstMismatch)
	}
	if rs.Scored < 1000 {
		t.Fatalf("replay scored only %d logins — world too quiet to prove anything", rs.Scored)
	}
}
