package serve_test

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"manualhijack/internal/core"
	"manualhijack/internal/logstore"
	"manualhijack/internal/serve"
)

// TestReplayParity is the end-to-end acceptance check for the serving
// subsystem: run a full simulated world (hijacking crews included), dump
// its event log, bootstrap a sharded riskd engine from nothing but the
// seed and population size, and stream the dump through the HTTP stack.
// Every served score and verdict must equal what the simulator decided —
// zero mismatches.
func TestReplayParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity test runs a world")
	}
	cfg := core.DefaultConfig(11)
	cfg.Days = 8
	cfg.PopulationN = 800
	cfg.DecoyN = 30
	w := core.NewWorld(cfg)
	w.Run()

	var buf bytes.Buffer
	meta := logstore.Meta{Start: cfg.Start, End: w.End(), Seed: cfg.Seed}
	if err := logstore.WriteNDJSONMeta(&buf, w.Log, meta); err != nil {
		t.Fatal(err)
	}
	st, _, err := logstore.ReadNDJSONWith(bytes.NewReader(buf.Bytes()), logstore.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	newEngine := func(prime bool) *serve.Client {
		ecfg := serve.DefaultConfig(cfg.Seed)
		ecfg.Shards = 4
		dir := core.NewStudyDirectory(cfg.Seed, cfg.Start, cfg.PopulationN+cfg.DecoyN)
		e := serve.New(dir, core.DefaultIPPlan(), ecfg)
		if prime {
			e.Prime()
		}
		ts := httptest.NewServer(serve.NewServer(e, serve.ServerConfig{}).Handler())
		t.Cleanup(ts.Close)
		return &serve.Client{Base: ts.URL}
	}

	rcfg := serve.ReplayConfig{
		ChallengeThreshold: cfg.Auth.ChallengeThreshold,
		BlockThreshold:     cfg.Auth.BlockThreshold,
	}
	rs, err := serve.Replay(st, newEngine(true), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Mismatches != 0 {
		t.Fatalf("replay parity: %d mismatches of %d scored; first: %s",
			rs.Mismatches, rs.Scored, rs.FirstMismatch)
	}
	if rs.Scored < 1000 {
		t.Fatalf("replay scored only %d logins — world too quiet to prove anything", rs.Scored)
	}
	if rs.Scored+rs.Skipped != rs.Logins {
		t.Fatalf("accounting: scored %d + skipped %d != logins %d", rs.Scored, rs.Skipped, rs.Logins)
	}

	// Negative control: an unprimed engine sees every first login as a new
	// country + new device and must diverge. If this passes with zero
	// mismatches, the parity check itself is broken.
	rs2, err := serve.Replay(st, newEngine(false), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Mismatches == 0 {
		t.Fatal("unprimed engine replayed with zero mismatches — the parity check has no teeth")
	}
}
